package concordia_test

// One benchmark per paper table and figure: each iteration executes the
// corresponding experiment harness at benchmark scale and reports the
// headline quantity as a custom metric. Run with
//
//	go test -bench=. -benchmem -benchtime=1x
//
// for a single regeneration pass, or larger -benchtime to average. The
// cmd/experiments binary prints the full tables; these benches track cost
// and the headline numbers.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"concordia/internal/experiments"
	"concordia/internal/fleet"
	"concordia/internal/ran"
	"concordia/internal/traffic"
)

func benchOpts() experiments.Options {
	o := experiments.Quick()
	o.Scale = 0.02
	o.TrainingSlots = 400
	return o
}

func BenchmarkFig3Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig3Traffic(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SingleIdleFrac, "single-idle-frac")
		b.ReportMetric(r.AggregateIdleFrac, "agg-idle-frac")
	}
}

func BenchmarkPoolingGaussian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunPoolingGaussian(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WasteRatio[len(r.WasteRatio)-1], "waste-growth-16cells")
	}
}

func BenchmarkFig4Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig4Utilization(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].AvgUtil, "ulonly-util")
	}
}

func BenchmarkFig4Violations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig4Violations(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		violated := 0
		for _, row := range r.Rows {
			if row.Violated {
				violated++
			}
		}
		b.ReportMetric(float64(violated), "violations")
	}
}

func BenchmarkFig6LDPCScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig6LDPCScaling(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanUs[6][4]/r.MeanUs[1][4]-1, "multicore-penalty")
	}
}

func BenchmarkFig7Leaves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig7Leaves(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PooledLeafVar/r.GlobalVariance, "leaf-var-ratio")
	}
}

func BenchmarkFig8Reclaimed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig8Reclaimed(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Points100MHz[0].Reclaimed, "lowload-reclaim-100mhz")
	}
}

func BenchmarkFig8Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig8Workloads(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].FracOfIdeal, "redis-frac-of-ideal")
	}
}

func BenchmarkFig9Cache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig9Cache(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FlexRAN.StallCyclesPerInstrIncrease, "flexran-stall-inc")
		b.ReportMetric(r.Concordia.StallCyclesPerInstrIncrease, "concordia-stall-inc")
	}
}

func BenchmarkFig10SchedLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig10SchedLatency(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		ratio := float64(r.Events["flexran/redis"]) / float64(r.Events["concordia/redis"])
		b.ReportMetric(ratio, "event-ratio")
	}
}

func BenchmarkFig11TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig11TailLatency(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worstConcordia := 0.0
		for _, row := range r.Rows {
			if row.Scheduler == "concordia" && row.P99999Us > worstConcordia {
				worstConcordia = row.P99999Us
			}
		}
		b.ReportMetric(worstConcordia, "concordia-worst-p99999-us")
	}
}

func BenchmarkFig12Cores(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig12Cores(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].P99999Us, "20mhz-8core-p99999-us")
	}
}

func BenchmarkFig13PWCET(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig13PWCET(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ReclaimQDT[1]-r.ReclaimPWCET[1], "qdt-reclaim-advantage")
	}
}

func BenchmarkFig14Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig14Models(benchOpts(), ran.TaskLDPCDecode)
		if err != nil {
			b.Fatal(err)
		}
		var qdtErr, linErr float64
		for _, row := range r.Rows {
			switch row.Model {
			case "quantile-dt":
				qdtErr += row.AvgErrUs
			case "linear":
				linErr += row.AvgErrUs
			}
		}
		b.ReportMetric(qdtErr/6, "qdt-avg-err-us")
		b.ReportMetric(linErr/6, "linear-avg-err-us")
	}
}

func BenchmarkFig15Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig15Overhead(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SchedulerUs[len(r.SchedulerUs)-1], "sched-7cell-us")
		b.ReportMetric(r.PredictorUs[len(r.PredictorUs)-1], "pred-7cell-us")
	}
}

func BenchmarkFig15Deadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig15Deadline(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Reclaimed[len(r.Reclaimed)-1]-r.Reclaimed[0], "reclaim-gain-2ms-vs-1.6ms")
	}
}

func BenchmarkTable3FPGA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3FPGA(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Rows[2].MinCores), "3cell-min-cores")
		b.ReportMetric(r.Rows[2].AvgUtil, "3cell-util")
	}
}

func BenchmarkTable4Offload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable4Offload(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ULTotalUs/r.ULNonOffloadedUs, "ul-total-over-cpu")
	}
}

func BenchmarkFig17PerTask(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig17PerTask(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(r.PerKind)), "kinds")
	}
}

// BenchmarkRunAllQuick regenerates every experiment once (the EXPERIMENTS.md
// refresh path).
func BenchmarkRunAllQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllParallel contrasts the serial and fanned-out full
// regeneration: both produce identical bytes, the second spreads experiments
// and their internal sweeps across every core.
func BenchmarkRunAllParallel(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := benchOpts()
			o.Workers = workers
			for i := 0; i < b.N; i++ {
				if err := experiments.RunAll(o, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Rows[0].Reliability, "full-reliability")
	}
}

func BenchmarkMACExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMACExtension(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ReliabilityMAC, "mac-reliability")
	}
}

func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCalibration(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RealUs[len(r.RealUs)-1]/r.RealUs[0], "cb-scaling-ratio")
	}
}

// BenchmarkFleetSweep regenerates the fleet pooling sweep and reports the
// stress point (largest grid, highest load): the deadline-miss rates of the
// static partition vs the migrating fleet, and the capacity-equalized
// pooling gain in cores.
func BenchmarkFleetSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFleet(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		static, pooled := r.Rows[len(r.Rows)-2], r.Rows[len(r.Rows)-1]
		b.ReportMetric(static.MissPct, "static-miss-pct")
		b.ReportMetric(pooled.MissPct, "pooled-miss-pct")
		b.ReportMetric(pooled.CoresSaved, "cores-saved")
	}
}

// BenchmarkFleetCoordination times the per-slot fleet-coordination path —
// folding every cell's slot volume through the placement into the demand
// tracker — in isolation. allocs/op must stay 0 (the fleet package's alloc
// gate enforces it; the benchmark keeps it visible in the BENCH_pool.json
// trajectory that bench-diff gates on).
func BenchmarkFleetCoordination(b *testing.B) {
	const cells, servers, slots = 200, 12, 64
	ul, err := traffic.GenerateScaledTrace(traffic.ScaleSpec{Cells: cells, Seed: 3}, slots)
	if err != nil {
		b.Fatal(err)
	}
	dl, err := traffic.GenerateScaledTrace(traffic.ScaleSpec{Cells: cells, Seed: 4}, slots)
	if err != nil {
		b.Fatal(err)
	}
	assign := make([]int, cells)
	for c := range assign {
		assign[c] = c % servers
	}
	demand := make([]float64, cells)
	d := fleet.NewDemandTracker(servers)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// EndEpoch archives results (it allocates, once per epoch, by
		// design) — the zero-alloc contract covers the per-slot fold.
		d.BeginEpoch()
		fleet.AccumulateEpoch(d, ul, dl, 0, slots, assign, demand)
	}
}
