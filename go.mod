module concordia

go 1.22
