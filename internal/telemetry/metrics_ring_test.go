package telemetry

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"testing"

	"concordia/internal/sim"
)

func TestSampleRingWraparoundCSVOrder(t *testing.T) {
	r := NewRegistryCapacity(4)
	c := r.Counter("n")
	for i := 0; i < 10; i++ {
		c.Inc()
		r.Sample(sim.Time(i) * sim.Millisecond)
	}
	if r.Samples() != 4 {
		t.Fatalf("Samples = %d, want ring capacity 4", r.Samples())
	}
	if r.SamplesEvicted() != 6 {
		t.Fatalf("SamplesEvicted = %d, want 6", r.SamplesEvicted())
	}
	var buf bytes.Buffer
	if err := r.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_us,n" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("want 4 data rows, got %d", len(lines)-1)
	}
	// The ring keeps the newest 4 rows (i=6..9), oldest first, with the
	// counter values they observed at sampling time.
	for i, want := range []struct{ atMs, n int }{{6, 7}, {7, 8}, {8, 9}, {9, 10}} {
		cols := strings.Split(lines[i+1], ",")
		atUs, _ := strconv.ParseFloat(cols[0], 64)
		if int(atUs) != want.atMs*1000 || cols[1] != strconv.Itoa(want.n) {
			t.Errorf("row %d = %q, want t=%dms n=%d", i, lines[i+1], want.atMs, want.n)
		}
	}
}

func TestSampleRingReusesRowMaps(t *testing.T) {
	r := NewRegistryCapacity(8)
	r.Counter("a")
	r.Gauge("b")
	at := sim.Time(0)
	for i := 0; i < 8; i++ { // fill the ring
		r.Sample(at)
		at += sim.Millisecond
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Sample(at)
		at += sim.Millisecond
	})
	if allocs != 0 {
		t.Fatalf("steady-state Sample allocated %.1f/op, want 0 (row maps should be reused)", allocs)
	}
}

func TestSampleRingPartialFillKeepsOrder(t *testing.T) {
	r := NewRegistryCapacity(16)
	for i := 0; i < 3; i++ {
		r.Sample(sim.Time(i) * sim.Millisecond)
	}
	if r.Samples() != 3 || r.SamplesEvicted() != 0 {
		t.Fatalf("partial fill: Samples=%d Evicted=%d", r.Samples(), r.SamplesEvicted())
	}
	var buf bytes.Buffer
	if err := r.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[1], "0") || !strings.HasPrefix(lines[3], "2000") {
		t.Fatalf("partial-fill CSV wrong:\n%s", buf.String())
	}
}

func TestHistogramRejectsNaNInf(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_us", []float64{1, 10, 100})
	h.Observe(5)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(50)

	if h.Total() != 2 {
		t.Errorf("Total = %d, want 2 (invalid samples must not count)", h.Total())
	}
	if h.Invalid() != 3 {
		t.Errorf("Invalid = %d, want 3", h.Invalid())
	}
	if h.Sum() != 55 {
		t.Errorf("Sum = %v, want 55 (NaN must not poison the sum)", h.Sum())
	}
	for _, b := range h.Buckets() {
		if b.Inf && b.Count != 0 {
			t.Errorf("+Inf bucket count = %d; invalid samples must not land there", b.Count)
		}
	}
	// Snapshot grows a dedicated _invalid series only when present.
	var names []string
	for _, mv := range r.Snapshot() {
		names = append(names, mv.Name)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "lat_us_invalid") {
		t.Errorf("snapshot missing lat_us_invalid: %v", names)
	}

	// A histogram that never saw an invalid sample keeps its snapshot
	// byte-identical to the pre-guard format.
	r2 := NewRegistry()
	r2.Histogram("clean_us", []float64{1}).Observe(0.5)
	for _, mv := range r2.Snapshot() {
		if strings.Contains(mv.Name, "_invalid") {
			t.Errorf("clean histogram should not export %q", mv.Name)
		}
	}
}
