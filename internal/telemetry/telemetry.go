// Package telemetry is the deterministic observability subsystem: a
// structured event tracer recorded into a bounded ring buffer stamped with
// virtual sim.Time, a metrics registry (counters, gauges, fixed-bucket
// histograms) with sorted stable iteration, and exporters — Chrome
// trace-event JSON (loadable in Perfetto) and CSV time series for plotting.
//
// Everything the paper's §6 evaluation argues from is a distribution:
// per-task runtimes, queueing delays, scheduler core-count decisions,
// deadline-miss tails. The end-of-run pool.Report collapses those into
// summary numbers; this package preserves the event stream so a single
// missed deadline can be traced back to the dispatch decisions around it.
//
// Determinism contract (DESIGN.md §5b): the subsystem never reads the host
// clock or spawns goroutines, every timestamp is virtual, and every exporter
// iterates in sorted order — so for a fixed seed the exported bytes are
// identical across runs and across -workers counts. The disabled path is a
// nil check: a nil *Recorder (and nil *Tracer / *Registry) is valid and
// makes every record call a no-op, so the simulation hot loop pays one
// predictable branch when telemetry is off.
package telemetry

import (
	"fmt"

	"concordia/internal/sim"
)

// EventKind classifies one timeline record.
type EventKind uint8

// The event taxonomy. The Core/Cell/Slot/Task/Dur/A/B fields of Event carry
// kind-specific payloads documented per constant.
const (
	// EvDAGRelease marks a slot DAG admitted to the pool.
	// Cell, Slot, A=dag sequence, B=direction (ran.SlotDir).
	EvDAGRelease EventKind = iota
	// EvTaskEnqueue marks a task becoming ready (dependencies met).
	// Cell, Slot, Task=kind, A=dag sequence, B=DAG-local task ID.
	EvTaskEnqueue
	// EvTaskDispatch marks a task starting on a core.
	// Core, Cell, Slot, Task=kind, Dur=queueing delay, A=dag sequence,
	// B=DAG-local task ID.
	EvTaskDispatch
	// EvTaskComplete marks a task finishing on a core (Core>=0) or on the
	// accelerator (Core=-1). Core, Cell, Slot, Task=kind, Dur=measured
	// runtime, A=dag sequence, B=DAG-local task ID.
	EvTaskComplete
	// EvOffloadSpan records one accelerator request (emitted at submission;
	// At is the device start time). Task=kind, Dur=device processing time,
	// A=lane, B=codeblocks.
	EvOffloadSpan
	// EvDAGComplete marks a DAG finishing all tasks.
	// Cell, Slot, Dur=slot-processing latency, A=dag sequence, B=direction.
	EvDAGComplete
	// EvDeadlineMiss marks a DAG completing (or being dropped) past its
	// deadline. Cell, Slot, Dur=latency, A=dag sequence, B=direction.
	EvDeadlineMiss
	// EvDAGDrop marks a DAG abandoned at its deadline (DropLateDAGs).
	// Cell, Slot, Dur=age at drop, A=dag sequence, B=direction.
	EvDAGDrop
	// EvCoreAcquire marks a core preempted from best-effort work.
	// Core, A=RAN-owned cores after the acquire, B=active workload count.
	EvCoreAcquire
	// EvCoreAwake marks the RAN worker becoming runnable on a core.
	// Core, Dur=wakeup latency.
	EvCoreAwake
	// EvCoreYield marks a core returned to best-effort workloads.
	// Core, A=RAN-owned cores after the yield.
	EvCoreYield
	// EvCoreRotate marks one 2 ms core-rotation swap.
	// Core=yielded core, A=acquired core.
	EvCoreRotate
	// EvSchedDecision records a scheduler tick whose core target differs
	// from the previous tick's. A=previous target, B=new target; Core=
	// currently RAN-owned cores.
	EvSchedDecision
	// EvInterference samples the workload cache-pressure index.
	// A=index in milli-units (0..1000).
	EvInterference
	// EvFaultInject marks one injected fault (internal/faults).
	// A=fault class (faults.Class), Cell/Slot/Task where applicable,
	// Dur=class-specific detail (overrun extra time, fronthaul delay,
	// stuck-offload watchdog timeout).
	EvFaultInject
	// EvFaultRecover marks one recovery action after an injected fault.
	// A=fault class, B=action (0=cpu-fallback, 1=offload-retry, 2=abandon,
	// 3=storm-yield), Cell/Slot/Task where applicable.
	EvFaultRecover
	// EvPredictSample carries one predicted-vs-observed WCET pair, emitted
	// when a task's runtime becomes known (completion on a core or on the
	// accelerator). Core carries the DAG-local task ID — not a core number —
	// so the calibration monitor and the miss-cause attributor can join the
	// sample back to its timeline. Cell, Slot, Task=kind, Dur=observed
	// runtime, A=predicted WCET (ns), B=dag sequence.
	EvPredictSample
	// EvCellAdmit marks the fleet placement engine admitting a cell onto a
	// server (initial placement or re-admission after a reject retry).
	// Cell=global cell ID, Slot=fleet epoch, A=server, B=feasible-server
	// count within the cell's fronthaul budget.
	EvCellAdmit
	// EvCellMigrate marks the fleet placement engine moving a cell between
	// servers at an epoch boundary (load/miss pressure crossed the
	// hysteresis thresholds, or a forced demo migration). Cell=global cell
	// ID, Slot=fleet epoch, A=source server, B=destination server,
	// Dur=fronthaul latency to the destination.
	EvCellMigrate
	// EvCellReject marks a cell the placement engine could not admit: no
	// server lies within its fronthaul-latency budget. Cell=global cell ID,
	// Slot=fleet epoch, A=-1, B=feasible-server count (0).
	EvCellReject
	// EvDeviceReset marks an accelerator device entering (B=1) or leaving
	// (B=0) an injected whole-device reset. A=device ID.
	EvDeviceReset
	// EvReconcile marks the pool's reconciliation loop re-partitioning VF
	// queue depths after fleet membership changed. A=devices serving
	// traffic, B=total devices.
	EvReconcile
	// EvBatchSubmit marks one coalesced offload DMA transfer: A=requests in
	// the batch, B=total codeblocks, Dur=CPU submit time amortized away
	// versus per-task submission.
	EvBatchSubmit
	// EvSLOWindow marks one closed SLO aggregation window for a slice:
	// Task=slice, Slot=window sequence, Core=server, A=attempts, B=misses,
	// Dur=the slice objective's quantile latency over the window.
	EvSLOWindow
	// EvSLOAlert marks a multi-window burn-rate alert transition for a
	// slice: Task=slice, Slot=window sequence, Core=server, A=fast-window
	// burn rate in milli-units (1000 = burning exactly at budget),
	// B=1 firing / 0 cleared.
	EvSLOAlert
	numEventKinds
)

// NumEventKinds is the number of defined event kinds, exported for
// exhaustiveness checks in tests and analysis tooling.
const NumEventKinds = int(numEventKinds)

var eventKindNames = [numEventKinds]string{
	"dag_release", "task_enqueue", "task_dispatch", "task_complete",
	"offload_span", "dag_complete", "deadline_miss", "dag_drop",
	"core_acquire", "core_awake", "core_yield", "core_rotate",
	"sched_decision", "interference", "fault_inject", "fault_recover",
	"predict_sample", "cell_admit", "cell_migrate", "cell_reject",
	"device_reset", "reconcile", "batch_submit", "slo_window", "slo_alert",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if k >= numEventKinds {
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
	return eventKindNames[k]
}

// kindByName is the reverse of eventKindNames, built once on first use by
// ParseEventKind (the CSV reader's hot path is still a map lookup).
var kindByName = func() map[string]EventKind {
	m := make(map[string]EventKind, numEventKinds)
	for k := EventKind(0); k < numEventKinds; k++ {
		m[eventKindNames[k]] = k
	}
	return m
}()

// ParseEventKind maps an event-kind name (the String form, as written by
// WriteEventsCSV) back to its EventKind.
func ParseEventKind(s string) (EventKind, bool) {
	k, ok := kindByName[s]
	return k, ok
}

// Event is one timeline record. Unused fields hold -1 (Core, Cell, Slot,
// Task) or 0 (Dur, A, B); the field meaning per kind is documented on the
// EventKind constants. The struct is a compact value type so the ring buffer
// is a single flat allocation.
type Event struct {
	At   sim.Time
	Dur  sim.Time
	A, B int64
	Core int32
	Cell int32
	Slot int32
	Task int32
	Kind EventKind
}

// Tracer records events into a bounded ring buffer. When the buffer is full
// the oldest events are overwritten (the dropped count is kept), so memory
// stays bounded on arbitrarily long runs while the most recent window — the
// part that explains a late deadline miss — survives.
//
// A nil *Tracer is valid: Emit is a no-op and accessors return zero values.
type Tracer struct {
	buf     []Event
	next    int // next write position
	full    bool
	dropped uint64
}

// DefaultTraceCapacity bounds the ring when Options does not: 2^18 events
// (~16 MiB at 64 bytes each), roughly 40 simulated seconds of a 7-cell
// 20 MHz pool's task-level stream.
const DefaultTraceCapacity = 1 << 18

// NewTracer returns a tracer with the given ring capacity (<=0 selects
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit appends one event, overwriting the oldest when the ring is full.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		t.next = len(t.buf) % cap(t.buf)
		return
	}
	t.buf[t.next] = ev
	t.next = (t.next + 1) % len(t.buf)
	t.full = true
	t.dropped++
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events in emission order (oldest first). The
// simulation emits in virtual-time order with one exception: offload spans
// are recorded at submission with a future device start time, so their At
// may exceed a neighbour's by the queueing delay.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.full {
		return append([]Event(nil), t.buf...)
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Options configures a Recorder.
type Options struct {
	// TraceCapacity bounds the event ring buffer (<=0 selects
	// DefaultTraceCapacity).
	TraceCapacity int
	// SamplePeriod is the metrics time-series sampling interval; 0 lets the
	// instrumented component choose (the pool samples once per slot).
	SamplePeriod sim.Time
	// SampleCapacity bounds the metrics time-series ring: only the most
	// recent SampleCapacity rows are retained (<=0 selects
	// DefaultSampleCapacity).
	SampleCapacity int
}

// Recorder bundles the event tracer and the metrics registry that one
// simulation writes into. A nil *Recorder disables telemetry: components
// guard instrumentation sites with a single nil check.
type Recorder struct {
	Trace   *Tracer
	Metrics *Registry
	// SamplePeriod is the configured metrics sampling interval (0 = let the
	// instrumented component choose).
	SamplePeriod sim.Time
}

// New returns an enabled recorder.
func New(opts Options) *Recorder {
	return &Recorder{
		Trace:        NewTracer(opts.TraceCapacity),
		Metrics:      NewRegistryCapacity(opts.SampleCapacity),
		SamplePeriod: opts.SamplePeriod,
	}
}
