package telemetry

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"concordia/internal/sim"
)

// formatFloat renders v with the shortest round-trip representation, the
// same formatting encoding/json uses, so CSV and JSON exports of the same
// value agree byte-for-byte.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetricsCSV exports the registry's sampled time series as CSV: a
// time_us column followed by every sampled metric in sorted name order, one
// row per Sample call. Metrics registered after a sample was taken appear as
// empty cells in the earlier rows, so the column set is the sorted union
// across all rows and the bytes are run-order independent.
func (r *Registry) WriteMetricsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cols := map[string]bool{}
	r.sampleOrder(func(row *sampleRow) {
		for name := range row.vals {
			cols[name] = true
		}
	})
	names := make([]string, 0, len(cols))
	for name := range cols {
		names = append(names, name)
	}
	sort.Strings(names)

	bw.WriteString("time_us")
	for _, name := range names {
		bw.WriteByte(',')
		bw.WriteString(name)
	}
	bw.WriteByte('\n')
	r.sampleOrder(func(row *sampleRow) {
		bw.WriteString(formatFloat(row.at.Us()))
		for _, name := range names {
			bw.WriteByte(',')
			if v, ok := row.vals[name]; ok {
				bw.WriteString(formatFloat(v))
			}
		}
		bw.WriteByte('\n')
	})
	return bw.Flush()
}

// WriteSnapshotCSV exports the final value of every metric as name,value
// rows in sorted name order (histograms expand to _count/_sum/_le_* series).
func (r *Registry) WriteSnapshotCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("metric,value\n")
	for _, mv := range r.Snapshot() {
		bw.WriteString(mv.Name)
		bw.WriteByte(',')
		bw.WriteString(formatFloat(mv.Value))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteEventsCSV exports the tracer's retained events as CSV
// (time_us,kind,core,cell,slot,task,dur_us,a,b) in emission order.
func (t *Tracer) WriteEventsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("time_us,kind,core,cell,slot,task,dur_us,a,b\n")
	for _, ev := range t.Events() {
		bw.WriteString(formatFloat(ev.At.Us()))
		bw.WriteByte(',')
		bw.WriteString(ev.Kind.String())
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(int64(ev.Core), 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(int64(ev.Cell), 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(int64(ev.Slot), 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(int64(ev.Task), 10))
		bw.WriteByte(',')
		bw.WriteString(formatFloat(ev.Dur.Us()))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(ev.A, 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(ev.B, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadEventsCSV parses the WriteEventsCSV format back into events, so a
// trace captured by one binary can be autopsied by another. Timestamps
// round-trip exactly: WriteEventsCSV emits shortest-round-trip floats of
// whole-nanosecond times, so round(us*1000) recovers the original ns.
func ReadEventsCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 9
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("events csv: %w", err)
	}
	if header[0] != "time_us" || header[1] != "kind" {
		return nil, fmt.Errorf("events csv: unrecognised header %q", header)
	}
	usToTime := func(s string) (sim.Time, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, err
		}
		return sim.Time(math.Round(v * 1000)), nil
	}
	i32 := func(s string) (int32, error) {
		v, err := strconv.ParseInt(s, 10, 32)
		return int32(v), err
	}
	var out []Event
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("events csv: %w", err)
		}
		var ev Event
		var ok bool
		if ev.Kind, ok = ParseEventKind(rec[1]); !ok {
			return nil, fmt.Errorf("events csv line %d: unknown kind %q", line, rec[1])
		}
		if ev.At, err = usToTime(rec[0]); err == nil {
			ev.Core, err = i32(rec[2])
		}
		if err == nil {
			ev.Cell, err = i32(rec[3])
		}
		if err == nil {
			ev.Slot, err = i32(rec[4])
		}
		if err == nil {
			ev.Task, err = i32(rec[5])
		}
		if err == nil {
			ev.Dur, err = usToTime(rec[6])
		}
		if err == nil {
			ev.A, err = strconv.ParseInt(rec[7], 10, 64)
		}
		if err == nil {
			ev.B, err = strconv.ParseInt(rec[8], 10, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("events csv line %d: %w", line, err)
		}
		out = append(out, ev)
	}
}
