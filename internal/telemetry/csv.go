package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
)

// formatFloat renders v with the shortest round-trip representation, the
// same formatting encoding/json uses, so CSV and JSON exports of the same
// value agree byte-for-byte.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteMetricsCSV exports the registry's sampled time series as CSV: a
// time_us column followed by every sampled metric in sorted name order, one
// row per Sample call. Metrics registered after a sample was taken appear as
// empty cells in the earlier rows, so the column set is the sorted union
// across all rows and the bytes are run-order independent.
func (r *Registry) WriteMetricsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cols := map[string]bool{}
	if r != nil {
		for _, row := range r.rows {
			for name := range row.vals {
				cols[name] = true
			}
		}
	}
	names := make([]string, 0, len(cols))
	for name := range cols {
		names = append(names, name)
	}
	sort.Strings(names)

	bw.WriteString("time_us")
	for _, name := range names {
		bw.WriteByte(',')
		bw.WriteString(name)
	}
	bw.WriteByte('\n')
	if r != nil {
		for _, row := range r.rows {
			bw.WriteString(formatFloat(row.at.Us()))
			for _, name := range names {
				bw.WriteByte(',')
				if v, ok := row.vals[name]; ok {
					bw.WriteString(formatFloat(v))
				}
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WriteSnapshotCSV exports the final value of every metric as name,value
// rows in sorted name order (histograms expand to _count/_sum/_le_* series).
func (r *Registry) WriteSnapshotCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("metric,value\n")
	for _, mv := range r.Snapshot() {
		bw.WriteString(mv.Name)
		bw.WriteByte(',')
		bw.WriteString(formatFloat(mv.Value))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteEventsCSV exports the tracer's retained events as CSV
// (time_us,kind,core,cell,slot,task,dur_us,a,b) in emission order.
func (t *Tracer) WriteEventsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("time_us,kind,core,cell,slot,task,dur_us,a,b\n")
	for _, ev := range t.Events() {
		bw.WriteString(formatFloat(ev.At.Us()))
		bw.WriteByte(',')
		bw.WriteString(ev.Kind.String())
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(int64(ev.Core), 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(int64(ev.Cell), 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(int64(ev.Slot), 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(int64(ev.Task), 10))
		bw.WriteByte(',')
		bw.WriteString(formatFloat(ev.Dur.Us()))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(ev.A, 10))
		bw.WriteByte(',')
		bw.WriteString(strconv.FormatInt(ev.B, 10))
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
