package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"concordia/internal/sim"
)

// TestEventKindExhaustive fails loudly when a new EventKind is added without
// wiring every consumer: the String() name table, the name->kind parser, and
// the Chrome-trace disposition table. EvFaultInject/EvFaultRecover were added
// by hand in an earlier change; the next kind must not be forgettable.
func TestEventKindExhaustive(t *testing.T) {
	seen := map[string]EventKind{}
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "EventKind(") {
			t.Errorf("kind %d has no String() name", k)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k

		// The CSV reader must round-trip every name.
		parsed, ok := ParseEventKind(name)
		if !ok || parsed != k {
			t.Errorf("ParseEventKind(%q) = %v,%v; want %v,true", name, parsed, ok, k)
		}

		// Every kind needs an explicit Chrome-trace fate: rendered or
		// deliberately suppressed. The zero value means someone forgot.
		switch disp := chromeDispositions[k]; disp {
		case dispRendered:
			if len(convertEvent(Event{Kind: k})) == 0 {
				t.Errorf("kind %s marked rendered but convertEvent emits nothing", name)
			}
		case dispSuppressed:
			if n := len(convertEvent(Event{Kind: k})); n != 0 {
				t.Errorf("kind %s marked suppressed but convertEvent emits %d records", name, n)
			}
		default:
			t.Errorf("kind %s has no chrometrace disposition; add it to chromeDispositions", name)
		}
	}
	if NumEventKinds != int(numEventKinds) {
		t.Errorf("NumEventKinds = %d, want %d", NumEventKinds, int(numEventKinds))
	}
	if _, ok := ParseEventKind("no_such_kind"); ok {
		t.Error("ParseEventKind accepted an unknown name")
	}
}

// TestEventsCSVRoundTrip writes a representative event per kind (including
// negative sentinels and sub-microsecond timestamps) and reads it back:
// ReadEventsCSV must recover every field exactly.
func TestEventsCSVRoundTrip(t *testing.T) {
	tr := NewTracer(64)
	for k := EventKind(0); k < numEventKinds; k++ {
		tr.Emit(Event{
			At:   sim.Time(int64(k))*sim.Microsecond + 123, // whole-ns, not whole-us
			Dur:  sim.Time(int64(k)) * 7,
			A:    int64(k) * -3,
			B:    1 << 40,
			Core: int32(k) - 1,
			Cell: -1,
			Slot: int32(k),
			Task: int32(k) % 4,
			Kind: k,
		})
	}
	var buf bytes.Buffer
	if err := tr.WriteEventsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEventsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round-trip returned %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("event %d round-tripped as %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestReadEventsCSVRejectsGarbage covers the error paths: wrong header,
// unknown kind, malformed numbers, short rows.
func TestReadEventsCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"bad header":    "a,b,c,d,e,f,g,h,i\n",
		"unknown kind":  "time_us,kind,core,cell,slot,task,dur_us,a,b\n0,not_a_kind,0,0,0,0,0,0,0\n",
		"bad number":    "time_us,kind,core,cell,slot,task,dur_us,a,b\nxyz,dag_release,0,0,0,0,0,0,0\n",
		"short row":     "time_us,kind,core,cell,slot,task,dur_us,a,b\n0,dag_release,0\n",
		"empty input":   "",
		"bad int field": "time_us,kind,core,cell,slot,task,dur_us,a,b\n0,dag_release,zz,0,0,0,0,0,0\n",
	}
	for name, in := range cases {
		if _, err := ReadEventsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
