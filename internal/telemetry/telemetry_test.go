package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"concordia/internal/sim"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(Event{Kind: EvTaskComplete})
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must be inert")
	}
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(1)
	reg.Histogram("z", nil).Observe(1)
	reg.Sample(0)
	if reg.Samples() != 0 || reg.Snapshot() != nil {
		t.Fatal("nil registry must be inert")
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(Event{At: sim.Time(i), Kind: EvTaskComplete})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		if want := sim.Time(6 + i); ev.At != want {
			t.Fatalf("event %d at %v, want %v (oldest-first after wrap)", i, ev.At, want)
		}
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(Event{At: 1})
	tr.Emit(Event{At: 2})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].At != 1 || evs[1].At != 2 {
		t.Fatalf("unexpected events %+v", evs)
	}
	if tr.Dropped() != 0 {
		t.Fatal("no drops expected before wrap")
	}
}

func TestRegistryIdempotentAndSorted(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("b_tasks")
	c2 := r.Counter("b_tasks")
	if c1 != c2 {
		t.Fatal("Counter must be idempotent")
	}
	c1.Add(3)
	r.Gauge("a_cores").Set(2.5)
	r.Histogram("c_delay_us", []float64{10, 1}).Observe(5)
	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, mv := range snap {
		names[i] = mv.Name
	}
	want := []string{"a_cores", "b_tasks", "c_delay_us_count", "c_delay_us_le_1", "c_delay_us_le_10", "c_delay_us_le_inf", "c_delay_us_sum"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("snapshot order %v, want %v", names, want)
	}
	for _, mv := range snap {
		switch mv.Name {
		case "b_tasks":
			if mv.Value != 3 {
				t.Fatalf("b_tasks = %v", mv.Value)
			}
		case "c_delay_us_le_1":
			if mv.Value != 0 {
				t.Fatalf("le_1 = %v", mv.Value)
			}
		case "c_delay_us_le_10":
			if mv.Value != 1 {
				t.Fatalf("le_10 = %v (cumulative)", mv.Value)
			}
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 1.0001, 10, 11} {
		h.Observe(v)
	}
	b := h.Buckets()
	// <=1: 0.5 and 1; <=10: 1.0001 and 10; inf: 11.
	if b[0].Count != 2 || b[1].Count != 2 || b[2].Count != 1 || !b[2].Inf {
		t.Fatalf("bucket counts %+v", b)
	}
	if h.Total() != 5 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestMetricsCSVStableColumns(t *testing.T) {
	r := NewRegistry()
	r.Gauge("z").Set(1)
	r.Sample(sim.FromUs(1))
	r.Counter("a").Inc() // registered after the first sample
	r.Sample(sim.FromUs(2))
	var buf bytes.Buffer
	if err := r.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_us,a,z" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "1,,1" {
		t.Fatalf("row 1 %q (metric a unsampled in row 1 must be empty)", lines[1])
	}
	if lines[2] != "2,1,1" {
		t.Fatalf("row 2 %q", lines[2])
	}
}

func TestEventsCSV(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(Event{At: sim.FromUs(3), Kind: EvDeadlineMiss, Core: -1, Cell: 2, Slot: 7, Task: -1, Dur: sim.FromUs(12), A: 4, B: 1})
	var buf bytes.Buffer
	if err := tr.WriteEventsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "time_us,kind,core,cell,slot,task,dur_us,a,b\n3,deadline_miss,-1,2,7,-1,12,4,1\n"
	if buf.String() != want {
		t.Fatalf("events CSV:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// chromeEvent mirrors the trace-event schema for validation.
type chromeEvent struct {
	Name  string          `json:"name"`
	Ph    string          `json:"ph"`
	Ts    float64         `json:"ts"`
	Dur   *float64        `json:"dur"`
	Pid   int             `json:"pid"`
	Tid   int             `json:"tid"`
	Args  json.RawMessage `json:"args"`
	ID    json.RawMessage `json:"id"`
	Scope string          `json:"s"`
}

func TestChromeTraceSchema(t *testing.T) {
	tr := NewTracer(64)
	tr.Emit(Event{At: sim.FromUs(0), Kind: EvDAGRelease, Core: -1, Cell: 0, Slot: 0, Task: -1, A: 1, B: 1})
	tr.Emit(Event{At: sim.FromUs(5), Kind: EvCoreAcquire, Core: 2, Cell: -1, Slot: -1, Task: -1, A: 1})
	tr.Emit(Event{At: sim.FromUs(9), Kind: EvTaskComplete, Core: 2, Cell: 0, Slot: 0, Task: 0, Dur: sim.FromUs(4), A: 1})
	tr.Emit(Event{At: sim.FromUs(11), Kind: EvOffloadSpan, Core: -1, Cell: -1, Slot: -1, Task: 5, Dur: sim.FromUs(20), A: 0, B: 3})
	tr.Emit(Event{At: sim.FromUs(30), Kind: EvDeadlineMiss, Core: -1, Cell: 0, Slot: 0, Task: -1, Dur: sim.FromUs(2100), A: 1, B: 1})
	tr.Emit(Event{At: sim.FromUs(31), Kind: EvDAGComplete, Core: -1, Cell: 0, Slot: 0, Task: -1, A: 1, B: 1})
	tr.Emit(Event{At: sim.FromUs(40), Kind: EvSchedDecision, Core: 3, Cell: -1, Slot: -1, Task: -1, A: 3, B: 1})

	var buf bytes.Buffer
	meta := ChromeTraceMeta{Cores: 4, Workloads: []WorkloadSpan{{Name: "redis", From: 0, To: sim.FromUs(50)}}}
	if err := WriteChromeTrace(&buf, tr, meta); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	allowedPh := map[string]bool{"X": true, "i": true, "C": true, "M": true, "b": true, "e": true}
	phSeen := map[string]bool{}
	for i, ev := range parsed.TraceEvents {
		if ev.Name == "" {
			t.Fatalf("event %d has empty name", i)
		}
		if !allowedPh[ev.Ph] {
			t.Fatalf("event %d has unknown phase %q", i, ev.Ph)
		}
		phSeen[ev.Ph] = true
		if ev.Ph == "X" && (ev.Dur == nil || *ev.Dur < 0) {
			t.Fatalf("complete event %d lacks non-negative dur", i)
		}
		if (ev.Ph == "b" || ev.Ph == "e") && ev.ID == nil {
			t.Fatalf("async event %d lacks id", i)
		}
		if ev.Ts < 0 {
			t.Fatalf("event %d has negative ts", i)
		}
	}
	for _, ph := range []string{"X", "i", "C", "M", "b", "e"} {
		if !phSeen[ph] {
			t.Fatalf("expected at least one %q event", ph)
		}
	}
}

func TestMetricsCSVEmptyRegistry(t *testing.T) {
	// A registry with no metrics and no samples must export a header-only
	// CSV — exactly the time_us column and nothing after it.
	r := NewRegistry()
	var buf bytes.Buffer
	if err := r.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "time_us\n" {
		t.Fatalf("empty registry CSV %q, want %q", got, "time_us\n")
	}
	// Sampling with no metrics registered still yields rows with only the
	// timestamp cell — no trailing separators.
	r.Sample(sim.FromUs(5))
	r.Sample(sim.FromUs(6))
	buf.Reset()
	if err := r.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "time_us\n5\n6\n" {
		t.Fatalf("metric-less samples CSV %q, want %q", got, "time_us\n5\n6\n")
	}
}

func TestEventsCSVEmptyTracer(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer(8).WriteEventsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "time_us,kind,core,cell,slot,task,dur_us,a,b\n"
	if buf.String() != want {
		t.Fatalf("empty tracer CSV %q, want header only", buf.String())
	}
}
