package telemetry

import (
	"fmt"
	"math"
	"sort"

	"concordia/internal/sim"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram buckets samples into fixed upper-bound ranges. The bounds are
// fixed at registration (no adaptive resizing), which is what makes the
// exported bucket set — and therefore the output bytes — independent of the
// sample stream's order.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts  []uint64  // len(bounds)+1
	total   uint64
	sum     float64
	invalid uint64 // NaN/±Inf observations, dropped from the buckets
}

// Observe records one sample. NaN and ±Inf are not observations: they are
// dropped and counted in Invalid, rather than silently polluting the
// overflow bucket (NaN/+Inf) or the first bucket (-Inf) and poisoning the
// sum.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		h.invalid++
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.total++
	h.sum += v
}

// Invalid returns the number of dropped NaN/±Inf observations.
func (h *Histogram) Invalid() uint64 {
	if h == nil {
		return 0
	}
	return h.invalid
}

// Total returns the number of observed samples.
func (h *Histogram) Total() uint64 {
	if h == nil {
		return 0
	}
	return h.total
}

// Sum returns the sum of observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Buckets returns (upper bound, count) pairs in ascending bound order; the
// final pair has Inf=true and holds the overflow count.
func (h *Histogram) Buckets() []HistBucket {
	if h == nil {
		return nil
	}
	out := make([]HistBucket, len(h.counts))
	for i, c := range h.counts {
		if i < len(h.bounds) {
			out[i] = HistBucket{Le: h.bounds[i], Count: c}
		} else {
			out[i] = HistBucket{Inf: true, Count: c}
		}
	}
	return out
}

// HistBucket is one histogram range: samples <= Le (or the +Inf overflow).
type HistBucket struct {
	Le    float64
	Inf   bool
	Count uint64
}

// DefaultLatencyBucketsUs is the standard microsecond bucket ladder used for
// queueing-delay, runtime and wakeup histograms.
var DefaultLatencyBucketsUs = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// Registry owns named metrics and the sampled time series. Registration is
// idempotent (Counter("x") twice returns the same counter) and all iteration
// — snapshots, CSV export — is in sorted name order, so output is
// byte-identical across runs regardless of registration order.
//
// A nil *Registry is valid: lookups return nil metrics whose methods are
// no-ops, and Sample does nothing.
//
// The sampled time series is a bounded ring of the most recent
// sampleCap rows: long fleet runs with -metrics keep the newest history
// instead of growing without bound, and evictions are counted.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	sampleCap   int
	rows        []sampleRow
	rowNext     int // next overwrite position once the ring is full
	rowFull     bool
	rowsEvicted uint64
}

type sampleRow struct {
	at   sim.Time
	vals map[string]float64
}

// DefaultSampleCapacity bounds the sampled time series when no explicit
// capacity is configured: at the pool's one-sample-per-slot cadence this
// retains over a minute of 5G numerology-1 history.
const DefaultSampleCapacity = 1 << 17

// NewRegistry returns an empty registry with the default sample capacity.
func NewRegistry() *Registry {
	return NewRegistryCapacity(0)
}

// NewRegistryCapacity returns an empty registry retaining the last
// capacity sample rows (<=0 selects DefaultSampleCapacity).
func NewRegistryCapacity(capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultSampleCapacity
	}
	return &Registry{
		counters:  map[string]*Counter{},
		gauges:    map[string]*Gauge{},
		hists:     map[string]*Histogram{},
		sampleCap: capacity,
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given upper
// bounds on first use (bounds are sorted defensively; later calls may pass
// nil). Panics if bounds are empty at creation.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		if len(bounds) == 0 {
			panic(fmt.Sprintf("telemetry: histogram %q registered without bounds", name))
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Sample appends one time-series row holding the current value of every
// registered counter and gauge, stamped with virtual time at. Once the
// ring is full the oldest row is overwritten (its map is reused, so
// steady-state sampling of a stable metric set does not grow the heap).
func (r *Registry) Sample(at sim.Time) {
	if r == nil {
		return
	}
	var vals map[string]float64
	if len(r.rows) < r.sampleCap {
		vals = make(map[string]float64, len(r.counters)+len(r.gauges))
		r.rows = append(r.rows, sampleRow{at: at, vals: vals})
	} else {
		row := &r.rows[r.rowNext]
		row.at = at
		clear(row.vals)
		vals = row.vals
		r.rowNext++
		if r.rowNext == len(r.rows) {
			r.rowNext = 0
		}
		r.rowFull = true
		r.rowsEvicted++
	}
	for name, c := range r.counters {
		vals[name] = float64(c.v)
	}
	for name, g := range r.gauges {
		vals[name] = g.v
	}
}

// Samples returns the number of retained time-series rows.
func (r *Registry) Samples() int {
	if r == nil {
		return 0
	}
	return len(r.rows)
}

// SamplesEvicted returns how many rows the ring has overwritten.
func (r *Registry) SamplesEvicted() uint64 {
	if r == nil {
		return 0
	}
	return r.rowsEvicted
}

// sampleOrder walks the retained rows oldest-first, calling fn for each.
func (r *Registry) sampleOrder(fn func(*sampleRow)) {
	if r == nil {
		return
	}
	if !r.rowFull {
		for i := range r.rows {
			fn(&r.rows[i])
		}
		return
	}
	for i := r.rowNext; i < len(r.rows); i++ {
		fn(&r.rows[i])
	}
	for i := 0; i < r.rowNext; i++ {
		fn(&r.rows[i])
	}
}

// MetricValue is one named value in a registry snapshot.
type MetricValue struct {
	Name  string
	Value float64
}

// sortedKeys returns m's keys in sorted order (the maporder-sanctioned
// iteration pattern).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Snapshot returns the final value of every metric, sorted by name.
// Histograms expand to name_count, name_sum and cumulative name_le_<bound>
// series (with name_le_inf for the overflow bucket).
func (r *Registry) Snapshot() []MetricValue {
	if r == nil {
		return nil
	}
	out := make([]MetricValue, 0, len(r.counters)+len(r.gauges)+4*len(r.hists))
	for _, name := range sortedKeys(r.counters) {
		out = append(out, MetricValue{Name: name, Value: float64(r.counters[name].v)})
	}
	for _, name := range sortedKeys(r.gauges) {
		out = append(out, MetricValue{Name: name, Value: r.gauges[name].v})
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		out = append(out, MetricValue{Name: name + "_count", Value: float64(h.total)})
		out = append(out, MetricValue{Name: name + "_sum", Value: h.sum})
		if h.invalid > 0 {
			// Emitted only when NaN/±Inf were actually observed, so clean
			// runs keep their existing snapshot bytes.
			out = append(out, MetricValue{Name: name + "_invalid", Value: float64(h.invalid)})
		}
		cum := uint64(0)
		for _, b := range h.Buckets() {
			cum += b.Count
			if b.Inf {
				out = append(out, MetricValue{Name: name + "_le_inf", Value: float64(cum)})
			} else {
				out = append(out, MetricValue{Name: fmt.Sprintf("%s_le_%g", name, b.Le), Value: float64(cum)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
