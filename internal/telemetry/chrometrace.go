package telemetry

import (
	"encoding/json"
	"io"
	"strconv"

	"concordia/internal/ran"
	"concordia/internal/sim"
)

// ChromeTraceMeta describes the run being exported so the trace viewer can
// label its tracks.
type ChromeTraceMeta struct {
	// Process names the pool process row (default "vran-pool").
	Process string
	// Cores is the pool core count; one viewer thread per core.
	Cores int
	// Workloads lists collocated best-effort activity intervals, rendered as
	// spans on a separate process row.
	Workloads []WorkloadSpan
}

// WorkloadSpan is one interval during which a named workload was active.
type WorkloadSpan struct {
	Name     string
	From, To sim.Time
}

// Trace-viewer process/thread layout: the pool's cores are threads of pid 1
// (tid 0 is the scheduler/control track), accelerator lanes are threads of
// pid 2, workloads are threads of pid 3.
const (
	pidPool     = 1
	pidAccel    = 2
	pidWorkload = 3
	tidSched    = 0
)

// traceEvent is one Chrome trace-event object. Field order and omitempty
// choices are part of the exported byte format; do not reorder.
type traceEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	ID    *int64         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container format.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func us(t sim.Time) float64 { return t.Us() }

func durp(d sim.Time) *float64 {
	v := d.Us()
	return &v
}

func idp(v int64) *int64 { return &v }

func taskName(task int32) string {
	if task < 0 || task >= int32(ran.NumTaskKinds) {
		return "task"
	}
	return ran.TaskKind(task).String()
}

func dirName(dir int64) string { return ran.SlotDir(dir).String() }

// metaEvent builds a process_name/thread_name metadata record.
func metaEvent(name string, pid, tid int, value string) traceEvent {
	return traceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": value}}
}

// WriteChromeTrace exports the tracer's retained events as Chrome
// trace-event JSON (the "JSON object format" with a traceEvents array),
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. One process
// per pool with one thread per core; task executions are complete ("X")
// spans, scheduler decisions and the interference index are counter ("C")
// tracks, deadline misses and core transitions are instants ("i"), DAG
// lifetimes are async ("b"/"e") spans keyed by the DAG sequence number, and
// accelerator requests are spans on the device's lane threads.
func WriteChromeTrace(w io.Writer, t *Tracer, meta ChromeTraceMeta) error {
	if meta.Process == "" {
		meta.Process = "vran-pool"
	}
	events := t.Events()
	out := make([]traceEvent, 0, len(events)+2*meta.Cores+8)

	// Track metadata first: process and thread names.
	out = append(out,
		metaEvent("process_name", pidPool, 0, meta.Process),
		metaEvent("thread_name", pidPool, tidSched, "scheduler"),
	)
	for c := 0; c < meta.Cores; c++ {
		out = append(out, metaEvent("thread_name", pidPool, c+1, "core "+strconv.Itoa(c)))
	}

	haveAccel := false
	for _, ev := range events {
		out = append(out, convertEvent(ev)...)
		if ev.Kind == EvOffloadSpan {
			haveAccel = true
		}
	}
	if haveAccel {
		out = append(out, metaEvent("process_name", pidAccel, 0, "accelerator"))
	}
	if len(meta.Workloads) > 0 {
		out = append(out, metaEvent("process_name", pidWorkload, 0, "workloads"))
		names := map[string]int{}
		for _, span := range meta.Workloads {
			tid, ok := names[span.Name]
			if !ok {
				tid = len(names) + 1
				names[span.Name] = tid
				out = append(out, metaEvent("thread_name", pidWorkload, tid, span.Name))
			}
			out = append(out, traceEvent{
				Name: span.Name, Cat: "workload", Ph: "X",
				Ts: us(span.From), Dur: durp(span.To - span.From),
				Pid: pidWorkload, Tid: tid,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ns"})
}

// traceDisposition records whether a kind is rendered by convertEvent or
// intentionally suppressed. The zero value means "unmapped": adding an
// EventKind without deciding its Chrome-trace fate fails the exhaustiveness
// test loudly instead of silently falling through convertEvent's default.
type traceDisposition uint8

const (
	dispUnmapped traceDisposition = iota
	dispRendered
	dispSuppressed
)

// chromeDispositions must have a non-zero entry for every EventKind.
var chromeDispositions = [numEventKinds]traceDisposition{
	EvDAGRelease:    dispRendered,
	EvTaskEnqueue:   dispSuppressed, // metrics-level; would double the span count
	EvTaskDispatch:  dispSuppressed, // metrics-level; would double the span count
	EvTaskComplete:  dispRendered,
	EvOffloadSpan:   dispRendered,
	EvDAGComplete:   dispRendered,
	EvDeadlineMiss:  dispRendered,
	EvDAGDrop:       dispRendered,
	EvCoreAcquire:   dispRendered,
	EvCoreAwake:     dispRendered,
	EvCoreYield:     dispRendered,
	EvCoreRotate:    dispRendered,
	EvSchedDecision: dispRendered,
	EvInterference:  dispRendered,
	EvFaultInject:   dispRendered,
	EvFaultRecover:  dispRendered,
	EvPredictSample: dispSuppressed, // analysis-level; consumed by internal/analysis
	EvCellAdmit:     dispRendered,
	EvCellMigrate:   dispRendered,
	EvCellReject:    dispRendered,
	EvDeviceReset:   dispRendered,
	EvReconcile:     dispRendered,
	EvBatchSubmit:   dispSuppressed, // metrics-level; offload spans already render per request
	EvSLOWindow:     dispRendered,
	EvSLOAlert:      dispRendered,
}

// convertEvent maps one telemetry event to zero or more trace events.
func convertEvent(ev Event) []traceEvent {
	switch ev.Kind {
	case EvTaskComplete:
		// Span drawn backwards from completion: At-Dur .. At on the core's
		// thread (core tids are offset by one past the scheduler track).
		return []traceEvent{{
			Name: taskName(ev.Task), Cat: "task", Ph: "X",
			Ts: us(ev.At - ev.Dur), Dur: durp(ev.Dur),
			Pid: pidPool, Tid: int(ev.Core) + 1,
			Args: map[string]any{"cell": ev.Cell, "slot": ev.Slot, "dag": ev.A},
		}}
	case EvOffloadSpan:
		return []traceEvent{{
			Name: taskName(ev.Task), Cat: "offload", Ph: "X",
			Ts: us(ev.At), Dur: durp(ev.Dur),
			Pid: pidAccel, Tid: int(ev.A) + 1,
			Args: map[string]any{"codeblocks": ev.B},
		}}
	case EvDAGRelease:
		return []traceEvent{{
			Name: "dag " + dirName(ev.B), Cat: "dag", Ph: "b",
			Ts: us(ev.At), Pid: pidPool, Tid: tidSched, ID: idp(ev.A),
			Args: map[string]any{"cell": ev.Cell, "slot": ev.Slot},
		}}
	case EvDAGComplete, EvDAGDrop:
		return []traceEvent{{
			Name: "dag " + dirName(ev.B), Cat: "dag", Ph: "e",
			Ts: us(ev.At), Pid: pidPool, Tid: tidSched, ID: idp(ev.A),
		}}
	case EvDeadlineMiss:
		return []traceEvent{{
			Name: "deadline_miss", Cat: "deadline", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: tidSched, Scope: "p",
			Args: map[string]any{"cell": ev.Cell, "slot": ev.Slot, "latency_us": ev.Dur.Us()},
		}}
	case EvSchedDecision:
		return []traceEvent{{
			Name: "ran_cores", Ph: "C", Ts: us(ev.At), Pid: pidPool, Tid: tidSched,
			Args: map[string]any{"target": ev.B, "owned": ev.Core},
		}}
	case EvInterference:
		return []traceEvent{{
			Name: "interference", Ph: "C", Ts: us(ev.At), Pid: pidPool, Tid: tidSched,
			Args: map[string]any{"index": float64(ev.A) / 1000},
		}}
	case EvCoreAcquire:
		return []traceEvent{{
			Name: "acquire", Cat: "core", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: int(ev.Core) + 1, Scope: "t",
		}}
	case EvCoreAwake:
		return []traceEvent{{
			Name: "awake", Cat: "core", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: int(ev.Core) + 1, Scope: "t",
			Args: map[string]any{"wakeup_us": ev.Dur.Us()},
		}}
	case EvCoreYield:
		return []traceEvent{{
			Name: "yield", Cat: "core", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: int(ev.Core) + 1, Scope: "t",
		}}
	case EvFaultInject:
		return []traceEvent{{
			Name: "fault_inject", Cat: "fault", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: tidSched, Scope: "p",
			Args: map[string]any{"class": ev.A, "cell": ev.Cell, "detail_us": ev.Dur.Us()},
		}}
	case EvFaultRecover:
		return []traceEvent{{
			Name: "fault_recover", Cat: "fault", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: tidSched, Scope: "p",
			Args: map[string]any{"class": ev.A, "action": ev.B},
		}}
	case EvCoreRotate:
		return []traceEvent{{
			Name: "rotate", Cat: "core", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: int(ev.Core) + 1, Scope: "t",
			Args: map[string]any{"to": ev.A},
		}}
	case EvCellAdmit:
		return []traceEvent{{
			Name: "cell_admit", Cat: "fleet", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: tidSched, Scope: "p",
			Args: map[string]any{"cell": ev.Cell, "server": ev.A, "feasible": ev.B},
		}}
	case EvCellMigrate:
		return []traceEvent{{
			Name: "cell_migrate", Cat: "fleet", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: tidSched, Scope: "p",
			Args: map[string]any{"cell": ev.Cell, "from": ev.A, "to": ev.B, "fronthaul_us": ev.Dur.Us()},
		}}
	case EvCellReject:
		return []traceEvent{{
			Name: "cell_reject", Cat: "fleet", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: tidSched, Scope: "p",
			Args: map[string]any{"cell": ev.Cell, "feasible": ev.B},
		}}
	case EvSLOWindow:
		// One counter track per slice: windowed attempts/misses plus the
		// objective-quantile latency, sampled at each window boundary.
		return []traceEvent{{
			Name: "slo_slice_" + strconv.Itoa(int(ev.Task)), Ph: "C",
			Ts: us(ev.At), Pid: pidPool, Tid: tidSched,
			Args: map[string]any{"attempts": ev.A, "misses": ev.B, "q_latency_us": ev.Dur.Us()},
		}}
	case EvSLOAlert:
		name := "slo_alert_clear"
		if ev.B == 1 {
			name = "slo_alert_fire"
		}
		return []traceEvent{{
			Name: name, Cat: "slo", Ph: "i",
			Ts: us(ev.At), Pid: pidPool, Tid: tidSched, Scope: "p",
			Args: map[string]any{"slice": ev.Task, "burn_milli": ev.A, "window": ev.Slot},
		}}
	case EvDeviceReset:
		name := "device_up"
		if ev.B == 1 {
			name = "device_down"
		}
		return []traceEvent{{
			Name: name, Cat: "accel", Ph: "i",
			Ts: us(ev.At), Pid: pidAccel, Tid: 0, Scope: "p",
			Args: map[string]any{"device": ev.A},
		}}
	case EvReconcile:
		return []traceEvent{{
			Name: "reconcile", Cat: "accel", Ph: "i",
			Ts: us(ev.At), Pid: pidAccel, Tid: 0, Scope: "p",
			Args: map[string]any{"alive": ev.A, "devices": ev.B},
		}}
	default:
		// Enqueue/dispatch are metrics-level events; they would double the
		// span count without adding viewer value.
		return nil
	}
}
