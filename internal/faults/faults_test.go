package faults

import (
	"testing"

	"concordia/internal/sim"
)

func TestParseSpec(t *testing.T) {
	c, err := Parse("lane=0.05,stuck=0.02,overrun=0.1,factor=6,burst=5,storm=2,late=0.01,drop=0.005,timeout-us=400,retries=2")
	if err != nil {
		t.Fatal(err)
	}
	if c.LaneFailure != 0.05 || c.StuckOffload != 0.02 || c.Overrun != 0.1 {
		t.Fatalf("rates parsed wrong: %+v", c)
	}
	if c.OverrunFactor != 6 || c.MaxRetries != 2 {
		t.Fatalf("knobs parsed wrong: %+v", c)
	}
	if c.StuckTimeout != sim.FromUs(400) {
		t.Fatalf("timeout parsed wrong: %v", c.StuckTimeout)
	}
	if !c.Enabled() {
		t.Fatal("parsed config should be enabled")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{"lane", "lane=x", "lane=-1", "bogus=1"} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestParseEmptyAndAll(t *testing.T) {
	c, err := Parse("")
	if err != nil || c.Enabled() {
		t.Fatalf("empty spec must disable faults: %+v err=%v", c, err)
	}
	c, err = Parse("all")
	if err != nil || !c.Enabled() {
		t.Fatalf("all preset must enable faults: %+v err=%v", c, err)
	}
	if NewInjector(Config{}, 1) != nil {
		t.Fatal("zero config must yield a nil injector")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.LaneFails(1, 2, 0) || in.OffloadStuck(1, 2, 0) {
		t.Fatal("nil injector injected an offload fault")
	}
	if _, ok := in.Overrun(1, 2); ok {
		t.Fatal("nil injector injected an overrun")
	}
	if d, drop := in.Fronthaul(0, 0); d != 0 || drop {
		t.Fatal("nil injector injected a fronthaul fault")
	}
	if in.BurstInterference(sim.Second) != 0 || in.StolenCores(sim.Second, 8) != 0 {
		t.Fatal("nil injector injected a window fault")
	}
	if in.DeviceDown(0, sim.Second) {
		t.Fatal("nil injector injected a device reset")
	}
	if in.Stats().Total() != 0 {
		t.Fatal("nil injector counted faults")
	}
}

// Decisions must be pure functions of (seed, class, identifiers): the same
// query gives the same answer regardless of query order or repetition.
func TestDecisionsOrderIndependent(t *testing.T) {
	cfg := Config{LaneFailure: 0.3, Overrun: 0.3, FronthaulLate: 0.3, FronthaulDrop: 0.1}
	a := NewInjector(cfg, 7)
	b := NewInjector(cfg, 7)
	// Query a forward, b backward; outcomes must match pairwise.
	type key struct{ seq, id int64 }
	keys := make([]key, 0, 200)
	for s := int64(0); s < 20; s++ {
		for i := int64(0); i < 10; i++ {
			keys = append(keys, key{s, i})
		}
	}
	fwd := make(map[key]bool, len(keys))
	for _, k := range keys {
		fwd[k] = a.LaneFails(k.seq, k.id, 0)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		if b.LaneFails(k.seq, k.id, 0) != fwd[k] {
			t.Fatalf("lane decision for %+v depends on query order", k)
		}
	}
	// Different seeds must give a different schedule (sanity, not certainty:
	// 200 coin flips at p=0.3 colliding entirely is ~impossible).
	c := NewInjector(cfg, 8)
	same := 0
	for _, k := range keys {
		if c.LaneFails(k.seq, k.id, 0) == fwd[k] {
			same++
		}
	}
	if same == len(keys) {
		t.Fatal("seed does not influence the fault schedule")
	}
}

func TestDecisionRatesApproximate(t *testing.T) {
	in := NewInjector(Config{Overrun: 0.2}, 42)
	hits := 0
	const n = 20000
	for i := int64(0); i < n; i++ {
		if _, ok := in.Overrun(i, i%7); ok {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.17 || got > 0.23 {
		t.Fatalf("overrun rate %f far from configured 0.2", got)
	}
	if in.Stats().Overruns != uint64(hits) {
		t.Fatalf("stats mismatch: %d vs %d", in.Stats().Overruns, hits)
	}
}

func TestWindowsMonotonicAndCounted(t *testing.T) {
	cfg := Config{BurstPerSec: 50, BurstDuration: sim.Millisecond}
	a := NewInjector(cfg, 9)
	b := NewInjector(cfg, 9)
	// Same seed, different query granularity: the active set must agree at
	// shared instants, and each window is counted once.
	coarse := map[sim.Time]bool{}
	for ts := sim.Time(0); ts < 2*sim.Second; ts += 500 * sim.Microsecond {
		coarse[ts] = a.BurstInterference(ts) > 0
	}
	for ts := sim.Time(0); ts < 2*sim.Second; ts += 100 * sim.Microsecond {
		active := b.BurstInterference(ts) > 0
		if want, ok := coarse[ts]; ok && want != active {
			t.Fatalf("window activity at %v differs with query granularity", ts)
		}
	}
	if a.Stats().Bursts == 0 {
		t.Fatal("no bursts generated over 2 s at 50/s")
	}
	if b.Stats().Bursts < a.Stats().Bursts {
		t.Fatalf("finer querying lost windows: %d < %d", b.Stats().Bursts, a.Stats().Bursts)
	}
}

func TestStolenCoresClamped(t *testing.T) {
	in := NewInjector(Config{StormPerSec: 1000, StormDuration: sim.Second, StormCores: 99}, 3)
	// With a storm virtually always active, stolen must clamp to the pool.
	found := false
	for ts := sim.Time(0); ts < sim.Second; ts += 10 * sim.Millisecond {
		if n := in.StolenCores(ts, 6); n > 0 {
			found = true
			if n > 6 {
				t.Fatalf("stole %d cores from a 6-core pool", n)
			}
		}
	}
	if !found {
		t.Fatal("no storm observed at rate 1000/s")
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	in := NewInjector(Config{StuckOffload: 0.1}, 1)
	base := in.Backoff(1)
	if base <= 0 {
		t.Fatal("backoff must default positive")
	}
	if in.Backoff(2) != 2*base || in.Backoff(3) != 4*base {
		t.Fatal("backoff must double per attempt")
	}
	if in.Backoff(50) != 16*base {
		t.Fatalf("backoff must cap at 16x base, got %v", in.Backoff(50))
	}
}

func TestConfigStringCanonical(t *testing.T) {
	c, _ := Parse("stuck=0.02,lane=0.05")
	if got := c.String(); got != "lane=0.05,stuck=0.02" {
		t.Fatalf("canonical spec = %q", got)
	}
	if (Config{}).String() != "off" {
		t.Fatal("zero config must render as off")
	}
}

// Device-reset windows must be per-device independent, deterministic, and
// identical regardless of which device is queried first.
func TestDeviceResetWindows(t *testing.T) {
	cfg := Config{DeviceResetPerSec: 200, DeviceResetDuration: 2 * sim.Millisecond}
	a := NewInjector(cfg, 9)
	b := NewInjector(cfg, 9)

	const steps = 4000
	const tick = 250 * sim.Microsecond
	var downA0, downA1 []bool
	for i := 0; i < steps; i++ {
		now := sim.Time(i) * tick
		// a queries device 0 then 1; b queries 1 then 0.
		d0 := a.DeviceDown(0, now)
		d1 := a.DeviceDown(1, now)
		e1 := b.DeviceDown(1, now)
		e0 := b.DeviceDown(0, now)
		if d0 != e0 || d1 != e1 {
			t.Fatalf("step %d: query order changed the schedule", i)
		}
		downA0 = append(downA0, d0)
		downA1 = append(downA1, d1)
	}
	if a.Stats().DeviceResets == 0 {
		t.Fatal("no resets observed at rate 200/s over 1s")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	same := true
	for i := range downA0 {
		if downA0[i] != downA1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("devices 0 and 1 drew identical reset schedules")
	}
}

func TestParseDeviceReset(t *testing.T) {
	c, err := Parse("reset=5,reset-ms=1.5")
	if err != nil {
		t.Fatal(err)
	}
	if c.DeviceResetPerSec != 5 || c.DeviceResetDuration != sim.FromMs(1.5) {
		t.Fatalf("parsed %+v", c)
	}
	if !c.Enabled() {
		t.Fatal("reset-only config must enable faults")
	}
	if got := c.String(); got != "reset=5" {
		t.Fatalf("canonical spec = %q", got)
	}
}
