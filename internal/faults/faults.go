// Package faults is the deterministic chaos layer: a seeded, virtual-time
// fault injector that provokes the failure modes Concordia's evaluation
// argues the system survives (§4.3 critical-stage escalation, §6.4
// robustness to WCET misprediction) without ever touching the host clock or
// global RNG state.
//
// Determinism contract (DESIGN.md §5b applies here too): every decision is a
// pure function of (seed, fault class, stable identifiers) via
// rng.SubstreamSeed, so the injected schedule is byte-identical for a fixed
// seed regardless of -workers, event-callback ordering, or how often a
// decision point is consulted. Per-event faults (offload failures, task
// overruns, fronthaul lateness) key on (DAG sequence, task ID) or
// (cell, slot); windowed faults (interference bursts, core-yield storms) are
// drawn lazily from a dedicated substream as virtual time advances — legal
// because discrete-event time is monotone, so the window sequence consulted
// is independent of which component asks first.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"concordia/internal/rng"
	"concordia/internal/sim"
)

// Class enumerates the injectable fault classes.
type Class int

// The fault taxonomy. Each class models one way a production vRAN pool
// degrades: device lanes failing DMA, offload requests lost inside the
// accelerator, tasks overrunning their predicted WCET, best-effort neighbours
// suddenly thrashing the cache, the host kernel yanking cores, and fronthaul
// packets arriving late or not at all.
const (
	LaneFailure Class = iota
	StuckOffload
	TaskOverrun
	InterferenceBurst
	YieldStorm
	FronthaulLate
	FronthaulDrop
	DeviceReset
	numClasses
)

// NumClasses is the size of the fault taxonomy, exported for consumers that
// key fixed-size per-class tables (the SLO plane's miss attribution).
const NumClasses = int(numClasses)

var classNames = [numClasses]string{
	"lane_failure", "stuck_offload", "task_overrun", "interference_burst",
	"yield_storm", "fronthaul_late", "fronthaul_drop", "device_reset",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Config sets per-class fault rates and recovery-policy knobs. The zero
// value injects nothing; Enabled reports whether any class is live.
type Config struct {
	// LaneFailure is the probability that one offload submission is rejected
	// by the device (recovered by CPU fallback on the submitting core).
	LaneFailure float64
	// StuckOffload is the probability that one accepted offload request
	// vanishes inside the device and never completes; a virtual-time
	// watchdog (StuckTimeout) detects the loss.
	StuckOffload float64
	// StuckTimeout is the watchdog delay before a stuck offload is declared
	// lost (default 300 µs).
	StuckTimeout sim.Time
	// MaxRetries bounds offload re-submissions after a stuck offload before
	// the task falls back to CPU execution (default 1).
	MaxRetries int
	// RetryBackoff is the base virtual-time backoff before re-queueing a
	// timed-out offload; attempt k waits RetryBackoff << (k-1) (default 50 µs).
	RetryBackoff sim.Time
	// Overrun is the probability that one CPU task execution overruns its
	// sampled runtime by OverrunFactor (default factor 4) — the WCET
	// misprediction that forces critical-stage escalation.
	Overrun       float64
	OverrunFactor float64
	// BurstPerSec is the expected rate of best-effort interference bursts
	// (per simulated second); each burst raises the cache-pressure index by
	// BurstIntensity (default 0.9) for BurstDuration (default 2 ms).
	BurstPerSec    float64
	BurstDuration  sim.Time
	BurstIntensity float64
	// StormPerSec is the expected rate of core-yield storms (per simulated
	// second): for StormDuration (default 1 ms) the host steals StormCores
	// cores (default half the pool) from the RAN.
	StormPerSec   float64
	StormDuration sim.Time
	StormCores    int
	// FronthaulLate is the per-(cell, slot) probability that the slot's
	// fronthaul data arrives LateDelay (default 300 µs) after the TTI
	// boundary; FronthaulDrop is the probability it never arrives.
	FronthaulLate float64
	LateDelay     sim.Time
	FronthaulDrop float64
	// DeviceResetPerSec is the expected per-device rate of whole-device
	// resets (per simulated second): for DeviceResetDuration (default 3 ms)
	// the device rejects every new offload submission while in-flight work
	// drains, and the pool's reconciliation loop re-partitions VF queue
	// depths across the surviving devices.
	DeviceResetPerSec   float64
	DeviceResetDuration sim.Time
}

// Enabled reports whether any fault class has a positive rate.
func (c Config) Enabled() bool {
	return c.LaneFailure > 0 || c.StuckOffload > 0 || c.Overrun > 0 ||
		c.BurstPerSec > 0 || c.StormPerSec > 0 ||
		c.FronthaulLate > 0 || c.FronthaulDrop > 0 ||
		c.DeviceResetPerSec > 0
}

// withDefaults fills unset recovery-policy knobs.
func (c Config) withDefaults() Config {
	if c.StuckTimeout <= 0 {
		c.StuckTimeout = 300 * sim.Microsecond
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 1
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * sim.Microsecond
	}
	if c.OverrunFactor <= 1 {
		c.OverrunFactor = 4
	}
	if c.BurstDuration <= 0 {
		c.BurstDuration = 2 * sim.Millisecond
	}
	if c.BurstIntensity <= 0 || c.BurstIntensity > 1 {
		c.BurstIntensity = 0.9
	}
	if c.StormDuration <= 0 {
		c.StormDuration = sim.Millisecond
	}
	if c.LateDelay <= 0 {
		c.LateDelay = 300 * sim.Microsecond
	}
	if c.DeviceResetDuration <= 0 {
		c.DeviceResetDuration = 3 * sim.Millisecond
	}
	return c
}

// Parse builds a Config from a -faults flag spec: a comma-separated list of
// key=value pairs, e.g. "lane=0.05,stuck=0.02,overrun=0.05,factor=6".
// The preset "all" enables a moderate rate for every class. Keys:
//
//	lane, stuck, overrun, burst, storm, late, drop, reset — per-class rates
//	factor       — overrun runtime multiplier
//	retries      — offload retries before CPU fallback
//	timeout-us   — stuck-offload watchdog (µs)
//	backoff-us   — retry backoff base (µs)
//	burst-ms, storm-ms — window durations (ms)
//	intensity    — burst cache-pressure index (0..1]
//	storm-cores  — cores stolen per storm
//	late-us      — fronthaul late-arrival delay (µs)
//	reset-ms     — device-reset outage duration (ms)
func Parse(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	if spec == "all" {
		return Config{
			LaneFailure: 0.02, StuckOffload: 0.01, Overrun: 0.02,
			BurstPerSec: 5, StormPerSec: 2,
			FronthaulLate: 0.01, FronthaulDrop: 0.005,
			DeviceResetPerSec: 1,
		}, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("faults: malformed spec entry %q (want key=value)", kv)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return c, fmt.Errorf("faults: bad value in %q: %v", kv, err)
		}
		if v < 0 {
			return c, fmt.Errorf("faults: negative value in %q", kv)
		}
		switch strings.TrimSpace(key) {
		case "lane":
			c.LaneFailure = v
		case "stuck":
			c.StuckOffload = v
		case "overrun":
			c.Overrun = v
		case "factor":
			c.OverrunFactor = v
		case "retries":
			c.MaxRetries = int(v)
		case "timeout-us":
			c.StuckTimeout = sim.FromUs(v)
		case "backoff-us":
			c.RetryBackoff = sim.FromUs(v)
		case "burst":
			c.BurstPerSec = v
		case "burst-ms":
			c.BurstDuration = sim.FromMs(v)
		case "intensity":
			c.BurstIntensity = v
		case "storm":
			c.StormPerSec = v
		case "storm-ms":
			c.StormDuration = sim.FromMs(v)
		case "storm-cores":
			c.StormCores = int(v)
		case "late":
			c.FronthaulLate = v
		case "late-us":
			c.LateDelay = sim.FromUs(v)
		case "drop":
			c.FronthaulDrop = v
		case "reset":
			c.DeviceResetPerSec = v
		case "reset-ms":
			c.DeviceResetDuration = sim.FromMs(v)
		default:
			return c, fmt.Errorf("faults: unknown spec key %q", key)
		}
	}
	return c, nil
}

// String renders the config back as a canonical spec (rate keys only, sorted),
// for experiment tables and CSV rows.
func (c Config) String() string {
	parts := map[string]float64{}
	if c.LaneFailure > 0 {
		parts["lane"] = c.LaneFailure
	}
	if c.StuckOffload > 0 {
		parts["stuck"] = c.StuckOffload
	}
	if c.Overrun > 0 {
		parts["overrun"] = c.Overrun
	}
	if c.BurstPerSec > 0 {
		parts["burst"] = c.BurstPerSec
	}
	if c.StormPerSec > 0 {
		parts["storm"] = c.StormPerSec
	}
	if c.FronthaulLate > 0 {
		parts["late"] = c.FronthaulLate
	}
	if c.FronthaulDrop > 0 {
		parts["drop"] = c.FronthaulDrop
	}
	if c.DeviceResetPerSec > 0 {
		parts["reset"] = c.DeviceResetPerSec
	}
	if len(parts) == 0 {
		return "off"
	}
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s=%g", k, parts[k]))
	}
	return strings.Join(out, ",")
}

// Stats counts injected faults per class. Recovery-side accounting (retries,
// fallbacks, abandons) lives with the component that recovers, not here.
type Stats struct {
	LaneFailures     uint64
	StuckOffloads    uint64
	Overruns         uint64
	Bursts           uint64
	Storms           uint64
	FronthaulLate    uint64
	FronthaulDropped uint64
	DeviceResets     uint64
}

// Total sums all injected faults.
func (s Stats) Total() uint64 {
	return s.LaneFailures + s.StuckOffloads + s.Overruns + s.Bursts +
		s.Storms + s.FronthaulLate + s.FronthaulDropped + s.DeviceResets
}

// Injector makes the per-event fault decisions for one simulation run. All
// methods are nil-receiver safe (a nil *Injector injects nothing), mirroring
// the telemetry disabled-path idiom, so integration sites stay branch-cheap.
//
// The injector is not safe for concurrent use; each simulation owns one, and
// the discrete-event loop is single-threaded by construction.
type Injector struct {
	cfg   Config
	class [numClasses]uint64 // per-class substream seeds
	burst windowGen
	storm windowGen
	// devWins lazily materializes one reset-window generator per device,
	// seeded by (DeviceReset class seed, device ID) so every device draws an
	// independent schedule regardless of query order.
	devWins []windowGen
	stats   Stats
}

// NewInjector builds an injector for one run. Returns nil when the config
// injects nothing, so callers can gate on a simple nil check.
func NewInjector(cfg Config, seed uint64) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults()
	in := &Injector{cfg: cfg}
	for c := Class(0); c < numClasses; c++ {
		in.class[c] = rng.SubstreamSeed(seed, uint64(c))
	}
	// Window substreams are pinned to the literal indices they had when the
	// taxonomy was 7 classes wide, so adding a fault class never shifts the
	// burst/storm schedules of existing seeds.
	in.burst = newWindowGen(rng.Substream(seed, 7), cfg.BurstPerSec, cfg.BurstDuration)
	in.storm = newWindowGen(rng.Substream(seed, 8), cfg.StormPerSec, cfg.StormDuration)
	return in
}

// Config returns the effective (defaults-filled) configuration.
func (in *Injector) Config() Config {
	if in == nil {
		return Config{}
	}
	return in.cfg
}

// chance is the shared order-independent coin flip: a pure function of the
// injector seed, the fault class, and two stable identifiers.
func (in *Injector) chance(c Class, k1, k2 int64, p float64) bool {
	if p <= 0 {
		return false
	}
	s := rng.SubstreamSeed(in.class[c], uint64(k1))
	s = rng.SubstreamSeed(s, uint64(k2))
	u := float64(s>>11) * (1.0 / (1 << 53))
	return u < p
}

// LaneFails decides whether offload attempt `attempt` of task (dagSeq,
// taskID) is rejected by the device.
func (in *Injector) LaneFails(dagSeq, taskID int64, attempt int) bool {
	if in == nil {
		return false
	}
	if in.chance(LaneFailure, dagSeq, taskID<<8^int64(attempt), in.cfg.LaneFailure) {
		in.stats.LaneFailures++
		return true
	}
	return false
}

// OffloadStuck decides whether offload attempt `attempt` of task (dagSeq,
// taskID) vanishes inside the device.
func (in *Injector) OffloadStuck(dagSeq, taskID int64, attempt int) bool {
	if in == nil {
		return false
	}
	if in.chance(StuckOffload, dagSeq, taskID<<8^int64(attempt), in.cfg.StuckOffload) {
		in.stats.StuckOffloads++
		return true
	}
	return false
}

// Overrun decides whether the CPU execution of task (dagSeq, taskID)
// overruns, returning the runtime multiplier when it does.
func (in *Injector) Overrun(dagSeq, taskID int64) (float64, bool) {
	if in == nil {
		return 1, false
	}
	if in.chance(TaskOverrun, dagSeq, taskID, in.cfg.Overrun) {
		in.stats.Overruns++
		return in.cfg.OverrunFactor, true
	}
	return 1, false
}

// Fronthaul decides the fate of one cell's slot data: dropped entirely, or
// delayed by the returned amount (0 = on time). Dropping wins over lateness.
func (in *Injector) Fronthaul(cell, slot int64) (delay sim.Time, drop bool) {
	if in == nil {
		return 0, false
	}
	if in.chance(FronthaulDrop, cell, slot, in.cfg.FronthaulDrop) {
		in.stats.FronthaulDropped++
		return 0, true
	}
	if in.chance(FronthaulLate, cell, slot, in.cfg.FronthaulLate) {
		in.stats.FronthaulLate++
		return in.cfg.LateDelay, false
	}
	return 0, false
}

// BurstInterference returns the extra cache-pressure index injected at now
// (0 outside bursts). now must be non-decreasing across calls.
func (in *Injector) BurstInterference(now sim.Time) float64 {
	if in == nil {
		return 0
	}
	if in.burst.activeAt(now, &in.stats.Bursts) {
		return in.cfg.BurstIntensity
	}
	return 0
}

// StolenCores returns how many pool cores the host has yanked at now
// (0 outside storms). now must be non-decreasing across calls.
func (in *Injector) StolenCores(now sim.Time, poolCores int) int {
	if in == nil {
		return 0
	}
	if !in.storm.activeAt(now, &in.stats.Storms) {
		return 0
	}
	stolen := in.cfg.StormCores
	if stolen <= 0 {
		stolen = poolCores / 2
	}
	if stolen < 1 {
		stolen = 1
	}
	if stolen > poolCores {
		stolen = poolCores
	}
	return stolen
}

// DeviceDown reports whether accelerator device dev is inside an injected
// reset window at now. Each device draws its own window schedule from a
// dedicated substream, so schedules are independent across devices and of
// query order; now must be non-decreasing per device. The stats counter
// increments once per window entered (one reset event, however often the
// reconciliation loop polls it).
func (in *Injector) DeviceDown(dev int, now sim.Time) bool {
	if in == nil || in.cfg.DeviceResetPerSec <= 0 || dev < 0 {
		return false
	}
	for len(in.devWins) <= dev {
		i := len(in.devWins)
		in.devWins = append(in.devWins, newWindowGen(
			rng.Substream(in.class[DeviceReset], uint64(i)),
			in.cfg.DeviceResetPerSec, in.cfg.DeviceResetDuration))
	}
	return in.devWins[dev].activeAt(now, &in.stats.DeviceResets)
}

// StuckTimeout returns the watchdog delay for stuck offloads.
func (in *Injector) StuckTimeout() sim.Time {
	if in == nil {
		return 0
	}
	return in.cfg.StuckTimeout
}

// MaxRetries returns the bounded offload retry budget.
func (in *Injector) MaxRetries() int {
	if in == nil {
		return 0
	}
	return in.cfg.MaxRetries
}

// Backoff returns the deterministic virtual-time backoff before retry
// attempt k (1-based): base << (k-1), capped at 16× base.
func (in *Injector) Backoff(attempt int) sim.Time {
	if in == nil {
		return 0
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 4 {
		shift = 4
	}
	return in.cfg.RetryBackoff << uint(shift)
}

// Stats returns the injected-fault counts so far.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// windowGen lazily draws a sequence of active windows (Poisson gaps,
// fixed duration) from its own RNG substream. Queries must come with
// non-decreasing timestamps — guaranteed under discrete-event simulation —
// so the drawn sequence is independent of which component queries first.
type windowGen struct {
	r          *rng.Rand
	perSec     float64
	dur        sim.Time
	start, end sim.Time
	lastEnd    sim.Time
	primed     bool
	entered    bool
}

func newWindowGen(r *rng.Rand, perSec float64, dur sim.Time) windowGen {
	return windowGen{r: r, perSec: perSec, dur: dur}
}

// activeAt reports whether now falls inside a window, incrementing *count
// the first time each window is entered.
func (g *windowGen) activeAt(now sim.Time, count *uint64) bool {
	if g.perSec <= 0 || g.dur <= 0 {
		return false
	}
	for {
		if !g.primed {
			gap := sim.Time(g.r.Exponential(g.perSec) * float64(sim.Second))
			g.start = g.lastEnd + gap
			g.end = g.start + g.dur
			g.primed = true
			g.entered = false
		}
		if now < g.start {
			return false
		}
		if now < g.end {
			if !g.entered {
				g.entered = true
				*count++
			}
			return true
		}
		g.lastEnd = g.end
		g.primed = false
	}
}
