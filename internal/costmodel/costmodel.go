// Package costmodel maps signal-processing tasks to execution times on the
// simulated platform. It is the reproduction's stand-in for measuring Intel
// FlexRAN kernels on a tuned Xeon: every coefficient below is calibrated to
// magnitudes the paper reports (≈30 µs per LDPC codeblock in Fig 6a, task
// cost shares of Table 5, the ≤25 % multi-core memory-stall penalty of
// Fig 6, and interference inflation consistent with Fig 9).
//
// The model separates:
//
//   - Mean: the deterministic input-dependent expected runtime. Linear in
//     codeblocks/TBS, non-linear in SNR (decoder iterations) and in the
//     number of pool cores (memory stalls) — the two effects §4.1 calls out
//     as breaking single-value WCET prediction.
//   - Sample: Mean times multiplicative noise — a lognormal body plus a rare
//     bounded-Pareto spike whose frequency and weight grow with cache
//     interference from collocated workloads.
package costmodel

import (
	"math"

	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/sim"
)

// Env describes the platform conditions a task runs under.
type Env struct {
	// PoolCores is the number of cores currently assigned to the vRAN pool;
	// spreading work over more cores increases per-task memory stalls
	// (Fig 6b).
	PoolCores int
	// Interference is the cache-pressure index from collocated best-effort
	// workloads: 0 = isolated vRAN, 1 = a saturating cache-heavy workload.
	Interference float64
}

// Model produces task runtimes. A Model is not safe for concurrent use;
// the pool holds one per simulation.
type Model struct {
	// Scale is a global calibration multiplier (1.0 = the calibrated
	// defaults below).
	Scale float64
	rand  *rng.Rand
}

// New returns a model with the default calibration and its own noise stream.
func New(seed uint64) *Model {
	return &Model{Scale: 1.0, rand: rng.New(seed)}
}

// IterationFactor is the SNR-dependent LDPC decoding-effort multiplier:
// low-SNR transport blocks need more belief-propagation iterations. The
// curve is calibrated against the internal/phy min-sum decoder (≈2
// iterations at 20 dB, approaching the iteration cap near 0 dB).
func IterationFactor(snrDB float64) float64 {
	f := 0.5 + 1.7*math.Exp(-snrDB/8)
	if f > 2.2 {
		f = 2.2
	}
	return f
}

// StallPenalty is the multi-core memory-stall multiplier of Fig 6: spreading
// a cell's codeblocks across more pool cores raises per-task runtime by up
// to ~25 % due to cross-core data movement.
func StallPenalty(poolCores int) float64 {
	if poolCores <= 1 {
		return 1
	}
	return 1 + 0.25*(1-1/float64(poolCores))
}

// InterferenceInflation is the mean runtime inflation caused by cache
// pressure from collocated workloads. Calibrated so a saturating workload
// inflates task bodies ~12 % (the vanilla-FlexRAN stall-cycle increase of
// Fig 9 is 25 %; roughly half of stall cycles translate to wall time on
// these kernels).
func InterferenceInflation(interference float64) float64 {
	if interference < 0 {
		interference = 0
	}
	return 1 + 0.12*interference
}

// meanUs returns the calibrated expected runtime in microseconds, excluding
// platform multipliers.
func meanUs(kind ran.TaskKind, f ran.FeatureVector) float64 {
	tbs := f.Get(ran.FTBSBits)
	cbs := f.Get(ran.FCodeblocks)
	prbs := f.Get(ran.FPRBs)
	ants := f.Get(ran.FAntennas)
	layers := f.Get(ran.FLayers)
	if layers < 1 {
		layers = 1
	}
	snr := f.Get(ran.FSNRdB)
	ues := f.Get(ran.FNumUEs)

	switch kind {
	case ran.TaskFFT, ran.TaskIFFT:
		return 4 + 0.05*prbs
	case ran.TaskChannelEstimation:
		// DM-RS LS estimation + interpolation per antenna across the
		// allocation; dominant at wide bandwidth and many ports.
		return 2 + 0.10*prbs*ants
	case ran.TaskEqualization:
		// Per-subcarrier MMSE filtering: a small matrix inverse per RB
		// group, scaling with ports × layers.
		return 1.5 + 0.03*prbs*ants*layers
	case ran.TaskDemodulation:
		return 1 + 0.0004*tbs + 0.01*prbs*layers
	case ran.TaskRateDematch:
		return 1 + 0.0001*tbs
	case ran.TaskLDPCDecode:
		return 6 + 30*cbs*IterationFactor(snr)
	case ran.TaskCRCCheck:
		return 0.5 + 0.00001*tbs
	case ran.TaskPolarDecode:
		return 4 + 0.3*ues
	case ran.TaskLDPCEncode:
		return 2 + 8*cbs
	case ran.TaskRateMatch:
		return 0.8 + 0.00002*tbs
	case ran.TaskModulation:
		return 1 + 0.00006*tbs + 0.004*prbs
	case ran.TaskPrecoding:
		return 3 + 0.08*prbs*ants
	case ran.TaskPolarEncode:
		return 2.5 + 0.2*ues
	case ran.TaskMACUplinkSched, ran.TaskMACDownlinkSched:
		// Radio-resource scheduling complexity fluctuates with users and
		// their antenna mapping (§7's massive-MIMO observation): superlinear
		// in scheduled UEs, scaled by layers.
		return 2 + 0.8*ues*math.Sqrt(ues+1)*layers/2
	case ran.TaskMACBuild:
		return 1 + 0.3*ues
	case ran.TaskTurboDecode:
		// Turbo decoding is markedly heavier per codeblock than LDPC
		// min-sum (BCJR component decoders, 4G's cost profile).
		return 8 + 45*cbs*IterationFactor(snr)
	case ran.TaskTurboEncode:
		return 2 + 5*cbs
	default:
		return 1
	}
}

// Mean returns the deterministic expected runtime of a task under env.
func (m *Model) Mean(kind ran.TaskKind, f ran.FeatureVector, env Env) sim.Time {
	us := meanUs(kind, f) * m.Scale
	us *= StallPenalty(env.PoolCores)
	us *= InterferenceInflation(env.Interference)
	return sim.FromUs(us)
}

// Noise calibration per task family. Decoding has the widest intrinsic
// spread (data-dependent iteration counts).
func bodySigma(kind ran.TaskKind) float64 {
	switch kind {
	case ran.TaskLDPCDecode:
		return 0.13
	case ran.TaskLDPCEncode, ran.TaskPrecoding:
		return 0.07
	default:
		return 0.05
	}
}

// Tail-spike parameters: rare multiplicative latency spikes whose frequency
// and magnitude grow with interference (LLC evictions, TLB shootdowns).
const (
	spikeBaseProb  = 2e-4
	spikeInterProb = 4e-3
	spikeAlpha     = 1.5
	spikeMaxIso    = 2.0
	spikeMaxInter  = 4.0
)

// Sample draws one stochastic runtime for a task under env using the
// model's own noise stream. Like that stream, it is not safe for concurrent
// use; parallel sample sweeps use SampleWith with per-shard substreams.
func (m *Model) Sample(kind ran.TaskKind, f ran.FeatureVector, env Env) sim.Time {
	return m.SampleWith(m.rand, kind, f, env)
}

// SampleWith draws one stochastic runtime with noise taken from the
// caller-provided stream r instead of the model's own. The model's
// calibration (Scale and the coefficient tables) is read-only here, so any
// number of goroutines may call SampleWith on one Model concurrently as
// long as each holds its own stream — the contract parallel experiment
// shards rely on (see rng.Substream).
func (m *Model) SampleWith(r *rng.Rand, kind ran.TaskKind, f ran.FeatureVector, env Env) sim.Time {
	mean := float64(m.Mean(kind, f, env))
	sigma := bodySigma(kind)
	// Lognormal body normalized to unit mean.
	mult := r.LogNormal(-sigma*sigma/2, sigma)
	p := spikeBaseProb + spikeInterProb*env.Interference
	if r.Bool(p) {
		max := spikeMaxIso + (spikeMaxInter-spikeMaxIso)*env.Interference
		mult *= r.BoundedPareto(1.15, spikeAlpha, max)
	}
	t := sim.Time(mean * mult)
	if t < sim.Time(100) { // floor: 100 ns
		t = sim.Time(100)
	}
	return t
}

// DAGWork returns the summed expected runtime of every task in the DAG
// (the C term of federated scheduling) under env.
func (m *Model) DAGWork(d *ran.DAG, env Env) sim.Time {
	var total sim.Time
	for _, t := range d.Tasks {
		total += m.Mean(t.Kind, t.Features, env)
	}
	return total
}

// CriticalPath returns the longest expected-runtime path through the DAG
// (the L term of federated scheduling) under env.
func (m *Model) CriticalPath(d *ran.DAG, env Env) sim.Time {
	longest := make([]sim.Time, len(d.Tasks))
	var best sim.Time
	for _, t := range d.Tasks { // tasks are topologically ordered by ID
		var in sim.Time
		for _, dep := range t.Deps {
			if longest[dep] > in {
				in = longest[dep]
			}
		}
		longest[t.ID] = in + m.Mean(t.Kind, t.Features, env)
		if longest[t.ID] > best {
			best = longest[t.ID]
		}
	}
	return best
}
