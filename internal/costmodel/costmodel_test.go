package costmodel

import (
	"math"
	"testing"

	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/sim"
	"concordia/internal/stats"
)

func decodeFeatures(cbs int, snr float64) ran.FeatureVector {
	var f ran.FeatureVector
	f.Set(ran.FCodeblocks, float64(cbs))
	f.Set(ran.FSNRdB, snr)
	f.Set(ran.FTBSBits, float64(cbs*8448))
	return f
}

func TestIterationFactorMonotoneDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for snr := 0.0; snr <= 32; snr++ {
		v := IterationFactor(snr)
		if v > prev {
			t.Fatalf("iteration factor increased at %v dB", snr)
		}
		if v < 0.5 || v > 2.2 {
			t.Fatalf("iteration factor %v out of range at %v dB", v, snr)
		}
		prev = v
	}
}

func TestStallPenaltyBounds(t *testing.T) {
	if StallPenalty(1) != 1 {
		t.Fatal("single core must have no stall penalty")
	}
	for cores := 2; cores <= 16; cores++ {
		p := StallPenalty(cores)
		if p <= 1 || p > 1.25 {
			t.Fatalf("stall penalty %v at %d cores outside (1, 1.25]", p, cores)
		}
		if p < StallPenalty(cores-1) {
			t.Fatalf("stall penalty not monotone at %d cores", cores)
		}
	}
}

// Fig 6a: runtime grows linearly with codeblocks; 4-6 core spreading adds
// up to ~25%.
func TestDecodeLinearInCodeblocks(t *testing.T) {
	m := New(1)
	env := Env{PoolCores: 1}
	r3 := m.Mean(ran.TaskLDPCDecode, decodeFeatures(3, 18), env)
	r15 := m.Mean(ran.TaskLDPCDecode, decodeFeatures(15, 18), env)
	ratio := float64(r15) / float64(r3)
	// Linear with a small intercept: 15/3 = 5, allow intercept slack.
	if ratio < 4 || ratio > 5.2 {
		t.Fatalf("codeblock scaling ratio %v want ~5", ratio)
	}
}

func TestDecodeCalibration(t *testing.T) {
	// Fig 6a magnitude: 15 codeblocks on one core is a few hundred µs.
	m := New(1)
	r := m.Mean(ran.TaskLDPCDecode, decodeFeatures(15, 18), Env{PoolCores: 1})
	if us := r.Us(); us < 250 || us > 700 {
		t.Fatalf("15-codeblock decode %v µs outside the Fig 6a regime", us)
	}
}

func TestMultiCorePenaltyMatchesFig6(t *testing.T) {
	m := New(1)
	f := decodeFeatures(9, 18)
	one := m.Mean(ran.TaskLDPCDecode, f, Env{PoolCores: 1})
	six := m.Mean(ran.TaskLDPCDecode, f, Env{PoolCores: 6})
	inc := float64(six)/float64(one) - 1
	if inc <= 0.10 || inc > 0.25 {
		t.Fatalf("6-core stall increase %.0f%% want (10%%, 25%%]", inc*100)
	}
}

func TestSNRDependence(t *testing.T) {
	m := New(1)
	env := Env{PoolCores: 1}
	low := m.Mean(ran.TaskLDPCDecode, decodeFeatures(5, 2), env)
	high := m.Mean(ran.TaskLDPCDecode, decodeFeatures(5, 28), env)
	if low <= high {
		t.Fatal("low-SNR decode should cost more than high-SNR")
	}
	if ratio := float64(low) / float64(high); ratio < 1.5 {
		t.Fatalf("SNR effect ratio %v too weak", ratio)
	}
}

func TestInterferenceInflatesRuntime(t *testing.T) {
	m := New(1)
	f := decodeFeatures(5, 18)
	iso := m.Mean(ran.TaskLDPCDecode, f, Env{PoolCores: 4})
	loaded := m.Mean(ran.TaskLDPCDecode, f, Env{PoolCores: 4, Interference: 1})
	inc := float64(loaded)/float64(iso) - 1
	if inc < 0.05 || inc > 0.25 {
		t.Fatalf("interference inflation %.0f%% outside calibration", inc*100)
	}
}

func TestSampleDistribution(t *testing.T) {
	m := New(2)
	f := decodeFeatures(5, 18)
	env := Env{PoolCores: 4}
	mean := float64(m.Mean(ran.TaskLDPCDecode, f, env))
	n := 20000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = float64(m.Sample(ran.TaskLDPCDecode, f, env))
	}
	got := stats.Mean(samples)
	if math.Abs(got-mean)/mean > 0.05 {
		t.Fatalf("sample mean %.0f deviates from model mean %.0f", got, mean)
	}
	// Samples must vary and stay positive.
	if stats.StdDev(samples) == 0 {
		t.Fatal("samples have no variance")
	}
	if stats.Min(samples) <= 0 {
		t.Fatal("non-positive runtime sample")
	}
}

func TestInterferenceHeavyTail(t *testing.T) {
	// Interference must fatten the extreme tail more than the body (Fig 7b).
	m := New(3)
	f := decodeFeatures(5, 18)
	quantileRatio := func(interference float64) float64 {
		env := Env{PoolCores: 4, Interference: interference}
		n := 60000
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(m.Sample(ran.TaskLDPCDecode, f, env))
		}
		qs := stats.Quantiles(s, 0.5, 0.9999)
		return qs[1] / qs[0]
	}
	iso := quantileRatio(0)
	loaded := quantileRatio(1)
	if loaded <= iso {
		t.Fatalf("interference did not fatten tail: iso %.2f loaded %.2f", iso, loaded)
	}
}

func TestAllKindsPositive(t *testing.T) {
	m := New(4)
	var f ran.FeatureVector
	f.Set(ran.FPRBs, 100)
	f.Set(ran.FAntennas, 4)
	f.Set(ran.FLayers, 2)
	f.Set(ran.FTBSBits, 50000)
	f.Set(ran.FCodeblocks, 6)
	f.Set(ran.FSNRdB, 15)
	f.Set(ran.FNumUEs, 4)
	for k := ran.TaskKind(0); k < ran.NumTaskKinds; k++ {
		if m.Mean(k, f, Env{PoolCores: 2}) <= 0 {
			t.Fatalf("kind %v has non-positive mean", k)
		}
		if m.Sample(k, f, Env{PoolCores: 2}) <= 0 {
			t.Fatalf("kind %v has non-positive sample", k)
		}
	}
}

func TestScaleMultiplier(t *testing.T) {
	m := New(5)
	f := decodeFeatures(5, 18)
	base := m.Mean(ran.TaskLDPCDecode, f, Env{PoolCores: 1})
	m.Scale = 2
	got := m.Mean(ran.TaskLDPCDecode, f, Env{PoolCores: 1})
	if diff := got - 2*base; diff < -2 || diff > 2 { // ns rounding tolerance
		t.Fatalf("scale 2 mean %v want %v", got, 2*base)
	}
}

func buildTestDAG(t *testing.T) *ran.DAG {
	t.Helper()
	r := rng.New(7)
	cfg := ran.Cells100MHz(1)[0]
	allocs := ran.AllocateSlot(cfg, 30000, r)
	if len(allocs) == 0 {
		t.Fatal("no allocations")
	}
	return ran.BuildUplinkDAG(cfg, 0, 0, sim.FromMs(1.5), allocs)
}

func TestDAGWorkAndCriticalPath(t *testing.T) {
	m := New(6)
	d := buildTestDAG(t)
	env := Env{PoolCores: 4}
	work := m.DAGWork(d, env)
	cp := m.CriticalPath(d, env)
	if work <= 0 || cp <= 0 {
		t.Fatal("non-positive work or critical path")
	}
	if cp > work {
		t.Fatalf("critical path %v exceeds total work %v", cp, work)
	}
	// The critical path must be at least the longest single task.
	var maxTask sim.Time
	for _, task := range d.Tasks {
		if v := m.Mean(task.Kind, task.Features, env); v > maxTask {
			maxTask = v
		}
	}
	if cp < maxTask {
		t.Fatalf("critical path %v below longest task %v", cp, maxTask)
	}
}

func TestCriticalPathRespectsChains(t *testing.T) {
	// A pure chain DAG's critical path equals its total work.
	m := New(8)
	d := &ran.DAG{CellID: 0, Deadline: sim.FromMs(1)}
	var f ran.FeatureVector
	f.Set(ran.FCodeblocks, 2)
	f.Set(ran.FSNRdB, 20)
	// Build chain via the exported builder: single UE with one codeblock
	// group produces mostly a chain; instead verify with uplink DAG roots.
	cfg := ran.Cells20MHz(1)[0]
	alloc := []ran.UEAlloc{{UE: 0, SNRdB: 20, MCS: ran.MCSTable[5], Layers: 1, PRBs: 10, TBSBits: 5000, Codeblocks: 1}}
	dag := ran.BuildUplinkDAG(cfg, 0, 0, sim.FromMs(2), alloc)
	_ = d
	env := Env{PoolCores: 1}
	cp := m.CriticalPath(dag, env)
	// Chain: fft -> chanest -> eq -> demod -> dematch -> decode -> crc.
	var chain sim.Time
	for _, task := range dag.Tasks {
		if task.Kind == ran.TaskPolarDecode {
			continue
		}
		if task.Kind == ran.TaskFFT && task.ID != 0 {
			continue // parallel FFTs count once
		}
		chain += m.Mean(task.Kind, task.Features, env)
	}
	if cp != chain {
		t.Fatalf("chain critical path %v want %v", cp, chain)
	}
}

func BenchmarkSample(b *testing.B) {
	m := New(1)
	f := decodeFeatures(5, 18)
	env := Env{PoolCores: 4, Interference: 0.5}
	for i := 0; i < b.N; i++ {
		_ = m.Sample(ran.TaskLDPCDecode, f, env)
	}
}

func BenchmarkCriticalPath(b *testing.B) {
	m := New(1)
	r := rng.New(7)
	cfg := ran.Cells100MHz(1)[0]
	d := ran.BuildUplinkDAG(cfg, 0, 0, sim.FromMs(1.5), ran.AllocateSlot(cfg, 40000, r))
	env := Env{PoolCores: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.CriticalPath(d, env)
	}
}

func TestTurboHeavierThanLDPC(t *testing.T) {
	// §A.1: 4G turbo decoding is more expensive than 5G LDPC per block.
	m := New(9)
	f := decodeFeatures(5, 15)
	env := Env{PoolCores: 1}
	turbo := m.Mean(ran.TaskTurboDecode, f, env)
	ldpc := m.Mean(ran.TaskLDPCDecode, f, env)
	if turbo <= ldpc {
		t.Fatalf("turbo %v not above LDPC %v", turbo, ldpc)
	}
	if enc := m.Mean(ran.TaskTurboEncode, f, env); enc >= turbo {
		t.Fatal("turbo encode should be far cheaper than decode")
	}
}
