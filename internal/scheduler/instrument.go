package scheduler

import "concordia/internal/sim"

// Decision describes one core-allocation decision for observers: when it was
// made, by which policy, what it saw, and what it chose.
type Decision struct {
	Now    sim.Time
	Policy string
	// Cores is the chosen target.
	Cores int
	// Critical reports a Concordia critical-stage escalation (always false
	// for the baselines, which have no notion of a critical stage).
	Critical bool
	// DAGs is the number of in-flight DAGs at the decision point.
	DAGs int
}

// Instrumented wraps a policy so every Cores call is reported to Observe
// before the decision is returned. The wrapper is transparent: Name,
// Interval and CompensatesWakeups forward to the inner policy, so the pool
// treats an instrumented scheduler exactly like the bare one.
type Instrumented struct {
	Inner   Scheduler
	Observe func(Decision)
}

// Name implements Scheduler.
func (i Instrumented) Name() string { return i.Inner.Name() }

// Interval implements Scheduler.
func (i Instrumented) Interval() sim.Time { return i.Inner.Interval() }

// CompensatesWakeups implements Scheduler.
func (i Instrumented) CompensatesWakeups() bool { return i.Inner.CompensatesWakeups() }

// Cores implements Scheduler, reporting the decision to the observer.
func (i Instrumented) Cores(s PoolState) int {
	n := i.Inner.Cores(s)
	if i.Observe != nil {
		critical := false
		if c, ok := i.Inner.(*Concordia); ok && n == s.TotalCores && len(s.DAGs) > 0 {
			critical = c.Critical(s)
		}
		i.Observe(Decision{Now: s.Now, Policy: i.Inner.Name(), Cores: n, Critical: critical, DAGs: len(s.DAGs)})
	}
	return n
}
