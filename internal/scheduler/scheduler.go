// Package scheduler implements the core-allocation policies of §3 and §6.3:
// the Concordia federated mixed-criticality scheduler (after Li et al.,
// "Mixed-criticality federated scheduling for parallel real-time tasks"),
// the vanilla FlexRAN queue-based baseline, a Shenango-style queueing-delay
// scheduler, and a utilization-based scheduler.
//
// A scheduler answers one question at each invocation: how many CPU cores
// should the vRAN pool hold right now? The pool maps that count onto
// physical cores (with 2 ms rotation), preempting or releasing best-effort
// work accordingly. Concordia is invoked every 20 µs; the baselines are
// invoked on their own triggers but are driven through the same interface.
package scheduler

import (
	"math"

	"concordia/internal/sim"
)

// DAGState is the scheduler's view of one in-flight signal-processing DAG.
// Work and critical-path values come from the WCET predictor — feeding
// predictions rather than measurements into the allocator is the paper's
// central design decision.
type DAGState struct {
	Deadline sim.Time
	// RemainingWork is the summed predicted WCET of unfinished tasks (the
	// C_i term), including the remainder of currently running tasks.
	RemainingWork sim.Time
	// RemainingCriticalPath is the predicted longest dependency chain
	// among unfinished tasks (the L_i term).
	RemainingCriticalPath sim.Time
}

// PoolState is the scheduler's input at a decision point.
type PoolState struct {
	Now        sim.Time
	TotalCores int
	DAGs       []DAGState
	// ReadyTasks is the number of tasks currently runnable (dependencies
	// met, not yet started); RunningTasks the number executing.
	ReadyTasks   int
	RunningTasks int
	// OldestReadyAge is how long the oldest ready task has waited.
	OldestReadyAge sim.Time
	// OffloadableReady is the subset of ReadyTasks eligible for accelerator
	// offload (an accelerator is attached, the kind has a queue group, and
	// the task has not exhausted its retry budget). These tasks occupy a
	// core only for the submit window, so policies may discount them when
	// sizing the allocation.
	OffloadableReady int
	// Utilization is the pool's recent core-utilization EWMA (0..1),
	// measured over the allocated cores.
	Utilization float64
}

// Scheduler decides the vRAN pool's core allocation.
type Scheduler interface {
	// Name identifies the policy in reports.
	Name() string
	// Cores returns how many cores the vRAN should hold given the state.
	Cores(s PoolState) int
	// Interval is the re-evaluation period the policy is designed for.
	Interval() sim.Time
	// CompensatesWakeups reports whether the policy allocates extra cores
	// when a scheduled core is slow to wake (Concordia's 20 µs
	// re-evaluation absorbs stuck wakeups; the baselines do not).
	CompensatesWakeups() bool
}

// Concordia is the federated mixed-criticality allocator of §3. For every
// active DAG it computes the minimum core count that finishes the remaining
// predicted work by the deadline,
//
//	n_i = ceil((C_i − L_i) / (D_i − now − L_i)),
//
// and escalates to every pool core (evicting all best-effort work) when a
// DAG enters its critical stage — when the slack beyond the critical path
// falls below CriticalFactor × L_i. Allocations are re-evaluated every
// 20 µs, which is also how mispredictions and slow core wakeups are
// absorbed (§6.4: per-task accuracy is below five nines, full-DAG
// reliability is not).
type Concordia struct {
	// CriticalFactor κ controls critical-stage entry; the DAG is critical
	// when (D − now) ≤ (1 + κ)·L.
	CriticalFactor float64
	// Period is the re-evaluation interval (20 µs in the paper).
	Period sim.Time
	// DisableWakeupCompensation turns off the stuck-core replacement
	// mechanism (ablation studies only).
	DisableWakeupCompensation bool
}

// NewConcordia returns the scheduler with the paper's parameters.
func NewConcordia() *Concordia {
	return &Concordia{CriticalFactor: 0.5, Period: 20 * sim.Microsecond}
}

// Name implements Scheduler.
func (c *Concordia) Name() string { return "concordia" }

// Interval implements Scheduler.
func (c *Concordia) Interval() sim.Time { return c.Period }

// CompensatesWakeups implements Scheduler: the fine-grained re-evaluation
// replaces cores that fail to wake in time (§3, §6.2).
func (c *Concordia) CompensatesWakeups() bool { return !c.DisableWakeupCompensation }

// edfShareBound is the schedulable-utilization bound used for the shared
// cores that serve the low-utilization DAG class (Li et al. run the low
// class under partitioned EDF on the leftover cores).
const edfShareBound = 0.75

// Cores implements the federated allocation of Li et al. (Table 3 of [61]):
// high-utilization DAGs — those whose remaining work cannot meet the
// deadline on one core — receive ⌈(C−L)/(D−now−L)⌉ dedicated cores each;
// low-utilization DAGs are pooled onto shared cores sized by their summed
// density C/(D−now) against an EDF schedulability bound. Without the
// low-utilization class, every in-flight slot DAG of a many-cell pool would
// pin its own core and nothing would ever be reclaimed.
func (c *Concordia) Cores(s PoolState) int {
	if len(s.DAGs) == 0 {
		return 0
	}
	total := 0
	lowDensity := 0.0
	for _, d := range s.DAGs {
		if d.RemainingWork <= 0 {
			continue
		}
		slack := d.Deadline - s.Now
		l := d.RemainingCriticalPath
		if c.dagCritical(d, s.Now) {
			// Critical stage: all cores, evict best-effort work.
			return s.TotalCores
		}
		denom := float64(slack - l)
		work := float64(d.RemainingWork - l)
		n := 1
		if work > 0 && denom > 0 {
			n = int(math.Ceil(work / denom))
			if n < 1 {
				n = 1
			}
		}
		if n >= 2 {
			total += n
			continue
		}
		density := float64(d.RemainingWork) / float64(slack)
		if density > edfShareBound {
			total++
		} else {
			lowDensity += density
		}
	}
	if lowDensity > 0 {
		total += int(math.Ceil(lowDensity / edfShareBound))
	}
	if total > s.TotalCores {
		total = s.TotalCores
	}
	return total
}

// dagCritical reports whether one DAG is inside its critical stage: the
// remaining slack no longer exceeds (1+κ) times the predicted critical path.
func (c *Concordia) dagCritical(d DAGState, now sim.Time) bool {
	return d.Deadline-now <= sim.Time(float64(d.RemainingCriticalPath)*(1+c.CriticalFactor))
}

// Critical reports whether any in-flight DAG is in its critical stage — the
// condition under which Cores escalates to the full pool and evicts all
// best-effort work. Telemetry uses it to count escalation decisions.
func (c *Concordia) Critical(s PoolState) bool {
	for _, d := range s.DAGs {
		if d.RemainingWork > 0 && c.dagCritical(d, s.Now) {
			return true
		}
	}
	return false
}

// FlexRAN is the vanilla baseline: the queue-driven worker model that
// acquires cores while tasks are waiting and releases them the moment the
// queues drain. It has no notion of deadlines or predicted work.
type FlexRAN struct{}

// Name implements Scheduler.
func (FlexRAN) Name() string { return "flexran" }

// Interval implements Scheduler: the queue model reacts at a fine grain
// (every queue transition); the pool drives it at the same 20 µs tick for
// comparability.
func (FlexRAN) Interval() sim.Time { return 20 * sim.Microsecond }

// CompensatesWakeups implements Scheduler.
func (FlexRAN) CompensatesWakeups() bool { return false }

// Cores implements Scheduler: one core per runnable-or-running task.
func (FlexRAN) Cores(s PoolState) int {
	n := s.ReadyTasks + s.RunningTasks
	if n > s.TotalCores {
		n = s.TotalCores
	}
	return n
}

// Shenango is the queueing-delay baseline of §6.3: it adds one core
// whenever the oldest ready task has waited longer than Threshold, and
// drops one when the pool goes idle. It keeps internal state across calls.
type Shenango struct {
	Threshold sim.Time
	current   int
}

// NewShenango returns the baseline with the given queueing-delay threshold
// (the paper sweeps 5 µs to 200 µs without finding a universally safe
// value).
func NewShenango(threshold sim.Time) *Shenango {
	return &Shenango{Threshold: threshold}
}

// Name implements Scheduler.
func (s *Shenango) Name() string { return "shenango" }

// Interval implements Scheduler (Shenango's IOKernel polls every 5 µs; we
// drive it at the same 20 µs tick for comparability).
func (s *Shenango) Interval() sim.Time { return 20 * sim.Microsecond }

// CompensatesWakeups implements Scheduler.
func (s *Shenango) CompensatesWakeups() bool { return false }

// Cores implements the ±1 core adjustment.
func (s *Shenango) Cores(st PoolState) int {
	busy := st.ReadyTasks + st.RunningTasks
	if busy == 0 {
		s.current = 0
		return 0
	}
	if s.current == 0 {
		s.current = 1
	}
	if st.OldestReadyAge > s.Threshold && s.current < st.TotalCores {
		s.current++
	}
	if s.current > st.TotalCores {
		s.current = st.TotalCores
	}
	return s.current
}

// Utilization is the utilization-threshold baseline of §6.3: it wakes an
// additional worker when recent pool utilization exceeds Threshold and
// parks one when it falls below half the threshold.
type Utilization struct {
	Threshold float64
	current   int
}

// NewUtilization returns the baseline with the given utilization threshold
// (the paper uses 60 % for 20 MHz and 30 % for 100 MHz configurations).
func NewUtilization(threshold float64) *Utilization {
	return &Utilization{Threshold: threshold}
}

// Name implements Scheduler.
func (u *Utilization) Name() string { return "utilization" }

// Interval implements Scheduler: utilization reacts at TTI granularity; the
// pool drives it at 100 µs.
func (u *Utilization) Interval() sim.Time { return 100 * sim.Microsecond }

// CompensatesWakeups implements Scheduler.
func (u *Utilization) CompensatesWakeups() bool { return false }

// Cores implements the threshold adjustment.
func (u *Utilization) Cores(st PoolState) int {
	busy := st.ReadyTasks + st.RunningTasks
	if busy == 0 {
		u.current = 0
		return 0
	}
	if u.current == 0 {
		u.current = 1
		return u.current
	}
	if st.Utilization > u.Threshold && u.current < st.TotalCores {
		u.current++
	} else if st.Utilization < u.Threshold/2 && u.current > 1 {
		u.current--
	}
	if u.current > st.TotalCores {
		u.current = st.TotalCores
	}
	return u.current
}
