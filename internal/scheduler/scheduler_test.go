package scheduler

import (
	"testing"
	"testing/quick"

	"concordia/internal/sim"
)

func ms(v float64) sim.Time { return sim.FromMs(v) }
func us(v float64) sim.Time { return sim.FromUs(v) }

func TestConcordiaIdle(t *testing.T) {
	c := NewConcordia()
	if got := c.Cores(PoolState{TotalCores: 8}); got != 0 {
		t.Fatalf("idle pool allocated %d cores", got)
	}
}

func TestConcordiaSingleDAGMinimalCores(t *testing.T) {
	c := NewConcordia()
	// Work 2 ms, critical path 0.2 ms, deadline 1.5 ms away:
	// n = ceil((2000-200)/(1500-200)) = ceil(1.38) = 2.
	s := PoolState{
		Now:        0,
		TotalCores: 8,
		DAGs: []DAGState{{
			Deadline:              ms(1.5),
			RemainingWork:         ms(2.0),
			RemainingCriticalPath: ms(0.2),
		}},
	}
	if got := c.Cores(s); got != 2 {
		t.Fatalf("cores %d want 2", got)
	}
}

func TestConcordiaParallelismGrowsAsDeadlineNears(t *testing.T) {
	c := NewConcordia()
	mk := func(now sim.Time) int {
		return c.Cores(PoolState{
			Now:        now,
			TotalCores: 16,
			DAGs: []DAGState{{
				Deadline:              ms(1.5),
				RemainingWork:         ms(3.0),
				RemainingCriticalPath: us(100),
			}},
		})
	}
	early := mk(0)
	late := mk(ms(1.0))
	if late <= early {
		t.Fatalf("allocation must grow as deadline approaches: %d -> %d", early, late)
	}
}

func TestConcordiaCriticalStageEscalation(t *testing.T) {
	c := NewConcordia()
	// Slack 120 µs with a 100 µs critical path: inside (1+κ)·L for κ=0.5.
	s := PoolState{
		Now:        ms(1.38),
		TotalCores: 8,
		DAGs: []DAGState{{
			Deadline:              ms(1.5),
			RemainingWork:         us(300),
			RemainingCriticalPath: us(100),
		}},
	}
	if got := c.Cores(s); got != 8 {
		t.Fatalf("critical stage allocated %d cores, want all 8", got)
	}
}

func TestConcordiaSumsOverDAGs(t *testing.T) {
	c := NewConcordia()
	d := DAGState{Deadline: ms(1.5), RemainingWork: ms(1.0), RemainingCriticalPath: us(100)}
	one := c.Cores(PoolState{TotalCores: 16, DAGs: []DAGState{d}})
	three := c.Cores(PoolState{TotalCores: 16, DAGs: []DAGState{d, d, d}})
	if three <= one {
		t.Fatalf("multi-DAG allocation %d not above single %d", three, one)
	}
}

func TestConcordiaCappedAtTotal(t *testing.T) {
	c := NewConcordia()
	var dags []DAGState
	for i := 0; i < 20; i++ {
		dags = append(dags, DAGState{
			Deadline: ms(1.5), RemainingWork: ms(5), RemainingCriticalPath: us(50)})
	}
	if got := c.Cores(PoolState{TotalCores: 8, DAGs: dags}); got != 8 {
		t.Fatalf("allocation %d exceeds pool", got)
	}
}

func TestConcordiaFinishedDAGsIgnored(t *testing.T) {
	c := NewConcordia()
	s := PoolState{TotalCores: 8, DAGs: []DAGState{{
		Deadline: ms(1.5), RemainingWork: 0, RemainingCriticalPath: 0}}}
	if got := c.Cores(s); got != 0 {
		t.Fatalf("finished DAG allocated %d cores", got)
	}
}

// Property: allocation is monotone — more remaining work never yields fewer
// cores, and a nearer deadline never yields fewer cores.
func TestConcordiaMonotonicity(t *testing.T) {
	c := NewConcordia()
	err := quick.Check(func(workUs, extraUs uint16, slackUs uint32) bool {
		l := us(50)
		work := us(float64(workUs%5000) + 100)
		slack := us(float64(slackUs%3000) + 200)
		base := PoolState{TotalCores: 64, DAGs: []DAGState{{
			Deadline: slack, RemainingWork: work, RemainingCriticalPath: l}}}
		more := PoolState{TotalCores: 64, DAGs: []DAGState{{
			Deadline: slack, RemainingWork: work + us(float64(extraUs%2000)), RemainingCriticalPath: l}}}
		return c.Cores(more) >= c.Cores(base)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlexRANFollowsQueue(t *testing.T) {
	f := FlexRAN{}
	if got := f.Cores(PoolState{TotalCores: 8}); got != 0 {
		t.Fatalf("idle flexran allocated %d", got)
	}
	if got := f.Cores(PoolState{TotalCores: 8, ReadyTasks: 3, RunningTasks: 2}); got != 5 {
		t.Fatalf("flexran cores %d want 5", got)
	}
	if got := f.Cores(PoolState{TotalCores: 4, ReadyTasks: 10}); got != 4 {
		t.Fatalf("flexran cores %d want cap 4", got)
	}
}

func TestShenangoRampsOnQueueDelay(t *testing.T) {
	s := NewShenango(us(25))
	st := PoolState{TotalCores: 8, ReadyTasks: 2, RunningTasks: 1}
	if got := s.Cores(st); got != 1 {
		t.Fatalf("initial shenango cores %d want 1", got)
	}
	st.OldestReadyAge = us(30)
	if got := s.Cores(st); got != 2 {
		t.Fatalf("after delay breach cores %d want 2", got)
	}
	if got := s.Cores(st); got != 3 {
		t.Fatalf("sustained breach cores %d want 3", got)
	}
	// Queue drains: release everything.
	if got := s.Cores(PoolState{TotalCores: 8}); got != 0 {
		t.Fatalf("drained shenango cores %d want 0", got)
	}
}

func TestShenangoCapped(t *testing.T) {
	s := NewShenango(us(5))
	st := PoolState{TotalCores: 3, ReadyTasks: 5, OldestReadyAge: us(100)}
	for i := 0; i < 10; i++ {
		if got := s.Cores(st); got > 3 {
			t.Fatalf("shenango exceeded pool: %d", got)
		}
	}
}

func TestUtilizationScheduler(t *testing.T) {
	u := NewUtilization(0.6)
	st := PoolState{TotalCores: 8, ReadyTasks: 1, RunningTasks: 1, Utilization: 0.9}
	if got := u.Cores(st); got != 1 {
		t.Fatalf("initial util cores %d want 1", got)
	}
	if got := u.Cores(st); got != 2 {
		t.Fatalf("high-util cores %d want 2", got)
	}
	st.Utilization = 0.1
	if got := u.Cores(st); got != 1 {
		t.Fatalf("low-util cores %d want 1", got)
	}
	if got := u.Cores(PoolState{TotalCores: 8}); got != 0 {
		t.Fatalf("idle util cores %d want 0", got)
	}
}

func TestNamesAndIntervals(t *testing.T) {
	cases := []struct {
		s    Scheduler
		name string
	}{
		{NewConcordia(), "concordia"},
		{FlexRAN{}, "flexran"},
		{NewShenango(us(25)), "shenango"},
		{NewUtilization(0.5), "utilization"},
	}
	for _, c := range cases {
		if c.s.Name() != c.name {
			t.Errorf("name %q want %q", c.s.Name(), c.name)
		}
		if c.s.Interval() <= 0 {
			t.Errorf("%s has non-positive interval", c.name)
		}
	}
	if NewConcordia().Interval() != 20*sim.Microsecond {
		t.Error("Concordia must re-evaluate every 20 µs")
	}
}

func BenchmarkConcordiaCores(b *testing.B) {
	c := NewConcordia()
	dags := make([]DAGState, 7)
	for i := range dags {
		dags[i] = DAGState{Deadline: ms(2), RemainingWork: ms(1), RemainingCriticalPath: us(150)}
	}
	s := PoolState{TotalCores: 8, DAGs: dags}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Cores(s)
	}
}
