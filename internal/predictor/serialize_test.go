package predictor

import (
	"strings"
	"testing"

	"concordia/internal/costmodel"
	"concordia/internal/ran"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	data := profileDecode(6000, 40, costmodel.Env{PoolCores: 4})
	tree := trainDecodeTree(t, data)
	blob, err := tree.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadQuantileTree(blob)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != tree.Kind || loaded.NumLeaves() != tree.NumLeaves() {
		t.Fatalf("structure changed: %d leaves -> %d", tree.NumLeaves(), loaded.NumLeaves())
	}
	// Routing must be identical, and predictions must survive (the leaf max
	// is preserved by construction).
	for _, s := range data[:500] {
		if tree.LeafID(s.Features) != loaded.LeafID(s.Features) {
			t.Fatal("leaf routing changed through serialization")
		}
		if tree.Predict(s.Features) != loaded.Predict(s.Features) {
			t.Fatalf("prediction changed: %v vs %v",
				tree.Predict(s.Features), loaded.Predict(s.Features))
		}
	}
}

func TestLoadedTreeStillAdapts(t *testing.T) {
	data := profileDecode(4000, 41, costmodel.Env{PoolCores: 4})
	tree := trainDecodeTree(t, data)
	blob, _ := tree.MarshalJSON()
	loaded, err := LoadQuantileTree(blob)
	if err != nil {
		t.Fatal(err)
	}
	f := data[0].Features
	before := loaded.Predict(f)
	loaded.Observe(f, before*3)
	if loaded.Predict(f) <= before {
		t.Fatal("loaded tree did not adapt online")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadQuantileTree([]byte("{")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := LoadQuantileTree([]byte(`{"nodes":[]}`)); err == nil {
		t.Fatal("empty tree accepted")
	}
	// Cyclic/invalid node references must be rejected.
	if _, err := LoadQuantileTree([]byte(`{"nodes":[{"leaf":false,"left":0,"right":0}]}`)); err == nil {
		t.Fatal("self-referencing node accepted")
	}
}

func TestGenerateGo(t *testing.T) {
	data := profileDecode(4000, 42, costmodel.Env{PoolCores: 4})
	tree := trainDecodeTree(t, data)
	src := tree.GenerateGo("routeLDPCDecode")
	if !strings.Contains(src, "func routeLDPCDecode(") {
		t.Fatal("missing function signature")
	}
	if !strings.Contains(src, "DO NOT EDIT") {
		t.Fatal("missing generated-code marker")
	}
	// Every leaf must appear as a return.
	returns := strings.Count(src, "return ")
	if returns < tree.NumLeaves() {
		t.Fatalf("generated code has %d returns for %d leaves", returns, tree.NumLeaves())
	}
	_ = ran.NumFeatures
}
