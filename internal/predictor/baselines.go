package predictor

import (
	"errors"
	"sort"

	"concordia/internal/ran"
	"concordia/internal/sim"
	"concordia/internal/stats"
)

// residualTracker maintains a bounded window of prediction residuals and
// serves their high quantile — the machinery that turns a mean-regression
// model into a probabilistic WCET predictor (prediction interval 0.99999,
// as §6.4 configures the baselines).
type residualTracker struct {
	window []float64
	next   int
	full   bool
	q      float64
	// cached quantile, refreshed lazily every refreshEvery pushes
	cached  float64
	pending int
}

const residualWindow = 20000
const refreshEvery = 256

func newResidualTracker(q float64) *residualTracker {
	return &residualTracker{window: make([]float64, 0, residualWindow), q: q}
}

func (r *residualTracker) push(v float64) {
	if len(r.window) < cap(r.window) {
		r.window = append(r.window, v)
	} else {
		r.full = true
		r.window[r.next] = v
		r.next = (r.next + 1) % len(r.window)
	}
	r.pending++
	if r.pending >= refreshEvery || (!r.full && r.pending >= 32) {
		r.refresh()
	}
}

func (r *residualTracker) refresh() {
	r.pending = 0
	if len(r.window) == 0 {
		r.cached = 0
		return
	}
	r.cached = stats.Quantile(r.window, r.q)
}

func (r *residualTracker) quantile() float64 {
	if r.pending > 0 && r.cached == 0 {
		r.refresh()
	}
	return r.cached
}

// LinearPredictor is the linear-regression WCET baseline of Fig 14: an OLS
// mean model over the selected features plus a high quantile of its
// residuals.
type LinearPredictor struct {
	Features  []ran.Feature
	model     *stats.OLS
	residuals *residualTracker
}

// TrainLinear fits the baseline on offline profiling data with the given
// prediction interval (the paper uses 0.99999).
func TrainLinear(features []ran.Feature, data []Sample, interval float64) (*LinearPredictor, error) {
	if len(data) < 10 {
		return nil, ErrNoData
	}
	X := make([][]float64, len(data))
	y := make([]float64, len(data))
	for i, s := range data {
		X[i] = s.Features.Select(features)
		y[i] = float64(s.Runtime)
	}
	m, err := stats.FitOLS(X, y)
	if err != nil {
		return nil, err
	}
	p := &LinearPredictor{Features: features, model: m, residuals: newResidualTracker(interval)}
	for i := range X {
		p.residuals.push(y[i] - m.Predict(X[i]))
	}
	p.residuals.refresh()
	return p, nil
}

// Predict returns mean prediction plus the residual quantile.
func (p *LinearPredictor) Predict(f ran.FeatureVector) sim.Time {
	v := p.model.Predict(f.Select(p.Features)) + p.residuals.quantile()
	if v < 0 {
		v = 0
	}
	return sim.Time(v)
}

// Observe updates the residual window online.
func (p *LinearPredictor) Observe(f ran.FeatureVector, runtime sim.Time) {
	p.residuals.push(float64(runtime) - p.model.Predict(f.Select(p.Features)))
}

// GradientBoosting is the non-linear baseline of Fig 14: shallow regression
// trees fit on residuals (stage-wise), with the same residual-quantile
// mechanism for the WCET interval.
type GradientBoosting struct {
	Features  []ran.Feature
	base      float64
	stages    []*regTree
	learnRate float64
	residuals *residualTracker
}

// GBConfig bounds boosting.
type GBConfig struct {
	Rounds    int     // default 30
	Depth     int     // default 3
	MinLeaf   int     // default 20
	LearnRate float64 // default 0.3
	Interval  float64 // default 0.99999
}

func (c *GBConfig) defaults() {
	if c.Rounds <= 0 {
		c.Rounds = 30
	}
	if c.Depth <= 0 {
		c.Depth = 3
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 20
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.3
	}
	if c.Interval <= 0 {
		c.Interval = 0.99999
	}
}

// TrainGradientBoosting fits the boosted mean model plus residual interval.
func TrainGradientBoosting(features []ran.Feature, data []Sample, cfg GBConfig) (*GradientBoosting, error) {
	cfg.defaults()
	if len(data) < 2*cfg.MinLeaf {
		return nil, ErrNoData
	}
	X := make([][]float64, len(data))
	y := make([]float64, len(data))
	for i, s := range data {
		X[i] = s.Features.Select(features)
		y[i] = float64(s.Runtime)
	}
	g := &GradientBoosting{
		Features:  features,
		base:      stats.Mean(y),
		learnRate: cfg.LearnRate,
		residuals: newResidualTracker(cfg.Interval),
	}
	resid := make([]float64, len(y))
	pred := make([]float64, len(y))
	for i := range y {
		pred[i] = g.base
	}
	for round := 0; round < cfg.Rounds; round++ {
		for i := range y {
			resid[i] = y[i] - pred[i]
		}
		tree := growRegTree(X, resid, cfg.Depth, cfg.MinLeaf)
		if tree == nil {
			break
		}
		g.stages = append(g.stages, tree)
		for i := range y {
			pred[i] += cfg.LearnRate * tree.predict(X[i])
		}
	}
	for i := range y {
		g.residuals.push(y[i] - pred[i])
	}
	g.residuals.refresh()
	return g, nil
}

func (g *GradientBoosting) mean(x []float64) float64 {
	v := g.base
	for _, s := range g.stages {
		v += g.learnRate * s.predict(x)
	}
	return v
}

// Predict returns the boosted mean plus the residual quantile.
func (g *GradientBoosting) Predict(f ran.FeatureVector) sim.Time {
	v := g.mean(f.Select(g.Features)) + g.residuals.quantile()
	if v < 0 {
		v = 0
	}
	return sim.Time(v)
}

// Observe updates the residual window online.
func (g *GradientBoosting) Observe(f ran.FeatureVector, runtime sim.Time) {
	g.residuals.push(float64(runtime) - g.mean(f.Select(g.Features)))
}

// regTree is a small CART regression tree predicting residual means.
type regTree struct {
	feature   int
	threshold float64
	left      *regTree
	right     *regTree
	leaf      bool
	value     float64
}

func growRegTree(X [][]float64, y []float64, depth, minLeaf int) *regTree {
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	return growRegTreeIdx(X, y, idx, depth, minLeaf)
}

func growRegTreeIdx(X [][]float64, y []float64, idx []int, depth, minLeaf int) *regTree {
	if len(idx) == 0 {
		return nil
	}
	mean := 0.0
	for _, j := range idx {
		mean += y[j]
	}
	mean /= float64(len(idx))
	if depth == 0 || len(idx) < 2*minLeaf {
		return &regTree{leaf: true, value: mean}
	}
	nFeats := len(X[idx[0]])
	vals := make([]float64, len(idx))
	sub := make([]float64, len(idx))
	for i, j := range idx {
		sub[i] = y[j]
	}
	bestGain, bestFeat, bestThresh := 0.0, -1, 0.0
	for f := 0; f < nFeats; f++ {
		for i, j := range idx {
			vals[i] = X[j][f]
		}
		gain, thresh, ok := bestSplit(vals, sub, minLeaf)
		if ok && gain > bestGain {
			bestGain, bestFeat, bestThresh = gain, f, thresh
		}
	}
	if bestFeat < 0 {
		return &regTree{leaf: true, value: mean}
	}
	var l, r []int
	for _, j := range idx {
		if X[j][bestFeat] <= bestThresh {
			l = append(l, j)
		} else {
			r = append(r, j)
		}
	}
	if len(l) < minLeaf || len(r) < minLeaf {
		return &regTree{leaf: true, value: mean}
	}
	return &regTree{
		feature:   bestFeat,
		threshold: bestThresh,
		left:      growRegTreeIdx(X, y, l, depth-1, minLeaf),
		right:     growRegTreeIdx(X, y, r, depth-1, minLeaf),
	}
}

func (t *regTree) predict(x []float64) float64 {
	for !t.leaf {
		if x[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// EVTPredictor is the conventional probabilistic-WCET baseline (§6.3, [23]):
// a single task-wide WCET at the configured confidence, oblivious to input
// parameters. The tail is fitted with a generalized Pareto distribution over
// a sliding window and refitted periodically online.
type EVTPredictor struct {
	Confidence float64
	window     []float64
	next       int
	full       bool
	cached     sim.Time
	pending    int
	empMax     float64
}

// EVTWindow bounds the sample window used for tail fitting.
const EVTWindow = 50000

// TrainEVT fits the single-value predictor on offline data.
func TrainEVT(data []Sample, confidence float64) (*EVTPredictor, error) {
	if len(data) < 100 {
		return nil, ErrNoData
	}
	if confidence <= 0 || confidence >= 1 {
		return nil, errors.New("predictor: confidence must be in (0,1)")
	}
	p := &EVTPredictor{Confidence: confidence, window: make([]float64, 0, EVTWindow)}
	for _, s := range data {
		p.pushSample(float64(s.Runtime))
	}
	p.refit()
	return p, nil
}

func (p *EVTPredictor) pushSample(v float64) {
	if v > p.empMax {
		p.empMax = v
	}
	if len(p.window) < cap(p.window) {
		p.window = append(p.window, v)
	} else {
		p.full = true
		p.window[p.next] = v
		p.next = (p.next + 1) % len(p.window)
	}
	p.pending++
}

func (p *EVTPredictor) refit() {
	p.pending = 0
	g, err := stats.FitGPDTail(p.window, 0.9)
	if err != nil {
		// Fall back to the empirical max when the tail fit is infeasible.
		p.cached = sim.Time(p.empMax)
		return
	}
	v := g.Quantile(p.Confidence)
	// Never predict below the empirical maximum seen: measurement-based
	// pWCET methods clamp to observed evidence.
	if v < p.empMax {
		v = p.empMax
	}
	p.cached = sim.Time(v)
}

// Predict returns the single fitted WCET regardless of input features.
func (p *EVTPredictor) Predict(ran.FeatureVector) sim.Time { return p.cached }

// Observe updates the sliding window, refitting every 2048 observations.
func (p *EVTPredictor) Observe(_ ran.FeatureVector, runtime sim.Time) {
	p.pushSample(float64(runtime))
	if p.pending >= 2048 {
		p.refit()
	}
}

// sortSamplesByRuntime is a helper used by analysis code.
func sortSamplesByRuntime(data []Sample) []Sample {
	out := append([]Sample(nil), data...)
	sort.Slice(out, func(a, b int) bool { return out[a].Runtime < out[b].Runtime })
	return out
}
