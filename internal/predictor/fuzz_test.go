package predictor

import (
	"testing"

	"concordia/internal/costmodel"
	"concordia/internal/ran"
)

// FuzzLoadQuantileTree hardens tree deserialization: arbitrary bytes must
// never panic, and any accepted tree must route and predict without
// crashing.
func FuzzLoadQuantileTree(f *testing.F) {
	// Seed with a genuine serialized tree plus malformed variants.
	data := profileDecode(500, 99, costmodel.Env{PoolCores: 2})
	tree, err := TrainQuantileTree(ran.TaskLDPCDecode,
		[]ran.Feature{ran.FCodeblocks, ran.FSNRdB}, data,
		TreeConfig{MaxLeaves: 8, MinLeaf: 30})
	if err != nil {
		f.Fatal(err)
	}
	blob, err := tree.MarshalJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte(`{"nodes":[{"leaf":true,"leaf_id":0,"samples":[5]}]}`))
	f.Add([]byte(`{"nodes":[{"leaf":false,"left":1,"right":1},{"leaf":true}]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, in []byte) {
		loaded, err := LoadQuantileTree(in)
		if err != nil {
			return
		}
		var fv ran.FeatureVector
		fv.Set(ran.FCodeblocks, 3)
		fv.Set(ran.FSNRdB, 10)
		_ = loaded.Predict(fv)
		loaded.Observe(fv, 12345)
		_ = loaded.LeafID(fv)
	})
}
