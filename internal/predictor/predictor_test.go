package predictor

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"concordia/internal/costmodel"
	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/sim"
	"concordia/internal/stats"
)

// profileDecode produces an offline-style profiling dataset for the LDPC
// decode task by sweeping input parameters and sampling the cost model in
// isolation — the way the paper's offline phase profiles FlexRAN.
func profileDecode(n int, seed uint64, env costmodel.Env) []Sample {
	m := costmodel.New(seed)
	r := rng.New(seed + 1)
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		var f ran.FeatureVector
		cbs := 1 + r.Intn(15)
		snr := r.Uniform(0, 32)
		f.Set(ran.FCodeblocks, float64(cbs))
		f.Set(ran.FSNRdB, snr)
		f.Set(ran.FTBSBits, float64(cbs*8000))
		f.Set(ran.FNumUEs, float64(1+r.Intn(16)))
		f.Set(ran.FPRBs, float64(10+r.Intn(260)))
		out = append(out, Sample{Features: f, Runtime: m.Sample(ran.TaskLDPCDecode, f, env)})
	}
	return out
}

func TestRingBufferBasics(t *testing.T) {
	r := NewRingBuffer(3)
	if r.Max() != 0 || r.Len() != 0 {
		t.Fatal("empty buffer state")
	}
	r.Push(5)
	r.Push(9)
	r.Push(2)
	if r.Max() != 9 || r.Len() != 3 {
		t.Fatalf("max %v len %d", r.Max(), r.Len())
	}
	// Eviction order: oldest first.
	r.Push(1) // evicts 5
	if r.Max() != 9 {
		t.Fatalf("max after evicting 5: %v", r.Max())
	}
	r.Push(1) // evicts 9
	if r.Max() != 2 {
		t.Fatalf("max after evicting 9: %v", r.Max())
	}
}

func TestRingBufferCapacityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity accepted")
		}
	}()
	NewRingBuffer(0)
}

func TestRingBufferMaxProperty(t *testing.T) {
	// Max of the ring equals max of the last N pushed values.
	err := quick.Check(func(raw []uint32) bool {
		const n = 16
		r := NewRingBuffer(n)
		for _, v := range raw {
			r.Push(sim.Time(v))
		}
		start := 0
		if len(raw) > n {
			start = len(raw) - n
		}
		var want sim.Time
		for _, v := range raw[start:] {
			if sim.Time(v) > want {
				want = sim.Time(v)
			}
		}
		return r.Max() == want
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelectFeaturesFindsDrivers(t *testing.T) {
	data := profileDecode(3000, 1, costmodel.Env{PoolCores: 1})
	feats := SelectFeatures(ran.TaskLDPCDecode, data, 4, 2)
	has := func(f ran.Feature) bool {
		for _, g := range feats {
			if g == f {
				return true
			}
		}
		return false
	}
	if !has(ran.FCodeblocks) {
		t.Fatalf("selected %v, missing codeblocks (the dominant driver)", feats)
	}
	if !has(ran.FSNRdB) {
		t.Fatalf("selected %v, missing SNR (hand-picked)", feats)
	}
}

func TestSelectFeaturesSkipsConstant(t *testing.T) {
	data := profileDecode(500, 2, costmodel.Env{PoolCores: 1})
	feats := SelectFeatures(ran.TaskLDPCDecode, data, 6, 4)
	for _, f := range feats {
		if f == ran.FPoolCores { // constant zero in this dataset
			t.Fatal("constant feature selected")
		}
	}
}

func trainDecodeTree(t *testing.T, data []Sample) *QuantileTree {
	t.Helper()
	feats := []ran.Feature{ran.FCodeblocks, ran.FSNRdB}
	tree, err := TrainQuantileTree(ran.TaskLDPCDecode, feats, data, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestTreeTrainingErrors(t *testing.T) {
	if _, err := TrainQuantileTree(ran.TaskLDPCDecode, []ran.Feature{ran.FCodeblocks}, nil, TreeConfig{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	data := profileDecode(200, 3, costmodel.Env{PoolCores: 1})
	if _, err := TrainQuantileTree(ran.TaskLDPCDecode, nil, data, TreeConfig{}); err == nil {
		t.Fatal("empty feature set accepted")
	}
}

func TestTreeSplitsReduceLeafVariance(t *testing.T) {
	data := profileDecode(8000, 4, costmodel.Env{PoolCores: 1})
	tree := trainDecodeTree(t, data)
	if tree.NumLeaves() < 4 {
		t.Fatalf("tree grew only %d leaves", tree.NumLeaves())
	}
	// Pooled within-leaf variance must be far below the global variance
	// (the Fig 7a property).
	var all []float64
	for _, s := range data {
		all = append(all, float64(s.Runtime))
	}
	globalVar := stats.Variance(all)
	var pooled, weight float64
	for id := 0; id < tree.NumLeaves(); id++ {
		ls := tree.LeafSamples(id)
		if len(ls) == 0 {
			continue
		}
		pooled += stats.Variance(ls) * float64(len(ls))
		weight += float64(len(ls))
	}
	pooled /= weight
	if pooled > globalVar/4 {
		t.Fatalf("within-leaf variance %.3g not ≪ global %.3g", pooled, globalVar)
	}
}

func TestTreePredictionCoversRuntimes(t *testing.T) {
	data := profileDecode(8000, 5, costmodel.Env{PoolCores: 4})
	tree := trainDecodeTree(t, data)
	// On fresh samples from the same distribution, the miss rate (runtime >
	// predicted WCET) must be small.
	fresh := profileDecode(4000, 99, costmodel.Env{PoolCores: 4})
	misses := 0
	for _, s := range fresh {
		if s.Runtime > tree.Predict(s.Features) {
			misses++
		}
	}
	rate := float64(misses) / float64(len(fresh))
	if rate > 0.02 {
		t.Fatalf("offline tree miss rate %.3f too high", rate)
	}
}

func TestTreeParameterizedPredictions(t *testing.T) {
	data := profileDecode(8000, 6, costmodel.Env{PoolCores: 1})
	tree := trainDecodeTree(t, data)
	small := ran.FeatureVector{}
	small.Set(ran.FCodeblocks, 1)
	small.Set(ran.FSNRdB, 28)
	large := ran.FeatureVector{}
	large.Set(ran.FCodeblocks, 14)
	large.Set(ran.FSNRdB, 3)
	if tree.Predict(small) >= tree.Predict(large) {
		t.Fatal("predictions not parameterized: small task WCET >= large task WCET")
	}
	// The point of parameterization (§4.1): the small-task prediction must
	// be far below a single global WCET.
	if float64(tree.Predict(small)) > 0.5*float64(tree.Predict(large)) {
		t.Fatalf("small-task prediction %v not well below large-task %v",
			tree.Predict(small), tree.Predict(large))
	}
}

func TestTreeOnlineAdaptation(t *testing.T) {
	// Train offline in isolation, then observe inflated runtimes (as under
	// interference); predictions must rise to cover them without retraining.
	iso := costmodel.Env{PoolCores: 4}
	data := profileDecode(8000, 7, iso)
	tree := trainDecodeTree(t, data)
	inter := costmodel.Env{PoolCores: 4, Interference: 1}
	online := profileDecode(20000, 8, inter)
	for _, s := range online {
		tree.Observe(s.Features, s.Runtime)
	}
	fresh := profileDecode(4000, 9, inter)
	misses := 0
	for _, s := range fresh {
		if s.Runtime > tree.Predict(s.Features) {
			misses++
		}
	}
	rate := float64(misses) / float64(len(fresh))
	if rate > 0.02 {
		t.Fatalf("online-adapted miss rate %.3f too high under interference", rate)
	}
}

func TestTreeRoutingDeterministic(t *testing.T) {
	data := profileDecode(4000, 10, costmodel.Env{PoolCores: 1})
	tree := trainDecodeTree(t, data)
	for _, s := range data[:200] {
		if tree.LeafID(s.Features) != tree.LeafID(s.Features) {
			t.Fatal("leaf routing not deterministic")
		}
	}
}

func TestTreeRespectsBounds(t *testing.T) {
	data := profileDecode(8000, 11, costmodel.Env{PoolCores: 1})
	cfg := TreeConfig{MaxDepth: 3, MinLeaf: 100, MaxLeaves: 6}
	tree, err := TrainQuantileTree(ran.TaskLDPCDecode, []ran.Feature{ran.FCodeblocks, ran.FSNRdB}, data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() > 3 {
		t.Fatalf("depth %d exceeds bound", tree.Depth())
	}
	if tree.NumLeaves() > 6 {
		t.Fatalf("leaves %d exceed bound", tree.NumLeaves())
	}
}

func TestTreeString(t *testing.T) {
	data := profileDecode(2000, 12, costmodel.Env{PoolCores: 1})
	tree := trainDecodeTree(t, data)
	if s := tree.String(); len(s) == 0 {
		t.Fatal("empty tree dump")
	}
}

func TestLinearPredictorUnderestimatesNonlinear(t *testing.T) {
	// Fig 14: the linear model misses far more deadlines than the tree on
	// the non-linear decode runtime.
	env := costmodel.Env{PoolCores: 4}
	data := profileDecode(8000, 13, env)
	feats := []ran.Feature{ran.FCodeblocks, ran.FSNRdB}
	lin, err := TrainLinear(feats, data, 0.99999)
	if err != nil {
		t.Fatal(err)
	}
	tree := trainDecodeTree(t, data)
	fresh := profileDecode(6000, 14, env)
	missLin, missTree := 0, 0
	var errLin, errTree float64
	var nLin, nTree int
	for _, s := range fresh {
		pl, pt := lin.Predict(s.Features), tree.Predict(s.Features)
		if s.Runtime > pl {
			missLin++
		} else {
			errLin += float64(pl - s.Runtime)
			nLin++
		}
		if s.Runtime > pt {
			missTree++
		} else {
			errTree += float64(pt - s.Runtime)
			nTree++
		}
	}
	// The linear model holds the interval by being globally pessimistic, so
	// its average overestimate (prediction error on met deadlines) must be
	// much larger than the tree's — the Fig 14b metric.
	if nLin == 0 || nTree == 0 {
		t.Fatal("no met deadlines")
	}
	avgLin := errLin / float64(nLin)
	avgTree := errTree / float64(nTree)
	if avgTree >= avgLin {
		t.Fatalf("tree avg error %.0f not below linear %.0f", avgTree, avgLin)
	}
	if avgLin < 2*avgTree {
		t.Fatalf("linear pessimism %.0f vs tree %.0f: expected ≥2x gap", avgLin, avgTree)
	}
}

func TestGradientBoostingBeatsLinear(t *testing.T) {
	env := costmodel.Env{PoolCores: 4}
	data := profileDecode(8000, 15, env)
	feats := []ran.Feature{ran.FCodeblocks, ran.FSNRdB}
	lin, _ := TrainLinear(feats, data, 0.99999)
	gb, err := TrainGradientBoosting(feats, data, GBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := profileDecode(6000, 16, env)
	var errLin, errGB float64
	var nLin, nGB int
	for _, s := range fresh {
		if pl := lin.Predict(s.Features); s.Runtime <= pl {
			errLin += float64(pl - s.Runtime)
			nLin++
		}
		if pg := gb.Predict(s.Features); s.Runtime <= pg {
			errGB += float64(pg - s.Runtime)
			nGB++
		}
	}
	if nLin == 0 || nGB == 0 {
		t.Fatal("no met deadlines")
	}
	if errGB/float64(nGB) >= errLin/float64(nLin) {
		t.Fatalf("boosting error %.0f not below linear %.0f",
			errGB/float64(nGB), errLin/float64(nLin))
	}
}

func TestEVTPredictorSingleValue(t *testing.T) {
	env := costmodel.Env{PoolCores: 4}
	data := profileDecode(8000, 17, env)
	evt, err := TrainEVT(data, 0.99999)
	if err != nil {
		t.Fatal(err)
	}
	var a, b ran.FeatureVector
	a.Set(ran.FCodeblocks, 1)
	b.Set(ran.FCodeblocks, 15)
	if evt.Predict(a) != evt.Predict(b) {
		t.Fatal("EVT prediction must ignore features")
	}
	// It must cover (nearly) everything — pessimistically.
	fresh := profileDecode(6000, 18, env)
	misses := 0
	for _, s := range fresh {
		if s.Runtime > evt.Predict(s.Features) {
			misses++
		}
	}
	if rate := float64(misses) / float64(len(fresh)); rate > 0.001 {
		t.Fatalf("EVT miss rate %.4f too high for 0.99999 confidence", rate)
	}
}

func TestEVTMorePessimisticThanTree(t *testing.T) {
	// Fig 13's premise: the single-value pWCET reclaims fewer cycles
	// because its prediction is far above the typical task's runtime.
	env := costmodel.Env{PoolCores: 4}
	data := profileDecode(8000, 19, env)
	evt, _ := TrainEVT(data, 0.99999)
	tree := trainDecodeTree(t, data)
	var f ran.FeatureVector
	f.Set(ran.FCodeblocks, 2)
	f.Set(ran.FSNRdB, 25)
	if evt.Predict(f) <= tree.Predict(f) {
		t.Fatal("EVT prediction for a small task should exceed the tree's")
	}
}

func TestEVTErrors(t *testing.T) {
	if _, err := TrainEVT(nil, 0.99999); err == nil {
		t.Fatal("empty dataset accepted")
	}
	data := profileDecode(500, 20, costmodel.Env{PoolCores: 1})
	if _, err := TrainEVT(data, 1.5); err == nil {
		t.Fatal("bad confidence accepted")
	}
}

func TestEVTOnlineRefit(t *testing.T) {
	env := costmodel.Env{PoolCores: 4}
	data := profileDecode(2000, 21, env)
	evt, _ := TrainEVT(data, 0.9999)
	before := evt.Predict(ran.FeatureVector{})
	// Observe a much heavier regime; after refits the prediction rises.
	heavy := costmodel.Env{PoolCores: 4, Interference: 1}
	for _, s := range profileDecode(6000, 22, heavy) {
		evt.Observe(s.Features, s.Runtime*2)
	}
	after := evt.Predict(ran.FeatureVector{})
	if after <= before {
		t.Fatalf("EVT did not adapt online: %v -> %v", before, after)
	}
}

func TestResidualTrackerQuantile(t *testing.T) {
	rt := newResidualTracker(0.9)
	for i := 0; i < 1000; i++ {
		rt.push(float64(i))
	}
	rt.refresh()
	q := rt.quantile()
	if math.Abs(q-899) > 15 {
		t.Fatalf("residual q90 %.0f want ~899", q)
	}
}

func TestSortSamplesHelper(t *testing.T) {
	data := []Sample{{Runtime: 3}, {Runtime: 1}, {Runtime: 2}}
	s := sortSamplesByRuntime(data)
	if s[0].Runtime != 1 || s[2].Runtime != 3 {
		t.Fatal("sort helper broken")
	}
	if data[0].Runtime != 3 {
		t.Fatal("sort helper mutated input")
	}
}

func BenchmarkTreePredict(b *testing.B) {
	data := profileDecode(8000, 30, costmodel.Env{PoolCores: 4})
	tree, _ := TrainQuantileTree(ran.TaskLDPCDecode,
		[]ran.Feature{ran.FCodeblocks, ran.FSNRdB}, data, TreeConfig{})
	f := data[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tree.Predict(f)
	}
}

func BenchmarkTreeObserve(b *testing.B) {
	data := profileDecode(8000, 31, costmodel.Env{PoolCores: 4})
	tree, _ := TrainQuantileTree(ran.TaskLDPCDecode,
		[]ran.Feature{ran.FCodeblocks, ran.FSNRdB}, data, TreeConfig{})
	f := data[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Observe(f, sim.Time(i))
	}
}

func BenchmarkTreeTrain(b *testing.B) {
	data := profileDecode(8000, 32, costmodel.Env{PoolCores: 4})
	feats := []ran.Feature{ran.FCodeblocks, ran.FSNRdB}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = TrainQuantileTree(ran.TaskLDPCDecode, feats, data, TreeConfig{})
	}
}

func TestLeafEVTSimilarAccuracyHigherCost(t *testing.T) {
	// §4.2's reported finding: per-leaf EVT matches the ring-max predictor's
	// accuracy but costs more compute.
	env := costmodel.Env{PoolCores: 4}
	data := profileDecode(10000, 50, env)
	tree := trainDecodeTree(t, data)
	evt := NewLeafEVTTree(trainDecodeTree(t, data), 0.99999)

	fresh := profileDecode(5000, 51, env)
	missTree, missEVT := 0, 0
	for _, s := range fresh {
		if s.Runtime > tree.Predict(s.Features) {
			missTree++
		}
		if s.Runtime > evt.Predict(s.Features) {
			missEVT++
		}
		tree.Observe(s.Features, s.Runtime)
		evt.Observe(s.Features, s.Runtime)
	}
	rTree := float64(missTree) / float64(len(fresh))
	rEVT := float64(missEVT) / float64(len(fresh))
	if rEVT > rTree+0.02 {
		t.Fatalf("leaf-EVT miss rate %.3f much worse than ring-max %.3f", rEVT, rTree)
	}
	// Compute cost: a refit walks the whole 5K ring and fits a tail, far
	// beyond a ring push.
	start := time.Now()
	for i := 0; i < 200; i++ {
		evt.refit(0)
	}
	evtCost := time.Since(start)
	start = time.Now()
	for i := 0; i < 200; i++ {
		tree.Observe(fresh[0].Features, fresh[0].Runtime)
	}
	ringCost := time.Since(start)
	if evtCost < ringCost*5 {
		t.Logf("note: EVT refit %v vs ring push %v", evtCost, ringCost)
	}
}

func TestLeafEVTAdapts(t *testing.T) {
	iso := costmodel.Env{PoolCores: 4}
	data := profileDecode(6000, 52, iso)
	evt := NewLeafEVTTree(trainDecodeTree(t, data), 0.99999)
	evt.RefitEvery = 64
	f := data[0].Features
	before := evt.Predict(f)
	for i := 0; i < 200; i++ {
		evt.Observe(f, before*2)
	}
	if evt.Predict(f) <= before {
		t.Fatal("leaf-EVT did not adapt to inflated runtimes")
	}
}

func TestRingBufferWrapAround(t *testing.T) {
	r := NewRingBuffer(4)
	// Partially filled: statistics cover exactly what was pushed.
	for _, v := range []sim.Time{30, 10, 20} {
		r.Push(v)
	}
	if r.Len() != 3 {
		t.Fatalf("partial len %d, want 3", r.Len())
	}
	if got := r.Max(); got != 30 {
		t.Fatalf("partial max %v, want 30", got)
	}
	if got := r.Quantile(0); got != 10 {
		t.Fatalf("partial q0 %v, want 10", got)
	}
	// Six more pushes wrap the 4-slot ring: only the last four observations
	// {7, 8, 9, 11} survive; the early maximum (30) must be evicted.
	for _, v := range []sim.Time{5, 6, 7, 8, 9, 11} {
		r.Push(v)
	}
	if r.Len() != 4 {
		t.Fatalf("wrapped len %d, want 4", r.Len())
	}
	if got := r.Max(); got != 11 {
		t.Fatalf("wrapped max %v, want 11 (evicted 30 must not survive)", got)
	}
	if got := r.Quantile(1); got != 11 {
		t.Fatalf("wrapped q1 %v, want 11", got)
	}
	if got := r.Quantile(0); got != 7 {
		t.Fatalf("wrapped q0 %v, want 7 (oldest retained)", got)
	}
	// One more full lap: the ring now holds {100, 101, 102, 103} only.
	for i := sim.Time(100); i < 104; i++ {
		r.Push(i)
	}
	if got, want := r.Max(), sim.Time(103); got != want {
		t.Fatalf("relapped max %v, want %v", got, want)
	}
	if got, want := r.Quantile(0), sim.Time(100); got != want {
		t.Fatalf("relapped q0 %v, want %v", got, want)
	}
}
