package predictor

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"concordia/internal/ran"
	"concordia/internal/sim"
)

// The paper's offline pipeline emits the trained decision trees as generated
// C code (~6 K lines) that FlexRAN links against. This file provides the
// equivalent deployment path for the reproduction: JSON persistence (train
// once, load at startup) and Go source-code generation for a zero-allocation
// traversal function.

// treeJSON is the serialized tree form.
type treeJSON struct {
	Kind     int        `json:"kind"`
	Features []int      `json:"features"`
	Margin   float64    `json:"margin"`
	RingSize int        `json:"ring_size"`
	Nodes    []nodeJSON `json:"nodes"`
}

// nodeJSON flattens the tree: children reference node indices; leaves carry
// their training samples (capped) so a loaded tree predicts immediately.
type nodeJSON struct {
	Leaf      bool    `json:"leaf"`
	Feature   int     `json:"feature,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Left      int     `json:"left,omitempty"`
	Right     int     `json:"right,omitempty"`
	LeafID    int     `json:"leaf_id,omitempty"`
	Samples   []int64 `json:"samples,omitempty"`
}

// maxSerializedSamples caps per-leaf persisted samples; the online phase
// refills the rings anyway.
const maxSerializedSamples = 512

// MarshalJSON serializes the tree, including a bounded sample of each
// leaf's ring buffer.
func (t *QuantileTree) MarshalJSON() ([]byte, error) {
	tj := treeJSON{
		Kind:     int(t.Kind),
		Margin:   t.Margin,
		RingSize: DefaultRingSize,
	}
	for _, f := range t.Features {
		tj.Features = append(tj.Features, int(f))
	}
	var flatten func(n *treeNode) int
	flatten = func(n *treeNode) int {
		idx := len(tj.Nodes)
		tj.Nodes = append(tj.Nodes, nodeJSON{})
		if n.leaf {
			vals := n.ring.Values()
			keep := len(vals)
			if keep > maxSerializedSamples {
				keep = maxSerializedSamples
			}
			samples := make([]int64, 0, keep)
			// Keep the largest values first so Max survives truncation.
			max := n.ring.Max()
			samples = append(samples, int64(max))
			for _, v := range vals {
				if len(samples) >= keep {
					break
				}
				if v != max {
					samples = append(samples, int64(v))
				}
			}
			tj.Nodes[idx] = nodeJSON{Leaf: true, LeafID: n.leafID, Samples: samples}
			return idx
		}
		left := flatten(n.left)
		right := flatten(n.right)
		tj.Nodes[idx] = nodeJSON{
			Feature:   int(n.feature),
			Threshold: n.threshold,
			Left:      left,
			Right:     right,
		}
		return idx
	}
	if t.root != nil {
		flatten(t.root)
	}
	return json.Marshal(tj)
}

// LoadQuantileTree reconstructs a tree from MarshalJSON output. Leaf rings
// are seeded with the persisted samples.
func LoadQuantileTree(data []byte) (*QuantileTree, error) {
	var tj treeJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return nil, err
	}
	if len(tj.Nodes) == 0 {
		return nil, errors.New("predictor: empty serialized tree")
	}
	ringSize := tj.RingSize
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	t := &QuantileTree{Kind: ran.TaskKind(tj.Kind), Margin: tj.Margin}
	if t.Margin <= 0 {
		t.Margin = 1
	}
	for _, f := range tj.Features {
		t.Features = append(t.Features, ran.Feature(f))
	}
	var build func(idx int) (*treeNode, error)
	built := make(map[int]bool)
	build = func(idx int) (*treeNode, error) {
		if idx < 0 || idx >= len(tj.Nodes) || built[idx] {
			return nil, fmt.Errorf("predictor: invalid node reference %d", idx)
		}
		built[idx] = true
		nj := tj.Nodes[idx]
		if nj.Leaf {
			n := &treeNode{leaf: true, leafID: nj.LeafID, ring: NewRingBuffer(ringSize)}
			for _, v := range nj.Samples {
				n.ring.Push(sim.Time(v))
			}
			for len(t.leaves) <= nj.LeafID {
				t.leaves = append(t.leaves, nil)
			}
			if t.leaves[nj.LeafID] != nil {
				return nil, fmt.Errorf("predictor: duplicate leaf id %d", nj.LeafID)
			}
			t.leaves[nj.LeafID] = n
			return n, nil
		}
		left, err := build(nj.Left)
		if err != nil {
			return nil, err
		}
		right, err := build(nj.Right)
		if err != nil {
			return nil, err
		}
		return &treeNode{
			feature:   ran.Feature(nj.Feature),
			threshold: nj.Threshold,
			left:      left,
			right:     right,
		}, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// GenerateGo emits a standalone Go function that routes a feature vector to
// its leaf index — the reproduction's analogue of the paper's generated C
// traversal code. The emitted function has signature
//
//	func <name>(f [N]float64) int
//
// where indices follow ran.Feature ordering.
func (t *QuantileTree) GenerateGo(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// Code generated from a trained quantile decision tree for %v. DO NOT EDIT.\n", t.Kind)
	fmt.Fprintf(&sb, "func %s(f [%d]float64) int {\n", name, int(ran.NumFeatures))
	var emit func(n *treeNode, depth int)
	emit = func(n *treeNode, depth int) {
		pad := strings.Repeat("\t", depth)
		if n.leaf {
			fmt.Fprintf(&sb, "%sreturn %d\n", pad, n.leafID)
			return
		}
		fmt.Fprintf(&sb, "%sif f[%d] <= %v {\n", pad, int(n.feature), n.threshold)
		emit(n.left, depth+1)
		fmt.Fprintf(&sb, "%s}\n", pad)
		emit(n.right, depth+1)
	}
	if t.root != nil {
		emit(t.root, 1)
	} else {
		sb.WriteString("\treturn 0\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}
