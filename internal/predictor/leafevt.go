package predictor

import (
	"concordia/internal/ran"
	"concordia/internal/sim"
	"concordia/internal/stats"
)

// LeafEVTTree wraps a quantile tree but replaces Algorithm 2's max-of-ring
// prediction with a per-leaf EVT (GPD tail) quantile — the variant §4.2
// reports trying: "we also experimented with such methods (e.g. [23]) to
// replace our online predictor on each leaf node, but they provided similar
// accuracy while being more computationally expensive". The tail is refit
// lazily every refit interval of observations per leaf.
type LeafEVTTree struct {
	tree       *QuantileTree
	confidence float64
	// cached per-leaf predictions and observation counters.
	cached  []sim.Time
	pending []int
	// RefitEvery controls how many observations a leaf accumulates between
	// tail refits (the compute-cost knob).
	RefitEvery int
}

// NewLeafEVTTree wraps an already-trained quantile tree.
func NewLeafEVTTree(t *QuantileTree, confidence float64) *LeafEVTTree {
	l := &LeafEVTTree{
		tree:       t,
		confidence: confidence,
		cached:     make([]sim.Time, t.NumLeaves()),
		pending:    make([]int, t.NumLeaves()),
		RefitEvery: 512,
	}
	for id := range l.cached {
		l.refit(id)
	}
	return l
}

// refit recomputes the leaf's EVT prediction from its current ring buffer.
func (l *LeafEVTTree) refit(id int) {
	samples := l.tree.LeafSamples(id)
	if len(samples) == 0 {
		l.cached[id] = 0
		return
	}
	g, err := stats.FitGPDTail(samples, 0.85)
	if err != nil {
		// Too few samples for a tail fit: fall back to the empirical max.
		l.cached[id] = sim.Time(stats.Max(samples))
		return
	}
	v := g.Quantile(l.confidence)
	if max := stats.Max(samples); v < max {
		v = max
	}
	l.cached[id] = sim.Time(v)
}

// Predict returns the leaf's EVT-quantile WCET.
func (l *LeafEVTTree) Predict(f ran.FeatureVector) sim.Time {
	return l.cached[l.tree.LeafID(f)]
}

// Observe pushes the runtime into the leaf ring and refits periodically.
func (l *LeafEVTTree) Observe(f ran.FeatureVector, runtime sim.Time) {
	id := l.tree.LeafID(f)
	l.tree.Observe(f, runtime)
	l.pending[id]++
	if l.pending[id] >= l.RefitEvery {
		l.pending[id] = 0
		l.refit(id)
	}
}
