// Package predictor implements the paper's central ML contribution: the
// parameterized worst-case-execution-time (WCET) predictor built on quantile
// decision trees (§4.2, Algorithms 1 and 2), plus the baseline predictors it
// is evaluated against in §6.3–6.4 — ordinary linear regression, gradient
// boosting, and the single-value EVT/pWCET approach from the probabilistic
// timing-analysis literature.
//
// All predictors implement the same contract: given a task's input-feature
// vector they return a WCET estimate, and they accept observed runtimes to
// adapt online (the interference-compensation mechanism of §4.2).
package predictor

import (
	"concordia/internal/ran"
	"concordia/internal/sim"
)

// Predictor estimates task WCETs from input features.
type Predictor interface {
	// Predict returns the WCET estimate for a task with the given features.
	Predict(f ran.FeatureVector) sim.Time
	// Observe feeds one measured runtime back into the model (online phase).
	Observe(f ran.FeatureVector, runtime sim.Time)
}

// Sample is one profiling observation: the vRAN state features of a TTI and
// the measured runtime of one task execution.
type Sample struct {
	Features ran.FeatureVector
	Runtime  sim.Time
}

// RingBuffer is the per-leaf store of Algorithm 2: the most recent runtime
// observations, whose maximum is the leaf's WCET prediction. The paper's
// implementation sizes these at 5000 entries.
type RingBuffer struct {
	buf  []sim.Time
	next int
	full bool
}

// DefaultRingSize matches the paper's 5 K-entry leaf buffers.
const DefaultRingSize = 5000

// NewRingBuffer returns an empty buffer of the given capacity.
func NewRingBuffer(capacity int) *RingBuffer {
	if capacity <= 0 {
		panic("predictor: ring buffer capacity must be positive")
	}
	return &RingBuffer{buf: make([]sim.Time, 0, capacity)}
}

// Push appends an observation, evicting the oldest once full.
func (r *RingBuffer) Push(v sim.Time) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
		return
	}
	r.full = true
	r.buf[r.next] = v
	r.next = (r.next + 1) % len(r.buf)
}

// Max returns the largest stored observation, or 0 when empty.
func (r *RingBuffer) Max() sim.Time {
	var m sim.Time
	for _, v := range r.buf {
		if v > m {
			m = v
		}
	}
	return m
}

// Len returns the number of stored observations.
func (r *RingBuffer) Len() int { return len(r.buf) }

// Values returns the stored observations (not a copy; callers must not
// mutate).
func (r *RingBuffer) Values() []sim.Time { return r.buf }

// Quantile returns the q-quantile of the stored observations, or 0 when
// empty. Used by analysis tooling, not by the hot prediction path.
func (r *RingBuffer) Quantile(q float64) sim.Time {
	if len(r.buf) == 0 {
		return 0
	}
	xs := make([]float64, len(r.buf))
	for i, v := range r.buf {
		xs[i] = float64(v)
	}
	return sim.Time(quantileOf(xs, q))
}
