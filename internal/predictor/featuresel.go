package predictor

import (
	"sort"

	"concordia/internal/ran"
	"concordia/internal/stats"
)

// HandPicked lists the domain-expert feature choices of Algorithm 1 — the
// parameters §4.1 identifies as driving each task family's runtime.
var HandPicked = map[ran.TaskKind][]ran.Feature{
	ran.TaskLDPCDecode:        {ran.FCodeblocks, ran.FSNRdB},
	ran.TaskLDPCEncode:        {ran.FCodeblocks},
	ran.TaskChannelEstimation: {ran.FPRBs, ran.FAntennas},
	ran.TaskEqualization:      {ran.FPRBs, ran.FLayers},
	ran.TaskDemodulation:      {ran.FTBSBits, ran.FModOrder},
	ran.TaskModulation:        {ran.FTBSBits, ran.FModOrder},
	ran.TaskPrecoding:         {ran.FPRBs, ran.FAntennas},
	ran.TaskRateDematch:       {ran.FTBSBits},
	ran.TaskRateMatch:         {ran.FTBSBits},
	ran.TaskFFT:               {ran.FPRBs},
	ran.TaskIFFT:              {ran.FPRBs},
	ran.TaskCRCCheck:          {ran.FTBSBits},
	ran.TaskPolarDecode:       {ran.FNumUEs},
	ran.TaskPolarEncode:       {ran.FNumUEs},
	ran.TaskMACUplinkSched:    {ran.FNumUEs, ran.FLayers},
	ran.TaskMACDownlinkSched:  {ran.FNumUEs, ran.FLayers},
	ran.TaskMACBuild:          {ran.FNumUEs},
	ran.TaskTurboDecode:       {ran.FCodeblocks, ran.FSNRdB},
	ran.TaskTurboEncode:       {ran.FCodeblocks},
}

// SelectFeatures implements the feature-selection pipeline of Algorithm 1:
// rank all features by distance correlation with the runtime, keep the top
// topN, refine to keepM by backwards elimination against a linear model,
// then union with the hand-picked features for the task.
//
// dcor is O(n²); the routine subsamples to at most dcorSamples observations,
// as the paper's offline pandas/R pipeline effectively does.
func SelectFeatures(kind ran.TaskKind, data []Sample, topN, keepM int) []ran.Feature {
	const dcorSamples = 400
	if topN <= 0 {
		topN = 6
	}
	if keepM <= 0 || keepM > topN {
		keepM = topN
	}
	sub := data
	if len(sub) > dcorSamples {
		stride := len(sub) / dcorSamples
		picked := make([]Sample, 0, dcorSamples)
		for i := 0; i < len(sub); i += stride {
			picked = append(picked, sub[i])
		}
		sub = picked
	}
	runtime := make([]float64, len(sub))
	for i, s := range sub {
		runtime[i] = float64(s.Runtime)
	}

	// Rank by distance correlation.
	type scored struct {
		f ran.Feature
		d float64
	}
	var ranks []scored
	col := make([]float64, len(sub))
	for f := ran.Feature(0); f < ran.NumFeatures; f++ {
		varies := false
		for i, s := range sub {
			col[i] = s.Features.Get(f)
			if i > 0 && col[i] != col[0] {
				varies = true
			}
		}
		if !varies {
			continue
		}
		ranks = append(ranks, scored{f, stats.DistanceCorrelation(col, runtime)})
	}
	sort.SliceStable(ranks, func(a, b int) bool { return ranks[a].d > ranks[b].d })
	if len(ranks) > topN {
		ranks = ranks[:topN]
	}
	candidates := make([]ran.Feature, len(ranks))
	for i, r := range ranks {
		candidates[i] = r.f
	}

	// Backwards elimination: repeatedly drop the feature whose removal
	// degrades the linear fit least, until keepM remain.
	selected := backwardsEliminate(sub, runtime, candidates, keepM)

	// Union with hand-picked features, preserving order and uniqueness.
	out := append([]ran.Feature(nil), HandPicked[kind]...)
	seen := map[ran.Feature]bool{}
	for _, f := range out {
		seen[f] = true
	}
	for _, f := range selected {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

func backwardsEliminate(data []Sample, y []float64, feats []ran.Feature, keep int) []ran.Feature {
	current := append([]ran.Feature(nil), feats...)
	for len(current) > keep {
		bestR2 := -1.0
		bestDrop := -1
		for drop := range current {
			trial := make([]ran.Feature, 0, len(current)-1)
			trial = append(trial, current[:drop]...)
			trial = append(trial, current[drop+1:]...)
			r2 := fitR2(data, y, trial)
			if r2 > bestR2 {
				bestR2 = r2
				bestDrop = drop
			}
		}
		if bestDrop < 0 {
			break
		}
		current = append(current[:bestDrop], current[bestDrop+1:]...)
	}
	return current
}

func fitR2(data []Sample, y []float64, feats []ran.Feature) float64 {
	if len(feats) == 0 {
		return 0
	}
	X := make([][]float64, len(data))
	for i, s := range data {
		X[i] = s.Features.Select(feats)
	}
	m, err := stats.FitOLS(X, y)
	if err != nil {
		return -1
	}
	return m.RSquared(X, y)
}
