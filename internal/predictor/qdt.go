package predictor

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"concordia/internal/ran"
	"concordia/internal/sim"
	"concordia/internal/stats"
)

// QuantileTree is the paper's parameterized WCET predictor: a CART-style
// decision tree grown offline on isolated-vRAN profiling samples to minimize
// within-leaf runtime variance, with a ring buffer of recent runtimes in
// every leaf. Predictions take the maximum of the leaf's buffer; online
// observations replace the buffer contents without retraining the tree
// (Algorithm 2) — the mechanism that adapts predictions to interference
// from collocated workloads.
type QuantileTree struct {
	Kind     ran.TaskKind
	Features []ran.Feature
	root     *treeNode
	leaves   []*treeNode
	// splitBudget is the number of additional splits allowed while growing
	// (MaxLeaves - 1); each split turns one pending leaf into two.
	splitBudget int
	// Margin is a multiplicative safety factor applied to the leaf maximum;
	// 1.0 reproduces Algorithm 2 exactly.
	Margin float64
}

type treeNode struct {
	// Internal nodes.
	feature   ran.Feature
	threshold float64
	left      *treeNode
	right     *treeNode
	// Leaves.
	leaf    bool
	leafID  int
	ring    *RingBuffer
	nTrain  int
	meanT   float64
	stddevT float64
}

// TreeConfig bounds offline tree growth.
type TreeConfig struct {
	MaxDepth    int // default 10
	MinLeaf     int // default 30 samples per leaf
	MaxLeaves   int // default 128
	RingSize    int // default DefaultRingSize
	Margin      float64
	SeedOffline bool // pre-populate leaf rings with offline samples (default true behaviour is on)
}

func (c *TreeConfig) defaults() {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 10
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 30
	}
	if c.MaxLeaves <= 0 {
		c.MaxLeaves = 128
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
	if c.Margin <= 0 {
		c.Margin = 1.0
	}
}

// ErrNoData is returned when training receives too few samples.
var ErrNoData = errors.New("predictor: not enough training samples")

// TrainQuantileTree grows the offline tree for one task kind on the given
// profiling dataset, restricted to the selected features (Algorithm 1's
// output). Leaf ring buffers are seeded with the offline samples so the
// predictor is usable before any online observation arrives.
func TrainQuantileTree(kind ran.TaskKind, features []ran.Feature, data []Sample, cfg TreeConfig) (*QuantileTree, error) {
	cfg.defaults()
	if len(data) < cfg.MinLeaf {
		return nil, ErrNoData
	}
	if len(features) == 0 {
		return nil, errors.New("predictor: no features selected")
	}
	t := &QuantileTree{Kind: kind, Features: features, Margin: cfg.Margin, splitBudget: cfg.MaxLeaves - 1}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	t.growBestFirst(data, idx, features, cfg)
	return t, nil
}

// candidate is a growable node with its precomputed best split.
type candidate struct {
	node  *treeNode
	idx   []int
	depth int
	gain  float64
	feat  ran.Feature
	thr   float64
	ok    bool
}

// growBestFirst builds the tree by repeatedly splitting the frontier node
// whose best split yields the largest variance reduction, until the leaf
// budget is exhausted or no split improves. Best-first order matters under
// a global leaf cap: depth-first growth would spend the whole budget on one
// corner of the feature space and leave coarse giant leaves elsewhere.
func (t *QuantileTree) growBestFirst(data []Sample, rootIdx []int, feats []ran.Feature, cfg TreeConfig) {
	t.root = &treeNode{}
	frontier := []*candidate{t.evalCandidate(t.root, data, rootIdx, 0, feats, cfg)}
	for t.splitBudget > 0 {
		// Pick the best splittable candidate (frontier is small: ≤ leaves).
		best := -1
		for i, c := range frontier {
			if c.ok && (best < 0 || c.gain > frontier[best].gain) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		c := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		var leftIdx, rightIdx []int
		for _, j := range c.idx {
			if data[j].Features.Get(c.feat) <= c.thr {
				leftIdx = append(leftIdx, j)
			} else {
				rightIdx = append(rightIdx, j)
			}
		}
		if len(leftIdx) < cfg.MinLeaf || len(rightIdx) < cfg.MinLeaf {
			c.ok = false
			frontier = append(frontier, c)
			continue
		}
		t.splitBudget--
		c.node.feature = c.feat
		c.node.threshold = c.thr
		c.node.left = &treeNode{}
		c.node.right = &treeNode{}
		frontier = append(frontier,
			t.evalCandidate(c.node.left, data, leftIdx, c.depth+1, feats, cfg),
			t.evalCandidate(c.node.right, data, rightIdx, c.depth+1, feats, cfg))
	}
	// Everything left on the frontier becomes a leaf.
	for _, c := range frontier {
		t.fillLeaf(c.node, data, c.idx, cfg)
	}
}

// evalCandidate computes the best split available at a node.
func (t *QuantileTree) evalCandidate(n *treeNode, data []Sample, idx []int, depth int, feats []ran.Feature, cfg TreeConfig) *candidate {
	c := &candidate{node: n, idx: idx, depth: depth}
	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return c
	}
	runtime := make([]float64, len(idx))
	for i, j := range idx {
		runtime[i] = float64(data[j].Runtime)
	}
	parentSSE := stats.Variance(runtime) * float64(len(idx))
	vals := make([]float64, len(idx))
	for _, f := range feats {
		for i, j := range idx {
			vals[i] = data[j].Features.Get(f)
		}
		gain, thresh, ok := bestSplit(vals, runtime, cfg.MinLeaf)
		if ok && gain > c.gain {
			c.gain = gain
			c.feat = f
			c.thr = thresh
			c.ok = true
		}
	}
	if c.gain <= 1e-9*parentSSE {
		c.ok = false
	}
	return c
}

// bestSplit finds the threshold maximizing the weighted variance reduction
// for one feature, scanning up to 32 candidate cut points.
func bestSplit(vals, runtime []float64, minLeaf int) (gain, threshold float64, ok bool) {
	n := len(vals)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

	// Prefix sums over the sorted order for O(1) variance computation.
	prefSum := make([]float64, n+1)
	prefSq := make([]float64, n+1)
	for i, j := range order {
		r := runtime[j]
		prefSum[i+1] = prefSum[i] + r
		prefSq[i+1] = prefSq[i] + r*r
	}
	total := prefSum[n]
	totalSq := prefSq[n]
	parentSSE := totalSq - total*total/float64(n)

	best := -1.0
	bestT := 0.0
	// Candidate cut positions: every minLeaf-respecting boundary between
	// distinct values, subsampled to 32.
	step := n / 32
	if step < 1 {
		step = 1
	}
	for i := minLeaf; i <= n-minLeaf; i += step {
		vLeft := vals[order[i-1]]
		vRight := vals[order[i]]
		if vLeft == vRight {
			continue
		}
		nl, nr := float64(i), float64(n-i)
		sseL := prefSq[i] - prefSum[i]*prefSum[i]/nl
		sumR := total - prefSum[i]
		sseR := (totalSq - prefSq[i]) - sumR*sumR/nr
		g := parentSSE - sseL - sseR
		if g > best {
			best = g
			bestT = (vLeft + vRight) / 2
		}
	}
	if best <= 0 {
		return 0, 0, false
	}
	return best, bestT, true
}

func (t *QuantileTree) fillLeaf(n *treeNode, data []Sample, idx []int, cfg TreeConfig) {
	n.leaf = true
	n.leafID = len(t.leaves)
	n.ring = NewRingBuffer(cfg.RingSize)
	var runtimes []float64
	for _, j := range idx {
		n.ring.Push(data[j].Runtime)
		runtimes = append(runtimes, float64(data[j].Runtime))
	}
	n.nTrain = len(idx)
	n.meanT = stats.Mean(runtimes)
	n.stddevT = stats.StdDev(runtimes)
	t.leaves = append(t.leaves, n)
}

// findLeaf routes a feature vector to its leaf.
func (t *QuantileTree) findLeaf(f ran.FeatureVector) *treeNode {
	n := t.root
	for !n.leaf {
		if f.Get(n.feature) <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// Predict implements Algorithm 2's prediction step: the maximum of the
// matched leaf's ring buffer (times the optional safety margin).
func (t *QuantileTree) Predict(f ran.FeatureVector) sim.Time {
	leaf := t.findLeaf(f)
	return sim.Time(float64(leaf.ring.Max()) * t.Margin)
}

// Observe implements Algorithm 2's training step: push the measured runtime
// into the matched leaf's ring buffer.
func (t *QuantileTree) Observe(f ran.FeatureVector, runtime sim.Time) {
	t.findLeaf(f).ring.Push(runtime)
}

// LeafID returns the leaf index a feature vector routes to (used by the
// Fig 7 leaf-distribution analysis).
func (t *QuantileTree) LeafID(f ran.FeatureVector) int {
	return t.findLeaf(f).leafID
}

// NumLeaves returns the leaf count.
func (t *QuantileTree) NumLeaves() int { return len(t.leaves) }

// LeafSamples returns the current ring-buffer contents of leaf id as
// float64 nanoseconds.
func (t *QuantileTree) LeafSamples(id int) []float64 {
	if id < 0 || id >= len(t.leaves) || t.leaves[id] == nil {
		return nil
	}
	vals := t.leaves[id].ring.Values()
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = float64(v)
	}
	return out
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *QuantileTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// String renders the tree structure for debugging and documentation.
func (t *QuantileTree) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "quantile tree for %v (%d leaves)\n", t.Kind, len(t.leaves))
	dump(&sb, t.root, 0)
	return sb.String()
}

func dump(sb *strings.Builder, n *treeNode, depth int) {
	pad := strings.Repeat("  ", depth)
	if n.leaf {
		fmt.Fprintf(sb, "%sleaf %d: n=%d mean=%.1fus sd=%.1fus\n",
			pad, n.leafID, n.nTrain, n.meanT/1000, n.stddevT/1000)
		return
	}
	fmt.Fprintf(sb, "%s%v <= %.1f\n", pad, n.feature, n.threshold)
	dump(sb, n.left, depth+1)
	dump(sb, n.right, depth+1)
}

func quantileOf(xs []float64, q float64) float64 { return stats.Quantile(xs, q) }
