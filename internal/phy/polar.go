package phy

import (
	"fmt"
	"math"
	"sort"
)

// PolarCode implements Arikan polar coding as used by 5G NR control
// channels: butterfly encoding with a frozen-bit set chosen by Bhattacharyya
// parameter ordering, and successive-cancellation (SC) decoding.
type PolarCode struct {
	N      int // block length, a power of two
	K      int // information bits
	frozen []bool
	// infoPos lists the K reliable positions in increasing index order.
	infoPos []int
}

// NewPolarCode constructs an (N, K) polar code. designSNRdB sets the channel
// assumed during reliability ordering; 0 dB is the conventional default.
func NewPolarCode(n, k int, designSNRdB float64) (*PolarCode, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("phy: polar block length %d is not a power of two", n)
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("phy: polar K=%d out of range for N=%d", k, n)
	}
	// Bhattacharyya parameter evolution for a BI-AWGN channel approximated
	// as a BEC with matching initial parameter.
	z0 := math.Exp(-math.Pow(10, designSNRdB/10))
	z := make([]float64, n)
	z[0] = z0
	for span := 1; span < n; span *= 2 {
		for i := span - 1; i >= 0; i-- {
			v := z[i]
			z[2*i] = 2*v - v*v // worse (check) channel
			z[2*i+1] = v * v   // better (bit) channel
		}
	}
	// The K smallest-Z positions carry information.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return z[idx[a]] < z[idx[b]] })
	c := &PolarCode{N: n, K: k, frozen: make([]bool, n)}
	for i := range c.frozen {
		c.frozen[i] = true
	}
	info := append([]int(nil), idx[:k]...)
	sort.Ints(info)
	for _, p := range info {
		c.frozen[p] = false
	}
	c.infoPos = info
	return c, nil
}

// Rate returns K/N.
func (c *PolarCode) Rate() float64 { return float64(c.K) / float64(c.N) }

// Encode maps K information bits to an N-bit polar codeword.
func (c *PolarCode) Encode(info []byte) ([]byte, error) {
	if len(info) != c.K {
		return nil, fmt.Errorf("phy: polar encode wants %d bits, got %d", c.K, len(info))
	}
	u := make([]byte, c.N)
	for i, p := range c.infoPos {
		u[p] = info[i] & 1
	}
	// Butterfly: x = u · G_N where G_N = F^{⊗log2 N}, computed in place.
	x := u
	for span := 1; span < c.N; span *= 2 {
		for i := 0; i < c.N; i += 2 * span {
			for j := i; j < i+span; j++ {
				x[j] ^= x[j+span]
			}
		}
	}
	return x, nil
}

// Decode runs successive-cancellation decoding on channel LLRs (positive ⇒
// bit 0) and returns the K recovered information bits.
func (c *PolarCode) Decode(llr []float64) ([]byte, error) {
	if len(llr) != c.N {
		return nil, fmt.Errorf("phy: polar decode wants %d LLRs, got %d", c.N, len(llr))
	}
	d := &scDecoder{code: c, u: make([]byte, c.N)}
	d.decode(append([]float64(nil), llr...))
	out := make([]byte, c.K)
	for i, p := range c.infoPos {
		out[i] = d.u[p]
	}
	return out, nil
}

type scDecoder struct {
	code *PolarCode
	pos  int
	u    []byte // decided u-domain bits, indexed by global position
}

// decode performs recursive SC decoding over the given LLR block. It records
// u-domain decisions in d.u and returns the x-domain partial sums of the
// block, which the parent stage needs for its g-function.
func (d *scDecoder) decode(llr []float64) []byte {
	n := len(llr)
	if n == 1 {
		bit := byte(0)
		if d.code.frozen[d.pos] {
			// Frozen bits are known zeros.
		} else if llr[0] < 0 {
			bit = 1
		}
		d.u[d.pos] = bit
		d.pos++
		return []byte{bit}
	}
	half := n / 2
	// f: min-sum approximation of the check-node combine.
	f := make([]float64, half)
	for i := 0; i < half; i++ {
		a, b := llr[i], llr[i+half]
		s := 1.0
		if a < 0 {
			s = -s
			a = -a
		}
		if b < 0 {
			s = -s
			b = -b
		}
		m := a
		if b < m {
			m = b
		}
		f[i] = s * m
	}
	u1 := d.decode(f)
	// g: bit-node combine given the decisions u1.
	g := make([]float64, half)
	for i := 0; i < half; i++ {
		if u1[i] == 1 {
			g[i] = llr[i+half] - llr[i]
		} else {
			g[i] = llr[i+half] + llr[i]
		}
	}
	u2 := d.decode(g)
	// Partial sums for the parent: [β1 ⊕ β2 | β2].
	out := make([]byte, n)
	for i := 0; i < half; i++ {
		out[i] = u1[i] ^ u2[i]
		out[i+half] = u2[i]
	}
	return out
}
