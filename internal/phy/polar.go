package phy

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
)

// PolarCode implements Arikan polar coding as used by 5G NR control
// channels: butterfly encoding with a frozen-bit set chosen by Bhattacharyya
// parameter ordering, and successive-cancellation (SC) decoding.
type PolarCode struct {
	N      int // block length, a power of two
	K      int // information bits
	frozen []bool
	// infoPos lists the K reliable positions in increasing index order.
	infoPos []int
	// scratch pools per-decode working buffers (one set per concurrent
	// decoder), keeping steady-state SC decoding allocation-free.
	scratch sync.Pool
}

// polarScratch preallocates the SC recursion's working state: one f/g LLR
// workspace and a pair of partial-sum buffers per recursion depth, plus the
// u-domain decision vector. Total footprint is O(N) despite the recursion.
type polarScratch struct {
	f     [][]float64 // per-depth: f first, then reused for g
	left  [][]byte    // per-depth: first-half partial sums (u1)
	right [][]byte    // per-depth: second-half partial sums (u2)
	u     []byte      // decided u-domain bits by global position
	top   []byte      // root-level partial sums (discarded)
	pos   int
}

func (c *PolarCode) newScratch() *polarScratch {
	levels := bits.Len(uint(c.N)) - 1 // log2 N
	s := &polarScratch{
		f:     make([][]float64, levels),
		left:  make([][]byte, levels),
		right: make([][]byte, levels),
		u:     make([]byte, c.N),
		top:   make([]byte, c.N),
	}
	for d := 0; d < levels; d++ {
		half := c.N >> (d + 1)
		s.f[d] = make([]float64, half)
		s.left[d] = make([]byte, half)
		s.right[d] = make([]byte, half)
	}
	return s
}

// NewPolarCode constructs an (N, K) polar code. designSNRdB sets the channel
// assumed during reliability ordering; 0 dB is the conventional default.
func NewPolarCode(n, k int, designSNRdB float64) (*PolarCode, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("phy: polar block length %d is not a power of two", n)
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("phy: polar K=%d out of range for N=%d", k, n)
	}
	// Bhattacharyya parameter evolution for a BI-AWGN channel approximated
	// as a BEC with matching initial parameter.
	z0 := math.Exp(-math.Pow(10, designSNRdB/10))
	z := make([]float64, n)
	z[0] = z0
	for span := 1; span < n; span *= 2 {
		for i := span - 1; i >= 0; i-- {
			v := z[i]
			z[2*i] = 2*v - v*v // worse (check) channel
			z[2*i+1] = v * v   // better (bit) channel
		}
	}
	// The K smallest-Z positions carry information.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return z[idx[a]] < z[idx[b]] })
	c := &PolarCode{N: n, K: k, frozen: make([]bool, n)}
	for i := range c.frozen {
		c.frozen[i] = true
	}
	info := append([]int(nil), idx[:k]...)
	sort.Ints(info)
	for _, p := range info {
		c.frozen[p] = false
	}
	c.infoPos = info
	c.scratch.New = func() any { return c.newScratch() }
	return c, nil
}

// Rate returns K/N.
func (c *PolarCode) Rate() float64 { return float64(c.K) / float64(c.N) }

// Encode maps K information bits to an N-bit polar codeword.
func (c *PolarCode) Encode(info []byte) ([]byte, error) {
	if len(info) != c.K {
		return nil, fmt.Errorf("phy: polar encode wants %d bits, got %d", c.K, len(info))
	}
	u := make([]byte, c.N)
	for i, p := range c.infoPos {
		u[p] = info[i] & 1
	}
	// Butterfly: x = u · G_N where G_N = F^{⊗log2 N}, computed in place.
	x := u
	for span := 1; span < c.N; span *= 2 {
		for i := 0; i < c.N; i += 2 * span {
			for j := i; j < i+span; j++ {
				x[j] ^= x[j+span]
			}
		}
	}
	return x, nil
}

// Decode runs successive-cancellation decoding on channel LLRs (positive ⇒
// bit 0) and returns the K recovered information bits.
func (c *PolarCode) Decode(llr []float64) ([]byte, error) {
	return c.DecodeInto(nil, llr)
}

// DecodeInto is Decode writing the information bits into dst's storage
// (capacity reused when it suffices). The recursion runs entirely on pooled
// scratch buffers, so steady-state decoding allocates nothing; concurrent
// DecodeInto calls on one code are safe as long as each goroutine owns its
// dst.
func (c *PolarCode) DecodeInto(dst []byte, llr []float64) ([]byte, error) {
	if len(llr) != c.N {
		return nil, fmt.Errorf("phy: polar decode wants %d LLRs, got %d", c.N, len(llr))
	}
	s := c.scratch.Get().(*polarScratch)
	s.pos = 0
	c.scDecode(s, llr, 0, s.top)
	if cap(dst) < c.K {
		dst = make([]byte, c.K)
	}
	dst = dst[:c.K]
	for i, p := range c.infoPos {
		dst[i] = s.u[p]
	}
	c.scratch.Put(s)
	return dst, nil
}

// scDecode performs recursive SC decoding of the llr block at the given
// recursion depth. It records u-domain decisions in s.u and writes the
// block's x-domain partial sums into dst (length len(llr)), which the parent
// stage needs for its g-function. llr is read-only; all working storage
// comes from the per-depth scratch buffers, with the f buffer reused for g
// once the first half-block is decided.
func (c *PolarCode) scDecode(s *polarScratch, llr []float64, depth int, dst []byte) {
	n := len(llr)
	if n == 1 {
		bit := byte(0)
		if c.frozen[s.pos] {
			// Frozen bits are known zeros.
		} else if llr[0] < 0 {
			bit = 1
		}
		s.u[s.pos] = bit
		s.pos++
		dst[0] = bit
		return
	}
	half := n / 2
	// f: min-sum approximation of the check-node combine.
	f := s.f[depth]
	for i := 0; i < half; i++ {
		a, b := llr[i], llr[i+half]
		sign := 1.0
		if a < 0 {
			sign = -sign
			a = -a
		}
		if b < 0 {
			sign = -sign
			b = -b
		}
		m := a
		if b < m {
			m = b
		}
		f[i] = sign * m
	}
	u1 := s.left[depth]
	c.scDecode(s, f, depth+1, u1)
	// g: bit-node combine given the decisions u1. f is dead once the first
	// recursion returns, so g reuses its buffer.
	g := f
	for i := 0; i < half; i++ {
		if u1[i] == 1 {
			g[i] = llr[i+half] - llr[i]
		} else {
			g[i] = llr[i+half] + llr[i]
		}
	}
	u2 := s.right[depth]
	c.scDecode(s, g, depth+1, u2)
	// Partial sums for the parent: [β1 ⊕ β2 | β2].
	for i := 0; i < half; i++ {
		dst[i] = u1[i] ^ u2[i]
		dst[i+half] = u2[i]
	}
}
