package phy

import (
	"errors"
	"fmt"
)

// HARQProcess implements hybrid-ARQ with chase combining for one transport
// block codeword: every retransmission's LLRs are accumulated into the
// mother-code buffer before decoding, so each attempt decodes from a higher
// effective SNR. Retransmissions are a major source of decode-runtime
// variance (more iterations on marginal combined LLRs), which is part of
// why the paper's WCET predictions must be input-parameterized.
type HARQProcess struct {
	code    *LDPCCode
	rm      *RateMatcher
	maxTx   int
	acc     []float64
	txCount int
	done    bool
}

// NewHARQProcess creates a process for the given code and rate matcher with
// at most maxTx transmissions (NR allows 4 by default).
func NewHARQProcess(code *LDPCCode, rm *RateMatcher, maxTx int) (*HARQProcess, error) {
	if code == nil || rm == nil {
		return nil, errors.New("phy: HARQ needs a code and rate matcher")
	}
	if rm.N != code.N() {
		return nil, fmt.Errorf("phy: rate matcher N=%d does not match code N=%d", rm.N, code.N())
	}
	if maxTx < 1 {
		maxTx = 1
	}
	return &HARQProcess{
		code:  code,
		rm:    rm,
		maxTx: maxTx,
		acc:   make([]float64, code.N()),
	}, nil
}

// TxCount returns the number of transmissions received so far.
func (h *HARQProcess) TxCount() int { return h.txCount }

// Done reports whether the block decoded successfully.
func (h *HARQProcess) Done() bool { return h.done }

// ErrHARQExhausted is returned when maxTx transmissions failed.
var ErrHARQExhausted = errors.New("phy: HARQ transmissions exhausted")

// Receive combines one (re)transmission's rate-matched LLRs and attempts a
// decode. It returns the decode result; res.Converged reports success (ACK).
// After success or exhaustion, further calls return an error.
func (h *HARQProcess) Receive(llr []float64) (*DecodeResult, error) {
	if h.done {
		return nil, errors.New("phy: HARQ process already completed")
	}
	if h.txCount >= h.maxTx {
		return nil, ErrHARQExhausted
	}
	dematched, err := h.rm.Dematch(llr)
	if err != nil {
		return nil, err
	}
	for i, v := range dematched {
		h.acc[i] += v
	}
	h.txCount++
	res, err := h.code.Decode(h.acc)
	if err != nil {
		return nil, err
	}
	if res.Converged {
		h.done = true
	}
	return res, nil
}

// Reset clears the soft buffer for a new transport block.
func (h *HARQProcess) Reset() {
	for i := range h.acc {
		h.acc[i] = 0
	}
	h.txCount = 0
	h.done = false
}
