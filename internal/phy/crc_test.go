package phy

import (
	"testing"
	"testing/quick"

	"concordia/internal/rng"
)

func randomBits(r *rng.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Intn(2))
	}
	return out
}

func TestCRCRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, c := range []*CRC{NewCRC24A(), NewCRC24B(), NewCRC16()} {
		for trial := 0; trial < 20; trial++ {
			payload := randomBits(r, 10+r.Intn(500))
			data := c.Attach(payload)
			if len(data) != len(payload)+c.Bits() {
				t.Fatalf("attach length %d", len(data))
			}
			got, ok := c.Check(data)
			if !ok {
				t.Fatal("valid CRC rejected")
			}
			for i := range payload {
				if got[i] != payload[i] {
					t.Fatal("payload corrupted")
				}
			}
		}
	}
}

func TestCRCDetectsSingleBitErrors(t *testing.T) {
	r := rng.New(2)
	c := NewCRC24A()
	payload := randomBits(r, 200)
	data := c.Attach(payload)
	for i := range data {
		data[i] ^= 1
		if _, ok := c.Check(data); ok {
			t.Fatalf("single-bit error at %d undetected", i)
		}
		data[i] ^= 1
	}
}

func TestCRCDetectsBurstErrors(t *testing.T) {
	// A CRC of degree d detects all burst errors of length <= d.
	r := rng.New(3)
	c := NewCRC16()
	payload := randomBits(r, 300)
	data := c.Attach(payload)
	for trial := 0; trial < 100; trial++ {
		burstLen := 2 + r.Intn(15)
		start := r.Intn(len(data) - burstLen)
		corrupted := append([]byte(nil), data...)
		// Flip first and last bit of the burst to guarantee a real burst.
		corrupted[start] ^= 1
		corrupted[start+burstLen-1] ^= 1
		for k := start + 1; k < start+burstLen-1; k++ {
			corrupted[k] ^= byte(r.Intn(2))
		}
		if _, ok := c.Check(corrupted); ok {
			t.Fatalf("burst error (len %d at %d) undetected", burstLen, start)
		}
	}
}

func TestCRCLinearity(t *testing.T) {
	// CRC over GF(2) is linear: crc(a ⊕ b) = crc(a) ⊕ crc(b).
	r := rng.New(4)
	c := NewCRC24B()
	err := quick.Check(func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		n := 64 + rr.Intn(64)
		a := randomBits(r, n)
		b := randomBits(r, n)
		ab := make([]byte, n)
		for i := range ab {
			ab[i] = a[i] ^ b[i]
		}
		ca, cb, cab := c.Compute(a), c.Compute(b), c.Compute(ab)
		for i := range cab {
			if cab[i] != ca[i]^cb[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCRCCheckShortData(t *testing.T) {
	if _, ok := NewCRC24A().Check([]byte{1, 0, 1}); ok {
		t.Fatal("short data accepted")
	}
}

func TestCRCEmptyPayload(t *testing.T) {
	c := NewCRC16()
	data := c.Attach(nil)
	if len(data) != 16 {
		t.Fatalf("CRC of empty payload has %d bits", len(data))
	}
	if _, ok := c.Check(data); !ok {
		t.Fatal("CRC of empty payload rejected")
	}
}

func BenchmarkCRC24A(b *testing.B) {
	r := rng.New(1)
	payload := randomBits(r, 8448)
	c := NewCRC24A()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Compute(payload)
	}
}
