package phy

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"concordia/internal/rng"
)

func TestFFTInvalidSize(t *testing.T) {
	for _, n := range []int{0, 3, 12, -8} {
		if _, err := NewFFT(n); err == nil {
			t.Errorf("size %d accepted", n)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	f, _ := NewFFT(8)
	x := make([]complex128, 8)
	x[0] = 1
	if err := f.Forward(x); err != nil {
		t.Fatal(err)
	}
	// DFT of an impulse is flat.
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v want 1", i, v)
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	const n = 64
	f, _ := NewFFT(n)
	x := make([]complex128, n)
	k := 5
	for i := range x {
		angle := 2 * math.Pi * float64(k*i) / n
		x[i] = cmplx.Exp(complex(0, angle))
	}
	f.Forward(x)
	for i, v := range x {
		want := 0.0
		if i == k {
			want = n
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("bin %d magnitude %v want %v", i, cmplx.Abs(v), want)
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{4, 32, 256, 1024} {
		f, _ := NewFFT(n)
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
			orig[i] = x[i]
		}
		if err := f.Forward(x); err != nil {
			t.Fatal(err)
		}
		if err := f.Inverse(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d round trip failed at %d", n, i)
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Energy conservation: Σ|x|² = (1/n)Σ|X|².
	r := rng.New(2)
	err := quick.Check(func(seed uint16) bool {
		const n = 128
		f, _ := NewFFT(n)
		x := make([]complex128, n)
		var te float64
		for i := range x {
			x[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
			te += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		f.Forward(x)
		var fe float64
		for _, v := range x {
			fe += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(te-fe/n) < 1e-6*te
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFFTLengthMismatch(t *testing.T) {
	f, _ := NewFFT(16)
	if err := f.Forward(make([]complex128, 8)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestOFDMValidation(t *testing.T) {
	if _, err := NewOFDM(100, 8, 50); err == nil {
		t.Fatal("non-power-of-two FFT accepted")
	}
	if _, err := NewOFDM(64, 64, 32); err == nil {
		t.Fatal("CP >= FFT size accepted")
	}
	if _, err := NewOFDM(64, 8, 128); err == nil {
		t.Fatal("carriers > FFT size accepted")
	}
}

func TestOFDMRoundTrip(t *testing.T) {
	r := rng.New(3)
	o, err := NewOFDM(256, 18, 120)
	if err != nil {
		t.Fatal(err)
	}
	syms := make([]complex128, 120)
	for i := range syms {
		syms[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
	}
	td, err := o.Modulate(syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(td) != o.SymbolLength() {
		t.Fatalf("symbol length %d want %d", len(td), o.SymbolLength())
	}
	got, err := o.Demodulate(td)
	if err != nil {
		t.Fatal(err)
	}
	for i := range syms {
		if cmplx.Abs(got[i]-syms[i]) > 1e-9 {
			t.Fatalf("carrier %d round trip failed: %v vs %v", i, got[i], syms[i])
		}
	}
}

func TestOFDMCyclicPrefix(t *testing.T) {
	o, _ := NewOFDM(64, 16, 32)
	syms := make([]complex128, 32)
	syms[3] = 1
	td, _ := o.Modulate(syms)
	// The CP must replicate the symbol tail.
	for i := 0; i < 16; i++ {
		if cmplx.Abs(td[i]-td[64+i]) > 1e-12 {
			t.Fatalf("cyclic prefix mismatch at %d", i)
		}
	}
}

func TestOFDMQAMEndToEnd(t *testing.T) {
	// Full physical chain: QAM → OFDM → AWGN → OFDM⁻¹ → LLR demap.
	r := rng.New(4)
	o, _ := NewOFDM(256, 18, 240)
	bits := randomBits(r, 240*4)
	syms, _ := QAM16.Modulate(bits)
	td, err := o.Modulate(syms)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewAWGNChannel(25, r)
	rx, err := o.Demodulate(ch.Transmit(td))
	if err != nil {
		t.Fatal(err)
	}
	// Noise per demodulated carrier: time-domain variance divided by the
	// OFDM processing gain (norm² / n).
	llr, _ := QAM16.DemodulateLLR(rx, ch.NoiseVar*240/256)
	errs := 0
	for i, b := range HardDecision(llr) {
		if b != bits[i] {
			errs++
		}
	}
	if float64(errs)/float64(len(bits)) > 0.02 {
		t.Fatalf("OFDM end-to-end BER %d/%d too high at 25 dB", errs, len(bits))
	}
}

func BenchmarkFFT4096(b *testing.B) {
	f, _ := NewFFT(4096)
	r := rng.New(1)
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Forward(x)
	}
}
