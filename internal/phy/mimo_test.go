package phy

import (
	"math"
	"math/cmplx"
	"testing"

	"concordia/internal/rng"
)

func TestCMatIdentityMul(t *testing.T) {
	r := rng.New(1)
	a := NewCMat(3, 3)
	for i := range a.Data {
		a.Data[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
	}
	got := a.Mul(Identity(3))
	for i := range got.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatal("A·I != A")
		}
	}
}

func TestCMatInverse(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(5)
		a := NewCMat(n, n)
		for i := range a.Data {
			a.Data[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
		}
		inv, err := a.Inverse()
		if err != nil {
			continue // singular draw; astronomically unlikely but legal
		}
		prod := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := complex128(0)
				if i == j {
					want = 1
				}
				if cmplx.Abs(prod.At(i, j)-want) > 1e-9 {
					t.Fatalf("A·A⁻¹ not identity at (%d,%d): %v", i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestCMatInverseSingular(t *testing.T) {
	a := NewCMat(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := a.Inverse(); err == nil {
		t.Fatal("singular matrix inverted")
	}
}

func TestPseudoInverseTall(t *testing.T) {
	r := rng.New(3)
	a := NewCMat(4, 2)
	for i := range a.Data {
		a.Data[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
	}
	p, err := a.PseudoInverse()
	if err != nil {
		t.Fatal(err)
	}
	// Left inverse: P·A = I.
	prod := p.Mul(a)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Fatalf("P·A not identity: %v", prod.At(i, j))
			}
		}
	}
}

func TestPseudoInverseWide(t *testing.T) {
	r := rng.New(4)
	a := NewCMat(2, 4)
	for i := range a.Data {
		a.Data[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
	}
	p, err := a.PseudoInverse()
	if err != nil {
		t.Fatal(err)
	}
	// Right inverse: A·P = I.
	prod := a.Mul(p)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if cmplx.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Fatalf("A·P not identity: %v", prod.At(i, j))
			}
		}
	}
}

func TestChannelEstimatorPerfectPilots(t *testing.T) {
	e, err := NewChannelEstimator(4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 48
	// Smooth synthetic channel: linear phase ramp.
	truth := make([]complex128, n)
	for i := range truth {
		truth[i] = cmplx.Exp(complex(0, 0.02*float64(i))) * complex(1+0.002*float64(i), 0)
	}
	pos := e.PilotPositions(n)
	tx := make([]complex128, len(pos))
	rx := make([]complex128, len(pos))
	for i, p := range pos {
		tx[i] = complex(1, 0)
		rx[i] = truth[p]
	}
	est, err := e.Estimate(n, rx, tx)
	if err != nil {
		t.Fatal(err)
	}
	if mse := MSE(est, truth); mse > 1e-3 {
		t.Fatalf("estimation MSE %v too large for smooth channel", mse)
	}
}

func TestChannelEstimatorErrors(t *testing.T) {
	if _, err := NewChannelEstimator(0); err == nil {
		t.Fatal("zero spacing accepted")
	}
	e, _ := NewChannelEstimator(2)
	if _, err := e.Estimate(10, make([]complex128, 2), make([]complex128, 5)); err == nil {
		t.Fatal("mismatched pilot counts accepted")
	}
	if _, err := e.Estimate(4, []complex128{1, 0}, []complex128{0, 1}); err == nil {
		t.Fatal("zero pilot accepted")
	}
}

func TestMMSEEqualizationRecovers(t *testing.T) {
	r := rng.New(5)
	fading := NewRayleighBlockFading(4, 2, 25, r)
	h := fading.Draw()
	// Two spatial layers of QPSK.
	bits := randomBits(r, 2*2*500)
	syms, _ := QPSK.Modulate(bits)
	vecs := make([][]complex128, len(syms)/2)
	for i := range vecs {
		vecs[i] = []complex128{syms[2*i], syms[2*i+1]}
	}
	rx := fading.Transmit(h, vecs)
	eq := &Equalizer{NoiseVar: fading.NoiseVar}
	est, err := eq.Equalize(h, rx)
	if err != nil {
		t.Fatal(err)
	}
	// Hard-decide per layer; error rate should be small at 25 dB.
	var flat []complex128
	for _, v := range est {
		flat = append(flat, v...)
	}
	llr, _ := QPSK.DemodulateLLR(flat, fading.NoiseVar)
	errors := 0
	for i, b := range HardDecision(llr) {
		if b != bits[i] {
			errors++
		}
	}
	if ber := float64(errors) / float64(len(bits)); ber > 0.05 {
		t.Fatalf("MMSE 2x4 BER %v too high at 25 dB", ber)
	}
}

func TestZFPrecodingCancelsInterference(t *testing.T) {
	r := rng.New(6)
	// 2 single-antenna users, 4 tx antennas.
	fading := NewRayleighBlockFading(2, 4, 30, r)
	h := fading.Draw()
	p, err := ZFPrecoder{}.Weights(h)
	if err != nil {
		t.Fatal(err)
	}
	// Effective channel H·P should be diagonal (up to the power scaling).
	eff := h.Mul(p)
	offDiag := cmplx.Abs(eff.At(0, 1)) + cmplx.Abs(eff.At(1, 0))
	onDiag := cmplx.Abs(eff.At(0, 0)) + cmplx.Abs(eff.At(1, 1))
	if offDiag > 1e-9*onDiag+1e-9 {
		t.Fatalf("ZF residual interference %v vs signal %v", offDiag, onDiag)
	}
}

func TestZFPrecoderPowerNormalized(t *testing.T) {
	r := rng.New(7)
	fading := NewRayleighBlockFading(2, 4, 30, r)
	h := fading.Draw()
	p, _ := ZFPrecoder{}.Weights(h)
	var f float64
	for _, v := range p.Data {
		f += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(f-2) > 1e-9 {
		t.Fatalf("precoder Frobenius norm² %v want 2 (streams)", f)
	}
}

func TestAWGNNoiseVariance(t *testing.T) {
	r := rng.New(8)
	ch := NewAWGNChannel(10, r)
	zeros := make([]complex128, 100000)
	noisy := ch.Transmit(zeros)
	var p float64
	for _, s := range noisy {
		p += real(s)*real(s) + imag(s)*imag(s)
	}
	p /= float64(len(noisy))
	if math.Abs(p-ch.NoiseVar)/ch.NoiseVar > 0.05 {
		t.Fatalf("measured noise power %v want %v", p, ch.NoiseVar)
	}
}

func BenchmarkMMSEEqualize4x4(b *testing.B) {
	r := rng.New(1)
	fading := NewRayleighBlockFading(4, 4, 20, r)
	h := fading.Draw()
	vec := make([][]complex128, 128)
	for i := range vec {
		vec[i] = []complex128{1, 1i, -1, -1i}
	}
	rx := fading.Transmit(h, vec)
	eq := &Equalizer{NoiseVar: fading.NoiseVar}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = eq.Equalize(h, rx)
	}
}
