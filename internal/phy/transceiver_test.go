package phy

import (
	"testing"

	"concordia/internal/rng"
)

func testTransceiver(t *testing.T, tb int, mod Modulation) *Transceiver {
	t.Helper()
	tx, err := NewTransceiver(TransceiverConfig{
		TBBits:   tb,
		Mod:      mod,
		CodeRate: 0.5,
		CInit:    777,
		FFTSize:  512,
		CPLen:    36,
		Carriers: 480,
		LDPCSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestTransceiverValidation(t *testing.T) {
	bad := []TransceiverConfig{
		{},
		{TBBits: 100, Mod: Modulation(3), CodeRate: 0.5, FFTSize: 64, CPLen: 4, Carriers: 32},
		{TBBits: 100, Mod: QPSK, CodeRate: 1.5, FFTSize: 64, CPLen: 4, Carriers: 32},
		{TBBits: 100, Mod: QPSK, CodeRate: 0.5, FFTSize: 63, CPLen: 4, Carriers: 32},
	}
	for i, cfg := range bad {
		if _, err := NewTransceiver(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTransceiverLoopbackCleanChannel(t *testing.T) {
	r := rng.New(1)
	tx := testTransceiver(t, 3000, QAM16)
	payload := randomBits(r, 3000)
	res, err := tx.Loopback(payload, 20, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("loopback at 20 dB failed CRC")
	}
	for i := range payload {
		if res.Payload[i] != payload[i] {
			t.Fatal("payload corrupted through the full chain")
		}
	}
}

func TestTransceiverMultiBlock(t *testing.T) {
	r := rng.New(2)
	tx := testTransceiver(t, 20000, QAM64) // segments into 3 codeblocks
	if tx.Codeblocks() < 2 {
		t.Fatalf("expected multi-block segmentation, got %d", tx.Codeblocks())
	}
	payload := randomBits(r, 20000)
	res, err := tx.Loopback(payload, 16, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatal("multi-block loopback failed at 16 dB")
	}
}

func TestTransceiverIterationsRiseWithNoise(t *testing.T) {
	// The runtime driver the WCET predictor learns: decode iterations grow
	// as the channel worsens.
	r := rng.New(3)
	tx := testTransceiver(t, 3000, QPSK)
	iters := func(snr float64) int {
		total := 0
		for trial := 0; trial < 5; trial++ {
			payload := randomBits(r, 3000)
			res, err := tx.Loopback(payload, snr, r)
			if err != nil {
				t.Fatal(err)
			}
			total += res.TotalIterations
		}
		return total
	}
	clean, noisy := iters(18), iters(4)
	if noisy <= clean {
		t.Fatalf("iterations did not rise with noise: %d (18dB) vs %d (4dB)", clean, noisy)
	}
}

func TestTransceiverDetectsLoss(t *testing.T) {
	r := rng.New(4)
	tx := testTransceiver(t, 3000, QAM256)
	payload := randomBits(r, 3000)
	// 256QAM at -2 dB is hopeless; the CRC must catch it.
	res, err := tx.Loopback(payload, -2, r)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Skip("implausible decode success at -2 dB")
	}
}

func TestTransceiverReceiveErrors(t *testing.T) {
	tx := testTransceiver(t, 3000, QAM16)
	if _, err := tx.Receive(make([]complex128, 13), 0.01); err == nil {
		t.Fatal("ragged sample count accepted")
	}
}

// BenchmarkTransceiverLoopback lives in bench_test.go, parameterized by the
// Workers knob.
