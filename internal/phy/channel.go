package phy

import (
	"math"

	"concordia/internal/rng"
)

// AWGNChannel adds circularly-symmetric complex Gaussian noise. NoiseVar is
// the total complex noise variance (split equally across I and Q).
type AWGNChannel struct {
	NoiseVar float64
	rand     *rng.Rand
}

// NewAWGNChannel returns a channel with noise variance derived from the
// per-symbol SNR in dB, assuming unit average symbol energy.
func NewAWGNChannel(snrDB float64, r *rng.Rand) *AWGNChannel {
	return &AWGNChannel{NoiseVar: math.Pow(10, -snrDB/10), rand: r}
}

// Transmit returns symbols plus noise.
func (c *AWGNChannel) Transmit(symbols []complex128) []complex128 {
	out := make([]complex128, len(symbols))
	sigma := math.Sqrt(c.NoiseVar / 2)
	for i, s := range symbols {
		out[i] = s + complex(c.rand.Normal(0, sigma), c.rand.Normal(0, sigma))
	}
	return out
}

// RayleighBlockFading models a flat block-fading MIMO channel: a single
// complex Gaussian channel matrix per block of symbols.
type RayleighBlockFading struct {
	RxAnt, TxAnt int
	NoiseVar     float64
	rand         *rng.Rand
}

// NewRayleighBlockFading returns a fading channel with the given antenna
// configuration and per-receive-antenna SNR in dB.
func NewRayleighBlockFading(rxAnt, txAnt int, snrDB float64, r *rng.Rand) *RayleighBlockFading {
	return &RayleighBlockFading{
		RxAnt:    rxAnt,
		TxAnt:    txAnt,
		NoiseVar: math.Pow(10, -snrDB/10),
		rand:     r,
	}
}

// Draw samples a fresh channel matrix with i.i.d. CN(0,1) entries.
func (c *RayleighBlockFading) Draw() *CMat {
	h := NewCMat(c.RxAnt, c.TxAnt)
	s := math.Sqrt(0.5)
	for i := range h.Data {
		h.Data[i] = complex(c.rand.Normal(0, s), c.rand.Normal(0, s))
	}
	return h
}

// Transmit applies y = H·x + n per symbol vector. x[i] must have TxAnt
// entries; the result has RxAnt entries per symbol.
func (c *RayleighBlockFading) Transmit(h *CMat, x [][]complex128) [][]complex128 {
	out := make([][]complex128, len(x))
	sigma := math.Sqrt(c.NoiseVar / 2)
	for i, xi := range x {
		y := h.MulVec(xi)
		for j := range y {
			y[j] += complex(c.rand.Normal(0, sigma), c.rand.Normal(0, sigma))
		}
		out[i] = y
	}
	return out
}
