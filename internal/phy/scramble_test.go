package phy

import (
	"testing"
	"testing/quick"

	"concordia/internal/rng"
)

func TestGoldSequenceBalance(t *testing.T) {
	g := NewGoldSequence(12345)
	const n = 100000
	ones := 0
	for i := 0; i < n; i++ {
		if g.Next() == 1 {
			ones++
		}
	}
	// A Gold sequence is balanced to within statistical noise.
	if ones < n*48/100 || ones > n*52/100 {
		t.Fatalf("sequence imbalance: %d ones of %d", ones, n)
	}
}

func TestGoldSequenceDistinctSeeds(t *testing.T) {
	a := NewGoldSequence(1).Bits(256)
	b := NewGoldSequence(2).Bits(256)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 180 {
		t.Fatalf("different c_init sequences agree on %d/256 bits", same)
	}
}

func TestGoldSequenceDeterministic(t *testing.T) {
	a := NewGoldSequence(777).Bits(100)
	b := NewGoldSequence(777).Bits(100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same c_init produced different sequences")
		}
	}
}

func TestScrambleInvolution(t *testing.T) {
	r := rng.New(1)
	err := quick.Check(func(seed uint32) bool {
		s := NewScrambler(seed & 0x7fffffff)
		bits := randomBits(r, 200)
		twice := s.Scramble(s.Scramble(bits))
		for i := range bits {
			if twice[i] != bits[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScrambleChangesBits(t *testing.T) {
	s := NewScrambler(99)
	bits := make([]byte, 500) // all zero
	out := s.Scramble(bits)
	flips := 0
	for _, b := range out {
		if b == 1 {
			flips++
		}
	}
	if flips < 200 || flips > 300 {
		t.Fatalf("scrambler flipped %d/500 zero bits", flips)
	}
}

func TestScrambleLLRConsistent(t *testing.T) {
	// Descrambling in the soft domain must match hard-domain scrambling.
	s := NewScrambler(4321)
	r := rng.New(2)
	bits := randomBits(r, 300)
	scrambled := s.Scramble(bits)
	// Turn scrambled bits into strong LLRs.
	llr := make([]float64, len(scrambled))
	for i, b := range scrambled {
		llr[i] = 5
		if b == 1 {
			llr[i] = -5
		}
	}
	descrambled := s.ScrambleLLR(llr)
	for i, v := range descrambled {
		var got byte
		if v < 0 {
			got = 1
		}
		if got != bits[i] {
			t.Fatalf("soft descrambling mismatch at %d", i)
		}
	}
}

func TestCInitFor(t *testing.T) {
	c, err := CInitFor(0x1234, 1, 500)
	if err != nil {
		t.Fatal(err)
	}
	want := uint32(0x1234)<<15 | 1<<14 | 500
	if c != want {
		t.Fatalf("c_init %#x want %#x", c, want)
	}
	if _, err := CInitFor(1, 2, 0); err == nil {
		t.Fatal("codeword 2 accepted")
	}
	if _, err := CInitFor(1, 0, 2000); err == nil {
		t.Fatal("cell id 2000 accepted")
	}
}
