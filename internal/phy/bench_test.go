package phy

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"concordia/internal/rng"
)

// noisyLLRs produces channel LLRs for a random codeword of code at snrDB.
func noisyLLRs(b testing.TB, code *LDPCCode, snrDB float64, r *rng.Rand) []float64 {
	info := make([]byte, code.K)
	for i := range info {
		info[i] = byte(r.Intn(2))
	}
	cw, err := code.Encode(info)
	if err != nil {
		b.Fatal(err)
	}
	ch := NewAWGNChannel(snrDB, r)
	syms := make([]complex128, len(cw))
	for i, bit := range cw {
		syms[i] = complex(1-2*float64(bit), 0)
	}
	rx := ch.Transmit(syms)
	llr := make([]float64, len(cw))
	for i, y := range rx {
		llr[i] = 2 * real(y) / ch.NoiseVar
	}
	return llr
}

// BenchmarkLDPCDecode measures one min-sum decode of a full-size codeblock
// at a mid-range SNR (the hot kernel of the RX chain).
func BenchmarkLDPCDecode(b *testing.B) {
	const k = 8448
	code, err := NewLDPCCode(k, k/2+4, 9)
	if err != nil {
		b.Fatal(err)
	}
	llr := noisyLLRs(b, code, 6, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Decode(llr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLDPCDecodeParallel decodes the same codeblock from all
// GOMAXPROCS goroutines at once: the pooled-scratch design should scale
// near-linearly because the Tanner graph is shared read-only.
func BenchmarkLDPCDecodeParallel(b *testing.B) {
	const k = 8448
	code, err := NewLDPCCode(k, k/2+4, 9)
	if err != nil {
		b.Fatal(err)
	}
	llr := noisyLLRs(b, code, 6, rng.New(1))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := code.Decode(llr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransceiverLoopback runs the full TX→AWGN→RX chain for a
// multi-codeblock transport block, per worker setting.
func BenchmarkTransceiverLoopback(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			tx, err := NewTransceiver(TransceiverConfig{
				TBBits:   60000, // 8 codeblocks
				Mod:      QAM16,
				CodeRate: 0.5,
				CInit:    777,
				FFTSize:  2048,
				CPLen:    144,
				Carriers: 1200,
				LDPCSeed: 9,
				Workers:  workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(5)
			payload := make([]byte, 60000)
			for i := range payload {
				payload[i] = byte(r.Intn(2))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := tx.Loopback(payload, 8, rng.New(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK {
					b.Fatal("loopback failed CRC at 8 dB")
				}
			}
		})
	}
}

// TestLDPCDecodeConcurrentSafe hammers one code from many goroutines and
// checks every result is bit-for-bit the serial result — the contract the
// pooled scratch state must provide.
func TestLDPCDecodeConcurrentSafe(t *testing.T) {
	const k = 1024
	code, err := NewLDPCCode(k, k/2+4, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	const cases = 8
	llrs := make([][]float64, cases)
	want := make([]*DecodeResult, cases)
	for i := range llrs {
		llrs[i] = noisyLLRs(t, code, 4, r)
		want[i], err = code.Decode(llrs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				i := (g + rep) % cases
				got, err := code.Decode(llrs[i])
				if err != nil {
					errs <- err
					return
				}
				if got.Iterations != want[i].Iterations || got.Converged != want[i].Converged {
					errs <- fmt.Errorf("case %d: got %d/%v want %d/%v",
						i, got.Iterations, got.Converged, want[i].Iterations, want[i].Converged)
					return
				}
				for j := range got.Info {
					if got.Info[j] != want[i].Info[j] {
						errs <- fmt.Errorf("case %d: info bit %d differs", i, j)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestReceiveWorkersDeterministic checks the parallel RX path returns the
// identical RxResult for any worker count.
func TestReceiveWorkersDeterministic(t *testing.T) {
	const tb = 40000 // several codeblocks
	build := func(workers int) *Transceiver {
		tx, err := NewTransceiver(TransceiverConfig{
			TBBits:   tb,
			Mod:      QAM16,
			CodeRate: 0.5,
			CInit:    777,
			FFTSize:  1024,
			CPLen:    72,
			Carriers: 600,
			LDPCSeed: 9,
			Workers:  workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tx
	}
	serial := build(1)
	r := rng.New(11)
	payload := make([]byte, tb)
	for i := range payload {
		payload[i] = byte(r.Intn(2))
	}
	td, err := serial.Transmit(payload)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewAWGNChannel(6, r)
	samples := ch.Transmit(td)
	want, err := serial.Receive(samples, ch.NoiseVar)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		tx := build(workers)
		got, err := tx.Receive(samples, ch.NoiseVar)
		if err != nil {
			t.Fatal(err)
		}
		if got.OK != want.OK || got.TotalIterations != want.TotalIterations {
			t.Fatalf("workers=%d: OK=%v iters=%d, want OK=%v iters=%d",
				workers, got.OK, got.TotalIterations, want.OK, want.TotalIterations)
		}
		if len(got.Payload) != len(want.Payload) {
			t.Fatalf("workers=%d: payload length %d want %d", workers, len(got.Payload), len(want.Payload))
		}
		for i := range want.Payload {
			if got.Payload[i] != want.Payload[i] {
				t.Fatalf("workers=%d: payload bit %d differs", workers, i)
			}
		}
	}
}
