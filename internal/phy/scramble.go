package phy

import "errors"

// GoldSequence generates the length-31 Gold pseudo-random sequence of
// TS 38.211 §5.2.1, used for scrambling data channels before modulation.
// x1 is fixed-seeded; x2 carries the initialization c_init (RNTI, cell ID
// and codeword index in the standard).
type GoldSequence struct {
	x1, x2 uint32
}

// goldAdvance is the standard Nc = 1600 fast-forward applied before output.
const goldAdvance = 1600

// NewGoldSequence returns a generator initialized with c_init.
func NewGoldSequence(cInit uint32) *GoldSequence {
	g := &GoldSequence{x1: 1, x2: cInit & 0x7fffffff}
	for i := 0; i < goldAdvance; i++ {
		g.step()
	}
	return g
}

// step advances both LFSRs one position and returns the output bit.
func (g *GoldSequence) step() byte {
	out := byte((g.x1 ^ g.x2) & 1)
	// x1: x^31 + x^3 + 1
	fb1 := ((g.x1 >> 3) ^ g.x1) & 1
	g.x1 = (g.x1 >> 1) | (fb1 << 30)
	// x2: x^31 + x^3 + x^2 + x + 1
	fb2 := ((g.x2 >> 3) ^ (g.x2 >> 2) ^ (g.x2 >> 1) ^ g.x2) & 1
	g.x2 = (g.x2 >> 1) | (fb2 << 30)
	return out
}

// Next returns the next sequence bit.
func (g *GoldSequence) Next() byte { return g.step() }

// Bits returns the next n sequence bits.
func (g *GoldSequence) Bits(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = g.step()
	}
	return out
}

// Scrambler applies Gold-sequence scrambling to codeword bits — part of the
// TaskModulation stage of the downlink DAG (and its inverse on the uplink).
type Scrambler struct {
	cInit uint32
}

// NewScrambler returns a scrambler for the given c_init.
func NewScrambler(cInit uint32) *Scrambler { return &Scrambler{cInit: cInit} }

// Scramble XORs the payload with the scrambling sequence. Scrambling is an
// involution: applying it twice with the same c_init restores the input.
func (s *Scrambler) Scramble(bits []byte) []byte {
	g := NewGoldSequence(s.cInit)
	out := make([]byte, len(bits))
	for i, b := range bits {
		out[i] = (b & 1) ^ g.Next()
	}
	return out
}

// ScrambleLLR applies descrambling in the soft domain: sequence bit 1 flips
// the LLR sign.
func (s *Scrambler) ScrambleLLR(llr []float64) []float64 {
	return s.ScrambleLLRInto(make([]float64, len(llr)), llr)
}

// ScrambleLLRInto is ScrambleLLR writing into dst's storage; dst may alias
// llr for in-place descrambling (sign flips are positionwise). The returned
// slice is dst resized to len(llr).
func (s *Scrambler) ScrambleLLRInto(dst, llr []float64) []float64 {
	g := GoldSequence{x1: 1, x2: s.cInit & 0x7fffffff}
	for i := 0; i < goldAdvance; i++ {
		g.step()
	}
	if cap(dst) < len(llr) {
		dst = make([]float64, len(llr))
	}
	dst = dst[:len(llr)]
	for i, v := range llr {
		if g.step() == 1 {
			dst[i] = -v
		} else {
			dst[i] = v
		}
	}
	return dst
}

// CInitFor computes the standard data-channel c_init from RNTI, codeword
// index q and cell identity: c_init = rnti·2^15 + q·2^14 + cellID.
func CInitFor(rnti uint16, codeword int, cellID uint16) (uint32, error) {
	if codeword < 0 || codeword > 1 {
		return 0, errors.New("phy: codeword index must be 0 or 1")
	}
	if cellID > 1007 {
		return 0, errors.New("phy: cell identity out of range")
	}
	return uint32(rnti)<<15 | uint32(codeword)<<14 | uint32(cellID), nil
}
