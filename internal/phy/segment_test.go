package phy

import (
	"testing"
	"testing/quick"

	"concordia/internal/rng"
)

func TestSegmentSmallTB(t *testing.T) {
	s, err := Segment(1000)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks != 1 {
		t.Fatalf("small TB split into %d blocks", s.NumBlocks)
	}
	if s.PerBlockCRC {
		t.Fatal("single block should not carry CB CRC")
	}
	if s.BlockBits != 1024 {
		t.Fatalf("block bits %d want 1024 (payload + TB CRC)", s.BlockBits)
	}
}

func TestSegmentLargeTB(t *testing.T) {
	s, err := Segment(50000)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumBlocks < 6 {
		t.Fatalf("50 kb TB split into only %d blocks", s.NumBlocks)
	}
	if !s.PerBlockCRC {
		t.Fatal("multi-block segmentation must use CB CRCs")
	}
	if s.BlockBits > MaxCodeblockBits {
		t.Fatalf("block bits %d exceed LDPC limit", s.BlockBits)
	}
}

func TestSegmentInvalid(t *testing.T) {
	if _, err := Segment(0); err == nil {
		t.Fatal("zero TB accepted")
	}
}

func TestSegmentRoundTripSingleBlock(t *testing.T) {
	r := rng.New(1)
	payload := randomBits(r, 800)
	s, _ := Segment(800)
	blocks, err := s.SegmentBits(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s.Reassemble(blocks)
	if !ok {
		t.Fatal("reassemble rejected valid blocks")
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatal("payload corrupted through segmentation")
		}
	}
}

func TestSegmentRoundTripMultiBlock(t *testing.T) {
	r := rng.New(2)
	for _, size := range []int{9000, 20000, 50000} {
		payload := randomBits(r, size)
		s, _ := Segment(size)
		blocks, err := s.SegmentBits(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(blocks) != s.NumBlocks {
			t.Fatalf("got %d blocks want %d", len(blocks), s.NumBlocks)
		}
		got, ok := s.Reassemble(blocks)
		if !ok {
			t.Fatalf("reassemble rejected valid %d-bit TB", size)
		}
		for i := range payload {
			if got[i] != payload[i] {
				t.Fatalf("payload corrupted at bit %d (TB %d)", i, size)
			}
		}
	}
}

func TestSegmentDetectsCorruption(t *testing.T) {
	r := rng.New(3)
	payload := randomBits(r, 20000)
	s, _ := Segment(20000)
	blocks, _ := s.SegmentBits(payload)
	blocks[1][7] ^= 1
	if _, ok := s.Reassemble(blocks); ok {
		t.Fatal("corrupted codeblock accepted")
	}
}

func TestSegmentWrongPayloadLength(t *testing.T) {
	s, _ := Segment(1000)
	if _, err := s.SegmentBits(make([]byte, 500)); err == nil {
		t.Fatal("wrong payload length accepted")
	}
	if _, ok := s.Reassemble(nil); ok {
		t.Fatal("wrong block count accepted")
	}
}

func TestRateMatcherPuncture(t *testing.T) {
	rm, err := NewRateMatcher(10, 6)
	if err != nil {
		t.Fatal(err)
	}
	cw := []byte{0, 1, 0, 1, 1, 0, 0, 1, 1, 1}
	out, err := rm.Match(cw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != cw[i] {
			t.Fatal("puncturing must keep a prefix")
		}
	}
}

func TestRateMatcherRepeat(t *testing.T) {
	rm, _ := NewRateMatcher(4, 10)
	cw := []byte{1, 0, 1, 1}
	out, _ := rm.Match(cw)
	for i := range out {
		if out[i] != cw[i%4] {
			t.Fatal("repetition must wrap circularly")
		}
	}
}

func TestRateDematchChaseCombining(t *testing.T) {
	rm, _ := NewRateMatcher(4, 8)
	llr := []float64{1, 2, 3, 4, 10, 20, 30, 40}
	out, err := rm.Dematch(llr)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33, 44}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("dematch %v want %v", out, want)
		}
	}
}

func TestRateDematchPuncturedErasures(t *testing.T) {
	rm, _ := NewRateMatcher(6, 4)
	out, _ := rm.Dematch([]float64{1, 1, 1, 1})
	if out[4] != 0 || out[5] != 0 {
		t.Fatal("punctured positions must stay zero")
	}
}

func TestRateMatcherErrors(t *testing.T) {
	if _, err := NewRateMatcher(0, 5); err == nil {
		t.Fatal("zero N accepted")
	}
	rm, _ := NewRateMatcher(4, 8)
	if _, err := rm.Match(make([]byte, 3)); err == nil {
		t.Fatal("wrong codeword length accepted")
	}
	if _, err := rm.Dematch(make([]float64, 3)); err == nil {
		t.Fatal("wrong LLR length accepted")
	}
}

// Property: match followed by dematch of strong LLRs preserves every bit
// that was transmitted at least once.
func TestRateMatchDematchProperty(t *testing.T) {
	r := rng.New(4)
	err := quick.Check(func(a, b uint8) bool {
		n := int(a%32) + 4
		e := int(b%64) + 1
		rm, err := NewRateMatcher(n, e)
		if err != nil {
			return false
		}
		cw := randomBits(r, n)
		tx, err := rm.Match(cw)
		if err != nil {
			return false
		}
		llr := make([]float64, e)
		for i, bit := range tx {
			llr[i] = 5
			if bit == 1 {
				llr[i] = -5
			}
		}
		acc, err := rm.Dematch(llr)
		if err != nil {
			return false
		}
		for i := 0; i < n && i < e; i++ {
			var want byte
			if acc[i] < 0 {
				want = 1
			}
			if want != cw[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// Integration: full downlink-style chain — segment, LDPC-encode, rate-match,
// modulate, AWGN, demodulate, dematch, decode, reassemble.
func TestFullCodingChain(t *testing.T) {
	r := rng.New(5)
	const tb = 12000
	payload := randomBits(r, tb)
	seg, _ := Segment(tb)
	blocks, err := seg.SegmentBits(payload)
	if err != nil {
		t.Fatal(err)
	}
	k := seg.BlockBits
	code, err := NewLDPCCode(k, k/2, 99)
	if err != nil {
		t.Fatal(err)
	}
	mod := QAM16
	// Rate-match to a multiple of bits-per-symbol.
	e := code.N() + code.N()/4
	e -= e % mod.BitsPerSymbol()
	rm, _ := NewRateMatcher(code.N(), e)
	ch := NewAWGNChannel(9, r)

	rxBlocks := make([][]byte, len(blocks))
	for i, b := range blocks {
		cw, err := code.Encode(b)
		if err != nil {
			t.Fatal(err)
		}
		tx, _ := rm.Match(cw)
		syms, err := mod.Modulate(tx)
		if err != nil {
			t.Fatal(err)
		}
		rx := ch.Transmit(syms)
		llr, _ := mod.DemodulateLLR(rx, ch.NoiseVar)
		acc, _ := rm.Dematch(llr)
		res, err := code.Decode(acc)
		if err != nil {
			t.Fatal(err)
		}
		rxBlocks[i] = res.Info
	}
	got, ok := seg.Reassemble(rxBlocks)
	if !ok {
		t.Fatal("full chain failed CRC at 9 dB")
	}
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatal("full chain corrupted payload")
		}
	}
}
