package phy

import (
	"testing"

	"concordia/internal/rng"
)

// Zero-alloc gates for the RX-path scratch reuse (DESIGN.md §5f): every
// *Into/*Append stage must stop allocating once its destination capacity and
// pooled scratch exist. These pin the contract so a refactor that quietly
// reintroduces per-call garbage fails loudly instead of showing up as GC
// pressure in the calibration experiment.

func TestLDPCDecodeIntoZeroAlloc(t *testing.T) {
	code, err := NewLDPCCode(256, 132, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	info := make([]byte, code.K)
	for i := range info {
		info[i] = byte(r.Intn(2))
	}
	cw, err := code.Encode(info)
	if err != nil {
		t.Fatal(err)
	}
	llr := make([]float64, code.N())
	for i, b := range cw {
		llr[i] = 4 * (1 - 2*float64(b))
	}
	var res DecodeResult
	if err := code.DecodeInto(&res, llr); err != nil { // warm scratch + Info
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(100, func() {
		if err := code.DecodeInto(&res, llr); err != nil {
			t.Error(err)
		}
	}); a != 0 {
		t.Errorf("warmed LDPC DecodeInto allocated %.1f per run, want 0", a)
	}
}

func TestPolarDecodeIntoZeroAlloc(t *testing.T) {
	code, err := NewPolarCode(256, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	info := make([]byte, code.K)
	for i := range info {
		info[i] = byte(r.Intn(2))
	}
	cw, err := code.Encode(info)
	if err != nil {
		t.Fatal(err)
	}
	llr := make([]float64, code.N)
	for i, b := range cw {
		llr[i] = 3 * (1 - 2*float64(b))
	}
	dst, err := code.Decode(llr) // warm scratch, size dst
	if err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(100, func() {
		var derr error
		dst, derr = code.DecodeInto(dst, llr)
		if derr != nil {
			t.Error(derr)
		}
	}); a != 0 {
		t.Errorf("warmed polar DecodeInto allocated %.1f per run, want 0", a)
	}
}

func TestRxStagesZeroAlloc(t *testing.T) {
	// Demodulate → descramble → dematch, each into reused storage.
	mod := QAM64
	r := rng.New(17)
	bits := make([]byte, 600*mod.BitsPerSymbol())
	for i := range bits {
		bits[i] = byte(r.Intn(2))
	}
	syms, err := mod.Modulate(bits)
	if err != nil {
		t.Fatal(err)
	}
	var llr []float64
	if llr, err = mod.DemodulateLLRInto(llr, syms, 0.1); err != nil {
		t.Fatal(err)
	}
	sc := NewScrambler(0xBEEF)
	rm, err := NewRateMatcher(900, len(llr))
	if err != nil {
		t.Fatal(err)
	}
	var acc []float64
	if a := testing.AllocsPerRun(100, func() {
		var serr error
		llr, serr = mod.DemodulateLLRInto(llr, syms, 0.1)
		if serr != nil {
			t.Error(serr)
		}
		llr = sc.ScrambleLLRInto(llr, llr) // in place
		acc, serr = rm.DematchInto(acc, llr)
		if serr != nil {
			t.Error(serr)
		}
	}); a != 0 {
		t.Errorf("warmed demod/descramble/dematch chain allocated %.1f per run, want 0", a)
	}
}

func TestOFDMAppendZeroAlloc(t *testing.T) {
	o, err := NewOFDM(256, 18, 120)
	if err != nil {
		t.Fatal(err)
	}
	grid := make([]complex128, 120)
	for i := range grid {
		grid[i] = complex(1, -1)
	}
	td := make([]complex128, 0, o.SymbolLength())
	fd := make([]complex128, 0, 120)
	if td, err = o.ModulateAppend(td[:0], grid); err != nil { // warm scratch
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(100, func() {
		var aerr error
		td, aerr = o.ModulateAppend(td[:0], grid)
		if aerr != nil {
			t.Error(aerr)
		}
		fd, aerr = o.DemodulateAppend(fd[:0], td)
		if aerr != nil {
			t.Error(aerr)
		}
	}); a != 0 {
		t.Errorf("warmed OFDM Append round trip allocated %.1f per run, want 0", a)
	}
}
