// Package phy implements the 5G physical-layer signal processing substrate:
// CRC attachment, LDPC-family channel coding (an accumulator-based
// quasi-cyclic construction with normalized min-sum decoding), polar coding
// for control channels, codeblock segmentation and rate matching, QAM
// modulation with soft demodulation, channel estimation, MMSE equalization
// and zero-forcing precoding.
//
// The package operates on real bits and real complex baseband samples; the
// simulator's cost models are calibrated against the genuine input-size and
// SNR scaling these implementations exhibit. Exact 3GPP bit mappings (38.212
// base graphs, interleavers) are replaced with seeded constructions of the
// same shape — a substitution documented in DESIGN.md that preserves the
// runtime structure the paper's scheduler depends on.
package phy

// CRC polynomials from 3GPP TS 38.212 §5.1 (normal representation, MSB
// first, implicit leading 1).
const (
	// CRC24APoly is gCRC24A(D) = D^24+D^23+D^18+D^17+D^14+D^11+D^10+D^7+D^6+D^5+D^4+D^3+D+1.
	CRC24APoly uint32 = 0x864CFB
	// CRC24BPoly is gCRC24B(D) = D^24+D^23+D^6+D^5+D+1.
	CRC24BPoly uint32 = 0x800063
	// CRC16Poly is gCRC16(D) = D^16+D^12+D^5+1 (CCITT).
	CRC16Poly uint32 = 0x1021
)

// CRC computes cyclic redundancy checks over bit slices. Bits are processed
// MSB-first in transmission order, matching the 38.212 convention of
// appending parity bits after the payload.
type CRC struct {
	poly uint32
	bits uint
}

// NewCRC24A returns the transport-block CRC used on TBs > 3824 bits.
func NewCRC24A() *CRC { return &CRC{poly: CRC24APoly, bits: 24} }

// NewCRC24B returns the per-codeblock CRC used after segmentation.
func NewCRC24B() *CRC { return &CRC{poly: CRC24BPoly, bits: 24} }

// NewCRC16 returns the CRC used on small transport blocks.
func NewCRC16() *CRC { return &CRC{poly: CRC16Poly, bits: 16} }

// Bits returns the parity length in bits.
func (c *CRC) Bits() int { return int(c.bits) }

// Compute returns the CRC parity bits (MSB first) for the given payload
// bits. Each payload element must be 0 or 1.
func (c *CRC) Compute(payload []byte) []byte {
	reg := uint32(0)
	mask := (uint32(1) << c.bits) - 1
	for _, b := range payload {
		in := uint32(b & 1)
		fb := ((reg >> (c.bits - 1)) & 1) ^ in
		reg = (reg << 1) & mask
		if fb == 1 {
			reg ^= c.poly & mask
		}
	}
	out := make([]byte, c.bits)
	for i := uint(0); i < c.bits; i++ {
		out[i] = byte((reg >> (c.bits - 1 - i)) & 1)
	}
	return out
}

// Attach returns payload with its CRC parity appended.
func (c *CRC) Attach(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+int(c.bits))
	out = append(out, payload...)
	return append(out, c.Compute(payload)...)
}

// Check verifies that data (payload ++ parity) has a valid CRC and returns
// the payload. ok is false on mismatch or if data is shorter than the CRC.
func (c *CRC) Check(data []byte) (payload []byte, ok bool) {
	n := len(data) - int(c.bits)
	if n < 0 {
		return nil, false
	}
	payload = data[:n]
	want := c.Compute(payload)
	for i, w := range want {
		if data[n+i]&1 != w {
			return payload, false
		}
	}
	return payload, true
}
