package phy

import (
	"testing"

	"concordia/internal/rng"
)

func TestPolarConstruction(t *testing.T) {
	c, err := NewPolarCode(128, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rate() != 0.5 {
		t.Fatalf("rate %v", c.Rate())
	}
	frozen := 0
	for _, f := range c.frozen {
		if f {
			frozen++
		}
	}
	if frozen != 64 {
		t.Fatalf("frozen count %d want 64", frozen)
	}
}

func TestPolarInvalidParams(t *testing.T) {
	if _, err := NewPolarCode(100, 50, 0); err == nil {
		t.Fatal("non-power-of-two N accepted")
	}
	if _, err := NewPolarCode(64, 0, 0); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewPolarCode(64, 65, 0); err == nil {
		t.Fatal("K>N accepted")
	}
}

func TestPolarEncodeDeterministic(t *testing.T) {
	c, _ := NewPolarCode(64, 32, 0)
	r := rng.New(1)
	info := randomBits(r, 32)
	a, _ := c.Encode(info)
	b, _ := c.Encode(info)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encode not deterministic")
		}
	}
}

func TestPolarNoiselessRoundTrip(t *testing.T) {
	for _, shape := range []struct{ n, k int }{{32, 16}, {64, 32}, {128, 40}, {256, 128}} {
		c, err := NewPolarCode(shape.n, shape.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(uint64(shape.n))
		for trial := 0; trial < 10; trial++ {
			info := randomBits(r, shape.k)
			cw, err := c.Encode(info)
			if err != nil {
				t.Fatal(err)
			}
			llr := make([]float64, len(cw))
			for i, b := range cw {
				llr[i] = 10
				if b == 1 {
					llr[i] = -10
				}
			}
			got, err := c.Decode(llr)
			if err != nil {
				t.Fatal(err)
			}
			for i := range info {
				if got[i] != info[i] {
					t.Fatalf("(%d,%d) noiseless round trip failed", shape.n, shape.k)
				}
			}
		}
	}
}

func TestPolarNoisyDecode(t *testing.T) {
	c, _ := NewPolarCode(256, 64, 0) // strong low-rate code
	r := rng.New(9)
	failures := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		info := randomBits(r, 64)
		cw, _ := c.Encode(info)
		llr := codewordLLR(cw, 3, r)
		got, err := c.Decode(llr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range info {
			if got[i] != info[i] {
				failures++
				break
			}
		}
	}
	if failures > trials/3 {
		t.Fatalf("%d/%d noisy decodes failed at 3 dB with rate-1/4 code", failures, trials)
	}
}

func TestPolarEncodeWrongLength(t *testing.T) {
	c, _ := NewPolarCode(64, 32, 0)
	if _, err := c.Encode(make([]byte, 10)); err == nil {
		t.Fatal("wrong-length encode accepted")
	}
	if _, err := c.Decode(make([]float64, 10)); err == nil {
		t.Fatal("wrong-length decode accepted")
	}
}

func BenchmarkPolarDecode256(b *testing.B) {
	c, _ := NewPolarCode(256, 128, 0)
	r := rng.New(1)
	info := randomBits(r, 128)
	cw, _ := c.Encode(info)
	llr := codewordLLR(cw, 6, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Decode(llr)
	}
}
