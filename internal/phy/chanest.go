package phy

import (
	"errors"
	"math/cmplx"
)

// ChannelEstimator performs least-squares channel estimation from known
// pilot symbols scattered across subcarriers, with linear interpolation in
// between — the structure of DM-RS-based estimation in NR (TS 38.211).
type ChannelEstimator struct {
	// PilotSpacing is the subcarrier distance between adjacent pilots.
	PilotSpacing int
}

// NewChannelEstimator returns an estimator with the given pilot comb
// spacing (NR type-1 DM-RS uses every other subcarrier; wider combs trade
// accuracy for overhead).
func NewChannelEstimator(pilotSpacing int) (*ChannelEstimator, error) {
	if pilotSpacing < 1 {
		return nil, errors.New("phy: pilot spacing must be >= 1")
	}
	return &ChannelEstimator{PilotSpacing: pilotSpacing}, nil
}

// PilotPositions returns the pilot subcarrier indices for a band of n
// subcarriers.
func (e *ChannelEstimator) PilotPositions(n int) []int {
	var out []int
	for i := 0; i < n; i += e.PilotSpacing {
		out = append(out, i)
	}
	return out
}

// Estimate returns the per-subcarrier channel estimate for a band of n
// subcarriers, given the received pilot observations and the transmitted
// pilot symbols (matched by position order). LS estimation at pilots,
// linear interpolation elsewhere, edge extrapolation by replication.
func (e *ChannelEstimator) Estimate(n int, rxPilots, txPilots []complex128) ([]complex128, error) {
	pos := e.PilotPositions(n)
	if len(rxPilots) != len(pos) || len(txPilots) != len(pos) {
		return nil, errors.New("phy: pilot count mismatch")
	}
	if len(pos) == 0 {
		return nil, errors.New("phy: no pilot positions")
	}
	h := make([]complex128, n)
	ls := make([]complex128, len(pos))
	for i := range pos {
		if txPilots[i] == 0 {
			return nil, errors.New("phy: zero pilot symbol")
		}
		ls[i] = rxPilots[i] / txPilots[i]
	}
	for i := 0; i < len(pos); i++ {
		h[pos[i]] = ls[i]
		if i+1 < len(pos) {
			// Interpolate to the next pilot.
			gap := pos[i+1] - pos[i]
			for k := 1; k < gap; k++ {
				t := complex(float64(k)/float64(gap), 0)
				h[pos[i]+k] = ls[i]*(1-t) + ls[i+1]*t
			}
		}
	}
	// Extend beyond the last pilot by replication.
	last := pos[len(pos)-1]
	for k := last + 1; k < n; k++ {
		h[k] = ls[len(ls)-1]
	}
	return h, nil
}

// MSE returns the mean squared error between an estimate and the true
// channel, a standard estimator-quality metric used in tests.
func MSE(est, truth []complex128) float64 {
	if len(est) != len(truth) || len(est) == 0 {
		return 0
	}
	var s float64
	for i := range est {
		d := est[i] - truth[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	return s / float64(len(est))
}

// Equalizer applies per-subcarrier MIMO equalization.
type Equalizer struct {
	// NoiseVar is the complex noise variance used by the MMSE filter.
	NoiseVar float64
}

// MMSEWeights returns the MMSE equalization matrix
// W = (HᴴH + σ²I)⁻¹ Hᴴ for channel H (rxAnt × layers).
func (eq *Equalizer) MMSEWeights(h *CMat) (*CMat, error) {
	hh := h.Hermitian()
	gram := hh.Mul(h).AddScaledIdentity(complex(eq.NoiseVar, 0))
	inv, err := gram.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.Mul(hh), nil
}

// Equalize applies the MMSE filter to each received symbol vector,
// returning per-layer symbol estimates.
func (eq *Equalizer) Equalize(h *CMat, rx [][]complex128) ([][]complex128, error) {
	w, err := eq.MMSEWeights(h)
	if err != nil {
		return nil, err
	}
	out := make([][]complex128, len(rx))
	for i, y := range rx {
		out[i] = w.MulVec(y)
	}
	return out, nil
}

// ZFPrecoder computes zero-forcing precoding matrices for the downlink: the
// pseudo-inverse of the channel, normalized to unit total transmit power.
type ZFPrecoder struct{}

// Weights returns the normalized ZF precoder P for channel H (users ×
// txAnt): P = Hᴴ(HHᴴ)⁻¹ scaled so ‖P‖_F² = number of streams.
func (ZFPrecoder) Weights(h *CMat) (*CMat, error) {
	p, err := h.PseudoInverse()
	if err != nil {
		return nil, err
	}
	// Frobenius normalization.
	var f float64
	for _, v := range p.Data {
		f += real(v)*real(v) + imag(v)*imag(v)
	}
	if f == 0 {
		return nil, ErrSingularMatrix
	}
	streams := float64(h.Rows)
	scale := complex(cmplxSqrt(streams/f), 0)
	out := p.Clone()
	for i := range out.Data {
		out.Data[i] *= scale
	}
	return out, nil
}

func cmplxSqrt(x float64) float64 { return real(cmplx.Sqrt(complex(x, 0))) }

// Precode applies P to each user symbol vector, producing per-antenna
// transmit vectors.
func (zf ZFPrecoder) Precode(p *CMat, userSymbols [][]complex128) [][]complex128 {
	out := make([][]complex128, len(userSymbols))
	for i, s := range userSymbols {
		out[i] = p.MulVec(s)
	}
	return out
}
