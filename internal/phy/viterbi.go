package phy

import (
	"errors"
	"math"
	"math/bits"
)

// ConvolutionalCode is the tail-biting-free (zero-terminated) convolutional
// code used by LTE control channels (constraint length 7, rate 1/3,
// generators 133/171/165 octal) with soft-decision Viterbi decoding. The 4G
// data path uses turbo codes built from two such constituent encoders; this
// implementation covers the constituent machinery the paper's 4G background
// (§A.1) describes.
type ConvolutionalCode struct {
	constraint int
	gens       []uint32
	states     int
}

// NewConvolutionalCode builds a code from generator polynomials (binary
// form, e.g. 0b1011011 for octal 133 with constraint length 7).
func NewConvolutionalCode(constraint int, gens []uint32) (*ConvolutionalCode, error) {
	if constraint < 2 || constraint > 16 {
		return nil, errors.New("phy: constraint length out of range")
	}
	if len(gens) == 0 {
		return nil, errors.New("phy: need at least one generator")
	}
	for _, g := range gens {
		if g == 0 || bits.Len32(g) > constraint {
			return nil, errors.New("phy: generator exceeds constraint length")
		}
	}
	return &ConvolutionalCode{
		constraint: constraint,
		gens:       append([]uint32(nil), gens...),
		states:     1 << (constraint - 1),
	}, nil
}

// NewLTEConvolutional returns the LTE K=7 rate-1/3 code (133, 171, 165).
func NewLTEConvolutional() *ConvolutionalCode {
	c, err := NewConvolutionalCode(7, []uint32{0o133, 0o171, 0o165})
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	return c
}

// Rate returns the code rate 1/len(generators).
func (c *ConvolutionalCode) Rate() float64 { return 1 / float64(len(c.gens)) }

// outputs computes the encoder output bits for a given state and input bit.
func (c *ConvolutionalCode) outputs(state uint32, in byte) []byte {
	reg := state<<1 | uint32(in&1)
	out := make([]byte, len(c.gens))
	for i, g := range c.gens {
		out[i] = byte(bits.OnesCount32(reg&g) & 1)
	}
	return out
}

// Encode produces the coded bits for info, appending constraint−1 zero tail
// bits to terminate the trellis.
func (c *ConvolutionalCode) Encode(info []byte) []byte {
	out := make([]byte, 0, (len(info)+c.constraint-1)*len(c.gens))
	state := uint32(0)
	emit := func(b byte) {
		out = append(out, c.outputs(state, b)...)
		state = (state<<1 | uint32(b&1)) & uint32(c.states-1)
	}
	for _, b := range info {
		emit(b & 1)
	}
	for i := 0; i < c.constraint-1; i++ {
		emit(0)
	}
	return out
}

// Decode runs soft-decision Viterbi over channel LLRs (positive ⇒ bit 0)
// and returns the information bits (tail removed).
func (c *ConvolutionalCode) Decode(llr []float64) ([]byte, error) {
	nOut := len(c.gens)
	if len(llr)%nOut != 0 {
		return nil, errors.New("phy: LLR length not a multiple of the output count")
	}
	steps := len(llr) / nOut
	infoLen := steps - (c.constraint - 1)
	if infoLen <= 0 {
		return nil, errors.New("phy: input shorter than the termination tail")
	}

	const inf = math.MaxFloat64 / 4
	metric := make([]float64, c.states)
	next := make([]float64, c.states)
	for s := 1; s < c.states; s++ {
		metric[s] = inf // trellis starts in state 0
	}
	// survivors[t][s] = input bit leading into state s at step t+1, plus
	// predecessor implied by the shift register structure.
	survivors := make([][]byte, steps)

	for t := 0; t < steps; t++ {
		for s := range next {
			next[s] = inf
		}
		surv := make([]byte, c.states)
		obs := llr[t*nOut : (t+1)*nOut]
		for s := 0; s < c.states; s++ {
			if metric[s] >= inf {
				continue
			}
			for in := byte(0); in <= 1; in++ {
				outBits := c.outputs(uint32(s), in)
				// Branch metric: negative correlation with LLRs.
				var m float64
				for i, b := range outBits {
					if b == 1 {
						m += obs[i]
					} else {
						m -= obs[i]
					}
				}
				ns := (s<<1 | int(in)) & (c.states - 1)
				cand := metric[s] + m
				if cand < next[ns] {
					next[ns] = cand
					// The predecessor is implied by the shift-register
					// structure: pred = (ns>>1) | (dropped << (K-2)). Store
					// the dropped bit to reconstruct it during traceback.
					surv[ns] = byte((s >> (c.constraint - 2)) & 1)
				}
			}
		}
		survivors[t] = surv
		metric, next = next, metric
	}

	// Traceback from state 0 (zero-terminated).
	state := 0
	decoded := make([]byte, steps)
	for t := steps - 1; t >= 0; t-- {
		in := byte(state & 1)
		decoded[t] = in
		dropped := survivors[t][state]
		state = (state >> 1) | (int(dropped) << (c.constraint - 2))
	}
	return decoded[:infoLen], nil
}
