package phy

import (
	"errors"
	"fmt"
)

// Segmentation splits a transport block into LDPC codeblocks following the
// 38.212 §5.2.2 procedure: attach a TB-level CRC, split into equal-size
// codeblocks no larger than MaxCodeblockBits, and attach a per-codeblock
// CRC-24B when more than one block results.
type Segmentation struct {
	TBBits      int // transport block payload bits (before CRCs)
	NumBlocks   int // C
	BlockBits   int // K': information bits per codeblock including CB CRC
	PerBlockCRC bool
}

// Segment computes the segmentation for a transport block of tbBits payload
// bits.
func Segment(tbBits int) (*Segmentation, error) {
	if tbBits <= 0 {
		return nil, errors.New("phy: transport block must be positive")
	}
	const tbCRC = 24
	total := tbBits + tbCRC
	c := 1
	perBlock := total
	if total > MaxCodeblockBits {
		const cbCRC = 24
		// C = ceil(B / (Kcb - L)) with Kcb = 8448, L = 24.
		c = (total + MaxCodeblockBits - cbCRC - 1) / (MaxCodeblockBits - cbCRC)
		perBlock = (total + c*cbCRC + c - 1) / c
	}
	return &Segmentation{
		TBBits:      tbBits,
		NumBlocks:   c,
		BlockBits:   perBlock,
		PerBlockCRC: c > 1,
	}, nil
}

// SegmentBits applies the segmentation to actual payload bits, returning the
// per-codeblock bit slices (each of length BlockBits, zero-padded at the
// end of the last block).
func (s *Segmentation) SegmentBits(payload []byte) ([][]byte, error) {
	if len(payload) != s.TBBits {
		return nil, fmt.Errorf("phy: payload %d bits, segmentation built for %d", len(payload), s.TBBits)
	}
	withCRC := NewCRC24A().Attach(payload)
	if s.NumBlocks == 1 {
		block := make([]byte, s.BlockBits)
		copy(block, withCRC)
		return [][]byte{block}, nil
	}
	cbCRC := NewCRC24B()
	dataPer := s.BlockBits - cbCRC.Bits()
	blocks := make([][]byte, 0, s.NumBlocks)
	for i := 0; i < s.NumBlocks; i++ {
		chunk := make([]byte, dataPer)
		lo := i * dataPer
		hi := lo + dataPer
		if lo < len(withCRC) {
			if hi > len(withCRC) {
				hi = len(withCRC)
			}
			copy(chunk, withCRC[lo:hi])
		}
		blocks = append(blocks, cbCRC.Attach(chunk))
	}
	return blocks, nil
}

// Reassemble reverses SegmentBits: verifies per-codeblock CRCs (when
// present) and the TB CRC, returning the payload. ok is false if any CRC
// fails.
func (s *Segmentation) Reassemble(blocks [][]byte) (payload []byte, ok bool) {
	if len(blocks) != s.NumBlocks {
		return nil, false
	}
	var joined []byte
	if s.NumBlocks == 1 {
		joined = append([]byte(nil), blocks[0][:s.TBBits+24]...)
	} else {
		cbCRC := NewCRC24B()
		for _, b := range blocks {
			data, good := cbCRC.Check(b)
			if !good {
				return nil, false
			}
			joined = append(joined, data...)
		}
		joined = joined[:s.TBBits+24]
	}
	return NewCRC24A().Check(joined)
}

// RateMatcher implements circular-buffer rate matching (38.212 §5.4.2):
// the encoded codeword is read into a buffer and E output bits are taken
// circularly, puncturing when E < N and repeating when E > N.
type RateMatcher struct {
	N int // mother codeword length
	E int // rate-matched output length
}

// NewRateMatcher validates the dimensions.
func NewRateMatcher(n, e int) (*RateMatcher, error) {
	if n <= 0 || e <= 0 {
		return nil, errors.New("phy: rate matcher dimensions must be positive")
	}
	return &RateMatcher{N: n, E: e}, nil
}

// Match selects E bits from the N-bit codeword circularly.
func (rm *RateMatcher) Match(codeword []byte) ([]byte, error) {
	if len(codeword) != rm.N {
		return nil, fmt.Errorf("phy: rate match wants %d bits, got %d", rm.N, len(codeword))
	}
	out := make([]byte, rm.E)
	for i := 0; i < rm.E; i++ {
		out[i] = codeword[i%rm.N]
	}
	return out, nil
}

// Dematch accumulates E received LLRs back into N mother-code LLR
// positions: repeated transmissions add (chase combining), punctured
// positions stay at zero (erasure).
func (rm *RateMatcher) Dematch(llr []float64) ([]float64, error) {
	return rm.DematchInto(nil, llr)
}

// DematchInto is Dematch writing into dst's storage (capacity reused when it
// suffices, so steady-state dematching allocates nothing).
func (rm *RateMatcher) DematchInto(dst, llr []float64) ([]float64, error) {
	if len(llr) != rm.E {
		return nil, fmt.Errorf("phy: rate dematch wants %d LLRs, got %d", rm.E, len(llr))
	}
	if cap(dst) < rm.N {
		dst = make([]float64, rm.N)
	}
	out := dst[:rm.N]
	for i := range out {
		out[i] = 0
	}
	for i, v := range llr {
		out[i%rm.N] += v
	}
	return out, nil
}
