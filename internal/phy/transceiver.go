package phy

import (
	"errors"
	"fmt"

	"concordia/internal/parallel"
	"concordia/internal/rng"
)

// Transceiver composes the full downlink-style data path end to end:
//
//	TX: segmentation → LDPC encode → rate match → scramble → QAM → OFDM
//	RX: OFDM⁻¹ → LLR demap → descramble → rate dematch → LDPC decode →
//	    desegmentation (CRC checks)
//
// It is the executable form of the slot DAGs the scheduler reasons about:
// every Task kind in ran.BuildDownlinkDAG/BuildUplinkDAG corresponds to a
// stage here. The cost model's input-dependence (codeblock counts, SNR →
// iterations) is calibrated against this pipeline's real behaviour (the
// "calibration" experiment).
type Transceiver struct {
	Mod       Modulation
	seg       *Segmentation
	code      *LDPCCode
	rm        *RateMatcher
	scrambler *Scrambler
	ofdm      *OFDM
	// symbols per transport block after rate matching.
	paddedBits int
	// workers bounds the goroutines decoding codeblocks in Receive.
	workers int

	// Receive-path scratch (DESIGN.md §5f): grid symbols, LLRs, and one
	// dematch/decode slot per codeblock so the parallel workers stay on
	// disjoint storage. A Transceiver processes one transport block at a
	// time — Receive is not safe for concurrent calls on the same instance
	// (the codeblock fan-out happens internally).
	rxSyms   []complex128
	rxLLR    []float64
	rxAcc    [][]float64
	rxDec    []DecodeResult
	rxBlocks [][]byte
}

// TransceiverConfig sizes the chain.
type TransceiverConfig struct {
	TBBits   int        // transport block payload bits
	Mod      Modulation // constellation
	CodeRate float64    // target rate after matching (0 < r < 1)
	CInit    uint32     // scrambling seed
	FFTSize  int        // OFDM transform size
	CPLen    int        // cyclic prefix samples
	Carriers int        // active subcarriers
	LDPCSeed uint64     // parity construction seed
	// Workers bounds the worker goroutines used to decode a transport
	// block's codeblocks in parallel: 0 = runtime.NumCPU(), 1 = serial.
	// Decoding is a pure function of each codeblock's LLRs, so the results
	// are bit-for-bit identical for every setting.
	Workers int
}

// NewTransceiver validates and assembles the chain.
func NewTransceiver(cfg TransceiverConfig) (*Transceiver, error) {
	if cfg.TBBits <= 0 {
		return nil, errors.New("phy: transceiver needs a positive TB size")
	}
	if !cfg.Mod.Valid() {
		return nil, fmt.Errorf("phy: invalid modulation %d", int(cfg.Mod))
	}
	if cfg.CodeRate <= 0 || cfg.CodeRate >= 1 {
		return nil, errors.New("phy: code rate must be in (0,1)")
	}
	seg, err := Segment(cfg.TBBits)
	if err != nil {
		return nil, err
	}
	k := seg.BlockBits
	m := k/2 + 4 // mother code rate 2/3 before matching
	code, err := NewLDPCCode(k, m, cfg.LDPCSeed)
	if err != nil {
		return nil, err
	}
	// Rate-match each codeblock to hit the target rate, rounded up to a
	// whole number of QAM symbols.
	e := int(float64(k) / cfg.CodeRate)
	if e < code.N()/2 {
		e = code.N() / 2
	}
	bps := cfg.Mod.BitsPerSymbol()
	if rem := e % bps; rem != 0 {
		e += bps - rem
	}
	rm, err := NewRateMatcher(code.N(), e)
	if err != nil {
		return nil, err
	}
	ofdm, err := NewOFDM(cfg.FFTSize, cfg.CPLen, cfg.Carriers)
	if err != nil {
		return nil, err
	}
	return &Transceiver{
		Mod:        cfg.Mod,
		seg:        seg,
		code:       code,
		rm:         rm,
		scrambler:  NewScrambler(cfg.CInit),
		ofdm:       ofdm,
		paddedBits: e,
		workers:    parallel.Count(cfg.Workers),
	}, nil
}

// Codeblocks returns the segmentation's codeblock count.
func (t *Transceiver) Codeblocks() int { return t.seg.NumBlocks }

// Transmit runs the TX chain, returning time-domain OFDM samples.
func (t *Transceiver) Transmit(payload []byte) ([]complex128, error) {
	blocks, err := t.seg.SegmentBits(payload)
	if err != nil {
		return nil, err
	}
	// The coded length is known up front: every codeblock rate-matches to
	// paddedBits bits.
	coded := make([]byte, 0, t.seg.NumBlocks*t.paddedBits)
	for _, b := range blocks {
		cw, err := t.code.Encode(b)
		if err != nil {
			return nil, err
		}
		matched, err := t.rm.Match(cw)
		if err != nil {
			return nil, err
		}
		coded = append(coded, matched...)
	}
	scrambled := t.scrambler.Scramble(coded)
	syms, err := t.Mod.Modulate(scrambled)
	if err != nil {
		return nil, err
	}
	// Pack symbols into OFDM symbols, zero-padding the last. One grid buffer
	// serves every OFDM symbol (Modulate copies out of it).
	carriers := t.ofdm.carriers
	numSyms := (len(syms) + carriers - 1) / carriers
	out := make([]complex128, 0, numSyms*t.ofdm.SymbolLength())
	grid := make([]complex128, carriers)
	for start := 0; start < len(syms); start += carriers {
		end := start + carriers
		if end > len(syms) {
			for i := range grid {
				grid[i] = 0
			}
			copy(grid, syms[start:])
		} else {
			copy(grid, syms[start:end])
		}
		td, err := t.ofdm.Modulate(grid)
		if err != nil {
			return nil, err
		}
		out = append(out, td...)
	}
	return out, nil
}

// RxResult reports the receive attempt.
type RxResult struct {
	Payload []byte
	OK      bool // all CRCs passed
	// TotalIterations sums LDPC iterations across codeblocks — the
	// SNR-dependent runtime driver the WCET predictor must learn.
	TotalIterations int
}

// Receive runs the RX chain over time-domain samples with the given channel
// noise variance. Codeblocks decode independently — they share only the
// immutable code and rate matcher, and each writes to its own scratch slot —
// so they fan out across the configured worker count with results collected
// in codeblock order; the output is bit-for-bit identical for any Workers
// setting. All intermediate buffers are reused across calls, so the
// steady-state RX chain allocates only the returned result.
func (t *Transceiver) Receive(samples []complex128, noiseVar float64) (*RxResult, error) {
	symLen := t.ofdm.SymbolLength()
	if len(samples)%symLen != 0 {
		return nil, errors.New("phy: samples not a whole number of OFDM symbols")
	}
	syms := t.rxSyms[:0]
	for start := 0; start < len(samples); start += symLen {
		var err error
		syms, err = t.ofdm.DemodulateAppend(syms, samples[start:start+symLen])
		if err != nil {
			return nil, err
		}
	}
	t.rxSyms = syms
	effNoise := noiseVar * float64(t.ofdm.carriers) / float64(t.ofdm.fft.n)
	llr, err := t.Mod.DemodulateLLRInto(t.rxLLR, syms, effNoise)
	if err != nil {
		return nil, err
	}
	t.rxLLR = llr
	need := t.paddedBits * t.seg.NumBlocks
	if len(llr) < need {
		return nil, errors.New("phy: received fewer soft bits than transmitted")
	}
	// Trim OFDM grid padding, then descramble in place (sign flips are
	// positionwise) and split per codeblock.
	descrambled := t.scrambler.ScrambleLLRInto(llr[:need], llr[:need])
	if t.rxAcc == nil {
		t.rxAcc = make([][]float64, t.seg.NumBlocks)
		t.rxDec = make([]DecodeResult, t.seg.NumBlocks)
		t.rxBlocks = make([][]byte, t.seg.NumBlocks)
	}
	err = parallel.ForEach(t.workers, t.seg.NumBlocks, func(i int) error {
		chunk := descrambled[i*t.paddedBits : (i+1)*t.paddedBits]
		acc, err := t.rm.DematchInto(t.rxAcc[i], chunk)
		if err != nil {
			return err
		}
		t.rxAcc[i] = acc
		return t.code.DecodeInto(&t.rxDec[i], acc)
	})
	if err != nil {
		return nil, err
	}
	res := &RxResult{}
	for i := range t.rxDec {
		res.TotalIterations += t.rxDec[i].Iterations
		t.rxBlocks[i] = t.rxDec[i].Info
	}
	payload, ok := t.seg.Reassemble(t.rxBlocks)
	res.Payload = payload
	res.OK = ok
	return res, nil
}

// Loopback transmits payload through an AWGN channel at snrDB and receives
// it, returning the result.
func (t *Transceiver) Loopback(payload []byte, snrDB float64, r *rng.Rand) (*RxResult, error) {
	td, err := t.Transmit(payload)
	if err != nil {
		return nil, err
	}
	ch := NewAWGNChannel(snrDB, r)
	return t.Receive(ch.Transmit(td), ch.NoiseVar)
}
