package phy

import (
	"testing"
	"testing/quick"

	"concordia/internal/rng"
)

func TestLDPCConstruction(t *testing.T) {
	c, err := NewLDPCCode(100, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 150 {
		t.Fatalf("N = %d", c.N())
	}
	if r := c.Rate(); r < 0.66 || r > 0.67 {
		t.Fatalf("rate %v", r)
	}
}

func TestLDPCInvalidDims(t *testing.T) {
	if _, err := NewLDPCCode(0, 10, 1); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := NewLDPCCode(10, 2, 1); err == nil {
		t.Fatal("M=2 accepted")
	}
}

func TestLDPCEncodeSystematic(t *testing.T) {
	c, _ := NewLDPCCode(64, 32, 2)
	r := rng.New(3)
	info := randomBits(r, 64)
	cw, err := c.Encode(info)
	if err != nil {
		t.Fatal(err)
	}
	for i := range info {
		if cw[i] != info[i] {
			t.Fatal("codeword is not systematic")
		}
	}
	if !c.CheckSyndrome(cw) {
		t.Fatal("valid codeword fails syndrome check")
	}
}

func TestLDPCEncodeWrongLength(t *testing.T) {
	c, _ := NewLDPCCode(64, 32, 2)
	if _, err := c.Encode(make([]byte, 10)); err == nil {
		t.Fatal("wrong-length encode accepted")
	}
}

func TestLDPCSyndromeRejectsCorruption(t *testing.T) {
	c, _ := NewLDPCCode(128, 64, 4)
	r := rng.New(5)
	cw, _ := c.Encode(randomBits(r, 128))
	for trial := 0; trial < 50; trial++ {
		pos := r.Intn(len(cw))
		cw[pos] ^= 1
		if c.CheckSyndrome(cw) {
			t.Fatalf("single flip at %d passes syndrome", pos)
		}
		cw[pos] ^= 1
	}
}

// bitsToLLR converts a codeword to strong LLRs with optional noise.
func codewordLLR(cw []byte, snrDB float64, r *rng.Rand) []float64 {
	// BPSK over AWGN: x = 1-2b, y = x + n, llr = 2y/sigma^2
	ch := NewAWGNChannel(snrDB, r)
	syms := make([]complex128, len(cw))
	for i, b := range cw {
		syms[i] = complex(1-2*float64(b), 0)
	}
	rx := ch.Transmit(syms)
	llr := make([]float64, len(cw))
	for i, y := range rx {
		llr[i] = 2 * real(y) / ch.NoiseVar
	}
	return llr
}

func TestLDPCDecodeNoiseless(t *testing.T) {
	c, _ := NewLDPCCode(256, 128, 6)
	r := rng.New(7)
	info := randomBits(r, 256)
	cw, _ := c.Encode(info)
	llr := make([]float64, len(cw))
	for i, b := range cw {
		llr[i] = 10
		if b == 1 {
			llr[i] = -10
		}
	}
	res, err := c.Decode(llr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 1 {
		t.Fatalf("noiseless decode: converged=%v iters=%d", res.Converged, res.Iterations)
	}
	for i := range info {
		if res.Info[i] != info[i] {
			t.Fatal("noiseless decode corrupted info bits")
		}
	}
}

func TestLDPCDecodeHighSNR(t *testing.T) {
	c, _ := NewLDPCCode(512, 256, 8)
	r := rng.New(9)
	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		info := randomBits(r, 512)
		cw, _ := c.Encode(info)
		res, err := c.Decode(codewordLLR(cw, 6, r))
		if err != nil {
			t.Fatal(err)
		}
		ok := res.Converged
		for i := range info {
			if res.Info[i] != info[i] {
				ok = false
				break
			}
		}
		if !ok {
			failures++
		}
	}
	if failures > 2 {
		t.Fatalf("%d/%d high-SNR decodes failed", failures, trials)
	}
}

func TestLDPCIterationsIncreaseWithNoise(t *testing.T) {
	c, _ := NewLDPCCode(512, 256, 10)
	r := rng.New(11)
	avgIters := func(snrDB float64) float64 {
		var total int
		const trials = 15
		for trial := 0; trial < trials; trial++ {
			info := randomBits(r, 512)
			cw, _ := c.Encode(info)
			res, _ := c.Decode(codewordLLR(cw, snrDB, r))
			total += res.Iterations
		}
		return float64(total) / trials
	}
	high := avgIters(8)
	low := avgIters(2)
	if low <= high {
		t.Fatalf("iterations did not increase with noise: %.1f (high SNR) vs %.1f (low SNR)", high, low)
	}
}

func TestLDPCDecodeWrongLength(t *testing.T) {
	c, _ := NewLDPCCode(64, 32, 2)
	if _, err := c.Decode(make([]float64, 10)); err == nil {
		t.Fatal("wrong-length decode accepted")
	}
}

func TestLDPCDeterministicConstruction(t *testing.T) {
	a, _ := NewLDPCCode(100, 50, 42)
	b, _ := NewLDPCCode(100, 50, 42)
	for r := range a.checkVars {
		if len(a.checkVars[r]) != len(b.checkVars[r]) {
			t.Fatal("same seed produced different codes")
		}
		for i := range a.checkVars[r] {
			if a.checkVars[r][i] != b.checkVars[r][i] {
				t.Fatal("same seed produced different codes")
			}
		}
	}
}

// Property: every encoded word satisfies the syndrome, for arbitrary inputs.
func TestLDPCEncodeSyndromeProperty(t *testing.T) {
	c, _ := NewLDPCCode(96, 48, 13)
	r := rng.New(14)
	err := quick.Check(func(_ uint8) bool {
		cw, err := c.Encode(randomBits(r, 96))
		return err == nil && c.CheckSyndrome(cw)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: linearity — the XOR of two codewords is a codeword.
func TestLDPCLinearity(t *testing.T) {
	c, _ := NewLDPCCode(96, 48, 15)
	r := rng.New(16)
	for trial := 0; trial < 30; trial++ {
		a, _ := c.Encode(randomBits(r, 96))
		b, _ := c.Encode(randomBits(r, 96))
		x := make([]byte, len(a))
		for i := range x {
			x[i] = a[i] ^ b[i]
		}
		if !c.CheckSyndrome(x) {
			t.Fatal("XOR of codewords is not a codeword")
		}
	}
}

func BenchmarkLDPCEncode8448(b *testing.B) {
	c, _ := NewLDPCCode(8448, 4224, 1)
	r := rng.New(1)
	info := randomBits(r, 8448)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Encode(info)
	}
}

func BenchmarkLDPCDecode8448(b *testing.B) {
	c, _ := NewLDPCCode(8448, 4224, 1)
	r := rng.New(1)
	info := randomBits(r, 8448)
	cw, _ := c.Encode(info)
	llr := codewordLLR(cw, 6, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Decode(llr)
	}
}
