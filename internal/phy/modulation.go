package phy

import (
	"fmt"
	"math"
)

// Modulation identifies a QAM constellation by bits per symbol.
type Modulation int

// Modulation schemes used by NR data channels.
const (
	QPSK   Modulation = 2
	QAM16  Modulation = 4
	QAM64  Modulation = 6
	QAM256 Modulation = 8
)

// String implements fmt.Stringer.
func (m Modulation) String() string {
	switch m {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	case QAM256:
		return "256QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

// BitsPerSymbol returns the modulation order.
func (m Modulation) BitsPerSymbol() int { return int(m) }

// Valid reports whether m is one of the supported constellations.
func (m Modulation) Valid() bool {
	switch m {
	case QPSK, QAM16, QAM64, QAM256:
		return true
	}
	return false
}

// pamLevels returns the per-dimension Gray-coded PAM amplitude for the given
// bit group, plus the normalization factor for unit average symbol energy.
func (m Modulation) pamParams() (levels int, norm float64) {
	perDim := m.BitsPerSymbol() / 2
	levels = 1 << perDim
	// Average energy of {±1, ±3, ..., ±(levels-1)} per dimension is
	// (levels^2 - 1)/3; two dimensions double it.
	norm = math.Sqrt(2 * (float64(levels*levels) - 1) / 3)
	return
}

// grayPAM maps Gray-coded bits to a PAM amplitude in {±1, ±3, ...}.
func grayPAM(bits []byte) float64 {
	// Convert Gray code to binary index.
	idx := 0
	acc := byte(0)
	for _, b := range bits {
		acc ^= b & 1
		idx = idx<<1 | int(acc)
	}
	levels := 1 << len(bits)
	return float64(2*idx - levels + 1)
}

// Modulate maps a bit slice to unit-average-energy complex symbols. The bit
// count must be a multiple of BitsPerSymbol.
func (m Modulation) Modulate(bits []byte) ([]complex128, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("phy: invalid modulation %d", int(m))
	}
	bps := m.BitsPerSymbol()
	if len(bits)%bps != 0 {
		return nil, fmt.Errorf("phy: %d bits not a multiple of %d", len(bits), bps)
	}
	_, norm := m.pamParams()
	perDim := bps / 2
	out := make([]complex128, len(bits)/bps)
	for s := range out {
		g := bits[s*bps : (s+1)*bps]
		i := grayPAM(g[:perDim])
		q := grayPAM(g[perDim:])
		out[s] = complex(i/norm, q/norm)
	}
	return out, nil
}

// llrTable caches the per-dimension constellation geometry DemodulateLLR
// needs — PAM amplitudes and Gray-coded bit labels per level. Built once per
// supported modulation at package init and read-only afterwards, so the
// demodulation hot path allocates nothing.
type llrTable struct {
	amp  []float64
	bits [][]byte
}

var llrTables [QAM256 + 1]*llrTable

func init() {
	for _, m := range []Modulation{QPSK, QAM16, QAM64, QAM256} {
		perDim := m.BitsPerSymbol() / 2
		levels, norm := m.pamParams()
		t := &llrTable{amp: make([]float64, levels), bits: make([][]byte, levels)}
		for idx := 0; idx < levels; idx++ {
			// binary index -> Gray bits
			g := idx ^ (idx >> 1)
			bs := make([]byte, perDim)
			for b := 0; b < perDim; b++ {
				bs[b] = byte((g >> (perDim - 1 - b)) & 1)
			}
			t.amp[idx] = float64(2*idx-levels+1) / norm
			t.bits[idx] = bs
		}
		llrTables[m] = t
	}
}

// DemodulateLLR computes per-bit max-log-MAP LLRs for received symbols under
// AWGN with the given noise variance (per complex dimension). Positive LLR
// means bit 0 is more likely.
func (m Modulation) DemodulateLLR(symbols []complex128, noiseVar float64) ([]float64, error) {
	return m.DemodulateLLRInto(nil, symbols, noiseVar)
}

// DemodulateLLRInto is DemodulateLLR writing into dst's storage: dst's
// capacity is reused when it suffices, so steady-state demodulation of
// same-size grids allocates nothing.
func (m Modulation) DemodulateLLRInto(dst []float64, symbols []complex128, noiseVar float64) ([]float64, error) {
	if !m.Valid() {
		return nil, fmt.Errorf("phy: invalid modulation %d", int(m))
	}
	if noiseVar <= 0 {
		noiseVar = 1e-9
	}
	bps := m.BitsPerSymbol()
	perDim := bps / 2
	tab := llrTables[m]
	amp, bits := tab.amp, tab.bits
	levels := len(amp)

	n := len(symbols) * bps
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	out := dst[:n]
	for s, sym := range symbols {
		for dim := 0; dim < 2; dim++ {
			y := real(sym)
			if dim == 1 {
				y = imag(sym)
			}
			for b := 0; b < perDim; b++ {
				best0, best1 := math.Inf(1), math.Inf(1)
				for idx := 0; idx < levels; idx++ {
					d := y - amp[idx]
					metric := d * d
					if bits[idx][b] == 0 {
						if metric < best0 {
							best0 = metric
						}
					} else if metric < best1 {
						best1 = metric
					}
				}
				pos := s*bps + dim*perDim + b
				out[pos] = (best1 - best0) / noiseVar
			}
		}
	}
	return out, nil
}

// HardDecision converts LLRs to bits (positive ⇒ 0).
func HardDecision(llr []float64) []byte {
	out := make([]byte, len(llr))
	for i, v := range llr {
		if v < 0 {
			out[i] = 1
		}
	}
	return out
}
