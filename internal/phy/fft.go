package phy

import (
	"errors"
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT implements the radix-2 decimation-in-time fast Fourier transform used
// by the OFDM (de)modulation stages (the TaskFFT/TaskIFFT nodes of the slot
// DAGs). Sizes must be powers of two; NR's 100 MHz/30 kHz numerology uses
// 4096-point transforms.
type FFT struct {
	n       int
	rev     []int
	twiddle []complex128 // forward twiddles W_n^k = exp(-2πik/n)
}

// NewFFT precomputes bit-reversal and twiddle tables for size n.
func NewFFT(n int) (*FFT, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, errors.New("phy: FFT size must be a power of two")
	}
	f := &FFT{n: n, rev: make([]int, n), twiddle: make([]complex128, n/2)}
	shift := 64 - uint(bits.Len64(uint64(n-1)))
	for i := range f.rev {
		f.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	for k := range f.twiddle {
		angle := -2 * math.Pi * float64(k) / float64(n)
		f.twiddle[k] = cmplx.Exp(complex(0, angle))
	}
	return f, nil
}

// Size returns the transform length.
func (f *FFT) Size() int { return f.n }

// Forward computes the DFT of x in place (x must have length Size).
func (f *FFT) Forward(x []complex128) error { return f.transform(x, false) }

// Inverse computes the inverse DFT of x in place, including the 1/n
// normalization.
func (f *FFT) Inverse(x []complex128) error {
	if err := f.transform(x, true); err != nil {
		return err
	}
	scale := complex(1/float64(f.n), 0)
	for i := range x {
		x[i] *= scale
	}
	return nil
}

func (f *FFT) transform(x []complex128, inverse bool) error {
	if len(x) != f.n {
		return errors.New("phy: FFT input length mismatch")
	}
	// Bit-reversal permutation.
	for i, j := range f.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative butterflies.
	for size := 2; size <= f.n; size <<= 1 {
		half := size >> 1
		step := f.n / size
		for start := 0; start < f.n; start += size {
			for k := 0; k < half; k++ {
				w := f.twiddle[k*step]
				if inverse {
					w = cmplx.Conj(w)
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// OFDM performs cyclic-prefix OFDM modulation and demodulation: the
// per-antenna IFFT/FFT work of the downlink and uplink DAG edges.
type OFDM struct {
	fft      *FFT
	cpLen    int
	carriers int // active subcarriers, centered around DC
	// norm scales the time-domain signal to unit average sample power for
	// unit-power constellation symbols, so channel SNR references hold.
	norm float64
	// grid is the scratch for the Append variants; Modulate/Demodulate keep
	// allocating so they stay safe for concurrent use, while the Append
	// methods trade that for a zero-alloc steady state (one caller at a
	// time per OFDM value).
	grid []complex128
}

// NewOFDM builds an OFDM (de)modulator with fftSize points, cpLen
// cyclic-prefix samples and the given number of active subcarriers.
func NewOFDM(fftSize, cpLen, carriers int) (*OFDM, error) {
	f, err := NewFFT(fftSize)
	if err != nil {
		return nil, err
	}
	if cpLen < 0 || cpLen >= fftSize {
		return nil, errors.New("phy: invalid cyclic prefix length")
	}
	if carriers <= 0 || carriers > fftSize {
		return nil, errors.New("phy: invalid carrier count")
	}
	return &OFDM{
		fft:      f,
		cpLen:    cpLen,
		carriers: carriers,
		norm:     float64(fftSize) / math.Sqrt(float64(carriers)),
	}, nil
}

// SymbolLength returns the time-domain samples per OFDM symbol.
func (o *OFDM) SymbolLength() int { return o.fft.n + o.cpLen }

// carrierIndex maps active subcarrier c (0..carriers-1) to an FFT bin,
// splitting around DC as NR resource grids do.
func (o *OFDM) carrierIndex(c int) int {
	half := o.carriers / 2
	if c < half {
		return o.fft.n - half + c // negative frequencies
	}
	return c - half // DC and positive frequencies
}

// Modulate maps frequency-domain symbols (one per active subcarrier) to a
// time-domain OFDM symbol with cyclic prefix.
func (o *OFDM) Modulate(symbols []complex128) ([]complex128, error) {
	if len(symbols) != o.carriers {
		return nil, errors.New("phy: OFDM modulate carrier count mismatch")
	}
	grid := make([]complex128, o.fft.n)
	for c, s := range symbols {
		grid[o.carrierIndex(c)] = s
	}
	if err := o.fft.Inverse(grid); err != nil {
		return nil, err
	}
	scale := complex(o.norm, 0)
	for i := range grid {
		grid[i] *= scale
	}
	out := make([]complex128, 0, o.SymbolLength())
	out = append(out, grid[o.fft.n-o.cpLen:]...)
	out = append(out, grid...)
	return out, nil
}

// Demodulate strips the cyclic prefix and returns the active-subcarrier
// frequency-domain symbols.
func (o *OFDM) Demodulate(samples []complex128) ([]complex128, error) {
	if len(samples) != o.SymbolLength() {
		return nil, errors.New("phy: OFDM demodulate length mismatch")
	}
	grid := append([]complex128(nil), samples[o.cpLen:]...)
	if err := o.fft.Forward(grid); err != nil {
		return nil, err
	}
	scale := complex(1/o.norm, 0)
	out := make([]complex128, o.carriers)
	for c := range out {
		out[c] = grid[o.carrierIndex(c)] * scale
	}
	return out, nil
}

func (o *OFDM) scratchGrid() []complex128 {
	if o.grid == nil {
		o.grid = make([]complex128, o.fft.n)
	}
	return o.grid
}

// ModulateAppend is Modulate appending the time-domain symbol to dst using
// the internal scratch grid (see the grid field for the concurrency
// trade-off). Bit-for-bit identical to Modulate.
func (o *OFDM) ModulateAppend(dst, symbols []complex128) ([]complex128, error) {
	if len(symbols) != o.carriers {
		return nil, errors.New("phy: OFDM modulate carrier count mismatch")
	}
	grid := o.scratchGrid()
	for i := range grid {
		grid[i] = 0
	}
	for c, s := range symbols {
		grid[o.carrierIndex(c)] = s
	}
	if err := o.fft.Inverse(grid); err != nil {
		return nil, err
	}
	scale := complex(o.norm, 0)
	for i := range grid {
		grid[i] *= scale
	}
	dst = append(dst, grid[o.fft.n-o.cpLen:]...)
	dst = append(dst, grid...)
	return dst, nil
}

// DemodulateAppend is Demodulate appending the active-subcarrier symbols to
// dst using the internal scratch grid. Bit-for-bit identical to Demodulate.
func (o *OFDM) DemodulateAppend(dst, samples []complex128) ([]complex128, error) {
	if len(samples) != o.SymbolLength() {
		return nil, errors.New("phy: OFDM demodulate length mismatch")
	}
	grid := o.scratchGrid()
	copy(grid, samples[o.cpLen:])
	if err := o.fft.Forward(grid); err != nil {
		return nil, err
	}
	scale := complex(1/o.norm, 0)
	for c := 0; c < o.carriers; c++ {
		dst = append(dst, grid[o.carrierIndex(c)]*scale)
	}
	return dst, nil
}
