package phy

import (
	"testing"

	"concordia/internal/rng"
)

func TestConvolutionalValidation(t *testing.T) {
	if _, err := NewConvolutionalCode(1, []uint32{3}); err == nil {
		t.Fatal("constraint 1 accepted")
	}
	if _, err := NewConvolutionalCode(7, nil); err == nil {
		t.Fatal("empty generators accepted")
	}
	if _, err := NewConvolutionalCode(3, []uint32{0o133}); err == nil {
		t.Fatal("generator exceeding constraint accepted")
	}
}

func TestConvolutionalRate(t *testing.T) {
	c := NewLTEConvolutional()
	if c.Rate() != 1.0/3 {
		t.Fatalf("rate %v", c.Rate())
	}
}

func TestConvolutionalEncodeLength(t *testing.T) {
	c := NewLTEConvolutional()
	out := c.Encode(make([]byte, 40))
	// (40 info + 6 tail) × 3 outputs.
	if len(out) != 46*3 {
		t.Fatalf("encoded length %d want %d", len(out), 46*3)
	}
}

func bitsToStrongLLR(bits []byte) []float64 {
	llr := make([]float64, len(bits))
	for i, b := range bits {
		llr[i] = 8
		if b == 1 {
			llr[i] = -8
		}
	}
	return llr
}

func TestViterbiNoiseless(t *testing.T) {
	c := NewLTEConvolutional()
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		info := randomBits(r, 30+r.Intn(100))
		coded := c.Encode(info)
		got, err := c.Decode(bitsToStrongLLR(coded))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(info) {
			t.Fatalf("decoded %d bits want %d", len(got), len(info))
		}
		for i := range info {
			if got[i] != info[i] {
				t.Fatalf("noiseless Viterbi failed at bit %d (trial %d)", i, trial)
			}
		}
	}
}

func TestViterbiNoisy(t *testing.T) {
	c := NewLTEConvolutional()
	r := rng.New(2)
	failures := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		info := randomBits(r, 64)
		coded := c.Encode(info)
		llr := codewordLLR(coded, 1, r) // 1 dB: rate-1/3 K=7 handles this
		got, err := c.Decode(llr)
		if err != nil {
			t.Fatal(err)
		}
		for i := range info {
			if got[i] != info[i] {
				failures++
				break
			}
		}
	}
	if failures > trials/3 {
		t.Fatalf("%d/%d noisy blocks failed at 1 dB", failures, trials)
	}
}

func TestViterbiCorrectsErrors(t *testing.T) {
	// Flip a few coded bits outright; the code must correct them.
	c := NewLTEConvolutional()
	r := rng.New(3)
	info := randomBits(r, 80)
	coded := c.Encode(info)
	for f := 0; f < 5; f++ {
		coded[r.Intn(len(coded))] ^= 1
	}
	got, err := c.Decode(bitsToStrongLLR(coded))
	if err != nil {
		t.Fatal(err)
	}
	for i := range info {
		if got[i] != info[i] {
			t.Fatal("Viterbi failed to correct 5 bit flips in 258 coded bits")
		}
	}
}

func TestViterbiErrors(t *testing.T) {
	c := NewLTEConvolutional()
	if _, err := c.Decode(make([]float64, 7)); err == nil {
		t.Fatal("non-multiple LLR length accepted")
	}
	if _, err := c.Decode(make([]float64, 3)); err == nil {
		t.Fatal("tail-only input accepted")
	}
}

func BenchmarkViterbiDecode(b *testing.B) {
	c := NewLTEConvolutional()
	r := rng.New(1)
	info := randomBits(r, 128)
	llr := bitsToStrongLLR(c.Encode(info))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = c.Decode(llr)
	}
}
