package phy

import (
	"testing"

	"concordia/internal/rng"
)

func harqSetup(t *testing.T) (*LDPCCode, *RateMatcher) {
	t.Helper()
	code, err := NewLDPCCode(256, 128, 21)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewRateMatcher(code.N(), code.N())
	if err != nil {
		t.Fatal(err)
	}
	return code, rm
}

func TestHARQValidation(t *testing.T) {
	code, _ := harqSetup(t)
	if _, err := NewHARQProcess(nil, nil, 4); err == nil {
		t.Fatal("nil inputs accepted")
	}
	badRM, _ := NewRateMatcher(10, 10)
	if _, err := NewHARQProcess(code, badRM, 4); err == nil {
		t.Fatal("mismatched rate matcher accepted")
	}
}

func TestHARQFirstTxSuccessAtHighSNR(t *testing.T) {
	code, rm := harqSetup(t)
	h, err := NewHARQProcess(code, rm, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	info := randomBits(r, 256)
	cw, _ := code.Encode(info)
	tx, _ := rm.Match(cw)
	res, err := h.Receive(codewordLLR(tx, 8, r))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !h.Done() || h.TxCount() != 1 {
		t.Fatalf("high-SNR first transmission failed: converged=%v", res.Converged)
	}
	for i := range info {
		if res.Info[i] != info[i] {
			t.Fatal("decoded bits wrong")
		}
	}
}

func TestHARQCombiningGain(t *testing.T) {
	// At an SNR where a single transmission usually fails, two chase-combined
	// copies must usually succeed (3 dB combining gain).
	code, rm := harqSetup(t)
	r := rng.New(2)
	const snr = -2.0
	const trials = 15
	firstTry, afterCombining := 0, 0
	for trial := 0; trial < trials; trial++ {
		h, _ := NewHARQProcess(code, rm, 4)
		info := randomBits(r, 256)
		cw, _ := code.Encode(info)
		tx, _ := rm.Match(cw)
		res, err := h.Receive(codewordLLR(tx, snr, r))
		if err != nil {
			t.Fatal(err)
		}
		if res.Converged {
			firstTry++
			continue
		}
		for !h.Done() && h.TxCount() < 4 {
			res, err = h.Receive(codewordLLR(tx, snr, r))
			if err != nil {
				t.Fatal(err)
			}
		}
		if h.Done() {
			afterCombining++
		}
	}
	if firstTry > trials/2 {
		t.Skipf("SNR too benign for this code: %d/%d first-try", firstTry, trials)
	}
	if afterCombining < (trials-firstTry)/2 {
		t.Fatalf("combining rescued only %d of %d failed blocks", afterCombining, trials-firstTry)
	}
}

func TestHARQExhaustion(t *testing.T) {
	code, rm := harqSetup(t)
	h, _ := NewHARQProcess(code, rm, 2)
	r := rng.New(3)
	info := randomBits(r, 256)
	cw, _ := code.Encode(info)
	tx, _ := rm.Match(cw)
	// Hopeless SNR: both attempts fail, third returns exhaustion.
	for i := 0; i < 2; i++ {
		res, err := h.Receive(codewordLLR(tx, -15, r))
		if err != nil {
			t.Fatal(err)
		}
		if res.Converged {
			t.Skip("decode at -15 dB unexpectedly converged")
		}
	}
	if _, err := h.Receive(codewordLLR(tx, -15, r)); err != ErrHARQExhausted {
		t.Fatalf("got %v want ErrHARQExhausted", err)
	}
}

func TestHARQReset(t *testing.T) {
	code, rm := harqSetup(t)
	h, _ := NewHARQProcess(code, rm, 4)
	r := rng.New(4)
	info := randomBits(r, 256)
	cw, _ := code.Encode(info)
	tx, _ := rm.Match(cw)
	if _, err := h.Receive(codewordLLR(tx, 8, r)); err != nil {
		t.Fatal(err)
	}
	if !h.Done() {
		t.Skip("first decode failed at 8 dB")
	}
	h.Reset()
	if h.Done() || h.TxCount() != 0 {
		t.Fatal("reset did not clear state")
	}
	// The process is reusable for a fresh block.
	info2 := randomBits(r, 256)
	cw2, _ := code.Encode(info2)
	tx2, _ := rm.Match(cw2)
	res, err := h.Receive(codewordLLR(tx2, 8, r))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("reused process failed to decode")
	}
}
