package phy

import (
	"errors"
	"math/cmplx"
)

// CMat is a dense complex matrix stored row-major. MIMO dimensions in this
// repository are small (≤ 8 antennas), so simple dense algorithms are the
// right tool.
type CMat struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMat returns a zero matrix of the given shape.
func NewCMat(rows, cols int) *CMat {
	return &CMat{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (r, c).
func (m *CMat) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *CMat) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy.
func (m *CMat) Clone() *CMat {
	out := NewCMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CMat {
	m := NewCMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Mul returns a·b. It panics on shape mismatch.
func (m *CMat) Mul(b *CMat) *CMat {
	if m.Cols != b.Rows {
		panic("phy: matrix shape mismatch in Mul")
	}
	out := NewCMat(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns a·x for a vector x of length Cols.
func (m *CMat) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic("phy: vector length mismatch in MulVec")
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, a := range row {
			s += a * x[j]
		}
		out[i] = s
	}
	return out
}

// Hermitian returns the conjugate transpose aᴴ.
func (m *CMat) Hermitian() *CMat {
	out := NewCMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// AddScaledIdentity returns m + s·I for square m.
func (m *CMat) AddScaledIdentity(s complex128) *CMat {
	if m.Rows != m.Cols {
		panic("phy: AddScaledIdentity on non-square matrix")
	}
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		out.Data[i*m.Cols+i] += s
	}
	return out
}

// ErrSingularMatrix is returned when inversion fails.
var ErrSingularMatrix = errors.New("phy: singular matrix")

// Inverse returns m⁻¹ via Gauss-Jordan elimination with partial pivoting.
func (m *CMat) Inverse() (*CMat, error) {
	if m.Rows != m.Cols {
		return nil, errors.New("phy: inverse of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Pivot on largest magnitude.
		best := col
		bestMag := cmplx.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if mag := cmplx.Abs(a.At(r, col)); mag > bestMag {
				best, bestMag = r, mag
			}
		}
		if bestMag < 1e-12 {
			return nil, ErrSingularMatrix
		}
		if best != col {
			swapRows(a, col, best)
			swapRows(inv, col, best)
		}
		pivInv := 1 / a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)*pivInv)
			inv.Set(col, j, inv.At(col, j)*pivInv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

// PseudoInverse returns the Moore-Penrose pseudo-inverse
// (aᴴa)⁻¹aᴴ for tall/square full-column-rank matrices, or aᴴ(aaᴴ)⁻¹ for
// wide matrices. Zero-forcing precoders and equalizers are built from this.
func (m *CMat) PseudoInverse() (*CMat, error) {
	if m.Rows >= m.Cols {
		h := m.Hermitian()
		gram := h.Mul(m)
		inv, err := gram.Inverse()
		if err != nil {
			return nil, err
		}
		return inv.Mul(h), nil
	}
	h := m.Hermitian()
	gram := m.Mul(h)
	inv, err := gram.Inverse()
	if err != nil {
		return nil, err
	}
	return h.Mul(inv), nil
}

func swapRows(m *CMat, a, b int) {
	ra := m.Data[a*m.Cols : (a+1)*m.Cols]
	rb := m.Data[b*m.Cols : (b+1)*m.Cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}
