package phy

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"concordia/internal/rng"
)

// LDPCCode is a systematic irregular repeat-accumulate (IRA) LDPC code. The
// parity-check matrix is H = [A | D], where A is a sparse seeded binary
// matrix over the K information bits (column weight ≈ 3, the regime 38.212's
// base graphs live in) and D is the dual-diagonal accumulator over the M
// parity bits. This structure permits O(E) recursive encoding — the same
// property the 3GPP base graphs are designed for — while remaining a genuine
// LDPC code decodable with belief propagation.
//
// This is the documented substitution for the standardized BG1/BG2 tables:
// it preserves the code-rate range, the sparse Tanner-graph structure, and
// the iteration-count-versus-SNR runtime behaviour that Concordia's WCET
// model must predict.
type LDPCCode struct {
	K int // information bits per codeblock
	M int // parity bits per codeblock

	// The Tanner graph below is immutable after construction and therefore
	// shared freely across concurrent decoders.
	//
	// checkVars[r] lists the information-bit columns participating in check
	// row r (the row support of A).
	checkVars [][]int
	// edges[r] lists every variable index (information and parity) adjacent
	// to check r in the full Tanner graph, including accumulator edges.
	edges [][]int

	// scratch pools per-worker message/posterior buffers: Decode borrows one
	// set per call, so concurrent Decode calls on the same code are safe and
	// steady-state decoding stays allocation-free.
	scratch sync.Pool
}

// ldpcScratch is the mutable working state of one belief-propagation run:
// everything Decode writes lives here, keeping LDPCCode itself read-only
// during decoding.
type ldpcScratch struct {
	checkMsg  [][]float64
	vmsg      [][]float64
	posterior []float64
	hard      []byte
}

func (c *LDPCCode) newScratch() *ldpcScratch {
	s := &ldpcScratch{
		checkMsg:  make([][]float64, c.M),
		vmsg:      make([][]float64, c.M),
		posterior: make([]float64, c.N()),
		hard:      make([]byte, c.N()),
	}
	for r := 0; r < c.M; r++ {
		s.checkMsg[r] = make([]float64, len(c.edges[r]))
		s.vmsg[r] = make([]float64, len(c.edges[r]))
	}
	return s
}

// MaxLDPCIterations is the decoder iteration cap, matching the bounded
// iterative decoding FlexRAN uses.
const MaxLDPCIterations = 20

// NewLDPCCode constructs a code with K information bits and M parity bits
// (rate K/(K+M)) using a deterministic seed. K and M must be positive and
// M >= 4 so every check row can receive distinct sockets.
func NewLDPCCode(k, m int, seed uint64) (*LDPCCode, error) {
	if k <= 0 || m < 4 {
		return nil, fmt.Errorf("phy: invalid LDPC dimensions K=%d M=%d", k, m)
	}
	c := &LDPCCode{
		K:         k,
		M:         m,
		checkVars: make([][]int, m),
	}
	r := rng.New(seed)
	// Column weight 3 (or fewer for very small M): each information bit
	// lands in 3 distinct check rows, spread by random placement. One
	// reusable []bool scratch marks the rows taken by the current column
	// (cleared via the picked list, so construction stays O(K·weight)
	// without a fresh map per column).
	weight := 3
	if m < weight {
		weight = m
	}
	seen := make([]bool, m)
	picked := make([]int, 0, weight)
	for col := 0; col < k; col++ {
		picked = picked[:0]
		for len(picked) < weight {
			row := r.Intn(m)
			if seen[row] {
				continue
			}
			seen[row] = true
			picked = append(picked, row)
			c.checkVars[row] = append(c.checkVars[row], col)
		}
		for _, row := range picked {
			seen[row] = false
		}
	}
	// Precompute the full Tanner adjacency: check r connects its info
	// columns, parity r, and parity r-1 (accumulator).
	c.edges = make([][]int, m)
	for row := 0; row < m; row++ {
		es := make([]int, 0, len(c.checkVars[row])+2)
		es = append(es, c.checkVars[row]...)
		es = append(es, k+row)
		if row > 0 {
			es = append(es, k+row-1)
		}
		c.edges[row] = es
	}
	c.scratch.New = func() any { return c.newScratch() }
	return c, nil
}

// N returns the codeword length K+M.
func (c *LDPCCode) N() int { return c.K + c.M }

// Rate returns the code rate K/N.
func (c *LDPCCode) Rate() float64 { return float64(c.K) / float64(c.N()) }

// Encode maps K information bits to an N-bit systematic codeword
// [info | parity]. The accumulator makes parity bit r satisfy
// p_r = p_{r-1} ⊕ (A·u)_r.
func (c *LDPCCode) Encode(info []byte) ([]byte, error) {
	if len(info) != c.K {
		return nil, fmt.Errorf("phy: LDPC encode wants %d bits, got %d", c.K, len(info))
	}
	out := make([]byte, c.N())
	copy(out, info)
	parity := out[c.K:]
	var prev byte
	for r := 0; r < c.M; r++ {
		s := prev
		for _, col := range c.checkVars[r] {
			s ^= info[col] & 1
		}
		parity[r] = s
		prev = s
	}
	return out, nil
}

// CheckSyndrome reports whether the hard-decision word satisfies all parity
// checks.
func (c *LDPCCode) CheckSyndrome(word []byte) bool {
	if len(word) != c.N() {
		return false
	}
	parity := word[c.K:]
	for r := 0; r < c.M; r++ {
		s := parity[r]
		if r > 0 {
			s ^= parity[r-1]
		}
		for _, col := range c.checkVars[r] {
			s ^= word[col] & 1
		}
		if s&1 != 0 {
			return false
		}
	}
	return true
}

// DecodeResult reports the outcome of an LDPC decoding attempt.
type DecodeResult struct {
	Info       []byte // hard-decision information bits
	Iterations int    // BP iterations executed (1..MaxLDPCIterations)
	Converged  bool   // syndrome satisfied before the iteration cap
}

// Decode runs normalized min-sum belief propagation on channel LLRs
// (positive LLR ⇒ bit 0 more likely, the standard convention). It stops
// early when the syndrome check passes; the iteration count is the quantity
// whose SNR dependence the paper's WCET predictor must capture.
//
// Decode borrows per-call working state from an internal pool while reading
// only the immutable Tanner graph, so concurrent Decode calls on a single
// LDPCCode value are safe — this is what lets a transceiver decode a
// transport block's codeblocks in parallel. The result is a pure function
// of the LLRs: the worker that performs the decode never changes the bits
// or iteration count.
func (c *LDPCCode) Decode(llr []float64) (*DecodeResult, error) {
	res := new(DecodeResult)
	if err := c.DecodeInto(res, llr); err != nil {
		return nil, err
	}
	return res, nil
}

// DecodeInto is Decode with a caller-owned result: res.Info's capacity is
// reused across calls, so steady-state decoding of same-size codeblocks
// allocates nothing (DESIGN.md §5f). Concurrent DecodeInto calls on one code
// are safe as long as each goroutine owns its res.
func (c *LDPCCode) DecodeInto(res *DecodeResult, llr []float64) error {
	n := c.N()
	if len(llr) != n {
		return fmt.Errorf("phy: LDPC decode wants %d LLRs, got %d", n, len(llr))
	}
	const alpha = 0.8 // min-sum normalization factor

	sc := c.scratch.Get().(*ldpcScratch)
	defer c.scratch.Put(sc)
	for r := range sc.checkMsg {
		for i := range sc.checkMsg[r] {
			sc.checkMsg[r][i] = 0
		}
	}
	posterior, hard := sc.posterior, sc.hard

	for iter := 1; iter <= MaxLDPCIterations; iter++ {
		// Flooding schedule: refresh posteriors from channel LLRs plus all
		// current check-to-variable messages.
		copy(posterior, llr)
		for r := 0; r < c.M; r++ {
			for i, v := range c.edges[r] {
				posterior[v] += sc.checkMsg[r][i]
			}
		}
		// Check update: normalized min-sum over variable-to-check messages
		// (posterior minus this check's own previous contribution).
		for r := 0; r < c.M; r++ {
			es := c.edges[r]
			vmsg := sc.vmsg[r]
			var sign float64 = 1
			min1, min2 := math.Inf(1), math.Inf(1)
			min1Idx := -1
			for i, v := range es {
				m := posterior[v] - sc.checkMsg[r][i]
				vmsg[i] = m
				a := math.Abs(m)
				if m < 0 {
					sign = -sign
				}
				if a < min1 {
					min2 = min1
					min1 = a
					min1Idx = i
				} else if a < min2 {
					min2 = a
				}
			}
			for i := range es {
				mag := min1
				if i == min1Idx {
					mag = min2
				}
				s := sign
				if vmsg[i] < 0 {
					s = -s
				}
				sc.checkMsg[r][i] = alpha * s * mag
			}
		}
		// Posterior + hard decision + syndrome.
		copy(posterior, llr)
		for r := 0; r < c.M; r++ {
			for i, v := range c.edges[r] {
				posterior[v] += sc.checkMsg[r][i]
			}
		}
		for v := 0; v < n; v++ {
			if posterior[v] < 0 {
				hard[v] = 1
			} else {
				hard[v] = 0
			}
		}
		if c.CheckSyndrome(hard) {
			res.Info = append(res.Info[:0], hard[:c.K]...)
			res.Iterations = iter
			res.Converged = true
			return nil
		}
	}
	res.Info = append(res.Info[:0], hard[:c.K]...)
	res.Iterations = MaxLDPCIterations
	res.Converged = false
	return nil
}

// ErrBlockTooLarge is returned when a requested codeblock exceeds the 38.212
// maximum information block size.
var ErrBlockTooLarge = errors.New("phy: codeblock exceeds 8448-bit LDPC limit")

// MaxCodeblockBits mirrors the 38.212 base-graph-1 limit of 8448 information
// bits per LDPC codeblock.
const MaxCodeblockBits = 8448
