package phy

import (
	"math"
	"testing"

	"concordia/internal/rng"
)

func TestModulationBasics(t *testing.T) {
	for _, m := range []Modulation{QPSK, QAM16, QAM64, QAM256} {
		if !m.Valid() {
			t.Fatalf("%v invalid", m)
		}
		if m.String() == "" {
			t.Fatalf("%v has no name", m)
		}
	}
	if Modulation(3).Valid() {
		t.Fatal("Modulation(3) should be invalid")
	}
}

func TestModulateUnitEnergy(t *testing.T) {
	r := rng.New(1)
	for _, m := range []Modulation{QPSK, QAM16, QAM64, QAM256} {
		bits := randomBits(r, m.BitsPerSymbol()*4096)
		syms, err := m.Modulate(bits)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for _, s := range syms {
			e += real(s)*real(s) + imag(s)*imag(s)
		}
		e /= float64(len(syms))
		if math.Abs(e-1) > 0.05 {
			t.Errorf("%v average energy %v want 1", m, e)
		}
	}
}

func TestModulateConstellationSize(t *testing.T) {
	// Enumerate all bit patterns per symbol; all points must be distinct.
	for _, m := range []Modulation{QPSK, QAM16, QAM64} {
		bps := m.BitsPerSymbol()
		points := map[complex128]bool{}
		for v := 0; v < 1<<bps; v++ {
			bits := make([]byte, bps)
			for b := 0; b < bps; b++ {
				bits[b] = byte((v >> (bps - 1 - b)) & 1)
			}
			syms, err := m.Modulate(bits)
			if err != nil {
				t.Fatal(err)
			}
			points[syms[0]] = true
		}
		if len(points) != 1<<bps {
			t.Errorf("%v has %d distinct points want %d", m, len(points), 1<<bps)
		}
	}
}

func TestModulateWrongLength(t *testing.T) {
	if _, err := QAM16.Modulate(make([]byte, 3)); err == nil {
		t.Fatal("non-multiple bit count accepted")
	}
}

func TestDemodNoiselessRoundTrip(t *testing.T) {
	r := rng.New(2)
	for _, m := range []Modulation{QPSK, QAM16, QAM64, QAM256} {
		bits := randomBits(r, m.BitsPerSymbol()*256)
		syms, _ := m.Modulate(bits)
		llr, err := m.DemodulateLLR(syms, 0.001)
		if err != nil {
			t.Fatal(err)
		}
		got := HardDecision(llr)
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("%v noiseless round trip failed at bit %d", m, i)
			}
		}
	}
}

func TestDemodNoisyQPSK(t *testing.T) {
	r := rng.New(3)
	bits := randomBits(r, 2*20000)
	syms, _ := QPSK.Modulate(bits)
	ch := NewAWGNChannel(8, r)
	rx := ch.Transmit(syms)
	llr, _ := QPSK.DemodulateLLR(rx, ch.NoiseVar)
	errors := 0
	for i, b := range HardDecision(llr) {
		if b != bits[i] {
			errors++
		}
	}
	ber := float64(errors) / float64(len(bits))
	// QPSK at 8 dB Es/N0 (5 dB Eb/N0): BER ~ 6e-3.
	if ber > 0.03 {
		t.Fatalf("QPSK BER %v too high at 8 dB", ber)
	}
}

func TestDemodLLRSignMagnitude(t *testing.T) {
	// A symbol far from the decision boundary must produce larger |LLR|
	// than one near it.
	llrFar, _ := QPSK.DemodulateLLR([]complex128{complex(2, 2)}, 1)
	llrNear, _ := QPSK.DemodulateLLR([]complex128{complex(0.05, 0.05)}, 1)
	if math.Abs(llrFar[0]) <= math.Abs(llrNear[0]) {
		t.Fatal("LLR magnitude does not grow with distance from boundary")
	}
}

func TestHigherOrderNeedsMoreSNR(t *testing.T) {
	r := rng.New(4)
	ber := func(m Modulation, snrDB float64) float64 {
		bits := randomBits(r, m.BitsPerSymbol()*5000)
		syms, _ := m.Modulate(bits)
		ch := NewAWGNChannel(snrDB, r)
		rx := ch.Transmit(syms)
		llr, _ := m.DemodulateLLR(rx, ch.NoiseVar)
		e := 0
		for i, b := range HardDecision(llr) {
			if b != bits[i] {
				e++
			}
		}
		return float64(e) / float64(len(bits))
	}
	if ber(QAM64, 12) <= ber(QPSK, 12) {
		t.Fatal("64QAM should have higher BER than QPSK at equal SNR")
	}
}

func BenchmarkModulate64QAM(b *testing.B) {
	r := rng.New(1)
	bits := randomBits(r, 6*1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = QAM64.Modulate(bits)
	}
}

func BenchmarkDemod64QAM(b *testing.B) {
	r := rng.New(1)
	bits := randomBits(r, 6*1024)
	syms, _ := QAM64.Modulate(bits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = QAM64.DemodulateLLR(syms, 0.01)
	}
}
