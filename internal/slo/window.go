package slo

import (
	"sort"

	"concordia/internal/faults"
	"concordia/internal/sim"
	"concordia/internal/telemetry"
)

// Key identifies one aggregation stream: a cell on a server, mapped to a
// slice. The fault-class dimension is a fixed per-key counter table rather
// than a key component — the taxonomy is small and fixed, so folding it
// into the key would only multiply the key space by a constant.
type Key struct {
	Cell   int32
	Server int32
	Slice  int32
}

func keyLess(a, b Key) bool {
	if a.Cell != b.Cell {
		return a.Cell < b.Cell
	}
	if a.Server != b.Server {
		return a.Server < b.Server
	}
	return a.Slice < b.Slice
}

// keyState holds one key's current tumbling-window sketches/counters plus
// its run totals. Allocated once on the key's first observation; every
// later record and rotation touches only this preallocated state.
type keyState struct {
	key Key

	// Current tumbling window.
	lat      *Sketch // DAG latency
	slack    *Sketch // deadline slack (negative past the deadline)
	attempts uint64
	misses   uint64

	// Run totals (survive rotation; merged at the fleet barrier).
	totLat      *Sketch
	totSlack    *Sketch
	totTask     *Sketch // per-task runtime
	totAttempts uint64
	totMisses   uint64
	totTasks    uint64
	// faultMisses attributes misses to the fault class most recently
	// injected on the cell (within Options.FaultHorizon); index
	// faults.NumClasses counts misses with no recent fault.
	faultMisses [faults.NumClasses + 1]uint64
}

// winCounts is one closed sub-window's miss/attempt counters. The sliding
// burn-rate windows are sums over a ring of these, so sliding state is a
// few words per slice rather than a sketch per offset.
type winCounts struct {
	attempts uint64
	misses   uint64
}

// sliceState aggregates a slice (an Objective) across all its cells.
type sliceState struct {
	obj Objective

	// Current tumbling window, slice-wide.
	lat      *Sketch
	slack    *Sketch
	attempts uint64
	misses   uint64

	// Ring of the last SlowWindows closed sub-windows (index ringNext is
	// the next write slot; unfilled entries are zero-attempt windows).
	ring     []winCounts
	ringNext int

	firing      bool
	alertsFired int

	// Run totals.
	totLat      *Sketch
	totAttempts uint64
	totMisses   uint64
	violations  int // windows whose objective-quantile latency exceeded target
	windows     int // closed windows with at least one attempt
}

// burnPoint is rotation scratch: the just-closed window's burn state per
// slice, stamped into that window's key rows.
type burnPoint struct {
	fast, slow float64
	firing     bool
}

// Tracker is the streaming SLO engine: it consumes per-DAG and per-task
// observations in virtual-time order, rolls them through tumbling windows,
// maintains sliding burn-rate state per slice, and emits EvSLOWindow /
// EvSLOAlert telemetry events at window boundaries. A nil *Tracker is
// valid and every method on it is a no-op — the disabled fast path mirrors
// the telemetry tracer's nil-check discipline.
type Tracker struct {
	opts Options
	trc  *telemetry.Tracer

	index  map[Key]*keyState
	keys   []*keyState // sorted by keyLess; rotation iterates this, not the map
	slices []*sliceState

	winStart sim.Time // start of the current (open) window
	boundary sim.Time // end of the current window
	winSeq   int32    // closed windows so far

	rows        []WindowRow // ring: oldest overwritten first past RowCapacity
	rowNext     int
	rowFull     bool
	rowsEvicted uint64

	alerts        []AlertRow
	alertsDropped uint64

	// Per-cell most recent fault injection, for online miss attribution.
	lastFaultClass []int8
	lastFaultAt    []sim.Time

	burns []burnPoint // rotation scratch, one per slice
}

// New builds a Tracker. trc may be nil (events are then dropped but the
// CSV/report surfaces still work).
func New(opts Options, trc *telemetry.Tracer) *Tracker {
	opts = opts.withDefaults()
	t := &Tracker{
		opts:     opts,
		trc:      trc,
		index:    make(map[Key]*keyState),
		boundary: opts.Window,
		rows:     make([]WindowRow, 0, opts.RowCapacity),
		alerts:   make([]AlertRow, 0, opts.AlertCapacity),
	}
	for _, obj := range opts.Objectives {
		t.slices = append(t.slices, &sliceState{
			obj:    obj,
			lat:    NewSketch(opts.Sketch),
			slack:  NewSketch(opts.Sketch),
			totLat: NewSketch(opts.Sketch),
			ring:   make([]winCounts, opts.SlowWindows),
		})
	}
	t.burns = make([]burnPoint, len(t.slices))
	return t
}

// Options returns the tracker's resolved options.
func (t *Tracker) Options() Options { return t.opts }

// sliceFor clamps a SliceOf result into the configured objective range.
func (t *Tracker) sliceFor(cell int32) int32 {
	s := t.opts.SliceOf(cell)
	if s < 0 {
		s = 0
	}
	if int(s) >= len(t.slices) {
		s = int32(len(t.slices) - 1)
	}
	return s
}

// keyFor returns (creating on first sight) the state for a cell's stream.
func (t *Tracker) keyFor(cell int32) *keyState {
	k := Key{Cell: cell, Server: t.opts.Server, Slice: t.sliceFor(cell)}
	if ks, ok := t.index[k]; ok {
		return ks
	}
	ks := &keyState{
		key:      k,
		lat:      NewSketch(t.opts.Sketch),
		slack:    NewSketch(t.opts.Sketch),
		totLat:   NewSketch(t.opts.Sketch),
		totSlack: NewSketch(t.opts.Sketch),
		totTask:  NewSketch(t.opts.Sketch),
	}
	t.index[k] = ks
	i := sort.Search(len(t.keys), func(i int) bool { return !keyLess(t.keys[i].key, k) })
	t.keys = append(t.keys, nil)
	copy(t.keys[i+1:], t.keys[i:])
	t.keys[i] = ks
	return ks
}

// advance rotates every window boundary crossed by now. Records arrive in
// virtual-time order (the simulator is single-clocked), so rotation is a
// simple while-loop over boundaries.
func (t *Tracker) advance(now sim.Time) {
	for now >= t.boundary {
		t.rotate(t.boundary)
		t.winStart = t.boundary
		t.boundary += t.opts.Window
	}
}

// NoteFault records a fault injection on a cell for online miss
// attribution. Nil-safe.
func (t *Tracker) NoteFault(now sim.Time, cell int32, class faults.Class) {
	if t == nil || cell < 0 || int(class) >= faults.NumClasses {
		return
	}
	for int(cell) >= len(t.lastFaultAt) {
		t.lastFaultAt = append(t.lastFaultAt, 0)
		t.lastFaultClass = append(t.lastFaultClass, -1)
	}
	t.lastFaultAt[cell] = now
	t.lastFaultClass[cell] = int8(class)
}

// recentFault returns the attribution bucket for a miss on cell at now:
// the class of the most recent fault within FaultHorizon, or
// faults.NumClasses when none is recent.
func (t *Tracker) recentFault(now sim.Time, cell int32) int {
	if cell >= 0 && int(cell) < len(t.lastFaultAt) && t.lastFaultClass[cell] >= 0 &&
		now-t.lastFaultAt[cell] <= t.opts.FaultHorizon {
		return int(t.lastFaultClass[cell])
	}
	return faults.NumClasses
}

// RecordDAG observes one completed (or dropped) DAG: its end-to-end
// latency and whether it missed the deadline. Slack is derived as
// Deadline - latency (negative past the deadline). Nil-safe; zero-alloc
// after the cell's first observation.
func (t *Tracker) RecordDAG(now sim.Time, cell int32, latency sim.Time, missed bool) {
	if t == nil {
		return
	}
	t.advance(now)
	lat := int64(latency)
	slack := int64(t.opts.Deadline - latency)
	ks := t.keyFor(cell)
	ks.lat.Record(lat)
	ks.slack.Record(slack)
	ks.totLat.Record(lat)
	ks.totSlack.Record(slack)
	ks.attempts++
	ks.totAttempts++
	ss := t.slices[ks.key.Slice]
	ss.lat.Record(lat)
	ss.slack.Record(slack)
	ss.totLat.Record(lat)
	ss.attempts++
	ss.totAttempts++
	if missed {
		ks.misses++
		ks.totMisses++
		ks.faultMisses[t.recentFault(now, cell)]++
		ss.misses++
		ss.totMisses++
	}
}

// RecordTask observes one task completion's runtime. Task runtimes feed
// the per-key run-total sketch (for the health report's task-latency
// column); they do not roll through windows — the burn-rate rules are
// defined over DAG deadlines.
func (t *Tracker) RecordTask(now sim.Time, cell int32, runtime sim.Time) {
	if t == nil {
		return
	}
	t.advance(now)
	ks := t.keyFor(cell)
	ks.totTask.Record(int64(runtime))
	ks.totTasks++
}

// burnRate converts windowed counters into a budget-relative burn:
// 1.0 means missing at exactly the error budget. Empty windows burn 0.
func burnRate(w winCounts, budget float64) float64 {
	if w.attempts == 0 {
		return 0
	}
	return float64(w.misses) / float64(w.attempts) / budget
}

// ringSum sums the last n closed sub-windows (ending at the most recently
// pushed entry).
func (ss *sliceState) ringSum(n int) winCounts {
	var w winCounts
	i := ss.ringNext
	for k := 0; k < n; k++ {
		i--
		if i < 0 {
			i = len(ss.ring) - 1
		}
		w.attempts += ss.ring[i].attempts
		w.misses += ss.ring[i].misses
	}
	return w
}

// rotate closes the current window at boundary b: pushes slice counters
// into the burn rings, evaluates the multi-window alert rules, emits
// EvSLOWindow/EvSLOAlert, appends key rows, and resets window state in
// place. Zero allocations: sketches Reset, rows land in the preallocated
// ring.
func (t *Tracker) rotate(b sim.Time) {
	seq := t.winSeq
	t.winSeq++
	// Slices first: burn state feeds the key rows below.
	for si, ss := range t.slices {
		ss.ring[ss.ringNext] = winCounts{ss.attempts, ss.misses}
		ss.ringNext++
		if ss.ringNext == len(ss.ring) {
			ss.ringNext = 0
		}
		fast := burnRate(ss.ringSum(t.opts.FastWindows), ss.obj.MissBudget)
		slow := burnRate(ss.ringSum(t.opts.SlowWindows), ss.obj.MissBudget)
		firing := fast >= t.opts.BurnThreshold && slow >= t.opts.BurnThreshold
		t.burns[si] = burnPoint{fast: fast, slow: slow, firing: firing}

		var qLat float64
		if ss.attempts > 0 {
			ss.windows++
			qLat = ss.lat.Quantile(ss.obj.Quantile)
			if qLat > float64(ss.obj.LatencyTarget) {
				ss.violations++
			}
		}
		if ss.totAttempts > 0 {
			t.trc.Emit(telemetry.Event{
				At: b, Dur: sim.Time(int64(qLat)), Kind: telemetry.EvSLOWindow,
				Core: t.opts.Server, Cell: -1, Slot: seq, Task: int32(si),
				A: int64(ss.attempts), B: int64(ss.misses),
			})
		}
		if firing != ss.firing {
			ss.firing = firing
			if firing {
				ss.alertsFired++
			}
			t.appendAlert(AlertRow{
				At: b, Server: t.opts.Server, Slice: int32(si), Window: seq,
				Firing: firing, FastBurn: fast, SlowBurn: slow,
			})
			t.trc.Emit(telemetry.Event{
				At: b, Kind: telemetry.EvSLOAlert,
				Core: t.opts.Server, Cell: -1, Slot: seq, Task: int32(si),
				A: burnMilli(fast), B: int64(boolTo01(firing)),
			})
		}
		ss.attempts, ss.misses = 0, 0
		ss.lat.Reset()
		ss.slack.Reset()
	}
	// Key rows for cells active in this window, in sorted key order.
	for _, ks := range t.keys {
		if ks.attempts > 0 {
			bp := t.burns[ks.key.Slice]
			t.appendRow(WindowRow{
				Start: t.winStart, End: b, Window: seq,
				Cell: ks.key.Cell, Server: ks.key.Server, Slice: ks.key.Slice,
				Attempts: ks.attempts, Misses: ks.misses,
				P50Us:  ks.lat.QuantileUs(0.50),
				P99Us:  ks.lat.QuantileUs(0.99),
				P999Us: ks.lat.QuantileUs(0.999),
				SlackP1Us: ks.slack.QuantileUs(0.01),
				FastBurn:  bp.fast, SlowBurn: bp.slow, Firing: bp.firing,
			})
			ks.attempts, ks.misses = 0, 0
			ks.lat.Reset()
			ks.slack.Reset()
		}
	}
}

// burnMilli clamps a burn rate into int64 milli-units for event args.
func burnMilli(b float64) int64 {
	m := b * 1000
	if m > 1e15 {
		m = 1e15
	}
	return int64(m)
}

func boolTo01(b bool) int {
	if b {
		return 1
	}
	return 0
}

// pending reports whether the open window has unflushed observations.
func (t *Tracker) pending() bool {
	for _, ss := range t.slices {
		if ss.attempts > 0 {
			return true
		}
	}
	return false
}

// Flush advances to end and closes the final (possibly partial) window if
// it has observations. Call once when the run ends, before exporting or
// merging. Nil-safe and idempotent.
func (t *Tracker) Flush(end sim.Time) {
	if t == nil {
		return
	}
	t.advance(end)
	if t.pending() && end > t.winStart {
		t.rotate(end)
		t.winStart = end
		t.boundary = end + t.opts.Window
	}
}
