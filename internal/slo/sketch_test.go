package slo

import (
	"math"
	"testing"

	"concordia/internal/rng"
	"concordia/internal/stats"
)

// accuracy quantiles chosen so q*(n-1) is (near-)integral at n=1001: the
// exact oracle then returns an order statistic, not an interpolation, and
// the sketch's relative-error bound is directly checkable against it.
var accQs = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99}

const accN = 1001

// checkAccuracy records vals into a fresh default sketch and asserts every
// tested quantile estimate is within the relative-error bound of the exact
// order statistic. slop widens the bound for values the zero bucket
// absorbs (|v| < MinValue estimates as 0).
func checkAccuracy(t *testing.T, name string, vals []int64) {
	t.Helper()
	s := NewSketch(SketchConfig{})
	fs := make([]float64, len(vals))
	for i, v := range vals {
		s.Record(v)
		fs[i] = float64(v)
	}
	if s.Clamped() != 0 {
		t.Fatalf("%s: %d values clamped out of configured range; test must stay in range", name, s.Clamped())
	}
	alpha := s.Config().Alpha
	for _, q := range accQs {
		exact := stats.Quantile(fs, q)
		got := s.Quantile(q)
		// The bound |est-x| <= alpha*|x| holds for |x| >= MinValue; values
		// below it collapse into the exact-zero bucket, whose absolute
		// error is below MinValue by construction.
		bound := alpha*math.Abs(exact) + 1e-9*math.Abs(exact)
		if math.Abs(exact) < s.Config().MinValue {
			bound += s.Config().MinValue
		}
		if math.Abs(got-exact) > bound {
			t.Errorf("%s q=%v: sketch %.6g vs exact %.6g (err %.3g > bound %.3g)",
				name, q, got, exact, math.Abs(got-exact), bound)
		}
	}
	if got, want := s.Quantile(0), float64(s.Min()); got != want {
		t.Errorf("%s: Quantile(0)=%v, want exact min %v", name, got, want)
	}
	if got, want := s.Quantile(1), float64(s.Max()); got != want {
		t.Errorf("%s: Quantile(1)=%v, want exact max %v", name, got, want)
	}
}

func TestSketchAccuracyUniform(t *testing.T) {
	r := rng.New(0x51e7c4)
	vals := make([]int64, accN)
	for i := range vals {
		vals[i] = int64(r.Uniform(1e3, 1e7)) // 1 µs .. 10 ms
	}
	checkAccuracy(t, "uniform", vals)
}

func TestSketchAccuracyLognormal(t *testing.T) {
	r := rng.New(0x10960)
	vals := make([]int64, accN)
	for i := range vals {
		v := r.LogNormal(math.Log(200e3), 1.0) // median 200 µs, heavy tail
		if v < 1e3 {
			v = 1e3
		}
		if v > 15e9 {
			v = 15e9
		}
		vals[i] = int64(v)
	}
	checkAccuracy(t, "lognormal", vals)
}

func TestSketchAccuracyAdversarial(t *testing.T) {
	// Adversarial for a log-linear sketch: values pinned to bucket
	// boundaries (powers of gamma), massive duplication at a single value,
	// and mixed signs straddling the zero bucket.
	gamma := NewSketch(SketchConfig{}).gamma
	var vals []int64
	v := 2e3
	for len(vals) < accN/3 {
		vals = append(vals, int64(v))
		v *= gamma * gamma // every other bucket boundary
		if v > 1e9 {
			v = 2e3
		}
	}
	for len(vals) < 2*accN/3 {
		vals = append(vals, 777_000) // one hot value
	}
	r := rng.New(0xadf)
	for len(vals) < accN {
		mag := r.Uniform(1e3, 1e6)
		if r.Bool(0.5) {
			mag = -mag
		}
		vals = append(vals, int64(mag))
	}
	checkAccuracy(t, "adversarial", vals)
}

func TestSketchAccuracySlack(t *testing.T) {
	// Deadline-slack shape: mostly positive slack, a tail of negative
	// (missed) values — exercises the mirrored store around the rank walk.
	r := rng.New(0x51acc)
	deadline := 2e6 // 2 ms
	vals := make([]int64, accN)
	for i := range vals {
		lat := r.LogNormal(math.Log(1.2e6), 0.5)
		vals[i] = int64(deadline - lat)
	}
	checkAccuracy(t, "slack", vals)
}

// mergeInto clones src's recorded stream into a fresh sketch via Merge.
func mustMerge(t *testing.T, dst, src *Sketch) {
	t.Helper()
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
}

func sketchEqual(a, b *Sketch) bool {
	if a.zero != b.zero || a.count != b.count || a.sum != b.sum ||
		a.clamped != b.clamped || a.Min() != b.Min() || a.Max() != b.Max() {
		return false
	}
	for i := range a.pos {
		if a.pos[i] != b.pos[i] || a.neg[i] != b.neg[i] {
			return false
		}
	}
	return true
}

func TestSketchMergeAssociative(t *testing.T) {
	r := rng.New(0xa550c)
	parts := make([]*Sketch, 3)
	for p := range parts {
		parts[p] = NewSketch(SketchConfig{})
		for i := 0; i < 400; i++ {
			v := int64(r.Uniform(-1e6, 1e7))
			parts[p].Record(v)
		}
	}
	// (a+b)+c
	left := NewSketch(SketchConfig{})
	mustMerge(t, left, parts[0])
	mustMerge(t, left, parts[1])
	mustMerge(t, left, parts[2])
	// a+(b+c)
	bc := NewSketch(SketchConfig{})
	mustMerge(t, bc, parts[1])
	mustMerge(t, bc, parts[2])
	right := NewSketch(SketchConfig{})
	mustMerge(t, right, parts[0])
	mustMerge(t, right, bc)
	// c+b+a (commuted)
	rev := NewSketch(SketchConfig{})
	mustMerge(t, rev, parts[2])
	mustMerge(t, rev, parts[1])
	mustMerge(t, rev, parts[0])
	if !sketchEqual(left, right) {
		t.Error("merge is not associative: (a+b)+c != a+(b+c)")
	}
	if !sketchEqual(left, rev) {
		t.Error("merge is not commutative: a+b+c != c+b+a")
	}
	// And the merged sketch is identical to the concatenated stream.
	direct := NewSketch(SketchConfig{})
	r2 := rng.New(0xa550c)
	for p := 0; p < 3; p++ {
		for i := 0; i < 400; i++ {
			direct.Record(int64(r2.Uniform(-1e6, 1e7)))
		}
	}
	if !sketchEqual(left, direct) {
		t.Error("merged sketch differs from sketch of concatenated stream")
	}
}

func TestSketchMergeConfigMismatch(t *testing.T) {
	a := NewSketch(SketchConfig{})
	b := NewSketch(SketchConfig{Alpha: 0.02})
	b.Record(5e5)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging sketches with different configs should error")
	}
	// Merging an empty sketch is a no-op regardless of config.
	if err := a.Merge(NewSketch(SketchConfig{Alpha: 0.02})); err != nil {
		t.Fatalf("merging an empty mismatched sketch should be a no-op, got %v", err)
	}
}

func TestSketchClampCounted(t *testing.T) {
	s := NewSketch(SketchConfig{})
	s.Record(int64(32e9)) // above MaxValue
	if s.Clamped() != 1 {
		t.Fatalf("Clamped=%d, want 1", s.Clamped())
	}
	if s.Quantile(0.5) <= 0 {
		t.Fatal("clamped value should still land in the outermost bucket")
	}
}

func TestSketchResetReuses(t *testing.T) {
	s := NewSketch(SketchConfig{})
	for i := 0; i < 100; i++ {
		s.Record(int64(1e5 + float64(i)*1e4))
	}
	s.Reset()
	if s.Count() != 0 || s.Sum() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("Reset did not empty the sketch")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Record(2e5)
		s.Reset()
	})
	if allocs != 0 {
		t.Fatalf("Record+Reset allocated %.1f/op, want 0", allocs)
	}
}

func TestSketchRecordZeroAlloc(t *testing.T) {
	s := NewSketch(SketchConfig{})
	v := int64(1e5)
	allocs := testing.AllocsPerRun(1000, func() {
		s.Record(v)
		v += 997
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f/op, want 0", allocs)
	}
}

func BenchmarkSketchRecord(b *testing.B) {
	s := NewSketch(SketchConfig{})
	b.ReportAllocs()
	v := int64(1e5)
	for i := 0; i < b.N; i++ {
		s.Record(v)
		v = v*1103515245/1103515244 + 12345 // cheap deterministic walk
		if v > 15e9 {
			v = 1e5
		}
	}
}

func BenchmarkSketchQuantile(b *testing.B) {
	s := NewSketch(SketchConfig{})
	r := rng.New(7)
	for i := 0; i < 10000; i++ {
		s.Record(int64(r.Uniform(1e3, 1e9)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.999)
	}
}

func BenchmarkSketchMerge(b *testing.B) {
	a := NewSketch(SketchConfig{})
	c := NewSketch(SketchConfig{})
	r := rng.New(9)
	for i := 0; i < 10000; i++ {
		c.Record(int64(r.Uniform(1e3, 1e9)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Merge(c)
	}
}
