// Package slo is the streaming SLO plane: deterministic mergeable
// quantile sketches over task/DAG latency and deadline slack, a
// virtual-time windowed aggregation engine keyed by (cell, server, slice)
// with per-fault-class miss counters, and latency-quantile / error-budget
// objectives evaluated with multi-window burn-rate rules. Where the PR 3
// tracer and the PR 5 autopsy explain a run after it ends, this package
// answers "are we burning the error budget right now?" while the run is
// still in flight — the data plane ROADMAP item 4's closed-loop controller
// consumes.
//
// Everything follows the repo's determinism contract (DESIGN.md §5b): no
// host clock, virtual timestamps only, sorted iteration, and serial
// fleet-level reductions, so every export is byte-identical across runs and
// across -workers counts. The record path follows the §5f memory
// discipline: after a key's first observation, recording and window
// rotation allocate nothing.
package slo

import (
	"fmt"
	"math"

	"concordia/internal/sim"
)

// SketchConfig fixes a sketch's resolution. Two sketches merge only when
// their configs are identical — the bucket layout is part of the merge
// contract.
type SketchConfig struct {
	// Alpha is the relative-error bound: a quantile estimate q̂ for a true
	// value x in [MinValue, MaxValue] satisfies |q̂-x| <= Alpha*x.
	// 0 selects DefaultAlpha.
	Alpha float64
	// MinValue is the smallest magnitude (in ns) the log-linear buckets
	// resolve; values in (-MinValue, MinValue) collapse into an exact zero
	// bucket whose estimate is 0. 0 selects DefaultMinValue.
	MinValue float64
	// MaxValue is the largest magnitude (in ns) resolved at the error
	// bound; records beyond it clamp into the outermost bucket and are
	// counted in Clamped. 0 selects DefaultMaxValue.
	MaxValue float64
}

// Default sketch resolution: 1% relative error over [1 µs, 16 s] — six
// decades around the millisecond-scale slot deadlines, ~965 buckets per
// sign at ~7.7 KB per store (uint32 counts).
const (
	DefaultAlpha    = 0.01
	DefaultMinValue = 1e3  // 1 µs in ns
	DefaultMaxValue = 16e9 // 16 s in ns
)

func (c SketchConfig) withDefaults() SketchConfig {
	if c.Alpha <= 0 {
		c.Alpha = DefaultAlpha
	}
	if c.MinValue <= 0 {
		c.MinValue = DefaultMinValue
	}
	if c.MaxValue <= c.MinValue {
		c.MaxValue = DefaultMaxValue
	}
	return c
}

// Sketch is a DDSketch-style log-linear quantile sketch over int64
// nanosecond values (sim.Time durations). Bucket i covers
// (gamma^(i-1), gamma^i] with gamma = (1+alpha)/(1-alpha); the bucket
// midpoint estimate 2*gamma^i/(gamma+1) is within alpha relative error of
// every value in the bucket. Negative values (deadline slack past the
// deadline) land in a mirrored store.
//
// Buckets are fixed flat arrays sized at construction, so Record touches
// only preallocated memory (§5f: zero steady-state allocations), bucket
// counts are integers (merging is exactly associative and commutative),
// and the index of a value is a pure function of the value — a merged
// sketch is byte-identical to the sketch of the concatenated streams.
type Sketch struct {
	cfg      SketchConfig
	gamma    float64
	invLogG  float64 // 1 / ln(gamma)
	minIdx   int     // index of the bucket containing MinValue
	pos, neg []uint32
	zero     uint64 // |v| < MinValue, including exact zeros
	count    uint64
	sum      int64 // exact integer sum; associative under merge
	min, max int64 // exact extrema (valid when count > 0)
	// clamped counts records outside [MinValue, MaxValue] magnitude; they
	// still land in the outermost bucket so quantiles stay defined, but the
	// error bound does not cover them.
	clamped uint64
}

// NewSketch builds an empty sketch with the given resolution.
func NewSketch(cfg SketchConfig) *Sketch {
	cfg = cfg.withDefaults()
	gamma := (1 + cfg.Alpha) / (1 - cfg.Alpha)
	invLogG := 1 / math.Log(gamma)
	minIdx := int(math.Ceil(math.Log(cfg.MinValue) * invLogG))
	maxIdx := int(math.Ceil(math.Log(cfg.MaxValue) * invLogG))
	n := maxIdx - minIdx + 1
	return &Sketch{
		cfg:     cfg,
		gamma:   gamma,
		invLogG: invLogG,
		minIdx:  minIdx,
		pos:     make([]uint32, n),
		neg:     make([]uint32, n),
	}
}

// Config returns the sketch's resolved resolution.
func (s *Sketch) Config() SketchConfig { return s.cfg }

// bucketOf maps a magnitude (>= MinValue by construction of the callers)
// to its store slot, clamping out-of-range indices into the outermost
// buckets.
func (s *Sketch) bucketOf(mag float64) (slot int, clamped bool) {
	i := int(math.Ceil(math.Log(mag)*s.invLogG)) - s.minIdx
	if i < 0 {
		return 0, true
	}
	if i >= len(s.pos) {
		return len(s.pos) - 1, true
	}
	return i, false
}

// Record adds one value (nanoseconds; negative for slack past the
// deadline). The hot path is branch + log + array increment: no
// allocation, no map, no float accumulation.
func (s *Sketch) Record(v int64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	mag := float64(v)
	store := s.pos
	if v < 0 {
		mag = -mag
		store = s.neg
	}
	if mag < s.cfg.MinValue {
		s.zero++
		return
	}
	slot, clamped := s.bucketOf(mag)
	store[slot]++
	if clamped {
		s.clamped++
	}
}

// RecordTime adds one sim.Time duration.
func (s *Sketch) RecordTime(d sim.Time) { s.Record(int64(d)) }

// Count returns the number of recorded values.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the exact integer sum of recorded values (ns).
func (s *Sketch) Sum() int64 { return s.sum }

// Min and Max return the exact extrema; zero when the sketch is empty.
func (s *Sketch) Min() int64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the exact maximum recorded value.
func (s *Sketch) Max() int64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Clamped returns how many records fell outside the configured magnitude
// range (the error bound does not cover them).
func (s *Sketch) Clamped() uint64 { return s.clamped }

// estimate returns the midpoint value of store slot i: within Alpha
// relative error of every value the bucket covers.
func (s *Sketch) estimate(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i+s.minIdx)) / (s.gamma + 1)
}

// Quantile estimates the q-quantile (the 0-based floor(q*(count-1))-th
// order statistic) in nanoseconds. q is clamped to [0, 1]; an empty sketch
// returns 0. The estimate is within the configured relative-error bound of
// the true order statistic whenever that value's magnitude lies in
// [MinValue, MaxValue]; exact extrema sharpen the outermost answers.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.min)
	}
	if q >= 1 {
		return float64(s.max)
	}
	rank := uint64(q * float64(s.count-1)) // 0-based target order statistic
	// Walk ascending value order: most-negative first (neg store from the
	// top), then the zero bucket, then positives.
	var cum uint64
	for i := len(s.neg) - 1; i >= 0; i-- {
		cum += uint64(s.neg[i])
		if cum > rank {
			return -s.estimate(i)
		}
	}
	cum += s.zero
	if cum > rank {
		return 0
	}
	for i := 0; i < len(s.pos); i++ {
		cum += uint64(s.pos[i])
		if cum > rank {
			return s.estimate(i)
		}
	}
	return float64(s.max)
}

// QuantileUs estimates the q-quantile in microseconds.
func (s *Sketch) QuantileUs(q float64) float64 { return s.Quantile(q) / 1e3 }

// Merge folds o into s. Both sketches must share a config (the bucket
// layout is the merge contract); all state is integer, so merging is
// exactly associative and commutative and a serial fleet reduction is
// byte-identical at any worker count.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.count == 0 {
		return nil
	}
	if s.cfg != o.cfg {
		return fmt.Errorf("slo: merging sketches with different configs (%+v vs %+v)", s.cfg, o.cfg)
	}
	for i, c := range o.pos {
		s.pos[i] += c
	}
	for i, c := range o.neg {
		s.neg[i] += c
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.zero += o.zero
	s.count += o.count
	s.sum += o.sum
	s.clamped += o.clamped
	return nil
}

// Reset empties the sketch in place, retaining its bucket arrays — the
// window-rotation path reuses sketches without allocating.
func (s *Sketch) Reset() {
	clear(s.pos)
	clear(s.neg)
	s.zero, s.count, s.clamped = 0, 0, 0
	s.sum, s.min, s.max = 0, 0, 0
}
