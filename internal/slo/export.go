package slo

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"concordia/internal/faults"
	"concordia/internal/sim"
)

// WindowRow is one (window, cell) line of the slo CSV stream. Quantiles
// are sketch estimates in microseconds; burns are the cell's slice burn
// state at that window boundary.
type WindowRow struct {
	Start, End sim.Time
	Window     int32
	Cell       int32
	Server     int32
	Slice      int32
	Attempts   uint64
	Misses     uint64
	P50Us      float64
	P99Us      float64
	P999Us     float64
	SlackP1Us  float64
	FastBurn   float64
	SlowBurn   float64
	Firing     bool
}

// AlertRow is one burn-rate alert transition on the alert timeline.
type AlertRow struct {
	At       sim.Time
	Server   int32
	Slice    int32
	Window   int32
	Firing   bool
	FastBurn float64
	SlowBurn float64
}

// appendRow lands a row in the bounded ring: the oldest row is overwritten
// once RowCapacity is exceeded (and counted), so long fleet runs cannot
// grow the table without bound.
func (t *Tracker) appendRow(r WindowRow) {
	if len(t.rows) < cap(t.rows) {
		t.rows = append(t.rows, r)
		return
	}
	t.rows[t.rowNext] = r
	t.rowNext++
	if t.rowNext == len(t.rows) {
		t.rowNext = 0
	}
	t.rowFull = true
	t.rowsEvicted++
}

// appendAlert lands an alert on the timeline; past AlertCapacity new
// transitions are dropped (and counted) — the head of the timeline is the
// interesting part for lead-time analysis.
func (t *Tracker) appendAlert(a AlertRow) {
	if len(t.alerts) < cap(t.alerts) {
		t.alerts = append(t.alerts, a)
		return
	}
	t.alertsDropped++
}

// Rows returns the retained window rows, oldest first.
func (t *Tracker) Rows() []WindowRow {
	if t == nil {
		return nil
	}
	if !t.rowFull {
		return append([]WindowRow(nil), t.rows...)
	}
	out := make([]WindowRow, 0, len(t.rows))
	out = append(out, t.rows[t.rowNext:]...)
	out = append(out, t.rows[:t.rowNext]...)
	return out
}

// RowsEvicted returns how many rows the ring overwrote.
func (t *Tracker) RowsEvicted() uint64 {
	if t == nil {
		return 0
	}
	return t.rowsEvicted
}

// Alerts returns the alert timeline in emission order.
func (t *Tracker) Alerts() []AlertRow {
	if t == nil {
		return nil
	}
	return append([]AlertRow(nil), t.alerts...)
}

// AlertsDropped returns how many alert transitions overflowed the timeline.
func (t *Tracker) AlertsDropped() uint64 {
	if t == nil {
		return 0
	}
	return t.alertsDropped
}

// FirstFiring returns the virtual time of the first firing alert
// transition, and whether one exists.
func (t *Tracker) FirstFiring() (sim.Time, bool) {
	if t == nil {
		return 0, false
	}
	for _, a := range t.alerts {
		if a.Firing {
			return a.At, true
		}
	}
	return 0, false
}

// AlertsFired returns the total number of firing transitions across all
// slices (including any merged in from other trackers).
func (t *Tracker) AlertsFired() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, ss := range t.slices {
		n += ss.alertsFired
	}
	return n
}

// SliceSummary is one slice's run-level SLO accounting.
type SliceSummary struct {
	Slice       int32
	Name        string
	Quantile    float64
	TargetUs    float64
	MissBudget  float64
	Attempts    uint64
	Misses      uint64
	MissRate    float64
	// BudgetRemaining is 1 - MissRate/MissBudget: the unconsumed fraction
	// of the error budget (negative when overdrawn).
	BudgetRemaining float64
	// QLatencyUs is the objective quantile of the run-total latency sketch.
	QLatencyUs  float64
	AlertsFired int
	Violations  int
	Windows     int
	Firing      bool
}

// SliceSummaries returns per-slice run totals in slice order.
func (t *Tracker) SliceSummaries() []SliceSummary {
	if t == nil {
		return nil
	}
	out := make([]SliceSummary, 0, len(t.slices))
	for si, ss := range t.slices {
		s := SliceSummary{
			Slice: int32(si), Name: ss.obj.Name,
			Quantile: ss.obj.Quantile, TargetUs: ss.obj.LatencyTarget.Us(),
			MissBudget: ss.obj.MissBudget,
			Attempts:   ss.totAttempts, Misses: ss.totMisses,
			AlertsFired: ss.alertsFired, Violations: ss.violations,
			Windows: ss.windows, Firing: ss.firing,
		}
		if ss.totAttempts > 0 {
			s.MissRate = float64(ss.totMisses) / float64(ss.totAttempts)
			s.QLatencyUs = ss.totLat.Quantile(ss.obj.Quantile) / 1e3
		}
		s.BudgetRemaining = 1 - s.MissRate/ss.obj.MissBudget
		out = append(out, s)
	}
	return out
}

// CellSummary is one key's run-level accounting, used by the health
// report's top-burning-cells table.
type CellSummary struct {
	Key         Key
	Attempts    uint64
	Misses      uint64
	MissRate    float64
	P999Us      float64 // run-total latency p999
	TaskP99Us   float64 // run-total task-runtime p99
	WorstSlack  sim.Time
	FaultMisses [faults.NumClasses + 1]uint64
}

// CellSummaries returns per-key run totals sorted by miss rate descending
// (ties broken by key order) — the health report's burn ranking.
func (t *Tracker) CellSummaries() []CellSummary {
	if t == nil {
		return nil
	}
	out := make([]CellSummary, 0, len(t.keys))
	for _, ks := range t.keys {
		c := CellSummary{
			Key: ks.key, Attempts: ks.totAttempts, Misses: ks.totMisses,
			FaultMisses: ks.faultMisses,
		}
		if ks.totAttempts > 0 {
			c.MissRate = float64(ks.totMisses) / float64(ks.totAttempts)
			c.P999Us = ks.totLat.QuantileUs(0.999)
			c.WorstSlack = sim.Time(ks.totSlack.Min())
		}
		if ks.totTasks > 0 {
			c.TaskP99Us = ks.totTask.QuantileUs(0.99)
		}
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].MissRate != out[j].MissRate {
			return out[i].MissRate > out[j].MissRate
		}
		return keyLess(out[i].Key, out[j].Key)
	})
	return out
}

// sloCSVHeader is the slo CSV schema (documented in EXPERIMENTS.md).
const sloCSVHeader = "window_start_us,window_end_us,window,cell,server,slice,attempts,misses,p50_us,p99_us,p999_us,slack_p1_us,fast_burn,slow_burn,firing"

func fmtG(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV streams the retained window rows as CSV, oldest first.
func (t *Tracker) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, sloCSVHeader)
	emit := func(r WindowRow) {
		fmt.Fprintf(bw, "%s,%s,%d,%d,%d,%d,%d,%d,%s,%s,%s,%s,%s,%s,%d\n",
			fmtG(r.Start.Us()), fmtG(r.End.Us()), r.Window, r.Cell, r.Server,
			r.Slice, r.Attempts, r.Misses,
			fmtG(r.P50Us), fmtG(r.P99Us), fmtG(r.P999Us), fmtG(r.SlackP1Us),
			fmtG(r.FastBurn), fmtG(r.SlowBurn), boolTo01(r.Firing))
	}
	if t != nil {
		if !t.rowFull {
			for _, r := range t.rows {
				emit(r)
			}
		} else {
			for _, r := range t.rows[t.rowNext:] {
				emit(r)
			}
			for _, r := range t.rows[:t.rowNext] {
				emit(r)
			}
		}
	}
	return bw.Flush()
}

// WriteHealthReport writes the markdown fleet-health report: per-slice
// budget state, top burning cells, online fault attribution, and the alert
// timeline.
func (t *Tracker) WriteHealthReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# SLO health report")
	fmt.Fprintln(bw)
	if t == nil {
		fmt.Fprintln(bw, "SLO tracking disabled.")
		return bw.Flush()
	}
	fmt.Fprintf(bw, "window %s · burn threshold %s (fast %d / slow %d windows)\n",
		fmtDur(t.opts.Window), fmtG(t.opts.BurnThreshold),
		t.opts.FastWindows, t.opts.SlowWindows)
	fmt.Fprintln(bw)

	fmt.Fprintln(bw, "## Slices")
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "| slice | objective | target_us | budget | attempts | misses | miss_rate | budget_left | q_latency_us | windows | violations | alerts |")
	fmt.Fprintln(bw, "|---|---|---|---|---|---|---|---|---|---|---|---|")
	for _, s := range t.SliceSummaries() {
		fmt.Fprintf(bw, "| %d (%s) | p%s | %s | %s | %d | %d | %s | %s | %s | %d | %d | %d |\n",
			s.Slice, s.Name, fmtG(s.Quantile*100), fmtG(s.TargetUs),
			fmtG(s.MissBudget), s.Attempts, s.Misses, fmtG(s.MissRate),
			fmtG(s.BudgetRemaining), fmtG(s.QLatencyUs),
			s.Windows, s.Violations, s.AlertsFired)
	}
	fmt.Fprintln(bw)

	cells := t.CellSummaries()
	top := cells
	if len(top) > 10 {
		top = top[:10]
	}
	fmt.Fprintf(bw, "## Top burning cells (%d of %d)\n", len(top), len(cells))
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "| cell | server | slice | attempts | misses | miss_rate | p999_us | task_p99_us | worst_slack_us |")
	fmt.Fprintln(bw, "|---|---|---|---|---|---|---|---|---|")
	for _, c := range top {
		fmt.Fprintf(bw, "| %d | %d | %d | %d | %d | %s | %s | %s | %s |\n",
			c.Key.Cell, c.Key.Server, c.Key.Slice, c.Attempts, c.Misses,
			fmtG(c.MissRate), fmtG(c.P999Us), fmtG(c.TaskP99Us),
			fmtG(c.WorstSlack.Us()))
	}
	fmt.Fprintln(bw)

	var fm [faults.NumClasses + 1]uint64
	var totalMisses uint64
	for _, c := range cells {
		for i, n := range c.FaultMisses {
			fm[i] += n
		}
		totalMisses += c.Misses
	}
	fmt.Fprintln(bw, "## Miss attribution (online heuristic)")
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "Misses within %s of a fault injection on the same cell are credited to that fault class; the autopsy's post-hoc partition is the ground truth.\n", fmtDur(t.opts.FaultHorizon))
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "| fault_class | misses |")
	fmt.Fprintln(bw, "|---|---|")
	for i := 0; i < faults.NumClasses; i++ {
		if fm[i] > 0 {
			fmt.Fprintf(bw, "| %s | %d |\n", faults.Class(i), fm[i])
		}
	}
	fmt.Fprintf(bw, "| none | %d |\n", fm[faults.NumClasses])
	fmt.Fprintln(bw)

	fmt.Fprintf(bw, "## Alert timeline (%d transitions", len(t.alerts))
	if t.alertsDropped > 0 {
		fmt.Fprintf(bw, ", %d dropped", t.alertsDropped)
	}
	fmt.Fprintln(bw, ")")
	fmt.Fprintln(bw)
	if len(t.alerts) == 0 {
		fmt.Fprintln(bw, "No burn-rate alerts fired.")
	} else {
		fmt.Fprintln(bw, "| t_us | server | slice | window | transition | fast_burn | slow_burn |")
		fmt.Fprintln(bw, "|---|---|---|---|---|---|---|")
		for _, a := range t.alerts {
			tr := "clear"
			if a.Firing {
				tr = "FIRE"
			}
			fmt.Fprintf(bw, "| %s | %d | %d | %d | %s | %s | %s |\n",
				fmtG(a.At.Us()), a.Server, a.Slice, a.Window, tr,
				fmtG(a.FastBurn), fmtG(a.SlowBurn))
		}
	}
	if t.rowsEvicted > 0 {
		fmt.Fprintln(bw)
		fmt.Fprintf(bw, "(%d oldest window rows evicted from the ring)\n", t.rowsEvicted)
	}
	return bw.Flush()
}

func fmtDur(d sim.Time) string { return fmtG(d.Us()) + "us" }

// MergeRemapped folds a flushed per-server tracker into this fleet-level
// one: run totals merge sketch-wise, window rows and alerts are remapped
// (local cell -> cells[local], server stamped, times offset) and appended.
// Callers must invoke it serially in a fixed (epoch, server) order — the
// sketches make the fold associative, the serial order makes it
// byte-identical at any worker count. cells maps the source tracker's
// local cell indices to global IDs; nil keeps cell IDs as-is.
func (t *Tracker) MergeRemapped(src *Tracker, cells []int32, server int32, offset sim.Time) error {
	if t == nil || src == nil {
		return nil
	}
	if len(src.slices) != len(t.slices) {
		return fmt.Errorf("slo: merging trackers with %d vs %d slices", len(src.slices), len(t.slices))
	}
	mapCell := func(c int32) int32 {
		if cells != nil && c >= 0 && int(c) < len(cells) {
			return cells[c]
		}
		return c
	}
	for _, sk := range src.keys {
		k := Key{Cell: mapCell(sk.key.Cell), Server: server, Slice: sk.key.Slice}
		dk, ok := t.index[k]
		if !ok {
			dk = &keyState{
				key:      k,
				lat:      NewSketch(t.opts.Sketch),
				slack:    NewSketch(t.opts.Sketch),
				totLat:   NewSketch(t.opts.Sketch),
				totSlack: NewSketch(t.opts.Sketch),
				totTask:  NewSketch(t.opts.Sketch),
			}
			t.index[k] = dk
			i := sort.Search(len(t.keys), func(i int) bool { return !keyLess(t.keys[i].key, k) })
			t.keys = append(t.keys, nil)
			copy(t.keys[i+1:], t.keys[i:])
			t.keys[i] = dk
		}
		if err := dk.totLat.Merge(sk.totLat); err != nil {
			return err
		}
		if err := dk.totSlack.Merge(sk.totSlack); err != nil {
			return err
		}
		if err := dk.totTask.Merge(sk.totTask); err != nil {
			return err
		}
		dk.totAttempts += sk.totAttempts
		dk.totMisses += sk.totMisses
		dk.totTasks += sk.totTasks
		for i, n := range sk.faultMisses {
			dk.faultMisses[i] += n
		}
	}
	for si, ss := range src.slices {
		ds := t.slices[si]
		if err := ds.totLat.Merge(ss.totLat); err != nil {
			return err
		}
		ds.totAttempts += ss.totAttempts
		ds.totMisses += ss.totMisses
		ds.alertsFired += ss.alertsFired
		ds.violations += ss.violations
		ds.windows += ss.windows
	}
	for _, r := range src.Rows() {
		r.Cell = mapCell(r.Cell)
		r.Server = server
		r.Start += offset
		r.End += offset
		t.appendRow(r)
	}
	for _, a := range src.alerts {
		a.Server = server
		a.At += offset
		t.appendAlert(a)
	}
	t.alertsDropped += src.alertsDropped
	t.rowsEvicted += src.rowsEvicted
	return nil
}
