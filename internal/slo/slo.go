package slo

import (
	"concordia/internal/sim"
)

// Objective is one slice's service-level objective: a latency-quantile
// target plus a deadline-miss error budget evaluated by burn-rate rules.
type Objective struct {
	// Name labels the slice in reports ("urllc", "embb").
	Name string
	// Quantile is the latency quantile the target applies to (e.g. 0.999).
	Quantile float64
	// LatencyTarget is the ceiling for that quantile; 0 means "the DAG
	// deadline" (resolved from Options.Deadline at construction).
	LatencyTarget sim.Time
	// MissBudget is the tolerated deadline-miss fraction (the error
	// budget): burn rate = observed miss rate / MissBudget.
	MissBudget float64
}

// Slice presets. URLLC carries the paper's five-nines ambition scaled to
// windowed observation (a 1e-4 budget burns at 100x under a 1% miss rate,
// so chaos-grade degradation alerts within one fast window); eMBB tolerates
// two orders of magnitude more.
func URLLCObjective() Objective {
	return Objective{Name: "urllc", Quantile: 0.999, MissBudget: 1e-4}
}

// EMBBObjective is the broadband slice preset.
func EMBBObjective() Objective {
	return Objective{Name: "embb", Quantile: 0.99, MissBudget: 1e-2}
}

// DefaultObjectives returns the two-slice URLLC/eMBB preset; slice 0 is
// URLLC, slice 1 eMBB (the default SliceOf maps even cells to 0).
func DefaultObjectives() []Objective {
	return []Objective{URLLCObjective(), EMBBObjective()}
}

// Default window geometry and alerting thresholds.
const (
	// DefaultWindow is the tumbling sub-window width.
	DefaultWindow = 20 * sim.Millisecond
	// DefaultFastWindows / DefaultSlowWindows size the multi-window burn
	// rule in sub-windows: fast = 1 window (20 ms), slow = 8 (160 ms).
	DefaultFastWindows = 1
	DefaultSlowWindows = 8
	// DefaultBurnThreshold is the multi-window trigger (the SRE-style
	// "14.4x budget velocity" page threshold): an alert fires when both the
	// fast and the slow window burn at or above it.
	DefaultBurnThreshold = 14.4
	// DefaultRowCapacity bounds the window-row ring; DefaultAlertCapacity
	// the alert timeline.
	DefaultRowCapacity   = 1 << 14
	DefaultAlertCapacity = 1 << 10
	// DefaultFaultHorizon is how long after a fault injection on a cell a
	// miss on that cell is counted under the fault's class. This is the
	// online (streaming) attribution heuristic; the autopsy's post-hoc
	// partition stays the ground truth.
	DefaultFaultHorizon = 10 * sim.Millisecond
)

// Options configures a Tracker.
type Options struct {
	// Window is the tumbling sub-window width (0 selects DefaultWindow).
	Window sim.Time
	// FastWindows and SlowWindows size the burn-rate windows in tumbling
	// sub-windows (0 selects the defaults). The sliding windows are sums
	// over the ring of the most recent sub-windows, so they inherit the
	// sketch layer's mergeability and determinism.
	FastWindows int
	SlowWindows int
	// BurnThreshold is the multi-window alert trigger (0 selects
	// DefaultBurnThreshold).
	BurnThreshold float64
	// Deadline is the DAG processing deadline, used to derive slack and to
	// resolve LatencyTarget=0 objectives. Required (the integration layers
	// fill it from their own config).
	Deadline sim.Time
	// Sketch sets the quantile-sketch resolution (zero value = defaults).
	Sketch SketchConfig
	// Objectives lists per-slice SLOs; slice IDs index this slice. Nil
	// selects DefaultObjectives (URLLC + eMBB).
	Objectives []Objective
	// SliceOf maps a cell ID to its slice. Nil maps even cells to slice 0
	// and odd cells to slice 1. Must be pure and deterministic.
	SliceOf func(cell int32) int32
	// Server stamps every key and event this tracker produces (fleet runs
	// give each per-server tracker its index; single-pool runs use 0).
	Server int32
	// RowCapacity bounds the window-row ring (0 selects
	// DefaultRowCapacity); AlertCapacity bounds the alert timeline (0
	// selects DefaultAlertCapacity). Overflow is counted, not grown.
	RowCapacity   int
	AlertCapacity int
	// FaultHorizon is the online fault-attribution window (0 selects
	// DefaultFaultHorizon).
	FaultHorizon sim.Time
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.FastWindows <= 0 {
		o.FastWindows = DefaultFastWindows
	}
	if o.SlowWindows < o.FastWindows {
		o.SlowWindows = DefaultSlowWindows
	}
	if o.SlowWindows < o.FastWindows {
		o.SlowWindows = o.FastWindows
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = DefaultBurnThreshold
	}
	if o.Objectives == nil {
		o.Objectives = DefaultObjectives()
	}
	if o.SliceOf == nil {
		o.SliceOf = func(cell int32) int32 { return cell % 2 }
	}
	if o.RowCapacity <= 0 {
		o.RowCapacity = DefaultRowCapacity
	}
	if o.AlertCapacity <= 0 {
		o.AlertCapacity = DefaultAlertCapacity
	}
	if o.FaultHorizon <= 0 {
		o.FaultHorizon = DefaultFaultHorizon
	}
	for i := range o.Objectives {
		if o.Objectives[i].LatencyTarget <= 0 {
			o.Objectives[i].LatencyTarget = o.Deadline
		}
		if o.Objectives[i].Quantile <= 0 || o.Objectives[i].Quantile > 1 {
			o.Objectives[i].Quantile = 0.99
		}
		if o.Objectives[i].MissBudget <= 0 {
			o.Objectives[i].MissBudget = 1e-3
		}
	}
	return o
}
