package slo

import (
	"bytes"
	"strings"
	"testing"

	"concordia/internal/faults"
	"concordia/internal/sim"
	"concordia/internal/telemetry"
)

func msTime(ms float64) sim.Time { return sim.FromMs(ms) }

func testOpts() Options {
	return Options{
		Window:   sim.Millisecond,
		Deadline: 2 * sim.Millisecond,
	}
}

func TestTrackerWindowRows(t *testing.T) {
	tr := New(testOpts(), nil)
	// Window 0: cell 0 (slice 0) meets, cell 1 (slice 1) misses.
	tr.RecordDAG(msTime(0.1), 0, sim.Millisecond, false)
	tr.RecordDAG(msTime(0.2), 1, msTime(2.5), true)
	// Window 1: cell 0 meets again (the record itself rotates window 0).
	tr.RecordDAG(msTime(1.5), 0, msTime(0.5), false)
	tr.Flush(msTime(2))

	rows := tr.Rows()
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %+v", len(rows), rows)
	}
	r0, r1, r2 := rows[0], rows[1], rows[2]
	if r0.Cell != 0 || r0.Slice != 0 || r0.Attempts != 1 || r0.Misses != 0 ||
		r0.Start != 0 || r0.End != sim.Millisecond || r0.Window != 0 {
		t.Errorf("window-0 cell-0 row wrong: %+v", r0)
	}
	if r1.Cell != 1 || r1.Slice != 1 || r1.Attempts != 1 || r1.Misses != 1 {
		t.Errorf("window-0 cell-1 row wrong: %+v", r1)
	}
	if !r1.Firing {
		t.Errorf("cell 1's slice misses 100%% of its 1%% budget; row should be firing: %+v", r1)
	}
	if r2.Cell != 0 || r2.Window != 1 || r2.Start != sim.Millisecond || r2.End != msTime(2) {
		t.Errorf("window-1 cell-0 row wrong: %+v", r2)
	}
	// Latency quantiles of a single-sample window collapse onto it.
	if r0.P50Us < 990 || r0.P50Us > 1010 {
		t.Errorf("p50 of a single 1000us sample = %v, want ~1000 (1%% bound)", r0.P50Us)
	}
	// Slack of the missed DAG is negative: -0.5 ms.
	if r1.SlackP1Us > -490 || r1.SlackP1Us < -510 {
		t.Errorf("slack p1 = %v us, want ~-500", r1.SlackP1Us)
	}
}

func TestTrackerBurnAlertFireAndClear(t *testing.T) {
	opts := testOpts()
	opts.FastWindows = 1
	opts.SlowWindows = 4
	opts.Objectives = []Objective{{Name: "t", Quantile: 0.99, MissBudget: 1e-2}}
	opts.SliceOf = func(int32) int32 { return 0 }
	tr := New(opts, nil)

	// Window 0: 10 attempts, 5 misses -> fast and slow burn 50x budget.
	for i := 0; i < 10; i++ {
		at := sim.Time(i) * sim.Microsecond
		if i < 5 {
			tr.RecordDAG(at, 0, msTime(3), true)
		} else {
			tr.RecordDAG(at, 0, sim.Millisecond, false)
		}
	}
	// Window 1: 10 clean attempts -> fast burn 0, alert clears.
	for i := 0; i < 10; i++ {
		tr.RecordDAG(sim.Millisecond+sim.Time(i)*sim.Microsecond, 0, sim.Millisecond, false)
	}
	tr.Flush(msTime(2))

	alerts := tr.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("got %d alert transitions, want fire+clear: %+v", len(alerts), alerts)
	}
	fire, clearA := alerts[0], alerts[1]
	if !fire.Firing || fire.At != sim.Millisecond || fire.FastBurn != 50 || fire.SlowBurn != 50 {
		t.Errorf("fire transition wrong: %+v", fire)
	}
	if clearA.Firing || clearA.At != msTime(2) || clearA.FastBurn != 0 || clearA.SlowBurn != 25 {
		t.Errorf("clear transition wrong (slow burn should decay to 5/20/1e-2=25): %+v", clearA)
	}
	if at, ok := tr.FirstFiring(); !ok || at != sim.Millisecond {
		t.Errorf("FirstFiring = %v, %v; want 1ms, true", at, ok)
	}
	if tr.AlertsFired() != 1 {
		t.Errorf("AlertsFired = %d, want 1", tr.AlertsFired())
	}
}

func TestTrackerEmitsEvents(t *testing.T) {
	trc := telemetry.NewTracer(1024)
	opts := testOpts()
	opts.Server = 3
	tr := New(opts, trc)
	tr.RecordDAG(msTime(0.5), 0, msTime(3), true) // slice 0 miss
	tr.RecordDAG(msTime(1.5), 0, sim.Millisecond, false)
	tr.Flush(msTime(2))

	var windows, alerts int
	for _, ev := range trc.Events() {
		switch ev.Kind {
		case telemetry.EvSLOWindow:
			windows++
			if ev.Core != 3 || ev.Cell != -1 {
				t.Errorf("EvSLOWindow should carry server in Core, -1 Cell: %+v", ev)
			}
			if ev.Slot == 0 && ev.Task == 0 && (ev.A != 1 || ev.B != 1) {
				t.Errorf("window-0 slice-0 event should have A=1 attempt B=1 miss: %+v", ev)
			}
		case telemetry.EvSLOAlert:
			alerts++
			if ev.B != 1 && ev.B != 0 {
				t.Errorf("EvSLOAlert B must be 0/1: %+v", ev)
			}
		}
	}
	// Slice 0 active in both windows; slice 1 never saw an attempt, so it
	// stays silent.
	if windows != 2 {
		t.Errorf("got %d EvSLOWindow events, want 2", windows)
	}
	if alerts == 0 {
		t.Error("a 100% miss window against a 1e-4 budget should raise an alert")
	}
}

func TestTrackerFaultAttribution(t *testing.T) {
	tr := New(testOpts(), nil)
	tr.NoteFault(msTime(0.4), 0, faults.StuckOffload)
	tr.RecordDAG(msTime(0.6), 0, msTime(3), true) // 0.2ms after fault: attributed
	tr.RecordDAG(msTime(30), 0, msTime(3), true)  // 29.6ms after: beyond horizon
	tr.Flush(msTime(31))

	cells := tr.CellSummaries()
	if len(cells) != 1 {
		t.Fatalf("want 1 cell summary, got %d", len(cells))
	}
	fm := cells[0].FaultMisses
	if fm[faults.StuckOffload] != 1 {
		t.Errorf("stuck_offload misses = %d, want 1", fm[faults.StuckOffload])
	}
	if fm[faults.NumClasses] != 1 {
		t.Errorf("unattributed misses = %d, want 1", fm[faults.NumClasses])
	}
}

func TestTrackerNilSafe(t *testing.T) {
	var tr *Tracker
	tr.RecordDAG(0, 0, 0, true)
	tr.RecordTask(0, 0, 0)
	tr.NoteFault(0, 0, faults.LaneFailure)
	tr.Flush(sim.Second)
	if tr.Rows() != nil || tr.Alerts() != nil || tr.AlertsFired() != 0 {
		t.Error("nil tracker accessors should return zero values")
	}
	if _, ok := tr.FirstFiring(); ok {
		t.Error("nil tracker cannot have fired")
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteHealthReport(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerRecordRotateZeroAlloc(t *testing.T) {
	trc := telemetry.NewTracer(4096)
	opts := testOpts()
	tr := New(opts, trc)
	// Warm-up: materialize every key and fill the rings past capacity
	// concerns, and pre-grow the fault arrays.
	now := sim.Time(0)
	for w := 0; w < opts.SlowWindows+2; w++ {
		for c := int32(0); c < 4; c++ {
			tr.NoteFault(now, c, faults.TaskOverrun)
			tr.RecordDAG(now, c, msTime(3), true)
			tr.RecordDAG(now, c, sim.Millisecond, false)
			tr.RecordTask(now, c, 100*sim.Microsecond)
			now += 7 * sim.Microsecond
		}
		now += sim.Millisecond
	}
	// Steady state: every iteration records on all cells and crosses a
	// window boundary, driving rotate (sketch resets, burn evaluation,
	// event emission, row appends) with zero allocations.
	allocs := testing.AllocsPerRun(200, func() {
		for c := int32(0); c < 4; c++ {
			tr.NoteFault(now, c, faults.TaskOverrun)
			tr.RecordDAG(now, c, msTime(3), true)
			tr.RecordDAG(now, c, sim.Millisecond, false)
			tr.RecordTask(now, c, 100*sim.Microsecond)
		}
		now += sim.Millisecond + 13*sim.Microsecond
	})
	if allocs != 0 {
		t.Fatalf("steady-state record/rotate allocated %.1f/op, want 0", allocs)
	}
}

func TestTrackerMergeRemapped(t *testing.T) {
	opts := testOpts()
	mkServer := func(server int32) *Tracker {
		o := opts
		o.Server = server
		tr := New(o, nil)
		// Local cells 0,1; one miss on local cell 0.
		tr.RecordDAG(msTime(0.3), 0, msTime(3), true)
		tr.RecordDAG(msTime(0.4), 1, sim.Millisecond, false)
		tr.RecordTask(msTime(0.4), 1, 50*sim.Microsecond)
		tr.Flush(sim.Millisecond)
		return tr
	}
	merge := func() *Tracker {
		fleet := New(opts, nil)
		if err := fleet.MergeRemapped(mkServer(0), []int32{10, 11}, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := fleet.MergeRemapped(mkServer(1), []int32{20, 21}, 1, msTime(5)); err != nil {
			t.Fatal(err)
		}
		return fleet
	}
	fleet := merge()

	cells := fleet.CellSummaries()
	if len(cells) != 4 {
		t.Fatalf("want 4 merged cells, got %d: %+v", len(cells), cells)
	}
	seen := map[int32]CellSummary{}
	for _, c := range cells {
		seen[c.Key.Cell] = c
	}
	for _, id := range []int32{10, 11, 20, 21} {
		if _, ok := seen[id]; !ok {
			t.Fatalf("global cell %d missing after merge", id)
		}
	}
	if seen[10].Key.Server != 0 || seen[20].Key.Server != 1 {
		t.Error("server stamps wrong after merge")
	}
	if seen[10].Misses != 1 || seen[20].Misses != 1 || seen[11].Misses != 0 {
		t.Error("per-cell miss totals wrong after merge")
	}
	rows := fleet.Rows()
	if len(rows) != 4 {
		t.Fatalf("want 4 merged rows, got %d", len(rows))
	}
	// Server 1's rows are time-shifted by the epoch offset.
	last := rows[len(rows)-1]
	if last.Start < msTime(5) || last.Server != 1 {
		t.Errorf("remapped row not offset/stamped: %+v", last)
	}
	// Determinism: merging the same sequence twice yields identical bytes.
	var a, b bytes.Buffer
	if err := fleet.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := merge().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("merged CSV not byte-identical across identical merge sequences")
	}
	var ra, rb bytes.Buffer
	if err := fleet.WriteHealthReport(&ra); err != nil {
		t.Fatal(err)
	}
	if err := merge().WriteHealthReport(&rb); err != nil {
		t.Fatal(err)
	}
	if ra.String() != rb.String() {
		t.Error("health report not byte-identical across identical merge sequences")
	}
}

func TestHealthReportSections(t *testing.T) {
	tr := New(testOpts(), nil)
	tr.NoteFault(msTime(0.2), 0, faults.FronthaulLate)
	tr.RecordDAG(msTime(0.3), 0, msTime(3), true)
	tr.RecordDAG(msTime(0.6), 1, sim.Millisecond, false)
	tr.Flush(sim.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteHealthReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# SLO health report", "## Slices", "## Top burning cells",
		"## Miss attribution", "## Alert timeline", "fronthaul_late",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("health report missing %q:\n%s", want, out)
		}
	}
}

func TestTrackerCSVSchema(t *testing.T) {
	tr := New(testOpts(), nil)
	tr.RecordDAG(msTime(0.3), 0, msTime(3), true)
	tr.Flush(sim.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != sloCSVHeader {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 2 {
		t.Fatalf("want 1 data row, got %d", len(lines)-1)
	}
	if got := strings.Count(lines[1], ","); got != strings.Count(sloCSVHeader, ",") {
		t.Errorf("row has %d commas, header %d", got, strings.Count(sloCSVHeader, ","))
	}
}

func BenchmarkTrackerRecord(b *testing.B) {
	opts := Options{Window: sim.Millisecond, Deadline: 2 * sim.Millisecond}
	tr := New(opts, telemetry.NewTracer(1<<12))
	now := sim.Time(0)
	for c := int32(0); c < 8; c++ { // materialize keys outside the loop
		tr.RecordDAG(now, c, sim.Millisecond, false)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := int32(i & 7)
		tr.RecordDAG(now, c, sim.Millisecond+sim.Time(i&1023)*sim.Microsecond, i&127 == 0)
		now += 11 * sim.Microsecond
	}
}

func BenchmarkTrackerRotate(b *testing.B) {
	opts := Options{Window: 100 * sim.Microsecond, Deadline: 2 * sim.Millisecond}
	tr := New(opts, nil)
	now := sim.Time(0)
	for c := int32(0); c < 8; c++ {
		tr.RecordDAG(now, c, sim.Millisecond, false)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Every record crosses a boundary: the benchmark measures rotation.
		now += opts.Window + sim.Microsecond
		tr.RecordDAG(now, int32(i&7), sim.Millisecond, i&63 == 0)
	}
}
