package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/parallel"
	"concordia/internal/ran"
	"concordia/internal/sim"
)

// Table3Row is one row of Table 3: FPGA-accelerated 100 MHz TDD cells.
type Table3Row struct {
	Cells    int
	MinCores int
	AvgUtil  float64
	Paper    string
}

// Table3Result is the accelerated CPU-requirements table.
type Table3Result struct{ Rows []Table3Row }

// table3Config is the §7 scenario: 100 MHz TDD cells at peak traffic
// (1.6 Gb/s DL, 150 Mb/s UL per cell) with LDPC offloaded to the FPGA.
func table3Config(cells int, o Options) core.Config {
	cfg := core.Scenario100MHz(cells, 0)
	cfg.PeakULBytes = 9400   // 150 Mb/s over 0.5 ms
	cfg.PeakDLBytes = 100000 // 1.6 Gb/s over 0.5 ms
	cfg.Load = 1.0
	cfg.UseAccel = true
	cfg.Seed = o.Seed
	cfg.TrainingSlots = o.training()
	return cfg
}

// RunTable3FPGA measures minimum cores and utilization for 1–3 accelerated
// cells.
func RunTable3FPGA(o Options) (*Table3Result, error) {
	probe := minProbe(o.dur(20 * sim.Second))
	papers := map[int]string{1: "1 core, 58.2%", 2: "3 cores, 46.6%", 3: "4 cores, 58.7%"}
	rows, err := parallel.Map(o.workers(), 3, func(i int) (Table3Row, error) {
		cells := i + 1
		cfg := table3Config(cells, o)
		cores, err := core.MinimumCores(cfg, 12, 0.99999, probe)
		if err != nil {
			return Table3Row{}, err
		}
		cfg.PoolCores = cores
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return Table3Row{}, err
		}
		rep := sys.Run(probe)
		return Table3Row{
			Cells:    cells,
			MinCores: cores,
			AvgUtil:  rep.RANUtilization(),
			Paper:    papers[cells],
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table3Result{Rows: rows}, nil
}

// String implements fmt.Stringer.
func (r *Table3Result) String() string {
	var sb strings.Builder
	header(&sb, "Table 3: vRAN pool CPU requirements with FPGA LDPC offload")
	fmt.Fprintf(&sb, "%6s %10s %10s   %s\n", "cells", "min cores", "avg util", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%6d %10d %10s   %s\n", row.Cells, row.MinCores, pct(row.AvgUtil), row.Paper)
	}
	sb.WriteString("paper's point: CPU utilization stays below 60% even at peak with acceleration\n")
	return sb.String()
}

// Table4Result reproduces Table 4: the per-slot processing-time split
// between CPU (non-offloaded tasks) and total (including FPGA waits).
type Table4Result struct {
	ULNonOffloadedUs float64
	ULTotalUs        float64
	DLNonOffloadedUs float64
	DLTotalUs        float64
}

// RunTable4Offload runs the single accelerated cell on one pool core and
// measures the split.
func RunTable4Offload(o Options) (*Table4Result, error) {
	cfg := table3Config(1, o)
	cfg.PoolCores = 1
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	rep := sys.Run(o.dur(30 * sim.Second))
	return &Table4Result{
		ULNonOffloadedUs: rep.AvgCPUPerDAG(ran.Uplink).Us(),
		ULTotalUs:        rep.AvgMakespanPerDAG(ran.Uplink).Us(),
		DLNonOffloadedUs: rep.AvgCPUPerDAG(ran.Downlink).Us(),
		DLTotalUs:        rep.AvgMakespanPerDAG(ran.Downlink).Us(),
	}, nil
}

// String implements fmt.Stringer.
func (r *Table4Result) String() string {
	var sb strings.Builder
	header(&sb, "Table 4: processing-time split with FPGA offload (1 cell, 1 core)")
	fmt.Fprintf(&sb, "%-10s %18s %14s %8s\n", "direction", "non-offloaded us", "total us", "ratio")
	ulRatio, dlRatio := 0.0, 0.0
	if r.ULNonOffloadedUs > 0 {
		ulRatio = r.ULTotalUs / r.ULNonOffloadedUs
	}
	if r.DLNonOffloadedUs > 0 {
		dlRatio = r.DLTotalUs / r.DLNonOffloadedUs
	}
	fmt.Fprintf(&sb, "%-10s %18.0f %14.0f %8.1f\n", "uplink", r.ULNonOffloadedUs, r.ULTotalUs, ulRatio)
	fmt.Fprintf(&sb, "%-10s %18.0f %14.0f %8.1f\n", "downlink", r.DLNonOffloadedUs, r.DLTotalUs, dlRatio)
	sb.WriteString("paper: UL 515 vs 1414 us (~2.7x), DL 196 vs 366 us (~1.9x)\n")
	return sb.String()
}
