package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/parallel"
	"concordia/internal/sim"
	"concordia/internal/workloads"
)

// Fig11Row is one bar group of Fig 11: tail slot latency for a scheduler,
// configuration and workload.
type Fig11Row struct {
	Config     string
	Scheduler  core.SchedulerKind
	Workload   workloads.Kind
	AvgUs      float64
	P9999Us    float64
	P99999Us   float64
	DeadlineUs float64
	Reliable   float64
}

// Fig11Result is the headline tail-latency comparison.
type Fig11Result struct{ Rows []Fig11Row }

// Fig11Workloads is the collocation set of Fig 11.
var Fig11Workloads = []workloads.Kind{
	workloads.None, workloads.Nginx, workloads.Redis, workloads.TPCC, workloads.MLPerf,
}

// RunFig11TailLatency measures average/p99.99/p99.999 slot processing
// latency for Concordia and vanilla FlexRAN on both Table 1 configurations
// across the five collocation scenarios, with 8-core pools as in the paper.
func RunFig11TailLatency(o Options) (*Fig11Result, error) {
	dur := o.dur(300 * sim.Second) // scale 3.0 reproduces the paper's 15-minute runs
	scheds := []core.SchedulerKind{core.SchedConcordia, core.SchedFlexRAN}
	// Every (config, scheduler, workload) run builds and drives its own
	// System, so the 20 runs fan out across workers; rows land in the legacy
	// nesting order (config outer, scheduler, workload inner).
	perCfg := len(scheds) * len(Fig11Workloads)
	rows, err := parallel.Map(o.workers(), 2*perCfg, func(j int) (Fig11Row, error) {
		is100 := j/perCfg == 1
		sched := scheds[j%perCfg/len(Fig11Workloads)]
		wl := Fig11Workloads[j%len(Fig11Workloads)]
		name := "7x20MHz FDD"
		if is100 {
			name = "2x100MHz TDD"
		}
		cfg := table2Scenario(is100, o)
		cfg.PoolCores = 8
		// Table 1 specifies the *average* cell throughput, i.e. the
		// maximum allowed average load.
		cfg.Load = 1.0
		cfg.Scheduler = sched
		cfg.Workload = wl
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return Fig11Row{}, err
		}
		rep := sys.Run(dur)
		return Fig11Row{
			Config:     name,
			Scheduler:  sched,
			Workload:   wl,
			AvgUs:      rep.TailLatencyUs(0.5),
			P9999Us:    rep.TailLatencyUs(0.9999),
			P99999Us:   rep.TailLatencyUs(0.99999),
			DeadlineUs: cfg.Deadline.Us(),
			Reliable:   rep.Reliability(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Rows: rows}, nil
}

// String implements fmt.Stringer.
func (r *Fig11Result) String() string {
	var sb strings.Builder
	header(&sb, "Fig 11: tail TTI processing latency, Concordia vs FlexRAN (8 cores)")
	fmt.Fprintf(&sb, "%-14s %-10s %-9s %9s %11s %11s %9s %10s\n",
		"config", "scheduler", "workload", "med us", "p99.99 us", "p99.999 us", "deadline", "reliab")
	for _, row := range r.Rows {
		marker := ""
		if row.P99999Us > row.DeadlineUs {
			marker = "  VIOLATED"
		}
		fmt.Fprintf(&sb, "%-14s %-10s %-9s %9.0f %11.0f %11.0f %9.0f %10s%s\n",
			row.Config, row.Scheduler, row.Workload, row.AvgUs, row.P9999Us,
			row.P99999Us, row.DeadlineUs, nines(row.Reliable), marker)
	}
	sb.WriteString("paper: Concordia meets 99.999% everywhere; FlexRAN violates with any workload except MLPerf\n")
	return sb.String()
}

// Fig12Row is one bar of Fig 12: tail latency vs pool size under Mix.
type Fig12Row struct {
	Config   string
	Cores    int
	P9999Us  float64
	P99999Us float64
	Reliable float64
}

// Fig12Result is the pool-size sensitivity figure.
type Fig12Result struct {
	Rows       []Fig12Row
	DeadlineUs map[string]float64
}

// RunFig12Cores runs the constantly-on mixed workload against 8- and 9-core
// pools for both configurations.
func RunFig12Cores(o Options) (*Fig12Result, error) {
	dur := o.dur(300 * sim.Second)
	coreSet := []int{8, 9}
	type job struct {
		row      Fig12Row
		deadline float64
	}
	jobs, err := parallel.Map(o.workers(), 2*len(coreSet), func(j int) (job, error) {
		is100 := j/len(coreSet) == 1
		cores := coreSet[j%len(coreSet)]
		name := "7x20MHz"
		if is100 {
			name = "2x100MHz"
		}
		cfg := table2Scenario(is100, o)
		cfg.PoolCores = cores
		cfg.Load = 1.0
		cfg.Workload = workloads.Mix
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return job{}, err
		}
		rep := sys.Run(dur)
		return job{
			row: Fig12Row{
				Config:   name,
				Cores:    cores,
				P9999Us:  rep.TailLatencyUs(0.9999),
				P99999Us: rep.TailLatencyUs(0.99999),
				Reliable: rep.Reliability(),
			},
			deadline: cfg.Deadline.Us(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{DeadlineUs: map[string]float64{}}
	// The deadline map fills serially after the fan-out to keep map writes
	// single-goroutine.
	for _, jb := range jobs {
		res.DeadlineUs[jb.row.Config] = jb.deadline
		res.Rows = append(res.Rows, jb.row)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig12Result) String() string {
	var sb strings.Builder
	header(&sb, "Fig 12: Concordia tail latency vs pool size (Mix workload)")
	fmt.Fprintf(&sb, "%-10s %6s %11s %11s %10s %10s\n",
		"config", "cores", "p99.99 us", "p99.999 us", "deadline", "reliab")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %6d %11.0f %11.0f %10.0f %10s\n",
			row.Config, row.Cores, row.P9999Us, row.P99999Us,
			r.DeadlineUs[row.Config], nines(row.Reliable))
	}
	sb.WriteString("paper: 20MHz meets five nines on 8 cores; 100MHz needs the 9th core\n")
	return sb.String()
}
