package experiments

import (
	"fmt"
	"strings"
	"time"

	"concordia/internal/costmodel"
	"concordia/internal/predictor"
	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/scheduler"
	"concordia/internal/sim"
)

// Fig15aResult measures the real wall-clock processing overhead of this
// implementation's Concordia scheduler decision and per-TTI WCET
// prediction, for a varying number of cells — the one experiment in the
// repository measured in host time rather than virtual time, because it
// characterizes the reproduction's own code (as Fig 15a characterizes the
// paper's C implementation).
type Fig15aResult struct {
	Cells       []int
	SchedulerUs []float64
	PredictorUs []float64
}

// RunFig15Overhead times scheduler decisions over representative states and
// full-TTI prediction batches for 1–7 cells.
func RunFig15Overhead(o Options) (*Fig15aResult, error) {
	res := &Fig15aResult{}
	model := costmodel.New(o.Seed)
	r := rng.New(o.Seed + 1)

	// Train one decode tree to time realistic predictions.
	train := genKindSamples(ran.TaskLDPCDecode, 6000, 2, costmodel.Env{PoolCores: 4}, model, o.Seed+9)
	tree, err := predictor.TrainQuantileTree(ran.TaskLDPCDecode,
		predictor.HandPicked[ran.TaskLDPCDecode], train, predictor.TreeConfig{})
	if err != nil {
		return nil, err
	}
	sched := scheduler.NewConcordia()

	for cells := 1; cells <= 7; cells++ {
		res.Cells = append(res.Cells, cells)
		// Scheduler: one decision over `cells` active DAG states.
		st := scheduler.PoolState{Now: 0, TotalCores: 8}
		for c := 0; c < cells; c++ {
			st.DAGs = append(st.DAGs, scheduler.DAGState{
				Deadline:              sim.FromMs(2),
				RemainingWork:         sim.FromUs(600),
				RemainingCriticalPath: sim.FromUs(120),
			})
		}
		const reps = 20000
		start := time.Now() //lint:allow walltime Fig 15a measures this reproduction's own host-time overhead, like the paper's Fig 15a measures its C implementation
		for i := 0; i < reps; i++ {
			_ = sched.Cores(st)
		}
		//lint:allow walltime host-time delta for the sanctioned Fig 15a overhead measurement
		res.SchedulerUs = append(res.SchedulerUs, float64(time.Since(start).Microseconds())/reps)

		// Predictor: one TTI's worth of task predictions per cell (a typical
		// slot has a handful of decode groups per cell).
		var feats []ran.FeatureVector
		for c := 0; c < cells; c++ {
			for k := 0; k < 6; k++ {
				var f ran.FeatureVector
				f.Set(ran.FCodeblocks, float64(1+r.Intn(15)))
				f.Set(ran.FSNRdB, r.Uniform(0, 32))
				feats = append(feats, f)
			}
		}
		start = time.Now() //lint:allow walltime Fig 15a measures this reproduction's own host-time overhead (predictor half)
		const predReps = 5000
		for i := 0; i < predReps; i++ {
			for _, f := range feats {
				_ = tree.Predict(f)
			}
		}
		//lint:allow walltime host-time delta for the sanctioned Fig 15a overhead measurement
		res.PredictorUs = append(res.PredictorUs, float64(time.Since(start).Microseconds())/predReps)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig15aResult) String() string {
	var sb strings.Builder
	header(&sb, "Fig 15a: Concordia scheduler & predictor overhead (host wall time)")
	fmt.Fprintf(&sb, "%6s %16s %16s\n", "cells", "scheduler (us)", "predictor (us)")
	for i, c := range r.Cells {
		fmt.Fprintf(&sb, "%6d %16.3f %16.3f\n", c, r.SchedulerUs[i], r.PredictorUs[i])
	}
	sb.WriteString("paper: scheduler <2us at 7 cells; predictor 4us (1 cell) to 24us (7 cells)\n")
	return sb.String()
}
