package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/platform"
	"concordia/internal/sim"
	"concordia/internal/stats"
	"concordia/internal/workloads"
)

// Fig9Result reproduces Fig 9: cache-efficiency degradation of pool worker
// threads under a collocated Redis workload, Concordia vs vanilla FlexRAN.
type Fig9Result struct {
	Concordia platform.PerfCounters
	FlexRAN   platform.PerfCounters
	// Churn rates driving the counters (events/ms).
	ChurnConcordia float64
	ChurnFlexRAN   float64
}

// RunFig9Cache runs the 2×100 MHz + Redis scenario under both schedulers
// and derives the perf counters from the measured churn and interference.
func RunFig9Cache(o Options) (*Fig9Result, error) {
	dur := o.dur(60 * sim.Second)
	run := func(sched core.SchedulerKind) (float64, error) {
		cfg := table2Scenario(true, o)
		cfg.Load = 0.5
		cfg.Workload = workloads.Redis
		cfg.Scheduler = sched
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return 0, err
		}
		rep := sys.Run(dur)
		return rep.CoreChurnPerMs(), nil
	}
	churnC, err := run(core.SchedConcordia)
	if err != nil {
		return nil, err
	}
	churnF, err := run(core.SchedFlexRAN)
	if err != nil {
		return nil, err
	}
	redis, _ := workloads.ProfileOf(workloads.Redis)
	return &Fig9Result{
		Concordia:      platform.Counters(platform.CounterEnv{Interference: redis.CacheIntensity, CoreChurnPerMs: churnC}),
		FlexRAN:        platform.Counters(platform.CounterEnv{Interference: redis.CacheIntensity, CoreChurnPerMs: churnF}),
		ChurnConcordia: churnC,
		ChurnFlexRAN:   churnF,
	}, nil
}

// String implements fmt.Stringer.
func (r *Fig9Result) String() string {
	var sb strings.Builder
	header(&sb, "Fig 9: cache effects of collocation (2x100 MHz + Redis)")
	fmt.Fprintf(&sb, "%-26s %12s %12s\n", "counter increase", "concordia", "flexran")
	fmt.Fprintf(&sb, "%-26s %12s %12s\n", "stall cycles/instr",
		pct(r.Concordia.StallCyclesPerInstrIncrease), pct(r.FlexRAN.StallCyclesPerInstrIncrease))
	fmt.Fprintf(&sb, "%-26s %12s %12s\n", "L1 misses/instr",
		pct(r.Concordia.L1MissPerInstrIncrease), pct(r.FlexRAN.L1MissPerInstrIncrease))
	fmt.Fprintf(&sb, "%-26s %12s %12s\n", "LLC loads/instr",
		pct(r.Concordia.LLCLoadsPerInstrIncrease), pct(r.FlexRAN.LLCLoadsPerInstrIncrease))
	fmt.Fprintf(&sb, "core churn (events/ms)     %12.2f %12.2f\n", r.ChurnConcordia, r.ChurnFlexRAN)
	sb.WriteString("paper: FlexRAN +25% stalls vs Concordia <2%\n")
	return sb.String()
}

// Fig10Result reproduces Fig 10: OS scheduling-latency histograms of pool
// worker threads and total scheduling-event counts.
type Fig10Result struct {
	// Histograms keyed by "scheduler/workload".
	Hists  map[string]*stats.Log2Histogram
	Events map[string]uint64
	// TailEvents counts wakeups above 63 µs (the Concordia side-effect the
	// paper notes).
	TailEvents map[string]uint64
}

// RunFig10SchedLatency measures wakeup latencies for 2×100 MHz cells with
// and without Redis, under both schedulers.
func RunFig10SchedLatency(o Options) (*Fig10Result, error) {
	res := &Fig10Result{
		Hists:      map[string]*stats.Log2Histogram{},
		Events:     map[string]uint64{},
		TailEvents: map[string]uint64{},
	}
	dur := o.dur(60 * sim.Second)
	for _, sched := range []core.SchedulerKind{core.SchedConcordia, core.SchedFlexRAN} {
		for _, wl := range []workloads.Kind{workloads.None, workloads.Redis} {
			cfg := table2Scenario(true, o)
			cfg.PoolCores = 8
			cfg.Load = 0.5
			cfg.Scheduler = sched
			cfg.Workload = wl
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return nil, err
			}
			rep := sys.Run(dur)
			key := fmt.Sprintf("%s/%s", sched, wl)
			res.Hists[key] = rep.WakeupHistUs
			res.Events[key] = rep.SchedulingEvents
			res.TailEvents[key] = rep.WakeupHistUs.CountAbove(64)
		}
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig10Result) String() string {
	var sb strings.Builder
	header(&sb, "Fig 10: scheduling latency of pool worker threads (2x100 MHz)")
	for _, key := range []string{
		"flexran/isolated", "concordia/isolated", "flexran/redis", "concordia/redis"} {
		h, ok := r.Hists[key]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "\n[%s] events=%d wakeups=%d >63us=%d\n",
			key, r.Events[key], h.Total(), r.TailEvents[key])
		sb.WriteString(h.String())
	}
	if r.Events["concordia/redis"] > 0 {
		ratio := float64(r.Events["flexran/redis"]) / float64(r.Events["concordia/redis"])
		fmt.Fprintf(&sb, "flexran/concordia event ratio under redis: %.1fx (paper: ~3.3x)\n", ratio)
	}
	return sb.String()
}
