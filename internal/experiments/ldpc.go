package experiments

import (
	"fmt"
	"sort"
	"strings"

	"concordia/internal/costmodel"
	"concordia/internal/parallel"
	"concordia/internal/predictor"
	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/stats"
)

// Fig6Result reproduces Fig 6: LDPC decode runtime scaling with codeblocks
// and the multi-core memory-stall penalty.
type Fig6Result struct {
	Codeblocks []int
	// MeanUs[cores][i] is the mean runtime for Codeblocks[i] spread over
	// the given core count (map keys 1, 4, 6).
	MeanUs map[int][]float64
	P99Us  map[int][]float64
	// StallsPerCycle approximates Fig 6b: the modeled memory-stall share.
	StallsPerCycle map[int][]float64
}

// RunFig6LDPCScaling samples the decode cost model across codeblock counts
// and pool widths (120 K operations at full scale, as in the paper).
func RunFig6LDPCScaling(o Options) (*Fig6Result, error) {
	ops := int(120000 * o.Scale)
	if ops < 3000 {
		ops = 3000
	}
	res := &Fig6Result{
		Codeblocks:     []int{3, 6, 9, 12, 15},
		MeanUs:         map[int][]float64{},
		P99Us:          map[int][]float64{},
		StallsPerCycle: map[int][]float64{},
	}
	model := costmodel.New(o.Seed)
	perCell := ops / len(res.Codeblocks) / 3
	coreSet := []int{1, 4, 6}
	// One (cores, cbs) cell per sample slice; each cell's iteration space is
	// cut into fixed shards carrying their own RNG substreams, so the sweep
	// fans out across workers without changing a single drawn sample.
	cells := len(coreSet) * len(res.Codeblocks)
	samples := make([][]float64, cells)
	for i := range samples {
		samples[i] = make([]float64, perCell)
	}
	shards := parallel.Shards(perCell, sampleShards)
	parallel.ForEach(o.workers(), cells*len(shards), func(j int) error {
		ci, sh := j/len(shards), shards[j%len(shards)]
		env := costmodel.Env{PoolCores: coreSet[ci/len(res.Codeblocks)]}
		cbs := res.Codeblocks[ci%len(res.Codeblocks)]
		r := rng.Substream(o.Seed+1, uint64(ci*len(shards)+sh.Index))
		for i := sh.Lo; i < sh.Hi; i++ {
			var f ran.FeatureVector
			f.Set(ran.FCodeblocks, float64(cbs))
			f.Set(ran.FSNRdB, r.Uniform(10, 28))
			f.Set(ran.FTBSBits, float64(cbs*8448))
			samples[ci][i] = model.SampleWith(r, ran.TaskLDPCDecode, f, env).Us()
		}
		return nil
	})
	for ci := 0; ci < cells; ci++ {
		cores := coreSet[ci/len(res.Codeblocks)]
		cbs := res.Codeblocks[ci%len(res.Codeblocks)]
		res.MeanUs[cores] = append(res.MeanUs[cores], stats.Mean(samples[ci]))
		res.P99Us[cores] = append(res.P99Us[cores], stats.Quantile(samples[ci], 0.99))
		// Fig 6b proxy: stall share grows with both spreading and size.
		stall := (costmodel.StallPenalty(cores) - 1) * (0.5 + 0.5*float64(cbs)/15)
		res.StallsPerCycle[cores] = append(res.StallsPerCycle[cores], stall)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig6Result) String() string {
	var sb strings.Builder
	header(&sb, "Fig 6: LDPC decoding runtime vs codeblocks and cores")
	fmt.Fprintf(&sb, "%6s", "cbs")
	for _, cores := range []int{1, 4, 6} {
		fmt.Fprintf(&sb, "  %8s", fmt.Sprintf("%dc mean", cores))
	}
	for _, cores := range []int{1, 4, 6} {
		fmt.Fprintf(&sb, "  %8s", fmt.Sprintf("%dc p99", cores))
	}
	sb.WriteString("\n")
	for i, cbs := range r.Codeblocks {
		fmt.Fprintf(&sb, "%6d", cbs)
		for _, cores := range []int{1, 4, 6} {
			fmt.Fprintf(&sb, "  %8.1f", r.MeanUs[cores][i])
		}
		for _, cores := range []int{1, 4, 6} {
			fmt.Fprintf(&sb, "  %8.1f", r.P99Us[cores][i])
		}
		sb.WriteString("\n")
	}
	inc := r.MeanUs[6][len(r.Codeblocks)-1]/r.MeanUs[1][len(r.Codeblocks)-1] - 1
	fmt.Fprintf(&sb, "6-core runtime increase at 15 cbs: %s (paper: up to 25%%)\n", pct(inc))
	return sb.String()
}

// sortedLeafIDs returns the keys of a per-leaf sample map in ascending
// order, the canonical iteration order for leaf statistics (maporder rule).
func sortedLeafIDs(m map[int][]float64) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// Fig7Result reproduces Fig 7: runtime samples group tightly into quantile
// tree leaves, and interference fattens leaf tails without moving them.
type Fig7Result struct {
	Leaves            int
	GlobalVariance    float64
	PooledLeafVar     float64 // within-leaf variance, isolated samples
	PooledLeafVarTPCC float64 // within-leaf variance, collocated samples
	// WorstLeafW1 is the largest Wasserstein-1 distance between a leaf's
	// isolated and interfered runtime distributions, in µs.
	WorstLeafW1Us float64
	// WorstLeafMedianShiftUs shows the distributions stay "in the same
	// region": the median shift of that worst leaf.
	WorstLeafMedianShiftUs float64
	// KSPValue for isolated-vs-interfered pooled runtimes (paper: <<0.001).
	KSPValue float64
}

// RunFig7Leaves trains the decode tree offline (isolated), replays an
// interfered workload through it, and compares leaf distributions.
func RunFig7Leaves(o Options) (*Fig7Result, error) {
	n := int(120000 * o.Scale)
	if n < 8000 {
		n = 8000
	}
	model := costmodel.New(o.Seed)
	iso := costmodel.Env{PoolCores: 4}
	tpcc := costmodel.Env{PoolCores: 4, Interference: 0.9}
	// Sharded sample generator: shard boundaries and substreams depend only
	// on count and seed, so the data set is identical for any worker count.
	gen := func(count int, seed uint64, env costmodel.Env) []predictor.Sample {
		out := make([]predictor.Sample, count)
		shards := parallel.Shards(count, sampleShards)
		parallel.ForEach(o.workers(), len(shards), func(si int) error {
			sh := shards[si]
			r := rng.Substream(seed, uint64(sh.Index))
			for i := sh.Lo; i < sh.Hi; i++ {
				var f ran.FeatureVector
				cbs := 1 + r.Intn(15)
				f.Set(ran.FCodeblocks, float64(cbs))
				f.Set(ran.FSNRdB, r.Uniform(0, 32))
				f.Set(ran.FTBSBits, float64(cbs*8448))
				out[i] = predictor.Sample{Features: f, Runtime: model.SampleWith(r, ran.TaskLDPCDecode, f, env)}
			}
			return nil
		})
		return out
	}
	train := gen(n, o.Seed+1, iso)
	feats := []ran.Feature{ran.FCodeblocks, ran.FSNRdB}
	tree, err := predictor.TrainQuantileTree(ran.TaskLDPCDecode, feats, train, predictor.TreeConfig{})
	if err != nil {
		return nil, err
	}
	evalIso := gen(n/2, o.Seed+2, iso)
	evalTpcc := gen(n/2, o.Seed+3, tpcc)

	perLeaf := func(data []predictor.Sample) map[int][]float64 {
		m := map[int][]float64{}
		for _, s := range data {
			id := tree.LeafID(s.Features)
			m[id] = append(m[id], s.Runtime.Us())
		}
		return m
	}
	isoLeaves := perLeaf(evalIso)
	tpccLeaves := perLeaf(evalTpcc)

	var all []float64
	for _, s := range evalIso {
		all = append(all, s.Runtime.Us())
	}
	res := &Fig7Result{Leaves: tree.NumLeaves(), GlobalVariance: stats.Variance(all)}

	// Leaf maps are iterated in sorted-key order: the pooled variance is a
	// float sum (not associative) and the worst-leaf scan breaks ties by
	// first-seen, so raw map order would leak the hash seed into results.
	pooled := func(m map[int][]float64) float64 {
		var sum, w float64
		for _, id := range sortedLeafIDs(m) {
			xs := m[id]
			if len(xs) < 2 {
				continue
			}
			sum += stats.Variance(xs) * float64(len(xs))
			w += float64(len(xs))
		}
		if w == 0 {
			return 0
		}
		return sum / w
	}
	res.PooledLeafVar = pooled(isoLeaves)
	res.PooledLeafVarTPCC = pooled(tpccLeaves)

	// Most distorted leaf by Wasserstein distance (Fig 7b).
	for _, id := range sortedLeafIDs(isoLeaves) {
		isoXs := isoLeaves[id]
		tpccXs := tpccLeaves[id]
		if len(isoXs) < 30 || len(tpccXs) < 30 {
			continue
		}
		w1 := stats.Wasserstein1(isoXs, tpccXs)
		if w1 > res.WorstLeafW1Us {
			res.WorstLeafW1Us = w1
			res.WorstLeafMedianShiftUs = stats.Quantile(tpccXs, 0.5) - stats.Quantile(isoXs, 0.5)
		}
	}
	// KS test over pooled runtimes (paper: p << 0.001 → distinct).
	var isoAll, tpccAll []float64
	for _, s := range evalIso {
		isoAll = append(isoAll, s.Runtime.Us())
	}
	for _, s := range evalTpcc {
		tpccAll = append(tpccAll, s.Runtime.Us())
	}
	res.KSPValue = stats.KSPValue(stats.KSStatistic(isoAll, tpccAll), len(isoAll), len(tpccAll))
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig7Result) String() string {
	var sb strings.Builder
	header(&sb, "Fig 7: leaf-node runtime grouping under interference")
	fmt.Fprintf(&sb, "leaves                        %d\n", r.Leaves)
	fmt.Fprintf(&sb, "global variance (us^2)        %.0f\n", r.GlobalVariance)
	fmt.Fprintf(&sb, "within-leaf var, isolated     %.0f (%.1f%% of global)\n",
		r.PooledLeafVar, 100*r.PooledLeafVar/r.GlobalVariance)
	fmt.Fprintf(&sb, "within-leaf var, w/ tpcc      %.0f\n", r.PooledLeafVarTPCC)
	fmt.Fprintf(&sb, "worst leaf W1 distance        %.1f us (median shift %.1f us)\n",
		r.WorstLeafW1Us, r.WorstLeafMedianShiftUs)
	fmt.Fprintf(&sb, "KS p-value iso vs tpcc        %.2g (paper: <<0.001)\n", r.KSPValue)
	return sb.String()
}
