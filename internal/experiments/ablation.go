package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/sim"
	"concordia/internal/workloads"
)

// AblationRow measures one system variant.
type AblationRow struct {
	Variant     string
	Reliability float64
	P9999Us     float64
	Reclaimed   float64
	EventsPerMs float64
}

// AblationResult isolates the contribution of each Concordia mechanism:
// wakeup compensation (reliability under kernel latency spikes), online
// adaptation (reliability under interference the offline phase never saw),
// and release hysteresis (scheduling-event rate, hence cache churn).
type AblationResult struct{ Rows []AblationRow }

// RunAblation runs the 20 MHz scenario under Redis with each mechanism
// removed in turn.
func RunAblation(o Options) (*AblationResult, error) {
	variants := []struct {
		name string
		ab   core.Ablation
	}{
		{"full system", core.Ablation{}},
		{"no wakeup compensation", core.Ablation{NoWakeupCompensation: true}},
		{"no online adaptation", core.Ablation{NoOnlineAdaptation: true}},
		{"no release hysteresis", core.Ablation{NoHysteresis: true}},
	}
	res := &AblationResult{}
	dur := o.dur(120 * sim.Second)
	for _, v := range variants {
		cfg := table2Scenario(false, o)
		cfg.Cells = cfg.Cells[:4]
		cfg.PoolCores = 5
		cfg.Load = 0.5
		cfg.Workload = workloads.Redis
		cfg.Ablation = v.ab
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		rep := sys.Run(dur)
		res.Rows = append(res.Rows, AblationRow{
			Variant:     v.name,
			Reliability: rep.Reliability(),
			P9999Us:     rep.TailLatencyUs(0.9999),
			Reclaimed:   rep.ReclaimedFraction(),
			EventsPerMs: rep.CoreChurnPerMs(),
		})
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *AblationResult) String() string {
	var sb strings.Builder
	header(&sb, "Ablation: contribution of each Concordia mechanism (4x20MHz + Redis)")
	fmt.Fprintf(&sb, "%-26s %12s %12s %11s %10s\n",
		"variant", "reliability", "p99.99 us", "reclaimed", "events/ms")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-26s %12s %12.0f %11s %10.2f\n",
			row.Variant, nines(row.Reliability), row.P9999Us, pct(row.Reclaimed), row.EventsPerMs)
	}
	sb.WriteString("expected: compensation protects the tail; adaptation protects reliability under\n")
	sb.WriteString("interference; hysteresis cuts scheduling events (cache churn) at slight reclaim cost\n")
	return sb.String()
}
