package experiments

import (
	"fmt"
	"strings"
	"time"

	"concordia/internal/costmodel"
	"concordia/internal/phy"
	"concordia/internal/ran"
	"concordia/internal/rng"
)

// CalibrationResult validates the cost model's input-dependence against the
// real Go PHY implementation: LDPC decoding wall time must scale ~linearly
// with codeblock count, and decoding effort (iterations, hence time) must
// rise as SNR falls — the two §4.1 structures the quantile trees learn.
// Absolute times differ from FlexRAN's AVX-512 kernels; the *shape* is what
// the cost model borrows.
type CalibrationResult struct {
	// Codeblock scaling at a fixed healthy SNR.
	Codeblocks []int
	RealUs     []float64 // measured wall time of phy decoding
	ModelUs    []float64 // costmodel mean for the same inputs
	// SNR scaling at a fixed codeblock count.
	SNRs       []float64
	RealIters  []float64 // measured mean LDPC iterations
	ModelIters []float64 // costmodel IterationFactor (normalized)
}

// RunCalibration measures the real PHY decoder and tabulates it against the
// cost model.
func RunCalibration(o Options) (*CalibrationResult, error) {
	res := &CalibrationResult{
		Codeblocks: []int{1, 2, 4, 8},
		SNRs:       []float64{2, 4, 6, 10, 16},
	}
	r := rng.New(o.Seed)
	model := costmodel.New(o.Seed + 1)
	const k = 2048 // bits per codeblock (scaled down from 8448 for test speed)
	code, err := phy.NewLDPCCode(k, k/2, 33)
	if err != nil {
		return nil, err
	}
	trials := int(30 * o.Scale * 25)
	if trials < 4 {
		trials = 4
	}

	decodeOnce := func(snrDB float64) (time.Duration, int, error) {
		info := make([]byte, k)
		for i := range info {
			info[i] = byte(r.Intn(2))
		}
		cw, err := code.Encode(info)
		if err != nil {
			return 0, 0, err
		}
		ch := phy.NewAWGNChannel(snrDB, r)
		syms := make([]complex128, len(cw))
		for i, b := range cw {
			syms[i] = complex(1-2*float64(b), 0)
		}
		rx := ch.Transmit(syms)
		llr := make([]float64, len(cw))
		for i, y := range rx {
			llr[i] = 2 * real(y) / ch.NoiseVar
		}
		start := time.Now() //lint:allow walltime calibration times the real Go LDPC decoder on the host to validate the cost model's shape
		dec, err := code.Decode(llr)
		if err != nil {
			return 0, 0, err
		}
		//lint:allow walltime host-time delta for the sanctioned decoder calibration measurement
		return time.Since(start), dec.Iterations, nil
	}

	// Codeblock scaling: decode cbs blocks back to back at 10 dB.
	for _, cbs := range res.Codeblocks {
		var total time.Duration
		for t := 0; t < trials; t++ {
			for b := 0; b < cbs; b++ {
				d, _, err := decodeOnce(10)
				if err != nil {
					return nil, err
				}
				total += d
			}
		}
		res.RealUs = append(res.RealUs, float64(total.Microseconds())/float64(trials))
		var f ran.FeatureVector
		f.Set(ran.FCodeblocks, float64(cbs))
		f.Set(ran.FSNRdB, 10)
		res.ModelUs = append(res.ModelUs,
			model.Mean(ran.TaskLDPCDecode, f, costmodel.Env{PoolCores: 1}).Us())
	}
	// SNR scaling: mean iterations at fixed size.
	for _, snr := range res.SNRs {
		var iters int
		for t := 0; t < trials; t++ {
			_, it, err := decodeOnce(snr)
			if err != nil {
				return nil, err
			}
			iters += it
		}
		res.RealIters = append(res.RealIters, float64(iters)/float64(trials))
		res.ModelIters = append(res.ModelIters, costmodel.IterationFactor(snr))
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *CalibrationResult) String() string {
	var sb strings.Builder
	header(&sb, "Calibration: cost model vs the real Go PHY decoder")
	sb.WriteString("codeblock scaling (10 dB):\n")
	fmt.Fprintf(&sb, "%6s %14s %14s %18s\n", "cbs", "real us", "model us", "real/model ratio")
	for i, cbs := range r.Codeblocks {
		fmt.Fprintf(&sb, "%6d %14.0f %14.0f %18.2f\n",
			cbs, r.RealUs[i], r.ModelUs[i], r.RealUs[i]/r.ModelUs[i])
	}
	sb.WriteString("SNR scaling (fixed size):\n")
	fmt.Fprintf(&sb, "%8s %14s %16s\n", "snr dB", "real iters", "model factor")
	for i, snr := range r.SNRs {
		fmt.Fprintf(&sb, "%8.0f %14.1f %16.2f\n", snr, r.RealIters[i], r.ModelIters[i])
	}
	sb.WriteString("shape checks: real decoding is ~linear in codeblocks and effort falls with SNR,\n")
	sb.WriteString("matching the structures the cost model encodes and the quantile trees learn\n")
	return sb.String()
}
