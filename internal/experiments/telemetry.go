package experiments

import (
	"io"

	"concordia/internal/core"
	"concordia/internal/sim"
	"concordia/internal/telemetry"
	"concordia/internal/workloads"
)

// CaptureTelemetry runs the canonical collocation scenario — the 7-cell
// 20 MHz pool sharing 8 cores with Redis under the Concordia scheduler —
// with telemetry enabled and writes the Chrome trace-event JSON to traceW
// and the metrics time-series CSV to metricsW (either may be nil to skip
// that export). The exported bytes are deterministic: fixed seed, virtual
// timestamps, sorted iteration — identical across runs and Workers counts.
func CaptureTelemetry(o Options, traceW, metricsW io.Writer) error {
	rec := telemetry.New(telemetry.Options{})
	cfg := core.Scenario20MHz(7, 8)
	cfg.Workload = workloads.Redis
	cfg.Load = 0.25
	cfg.Seed = o.Seed
	cfg.TrainingSlots = o.training()
	cfg.Workers = o.Workers
	cfg.Telemetry = rec
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	sys.Run(o.dur(2 * sim.Second))
	if traceW != nil {
		if err := sys.WriteChromeTrace(traceW); err != nil {
			return err
		}
	}
	if metricsW != nil {
		if err := sys.WriteMetricsCSV(metricsW); err != nil {
			return err
		}
	}
	return nil
}
