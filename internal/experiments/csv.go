package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"concordia/internal/ran"
)

// Tabular is implemented by results that can export their data series for
// plotting (the figures' raw points, as opposed to the rendered text
// tables).
type Tabular interface {
	// CSV returns a header and data rows.
	CSV() (header []string, rows [][]string)
}

// WriteCSV renders any Tabular result as CSV.
func WriteCSV(t Tabular, w io.Writer) error {
	cw := csv.NewWriter(w)
	header, rows := t.CSV()
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
func d(v int) string     { return strconv.Itoa(v) }

// CSV implements Tabular for Fig 3.
func (r *Fig3Result) CSV() ([]string, [][]string) {
	header := []string{"kb", "cdf"}
	var rows [][]string
	for _, kb := range []float64{0, 0.5, 1, 2, 3, 4} {
		rows = append(rows, []string{f(kb), f(r.CDFPoints[kb])})
	}
	return header, rows
}

// CSV implements Tabular for Fig 8a.
func (r *Fig8aResult) CSV() ([]string, [][]string) {
	header := []string{"load", "config", "reclaimed", "upper_bound", "reliability"}
	var rows [][]string
	for _, p := range r.Points100MHz {
		rows = append(rows, []string{f(p.Load), "100mhz", f(p.Reclaimed), f(p.UpperBound), f(p.Reliable)})
	}
	for _, p := range r.Points20MHz {
		rows = append(rows, []string{f(p.Load), "20mhz", f(p.Reclaimed), f(p.UpperBound), f(p.Reliable)})
	}
	return header, rows
}

// CSV implements Tabular for Fig 8b.
func (r *Fig8bResult) CSV() ([]string, [][]string) {
	header := []string{"workload", "load", "achieved", "ideal", "frac_of_ideal", "ran_reliability"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload.String(), f(row.Load), f(row.Achieved), f(row.Ideal),
			f(row.FracOfIdeal), f(row.RANReliable)})
	}
	return header, rows
}

// CSV implements Tabular for Fig 11.
func (r *Fig11Result) CSV() ([]string, [][]string) {
	header := []string{"config", "scheduler", "workload", "median_us", "p9999_us", "p99999_us", "deadline_us", "reliability"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Config, string(row.Scheduler), row.Workload.String(),
			f(row.AvgUs), f(row.P9999Us), f(row.P99999Us), f(row.DeadlineUs), f(row.Reliable)})
	}
	return header, rows
}

// CSV implements Tabular for Fig 13.
func (r *Fig13Result) CSV() ([]string, [][]string) {
	header := []string{"load", "reclaim_qdt", "reclaim_pwcet"}
	var rows [][]string
	for i, load := range r.Loads {
		rows = append(rows, []string{f(load), f(r.ReclaimQDT[i]), f(r.ReclaimPWCET[i])})
	}
	return header, rows
}

// CSV implements Tabular for Fig 14.
func (r *Fig14Result) CSV() ([]string, [][]string) {
	header := []string{"scenario", "model", "missed_pct", "avg_err_us"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Scenario, row.Model, f(row.MissedPct), f(row.AvgErrUs)})
	}
	for _, row := range r.FullDAG {
		rows = append(rows, []string{row.Scenario, row.Model, f(row.MissedPct), ""})
	}
	return header, rows
}

// CSV implements Tabular for Fig 15a.
func (r *Fig15aResult) CSV() ([]string, [][]string) {
	header := []string{"cells", "scheduler_us", "predictor_us"}
	var rows [][]string
	for i, c := range r.Cells {
		rows = append(rows, []string{d(c), f(r.SchedulerUs[i]), f(r.PredictorUs[i])})
	}
	return header, rows
}

// CSV implements Tabular for Fig 15b.
func (r *Fig15bResult) CSV() ([]string, [][]string) {
	header := []string{"deadline_us", "p99999_us", "reclaimed"}
	var rows [][]string
	for i := range r.DeadlinesUs {
		rows = append(rows, []string{f(r.DeadlinesUs[i]), f(r.TailUs[i]), f(r.Reclaimed[i])})
	}
	return header, rows
}

// CSV implements Tabular for the ablation.
func (r *AblationResult) CSV() ([]string, [][]string) {
	header := []string{"variant", "reliability", "p9999_us", "reclaimed", "events_per_ms"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Variant, f(row.Reliability), f(row.P9999Us), f(row.Reclaimed), f(row.EventsPerMs)})
	}
	return header, rows
}

// CSV implements Tabular for Fig 6.
func (r *Fig6Result) CSV() ([]string, [][]string) {
	header := []string{"codeblocks", "cores", "mean_us", "p99_us"}
	var rows [][]string
	for _, cores := range []int{1, 4, 6} {
		for i, cbs := range r.Codeblocks {
			rows = append(rows, []string{d(cbs), d(cores), f(r.MeanUs[cores][i]), f(r.P99Us[cores][i])})
		}
	}
	return header, rows
}

// RunCSV executes a named experiment and writes its raw series as CSV when
// the result supports it; otherwise it reports an error.
func RunCSV(name string, o Options, w io.Writer) error {
	var res any
	var err error
	switch name {
	case "fig3":
		res, err = RunFig3Traffic(o)
	case "fig6":
		res, err = RunFig6LDPCScaling(o)
	case "fig8a":
		res, err = RunFig8Reclaimed(o)
	case "fig8b":
		res, err = RunFig8Workloads(o)
	case "fig11":
		res, err = RunFig11TailLatency(o)
	case "fig13":
		res, err = RunFig13PWCET(o)
	case "fig14":
		res, err = RunFig14Models(o, ran.TaskLDPCDecode)
	case "fig15a":
		res, err = RunFig15Overhead(o)
	case "fig15b":
		res, err = RunFig15Deadline(o)
	case "ablation":
		res, err = RunAblation(o)
	case "chaos":
		res, err = RunChaos(o, "sweep")
	case "predcal":
		res, err = RunPredCal(o)
	case "fleet":
		res, err = RunFleet(o)
	case "accelsweep":
		res, err = RunAccelSweep(o)
	case "slosweep":
		res, err = RunSLOSweep(o)
	default:
		return fmt.Errorf("experiments: %q has no CSV form", name)
	}
	if err != nil {
		return err
	}
	return WriteCSV(res.(Tabular), w)
}
