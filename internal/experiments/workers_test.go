package experiments

import (
	"bytes"
	"testing"
)

// TestChaosPredCalWorkerDeterminism asserts the chaos and predcal harnesses
// inherit the repo's byte-identity guarantee (DESIGN.md §2): the survival
// table, calibration table and both CSV series are the same bytes whether
// the experiment jobs run serially or fan out across 2 or 8 workers. This is
// the experiment-level gate for the zero-alloc refactor — buffer reuse in
// the hot path must never leak state between concurrently running jobs.
func TestChaosPredCalWorkerDeterminism(t *testing.T) {
	base := quick(t)
	base.Scale = 0.02
	type capture struct {
		workers                              int
		chaosTab, chaosCSV, predTab, predCSV []byte
	}
	var captures []capture
	for _, w := range []int{1, 2, 8} {
		o := base
		o.Workers = w
		cr, err := RunChaos(o, "sweep")
		if err != nil {
			t.Fatalf("Workers=%d chaos: %v", w, err)
		}
		pr, err := RunPredCal(o)
		if err != nil {
			t.Fatalf("Workers=%d predcal: %v", w, err)
		}
		var ccsv, pcsv bytes.Buffer
		if err := WriteCSV(cr, &ccsv); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(pr, &pcsv); err != nil {
			t.Fatal(err)
		}
		c := capture{
			workers:  w,
			chaosTab: []byte(cr.String()),
			chaosCSV: ccsv.Bytes(),
			predTab:  []byte(pr.String()),
			predCSV:  pcsv.Bytes(),
		}
		if len(c.chaosTab) == 0 || len(c.chaosCSV) == 0 || len(c.predTab) == 0 || len(c.predCSV) == 0 {
			t.Fatalf("Workers=%d: empty artifact", w)
		}
		captures = append(captures, c)
	}
	ref := captures[0]
	for _, c := range captures[1:] {
		if !bytes.Equal(ref.chaosTab, c.chaosTab) {
			t.Errorf("chaos table differs between Workers=1 and Workers=%d", c.workers)
		}
		if !bytes.Equal(ref.chaosCSV, c.chaosCSV) {
			t.Errorf("chaos CSV differs between Workers=1 and Workers=%d", c.workers)
		}
		if !bytes.Equal(ref.predTab, c.predTab) {
			t.Errorf("predcal table differs between Workers=1 and Workers=%d", c.workers)
		}
		if !bytes.Equal(ref.predCSV, c.predCSV) {
			t.Errorf("predcal CSV differs between Workers=1 and Workers=%d", c.workers)
		}
	}
}
