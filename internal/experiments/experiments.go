// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.2, §6, §7, Appendix A.2) on the simulated platform. Each
// RunXxx function is one experiment: it assembles the relevant scenario,
// runs it, and returns a result struct whose String method prints the same
// rows/series the paper reports.
//
// Durations are scaled by Options.Scale: 1.0 runs experiment-quality
// lengths (tens of simulated seconds to minutes); the test suite and
// benchmarks use small scales for speed. Absolute numbers differ from the
// paper (the substrate is a simulator, not a tuned Xeon running FlexRAN) —
// EXPERIMENTS.md records the paper-vs-measured comparison; the *shape* is
// the reproduction target.
package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/parallel"
	"concordia/internal/sim"
)

// Options controls experiment scale and seeding.
type Options struct {
	// Seed makes every experiment deterministic.
	Seed uint64
	// Scale multiplies simulated durations; 1.0 = full experiment quality,
	// 0.05 = quick smoke runs.
	Scale float64
	// TrainingSlots overrides offline profiling length (0 = default).
	TrainingSlots int
	// Workers bounds the worker goroutines used by RunAll's experiment
	// fan-out and by each experiment's internal sweeps: 0 = runtime.NumCPU(),
	// 1 = fully serial. Every experiment partitions its iteration space into
	// a fixed number of shards with their own RNG substreams, so rendered
	// output is byte-for-byte identical for every setting (experiments that
	// report host wall-clock time — fig15a, calibration — differ only in
	// those timings).
	Workers int
}

// DefaultOptions returns full-quality settings.
func DefaultOptions() Options { return Options{Seed: 42, Scale: 1.0} }

// Quick returns reduced settings for tests and smoke runs, sized so the
// whole suite fits Go's default 10-minute package timeout on one core.
func Quick() Options { return Options{Seed: 42, Scale: 0.025, TrainingSlots: 500} }

func (o Options) dur(base sim.Time) sim.Time {
	if o.Scale <= 0 {
		return base
	}
	d := sim.Time(float64(base) * o.Scale)
	if d < 200*sim.Millisecond {
		d = 200 * sim.Millisecond
	}
	return d
}

func (o Options) training() int {
	if o.TrainingSlots > 0 {
		return o.TrainingSlots
	}
	return core.DefaultTrainingSlots
}

// workers resolves the worker-count knob (0 → NumCPU).
func (o Options) workers() int { return parallel.Count(o.Workers) }

// sampleShards is the fixed shard count for Monte-Carlo sample sweeps. It is
// deliberately independent of the worker count: shard boundaries and the RNG
// substream assigned to each shard depend only on the iteration-space size,
// so the drawn samples are identical no matter how many workers run them.
const sampleShards = 16

// header renders a section banner.
func header(sb *strings.Builder, title string) {
	fmt.Fprintf(sb, "%s\n%s\n", title, strings.Repeat("-", len(title)))
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

func nines(v float64) string { return fmt.Sprintf("%.5f%%", 100*v) }
