package experiments

import (
	"bytes"
	"testing"
)

// TestSLOSweepAlertLeadsSpike is the streaming SLO plane's reason to exist:
// on the storm chaos scenario, at least one sweep point must fire a
// burn-rate alert before the autopsy-attributed miss spike has completed —
// the online plane pages while the incident is still unfolding, without
// waiting for post-hoc trace analysis.
func TestSLOSweepAlertLeadsSpike(t *testing.T) {
	o := quick(t)
	r, err := RunSLOSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(sloSweepWindowsMs) * len(sloSweepLoads); len(r.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(r.Rows), want)
	}
	leads := 0
	for _, row := range r.Rows {
		if row.DAGs == 0 {
			t.Errorf("window=%gms load=%g: no DAGs released", row.WindowMs, row.Load)
		}
		if row.Misses == 0 {
			t.Errorf("window=%gms load=%g: storm scenario produced no autopsy misses", row.WindowMs, row.Load)
		}
		if row.Leads {
			leads++
			if row.FirstAlertUs < 0 || row.FirstAlertUs >= row.SpikeEndUs {
				t.Errorf("window=%gms load=%g: Leads set but alert=%f spike_end=%f",
					row.WindowMs, row.Load, row.FirstAlertUs, row.SpikeEndUs)
			}
		}
	}
	if leads == 0 {
		t.Fatalf("no sweep point alerted before its miss spike completed:\n%s", r.String())
	}
}

// TestSLOSweepWorkerDeterminism: the sweep table and CSV are byte-identical
// at any worker count — each job owns its system, recorder and SLO tracker,
// and rows land in grid order regardless of completion order.
func TestSLOSweepWorkerDeterminism(t *testing.T) {
	base := quick(t)
	type capture struct {
		workers  int
		tab, csv []byte
	}
	var captures []capture
	for _, w := range []int{1, 2, 8} {
		o := base
		o.Workers = w
		r, err := RunSLOSweep(o)
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		var csv bytes.Buffer
		if err := WriteCSV(r, &csv); err != nil {
			t.Fatal(err)
		}
		c := capture{workers: w, tab: []byte(r.String()), csv: csv.Bytes()}
		if len(c.tab) == 0 || len(c.csv) == 0 {
			t.Fatalf("Workers=%d: empty artifact", w)
		}
		captures = append(captures, c)
	}
	for _, c := range captures[1:] {
		if !bytes.Equal(captures[0].tab, c.tab) {
			t.Errorf("slosweep table differs between Workers=1 and Workers=%d", c.workers)
		}
		if !bytes.Equal(captures[0].csv, c.csv) {
			t.Errorf("slosweep CSV differs between Workers=1 and Workers=%d", c.workers)
		}
	}
}
