package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/costmodel"
	"concordia/internal/fleet"
	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/sim"
	"concordia/internal/traffic"
)

// fleetCoresPerServer is the pool size of every simulated fleet server.
const fleetCoresPerServer = 12

// fleetGrid is the cells×servers sweep: from the 40-cell example scale to a
// 200-cell metro fleet — well past the paper's 3-cell LTE captures (the
// traffic layer volume-scales those statistics ≥10× underneath).
var fleetGrid = []struct{ Cells, Servers int }{
	{40, 4},
	{100, 8},
	{200, 12},
}

// fleetLoads is the per-cell load axis of the miss/pooling curves.
var fleetLoads = []float64{0.2, 0.5, 0.8}

// FleetPoint is one (cells, servers, load, mode) measurement.
type FleetPoint struct {
	Cells, Servers int
	Load           float64
	// Mode is "pooled" (migrating placement) or "static" (partition frozen
	// at admission — the baseline).
	Mode string

	DAGs       uint64
	MissPct    float64
	Migrations int
	Rejected   int

	// RequiredCores is the time-averaged fleet core requirement; IdealCores
	// the single-global-pool bound; TotalCores the provisioned fleet size.
	// Both modes of a pair are evaluated at the static baseline's calibrated
	// kappa, so the difference isolates placement (the static run drops more
	// late DAGs, does less work, and would otherwise self-calibrate a
	// flatteringly lower kappa).
	RequiredCores float64
	IdealCores    float64
	TotalCores    int
	// CoresSaved is the pooling gain at equal reliability: the extra cores
	// the static partition must provision fleet-wide before its deadline-miss
	// rate drops to the pooled fleet's (0 on static rows by construction, and
	// 0 wherever static already matches pooled). Measured by capacity search:
	// re-running the static partition with progressively larger servers.
	CoresSaved float64
}

// FleetResult is the fleet pooling experiment outcome.
type FleetResult struct {
	Rows []FleetPoint
	// TotalUEs is the modeled fleet-wide subscriber population of the
	// largest grid point.
	TotalUEs int64
}

// RunFleet sweeps fleet sizes and loads, running each configuration twice —
// migrating placement vs static partition — over identical traffic, traces
// and topology (same substream seed per pair), and reports deadline-miss
// curves and the pooling gain in cores. Servers fan out across o.Workers
// inside each fleet run; the sweep itself is serial, so rendered output is
// byte-identical for every worker count.
func RunFleet(o Options) (*FleetResult, error) {
	// One predictor set serves every run: all fleet servers host identical
	// 20 MHz cells, and training is the dominant fixed cost.
	model := costmodel.New(o.Seed ^ 0xc0de)
	data := core.Profile(ran.Cells20MHz(1), o.training(), model, fleetCoresPerServer, o.Seed^0x0ff1)
	preds, err := core.TrainPredictorsWorkers(data, 1.0, o.Workers)
	if err != nil {
		return nil, err
	}
	res := &FleetResult{}
	horizon := o.dur(2 * sim.Second)
	for gi, g := range fleetGrid {
		for li, load := range fleetLoads {
			cfg := fleet.Config{
				Cells: g.Cells, Servers: g.Servers, CoresPerServer: fleetCoresPerServer,
				Load: load, Horizon: horizon, Epochs: 8,
				Seed:       rng.SubstreamSeed(o.Seed, uint64(gi*len(fleetLoads)+li)),
				Workers:    o.Workers,
				Predictors: preds,
			}
			staticCfg := cfg
			staticCfg.Static = true
			static, err := fleet.Run(staticCfg)
			if err != nil {
				return nil, err
			}
			pooled, err := fleet.Run(cfg)
			if err != nil {
				return nil, err
			}
			saved, err := fleetCoresSaved(staticCfg, static, pooled)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows,
				fleetPoint(load, "static", static, static.Kappa, 0),
				fleetPoint(load, "pooled", pooled, static.Kappa, saved))
		}
	}
	last := fleetGrid[len(fleetGrid)-1]
	res.TotalUEs = (traffic.ScaleSpec{Cells: last.Cells}).TotalUEs()
	return res, nil
}

// fleetCoresSaved measures the pooling gain at equal reliability: when the
// static partition misses more deadlines than the pooled fleet, grow its
// servers one core at a time (identical traffic, topology, and seed) until
// it matches, and charge the growth fleet-wide. The search is capped at
// double-size servers; hitting the cap reports the cap as a lower bound.
func fleetCoresSaved(staticCfg fleet.Config, static, pooled *fleet.Result) (float64, error) {
	if static.MissRate() <= pooled.MissRate() {
		return 0, nil
	}
	base := static.CoresPerServer
	for c := base + 1; c <= 2*base; c++ {
		probeCfg := staticCfg
		probeCfg.CoresPerServer = c
		probe, err := fleet.Run(probeCfg)
		if err != nil {
			return 0, err
		}
		if probe.MissRate() <= pooled.MissRate() {
			return float64((c - base) * static.Servers), nil
		}
	}
	return float64(base * static.Servers), nil
}

func fleetPoint(load float64, mode string, r *fleet.Result, kappa, saved float64) FleetPoint {
	return FleetPoint{
		Cells: r.Cells, Servers: r.Servers, Load: load, Mode: mode,
		DAGs: r.DAGs, MissPct: 100 * r.MissRate(),
		Migrations: r.Migrations, Rejected: r.Rejected,
		RequiredCores: kappa * r.RequiredDemand, IdealCores: kappa * r.IdealDemand,
		TotalCores: r.TotalCores, CoresSaved: saved,
	}
}

// String renders the sweep table.
func (r *FleetResult) String() string {
	var sb strings.Builder
	header(&sb, "Fleet pooling: cells x servers sweep, migrating placement vs static partition")
	fmt.Fprintf(&sb, "modeled subscribers at largest point: %d\n\n", r.TotalUEs)
	sb.WriteString("cells  servers  load  mode    dags      miss%     req-cores  ideal  saved  migr  rej\n")
	for _, p := range r.Rows {
		fmt.Fprintf(&sb, "%-6d %-8d %-5.2f %-7s %-9d %-9.5f %-10.1f %-6.1f %-6.1f %-5d %d\n",
			p.Cells, p.Servers, p.Load, p.Mode, p.DAGs, p.MissPct,
			p.RequiredCores, p.IdealCores, p.CoresSaved, p.Migrations, p.Rejected)
	}
	return sb.String()
}

// CSV implements Tabular for the fleet sweep.
func (r *FleetResult) CSV() ([]string, [][]string) {
	header := []string{
		"cells", "servers", "load", "mode", "dags", "miss_pct",
		"required_cores", "ideal_cores", "total_cores", "cores_saved",
		"migrations", "rejected",
	}
	var rows [][]string
	for _, p := range r.Rows {
		rows = append(rows, []string{
			d(p.Cells), d(p.Servers), f(p.Load), p.Mode,
			fmt.Sprintf("%d", p.DAGs), f(p.MissPct),
			f(p.RequiredCores), f(p.IdealCores), d(p.TotalCores), f(p.CoresSaved),
			d(p.Migrations), d(p.Rejected),
		})
	}
	return header, rows
}
