package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/parallel"
	"concordia/internal/sim"
)

// AccelSweepRow is one batching configuration of the accelerator-fleet
// deployment: the same accelerated scenario run with offload submissions
// coalesced up to Batch requests per DMA transfer.
type AccelSweepRow struct {
	// Batch is the coalescing bound (1 = per-task submission, the baseline).
	Batch int
	// Reliability is the fraction of released DAGs that met their deadline.
	Reliability float64
	P9999Us     float64
	// Batches and Coalesced count multi-request transfers and the follower
	// tasks that rode along; SubmitSavedUs is the aggregate CPU submit time
	// they amortized away.
	Batches       uint64
	Coalesced     uint64
	SubmitSavedUs float64
	// QueueFull counts submissions the bounded VF queues pushed back to the
	// CPU path.
	QueueFull uint64
	// BusyCoreS is the RAN pool's busy CPU time in core-seconds — the
	// denominator the submit saving should show up in.
	BusyCoreS float64
}

// AccelSweepResult is the offload-batching study: submit-overhead
// amortization as the coalescing bound rises over the VF-partitioned
// accelerator fleet.
type AccelSweepResult struct{ Rows []AccelSweepRow }

// accelSweepBatches is the swept coalescing bound.
var accelSweepBatches = []int{1, 2, 4, 8}

// RunAccelSweep executes the offload-batching sweep on the fleet-shaped
// accelerated 20 MHz deployment (two two-engine cards, two VFs each, bounded
// queue depth — the chaos testbed's shape, without faults).
func RunAccelSweep(o Options) (*AccelSweepResult, error) {
	dur := o.dur(20 * sim.Second)
	rows, err := parallel.Map(o.workers(), len(accelSweepBatches), func(i int) (AccelSweepRow, error) {
		cfg := chaosConfig(o)
		cfg.Faults = nil
		cfg.OffloadBatch = accelSweepBatches[i]
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return AccelSweepRow{}, err
		}
		rep := sys.Run(dur)
		return AccelSweepRow{
			Batch:         accelSweepBatches[i],
			Reliability:   rep.Reliability(),
			P9999Us:       rep.TailLatencyUs(0.9999),
			Batches:       rep.OffloadBatches,
			Coalesced:     rep.BatchedTasks,
			SubmitSavedUs: rep.SubmitSaved.Us(),
			QueueFull:     rep.OffloadQueueFull,
			BusyCoreS:     rep.BusyCoreSeconds,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AccelSweepResult{Rows: rows}, nil
}

// String implements fmt.Stringer: the batching table.
func (r *AccelSweepResult) String() string {
	var sb strings.Builder
	header(&sb, "Accel sweep: offload batching over the VF-partitioned fleet")
	fmt.Fprintf(&sb, "%-6s %12s %10s %9s %10s %14s %11s %11s\n",
		"batch", "reliability", "p9999 us", "batches", "coalesced", "submit-saved", "queue-full", "busy core-s")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-6d %12s %10.0f %9d %10d %12.0fus %11d %11.3f\n",
			row.Batch, pct(row.Reliability), row.P9999Us, row.Batches,
			row.Coalesced, row.SubmitSavedUs, row.QueueFull, row.BusyCoreS)
	}
	sb.WriteString("batch=1 is per-task submission; coalesced followers skip their own submit window,\n")
	sb.WriteString("so aggregate submit overhead (and busy CPU time) falls as the bound rises\n")
	return sb.String()
}

// CSV implements Tabular for the accel sweep.
func (r *AccelSweepResult) CSV() ([]string, [][]string) {
	header := []string{"batch", "reliability", "p9999_us", "batches", "coalesced",
		"submit_saved_us", "queue_full", "busy_core_s"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(row.Batch), f(row.Reliability), f(row.P9999Us),
			fmt.Sprintf("%d", row.Batches), fmt.Sprintf("%d", row.Coalesced),
			f(row.SubmitSavedUs), fmt.Sprintf("%d", row.QueueFull), f(row.BusyCoreS)})
	}
	return header, rows
}
