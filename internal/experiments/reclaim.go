package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/costmodel"
	"concordia/internal/parallel"
	"concordia/internal/pool"
	"concordia/internal/predictor"
	"concordia/internal/ran"
	"concordia/internal/sim"
	"concordia/internal/workloads"
)

// Loads is the Fig 8 x-axis.
var Loads = []float64{0.05, 0.25, 0.50, 0.75, 1.00}

// table2Scenario returns the Fig 8 deployment for a bandwidth class, with
// the paper's Table 2 core counts scaled to this substrate's measured
// minimums (recorded in EXPERIMENTS.md).
func table2Scenario(is100MHz bool, o Options) core.Config {
	if is100MHz {
		cfg := core.Scenario100MHz(2, 6)
		cfg.PeakULBytes = 10000
		cfg.PeakDLBytes = 94000 // peak 1.5 Gb/s
		cfg.Seed = o.Seed
		cfg.TrainingSlots = o.training()
		return cfg
	}
	cfg := core.Scenario20MHz(7, 8)
	cfg.Seed = o.Seed
	cfg.TrainingSlots = o.training()
	return cfg
}

// Fig8aPoint is one (load, reclaim) measurement.
type Fig8aPoint struct {
	Load       float64
	Reclaimed  float64
	UpperBound float64
	Reliable   float64
}

// Fig8aResult holds the reclaimed-CPU curves for both configurations.
type Fig8aResult struct {
	Points100MHz []Fig8aPoint
	Points20MHz  []Fig8aPoint
}

// RunFig8Reclaimed sweeps cell traffic load and measures the CPU share
// Concordia returns to best-effort workloads versus the ideal bound.
func RunFig8Reclaimed(o Options) (*Fig8aResult, error) {
	dur := o.dur(60 * sim.Second)
	// 100 MHz points occupy indices [0, len(Loads)), 20 MHz the rest — the
	// legacy sweep order, preserved by the ordered fan-out.
	pts, err := parallel.Map(o.workers(), 2*len(Loads), func(j int) (Fig8aPoint, error) {
		is100 := j < len(Loads)
		cfg := table2Scenario(is100, o)
		cfg.Load = Loads[j%len(Loads)]
		cfg.Workload = workloads.Redis
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return Fig8aPoint{}, err
		}
		rep := sys.Run(dur)
		return Fig8aPoint{
			Load:       cfg.Load,
			Reclaimed:  rep.ReclaimedFraction(),
			UpperBound: rep.IdealReclaimable(),
			Reliable:   rep.Reliability(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8aResult{Points100MHz: pts[:len(Loads)], Points20MHz: pts[len(Loads):]}, nil
}

// String implements fmt.Stringer.
func (r *Fig8aResult) String() string {
	var sb strings.Builder
	header(&sb, "Fig 8a: reclaimed CPU vs cell traffic load")
	fmt.Fprintf(&sb, "%6s | %12s %12s | %12s %12s\n",
		"load", "100MHz recl", "100MHz bound", "20MHz recl", "20MHz bound")
	for i := range r.Points100MHz {
		a, b := r.Points100MHz[i], r.Points20MHz[i]
		fmt.Fprintf(&sb, "%5.0f%% | %12s %12s | %12s %12s\n",
			100*a.Load, pct(a.Reclaimed), pct(a.UpperBound), pct(b.Reclaimed), pct(b.UpperBound))
	}
	sb.WriteString("paper: >70% reclaimed at low load; 38% (100MHz) and 0% (20MHz) at peak\n")
	return sb.String()
}

// Fig8bRow is one collocated-workload throughput measurement.
type Fig8bRow struct {
	Workload     workloads.Kind
	Load         float64
	Achieved     float64
	Ideal        float64 // no-vRAN reference on the same core count
	FracOfIdeal  float64
	RANReliable  float64
	CoresGranted float64 // average cores' worth of time granted
}

// Fig8bResult is the collocated-workload performance figure (8b-8d + the
// omitted MLPerf panel).
type Fig8bResult struct{ Rows []Fig8bRow }

// RunFig8Workloads measures achieved workload throughput against the
// no-vRAN ideal across loads, for the 100 MHz configuration.
func RunFig8Workloads(o Options) (*Fig8bResult, error) {
	dur := o.dur(60 * sim.Second)
	wls := []workloads.Kind{workloads.Redis, workloads.Nginx, workloads.TPCC, workloads.MLPerf}
	loads := []float64{0.05, 0.50, 1.00}
	rows, err := parallel.Map(o.workers(), len(wls)*len(loads), func(j int) (Fig8bRow, error) {
		wl := wls[j/len(loads)]
		load := loads[j%len(loads)]
		prof, _ := workloads.ProfileOf(wl)
		cfg := table2Scenario(true, o)
		cfg.Load = load
		cfg.Workload = wl
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return Fig8bRow{}, err
		}
		rep := sys.Run(dur)
		achieved := rep.WorkloadThroughput(wl)
		ideal := prof.Ideal(cfg.PoolCores, dur.Seconds())
		return Fig8bRow{
			Workload:     wl,
			Load:         load,
			Achieved:     achieved,
			Ideal:        ideal,
			FracOfIdeal:  achieved / ideal,
			RANReliable:  rep.Reliability(),
			CoresGranted: rep.BestEffortCoreSeconds / dur.Seconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8bResult{Rows: rows}, nil
}

// String implements fmt.Stringer.
func (r *Fig8bResult) String() string {
	var sb strings.Builder
	header(&sb, "Fig 8b-d: collocated workload throughput (100 MHz, 2 cells)")
	fmt.Fprintf(&sb, "%-8s %6s %14s %14s %10s %12s\n",
		"workload", "load", "achieved/s", "ideal/s", "of ideal", "ran reliab")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-8s %5.0f%% %14.0f %14.0f %10s %12s\n",
			row.Workload, 100*row.Load, row.Achieved/60, row.Ideal/60,
			pct(row.FracOfIdeal), nines(row.RANReliable))
	}
	sb.WriteString("paper at low load: redis 76.6%, nginx 82.2%, tpcc 72%, mlperf 78% of ideal\n")
	return sb.String()
}

// Fig13Result compares the quantile-tree predictor against the conventional
// single-value EVT/pWCET predictor (§6.3).
type Fig13Result struct {
	Loads          []float64
	ReclaimQDT     []float64
	ReclaimPWCET   []float64
	TailQDTUs      float64
	TailPWCETUs    float64
	ReliabilityQDT float64
	ReliabilityPW  float64
}

// evtPredictorSet trains a single-value EVT predictor per task kind.
type evtPredictorSet map[ran.TaskKind]*predictor.EVTPredictor

func (s evtPredictorSet) Predict(kind ran.TaskKind, f ran.FeatureVector) sim.Time {
	if p, ok := s[kind]; ok {
		return p.Predict(f)
	}
	return 0
}

func (s evtPredictorSet) Observe(kind ran.TaskKind, f ran.FeatureVector, rt sim.Time) {
	if p, ok := s[kind]; ok {
		p.Observe(f, rt)
	}
}

// trainEVTSet builds the pWCET baseline from the same offline data.
func trainEVTSet(cfg core.Config) (pool.Predictors, error) {
	model := costmodel.New(cfg.Seed ^ 0xc0de)
	data := core.Profile(cfg.Cells, cfg.TrainingSlots, model, cfg.PoolCores, cfg.Seed^0x0ff1)
	set := evtPredictorSet{}
	for kind, samples := range data {
		if len(samples) < 200 {
			continue
		}
		p, err := predictor.TrainEVT(samples, 0.99999)
		if err != nil {
			return nil, err
		}
		set[kind] = p
	}
	return set, nil
}

// RunFig13PWCET sweeps load for the 20 MHz configuration under both
// predictors.
func RunFig13PWCET(o Options) (*Fig13Result, error) {
	dur := o.dur(60 * sim.Second)
	type point struct {
		reclaimQ, reclaimE float64
		tailQ, tailE       float64
		reliabQ, reliabE   float64
	}
	// One job per load point; each job runs its QDT/pWCET pair back to back.
	pts, err := parallel.Map(o.workers(), len(Loads), func(j int) (point, error) {
		cfg := table2Scenario(false, o)
		cfg.Load = Loads[j]
		cfg.Workload = workloads.Redis

		sysQ, err := core.NewSystem(cfg)
		if err != nil {
			return point{}, err
		}
		repQ := sysQ.Run(dur)

		cfgE := cfg
		cfgE.TrainingSlots = o.training()
		evt, err := trainEVTSet(cfgE)
		if err != nil {
			return point{}, err
		}
		cfgE.Predictor = evt
		sysE, err := core.NewSystem(cfgE)
		if err != nil {
			return point{}, err
		}
		repE := sysE.Run(dur)
		return point{
			reclaimQ: repQ.ReclaimedFraction(),
			reclaimE: repE.ReclaimedFraction(),
			tailQ:    repQ.TailLatencyUs(0.9999),
			tailE:    repE.TailLatencyUs(0.9999),
			reliabQ:  repQ.Reliability(),
			reliabE:  repE.Reliability(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{Loads: Loads}
	for i, pt := range pts {
		res.ReclaimQDT = append(res.ReclaimQDT, pt.reclaimQ)
		res.ReclaimPWCET = append(res.ReclaimPWCET, pt.reclaimE)
		if Loads[i] == 0.25 {
			res.TailQDTUs = pt.tailQ
			res.TailPWCETUs = pt.tailE
			res.ReliabilityQDT = pt.reliabQ
			res.ReliabilityPW = pt.reliabE
		}
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig13Result) String() string {
	var sb strings.Builder
	header(&sb, "Fig 13: Concordia QDT vs conventional pWCET (20 MHz)")
	fmt.Fprintf(&sb, "%6s %14s %14s\n", "load", "QDT reclaim", "pWCET reclaim")
	for i, load := range r.Loads {
		fmt.Fprintf(&sb, "%5.0f%% %14s %14s\n", 100*load, pct(r.ReclaimQDT[i]), pct(r.ReclaimPWCET[i]))
	}
	fmt.Fprintf(&sb, "tail p99.99 at 25%% load: QDT %.0f us vs pWCET %.0f us (paper: ~5 us apart)\n",
		r.TailQDTUs, r.TailPWCETUs)
	fmt.Fprintf(&sb, "reliability: QDT %s, pWCET %s\n", nines(r.ReliabilityQDT), nines(r.ReliabilityPW))
	sb.WriteString("paper: QDT reclaims up to 20% more CPU than pWCET\n")
	return sb.String()
}

// Fig15bResult is the TTI-deadline sweep (Fig 15b).
type Fig15bResult struct {
	DeadlinesUs []float64
	TailUs      []float64
	Reclaimed   []float64
}

// RunFig15Deadline sweeps the DAG deadline for the 20 MHz configuration at
// 25% load and reports tail latency and reclaimed CPU.
func RunFig15Deadline(o Options) (*Fig15bResult, error) {
	dur := o.dur(60 * sim.Second)
	deadlines := []float64{1600, 1800, 2000}
	type point struct{ tail, reclaimed float64 }
	pts, err := parallel.Map(o.workers(), len(deadlines), func(j int) (point, error) {
		cfg := table2Scenario(false, o)
		cfg.Load = 0.25
		cfg.Workload = workloads.Redis
		cfg.Deadline = sim.FromUs(deadlines[j])
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return point{}, err
		}
		rep := sys.Run(dur)
		return point{tail: rep.TailLatencyUs(0.99999), reclaimed: rep.ReclaimedFraction()}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig15bResult{DeadlinesUs: deadlines}
	for _, pt := range pts {
		res.TailUs = append(res.TailUs, pt.tail)
		res.Reclaimed = append(res.Reclaimed, pt.reclaimed)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig15bResult) String() string {
	var sb strings.Builder
	header(&sb, "Fig 15b: effect of TTI deadline (20 MHz, 25% load)")
	fmt.Fprintf(&sb, "%12s %16s %12s\n", "deadline us", "p99.999 lat us", "reclaimed")
	for i := range r.DeadlinesUs {
		fmt.Fprintf(&sb, "%12.0f %16.0f %12s\n", r.DeadlinesUs[i], r.TailUs[i], pct(r.Reclaimed[i]))
	}
	sb.WriteString("paper: longer deadlines trade tail latency for more reclaimed CPU\n")
	return sb.String()
}
