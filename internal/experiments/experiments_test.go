package experiments

import (
	"bytes"
	"strings"
	"testing"

	"concordia/internal/ran"
)

// The experiment suite runs at Quick scale in tests: the point is to verify
// every harness executes, produces sane structure, and preserves the
// paper's qualitative orderings. bench_test.go at the module root exercises
// them as benchmarks.

func quick(t *testing.T) Options {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment harness runs are skipped in -short mode")
	}
	return Quick()
}

func TestFig3(t *testing.T) {
	r, err := RunFig3Traffic(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.SingleIdleFrac <= r.AggregateIdleFrac {
		t.Error("single cell must be idle more often than the aggregate")
	}
	if r.MedianKB <= 0 || r.P99KB < r.MedianKB {
		t.Errorf("volume quantiles out of order: med %.2f p99 %.2f", r.MedianKB, r.P99KB)
	}
	if !strings.Contains(r.String(), "Fig 3") {
		t.Error("missing header")
	}
}

func TestPooling(t *testing.T) {
	r, err := RunPoolingGaussian(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	// CV must fall with pool size; absolute waste must grow.
	if r.CV[len(r.CV)-1] >= r.CV[0] {
		t.Errorf("CV did not fall with pooling: %v", r.CV)
	}
	if r.WasteRatio[len(r.WasteRatio)-1] <= r.WasteRatio[0] {
		t.Errorf("absolute waste did not grow with pooling: %v", r.WasteRatio)
	}
}

func TestFig4a(t *testing.T) {
	r, err := RunFig4Utilization(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MinCores < 1 {
			t.Errorf("%s: min cores %d", row.Name, row.MinCores)
		}
		// The paper's motivation: utilization well below 100% even at peak.
		if row.AvgUtil >= 0.8 {
			t.Errorf("%s: util %.2f too high for the motivation claim", row.Name, row.AvgUtil)
		}
		if row.AvgUtil <= 0.05 {
			t.Errorf("%s: util %.2f implausibly low", row.Name, row.AvgUtil)
		}
	}
}

func TestFig4b(t *testing.T) {
	r, err := RunFig4Violations(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Interference must raise the tail versus isolated for each scenario.
	byScenario := map[string]map[string]float64{}
	for _, row := range r.Rows {
		if byScenario[row.Scenario] == nil {
			byScenario[row.Scenario] = map[string]float64{}
		}
		byScenario[row.Scenario][row.Workload.String()] = row.P9999Us
	}
	for sc, m := range byScenario {
		if m["redis"] <= m["isolated"] {
			t.Errorf("%s: redis tail %.0f not above isolated %.0f", sc, m["redis"], m["isolated"])
		}
	}
}

func TestFig6(t *testing.T) {
	r, err := RunFig6LDPCScaling(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Linear in codeblocks; multi-core penalty within (0, 25%].
	m1 := r.MeanUs[1]
	if m1[len(m1)-1] <= m1[0]*3 {
		t.Errorf("decode not scaling with codeblocks: %v", m1)
	}
	inc := r.MeanUs[6][4]/r.MeanUs[1][4] - 1
	if inc <= 0.05 || inc > 0.27 { // model effect ≤25% plus sampling noise
		t.Errorf("6-core increase %.2f outside (5%%, 27%%]", inc)
	}
}

func TestFig7(t *testing.T) {
	r, err := RunFig7Leaves(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.PooledLeafVar >= r.GlobalVariance/4 {
		t.Errorf("leaf variance %.0f not ≪ global %.0f", r.PooledLeafVar, r.GlobalVariance)
	}
	if r.KSPValue > 0.001 {
		t.Errorf("KS p-value %.3g should be <<0.001 under interference", r.KSPValue)
	}
	if r.WorstLeafW1Us <= 0 {
		t.Error("no leaf distortion measured")
	}
}

func TestFig8a(t *testing.T) {
	r, err := RunFig8Reclaimed(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Reclaim decreases with load; low-load reclaim is large.
	for _, pts := range [][]Fig8aPoint{r.Points100MHz, r.Points20MHz} {
		if pts[0].Reclaimed < 0.5 {
			t.Errorf("low-load reclaim %.2f want >0.5", pts[0].Reclaimed)
		}
		if pts[len(pts)-1].Reclaimed >= pts[0].Reclaimed {
			t.Errorf("reclaim did not fall with load: %v", pts)
		}
		for _, p := range pts {
			if p.Reclaimed > p.UpperBound+1e-9 {
				t.Errorf("reclaim %.3f above ideal bound %.3f", p.Reclaimed, p.UpperBound)
			}
		}
	}
}

func TestFig8b(t *testing.T) {
	r, err := RunFig8Workloads(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.FracOfIdeal <= 0 || row.FracOfIdeal >= 1 {
			t.Errorf("%v at %.0f%%: fraction of ideal %.2f out of (0,1)", row.Workload, 100*row.Load, row.FracOfIdeal)
		}
	}
}

func TestFig9(t *testing.T) {
	r, err := RunFig9Cache(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.FlexRAN.StallCyclesPerInstrIncrease <= r.Concordia.StallCyclesPerInstrIncrease {
		t.Errorf("FlexRAN stalls %.3f not above Concordia %.3f",
			r.FlexRAN.StallCyclesPerInstrIncrease, r.Concordia.StallCyclesPerInstrIncrease)
	}
	if r.ChurnFlexRAN <= r.ChurnConcordia {
		t.Errorf("FlexRAN churn %.2f not above Concordia %.2f", r.ChurnFlexRAN, r.ChurnConcordia)
	}
}

func TestFig10(t *testing.T) {
	r, err := RunFig10SchedLatency(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.Events["flexran/redis"] <= r.Events["concordia/redis"] {
		t.Errorf("FlexRAN events %d not above Concordia %d",
			r.Events["flexran/redis"], r.Events["concordia/redis"])
	}
	if r.Hists["concordia/redis"].Total() == 0 {
		t.Error("empty concordia histogram")
	}
}

func TestFig11(t *testing.T) {
	r, err := RunFig11TailLatency(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Concordia must never violate; FlexRAN must violate somewhere under
	// interference.
	flexViolations := 0
	for _, row := range r.Rows {
		if row.Scheduler == "concordia" && row.P99999Us > row.DeadlineUs {
			t.Errorf("Concordia violated: %+v", row)
		}
		if row.Scheduler == "flexran" && row.Workload.String() != "isolated" &&
			row.P99999Us > row.DeadlineUs {
			flexViolations++
		}
	}
	if flexViolations == 0 {
		t.Error("FlexRAN never violated under interference (Fig 11 shape lost)")
	}
}

func TestFig12(t *testing.T) {
	r, err := RunFig12Cores(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// Adding a core must not worsen the tail.
	for i := 0; i+1 < len(r.Rows); i += 2 {
		if r.Rows[i+1].P99999Us > r.Rows[i].P99999Us*1.2 {
			t.Errorf("%s: 9 cores tail %.0f much worse than 8 cores %.0f",
				r.Rows[i].Config, r.Rows[i+1].P99999Us, r.Rows[i].P99999Us)
		}
	}
}

func TestFig13(t *testing.T) {
	r, err := RunFig13PWCET(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	// QDT must reclaim at least as much as the single-value pWCET at every
	// load, and strictly more somewhere.
	better := false
	for i := range r.Loads {
		if r.ReclaimQDT[i] < r.ReclaimPWCET[i]-0.02 {
			t.Errorf("load %.0f%%: QDT %.3f below pWCET %.3f",
				100*r.Loads[i], r.ReclaimQDT[i], r.ReclaimPWCET[i])
		}
		if r.ReclaimQDT[i] > r.ReclaimPWCET[i]+0.01 {
			better = true
		}
	}
	if !better {
		t.Error("QDT never reclaimed more than pWCET")
	}
}

func TestFig14(t *testing.T) {
	r, err := RunFig14Models(quick(t), ran.TaskLDPCDecode)
	if err != nil {
		t.Fatal(err)
	}
	// Per scenario: the quantile tree's average error must be below the
	// linear model's (Fig 14b's point).
	byScenario := map[string]map[string]ModelAccuracy{}
	for _, row := range r.Rows {
		if byScenario[row.Scenario] == nil {
			byScenario[row.Scenario] = map[string]ModelAccuracy{}
		}
		byScenario[row.Scenario][row.Model] = row
	}
	worseCount := 0
	for sc, m := range byScenario {
		if m["quantile-dt"].AvgErrUs >= m["linear"].AvgErrUs {
			t.Errorf("%s: QDT err %.1f not below linear %.1f",
				sc, m["quantile-dt"].AvgErrUs, m["linear"].AvgErrUs)
		}
		if m["quantile-dt"].MissedPct > 5 {
			worseCount++
		}
	}
	if worseCount > 2 {
		t.Errorf("QDT misses too often in %d scenarios", worseCount)
	}
	if len(r.FullDAG) != 6 {
		t.Fatalf("full-DAG rows %d", len(r.FullDAG))
	}
	for _, row := range r.FullDAG {
		if row.MissedPct > 0.2 {
			t.Errorf("full-DAG misses %.3f%% in %s", row.MissedPct, row.Scenario)
		}
	}
}

func TestFig15a(t *testing.T) {
	r, err := RunFig15Overhead(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Cells) - 1
	if r.SchedulerUs[last] > 2.0 {
		t.Errorf("scheduler decision %.3f us exceeds the paper's 2 us envelope", r.SchedulerUs[last])
	}
	if r.PredictorUs[last] <= r.PredictorUs[0] {
		t.Error("predictor overhead should grow with cells")
	}
}

func TestFig15b(t *testing.T) {
	r, err := RunFig15Deadline(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Longer deadlines must reclaim at least as much CPU.
	if r.Reclaimed[len(r.Reclaimed)-1] < r.Reclaimed[0]-0.02 {
		t.Errorf("reclaim did not grow with deadline: %v", r.Reclaimed)
	}
}

func TestTable3(t *testing.T) {
	r, err := RunTable3FPGA(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	prev := 0
	for _, row := range r.Rows {
		if row.MinCores < prev {
			t.Errorf("min cores not monotone in cells: %+v", r.Rows)
		}
		prev = row.MinCores
		if row.AvgUtil >= 0.9 {
			t.Errorf("accelerated util %.2f too high (paper: <60%%)", row.AvgUtil)
		}
	}
}

func TestTable4(t *testing.T) {
	r, err := RunTable4Offload(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.ULTotalUs <= r.ULNonOffloadedUs {
		t.Errorf("UL total %.0f not above CPU-only %.0f (blocking lost)", r.ULTotalUs, r.ULNonOffloadedUs)
	}
	if r.DLTotalUs <= r.DLNonOffloadedUs {
		t.Errorf("DL total %.0f not above CPU-only %.0f", r.DLTotalUs, r.DLNonOffloadedUs)
	}
	// The UL slot spends more CPU than DL (decode residue vs encode residue,
	// Table 4's asymmetry).
	if r.ULNonOffloadedUs <= r.DLNonOffloadedUs {
		t.Errorf("UL CPU %.0f not above DL CPU %.0f", r.ULNonOffloadedUs, r.DLNonOffloadedUs)
	}
}

func TestRunByName(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("fig6", quick(t), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LDPC") {
		t.Error("missing output")
	}
	if err := Run("nope", Quick(), &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAblation(t *testing.T) {
	r, err := RunAblation(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
	}
	full := byName["full system"]
	if full.Reliability < 0.999 {
		t.Errorf("full system reliability %.5f", full.Reliability)
	}
	// Removing hysteresis must raise the scheduling-event rate.
	if byName["no release hysteresis"].EventsPerMs <= full.EventsPerMs {
		t.Errorf("no-hysteresis events %.2f not above full %.2f",
			byName["no release hysteresis"].EventsPerMs, full.EventsPerMs)
	}
	// Removing compensation must not improve the tail.
	if byName["no wakeup compensation"].P9999Us < full.P9999Us*0.8 {
		t.Errorf("no-compensation tail %.0f suspiciously better than full %.0f",
			byName["no wakeup compensation"].P9999Us, full.P9999Us)
	}
}

func TestMACExtensionExperiment(t *testing.T) {
	r, err := RunMACExtension(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	if r.ReliabilityMAC < 0.999 {
		t.Errorf("reliability with MAC %.5f", r.ReliabilityMAC)
	}
	if r.DAGsPerSlotMAC <= r.DAGsPerSlotPHY {
		t.Error("MAC extension did not add DAGs")
	}
	if r.MACTasksPerSec <= 0 {
		t.Error("no MAC tasks executed")
	}
	// Multiplexing more deadline tasks must cost some reclaim.
	if r.ReclaimedMAC > r.ReclaimedPHY {
		t.Errorf("MAC extension increased reclaim: %.3f vs %.3f", r.ReclaimedMAC, r.ReclaimedPHY)
	}
}

func TestCalibration(t *testing.T) {
	r, err := RunCalibration(quick(t))
	if err != nil {
		t.Fatal(err)
	}
	// Real decode time must grow roughly linearly with codeblocks.
	n := len(r.Codeblocks)
	ratio := r.RealUs[n-1] / r.RealUs[0]
	expect := float64(r.Codeblocks[n-1]) / float64(r.Codeblocks[0])
	if ratio < expect*0.5 || ratio > expect*2.0 {
		t.Errorf("real codeblock scaling %.1fx for %vx blocks", ratio, expect)
	}
	// Real iterations must fall with SNR; model factor must track.
	if r.RealIters[0] <= r.RealIters[len(r.RealIters)-1] {
		t.Errorf("real iterations did not fall with SNR: %v", r.RealIters)
	}
	if r.ModelIters[0] <= r.ModelIters[len(r.ModelIters)-1] {
		t.Errorf("model factor did not fall with SNR: %v", r.ModelIters)
	}
}

func TestCSVExport(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	o := Quick()
	r, err := RunFig6LDPCScaling(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "codeblocks,cores,mean_us,p99_us") {
		t.Fatalf("bad header: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if strings.Count(out, "\n") != 16 { // header + 15 rows
		t.Fatalf("row count wrong:\n%s", out)
	}
	if err := RunCSV("nope", o, &buf); err == nil {
		t.Fatal("unknown CSV experiment accepted")
	}
}

func TestChaos(t *testing.T) {
	r, err := RunChaos(quick(t), "sweep")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1+8*3 {
		t.Fatalf("sweep rows %d, want baseline + 8 classes x 3 levels", len(r.Rows))
	}
	if r.Rows[0].Class != "none" || r.Rows[0].Injected != 0 {
		t.Fatalf("baseline row corrupted: %+v", r.Rows[0])
	}
	for _, row := range r.Rows[1:] {
		if row.Injected == 0 {
			t.Errorf("%s/%s (%s): no faults injected", row.Class, row.Level, row.Spec)
		}
		if row.Reliability <= 0 || row.Reliability > 1 {
			t.Errorf("%s/%s: reliability %v out of range", row.Class, row.Level, row.Reliability)
		}
	}
	if !strings.Contains(r.String(), "Chaos") {
		t.Error("missing header")
	}
	header, rows := r.CSV()
	if len(header) != 8 || len(rows) != len(r.Rows) {
		t.Fatalf("CSV shape %dx%d", len(header), len(rows))
	}
}

func TestChaosCustomSpec(t *testing.T) {
	r, err := RunChaos(quick(t), "lane=0.2,stuck=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("custom spec rows %d, want baseline + custom", len(r.Rows))
	}
	custom := r.Rows[1]
	if custom.Class != "custom" || custom.Injected == 0 {
		t.Fatalf("custom run injected nothing: %+v", custom)
	}
	if _, err := RunChaos(quick(t), "bogus=1"); err == nil {
		t.Fatal("invalid spec accepted")
	}
}
