package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/faults"
	"concordia/internal/parallel"
	"concordia/internal/sim"
)

// ChaosRow is one chaos run: a fault class injected at one intensity level
// into the accelerated 20 MHz deployment, with the survival numbers the run
// produced.
type ChaosRow struct {
	Class string
	Level string
	Spec  string
	// Reliability is the fraction of released DAGs that met their deadline.
	Reliability float64
	P9999Us     float64
	Injected    uint64
	Recovered   uint64
	Abandoned   uint64
}

// ChaosResult is the fault-injection survival study: deadline-miss behaviour
// per fault class as injection intensity rises.
type ChaosResult struct{ Rows []ChaosRow }

// chaosLevels defines the sweep: for each fault class, three escalating
// specs. Rates are per offload/task/slot; burst and storm are events per
// simulated second.
var chaosLevels = []struct {
	class string
	specs [3]string
}{
	{"lane", [3]string{"lane=0.02", "lane=0.1", "lane=0.5"}},
	{"stuck", [3]string{"stuck=0.01", "stuck=0.05", "stuck=0.2"}},
	{"overrun", [3]string{"overrun=0.01,factor=4", "overrun=0.05,factor=4", "overrun=0.2,factor=8"}},
	{"burst", [3]string{"burst=2", "burst=10", "burst=40"}},
	{"storm", [3]string{"storm=1", "storm=5", "storm=20"}},
	{"late", [3]string{"late=0.02", "late=0.1", "late=0.3"}},
	{"drop", [3]string{"drop=0.02", "drop=0.1", "drop=0.3"}},
	{"reset", [3]string{"reset=5", "reset=20", "reset=60"}},
}

var chaosLevelNames = [3]string{"low", "med", "high"}

// chaosConfig is the chaos testbed: the accelerated 7-cell 20 MHz FDD
// deployment with late DAGs dropped (graceful degradation needs a drop
// policy — an abandoned slot must not wedge its successors).
func chaosConfig(o Options) core.Config {
	cfg := core.Scenario20MHz(4, 6)
	cfg.UseAccel = true
	// Fleet shape so device-level reset faults have devices to fail over
	// between: two two-engine cards, two VFs each, bounded queue depth.
	cfg.AccelDevices = 2
	cfg.AccelVFs = 2
	cfg.AccelQueueDepth = 16
	cfg.DropLateDAGs = true
	cfg.Seed = o.Seed
	cfg.TrainingSlots = o.training()
	return cfg
}

func chaosRun(o Options, spec string, dur sim.Time) (ChaosRow, error) {
	fc, err := faults.Parse(spec)
	if err != nil {
		return ChaosRow{}, err
	}
	cfg := chaosConfig(o)
	if fc.Enabled() {
		cfg.Faults = &fc
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return ChaosRow{}, err
	}
	rep := sys.Run(dur)
	return ChaosRow{
		Spec:        spec,
		Reliability: rep.Reliability(),
		P9999Us:     rep.TailLatencyUs(0.9999),
		Injected:    rep.Faults.Injected(),
		Recovered:   rep.Faults.Recoveries(),
		Abandoned:   rep.DAGsDropped,
	}, nil
}

// RunChaos executes the chaos study. spec selects the runs: "sweep" (or "")
// runs the full per-class intensity ladder plus a fault-free baseline; any
// other value is parsed as a concrete fault spec and run against the same
// baseline.
func RunChaos(o Options, spec string) (*ChaosResult, error) {
	dur := o.dur(20 * sim.Second)
	type job struct {
		class, level, spec string
	}
	jobs := []job{{"none", "-", ""}}
	if spec == "" || spec == "sweep" {
		for _, c := range chaosLevels {
			for i, s := range c.specs {
				jobs = append(jobs, job{c.class, chaosLevelNames[i], s})
			}
		}
	} else {
		if _, err := faults.Parse(spec); err != nil {
			return nil, err
		}
		jobs = append(jobs, job{"custom", "-", spec})
	}
	rows, err := parallel.Map(o.workers(), len(jobs), func(i int) (ChaosRow, error) {
		row, err := chaosRun(o, jobs[i].spec, dur)
		if err != nil {
			return ChaosRow{}, err
		}
		row.Class = jobs[i].class
		row.Level = jobs[i].level
		if row.Spec == "" {
			row.Spec = "off"
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &ChaosResult{Rows: rows}, nil
}

// String implements fmt.Stringer: the survival table.
func (r *ChaosResult) String() string {
	var sb strings.Builder
	header(&sb, "Chaos: deadline-miss survival under injected faults")
	fmt.Fprintf(&sb, "%-8s %-5s %-24s %12s %10s %9s %9s %9s\n",
		"class", "level", "spec", "reliability", "p9999 us", "injected", "recovered", "dropped")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-8s %-5s %-24s %12s %10.0f %9d %9d %9d\n",
			row.Class, row.Level, row.Spec, pct(row.Reliability),
			row.P9999Us, row.Injected, row.Recovered, row.Abandoned)
	}
	sb.WriteString("graceful degradation: reliability decays with injection intensity instead of collapsing;\n")
	sb.WriteString("every stuck offload is retried or abandoned deterministically — no run wedges\n")
	return sb.String()
}

// CSV implements Tabular for the chaos study.
func (r *ChaosResult) CSV() ([]string, [][]string) {
	header := []string{"class", "level", "spec", "reliability", "p9999_us", "injected", "recovered", "dropped"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Class, row.Level, row.Spec, f(row.Reliability), f(row.P9999Us),
			fmt.Sprintf("%d", row.Injected), fmt.Sprintf("%d", row.Recovered),
			fmt.Sprintf("%d", row.Abandoned)})
	}
	return header, rows
}
