package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/costmodel"
	"concordia/internal/parallel"
	"concordia/internal/predictor"
	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/sim"
	"concordia/internal/workloads"
)

// ModelAccuracy summarizes one predictor's performance on a scenario
// (Fig 14's two metrics).
type ModelAccuracy struct {
	Model    string
	Scenario string
	// MissedPct is the percentage of evaluations where the measured runtime
	// exceeded the predicted WCET.
	MissedPct float64
	// AvgErrUs is the mean (prediction − runtime) over met deadlines: the
	// pessimism that costs reclaimable CPU.
	AvgErrUs float64
}

// Fig14Result compares linear regression, gradient boosting and the
// quantile tree on WCET prediction for a task kind, plus full-DAG
// reliability for the quantile tree (the last bar group of Fig 14a).
type Fig14Result struct {
	Kind    ran.TaskKind
	Rows    []ModelAccuracy
	FullDAG []ModelAccuracy // "Full DAG Quantile DT" miss rates per scenario
}

// fig14Scenario is one bar color of Fig 14: cells × collocated workload.
type fig14Scenario struct {
	name  string
	cells int
	env   costmodel.Env
}

func fig14Scenarios() []fig14Scenario {
	return []fig14Scenario{
		{"1 cell - FD", 1, costmodel.Env{PoolCores: 4}},
		{"2 cells - FD", 2, costmodel.Env{PoolCores: 4}},
		{"1 cell - FD & redis", 1, costmodel.Env{PoolCores: 4, Interference: 0.95}},
		{"2 cells - FD & redis", 2, costmodel.Env{PoolCores: 4, Interference: 0.95}},
		{"1 cell - FD & tpcc", 1, costmodel.Env{PoolCores: 4, Interference: 0.9}},
		{"2 cells - FD & tpcc", 2, costmodel.Env{PoolCores: 4, Interference: 0.9}},
	}
}

// genKindSamples draws profiling samples for one kind from realistic slot
// allocations. Features and runtime noise both come from the seed's own
// stream (model.SampleWith), so concurrent calls sharing one read-only model
// produce identical data sets regardless of interleaving.
func genKindSamples(kind ran.TaskKind, n int, cells int, env costmodel.Env, model *costmodel.Model, seed uint64) []predictor.Sample {
	r := rng.New(seed)
	cfgs := ran.Cells20MHz(cells)
	var out []predictor.Sample
	for len(out) < n {
		cell := cfgs[len(out)%cells]
		bytes := 1 + r.Intn(48*1024)
		allocs := ran.AllocateSlot(cell, bytes, r)
		var d *ran.DAG
		if kind.IsUplink() {
			d = ran.BuildUplinkDAG(cell, 0, 0, sim.FromMs(2), allocs)
		} else {
			d = ran.BuildDownlinkDAG(cell, 0, 0, sim.FromMs(2), allocs)
		}
		if d == nil {
			continue
		}
		for _, t := range d.Tasks {
			if t.Kind != kind {
				continue
			}
			out = append(out, predictor.Sample{
				Features: t.Features,
				Runtime:  model.SampleWith(r, kind, t.Features, env),
			})
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// evalModel measures a predictor with online adaptation on a fresh stream.
// The first quarter of the stream is a warm-up: the online phase adapts but
// is not scored, mirroring the paper's continuously-running online phase
// (measurement starts after the predictor has seen the collocated regime).
func evalModel(p predictor.Predictor, eval []predictor.Sample) ModelAccuracy {
	warm := len(eval) / 4
	misses := 0
	var errSum float64
	met, scored := 0, 0
	for i, s := range eval {
		if i >= warm {
			pred := p.Predict(s.Features)
			scored++
			if s.Runtime > pred {
				misses++
			} else {
				errSum += (pred - s.Runtime).Us()
				met++
			}
		}
		p.Observe(s.Features, s.Runtime)
	}
	acc := ModelAccuracy{MissedPct: 100 * float64(misses) / float64(scored)}
	if met > 0 {
		acc.AvgErrUs = errSum / float64(met)
	}
	return acc
}

// RunFig14Models evaluates the three prediction models for the given task
// kind across the six Fig 14 scenarios, and the full-DAG reliability of the
// complete Concordia system for the same collocations.
func RunFig14Models(o Options, kind ran.TaskKind) (*Fig14Result, error) {
	res := &Fig14Result{Kind: kind}
	model := costmodel.New(o.Seed)
	n := int(40000 * o.Scale)
	if n < 4000 {
		n = 4000
	}
	feats := predictor.HandPicked[kind]
	if len(feats) == 0 {
		feats = []ran.Feature{ran.FTBSBits}
	}
	scenarios := fig14Scenarios()
	// Each scenario trains/evaluates the three models independently; the
	// shared cost model is read-only under SampleWith, so scenarios fan out.
	rowGroups, err := parallel.Map(o.workers(), len(scenarios), func(i int) ([]ModelAccuracy, error) {
		sc := scenarios[i]
		// Offline training always happens in isolation (the paper's offline
		// phase); evaluation runs in the scenario's environment with online
		// adaptation enabled.
		isoEnv := costmodel.Env{PoolCores: sc.env.PoolCores}
		train := genKindSamples(kind, n, sc.cells, isoEnv, model, o.Seed+uint64(i)*17+1)
		eval := genKindSamples(kind, n/2, sc.cells, sc.env, model, o.Seed+uint64(i)*17+2)

		lin, err := predictor.TrainLinear(feats, train, 0.99999)
		if err != nil {
			return nil, err
		}
		gb, err := predictor.TrainGradientBoosting(feats, train, predictor.GBConfig{})
		if err != nil {
			return nil, err
		}
		qdt, err := predictor.TrainQuantileTree(kind, feats, train, predictor.TreeConfig{})
		if err != nil {
			return nil, err
		}
		var rows []ModelAccuracy
		for _, m := range []struct {
			name string
			p    predictor.Predictor
		}{{"linear", lin}, {"boosting", gb}, {"quantile-dt", qdt}} {
			acc := evalModel(m.p, eval)
			acc.Model = m.name
			acc.Scenario = sc.name
			rows = append(rows, acc)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowGroups {
		res.Rows = append(res.Rows, rows...)
	}
	// Full-DAG reliability: the complete system with 20 µs compensation.
	dur := o.dur(60 * sim.Second)
	wls := []workloads.Kind{workloads.None, workloads.Redis, workloads.TPCC}
	cellSet := []int{1, 2}
	res.FullDAG, err = parallel.Map(o.workers(), len(wls)*len(cellSet), func(j int) (ModelAccuracy, error) {
		wl := wls[j/len(cellSet)]
		cells := cellSet[j%len(cellSet)]
		cfg := core.Scenario20MHz(cells, 4)
		cfg.Load = 0.5
		cfg.Workload = wl
		cfg.Seed = o.Seed
		cfg.TrainingSlots = o.training()
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return ModelAccuracy{}, err
		}
		rep := sys.Run(dur)
		return ModelAccuracy{
			Model:     "full-dag-qdt",
			Scenario:  fmt.Sprintf("%d cell(s) - %s", cells, wl),
			MissedPct: 100 * (1 - rep.Reliability()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig14Result) String() string {
	var sb strings.Builder
	header(&sb, fmt.Sprintf("Fig 14: WCET prediction accuracy (%v)", r.Kind))
	fmt.Fprintf(&sb, "%-22s %-12s %12s %12s\n", "scenario", "model", "missed %", "avg err us")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-22s %-12s %12.3f %12.1f\n", row.Scenario, row.Model, row.MissedPct, row.AvgErrUs)
	}
	sb.WriteString("\nfull-DAG reliability (Concordia system, 20us compensation):\n")
	for _, row := range r.FullDAG {
		fmt.Fprintf(&sb, "%-22s %-12s %12.4f%% missed\n", row.Scenario, row.Model, row.MissedPct)
	}
	sb.WriteString("paper: linear misses most; boosting ≈ QDT on misses; QDT smallest avg error (~43us);\n")
	sb.WriteString("full-DAG QDT reaches ~1e-3% misses (five nines)\n")
	return sb.String()
}

// Fig17Result is the appendix extension of Fig 14 to the other expensive
// task kinds.
type Fig17Result struct{ PerKind []*Fig14Result }

// Fig17Kinds are the appendix task kinds.
var Fig17Kinds = []ran.TaskKind{
	ran.TaskLDPCEncode, ran.TaskPrecoding, ran.TaskChannelEstimation, ran.TaskEqualization,
}

// RunFig17PerTask evaluates prediction accuracy per appendix task kind
// (without the full-DAG repeats).
func RunFig17PerTask(o Options) (*Fig17Result, error) {
	res := &Fig17Result{}
	oo := o
	for _, kind := range Fig17Kinds {
		r, err := runFig14ModelsOnly(oo, kind)
		if err != nil {
			return nil, err
		}
		res.PerKind = append(res.PerKind, r)
	}
	return res, nil
}

// runFig14ModelsOnly is RunFig14Models without the system runs.
func runFig14ModelsOnly(o Options, kind ran.TaskKind) (*Fig14Result, error) {
	res := &Fig14Result{Kind: kind}
	model := costmodel.New(o.Seed)
	n := int(20000 * o.Scale)
	if n < 3000 {
		n = 3000
	}
	feats := predictor.HandPicked[kind]
	scenarios := fig14Scenarios()
	rowGroups, err := parallel.Map(o.workers(), len(scenarios), func(i int) ([]ModelAccuracy, error) {
		sc := scenarios[i]
		isoEnv := costmodel.Env{PoolCores: sc.env.PoolCores}
		train := genKindSamples(kind, n, sc.cells, isoEnv, model, o.Seed+uint64(i)*31+5)
		eval := genKindSamples(kind, n/2, sc.cells, sc.env, model, o.Seed+uint64(i)*31+6)
		lin, err := predictor.TrainLinear(feats, train, 0.99999)
		if err != nil {
			return nil, err
		}
		gb, err := predictor.TrainGradientBoosting(feats, train, predictor.GBConfig{})
		if err != nil {
			return nil, err
		}
		qdt, err := predictor.TrainQuantileTree(kind, feats, train, predictor.TreeConfig{})
		if err != nil {
			return nil, err
		}
		var rows []ModelAccuracy
		for _, m := range []struct {
			name string
			p    predictor.Predictor
		}{{"linear", lin}, {"boosting", gb}, {"quantile-dt", qdt}} {
			acc := evalModel(m.p, eval)
			acc.Model = m.name
			acc.Scenario = sc.name
			rows = append(rows, acc)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowGroups {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig17Result) String() string {
	var sb strings.Builder
	header(&sb, "Fig 17/18 (appendix): prediction accuracy for other tasks")
	for _, pk := range r.PerKind {
		sb.WriteString(pk.String())
		sb.WriteString("\n")
	}
	return sb.String()
}
