package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/parallel"
	"concordia/internal/sim"
	"concordia/internal/workloads"
)

// minProbe enforces a floor on provisioning probes: resolving the minimum
// core count needs enough slots to expose tail events even at small scales.
func minProbe(d sim.Time) sim.Time {
	if d < 5*sim.Second {
		return 5 * sim.Second
	}
	return d
}

// fig4Scenario is one row of Fig 4a.
type fig4Scenario struct {
	Name  string
	Cfg   core.Config
	Paper string // paper's "cores / util" for the caption
}

func fig4Scenarios(o Options) []fig4Scenario {
	ulOnly := core.Scenario20MHz(3, 0)
	// UL-only: suppress downlink volume to a token amount.
	ulOnly.PeakDLBytes = 64
	ulOnly.Load = 1.0
	ulOnly.Seed = o.Seed
	ulOnly.TrainingSlots = o.training()

	tdd1 := core.Scenario100MHz(1, 0)
	tdd1.Load = 1.0
	tdd1.Seed = o.Seed + 1
	tdd1.TrainingSlots = o.training()

	tdd2 := core.Scenario100MHz(2, 0)
	tdd2.Load = 1.0
	tdd2.Seed = o.Seed + 2
	tdd2.TrainingSlots = o.training()

	return []fig4Scenario{
		{Name: "UL only (3 cells)", Cfg: ulOnly, Paper: "4 cores, 42%"},
		{Name: "TDD (1 cell)", Cfg: tdd1, Paper: "5 cores, 38%"},
		{Name: "TDD (2 cells)", Cfg: tdd2, Paper: "12 cores, 33%"},
	}
}

// Fig4aRow is one measured row of the vRAN utilization table.
type Fig4aRow struct {
	Name     string
	MinCores int
	AvgUtil  float64 // busy time over pool time at peak traffic
	Paper    string
}

// Fig4aResult is the Fig 4a table.
type Fig4aResult struct{ Rows []Fig4aRow }

// RunFig4Utilization finds the minimum cores for peak traffic per scenario
// (isolated FlexRAN-style operation) and measures average utilization —
// the >50% idle-capacity motivation.
func RunFig4Utilization(o Options) (*Fig4aResult, error) {
	probe := minProbe(o.dur(20 * sim.Second))
	scenarios := fig4Scenarios(o)
	rows, err := parallel.Map(o.workers(), len(scenarios), func(i int) (Fig4aRow, error) {
		sc := scenarios[i]
		cfg := sc.Cfg
		cores, err := core.MinimumCores(cfg, 16, 0.99999, probe)
		if err != nil {
			return Fig4aRow{}, fmt.Errorf("%s: %w", sc.Name, err)
		}
		cfg.PoolCores = cores
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return Fig4aRow{}, err
		}
		rep := sys.Run(probe)
		return Fig4aRow{
			Name:     sc.Name,
			MinCores: cores,
			AvgUtil:  rep.RANUtilization(),
			Paper:    sc.Paper,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig4aResult{Rows: rows}, nil
}

// String implements fmt.Stringer.
func (r *Fig4aResult) String() string {
	var sb strings.Builder
	header(&sb, "Fig 4a: vRAN CPU utilization at peak traffic (isolated)")
	fmt.Fprintf(&sb, "%-20s %9s %10s   %s\n", "config", "min cores", "avg util", "paper")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-20s %9d %10s   %s\n", row.Name, row.MinCores, pct(row.AvgUtil), row.Paper)
	}
	return sb.String()
}

// Fig4bRow is one bar of Fig 4b: p99.99 slot latency for a scenario and
// collocated workload under the vanilla sharing configuration.
type Fig4bRow struct {
	Scenario   string
	Workload   workloads.Kind
	P9999Us    float64
	DeadlineUs float64
	Violated   bool
}

// Fig4bResult is the deadline-violation motivation figure.
type Fig4bResult struct{ Rows []Fig4bRow }

// RunFig4Violations measures the 99.99% slot processing latency of the
// vanilla (FlexRAN-scheduled) vRAN when sharing cores with Nginx and Redis.
func RunFig4Violations(o Options) (*Fig4bResult, error) {
	dur := o.dur(60 * sim.Second)
	scenarios := fig4Scenarios(o)
	// One job per scenario: the MinimumCores probe is shared by that
	// scenario's three workload runs, so it stays inside the job.
	rowGroups, err := parallel.Map(o.workers(), len(scenarios), func(i int) ([]Fig4bRow, error) {
		sc := scenarios[i]
		cores, err := core.MinimumCores(sc.Cfg, 16, 0.99999, minProbe(o.dur(10*sim.Second)))
		if err != nil {
			return nil, err
		}
		var rows []Fig4bRow
		for _, wl := range []workloads.Kind{workloads.None, workloads.Nginx, workloads.Redis} {
			cfg := sc.Cfg
			cfg.PoolCores = cores
			cfg.Scheduler = core.SchedFlexRAN
			cfg.Workload = wl
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return nil, err
			}
			rep := sys.Run(dur)
			rows = append(rows, Fig4bRow{
				Scenario:   sc.Name,
				Workload:   wl,
				P9999Us:    rep.TailLatencyUs(0.9999),
				DeadlineUs: cfg.Deadline.Us(),
				Violated:   rep.TailLatencyUs(0.9999) > cfg.Deadline.Us(),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4bResult{}
	for _, rows := range rowGroups {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig4bResult) String() string {
	var sb strings.Builder
	header(&sb, "Fig 4b: slot deadline violations with vanilla sharing")
	fmt.Fprintf(&sb, "%-20s %-10s %12s %12s %s\n", "config", "workload", "p99.99 (us)", "deadline", "violated")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-20s %-10s %12.0f %12.0f %v\n",
			row.Scenario, row.Workload, row.P9999Us, row.DeadlineUs, row.Violated)
	}
	return sb.String()
}
