package experiments

import (
	"bytes"
	"testing"

	"concordia/internal/analysis"
	"concordia/internal/costmodel"
	"concordia/internal/predictor"
	"concordia/internal/ran"
)

// TestAutopsyPartitionInvariant is the acceptance gate for the attribution
// engine: on the canonical collocation scenario and on chaos runs, every
// EvDeadlineMiss must be classified into exactly one cause, and the analysis
// miss count must equal the pool report's — the autopsy explains exactly the
// misses the report counts, no more, no fewer.
func TestAutopsyPartitionInvariant(t *testing.T) {
	o := quick(t)
	o.Scale = 0.05
	cases := []struct {
		name, spec string
		wantMisses bool
		dominant   analysis.Cause
	}{
		// The healthy canonical deployment misses (almost) never; the
		// invariant must hold vacuously too.
		{name: "canonical", spec: ""},
		// Stuck offloads with a slow watchdog: misses trace to retry stalls.
		{name: "stuck", spec: "stuck=0.2,timeout-us=1200,retries=3",
			wantMisses: true, dominant: analysis.CauseAccelFault},
		// Fronthaul delay close to the deadline: admission ate the budget.
		{name: "late", spec: "late=0.3,late-us=1900",
			wantMisses: true, dominant: analysis.CauseFronthaulLate},
		// Huge injected overruns: observed runtime blows past the prediction.
		{name: "overrun", spec: "overrun=0.1,factor=50",
			wantMisses: true, dominant: analysis.CauseWCETUnderprediction},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, rep, err := CaptureAutopsy(o, c.spec)
			if err != nil {
				t.Fatal(err)
			}
			if !a.PartitionHolds() {
				t.Fatalf("partition invariant violated: %v vs %d misses", a.CauseCounts, a.TotalMisses())
			}
			if got, want := a.TotalMisses(), int(rep.Misses); got != want {
				t.Fatalf("autopsy found %d misses, pool report counted %d", got, want)
			}
			if c.wantMisses {
				if a.TotalMisses() == 0 {
					t.Fatal("chaos run produced no misses; the invariant check is vacuous")
				}
				best := analysis.CauseUnattributed
				for cause := analysis.Cause(0); cause < analysis.NumCauses; cause++ {
					if a.CauseCounts[cause] > a.CauseCounts[best] {
						best = cause
					}
				}
				if best != c.dominant {
					t.Errorf("dominant cause %v, want %v (counts %v)", best, c.dominant, a.CauseCounts)
				}
			}
		})
	}
}

// TestAutopsyWorkerDeterminism asserts the analysis artifacts inherit the
// repo's byte-identity guarantee: report, causes CSV and calibration CSV are
// the same bytes at any Workers count.
func TestAutopsyWorkerDeterminism(t *testing.T) {
	o := quick(t)
	o.Scale = 0.05
	type capture struct {
		workers                  int
		report, causes, calibCSV bytes.Buffer
	}
	captures := []*capture{{workers: 1}, {workers: 2}, {workers: 8}}
	for _, c := range captures {
		run := o
		run.Workers = c.workers
		a, _, err := CaptureAutopsy(run, "stuck=0.2,timeout-us=1200,retries=3")
		if err != nil {
			t.Fatalf("Workers=%d: %v", c.workers, err)
		}
		if err := a.WriteReport(&c.report); err != nil {
			t.Fatal(err)
		}
		if err := a.WriteCausesCSV(&c.causes); err != nil {
			t.Fatal(err)
		}
		if err := a.WriteCalibrationCSV(&c.calibCSV); err != nil {
			t.Fatal(err)
		}
		if c.report.Len() == 0 || c.causes.Len() == 0 || c.calibCSV.Len() == 0 {
			t.Fatalf("Workers=%d: empty artifact", c.workers)
		}
	}
	ref := captures[0]
	for _, c := range captures[1:] {
		if !bytes.Equal(ref.report.Bytes(), c.report.Bytes()) {
			t.Errorf("autopsy report differs between Workers=1 and Workers=%d", c.workers)
		}
		if !bytes.Equal(ref.causes.Bytes(), c.causes.Bytes()) {
			t.Errorf("causes CSV differs between Workers=1 and Workers=%d", c.workers)
		}
		if !bytes.Equal(ref.calibCSV.Bytes(), c.calibCSV.Bytes()) {
			t.Errorf("calibration CSV differs between Workers=1 and Workers=%d", c.workers)
		}
	}
}

// TestCalibrationCatchesMiscalibrated is the monitor's acceptance story: a
// baseline predictor whose quantile was fit offline in isolation drifts out
// of coverage when the workload shifts to a collocated stream (and online
// feedback is off), and the monitor flags it — while the adapting quantile
// tree stays within tolerance on the same stream. The setup replicates one
// kind's cell of the predcal experiment (channel_estimation, index 3 in
// predCalKinds, at Scale 0.5).
func TestCalibrationCatchesMiscalibrated(t *testing.T) {
	if testing.Short() {
		t.Skip("predictor training; skipped with -short")
	}
	const (
		target = 0.99999
		seed   = uint64(42)
		i      = 3 // channel_estimation's index in predCalKinds
		n      = 20000
	)
	kind := ran.TaskChannelEstimation
	model := costmodel.New(seed)
	feats := predictor.HandPicked[kind]
	if len(feats) == 0 {
		feats = []ran.Feature{ran.FTBSBits}
	}
	env := costmodel.Env{PoolCores: 4, Interference: 0.95}
	isoEnv := costmodel.Env{PoolCores: 4}
	train := genKindSamples(kind, n, 2, isoEnv, model, seed+uint64(i)*43+11)
	eval := genKindSamples(kind, n/2, 2, env, model, seed+uint64(i)*43+12)

	cal := func(mode string, pi int) analysis.KindCalibration {
		t.Helper()
		preds, err := trainPredCalSet(kind, feats, train, target)
		if err != nil {
			t.Fatal(err)
		}
		samples := streamPredictSamples(preds[pi], kind, eval, mode == "online")
		cals := analysis.CalibrateSamples(samples, target, 0)
		if len(cals) != 1 {
			t.Fatalf("expected one calibration row, got %d", len(cals))
		}
		return cals[0]
	}

	qdt := cal("online", 0)
	if qdt.Miscalibrated {
		t.Errorf("quantile tree (online) flagged miscalibrated: coverage %.5f, tolerance %.5f",
			qdt.Coverage, qdt.Tolerance)
	}
	for name, pi := range map[string]int{"linear": 1, "evt": 3} {
		c := cal("frozen", pi)
		if !c.Miscalibrated {
			t.Errorf("%s (frozen) not flagged: coverage %.5f, target %.5f, tolerance %.5f",
				name, c.Coverage, c.Target, c.Tolerance)
		}
		if c.Coverage >= qdt.Coverage {
			t.Errorf("%s (frozen) coverage %.5f not below quantile tree's %.5f",
				name, c.Coverage, qdt.Coverage)
		}
	}
}

// TestPredCalResultShape runs the full predcal experiment once at test scale
// and checks its structure: one row per (kind, mode, predictor) in fixed
// order, a rendered table, and the CSV export.
func TestPredCalResultShape(t *testing.T) {
	o := quick(t)
	res, err := RunPredCal(o)
	if err != nil {
		t.Fatal(err)
	}
	want := len(predCalKinds) * 2 * len(predCalNames)
	if len(res.Rows) != want {
		t.Fatalf("rows %d, want %d", len(res.Rows), want)
	}
	// Fixed ordering: grouped by kind, then online before frozen, then the
	// predCalNames predictor order.
	for i, row := range res.Rows {
		wantKind := predCalKinds[i/(2*len(predCalNames))]
		wantMode := []string{"online", "frozen"}[(i/len(predCalNames))%2]
		wantPred := predCalNames[i%len(predCalNames)]
		if row.Kind != wantKind || row.Mode != wantMode || row.Predictor != wantPred {
			t.Fatalf("row %d is (%v,%s,%s), want (%v,%s,%s)",
				i, row.Kind, row.Mode, row.Predictor, wantKind, wantMode, wantPred)
		}
		if row.Cal.Samples == 0 {
			t.Fatalf("row %d has no samples", i)
		}
	}
	header, rows := res.CSV()
	if len(header) != 12 || header[0] != "kind" || len(rows) != want {
		t.Fatalf("CSV shape: header %v rows %d", header, len(rows))
	}
	if s := res.String(); len(s) < 100 {
		t.Fatalf("table too short:\n%s", s)
	}
}
