package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/ran"
	"concordia/internal/sim"
	"concordia/internal/workloads"
)

// ExtensionResult measures the §7 MAC-layer extension: radio-resource
// scheduling tasks multiplexed on the vRAN pool as one-slot-deadline DAGs,
// alongside the PHY DAGs and a collocated workload.
type ExtensionResult struct {
	// PHY-only baseline vs PHY+MAC.
	ReliabilityPHY float64
	ReliabilityMAC float64
	ReclaimedPHY   float64
	ReclaimedMAC   float64
	MACTasksPerSec float64
	MACMeanUs      float64
	DAGsPerSlotPHY float64
	DAGsPerSlotMAC float64
}

// RunMACExtension compares the pool with and without MAC multiplexing.
func RunMACExtension(o Options) (*ExtensionResult, error) {
	dur := o.dur(60 * sim.Second)
	run := func(includeMAC bool) (*ExtensionResult, error) {
		cfg := table2Scenario(false, o)
		cfg.Cells = cfg.Cells[:4]
		cfg.PoolCores = 6
		cfg.Load = 0.5
		cfg.Workload = workloads.Redis
		cfg.IncludeMAC = includeMAC
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		rep := sys.Run(dur)
		r := &ExtensionResult{}
		if includeMAC {
			r.ReliabilityMAC = rep.Reliability()
			r.ReclaimedMAC = rep.ReclaimedFraction()
			r.DAGsPerSlotMAC = float64(rep.DAGsReleased) / float64(rep.Slots)
			if res, ok := rep.TaskRuntimes[ran.TaskMACUplinkSched]; ok {
				r.MACTasksPerSec = float64(res.Seen()) / dur.Seconds()
				var sum float64
				for _, v := range res.Samples() {
					sum += v
				}
				if n := len(res.Samples()); n > 0 {
					r.MACMeanUs = sum / float64(n) / 1000
				}
			}
		} else {
			r.ReliabilityPHY = rep.Reliability()
			r.ReclaimedPHY = rep.ReclaimedFraction()
			r.DAGsPerSlotPHY = float64(rep.DAGsReleased) / float64(rep.Slots)
		}
		return r, nil
	}
	phy, err := run(false)
	if err != nil {
		return nil, err
	}
	mac, err := run(true)
	if err != nil {
		return nil, err
	}
	mac.ReliabilityPHY = phy.ReliabilityPHY
	mac.ReclaimedPHY = phy.ReclaimedPHY
	mac.DAGsPerSlotPHY = phy.DAGsPerSlotPHY
	return mac, nil
}

// String implements fmt.Stringer.
func (r *ExtensionResult) String() string {
	var sb strings.Builder
	header(&sb, "§7 extension: MAC-layer scheduling multiplexed on the pool (4x20MHz + Redis)")
	fmt.Fprintf(&sb, "%-22s %12s %12s %14s\n", "", "reliability", "reclaimed", "DAGs per slot")
	fmt.Fprintf(&sb, "%-22s %12s %12s %14.2f\n", "PHY only",
		nines(r.ReliabilityPHY), pct(r.ReclaimedPHY), r.DAGsPerSlotPHY)
	fmt.Fprintf(&sb, "%-22s %12s %12s %14.2f\n", "PHY + MAC extension",
		nines(r.ReliabilityMAC), pct(r.ReclaimedMAC), r.DAGsPerSlotMAC)
	fmt.Fprintf(&sb, "MAC scheduler tasks: %.0f/s, mean %.1f us each (one-slot deadlines)\n",
		r.MACTasksPerSec, r.MACMeanUs)
	return sb.String()
}
