package experiments

import (
	"concordia/internal/analysis"
	"concordia/internal/core"
	"concordia/internal/faults"
	"concordia/internal/pool"
	"concordia/internal/sim"
	"concordia/internal/telemetry"
	"concordia/internal/workloads"
)

// CaptureAutopsy runs an instrumented scenario and feeds its event trace to
// the analysis engine. With an empty faultsSpec it runs the canonical
// collocation scenario (the CaptureTelemetry deployment: 7-cell 20 MHz pool
// sharing 8 cores with Redis); a non-empty spec runs the chaos testbed with
// those faults injected. The returned autopsy and the trace it was built
// from are deterministic for a fixed seed at any Workers count.
func CaptureAutopsy(o Options, faultsSpec string) (*analysis.Autopsy, *pool.Report, error) {
	rec := telemetry.New(telemetry.Options{})
	var cfg core.Config
	if faultsSpec == "" {
		cfg = core.Scenario20MHz(7, 8)
		cfg.Workload = workloads.Redis
		cfg.Load = 0.25
	} else {
		fc, err := faults.Parse(faultsSpec)
		if err != nil {
			return nil, nil, err
		}
		cfg = chaosConfig(o)
		if fc.Enabled() {
			cfg.Faults = &fc
		}
	}
	cfg.Seed = o.Seed
	cfg.TrainingSlots = o.training()
	cfg.Workers = o.Workers
	cfg.Telemetry = rec
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return nil, nil, err
	}
	rep := sys.Run(o.dur(2 * sim.Second))
	a := analysis.Analyze(rec.Trace.Events(), analysis.Options{
		PoolCores: cfg.PoolCores,
		Deadline:  cfg.Deadline,
	})
	return a, rep, nil
}
