package experiments

import (
	"fmt"
	"strings"

	"concordia/internal/analysis"
	"concordia/internal/costmodel"
	"concordia/internal/parallel"
	"concordia/internal/predictor"
	"concordia/internal/ran"
)

// PredCalRow is one (predictor, mode, task kind) cell of the calibration
// sweep. Mode "online" feeds every observation back (how the deployed pool
// runs its predictors); "frozen" deploys the offline model unchanged — the
// Ablation.NoOnlineAdaptation regime the calibration monitor exists to
// catch.
type PredCalRow struct {
	Predictor string
	Mode      string
	Kind      ran.TaskKind
	Cal       analysis.KindCalibration
}

// PredCalResult is the predictor calibration sweep: the four WCET predictors
// trained offline in isolation, then monitored by the analysis engine's
// calibration monitor while predicting a collocated (cache-contended)
// evaluation stream — once with online adaptation, once frozen. The frozen
// rows are the monitor's acceptance story: a predictor whose quantile was
// calibrated offline drifts out of coverage under the interference shift,
// and the monitor flags it while the adapting quantile tree stays within
// tolerance.
type PredCalResult struct {
	Target float64
	Rows   []PredCalRow // grouped by kind, (predictor, mode) order fixed
}

// predCalKinds are the monitored task kinds: the Fig 14 headline kind plus
// the appendix kinds.
var predCalKinds = []ran.TaskKind{
	ran.TaskLDPCDecode, ran.TaskLDPCEncode, ran.TaskPrecoding,
	ran.TaskChannelEstimation, ran.TaskEqualization,
}

// predCalNames is the fixed predictor ordering in rows and output.
var predCalNames = []string{"quantile-dt", "linear", "boosting", "evt"}

// RunPredCal trains the four predictors per task kind on isolated profiling
// samples, streams a collocated evaluation set through each (online and
// frozen), and runs the calibration monitor on the resulting
// predicted-vs-observed pairs.
func RunPredCal(o Options) (*PredCalResult, error) {
	const target = 0.99999
	model := costmodel.New(o.Seed)
	n := int(40000 * o.Scale)
	if n < 8000 {
		n = 8000
	}
	env := costmodel.Env{PoolCores: 4, Interference: 0.95} // the Fig 14 redis collocation
	isoEnv := costmodel.Env{PoolCores: 4}

	rowGroups, err := parallel.Map(o.workers(), len(predCalKinds), func(i int) ([]PredCalRow, error) {
		kind := predCalKinds[i]
		feats := predictor.HandPicked[kind]
		if len(feats) == 0 {
			feats = []ran.Feature{ran.FTBSBits}
		}
		train := genKindSamples(kind, n, 2, isoEnv, model, o.Seed+uint64(i)*43+11)
		eval := genKindSamples(kind, n/2, 2, env, model, o.Seed+uint64(i)*43+12)

		// Train fresh predictors per mode: the online pass mutates state.
		var rows []PredCalRow
		for _, mode := range []string{"online", "frozen"} {
			preds, err := trainPredCalSet(kind, feats, train, target)
			if err != nil {
				return nil, err
			}
			for pi, p := range preds {
				samples := streamPredictSamples(p, kind, eval, mode == "online")
				cals := analysis.CalibrateSamples(samples, target, 0)
				if len(cals) != 1 {
					return nil, fmt.Errorf("predcal: expected one calibration row, got %d", len(cals))
				}
				rows = append(rows, PredCalRow{
					Predictor: predCalNames[pi], Mode: mode, Kind: kind, Cal: cals[0]})
			}
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	res := &PredCalResult{Target: target}
	for _, rows := range rowGroups {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// trainPredCalSet trains the four predictors (predCalNames order) offline.
func trainPredCalSet(kind ran.TaskKind, feats []ran.Feature, train []predictor.Sample, target float64) ([]predictor.Predictor, error) {
	qdt, err := predictor.TrainQuantileTree(kind, feats, train, predictor.TreeConfig{})
	if err != nil {
		return nil, err
	}
	lin, err := predictor.TrainLinear(feats, train, target)
	if err != nil {
		return nil, err
	}
	gb, err := predictor.TrainGradientBoosting(feats, train, predictor.GBConfig{})
	if err != nil {
		return nil, err
	}
	evt, err := predictor.TrainEVT(train, target)
	if err != nil {
		return nil, err
	}
	return []predictor.Predictor{qdt, lin, gb, evt}, nil
}

// streamPredictSamples mirrors the deployed pool's prediction loop: predict,
// record the pair, and (when online) feed the observation back. The first
// quarter is a warm-up — adaptation runs but is not scored — matching
// evalModel.
func streamPredictSamples(p predictor.Predictor, kind ran.TaskKind, eval []predictor.Sample, online bool) []analysis.PredictSample {
	warm := len(eval) / 4
	out := make([]analysis.PredictSample, 0, len(eval)-warm)
	for i, s := range eval {
		if i >= warm {
			out = append(out, analysis.PredictSample{
				Kind:      int32(kind),
				Predicted: p.Predict(s.Features),
				Observed:  s.Runtime,
			})
		}
		if online {
			p.Observe(s.Features, s.Runtime)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (r *PredCalResult) String() string {
	var sb strings.Builder
	header(&sb, "Predictor calibration monitor: coverage vs target quantile under collocation")
	fmt.Fprintf(&sb, "%-20s %-12s %-8s %8s %10s %12s %8s  %s\n",
		"kind", "predictor", "mode", "samples", "coverage", "headroom us", "drift", "verdict")
	for _, row := range r.Rows {
		verdict := "ok"
		if row.Cal.Miscalibrated {
			verdict = "MISCALIBRATED"
		}
		fmt.Fprintf(&sb, "%-20v %-12s %-8s %8d %10.5f %12.1f %8.4f  %s\n",
			row.Kind, row.Predictor, row.Mode, row.Cal.Samples, row.Cal.Coverage,
			row.Cal.MeanHeadroomUs, row.Cal.Drift, verdict)
	}
	fmt.Fprintf(&sb, "target quantile %.5f; tolerance is 3-sigma binomial floored at 3/n\n", r.Target)
	sb.WriteString("frozen baselines drift out of coverage under the interference shift (trained\n")
	sb.WriteString("isolated, evaluated collocated); online adaptation pulls them back in\n")
	return sb.String()
}

// CSV implements Tabular for the calibration sweep.
func (r *PredCalResult) CSV() ([]string, [][]string) {
	header := []string{
		"kind", "predictor", "mode", "samples", "coverage", "target",
		"mean_headroom_us", "mean_headroom_frac", "drift", "windows", "tolerance", "miscalibrated"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Kind.String(), row.Predictor, row.Mode, d(row.Cal.Samples),
			f(row.Cal.Coverage), f(row.Cal.Target),
			f(row.Cal.MeanHeadroomUs), f(row.Cal.MeanHeadroomFrac),
			f(row.Cal.Drift), d(row.Cal.Windows), f(row.Cal.Tolerance),
			fmt.Sprintf("%t", row.Cal.Miscalibrated)})
	}
	return header, rows
}
