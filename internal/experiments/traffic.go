package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"concordia/internal/rng"
	"concordia/internal/sim"
	"concordia/internal/stats"
	"concordia/internal/traffic"
)

// Fig3Result reproduces Fig 3: LTE cell traffic characteristics.
type Fig3Result struct {
	SingleIdleFrac    float64 // fraction of idle TTIs, one cell
	AggregateIdleFrac float64 // fraction of idle TTIs, 3-cell aggregate
	MedianKB          float64 // median non-idle aggregate volume
	P95KB             float64
	P99KB             float64
	MaxKB             float64
	// CDFPoints samples the aggregate per-TTI volume CDF (KB -> fraction).
	CDFPoints map[float64]float64
}

// RunFig3Traffic generates the LTE-statistics trace and measures the Fig 3
// quantities.
func RunFig3Traffic(o Options) (*Fig3Result, error) {
	slots := int(o.dur(3600 * sim.Second).Ms()) // 1 ms TTIs
	tr, err := traffic.GenerateTrace(traffic.LTEReference(3, o.Seed), slots)
	if err != nil {
		return nil, err
	}
	var singleIdle float64
	for c := 0; c < 3; c++ {
		singleIdle += tr.IdleFraction(c)
	}
	singleIdle /= 3
	vols := tr.NonIdleVolumes()
	qs := stats.Quantiles(vols, 0.5, 0.95, 0.99, 1.0)
	res := &Fig3Result{
		SingleIdleFrac:    singleIdle,
		AggregateIdleFrac: tr.IdleFraction(-1),
		MedianKB:          qs[0] / 1024,
		P95KB:             qs[1] / 1024,
		P99KB:             qs[2] / 1024,
		MaxKB:             qs[3] / 1024,
		CDFPoints:         map[float64]float64{},
	}
	// All-slot CDF (idle slots included), the Fig 3a presentation.
	all := make([]float64, 0, slots)
	for t := 0; t < slots; t++ {
		all = append(all, float64(tr.AggregateSlot(t)))
	}
	sort.Float64s(all)
	for _, kb := range []float64{0, 0.5, 1, 2, 3, 4} {
		res.CDFPoints[kb] = stats.ECDF(all, kb*1024)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *Fig3Result) String() string {
	var sb strings.Builder
	header(&sb, "Fig 3: LTE cell traffic characteristics")
	fmt.Fprintf(&sb, "single-cell idle TTIs      %s (paper: ~75%%)\n", pct(r.SingleIdleFrac))
	fmt.Fprintf(&sb, "3-cell aggregate idle TTIs %s (paper: ~20%%)\n", pct(r.AggregateIdleFrac))
	fmt.Fprintf(&sb, "median non-idle volume     %.2f KB (paper: 0.2 KB)\n", r.MedianKB)
	fmt.Fprintf(&sb, "p95 / p99 / max            %.2f / %.2f / %.2f KB (paper p99: 2.5 KB)\n",
		r.P95KB, r.P99KB, r.MaxKB)
	fmt.Fprintf(&sb, "CDF(vol <= x KB):")
	for _, kb := range []float64{0, 0.5, 1, 2, 3, 4} {
		fmt.Fprintf(&sb, "  %g:%.2f", kb, r.CDFPoints[kb])
	}
	sb.WriteString("\n")
	return sb.String()
}

// PoolingResult reproduces the §2.2 Gaussian pooling argument: the absolute
// wasted capacity (peak − mean provisioning) grows as √n even though the
// peak-to-average ratio falls.
type PoolingResult struct {
	CellCounts []int
	CV         []float64 // coefficient of variation of aggregate
	WasteRatio []float64 // (p99 − mean) normalized to the 1-cell value
}

// RunPoolingGaussian measures aggregate burstiness versus pool size.
func RunPoolingGaussian(o Options) (*PoolingResult, error) {
	res := &PoolingResult{CellCounts: []int{1, 2, 4, 9, 16}}
	r := rng.New(o.Seed)
	var base float64
	for _, n := range res.CellCounts {
		slots := 40000
		tr, err := traffic.GenerateTrace(traffic.Config{
			Cells: n, Load: 0.5, PeakSlotBytes: 8192, Seed: r.Uint64()}, slots)
		if err != nil {
			return nil, err
		}
		vols := make([]float64, slots)
		for t := 0; t < slots; t++ {
			vols[t] = float64(tr.AggregateSlot(t))
		}
		mean := stats.Mean(vols)
		cv := 0.0
		if mean > 0 {
			cv = stats.StdDev(vols) / mean
		}
		waste := stats.Quantile(vols, 0.99) - mean
		if base == 0 {
			base = waste
		}
		res.CV = append(res.CV, cv)
		res.WasteRatio = append(res.WasteRatio, waste/base)
	}
	return res, nil
}

// String implements fmt.Stringer.
func (r *PoolingResult) String() string {
	var sb strings.Builder
	header(&sb, "§2.2: statistical multiplexing vs pool size")
	fmt.Fprintf(&sb, "%6s  %8s  %14s  %10s\n", "cells", "CV", "waste (p99-mu)", "~sqrt(n)")
	for i, n := range r.CellCounts {
		fmt.Fprintf(&sb, "%6d  %8.2f  %14.2f  %10.2f\n",
			n, r.CV[i], r.WasteRatio[i], math.Sqrt(float64(n)))
	}
	return sb.String()
}
