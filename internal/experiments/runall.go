package experiments

import (
	"bytes"
	"fmt"
	"io"

	"concordia/internal/parallel"
	"concordia/internal/ran"
)

// Experiment names accepted by Run.
var Names = []string{
	"fig3", "pooling", "fig4a", "fig4b", "fig6", "fig7", "fig8a", "fig8b",
	"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15a", "fig15b",
	"table3", "table4", "fig17", "ablation", "extension", "calibration",
	"chaos", "predcal", "fleet", "accelsweep", "slosweep",
}

// Run executes one named experiment and writes its rendered result.
func Run(name string, o Options, w io.Writer) error {
	var res fmt.Stringer
	var err error
	switch name {
	case "fig3":
		res, err = RunFig3Traffic(o)
	case "pooling":
		res, err = RunPoolingGaussian(o)
	case "fig4a":
		res, err = RunFig4Utilization(o)
	case "fig4b":
		res, err = RunFig4Violations(o)
	case "fig6":
		res, err = RunFig6LDPCScaling(o)
	case "fig7":
		res, err = RunFig7Leaves(o)
	case "fig8a":
		res, err = RunFig8Reclaimed(o)
	case "fig8b":
		res, err = RunFig8Workloads(o)
	case "fig9":
		res, err = RunFig9Cache(o)
	case "fig10":
		res, err = RunFig10SchedLatency(o)
	case "fig11":
		res, err = RunFig11TailLatency(o)
	case "fig12":
		res, err = RunFig12Cores(o)
	case "fig13":
		res, err = RunFig13PWCET(o)
	case "fig14":
		res, err = RunFig14Models(o, ran.TaskLDPCDecode)
	case "fig15a":
		res, err = RunFig15Overhead(o)
	case "fig15b":
		res, err = RunFig15Deadline(o)
	case "table3":
		res, err = RunTable3FPGA(o)
	case "table4":
		res, err = RunTable4Offload(o)
	case "fig17":
		res, err = RunFig17PerTask(o)
	case "ablation":
		res, err = RunAblation(o)
	case "extension":
		res, err = RunMACExtension(o)
	case "calibration":
		res, err = RunCalibration(o)
	case "chaos":
		res, err = RunChaos(o, "sweep")
	case "predcal":
		res, err = RunPredCal(o)
	case "fleet":
		res, err = RunFleet(o)
	case "accelsweep":
		res, err = RunAccelSweep(o)
	case "slosweep":
		res, err = RunSLOSweep(o)
	default:
		return fmt.Errorf("experiments: unknown experiment %q", name)
	}
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", name, err)
	}
	_, err = fmt.Fprintln(w, res.String())
	return err
}

// RunAll executes every experiment, fanning them across o.Workers goroutines
// while writing rendered results to w in the canonical Names order. Each
// experiment seeds its own RNG streams from Options, so the output is
// byte-for-byte identical for every worker count (modulo the host wall-clock
// timings fig15a and calibration report).
func RunAll(o Options, w io.Writer) error {
	bufs := make([]*bytes.Buffer, len(Names))
	runErr := parallel.ForEach(o.workers(), len(Names), func(i int) error {
		var buf bytes.Buffer
		if err := Run(Names[i], o, &buf); err != nil {
			return err
		}
		bufs[i] = &buf
		return nil
	})
	// Flush every result that completed before the lowest-indexed failure,
	// matching the serial semantics of stopping at the failing experiment.
	for _, buf := range bufs {
		if buf == nil {
			break
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return runErr
}
