package experiments

import (
	"fmt"
	"io"
	"strings"

	"concordia/internal/analysis"
	"concordia/internal/core"
	"concordia/internal/faults"
	"concordia/internal/parallel"
	"concordia/internal/sim"
	"concordia/internal/slo"
	"concordia/internal/telemetry"
)

// SLOSweepRow is one (window width, offered load) run of the storm chaos
// scenario with the streaming SLO plane attached: how fast the burn-rate
// alert fired relative to the autopsy-attributed deadline-miss spike.
type SLOSweepRow struct {
	WindowMs float64
	Load     float64
	Spec     string
	DAGs     uint64
	// Misses is the autopsy's attributed miss count (the ground truth the
	// online alert is racing against).
	Misses int
	Alerts int
	// FirstAlertUs is the virtual time of the first firing burn-rate alert
	// (-1 when none fired).
	FirstAlertUs float64
	// SpikeStartUs/SpikeEndUs bound the densest 10 ms bucket of
	// autopsy-attributed misses (-1 when the run had no misses).
	SpikeStartUs float64
	SpikeEndUs   float64
	// LeadUs is SpikeEndUs - FirstAlertUs: positive means the alert fired
	// before the miss spike completed.
	LeadUs float64
	Leads  bool
}

// SLOSweepResult is the streaming-SLO detection-latency study.
type SLOSweepResult struct{ Rows []SLOSweepRow }

// sloSpikeBucket is the histogram bucket used to locate the densest burst
// of autopsy misses.
const sloSpikeBucket = 10 * sim.Millisecond

// sloSweepWindowsMs and sloSweepLoads define the sweep grid; the fault spec
// layers the chaos ladder's high-intensity core-yield storm (sharp miss
// spikes) over a steady WCET-overrun drizzle, so short runs still miss.
var (
	sloSweepWindowsMs = []float64{5, 10, 20}
	sloSweepLoads     = []float64{0.3, 0.6}
)

const sloSweepSpec = "storm=20,overrun=0.1,factor=50"

func sloSweepRun(o Options, windowMs, load float64, dur sim.Time) (SLOSweepRow, error) {
	fc, err := faults.Parse(sloSweepSpec)
	if err != nil {
		return SLOSweepRow{}, err
	}
	rec := telemetry.New(telemetry.Options{})
	cfg := chaosConfig(o)
	cfg.Load = load
	if fc.Enabled() {
		cfg.Faults = &fc
	}
	cfg.Telemetry = rec
	cfg.SLO = &slo.Options{Window: sim.Time(windowMs * float64(sim.Millisecond))}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return SLOSweepRow{}, err
	}
	rep := sys.Run(dur)
	a := analysis.Analyze(rec.Trace.Events(), analysis.Options{
		PoolCores: cfg.PoolCores,
		Deadline:  cfg.Deadline,
	})

	row := SLOSweepRow{
		WindowMs:     windowMs,
		Load:         load,
		Spec:         sloSweepSpec,
		DAGs:         rep.DAGsReleased,
		Misses:       len(a.Misses),
		Alerts:       sys.SLO().AlertsFired(),
		FirstAlertUs: -1,
		SpikeStartUs: -1,
		SpikeEndUs:   -1,
	}
	if at, ok := sys.SLO().FirstFiring(); ok {
		row.FirstAlertUs = at.Us()
	}
	if len(a.Misses) > 0 {
		// Bucket the attributed misses into fixed virtual-time bins and take
		// the densest one; ties break toward the earliest bucket so the
		// result is independent of iteration order.
		nBuckets := int(dur/sloSpikeBucket) + 1
		counts := make([]int, nBuckets)
		for _, m := range a.Misses {
			b := int(m.At / sloSpikeBucket)
			if b >= 0 && b < nBuckets {
				counts[b]++
			}
		}
		best := 0
		for b, c := range counts {
			if c > counts[best] {
				best = b
			}
		}
		row.SpikeStartUs = (sim.Time(best) * sloSpikeBucket).Us()
		row.SpikeEndUs = (sim.Time(best+1) * sloSpikeBucket).Us()
	}
	if row.FirstAlertUs >= 0 && row.SpikeEndUs >= 0 {
		row.LeadUs = row.SpikeEndUs - row.FirstAlertUs
		row.Leads = row.FirstAlertUs < row.SpikeEndUs
	}
	return row, nil
}

// CaptureSLO runs the chaos testbed with the streaming SLO plane attached
// and writes the window-rows CSV and/or the markdown health report (either
// writer may be nil). An empty faultsSpec selects the slosweep storm
// scenario; zero windowMs/burn select the slo package defaults. Both
// artifacts are byte-identical for a fixed seed at any Workers count.
func CaptureSLO(o Options, faultsSpec string, windowMs, burn float64, csvW, reportW io.Writer) error {
	if faultsSpec == "" {
		faultsSpec = sloSweepSpec
	}
	fc, err := faults.Parse(faultsSpec)
	if err != nil {
		return err
	}
	cfg := chaosConfig(o)
	if fc.Enabled() {
		cfg.Faults = &fc
	}
	cfg.Workers = o.Workers
	cfg.Telemetry = telemetry.New(telemetry.Options{})
	cfg.SLO = &slo.Options{
		Window:        sim.Time(windowMs * float64(sim.Millisecond)),
		BurnThreshold: burn,
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	sys.Run(o.dur(2 * sim.Second))
	if csvW != nil {
		if err := sys.WriteSLOCSV(csvW); err != nil {
			return err
		}
	}
	if reportW != nil {
		if err := sys.WriteSLOReport(reportW); err != nil {
			return err
		}
	}
	return nil
}

// RunSLOSweep executes the detection-latency sweep: window widths x offered
// loads against the high-intensity storm scenario, reporting for each run
// when the first burn-rate alert fired versus when the autopsy's densest
// miss burst completed. A positive lead means the streaming plane paged
// while the incident was still unfolding — before any post-hoc analysis
// could have seen it.
func RunSLOSweep(o Options) (*SLOSweepResult, error) {
	dur := o.dur(2 * sim.Second)
	type job struct{ windowMs, load float64 }
	var jobs []job
	for _, w := range sloSweepWindowsMs {
		for _, l := range sloSweepLoads {
			jobs = append(jobs, job{w, l})
		}
	}
	rows, err := parallel.Map(o.workers(), len(jobs), func(i int) (SLOSweepRow, error) {
		return sloSweepRun(o, jobs[i].windowMs, jobs[i].load, dur)
	})
	if err != nil {
		return nil, err
	}
	return &SLOSweepResult{Rows: rows}, nil
}

// String implements fmt.Stringer: the detection-latency table.
func (r *SLOSweepResult) String() string {
	var sb strings.Builder
	header(&sb, "SLO sweep: burn-rate alert lead time vs autopsy miss spike")
	fmt.Fprintf(&sb, "%-9s %-5s %-10s %8s %8s %7s %12s %12s %10s %6s\n",
		"window_ms", "load", "spec", "dags", "misses", "alerts",
		"alert_us", "spike_end_us", "lead_us", "leads")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-9g %-5g %-10s %8d %8d %7d %12.0f %12.0f %10.0f %6v\n",
			row.WindowMs, row.Load, row.Spec, row.DAGs, row.Misses, row.Alerts,
			row.FirstAlertUs, row.SpikeEndUs, row.LeadUs, row.Leads)
	}
	sb.WriteString("lead_us > 0: the streaming plane alerted before the densest miss burst was over;\n")
	sb.WriteString("smaller windows page faster at the cost of noisier burn estimates\n")
	return sb.String()
}

// CSV implements Tabular for the SLO sweep.
func (r *SLOSweepResult) CSV() ([]string, [][]string) {
	header := []string{"window_ms", "load", "spec", "dags", "misses", "alerts",
		"first_alert_us", "spike_start_us", "spike_end_us", "lead_us", "leads"}
	var rows [][]string
	for _, row := range r.Rows {
		leads := "0"
		if row.Leads {
			leads = "1"
		}
		rows = append(rows, []string{
			f(row.WindowMs), f(row.Load), row.Spec, fmt.Sprintf("%d", row.DAGs),
			d(row.Misses), d(row.Alerts), f(row.FirstAlertUs),
			f(row.SpikeStartUs), f(row.SpikeEndUs), f(row.LeadUs), leads})
	}
	return header, rows
}
