package parallel

import (
	"math"
	"testing"
)

// TestSumOrderedMatchesSerial pins the contract: SumOrdered over Map output
// equals the serial left-to-right sum exactly, for any worker count.
func TestSumOrderedMatchesSerial(t *testing.T) {
	const n = 10_000
	// Values spanning many magnitudes so re-association would actually
	// change the result.
	val := func(i int) float64 {
		return math.Ldexp(1+float64(i%97)/97, (i%61)-30)
	}
	var serial float64
	for i := 0; i < n; i++ {
		serial += val(i)
	}
	for _, workers := range []int{1, 2, 3, 8, 64} {
		out, err := Map(workers, n, func(i int) (float64, error) { return val(i), nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := SumOrdered(out); got != serial {
			t.Errorf("workers=%d: SumOrdered=%g, serial=%g (diff %g)",
				workers, got, serial, got-serial)
		}
	}
}

func TestReduceOrder(t *testing.T) {
	xs := []string{"a", "b", "c"}
	got := Reduce("", xs, func(acc, s string) string { return acc + s })
	if got != "abc" {
		t.Errorf("Reduce folded out of order: %q", got)
	}
}

func TestSumOrderedEmpty(t *testing.T) {
	if s := SumOrdered(nil); s != 0 {
		t.Errorf("SumOrdered(nil) = %g, want 0", s)
	}
}
