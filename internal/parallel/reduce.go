package parallel

// This file holds the canonical ordered reductions for shard results. Map
// and ForEach guarantee index-ordered output slots; these helpers close the
// loop by folding those slots strictly in index order, so the reduced value
// is bit-for-bit identical for any worker count. The floatsum lint rule
// points violators here: never accumulate into a captured variable inside a
// pool callback — return per-index results and reduce with these.

// SumOrdered returns the sum of xs accumulated strictly in index order.
// Floating-point addition is not associative, so this left-to-right fold is
// the one canonical sum; re-associating (tree reduction, accumulation in
// completion order) yields a different last bit on every run.
func SumOrdered(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Reduce folds xs into acc strictly in index order: the deterministic
// generalization of SumOrdered for non-float or structured shard results.
func Reduce[A, T any](acc A, xs []T, f func(A, T) A) A {
	for _, x := range xs {
		acc = f(acc, x)
	}
	return acc
}
