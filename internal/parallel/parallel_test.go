package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestCount(t *testing.T) {
	if Count(3) != 3 {
		t.Error("explicit count not respected")
	}
	if Count(0) < 1 || Count(-1) < 1 {
		t.Error("default count must be at least 1")
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		n := 1000
		hits := make([]int32, n)
		if err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		err := ForEach(workers, 100, func(i int) error {
			if i == 7 || i == 93 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 7" {
			t.Errorf("workers=%d: got %v, want the lowest-index error", workers, err)
		}
	}
}

func TestMapOrdering(t *testing.T) {
	want := make([]int, 500)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(workers, len(want), func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapError(t *testing.T) {
	if _, err := Map(4, 10, func(i int) (int, error) {
		if i%2 == 1 {
			return 0, fmt.Errorf("odd %d", i)
		}
		return i, nil
	}); err == nil || err.Error() != "odd 1" {
		t.Errorf("got %v, want deterministic first error", err)
	}
}

func TestShards(t *testing.T) {
	cases := []struct{ n, max, want int }{
		{0, 8, 0}, {1, 8, 1}, {5, 8, 5}, {100, 8, 8}, {100, 1, 1}, {7, 0, 1},
	}
	for _, c := range cases {
		sh := Shards(c.n, c.max)
		if len(sh) != c.want {
			t.Errorf("Shards(%d,%d): %d shards, want %d", c.n, c.max, len(sh), c.want)
			continue
		}
		covered := 0
		for i, s := range sh {
			if s.Index != i {
				t.Errorf("shard %d has Index %d", i, s.Index)
			}
			if i == 0 && s.Lo != 0 {
				t.Errorf("first shard starts at %d", s.Lo)
			}
			if i > 0 && s.Lo != sh[i-1].Hi {
				t.Errorf("gap between shard %d and %d", i-1, i)
			}
			if s.Hi <= s.Lo {
				t.Errorf("empty shard %d: [%d,%d)", i, s.Lo, s.Hi)
			}
			covered += s.Hi - s.Lo
		}
		if c.n > 0 && sh[len(sh)-1].Hi != c.n {
			t.Errorf("last shard ends at %d, want %d", sh[len(sh)-1].Hi, c.n)
		}
		if covered != c.n {
			t.Errorf("shards cover %d indices, want %d", covered, c.n)
		}
	}
	// Balance: sizes differ by at most one.
	for _, s := range Shards(103, 8) {
		if size := s.Hi - s.Lo; size != 12 && size != 13 {
			t.Errorf("unbalanced shard size %d", size)
		}
	}
}

// TestShardsIndependentOfWorkers is the determinism contract: the shard
// layout (and hence any per-shard RNG substream assignment) is a function of
// the space size only.
func TestShardsIndependentOfWorkers(t *testing.T) {
	a := Shards(12345, 16)
	b := Shards(12345, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shard layout not deterministic")
		}
	}
}
