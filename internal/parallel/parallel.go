// Package parallel is the deterministic fan-out engine used by the
// experiment harness, the PHY pipeline and predictor training. It provides
// bounded worker pools with index-ordered result collection, in the style of
// NDN-DPDK's sharded forwarding threads: work is described as an indexed
// iteration space, workers pull indices from a shared counter, and every
// result lands in its own slot, so the outcome is bit-for-bit identical for
// any worker count (including 1) and any GOMAXPROCS.
//
// Determinism contract: fn(i) must depend only on i and on state that is
// read-only for the duration of the call. Anything stochastic inside fn must
// draw from a stream derived from i (see rng.Substream), never from a
// generator shared across indices. Under that contract, the worker count
// changes wall-clock time and nothing else.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Count resolves a Workers knob to a concrete worker count: n > 0 returns n
// unchanged; anything else (the zero value of a config field) returns
// runtime.NumCPU().
func Count(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ForEach executes fn(i) for every i in [0, n) using at most workers
// concurrent goroutines (workers <= 0 selects Count's default). With one
// worker the loop runs inline on the calling goroutine in index order — the
// exact legacy serial path, stopping at the first error. With more workers
// every index runs even if an earlier one fails; the error returned is the
// one with the lowest index, so error reporting is deterministic too.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Count(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map executes fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results in index order. The ordering guarantee is what lets
// callers fan out and still render canonical output.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Shard is one contiguous sub-range [Lo, Hi) of an iteration space, with its
// position in the shard sequence. Shard boundaries are a pure function of
// the space size, never of the worker count, so per-shard RNG substreams
// yield identical samples no matter how many workers execute them.
type Shard struct {
	Index  int
	Lo, Hi int
}

// Shards splits [0, n) into at most max balanced contiguous shards (sizes
// differ by at most one). It returns min(n, max) shards for positive n.
func Shards(n, max int) []Shard {
	if n <= 0 {
		return nil
	}
	if max < 1 {
		max = 1
	}
	count := max
	if count > n {
		count = n
	}
	out := make([]Shard, count)
	lo := 0
	for i := 0; i < count; i++ {
		hi := lo + (n-lo)/(count-i)
		out[i] = Shard{Index: i, Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}
