// Package analysis is the deterministic post-hoc analysis engine: it
// consumes the telemetry event stream (internal/telemetry) and explains it.
// Three products, all pure functions of the event slice so output bytes are
// identical across runs and -workers counts:
//
//   - per-DAG timeline reconstruction with critical-path extraction — which
//     task chain actually determined completion time, decomposed into
//     fronthaul / queueing / execution / offload / stall / blocked segments;
//   - miss-cause attribution — every EvDeadlineMiss is classified into
//     exactly one Cause, so the per-cause counts partition the total miss
//     count (the invariant CI asserts);
//   - a predictor calibration monitor — per task kind, empirical coverage
//     of the predicted WCET quantile vs the target, sharpness (mean
//     headroom) and windowed drift, from EvPredictSample pairs.
//
// The cause taxonomy and the attribution rules are documented in
// DESIGN.md §5e.
package analysis

import (
	"sort"

	"concordia/internal/faults"
	"concordia/internal/sim"
	"concordia/internal/telemetry"
)

// Options tunes an Analyze pass. The zero value infers everything from the
// trace itself.
type Options struct {
	// PoolCores is the pool's physical core count, used by the
	// insufficient-cores rule. 0 infers max observed core index + 1.
	PoolCores int
	// Deadline is the slot-processing deadline. 0 infers the tightest upper
	// bound visible in the trace: the minimum deadline-miss latency.
	Deadline sim.Time
	// TargetQuantile is the predictors' target coverage (0 = 0.99999, the
	// paper's five-nines quantile).
	TargetQuantile float64
	// DriftWindow is the calibration monitor's window length in samples
	// (0 = 512).
	DriftWindow int
	// MigrationWindow is how long after an EvCellMigrate a miss on the
	// migrated cell is attributed to the migration itself (ramp-up on the
	// destination server: cold predictors' pool state, scheduler re-learning
	// the cell's demand). 0 = 10 ms. Only fleet-level traces carry migrate
	// events, so the rule is inert on single-pool traces.
	MigrationWindow sim.Time
}

func (o Options) withDefaults() Options {
	if o.TargetQuantile == 0 {
		o.TargetQuantile = 0.99999
	}
	if o.DriftWindow <= 0 {
		o.DriftWindow = 512
	}
	if o.MigrationWindow <= 0 {
		o.MigrationWindow = 10 * sim.Millisecond
	}
	return o
}

// Cause is one miss-cause bucket. Every deadline miss maps to exactly one.
type Cause int

// The taxonomy, in attribution priority order (first matching rule wins; see
// attribute). CauseQueueing is the residual bucket, so the causes always
// partition the miss count; CauseUnattributed is reserved for misses whose
// timeline was lost to ring-buffer wraparound.
const (
	// CauseMigration: the cell migrated between fleet servers within
	// Options.MigrationWindow before the miss — destination-server ramp-up
	// disturbance, not a steady-state scheduling failure. This is a
	// coordination-level rule: it is checked first and needs no task
	// timeline, so it still fires on merged fleet traces that carry only
	// DAG-level events.
	CauseMigration Cause = iota
	// CauseUnattributed: the DAG's release or task events were overwritten
	// by ring wraparound; nothing can be said about why it missed.
	CauseUnattributed
	// CauseFronthaulLate: admission was delayed past the nominal release
	// and the DAG would have met its deadline without that delay.
	CauseFronthaulLate
	// CauseAccelFault: an injected lane failure, stuck offload, or device
	// reset hit this DAG, or its critical path lost time to offload retry
	// stalls.
	CauseAccelFault
	// CauseYieldStorm: a core-yield storm forced cores away while this DAG
	// was in flight.
	CauseYieldStorm
	// CauseWCETUnderprediction: a critical-path task ran longer than its
	// predicted WCET quantile (including injected overruns).
	CauseWCETUnderprediction
	// CauseInsufficientCores: queueing dominated the critical path while the
	// pool already owned every physical core — no scheduling policy could
	// have helped.
	CauseInsufficientCores
	// CauseQueueing: residual queueing delay — ready tasks waited for cores
	// the scheduler had yielded (or was still acquiring).
	CauseQueueing
	// NumCauses sizes per-cause count arrays.
	NumCauses
)

var causeNames = [NumCauses]string{
	"migration", "unattributed", "fronthaul_late", "accel_fault",
	"yield_storm", "wcet_underprediction", "insufficient_cores", "queueing",
}

// String implements fmt.Stringer.
func (c Cause) String() string {
	if c < 0 || c >= NumCauses {
		return "cause(?)"
	}
	return causeNames[c]
}

// Miss is one attributed deadline miss.
type Miss struct {
	Seq     int64
	Cell    int32
	Slot    int32
	At      sim.Time
	Latency sim.Time
	Dropped bool
	Cause   Cause
	// Detail is a one-line human-readable justification of the cause.
	Detail string
}

// Autopsy is the full analysis of one trace.
type Autopsy struct {
	Opts   Options // resolved (inferred PoolCores/Deadline filled in)
	Events int

	Timelines []*Timeline // every reconstructed DAG, ordered by sequence
	Misses    []Miss      // every EvDeadlineMiss in event order, attributed

	// CauseCounts[c] is the number of misses attributed to cause c;
	// the counts sum to len(Misses) by construction.
	CauseCounts [NumCauses]int

	DAGsSeen      int
	DAGsCompleted int
	DAGsDropped   int

	Calibration []KindCalibration // per task kind, sorted by kind
}

// TotalMisses returns the number of deadline misses in the trace.
func (a *Autopsy) TotalMisses() int { return len(a.Misses) }

// PartitionHolds reports the attribution invariant: per-cause counts sum
// exactly to the total miss count.
func (a *Autopsy) PartitionHolds() bool {
	sum := 0
	for _, n := range a.CauseCounts {
		sum += n
	}
	return sum == len(a.Misses)
}

// Analyze reconstructs timelines, attributes every deadline miss, and runs
// the calibration monitor over one trace's events (telemetry.Tracer.Events
// order). It is a pure function of its inputs.
func Analyze(events []telemetry.Event, opts Options) *Autopsy {
	opts = opts.withDefaults()
	if opts.PoolCores == 0 {
		opts.PoolCores = inferPoolCores(events)
	}
	if opts.Deadline == 0 {
		opts.Deadline = inferDeadline(events)
	}
	a := &Autopsy{Opts: opts, Events: len(events)}

	tls := buildTimelines(events)
	seqs := make([]int64, 0, len(tls))
	for seq := range tls {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	a.Timelines = make([]*Timeline, 0, len(tls))
	for _, seq := range seqs {
		a.Timelines = append(a.Timelines, tls[seq])
	}
	for _, tl := range a.Timelines {
		tl.extractCriticalPath()
		a.DAGsSeen++
		if tl.Dropped {
			a.DAGsDropped++
		} else if tl.Completed {
			a.DAGsCompleted++
		}
	}

	ctx := newAttributionContext(events, opts)
	for _, ev := range events {
		if ev.Kind != telemetry.EvDeadlineMiss {
			continue
		}
		m := Miss{
			Seq: ev.A, Cell: ev.Cell, Slot: ev.Slot,
			At: ev.At, Latency: ev.Dur,
		}
		tl := tls[ev.A]
		if tl != nil {
			m.Dropped = tl.Dropped
		}
		m.Cause, m.Detail = ctx.attribute(tl, m)
		a.CauseCounts[m.Cause]++
		a.Misses = append(a.Misses, m)
	}

	a.Calibration = CalibrateSamples(extractPredictSamples(events), opts.TargetQuantile, opts.DriftWindow)
	return a
}

// inferPoolCores returns max observed physical core index + 1. EvPredictSample
// reuses the Core field for the DAG-local task ID and is excluded.
func inferPoolCores(events []telemetry.Event) int {
	max := int32(-1)
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.EvTaskDispatch, telemetry.EvTaskComplete,
			telemetry.EvCoreAcquire, telemetry.EvCoreAwake,
			telemetry.EvCoreYield, telemetry.EvCoreRotate:
			if ev.Core > max {
				max = ev.Core
			}
			if ev.Kind == telemetry.EvCoreRotate && int32(ev.A) > max {
				max = int32(ev.A)
			}
		}
	}
	return int(max) + 1
}

// inferDeadline returns the tightest deadline upper bound the trace reveals:
// every miss has latency strictly above the deadline, so the minimum miss
// latency bounds it from above. Zero when the trace has no misses (the value
// is then never used).
func inferDeadline(events []telemetry.Event) sim.Time {
	var min sim.Time
	for _, ev := range events {
		if ev.Kind != telemetry.EvDeadlineMiss {
			continue
		}
		if min == 0 || ev.Dur < min {
			min = ev.Dur
		}
	}
	return min
}

// extractPredictSamples pulls the predicted-vs-observed pairs out of the
// event stream in emission order.
func extractPredictSamples(events []telemetry.Event) []PredictSample {
	var out []PredictSample
	for _, ev := range events {
		if ev.Kind != telemetry.EvPredictSample {
			continue
		}
		out = append(out, PredictSample{
			Kind:      ev.Task,
			Predicted: sim.Time(ev.A),
			Observed:  ev.Dur,
		})
	}
	return out
}

// faults re-exported locally so attribution.go reads naturally.
const (
	classLaneFailure  = int64(faults.LaneFailure)
	classStuckOffload = int64(faults.StuckOffload)
	classYieldStorm   = int64(faults.YieldStorm)
	classFronthaul    = int64(faults.FronthaulLate)
	classDeviceReset  = int64(faults.DeviceReset)
)
