package analysis

import (
	"sort"

	"concordia/internal/sim"
	"concordia/internal/telemetry"
)

// TaskSpan is the reconstructed lifetime of one task within a DAG. A task
// may be enqueued and dispatched more than once (stuck-offload retries);
// the span folds the attempts into one record.
type TaskSpan struct {
	Node int32 // DAG-local task ID
	Kind int32 // ran.TaskKind

	ReadyAt sim.Time // first became ready (enqueue, or dispatch for kept successors)
	StartAt sim.Time // last dispatch (the attempt that completed)
	EndAt   sim.Time // completion
	Done    bool

	// Dispatches counts dispatch events (>1 means offload retries).
	Dispatches int
	// Offloaded reports the task completed on the accelerator (Core=-1).
	Offloaded bool

	// Decomposition of EndAt-ReadyAt: Queue is the summed dispatch delays
	// across attempts, Exec the final software runtime, Offload the final
	// accelerator runtime (submit + device), Stall the residual lost to
	// watchdog timeouts and retry backoff between attempts.
	Queue   sim.Time
	Exec    sim.Time
	Offload sim.Time
	Stall   sim.Time

	// Predicted/Observed are the WCET pair from EvPredictSample when the
	// task completed (HasSample).
	Predicted sim.Time
	Observed  sim.Time
	HasSample bool

	hasReady bool
}

// Timeline is the reconstructed lifetime of one DAG.
type Timeline struct {
	Seq  int64
	Cell int32
	Slot int32
	Dir  int64

	// AdmitAt is when the pool admitted the DAG (EvDAGRelease). Release is
	// the nominal radio release stamp, recovered as EndAt-Latency; for a
	// fronthaul-late slot AdmitAt > Release.
	AdmitAt  sim.Time
	Release  sim.Time
	EndAt    sim.Time
	Latency  sim.Time
	HasAdmit bool
	HasEnd   bool

	Completed bool // EvDAGComplete seen
	Dropped   bool // EvDAGDrop seen
	Missed    bool // EvDeadlineMiss seen

	Tasks []*TaskSpan // sorted by node ID

	// Critical is the chain of node IDs (root-most first) that determined
	// the completion time, recovered by walking completion/ready stamps
	// backwards from the last-finishing task.
	Critical []int32

	// Critical-path decomposition of Latency. Fronthaul is the admission
	// delay (AdmitAt-Release); Blocked is the residual not explained by the
	// chain — predecessor waits outside the chain and, for dropped DAGs,
	// the dead time between the last completion and the drop.
	Fronthaul sim.Time
	Queue     sim.Time
	Exec      sim.Time
	Offload   sim.Time
	Stall     sim.Time
	Blocked   sim.Time

	// Truncated marks a timeline whose admission record was lost to ring
	// wraparound; its decomposition is unreliable.
	Truncated bool

	spans map[int32]*TaskSpan
}

func (tl *Timeline) span(node int32, kind int32) *TaskSpan {
	s, ok := tl.spans[node]
	if !ok {
		s = &TaskSpan{Node: node, Kind: kind}
		tl.spans[node] = s
	}
	return s
}

// buildTimelines groups the event stream by DAG sequence number.
func buildTimelines(events []telemetry.Event) map[int64]*Timeline {
	tls := map[int64]*Timeline{}
	get := func(seq int64, cell, slot int32) *Timeline {
		tl, ok := tls[seq]
		if !ok {
			tl = &Timeline{Seq: seq, Cell: cell, Slot: slot, spans: map[int32]*TaskSpan{}}
			tls[seq] = tl
		}
		return tl
	}
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.EvDAGRelease:
			tl := get(ev.A, ev.Cell, ev.Slot)
			tl.AdmitAt = ev.At
			tl.HasAdmit = true
			tl.Dir = ev.B
		case telemetry.EvTaskEnqueue:
			s := get(ev.A, ev.Cell, ev.Slot).span(int32(ev.B), ev.Task)
			if !s.hasReady {
				s.ReadyAt = ev.At
				s.hasReady = true
			}
		case telemetry.EvTaskDispatch:
			s := get(ev.A, ev.Cell, ev.Slot).span(int32(ev.B), ev.Task)
			if !s.hasReady {
				// Kept successors skip the ready queue: dispatch with zero
				// delay is the only record, and ready time equals dispatch.
				s.ReadyAt = ev.At - ev.Dur
				s.hasReady = true
			}
			s.StartAt = ev.At
			s.Dispatches++
			s.Queue += ev.Dur
		case telemetry.EvTaskComplete:
			s := get(ev.A, ev.Cell, ev.Slot).span(int32(ev.B), ev.Task)
			s.EndAt = ev.At
			s.Done = true
			s.Offloaded = ev.Core < 0
			if s.Offloaded {
				s.Offload = ev.Dur
			} else {
				s.Exec = ev.Dur
			}
			if !s.hasReady {
				// Both enqueue and dispatch lost to wraparound: anchor the
				// span at its completion so downstream math stays sane.
				s.ReadyAt = ev.At - ev.Dur
				s.hasReady = true
			}
		case telemetry.EvPredictSample:
			// Core carries the DAG-local task ID on this kind.
			s := get(ev.B, ev.Cell, ev.Slot).span(ev.Core, ev.Task)
			s.Predicted = sim.Time(ev.A)
			s.Observed = ev.Dur
			s.HasSample = true
		case telemetry.EvDAGComplete:
			tl := get(ev.A, ev.Cell, ev.Slot)
			tl.EndAt = ev.At
			tl.Latency = ev.Dur
			tl.HasEnd = true
			tl.Completed = true
			tl.Dir = ev.B
		case telemetry.EvDAGDrop:
			tl := get(ev.A, ev.Cell, ev.Slot)
			tl.EndAt = ev.At
			tl.Latency = ev.Dur
			tl.HasEnd = true
			tl.Dropped = true
			tl.Dir = ev.B
		case telemetry.EvDeadlineMiss:
			get(ev.A, ev.Cell, ev.Slot).Missed = true
		}
	}
	for _, tl := range tls {
		nodes := make([]int32, 0, len(tl.spans))
		for node := range tl.spans {
			nodes = append(nodes, node)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		tl.Tasks = make([]*TaskSpan, 0, len(tl.spans))
		for _, node := range nodes {
			s := tl.spans[node]
			// Finish per-span decomposition: whatever the attempts did not
			// spend queueing or executing was stall (watchdog + backoff).
			if s.Done {
				s.Stall = s.EndAt - s.ReadyAt - s.Queue - s.Exec - s.Offload
				if s.Stall < 0 {
					s.Stall = 0
				}
			}
			tl.Tasks = append(tl.Tasks, s)
		}
		if tl.HasEnd {
			tl.Release = tl.EndAt - tl.Latency
		} else if tl.HasAdmit {
			tl.Release = tl.AdmitAt
		}
		tl.Truncated = !tl.HasAdmit
	}
	return tls
}

// extractCriticalPath walks backwards from the last-finishing task: each
// step picks the completed span whose completion time is the latest one not
// after the current span's ready time — exactly the dependency whose finish
// made the task ready, since the pool enqueues a successor the instant its
// last predecessor completes. The walk needs no DAG edge information, so it
// works on the trace alone.
func (tl *Timeline) extractCriticalPath() {
	var end *TaskSpan
	for _, s := range tl.Tasks {
		if !s.Done {
			continue
		}
		if end == nil || s.EndAt > end.EndAt || (s.EndAt == end.EndAt && s.Node < end.Node) {
			end = s
		}
	}
	if end == nil {
		return
	}
	onPath := map[int32]bool{}
	var chain []*TaskSpan
	cur := end
	for cur != nil {
		chain = append(chain, cur)
		onPath[cur.Node] = true
		var pred *TaskSpan
		for _, s := range tl.Tasks {
			if !s.Done || onPath[s.Node] || s.EndAt > cur.ReadyAt {
				continue
			}
			if pred == nil || s.EndAt > pred.EndAt || (s.EndAt == pred.EndAt && s.Node < pred.Node) {
				pred = s
			}
		}
		// A root's ready time coincides with admission; stop once no span
		// finishes early enough to have gated the current one.
		cur = pred
	}
	// chain is end-first; record root-first.
	tl.Critical = make([]int32, len(chain))
	for i, s := range chain {
		tl.Critical[len(chain)-1-i] = s.Node
	}
	for _, s := range chain {
		tl.Queue += s.Queue
		tl.Exec += s.Exec
		tl.Offload += s.Offload
		tl.Stall += s.Stall
	}
	if tl.HasAdmit && tl.AdmitAt > tl.Release {
		tl.Fronthaul = tl.AdmitAt - tl.Release
	}
	if tl.HasEnd {
		tl.Blocked = tl.Latency - tl.Fronthaul - tl.Queue - tl.Exec - tl.Offload - tl.Stall
		if tl.Blocked < 0 {
			tl.Blocked = 0
		}
	}
}

// CriticalSpan returns the span for a node on the critical path (nil when
// the node is unknown).
func (tl *Timeline) CriticalSpan(node int32) *TaskSpan {
	if tl.spans == nil {
		return nil
	}
	return tl.spans[node]
}
