package analysis

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"concordia/internal/ran"
)

// fmtFloat matches the telemetry exporters' shortest-round-trip float
// encoding so every CSV in the repo formats numbers identically.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func kindName(kind int32) string {
	if kind < 0 || kind >= int32(ran.NumTaskKinds) {
		return "task(" + strconv.Itoa(int(kind)) + ")"
	}
	return ran.TaskKind(kind).String()
}

// WriteCausesCSV exports the per-cause miss counts (cause,count,share) in
// taxonomy order, ending with a total row — the partition invariant is
// visible as total == sum of the rows above it.
func (a *Autopsy) WriteCausesCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("cause,count,share\n")
	total := len(a.Misses)
	for c := Cause(0); c < NumCauses; c++ {
		share := 0.0
		if total > 0 {
			share = float64(a.CauseCounts[c]) / float64(total)
		}
		bw.WriteString(c.String())
		bw.WriteByte(',')
		bw.WriteString(strconv.Itoa(a.CauseCounts[c]))
		bw.WriteByte(',')
		bw.WriteString(fmtFloat(share))
		bw.WriteByte('\n')
	}
	bw.WriteString("total,")
	bw.WriteString(strconv.Itoa(total))
	bw.WriteString(",1\n")
	return bw.Flush()
}

// WriteMissesCSV exports every attributed miss in event order.
func (a *Autopsy) WriteMissesCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("seq,cell,slot,at_us,latency_us,dropped,cause\n")
	for _, m := range a.Misses {
		fmt.Fprintf(bw, "%d,%d,%d,%s,%s,%t,%s\n",
			m.Seq, m.Cell, m.Slot, fmtFloat(m.At.Us()), fmtFloat(m.Latency.Us()),
			m.Dropped, m.Cause)
	}
	return bw.Flush()
}

// WriteCalibrationCSV exports the calibration monitor's per-kind rows.
func (a *Autopsy) WriteCalibrationCSV(w io.Writer) error {
	return WriteCalibrationCSV(w, "", a.Calibration)
}

// WriteCalibrationCSV exports calibration rows, optionally labelled with a
// predictor name column (the predcal experiment writes four predictors into
// one file; a single-trace autopsy leaves the label empty and the column
// out).
func WriteCalibrationCSV(w io.Writer, predictor string, rows []KindCalibration) error {
	bw := bufio.NewWriter(w)
	if predictor == "" {
		bw.WriteString("kind,samples,coverage,target,mean_headroom_us,mean_headroom_frac,drift,windows,tolerance,miscalibrated\n")
	} else {
		bw.WriteString("predictor,kind,samples,coverage,target,mean_headroom_us,mean_headroom_frac,drift,windows,tolerance,miscalibrated\n")
	}
	if err := appendCalibrationCSV(bw, predictor, rows); err != nil {
		return err
	}
	return bw.Flush()
}

func appendCalibrationCSV(bw *bufio.Writer, predictor string, rows []KindCalibration) error {
	for _, c := range rows {
		if predictor != "" {
			bw.WriteString(predictor)
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "%s,%d,%s,%s,%s,%s,%s,%d,%s,%t\n",
			kindName(c.Kind), c.Samples,
			fmtFloat(c.Coverage), fmtFloat(c.Target),
			fmtFloat(c.MeanHeadroomUs), fmtFloat(c.MeanHeadroomFrac),
			fmtFloat(c.Drift), c.Windows, fmtFloat(c.Tolerance), c.Miscalibrated)
	}
	return nil
}

// criticalPathString renders a timeline's critical chain as
// "fft(q12.0+e80.5) -> equalization(q0.0+e210.1)" — per step the queueing
// and execution/offload microseconds that the chain contributed.
func (tl *Timeline) criticalPathString() string {
	var sb strings.Builder
	for i, node := range tl.Critical {
		s := tl.CriticalSpan(node)
		if s == nil {
			continue
		}
		if i > 0 {
			sb.WriteString(" -> ")
		}
		sb.WriteString(kindName(s.Kind))
		work := s.Exec
		tag := "e"
		if s.Offloaded {
			work = s.Offload
			tag = "o"
		}
		fmt.Fprintf(&sb, "(q%.1f+%s%.1f", s.Queue.Us(), tag, work.Us())
		if s.Stall > 0 {
			fmt.Fprintf(&sb, "+s%.1f", s.Stall.Us())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// WriteReport renders the markdown autopsy: run summary, the miss-cause
// partition, the worst misses with their critical paths, the aggregate
// critical-path decomposition of missed DAGs, and the calibration table.
func (a *Autopsy) WriteReport(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Autopsy\n\n")
	fmt.Fprintf(bw, "## Run summary\n\n")
	fmt.Fprintf(bw, "- events analysed: %d\n", a.Events)
	fmt.Fprintf(bw, "- DAGs seen: %d (completed %d, dropped %d)\n", a.DAGsSeen, a.DAGsCompleted, a.DAGsDropped)
	fmt.Fprintf(bw, "- deadline misses: %d\n", len(a.Misses))
	fmt.Fprintf(bw, "- pool cores: %d, deadline: %.1f us\n\n", a.Opts.PoolCores, a.Opts.Deadline.Us())

	fmt.Fprintf(bw, "## Miss-cause attribution\n\n")
	if len(a.Misses) == 0 {
		fmt.Fprintf(bw, "No deadline misses in this trace.\n\n")
	} else {
		fmt.Fprintf(bw, "| cause | count | share |\n|---|---:|---:|\n")
		for c := Cause(0); c < NumCauses; c++ {
			if a.CauseCounts[c] == 0 {
				continue
			}
			fmt.Fprintf(bw, "| %s | %d | %.1f%% |\n",
				c, a.CauseCounts[c], 100*float64(a.CauseCounts[c])/float64(len(a.Misses)))
		}
		verdict := "holds"
		if !a.PartitionHolds() {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(bw, "\nPartition invariant %s: causes sum to %d of %d misses.\n\n",
			verdict, a.sumCauses(), len(a.Misses))

		fmt.Fprintf(bw, "### Worst misses\n\n")
		worst := a.worstMisses(10)
		fmt.Fprintf(bw, "| seq | cell | slot | latency us | cause | critical path |\n|---:|---:|---:|---:|---|---|\n")
		for _, m := range worst {
			cp := ""
			if tl := a.timelineBySeq(m.Seq); tl != nil {
				cp = tl.criticalPathString()
			}
			fmt.Fprintf(bw, "| %d | %d | %d | %.1f | %s | %s |\n",
				m.Seq, m.Cell, m.Slot, m.Latency.Us(), m.Cause, cp)
		}
		bw.WriteByte('\n')

		fmt.Fprintf(bw, "### Critical-path decomposition (missed DAGs, mean us)\n\n")
		var fr, qu, ex, of, st, bl float64
		n := 0
		for _, tl := range a.Timelines {
			if !tl.Missed || tl.Truncated {
				continue
			}
			fr += tl.Fronthaul.Us()
			qu += tl.Queue.Us()
			ex += tl.Exec.Us()
			of += tl.Offload.Us()
			st += tl.Stall.Us()
			bl += tl.Blocked.Us()
			n++
		}
		if n > 0 {
			fn := float64(n)
			fmt.Fprintf(bw, "| fronthaul | queue | exec | offload | stall | blocked |\n|---:|---:|---:|---:|---:|---:|\n")
			fmt.Fprintf(bw, "| %.1f | %.1f | %.1f | %.1f | %.1f | %.1f |\n\n",
				fr/fn, qu/fn, ex/fn, of/fn, st/fn, bl/fn)
		} else {
			fmt.Fprintf(bw, "No reconstructable missed DAGs.\n\n")
		}
	}

	fmt.Fprintf(bw, "## Predictor calibration\n\n")
	if len(a.Calibration) == 0 {
		fmt.Fprintf(bw, "No predict samples in this trace.\n")
	} else {
		fmt.Fprintf(bw, "| kind | samples | coverage | target | headroom us | drift | verdict |\n|---|---:|---:|---:|---:|---:|---|\n")
		for _, c := range a.Calibration {
			verdict := "ok"
			if c.Miscalibrated {
				verdict = "MISCALIBRATED"
			}
			fmt.Fprintf(bw, "| %s | %d | %.5f | %.5f | %.1f | %.4f | %s |\n",
				kindName(c.Kind), c.Samples, c.Coverage, c.Target, c.MeanHeadroomUs, c.Drift, verdict)
		}
	}
	return bw.Flush()
}

func (a *Autopsy) sumCauses() int {
	sum := 0
	for _, n := range a.CauseCounts {
		sum += n
	}
	return sum
}

// worstMisses returns up to n misses by descending latency (ties by
// sequence, so the order is deterministic).
func (a *Autopsy) worstMisses(n int) []Miss {
	out := append([]Miss(nil), a.Misses...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Latency != out[j].Latency {
			return out[i].Latency > out[j].Latency
		}
		return out[i].Seq < out[j].Seq
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

func (a *Autopsy) timelineBySeq(seq int64) *Timeline {
	lo, hi := 0, len(a.Timelines)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.Timelines[mid].Seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.Timelines) && a.Timelines[lo].Seq == seq {
		return a.Timelines[lo]
	}
	return nil
}
