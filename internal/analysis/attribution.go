package analysis

import (
	"fmt"
	"sort"

	"concordia/internal/sim"
	"concordia/internal/telemetry"
)

// attributionContext holds the trace-wide indexes the per-miss rules consult:
// which DAGs were hit by accelerator faults, when storm yields fired, and
// how many cores the pool owned over time.
type attributionContext struct {
	opts Options

	// accelFault maps DAG sequence -> injected lane-failure, stuck-offload,
	// or device-reset fallback.
	accelFault map[int64]bool
	// stormYields is the sorted list of storm-yield recovery times.
	stormYields []sim.Time
	// owned is the (time, RAN-owned cores) step series from core
	// acquire/yield events, in time order.
	owned []ownedPoint
	// migrations maps global cell ID -> sorted times the fleet placement
	// engine migrated the cell (EvCellMigrate).
	migrations map[int32][]sim.Time
}

type ownedPoint struct {
	at sim.Time
	n  int64
}

func newAttributionContext(events []telemetry.Event, opts Options) *attributionContext {
	ctx := &attributionContext{
		opts:       opts,
		accelFault: map[int64]bool{},
		migrations: map[int32][]sim.Time{},
	}
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.EvCellMigrate:
			ctx.migrations[ev.Cell] = append(ctx.migrations[ev.Cell], ev.At)
		case telemetry.EvFaultInject:
			if (ev.A == classLaneFailure || ev.A == classStuckOffload ||
				ev.A == classDeviceReset) && ev.B >= 0 {
				ctx.accelFault[ev.B] = true
			}
		case telemetry.EvFaultRecover:
			if ev.A == classYieldStorm {
				ctx.stormYields = append(ctx.stormYields, ev.At)
			}
		case telemetry.EvCoreAcquire, telemetry.EvCoreYield:
			ctx.owned = append(ctx.owned, ownedPoint{at: ev.At, n: ev.A})
		}
	}
	sort.Slice(ctx.stormYields, func(i, j int) bool { return ctx.stormYields[i] < ctx.stormYields[j] })
	for _, ts := range ctx.migrations {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}
	return ctx
}

// migratedIn reports whether cell migrated inside [from, to].
func (ctx *attributionContext) migratedIn(cell int32, from, to sim.Time) bool {
	ts := ctx.migrations[cell]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= from })
	return i < len(ts) && ts[i] <= to
}

// stormIn reports whether any storm yield fired inside [from, to].
func (ctx *attributionContext) stormIn(from, to sim.Time) bool {
	i := sort.Search(len(ctx.stormYields), func(i int) bool { return ctx.stormYields[i] >= from })
	return i < len(ctx.stormYields) && ctx.stormYields[i] <= to
}

// minOwnedIn returns the minimum RAN-owned core count over [from, to], or
// -1 when the trace has no ownership data before `to` (static schedulers
// emit no acquire/yield events).
func (ctx *attributionContext) minOwnedIn(from, to sim.Time) int64 {
	// Value entering the window: last change at or before `from`.
	i := sort.Search(len(ctx.owned), func(i int) bool { return ctx.owned[i].at > from })
	min := int64(-1)
	if i > 0 {
		min = ctx.owned[i-1].n
	}
	for ; i < len(ctx.owned) && ctx.owned[i].at <= to; i++ {
		if min < 0 || ctx.owned[i].n < min {
			min = ctx.owned[i].n
		}
	}
	return min
}

// attribute classifies one deadline miss. The rules run in a fixed priority
// order and the last rule always matches, so every miss receives exactly one
// cause — the partition invariant is by construction, not by bookkeeping.
func (ctx *attributionContext) attribute(tl *Timeline, m Miss) (Cause, string) {
	// Rule -1: fleet migration in flight. A coordination-level rule, checked
	// before the timeline rules: EvCellMigrate is emitted by the fleet
	// placement engine, so it is trustworthy even when the merged fleet
	// trace carries no task-level events for this DAG. A miss on a cell that
	// just changed servers is ramp-up disturbance, not a steady-state
	// scheduling failure.
	if len(ctx.migrations) > 0 {
		from := m.At - ctx.opts.MigrationWindow
		if from < 0 {
			from = 0
		}
		if ctx.migratedIn(m.Cell, from, m.At) {
			return CauseMigration, fmt.Sprintf(
				"cell %d migrated between servers within %.1fms of the miss",
				m.Cell, ctx.opts.MigrationWindow.Ms())
		}
	}

	// Rule 0: ring wraparound ate the DAG's admission (or the whole DAG);
	// nothing below can be trusted.
	if tl == nil || tl.Truncated || len(tl.Tasks) == 0 {
		return CauseUnattributed, "timeline lost to trace-ring wraparound"
	}

	// Rule 1: fronthaul late-release — admission was delayed and the slot
	// would have made its deadline on the remaining latency alone.
	if tl.Fronthaul > 0 && m.Latency-tl.Fronthaul <= ctx.opts.Deadline {
		return CauseFronthaulLate, fmt.Sprintf(
			"admitted %.1fus after nominal release; %.1fus of work fits the deadline",
			tl.Fronthaul.Us(), (m.Latency - tl.Fronthaul).Us())
	}

	// Rule 2: accelerator stall or fault — an injected lane failure, stuck
	// offload, or device reset hit this DAG, or its critical path lost time
	// between offload attempts (watchdog + backoff stalls).
	if ctx.accelFault[m.Seq] {
		return CauseAccelFault, "lane/stuck/device-reset fault injected into this DAG"
	}
	for _, node := range tl.Critical {
		if s := tl.CriticalSpan(node); s != nil && s.Stall > 0 {
			return CauseAccelFault, fmt.Sprintf(
				"critical-path task %d stalled %.1fus between attempts (%d dispatches)",
				s.Node, s.Stall.Us(), s.Dispatches)
		}
	}

	// Rule 3: core-yield storm in flight.
	if ctx.stormIn(tl.Release, m.At) {
		return CauseYieldStorm, "core-yield storm fired while the DAG was in flight"
	}

	// Rule 4: WCET underprediction — a critical-path task overran its
	// predicted quantile (injected overruns land here too: the injector
	// models a mispredicted input).
	for _, node := range tl.Critical {
		s := tl.CriticalSpan(node)
		if s != nil && s.HasSample && s.Observed > s.Predicted {
			return CauseWCETUnderprediction, fmt.Sprintf(
				"critical-path task %d observed %.1fus > predicted %.1fus",
				s.Node, s.Observed.Us(), s.Predicted.Us())
		}
	}

	// Rules 5/6 split queueing-dominated misses by whether more cores were
	// even available: if the pool held every physical core for the whole
	// flight and queueing still dominated the critical path, the platform —
	// not the scheduler — was short.
	queueing := tl.Queue + tl.Stall + tl.Blocked
	work := tl.Exec + tl.Offload
	if queueing >= work && ctx.opts.PoolCores > 0 {
		if min := ctx.minOwnedIn(tl.Release, m.At); min >= int64(ctx.opts.PoolCores) {
			return CauseInsufficientCores, fmt.Sprintf(
				"all %d cores RAN-owned throughout; queueing %.1fus >= work %.1fus",
				ctx.opts.PoolCores, queueing.Us(), work.Us())
		}
	}

	// Rule 6: residual — queueing delay while the scheduler held back cores
	// (ramp-up lag, yielded cores, wakeup latency).
	return CauseQueueing, fmt.Sprintf(
		"queueing %.1fus vs work %.1fus with cores available", queueing.Us(), work.Us())
}
