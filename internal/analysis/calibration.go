package analysis

import (
	"math"
	"sort"

	"concordia/internal/sim"
)

// PredictSample is one predicted-vs-observed WCET pair (the payload of an
// EvPredictSample event, or a synthetic pair from the predcal experiment).
type PredictSample struct {
	Kind      int32
	Predicted sim.Time
	Observed  sim.Time
}

// KindCalibration is the calibration monitor's verdict for one task kind.
//
// A predictor targeting quantile q is calibrated when the observed runtime
// lands at or under the prediction a fraction q of the time (coverage), and
// well-calibrated predictions are additionally *sharp* — the headroom
// (prediction minus observation) is small, because every microsecond of
// pessimism is CPU the pool cannot reclaim. Drift watches coverage over
// sliding windows: a predictor that was calibrated offline but degrades
// under a workload shift shows windows drifting away from the overall rate
// long before the aggregate number moves.
type KindCalibration struct {
	Kind    int32
	Samples int

	// Coverage is the fraction of samples with observed <= predicted;
	// Target is the quantile the predictor aimed for.
	Coverage float64
	Target   float64

	// MeanHeadroomUs is the mean (predicted - observed) in µs (negative
	// when underprediction dominates); MeanHeadroomFrac normalizes by the
	// prediction.
	MeanHeadroomUs   float64
	MeanHeadroomFrac float64

	// Drift is the largest absolute deviation of any full window's coverage
	// from the overall coverage; Windows is how many full windows the trace
	// held.
	Drift   float64
	Windows int

	// Tolerance is the acceptance band below Target (3-sigma binomial,
	// floored at 3/n so tiny traces do not flag); Miscalibrated is
	// Coverage < Target - Tolerance.
	Tolerance     float64
	Miscalibrated bool
}

// CalibrateSamples runs the calibration monitor: per task kind coverage,
// sharpness and windowed drift against the target quantile. Samples must be
// in trace order (windows are temporal); output rows are sorted by kind so
// the bytes are deterministic.
func CalibrateSamples(samples []PredictSample, target float64, window int) []KindCalibration {
	if target == 0 {
		target = 0.99999
	}
	if window <= 0 {
		window = 512
	}
	byKind := map[int32][]PredictSample{}
	for _, s := range samples {
		byKind[s.Kind] = append(byKind[s.Kind], s)
	}
	kinds := make([]int32, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	out := make([]KindCalibration, 0, len(kinds))
	for _, k := range kinds {
		ks := byKind[k]
		c := KindCalibration{Kind: k, Samples: len(ks), Target: target}
		covered := 0
		var headUs, headFrac float64
		for _, s := range ks {
			if s.Observed <= s.Predicted {
				covered++
			}
			headUs += (s.Predicted - s.Observed).Us()
			if s.Predicted > 0 {
				headFrac += float64(s.Predicted-s.Observed) / float64(s.Predicted)
			}
		}
		n := float64(len(ks))
		c.Coverage = float64(covered) / n
		c.MeanHeadroomUs = headUs / n
		c.MeanHeadroomFrac = headFrac / n

		for i := 0; i+window <= len(ks); i += window {
			wCovered := 0
			for _, s := range ks[i : i+window] {
				if s.Observed <= s.Predicted {
					wCovered++
				}
			}
			dev := math.Abs(float64(wCovered)/float64(window) - c.Coverage)
			if dev > c.Drift {
				c.Drift = dev
			}
			c.Windows++
		}

		// 3-sigma binomial band around the target, floored so that a run too
		// short to resolve the quantile cannot flag: with n samples the
		// smallest observable miss rate is 1/n.
		sigma := math.Sqrt(target * (1 - target) / n)
		c.Tolerance = math.Max(3*sigma, 3/n)
		c.Miscalibrated = c.Coverage < c.Target-c.Tolerance
		out = append(out, c)
	}
	return out
}
