package analysis

import (
	"bytes"
	"strings"
	"testing"

	"concordia/internal/sim"
	"concordia/internal/telemetry"
)

func us(v int64) sim.Time { return sim.Time(v) * sim.Microsecond }

// ev is a shorthand event constructor for synthetic traces.
func ev(kind telemetry.EventKind, at sim.Time) telemetry.Event {
	return telemetry.Event{At: at, Kind: kind, Core: -1, Cell: -1, Slot: -1, Task: -1}
}

// chainDAG builds the canonical single-task miss scenario the attribution
// tests perturb: admitted at `admit`, one task that queues 30 µs and executes
// 20 µs, completing at admit+50 µs with latency measured from `release`.
// With a 40 µs deadline the base case lands in CauseQueueing.
func chainDAG(seq int64, release, admit sim.Time) []telemetry.Event {
	rel := ev(telemetry.EvDAGRelease, admit)
	rel.Cell, rel.Slot, rel.A = 2, 5, seq

	enq := ev(telemetry.EvTaskEnqueue, admit)
	enq.Cell, enq.Slot, enq.Task, enq.A, enq.B = 2, 5, 0, seq, 0

	dis := ev(telemetry.EvTaskDispatch, admit+us(30))
	dis.Core, dis.Cell, dis.Slot, dis.Task = 0, 2, 5, 0
	dis.Dur, dis.A, dis.B = us(30), seq, 0

	com := ev(telemetry.EvTaskComplete, admit+us(50))
	com.Core, com.Cell, com.Slot, com.Task = 0, 2, 5, 0
	com.Dur, com.A, com.B = us(20), seq, 0

	end := admit + us(50)
	done := ev(telemetry.EvDAGComplete, end)
	done.Cell, done.Slot, done.Dur, done.A = 2, 5, end-release, seq

	miss := ev(telemetry.EvDeadlineMiss, end)
	miss.Cell, miss.Slot, miss.Dur, miss.A = 2, 5, end-release, seq

	return []telemetry.Event{rel, enq, dis, com, done, miss}
}

func analyzeOne(t *testing.T, events []telemetry.Event) (*Autopsy, Miss) {
	t.Helper()
	a := Analyze(events, Options{PoolCores: 2, Deadline: us(40)})
	if !a.PartitionHolds() {
		t.Fatalf("partition invariant violated: causes %v vs %d misses", a.CauseCounts, len(a.Misses))
	}
	if len(a.Misses) != 1 {
		t.Fatalf("expected 1 miss, got %d", len(a.Misses))
	}
	return a, a.Misses[0]
}

func TestTimelineTwoTaskChain(t *testing.T) {
	var events []telemetry.Event
	add := func(e telemetry.Event) { events = append(events, e) }

	rel := ev(telemetry.EvDAGRelease, 0)
	rel.Cell, rel.Slot, rel.A, rel.B = 1, 3, 7, 1
	add(rel)
	// Task 0: ready at 0, dispatched at 10 µs, runs 50 µs.
	enq0 := ev(telemetry.EvTaskEnqueue, 0)
	enq0.Cell, enq0.Slot, enq0.Task, enq0.A, enq0.B = 1, 3, 0, 7, 0
	add(enq0)
	dis0 := ev(telemetry.EvTaskDispatch, us(10))
	dis0.Core, dis0.Cell, dis0.Slot, dis0.Task, dis0.Dur, dis0.A, dis0.B = 0, 1, 3, 0, us(10), 7, 0
	add(dis0)
	com0 := ev(telemetry.EvTaskComplete, us(60))
	com0.Core, com0.Cell, com0.Slot, com0.Task, com0.Dur, com0.A, com0.B = 0, 1, 3, 0, us(50), 7, 0
	add(com0)
	// Task 1: kept successor — dispatched the instant task 0 completes.
	dis1 := ev(telemetry.EvTaskDispatch, us(60))
	dis1.Core, dis1.Cell, dis1.Slot, dis1.Task, dis1.Dur, dis1.A, dis1.B = 0, 1, 3, 1, 0, 7, 1
	add(dis1)
	com1 := ev(telemetry.EvTaskComplete, us(100))
	com1.Core, com1.Cell, com1.Slot, com1.Task, com1.Dur, com1.A, com1.B = 0, 1, 3, 1, us(40), 7, 1
	add(com1)
	done := ev(telemetry.EvDAGComplete, us(100))
	done.Cell, done.Slot, done.Dur, done.A, done.B = 1, 3, us(100), 7, 1
	add(done)

	a := Analyze(events, Options{PoolCores: 2, Deadline: us(200)})
	if a.DAGsSeen != 1 || a.DAGsCompleted != 1 || len(a.Misses) != 0 {
		t.Fatalf("seen=%d completed=%d misses=%d", a.DAGsSeen, a.DAGsCompleted, len(a.Misses))
	}
	tl := a.Timelines[0]
	if tl.Seq != 7 || !tl.Completed || tl.Truncated {
		t.Fatalf("timeline: %+v", tl)
	}
	if tl.Latency != us(100) || tl.Release != 0 {
		t.Errorf("latency %v release %v", tl.Latency, tl.Release)
	}
	if len(tl.Critical) != 2 || tl.Critical[0] != 0 || tl.Critical[1] != 1 {
		t.Errorf("critical path %v, want [0 1]", tl.Critical)
	}
	if tl.Queue != us(10) || tl.Exec != us(90) || tl.Fronthaul != 0 || tl.Stall != 0 || tl.Blocked != 0 {
		t.Errorf("decomposition q=%v e=%v f=%v s=%v b=%v", tl.Queue, tl.Exec, tl.Fronthaul, tl.Stall, tl.Blocked)
	}
	// The kept successor's ready time is its dispatch time (zero queueing).
	if s := tl.CriticalSpan(1); s == nil || s.ReadyAt != us(60) || s.Queue != 0 {
		t.Errorf("kept successor span: %+v", s)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	// Root 0 gates parallel 1 and 2; join 3 waits for the slower branch (2).
	var events []telemetry.Event
	task := func(node int32, ready, disp, end sim.Time) {
		enq := ev(telemetry.EvTaskEnqueue, ready)
		enq.Cell, enq.Slot, enq.Task, enq.A, enq.B = 0, 0, node, 9, int64(node)
		dis := ev(telemetry.EvTaskDispatch, disp)
		dis.Core, dis.Cell, dis.Slot, dis.Task, dis.Dur, dis.A, dis.B = 0, 0, 0, node, disp-ready, 9, int64(node)
		com := ev(telemetry.EvTaskComplete, end)
		com.Core, com.Cell, com.Slot, com.Task, com.Dur, com.A, com.B = 0, 0, 0, node, end-disp, 9, int64(node)
		events = append(events, enq, dis, com)
	}
	rel := ev(telemetry.EvDAGRelease, 0)
	rel.Cell, rel.Slot, rel.A = 0, 0, 9
	events = append(events, rel)
	task(0, 0, 0, us(20))
	task(1, us(20), us(20), us(50))
	task(2, us(20), us(25), us(80))
	task(3, us(80), us(80), us(100))
	done := ev(telemetry.EvDAGComplete, us(100))
	done.Cell, done.Slot, done.Dur, done.A = 0, 0, us(100), 9
	events = append(events, done)

	a := Analyze(events, Options{PoolCores: 2, Deadline: us(200)})
	tl := a.Timelines[0]
	want := []int32{0, 2, 3}
	if len(tl.Critical) != len(want) {
		t.Fatalf("critical path %v, want %v", tl.Critical, want)
	}
	for i, n := range want {
		if tl.Critical[i] != n {
			t.Fatalf("critical path %v, want %v", tl.Critical, want)
		}
	}
}

func TestAttributeQueueingResidual(t *testing.T) {
	_, m := analyzeOne(t, chainDAG(1, 0, 0))
	if m.Cause != CauseQueueing {
		t.Fatalf("cause %v, want queueing (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeFronthaulLate(t *testing.T) {
	// Admitted 60 µs after the nominal release; the 40 µs of actual work fits
	// the 40 µs deadline on its own.
	events := chainDAG(2, 0, us(60))
	// Replace the queueing profile: dispatch immediately, execute 40 µs.
	for i := range events {
		switch events[i].Kind {
		case telemetry.EvTaskDispatch:
			events[i].At, events[i].Dur = us(60), 0
		case telemetry.EvTaskComplete:
			events[i].At, events[i].Dur = us(100), us(40)
		case telemetry.EvDAGComplete, telemetry.EvDeadlineMiss:
			events[i].At, events[i].Dur = us(100), us(100)
		}
	}
	_, m := analyzeOne(t, events)
	if m.Cause != CauseFronthaulLate {
		t.Fatalf("cause %v, want fronthaul_late (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeAccelFaultInjected(t *testing.T) {
	events := chainDAG(3, 0, 0)
	inj := ev(telemetry.EvFaultInject, us(5))
	inj.A, inj.B = classLaneFailure, 3
	events = append(events, inj)
	_, m := analyzeOne(t, events)
	if m.Cause != CauseAccelFault {
		t.Fatalf("cause %v, want accel_fault (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeDeviceResetInjected(t *testing.T) {
	events := chainDAG(3, 0, 0)
	inj := ev(telemetry.EvFaultInject, us(5))
	inj.A, inj.B = classDeviceReset, 3
	events = append(events, inj)
	_, m := analyzeOne(t, events)
	if m.Cause != CauseAccelFault {
		t.Fatalf("cause %v, want accel_fault (%s)", m.Cause, m.Detail)
	}
	// A device-level record with no DAG attached (B=-1) must not poison the
	// sentinel -1 key: the same trace minus the per-task record attributes
	// elsewhere.
	events = chainDAG(3, 0, 0)
	dev := ev(telemetry.EvFaultInject, us(5))
	dev.A, dev.B = classDeviceReset, -1
	events = append(events, dev)
	_, m = analyzeOne(t, events)
	if m.Cause == CauseAccelFault {
		t.Fatalf("device-scoped inject (B=-1) must not attribute a DAG miss")
	}
}

func TestAttributeAccelFaultStall(t *testing.T) {
	// Two dispatch attempts with a dead gap between them: ready at 0, first
	// attempt at 10, retry at 40, completion at 60 — 30 µs of stall.
	var events []telemetry.Event
	rel := ev(telemetry.EvDAGRelease, 0)
	rel.A = 4
	events = append(events, rel)
	enq := ev(telemetry.EvTaskEnqueue, 0)
	enq.Task, enq.A, enq.B = 0, 4, 0
	events = append(events, enq)
	for _, at := range []sim.Time{us(10), us(40)} {
		dis := ev(telemetry.EvTaskDispatch, at)
		dis.Core, dis.Task, dis.Dur, dis.A, dis.B = 0, 0, us(10), 4, 0
		events = append(events, dis)
	}
	com := ev(telemetry.EvTaskComplete, us(60))
	com.Core, com.Task, com.Dur, com.A, com.B = 0, 0, us(10), 4, 0
	events = append(events, com)
	done := ev(telemetry.EvDAGComplete, us(60))
	done.Dur, done.A = us(60), 4
	events = append(events, done)
	miss := ev(telemetry.EvDeadlineMiss, us(60))
	miss.Dur, miss.A = us(60), 4
	events = append(events, miss)

	_, m := analyzeOne(t, events)
	if m.Cause != CauseAccelFault {
		t.Fatalf("cause %v, want accel_fault (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeYieldStorm(t *testing.T) {
	events := chainDAG(5, 0, 0)
	rec := ev(telemetry.EvFaultRecover, us(20))
	rec.A, rec.B = classYieldStorm, 3
	events = append(events, rec)
	_, m := analyzeOne(t, events)
	if m.Cause != CauseYieldStorm {
		t.Fatalf("cause %v, want yield_storm (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeWCETUnderprediction(t *testing.T) {
	events := chainDAG(6, 0, 0)
	ps := ev(telemetry.EvPredictSample, us(50))
	ps.Core, ps.Cell, ps.Slot, ps.Task = 0, 2, 5, 0 // Core = DAG-local task ID
	ps.Dur, ps.A, ps.B = us(20), int64(us(10)), 6   // observed 20 µs > predicted 10 µs
	events = append(events, ps)
	_, m := analyzeOne(t, events)
	if m.Cause != CauseWCETUnderprediction {
		t.Fatalf("cause %v, want wcet_underprediction (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeInsufficientCores(t *testing.T) {
	// The pool owns both physical cores for the whole flight and queueing
	// still dominates: no scheduling policy could have helped.
	events := chainDAG(7, 0, 0)
	acq := ev(telemetry.EvCoreAcquire, 0)
	acq.Core, acq.A = 1, 2
	events = append(events, acq)
	_, m := analyzeOne(t, events)
	if m.Cause != CauseInsufficientCores {
		t.Fatalf("cause %v, want insufficient_cores (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeUnattributedOnTruncation(t *testing.T) {
	// Ring wraparound ate everything but the miss record itself.
	miss := ev(telemetry.EvDeadlineMiss, us(500))
	miss.Dur, miss.A = us(90), 8
	_, m := analyzeOne(t, []telemetry.Event{miss})
	if m.Cause != CauseUnattributed {
		t.Fatalf("cause %v, want unattributed (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeDroppedDAG(t *testing.T) {
	events := chainDAG(9, 0, 0)
	for i := range events {
		if events[i].Kind == telemetry.EvDAGComplete {
			events[i].Kind = telemetry.EvDAGDrop
		}
	}
	a, m := analyzeOne(t, events)
	if !m.Dropped {
		t.Error("miss not marked dropped")
	}
	if a.DAGsDropped != 1 || a.DAGsCompleted != 0 {
		t.Errorf("dropped=%d completed=%d", a.DAGsDropped, a.DAGsCompleted)
	}
}

// migrateEv builds an EvCellMigrate for `cell` at time `at` (fleet traces
// stamp the epoch in Slot and the server pair in A/B).
func migrateEv(cell int32, at sim.Time) telemetry.Event {
	mig := ev(telemetry.EvCellMigrate, at)
	mig.Cell, mig.Slot, mig.A, mig.B, mig.Dur = cell, 1, 0, 1, us(12)
	return mig
}

func TestAttributeMigrationWithinWindow(t *testing.T) {
	// chainDAG's miss is on cell 2 at admit+50 µs; a migration of the same
	// cell just before must win over the queueing residual.
	events := append([]telemetry.Event{migrateEv(2, us(10))}, chainDAG(11, 0, 0)...)
	_, m := analyzeOne(t, events)
	if m.Cause != CauseMigration {
		t.Fatalf("cause %v, want migration (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeMigrationOtherCellInert(t *testing.T) {
	// A migration of a different cell leaves the attribution untouched.
	events := append([]telemetry.Event{migrateEv(3, us(10))}, chainDAG(12, 0, 0)...)
	_, m := analyzeOne(t, events)
	if m.Cause != CauseQueueing {
		t.Fatalf("cause %v, want queueing (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeMigrationOutsideWindowInert(t *testing.T) {
	// Same cell, but the migration is further back than MigrationWindow.
	events := append([]telemetry.Event{migrateEv(2, us(10))},
		chainDAG(13, 20*sim.Millisecond, 20*sim.Millisecond)...)
	a := Analyze(events, Options{
		PoolCores: 2, Deadline: us(40), MigrationWindow: 5 * sim.Millisecond,
	})
	if !a.PartitionHolds() || len(a.Misses) != 1 {
		t.Fatalf("partition %v misses %d", a.CauseCounts, len(a.Misses))
	}
	if m := a.Misses[0]; m.Cause != CauseQueueing {
		t.Fatalf("cause %v, want queueing (%s)", m.Cause, m.Detail)
	}
}

func TestAttributeMigrationBeatsTimelineLoss(t *testing.T) {
	// Merged fleet traces carry no task-level events, so the timeline is
	// missing — the migration rule must still fire, ahead of unattributed.
	miss := ev(telemetry.EvDeadlineMiss, us(500))
	miss.Cell, miss.Dur, miss.A = 7, us(90), 14
	_, m := analyzeOne(t, []telemetry.Event{migrateEv(7, us(450)), miss})
	if m.Cause != CauseMigration {
		t.Fatalf("cause %v, want migration (%s)", m.Cause, m.Detail)
	}
}

func TestAttributionPriorityOrder(t *testing.T) {
	// A DAG hit by an injected accelerator fault AND a yield storm AND an
	// underprediction must land in the highest-priority bucket (accel_fault),
	// and only there — the partition cannot double-count.
	events := chainDAG(10, 0, 0)
	inj := ev(telemetry.EvFaultInject, us(5))
	inj.A, inj.B = classStuckOffload, 10
	rec := ev(telemetry.EvFaultRecover, us(20))
	rec.A = classYieldStorm
	ps := ev(telemetry.EvPredictSample, us(50))
	ps.Core, ps.Cell, ps.Slot, ps.Task = 0, 2, 5, 0
	ps.Dur, ps.A, ps.B = us(20), int64(us(10)), 10
	events = append(events, inj, rec, ps)
	a, m := analyzeOne(t, events)
	if m.Cause != CauseAccelFault {
		t.Fatalf("cause %v, want accel_fault (%s)", m.Cause, m.Detail)
	}
	if a.CauseCounts[CauseAccelFault] != 1 || a.sumCauses() != 1 {
		t.Fatalf("cause counts %v", a.CauseCounts)
	}
}

func TestInferPoolCoresAndDeadline(t *testing.T) {
	dis := ev(telemetry.EvTaskDispatch, 0)
	dis.Core = 3
	rot := ev(telemetry.EvCoreRotate, us(1))
	rot.Core, rot.A = 2, 5
	// EvPredictSample reuses Core for the task ID; it must not inflate the
	// inferred core count.
	ps := ev(telemetry.EvPredictSample, us(2))
	ps.Core = 9
	m1 := ev(telemetry.EvDeadlineMiss, us(10))
	m1.Dur, m1.A = us(120), 1
	m2 := ev(telemetry.EvDeadlineMiss, us(20))
	m2.Dur, m2.A = us(80), 2
	events := []telemetry.Event{dis, rot, ps, m1, m2}
	if got := inferPoolCores(events); got != 6 {
		t.Errorf("inferPoolCores = %d, want 6", got)
	}
	if got := inferDeadline(events); got != us(80) {
		t.Errorf("inferDeadline = %v, want 80us", got)
	}
}

func TestCalibrateSamples(t *testing.T) {
	var samples []PredictSample
	// Kind 2: 1000 perfectly covered samples, predicted 2 µs vs observed 1 µs.
	for i := 0; i < 1000; i++ {
		samples = append(samples, PredictSample{Kind: 2, Predicted: us(2), Observed: us(1)})
	}
	// Kind 1: first window of 100 entirely uncovered, then 900 covered —
	// coverage 0.9, worst-window drift 0.9.
	for i := 0; i < 1000; i++ {
		s := PredictSample{Kind: 1, Predicted: us(10), Observed: us(5)}
		if i < 100 {
			s.Observed = us(20)
		}
		samples = append(samples, s)
	}
	rows := CalibrateSamples(samples, 0.99999, 100)
	if len(rows) != 2 || rows[0].Kind != 1 || rows[1].Kind != 2 {
		t.Fatalf("rows %+v", rows)
	}
	bad, good := rows[0], rows[1]
	if good.Coverage != 1 || good.Miscalibrated || good.Drift != 0 || good.Windows != 10 {
		t.Errorf("good row: %+v", good)
	}
	if good.MeanHeadroomUs != 1 || good.MeanHeadroomFrac != 0.5 {
		t.Errorf("good sharpness: %+v", good)
	}
	if bad.Coverage != 0.9 || !bad.Miscalibrated {
		t.Errorf("bad row: %+v", bad)
	}
	if bad.Drift < 0.89 || bad.Drift > 0.91 {
		t.Errorf("bad drift %v, want ~0.9", bad.Drift)
	}
	// Tolerance is floored at 3/n so tiny traces cannot flag.
	small := CalibrateSamples(samples[:10], 0.99999, 100)
	if len(small) != 1 || small[0].Tolerance != 0.3 || small[0].Miscalibrated {
		t.Errorf("small-trace row: %+v", small)
	}
}

func TestReportAndCSVOutputs(t *testing.T) {
	a, _ := analyzeOne(t, chainDAG(1, 0, 0))

	var causes bytes.Buffer
	if err := a.WriteCausesCSV(&causes); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(causes.String(), "\n"), "\n")
	if len(lines) != int(NumCauses)+2 {
		t.Fatalf("causes.csv has %d lines, want %d:\n%s", len(lines), int(NumCauses)+2, causes.String())
	}
	if lines[len(lines)-1] != "total,1,1" {
		t.Errorf("total row %q", lines[len(lines)-1])
	}

	var misses bytes.Buffer
	if err := a.WriteMissesCSV(&misses); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(misses.String(), ",queueing") {
		t.Errorf("misses.csv missing cause column:\n%s", misses.String())
	}

	var report bytes.Buffer
	if err := a.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Autopsy", "Partition invariant holds", "| queueing | 1 |"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}
}
