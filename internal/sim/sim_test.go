package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunAll()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		if e.Now() != 10 {
			t.Errorf("now=%v inside event at 10", e.Now())
		}
		e.After(5, func() {
			if e.Now() != 15 {
				t.Errorf("now=%v inside chained event", e.Now())
			}
		})
	})
	e.RunAll()
	if e.Now() != 15 {
		t.Fatalf("final clock %v want 15", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.RunAll()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() false after Cancel")
	}
}

func TestCancelIdempotent(t *testing.T) {
	e := NewEngine()
	ev := e.At(10, func() {})
	ev.Cancel()
	ev.Cancel() // must not panic
	e.RunAll()
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Run(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock %v want horizon 25", e.Now())
	}
	e.Run(100)
	if len(fired) != 4 {
		t.Fatalf("second run fired %v", fired)
	}
}

func TestRunAdvancesToHorizonWhenEmpty(t *testing.T) {
	e := NewEngine()
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock %v want 1000", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(10, func() { count++; e.Stop() })
	e.At(20, func() { count++ })
	e.RunAll()
	if count != 1 {
		t.Fatalf("Stop did not halt run: count=%d", count)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	NewTicker(e, 0, 20*Microsecond, func(now Time) { ticks = append(ticks, now) })
	e.Run(100 * Microsecond)
	want := []Time{0, 20000, 40000, 60000, 80000, 100000}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 0, 10, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run(1000)
	if count != 3 {
		t.Fatalf("ticker fired %d times after stop at 3", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-period ticker did not panic")
		}
	}()
	NewTicker(NewEngine(), 0, 0, func(Time) {})
}

func TestPendingAndFiredCounters(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending %d want 2", e.Pending())
	}
	e.RunAll()
	if e.Fired() != 2 {
		t.Fatalf("fired %d want 2", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d want 0 after run", e.Pending())
	}
}

// Property: for any multiset of timestamps, events fire in sorted order.
func TestPropertyOrdering(t *testing.T) {
	err := quick.Check(func(raw []uint32) bool {
		e := NewEngine()
		var got []Time
		want := make([]Time, 0, len(raw))
		for _, r := range raw {
			at := Time(r % 1_000_000)
			want = append(want, at)
			at2 := at
			e.At(at2, func() { got = append(got, at2) })
		}
		e.RunAll()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500:             "500ns",
		1500:            "1.500us",
		2 * Millisecond: "2.000ms",
		3 * Second:      "3.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q want %q", int64(in), got, want)
		}
	}
}

func TestFromUsFromMs(t *testing.T) {
	if FromUs(20) != 20*Microsecond {
		t.Fatal("FromUs(20)")
	}
	if FromMs(1.5) != 1500*Microsecond {
		t.Fatal("FromMs(1.5)")
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%100), func() {})
		if e.Pending() > 1024 {
			e.RunAll()
		}
	}
	e.RunAll()
}
