package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	e.RunAll()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		if e.Now() != 10 {
			t.Errorf("now=%v inside event at 10", e.Now())
		}
		e.After(5, func() {
			if e.Now() != 15 {
				t.Errorf("now=%v inside chained event", e.Now())
			}
		})
	})
	e.RunAll()
	if e.Now() != 15 {
		t.Fatalf("final clock %v want 15", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.RunAll()
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	if !e.Scheduled(ev) {
		t.Fatal("Scheduled() false for pending event")
	}
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if !e.Canceled(ev) {
		t.Fatal("Canceled() false after Cancel")
	}
	if e.Scheduled(ev) {
		t.Fatal("Scheduled() true after Cancel")
	}
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCancelIdempotent(t *testing.T) {
	e := NewEngine()
	ev := e.At(10, func() {})
	if !e.Cancel(ev) {
		t.Fatal("first Cancel returned false")
	}
	if e.Cancel(ev) {
		t.Fatal("second Cancel returned true")
	}
	e.RunAll()
}

func TestCancelZeroHandleNoop(t *testing.T) {
	e := NewEngine()
	var h EventHandle
	if h.Valid() {
		t.Fatal("zero handle reports Valid")
	}
	if e.Cancel(h) || e.Canceled(h) || e.Scheduled(h) {
		t.Fatal("zero handle not inert")
	}
}

// A handle must not be able to cancel a later event that recycled its slot.
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	e := NewEngine()
	h1 := e.At(10, func() {})
	e.RunAll() // fires, frees the slot
	fired := false
	h2 := e.At(20, func() { fired = true }) // recycles the slot
	if e.Cancel(h1) {
		t.Fatal("stale handle canceled a recycled slot")
	}
	if !e.Scheduled(h2) {
		t.Fatal("new event lost")
	}
	e.RunAll()
	if !fired {
		t.Fatal("recycled-slot event did not fire")
	}
}

// Satellite: a cancel-heavy workload must not accumulate canceled entries —
// the engine compacts once they exceed half the queue, so the queue stays
// bounded by a small multiple of the live event count.
func TestCancelHeavyQueueBounded(t *testing.T) {
	e := NewEngine()
	const live = 100
	handles := make([]EventHandle, 0, live)
	maxPending := 0
	for round := 0; round < 1000; round++ {
		for i := 0; i < live; i++ {
			handles = append(handles, e.At(Time(1_000_000+round), func() {}))
		}
		for _, h := range handles {
			e.Cancel(h)
		}
		handles = handles[:0]
		if p := e.Pending(); p > maxPending {
			maxPending = p
		}
	}
	// 100k events scheduled and canceled, never fired. Without compaction
	// Pending would reach 100k; with it the queue stays O(live).
	if maxPending > 4*live {
		t.Fatalf("canceled events accumulated: max pending %d for %d live", maxPending, live)
	}
	if e.Pending() > 2*live {
		t.Fatalf("final pending %d not compacted", e.Pending())
	}
}

// Compaction must preserve ordering and FIFO among survivors.
func TestCompactionPreservesOrder(t *testing.T) {
	e := NewEngine()
	var keep []EventHandle
	var cancel []EventHandle
	var got []int
	for i := 0; i < 500; i++ {
		i := i
		h := e.At(Time(100+i/2), func() { got = append(got, i) })
		if i%2 == 0 {
			cancel = append(cancel, h)
		} else {
			keep = append(keep, h)
		}
	}
	for _, h := range cancel {
		e.Cancel(h) // triggers compaction partway through
	}
	e.RunAll()
	if len(got) != len(keep) {
		t.Fatalf("fired %d events, want %d", len(got), len(keep))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("survivors out of order after compaction: %v", got)
		}
	}
}

func TestTypedEvents(t *testing.T) {
	e := NewEngine()
	var got [][2]int64
	k := e.RegisterKind(func(a, b int64) { got = append(got, [2]int64{a, b}) })
	e.AtKind(10, k, 1, 2)
	e.AfterKind(5, k, 3, 4)
	e.RunAll()
	want := [][2]int64{{3, 4}, {1, 2}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("typed events got %v want %v", got, want)
	}
}

func TestTypedAndClosureEventsInterleaveFIFO(t *testing.T) {
	e := NewEngine()
	var got []int64
	k := e.RegisterKind(func(a, b int64) { got = append(got, a) })
	e.AtKind(10, k, 0, 0)
	e.At(10, func() { got = append(got, 1) })
	e.AtKind(10, k, 2, 0)
	e.RunAll()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("interleave order %v", got)
	}
}

func TestAtKindUnregisteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AtKind with unregistered kind did not panic")
		}
	}()
	NewEngine().AtKind(10, 7, 0, 0)
}

func TestRunHorizon(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.Run(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock %v want horizon 25", e.Now())
	}
	e.Run(100)
	if len(fired) != 4 {
		t.Fatalf("second run fired %v", fired)
	}
}

func TestRunAdvancesToHorizonWhenEmpty(t *testing.T) {
	e := NewEngine()
	e.Run(1000)
	if e.Now() != 1000 {
		t.Fatalf("clock %v want 1000", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(10, func() { count++; e.Stop() })
	e.At(20, func() { count++ })
	e.RunAll()
	if count != 1 {
		t.Fatalf("Stop did not halt run: count=%d", count)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	NewTicker(e, 0, 20*Microsecond, func(now Time) { ticks = append(ticks, now) })
	e.Run(100 * Microsecond)
	want := []Time{0, 20000, 40000, 60000, 80000, 100000}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 0, 10, func(Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run(1000)
	if count != 3 {
		t.Fatalf("ticker fired %d times after stop at 3", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-period ticker did not panic")
		}
	}()
	NewTicker(NewEngine(), 0, 0, func(Time) {})
}

func TestPendingAndFiredCounters(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending %d want 2", e.Pending())
	}
	e.RunAll()
	if e.Fired() != 2 {
		t.Fatalf("fired %d want 2", e.Fired())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending %d want 0 after run", e.Pending())
	}
}

// Property: for any multiset of timestamps, events fire in sorted order.
func TestPropertyOrdering(t *testing.T) {
	err := quick.Check(func(raw []uint32) bool {
		e := NewEngine()
		var got []Time
		want := make([]Time, 0, len(raw))
		for _, r := range raw {
			at := Time(r % 1_000_000)
			want = append(want, at)
			at2 := at
			e.At(at2, func() { got = append(got, at2) })
		}
		e.RunAll()
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of schedule/cancel fire exactly the
// surviving events, in (at, seq) order, under the 4-ary heap + compaction.
func TestPropertyCancelInterleaving(t *testing.T) {
	err := quick.Check(func(raw []uint32) bool {
		e := NewEngine()
		type rec struct {
			at  Time
			ord int
		}
		var got []rec
		var want []rec
		var handles []EventHandle
		var wantIdx []int
		for i, r := range raw {
			at := Time(r % 1000)
			i := i
			handles = append(handles, e.At(at, func() {
				got = append(got, rec{e.Now(), i})
			}))
			wantIdx = append(wantIdx, i)
			want = append(want, rec{at, i})
			// Cancel an arbitrary earlier survivor based on the input bits.
			if r%3 == 0 && len(wantIdx) > 0 {
				victim := int(r/3) % len(wantIdx)
				e.Cancel(handles[wantIdx[victim]])
				want = append(want[:victim], want[victim+1:]...)
				wantIdx = append(wantIdx[:victim], wantIdx[victim+1:]...)
			}
		}
		e.RunAll()
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

// Tentpole gate: typed scheduling and dispatch allocate nothing once the
// queue and handle table have warmed up.
func TestTypedScheduleFireZeroAlloc(t *testing.T) {
	e := NewEngine()
	k := e.RegisterKind(func(a, b int64) {})
	// Warm capacity.
	for i := 0; i < 64; i++ {
		e.AfterKind(Time(i), k, 0, 0)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		e.AfterKind(10, k, 1, 2)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("typed schedule+fire allocates %v/run, want 0", allocs)
	}
}

func TestScheduleCancelZeroAlloc(t *testing.T) {
	e := NewEngine()
	k := e.RegisterKind(func(a, b int64) {})
	for i := 0; i < 64; i++ {
		e.Cancel(e.AfterKind(Time(i), k, 0, 0))
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(1000, func() {
		h := e.AfterKind(10, k, 0, 0)
		e.Cancel(h)
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocates %v/run, want 0", allocs)
	}
}

// A ticker's steady-state re-arm goes through the typed path: no allocs.
func TestTickerSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine()
	NewTicker(e, 0, 10, func(Time) {})
	e.Run(1000) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		e.Run(e.Now() + 1000)
	})
	if allocs != 0 {
		t.Fatalf("ticker steady state allocates %v/run, want 0", allocs)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		500:             "500ns",
		1500:            "1.500us",
		2 * Millisecond: "2.000ms",
		3 * Second:      "3.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q want %q", int64(in), got, want)
		}
	}
}

func TestFromUsFromMs(t *testing.T) {
	if FromUs(20) != 20*Microsecond {
		t.Fatal("FromUs(20)")
	}
	if FromMs(1.5) != 1500*Microsecond {
		t.Fatal("FromMs(1.5)")
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(Time(i%100), func() {})
		if e.Pending() > 1024 {
			e.RunAll()
		}
	}
	e.RunAll()
}

func BenchmarkTypedScheduleAndFire(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine()
	k := e.RegisterKind(func(a, b int64) {})
	for i := 0; i < b.N; i++ {
		e.AfterKind(Time(i%100), k, 0, 0)
		if e.Pending() > 1024 {
			e.RunAll()
		}
	}
	e.RunAll()
}
