//go:build !poolcheck

package sim

// PoolcheckEnabled reports whether the poolcheck sanitizer (DESIGN.md §5g)
// is compiled in. Normal builds carry an empty enginePC and inlined no-op
// hooks, so the handle-slot freelist pays nothing.
const PoolcheckEnabled = false

// enginePC is the per-engine poolcheck state; empty in normal builds.
type enginePC struct{}

func (*enginePC) take(s uint32, gen uint32) {}
func (*enginePC) free(s uint32, gen uint32) {}
