// Package sim implements the discrete-event simulation kernel that the rest
// of the repository runs on.
//
// The paper's Concordia scheduler re-evaluates its core allocation every
// 20 µs of wall-clock time on an isolated CPU core. A managed runtime cannot
// honour that fidelity (garbage collection and goroutine scheduling introduce
// jitter well above 20 µs), so the reproduction replaces the physical clock
// with a virtual one: every actor — worker threads, the Concordia scheduler
// tick, traffic arrivals, OS wakeup latencies — is an event on a single
// deterministic timeline with nanosecond resolution. Events at the same
// instant fire in scheduling order (FIFO), which keeps runs reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point on the virtual timeline, in nanoseconds since the start of
// the simulation.
type Time int64

// Common durations, expressed in Time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Us returns t as a floating-point number of microseconds.
func (t Time) Us() float64 { return float64(t) / float64(Microsecond) }

// Ms returns t as a floating-point number of milliseconds.
func (t Time) Ms() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Us())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Ms())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// FromUs converts a duration in microseconds to Time.
func FromUs(us float64) Time { return Time(us * float64(Microsecond)) }

// FromMs converts a duration in milliseconds to Time.
func FromMs(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Event is a scheduled callback. The zero Event is invalid.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when not queued
}

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or was already canceled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// At returns the scheduled firing time.
func (e *Event) At() Time { return e.at }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending-event queue.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
	probe   func(at Time, pending int)
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including canceled ones
// that have not been drained yet).
func (e *Engine) Pending() int { return len(e.queue) }

// SetProbe installs an observer invoked before each dispatched event with
// the event's timestamp and the pending-queue depth (the dispatched event
// excluded). Telemetry attaches here to track event throughput and the
// queue-depth high-water mark; the probe must not schedule or cancel events.
// A nil probe (the default) costs one predictable branch per event.
func (e *Engine) SetProbe(probe func(at Time, pending int)) { e.probe = probe }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop halts Run before the next event is dispatched.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		if e.probe != nil {
			e.probe(ev.at, len(e.queue))
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the next event lies strictly beyond until. The clock finishes at
// min(until, last event time); it advances to until if the queue drains
// early, so back-to-back Run calls observe a monotonic clock.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped {
		// Peek for the horizon check before popping.
		var next *Event
		for len(e.queue) > 0 {
			if e.queue[0].canceled {
				heap.Pop(&e.queue)
				continue
			}
			next = e.queue[0]
			break
		}
		if next == nil || next.at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes every pending event regardless of horizon.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Ticker repeatedly invokes fn every period, starting at start, until either
// the returned stop function is called or the engine stops scheduling.
type Ticker struct {
	ev     *Event
	period Time
	fn     func(Time)
	eng    *Engine
	stop   bool
}

// NewTicker registers a periodic callback. fn receives the tick time. The
// Concordia scheduler's 20 µs re-evaluation loop is one of these.
func NewTicker(e *Engine, start, period Time, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{period: period, fn: fn, eng: e}
	t.ev = e.At(start, t.tick)
	return t
}

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	now := t.eng.Now()
	t.fn(now)
	if !t.stop {
		t.ev = t.eng.At(now+t.period, t.tick)
	}
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	t.ev.Cancel()
}
