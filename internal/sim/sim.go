// Package sim implements the discrete-event simulation kernel that the rest
// of the repository runs on.
//
// The paper's Concordia scheduler re-evaluates its core allocation every
// 20 µs of wall-clock time on an isolated CPU core. A managed runtime cannot
// honour that fidelity (garbage collection and goroutine scheduling introduce
// jitter well above 20 µs), so the reproduction replaces the physical clock
// with a virtual one: every actor — worker threads, the Concordia scheduler
// tick, traffic arrivals, OS wakeup latencies — is an event on a single
// deterministic timeline with nanosecond resolution. Events at the same
// instant fire in scheduling order (FIFO), which keeps runs reproducible.
//
// Memory discipline (DESIGN.md §5f): the pending-event queue is a flat
// slice-backed 4-ary heap of inline event structs ordered by (at, seq) — no
// per-event heap node, no boxing through container/heap's `any` interface.
// Hot callers schedule *typed* events (a registered EventKind plus two
// integer arguments) so the steady-state fast path allocates nothing; the
// closure form remains for cold paths and costs only the caller's closure.
// Cancellation is handle-based: an EventHandle carries a generation tag, so
// canceling never retains the event and a recycled handle slot cannot be
// canceled by a stale holder.
package sim

import (
	"fmt"
)

// Time is a point on the virtual timeline, in nanoseconds since the start of
// the simulation.
type Time int64

// Common durations, expressed in Time units.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Us returns t as a floating-point number of microseconds.
func (t Time) Us() float64 { return float64(t) / float64(Microsecond) }

// Ms returns t as a floating-point number of milliseconds.
func (t Time) Ms() float64 { return float64(t) / float64(Millisecond) }

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", t.Us())
	case t < Second:
		return fmt.Sprintf("%.3fms", t.Ms())
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// FromUs converts a duration in microseconds to Time.
func FromUs(us float64) Time { return Time(us * float64(Microsecond)) }

// FromMs converts a duration in milliseconds to Time.
func FromMs(ms float64) Time { return Time(ms * float64(Millisecond)) }

// EventKind identifies a typed event handler registered with RegisterKind.
// The zero kind is reserved for closure events.
type EventKind int32

// EventHandle refers to a scheduled event. The zero handle is invalid. A
// handle stays valid until its event fires or is canceled; after that,
// Cancel and Canceled degrade to no-ops (the generation tag detects reuse of
// the underlying slot, so a stale handle can never cancel a later event).
type EventHandle struct {
	idx uint32 // handle-slot index + 1 (0 = zero handle, invalid)
	gen uint32
}

// Valid reports whether h was ever issued by an engine (it says nothing
// about whether the event already fired).
func (h EventHandle) Valid() bool { return h.idx != 0 }

// event is one inline entry of the flat queue. No pointers besides the
// optional closure: typed events are self-contained and allocation-free.
type event struct {
	at   Time
	seq  uint64
	slot uint32 // handle-slot index + 1
	kind EventKind
	a, b int64
	fn   func() // kind == 0 only
}

// less orders events by (at, seq): timestamp first, FIFO within an instant.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// hslot tracks one handle generation. canceled marks a pending event for
// lazy deletion; the slot is freed (generation bumped) when the event is
// dropped at pop time, fires, or is removed by compaction.
type hslot struct {
	gen      uint32
	canceled bool
}

// Engine owns the virtual clock and the pending-event queue.
type Engine struct {
	now     Time
	seq     uint64
	queue   []event // 4-ary min-heap ordered by event.less
	stopped bool
	fired   uint64
	probe   func(at Time, pending int)

	slots     []hslot
	freeSlots []uint32
	canceled  int // canceled events still sitting in the queue

	// pc is the poolcheck sanitizer state (DESIGN.md §5g): empty struct and
	// no-op hooks unless built with -tags poolcheck.
	pc enginePC

	kinds []func(a, b int64)

	tickers    []*Ticker
	tickerKind EventKind
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including canceled ones
// that have not been dropped or compacted away yet).
func (e *Engine) Pending() int { return len(e.queue) }

// SetProbe installs an observer invoked before each dispatched event with
// the event's timestamp and the pending-queue depth (the dispatched event
// excluded). Telemetry attaches here to track event throughput and the
// queue-depth high-water mark; the probe must not schedule or cancel events.
// A nil probe (the default) costs one predictable branch per event.
func (e *Engine) SetProbe(probe func(at Time, pending int)) { e.probe = probe }

// RegisterKind registers a typed event handler and returns its kind. Typed
// events carry two int64 arguments instead of a closure, so scheduling them
// allocates nothing. Handlers are engine-scoped and permanent; register at
// setup time, not per event.
func (e *Engine) RegisterKind(fn func(a, b int64)) EventKind {
	if fn == nil {
		panic("sim: RegisterKind with nil handler")
	}
	e.kinds = append(e.kinds, fn)
	return EventKind(len(e.kinds))
}

// takeSlot pops a free handle slot (or grows the table) and returns its
// 1-based index.
func (e *Engine) takeSlot() uint32 {
	if n := len(e.freeSlots); n > 0 {
		s := e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
		e.pc.take(s, e.slots[s-1].gen)
		return s
	}
	e.slots = append(e.slots, hslot{})
	s := uint32(len(e.slots))
	e.pc.take(s, 0)
	return s
}

// freeSlot retires a handle slot: the generation bump invalidates every
// outstanding handle before the slot re-enters the freelist.
func (e *Engine) freeSlot(s uint32) {
	sl := &e.slots[s-1]
	e.pc.free(s, sl.gen)
	sl.gen++
	sl.canceled = false
	e.freeSlots = append(e.freeSlots, s)
}

// schedule inserts an event and returns its handle.
func (e *Engine) schedule(t Time, kind EventKind, a, b int64, fn func()) EventHandle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	s := e.takeSlot()
	ev := event{at: t, seq: e.seq, slot: s, kind: kind, a: a, b: b, fn: fn}
	e.seq++
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
	return EventHandle{idx: s, gen: e.slots[s-1].gen}
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently reorder causality. The closure form is for cold paths;
// hot paths should register an EventKind and use AtKind.
func (e *Engine) At(t Time, fn func()) EventHandle {
	if fn == nil {
		panic("sim: At with nil fn")
	}
	return e.schedule(t, 0, 0, 0, fn)
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) EventHandle {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AtKind schedules a typed event at absolute time t. The fast path: no
// closure, no per-event allocation.
func (e *Engine) AtKind(t Time, k EventKind, a, b int64) EventHandle {
	if k <= 0 || int(k) > len(e.kinds) {
		panic(fmt.Sprintf("sim: AtKind with unregistered kind %d", k))
	}
	return e.schedule(t, k, a, b, nil)
}

// AfterKind schedules a typed event d after the current time.
func (e *Engine) AfterKind(d Time, k EventKind, a, b int64) EventHandle {
	if d < 0 {
		d = 0
	}
	return e.AtKind(e.now+d, k, a, b)
}

// Cancel prevents a pending event from firing. It reports whether the event
// was still pending. Canceling an event that already fired, was already
// canceled, or a zero handle is a no-op. Canceled entries are removed
// lazily; when they exceed half the queue the engine compacts, so a
// cancel-heavy workload keeps the queue bounded by twice its live size.
func (e *Engine) Cancel(h EventHandle) bool {
	if h.idx == 0 {
		return false
	}
	sl := &e.slots[h.idx-1]
	if sl.gen != h.gen || sl.canceled {
		return false
	}
	sl.canceled = true
	e.canceled++
	if e.canceled*2 > len(e.queue) && len(e.queue) >= 64 {
		e.compact()
	}
	return true
}

// Canceled reports whether h refers to a pending event that was canceled
// (false once the entry has been dropped from the queue).
func (e *Engine) Canceled(h EventHandle) bool {
	if h.idx == 0 {
		return false
	}
	sl := &e.slots[h.idx-1]
	return sl.gen == h.gen && sl.canceled
}

// Scheduled reports whether h refers to an event still pending (not fired,
// not canceled).
func (e *Engine) Scheduled(h EventHandle) bool {
	if h.idx == 0 {
		return false
	}
	sl := &e.slots[h.idx-1]
	return sl.gen == h.gen && !sl.canceled
}

// compact removes every canceled entry in one pass and re-heapifies. O(n),
// amortized against the cancels that triggered it.
func (e *Engine) compact() {
	kept := e.queue[:0]
	for i := range e.queue {
		ev := &e.queue[i]
		if e.slots[ev.slot-1].canceled {
			e.freeSlot(ev.slot)
			continue
		}
		kept = append(kept, *ev)
	}
	// Zero the closure tail so dropped events do not retain their funcs.
	for i := len(kept); i < len(e.queue); i++ {
		e.queue[i].fn = nil
	}
	e.queue = kept
	e.canceled = 0
	for i := len(e.queue)/4 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// 4-ary heap primitives. A wider node halves the tree depth versus a binary
// heap: sift-down does more comparisons per level but far fewer cache-missing
// level hops — the mempool/ring discipline applied to the calendar queue.

func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !ev.less(&q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q[c].less(&q[best]) {
				best = c
			}
		}
		if !q[best].less(&ev) {
			break
		}
		q[i] = q[best]
		i = best
	}
	q[i] = ev
}

// pop removes and returns the earliest pending event. The caller must have
// checked len(e.queue) > 0.
func (e *Engine) pop() event {
	q := e.queue
	root := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n].fn = nil // drop the closure reference from the dead tail slot
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return root
}

// Stop halts Run before the next event is dispatched.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if e.slots[ev.slot-1].canceled {
			e.canceled--
			e.freeSlot(ev.slot)
			continue
		}
		e.freeSlot(ev.slot)
		e.now = ev.at
		e.fired++
		if e.probe != nil {
			e.probe(ev.at, len(e.queue))
		}
		if ev.kind == 0 {
			ev.fn()
		} else {
			e.kinds[ev.kind-1](ev.a, ev.b)
		}
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue drains, Stop is
// called, or the next event lies strictly beyond until. The clock finishes at
// min(until, last event time); it advances to until if the queue drains
// early, so back-to-back Run calls observe a monotonic clock.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for !e.stopped {
		// Peek for the horizon check before dispatching, dropping canceled
		// entries that have reached the root.
		for len(e.queue) > 0 && e.slots[e.queue[0].slot-1].canceled {
			ev := e.pop()
			e.canceled--
			e.freeSlot(ev.slot)
		}
		if len(e.queue) == 0 || e.queue[0].at > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes every pending event regardless of horizon.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// Ticker repeatedly invokes fn every period, starting at start, until either
// Stop is called or the engine stops scheduling. Re-arming goes through the
// typed-event path, so a steady ticker allocates nothing after creation.
type Ticker struct {
	eng    *Engine
	id     int64
	period Time
	fn     func(Time)
	ev     EventHandle
	stop   bool
}

// NewTicker registers a periodic callback. fn receives the tick time. The
// Concordia scheduler's 20 µs re-evaluation loop is one of these.
func NewTicker(e *Engine, start, period Time, fn func(Time)) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	if e.tickerKind == 0 {
		e.tickerKind = e.RegisterKind(func(a, b int64) { e.tickers[a].tick() })
	}
	t := &Ticker{eng: e, id: int64(len(e.tickers)), period: period, fn: fn}
	e.tickers = append(e.tickers, t)
	t.ev = e.AtKind(start, e.tickerKind, t.id, 0)
	return t
}

func (t *Ticker) tick() {
	if t.stop {
		return
	}
	now := t.eng.Now()
	t.fn(now)
	if !t.stop {
		t.ev = t.eng.AtKind(now+t.period, t.eng.tickerKind, t.id, 0)
	}
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	t.eng.Cancel(t.ev)
}
