//go:build poolcheck

package sim

import "fmt"

// PoolcheckEnabled reports whether the poolcheck sanitizer (DESIGN.md §5g)
// is compiled in.
const PoolcheckEnabled = true

// enginePC shadows the handle-slot freelist with a liveness bit per slot.
// The generation counters already make stale handles inert; this side table
// turns freelist corruption itself — a slot handed out twice, or freed
// twice — into an immediate panic naming the slot and its generation,
// instead of two events silently sharing a cancel slot.
type enginePC struct {
	live []bool // 0-based by slot-1; true while the slot is checked out
}

func (pc *enginePC) grow(s uint32) {
	for uint32(len(pc.live)) < s {
		pc.live = append(pc.live, false)
	}
}

// take marks slot s checked out; it must not already be live.
func (pc *enginePC) take(s uint32, gen uint32) {
	pc.grow(s)
	if pc.live[s-1] {
		panic(fmt.Sprintf(
			"sim: poolcheck: handle slot %d (gen %d) handed out while still live; "+
				"the slot freelist is corrupt — a freeSlot call was lost or a slot index duplicated",
			s, gen))
	}
	pc.live[s-1] = true
}

// free marks slot s returned; freeing a slot that is not live is the classic
// double free.
func (pc *enginePC) free(s uint32, gen uint32) {
	pc.grow(s)
	if !pc.live[s-1] {
		panic(fmt.Sprintf(
			"sim: poolcheck: double free of handle slot %d (gen %d); "+
				"the slot was already returned to the freelist",
			s, gen))
	}
	pc.live[s-1] = false
}
