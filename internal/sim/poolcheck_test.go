//go:build poolcheck

package sim

import (
	"strings"
	"testing"
)

// Poolcheck sanitizer tests for the handle-slot freelist (DESIGN.md §5g).
// Only compiled under -tags poolcheck.

func wantPanic(t *testing.T, substrs ...string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatalf("expected a poolcheck panic containing %q; got none", substrs)
	}
	msg, ok := r.(string)
	if !ok {
		t.Fatalf("expected a string panic, got %T: %v", r, r)
	}
	for _, s := range substrs {
		if !strings.Contains(msg, s) {
			t.Errorf("panic %q does not contain %q", msg, s)
		}
	}
}

func TestPoolcheckDoubleFreePanics(t *testing.T) {
	e := NewEngine()
	s := e.takeSlot()
	e.freeSlot(s)
	defer wantPanic(t, "double free of handle slot 1")
	e.freeSlot(s)
}

func TestPoolcheckLiveSlotHandedOutPanics(t *testing.T) {
	e := NewEngine()
	s := e.takeSlot()
	// Corrupt the freelist: the live slot appears free, so the next take
	// hands it out twice.
	e.freeSlots = append(e.freeSlots, s)
	defer wantPanic(t, "handed out while still live")
	e.takeSlot()
}

func TestPoolcheckCleanSlotLifecycle(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 4; i++ {
		s := e.takeSlot()
		e.freeSlot(s)
	}
	if len(e.slots) != 1 {
		t.Errorf("slot freelist not reused: %d slots, want 1", len(e.slots))
	}
}
