//go:build !poolcheck

package pool

// PoolcheckEnabled reports whether the poolcheck sanitizer (DESIGN.md §5g)
// is compiled in. Normal builds carry an empty poolPC and no-op hooks, so
// the freelist hot path pays nothing.
const PoolcheckEnabled = false

// poolPC is the per-pool poolcheck state; empty in normal builds.
type poolPC struct{}

func (*poolPC) acquire(run *dagRun)   {}
func (*poolPC) recycle(run *dagRun)   {}
func (*poolPC) checkLive(run *dagRun) {}
