//go:build poolcheck

package pool

import (
	"fmt"

	"concordia/internal/ran"
	"concordia/internal/sim"
)

// PoolcheckEnabled reports whether the poolcheck sanitizer (DESIGN.md §5g)
// is compiled in.
const PoolcheckEnabled = true

// Poison and canary values. The 0xDD ("dead") patterns make a recycled
// object unmistakable in a debugger and poison every quantity downstream
// code computes with: a poisoned predicted/tailCP is hugely negative (EDF
// ordering goes visibly insane rather than subtly wrong), a poisoned
// heapIndex crashes any heap fix-up, and a poisoned node pointer (nil)
// crashes the first dereference. The canary is a distinctive non-poison
// value planted past the slab's live length to detect out-of-bounds writes
// between checkout and recycle.
const (
	pcPoisonTime = sim.Time(-0xDDDDDDDD)
	pcPoisonIdx  = -0xDD
	pcCanary     = sim.Time(0x5AFE5AFE5AFE5AFE)
)

// poolPC shadows the dagRun freelist with a freed bit and the owning release
// seq per run-table slot. checkLive turns a use-after-recycle into a panic
// naming the run and the release that freed it; without the tag the same bug
// corrupts whichever run has reused the slab.
type poolPC struct {
	freed    []bool
	freedSeq []int64
}

func (pc *poolPC) grow(id int32) {
	for int32(len(pc.freed)) <= id {
		pc.freed = append(pc.freed, false)
		pc.freedSeq = append(pc.freedSeq, -1)
	}
}

// acquire marks the run live and plants a canary in the first spare slab
// entry beyond the live length, when the recycled capacity has one.
func (pc *poolPC) acquire(run *dagRun) {
	pc.grow(run.id)
	pc.freed[run.id] = false
	if n := len(run.tasks); cap(run.tasks) > n {
		spare := &run.tasks[:cap(run.tasks)][n]
		spare.predicted = pcCanary
		spare.heapIndex = pcPoisonIdx
	}
}

// recycle verifies the canary, poisons the slab, and marks the run freed.
// The DAG is poisoned here too, before maybeRecycle hands it to the DAG
// freelist and nils run.dag.
func (pc *poolPC) recycle(run *dagRun) {
	pc.grow(run.id)
	if pc.freed[run.id] {
		panic(fmt.Sprintf(
			"pool: poolcheck: double recycle of dagRun %d (first release seq %d, now seq %d)",
			run.id, pc.freedSeq[run.id], run.seq))
	}
	if n := len(run.tasks); cap(run.tasks) > n {
		if spare := &run.tasks[:cap(run.tasks)][n]; spare.predicted != pcCanary {
			panic(fmt.Sprintf(
				"pool: poolcheck: slab canary clobbered on dagRun %d (seq %d): "+
					"a write ran past the %d live tasks into spare capacity",
				run.id, run.seq, n))
		}
	}
	for i := range run.tasks {
		t := &run.tasks[i]
		t.node = nil // first stale dereference crashes
		// t.dag stays: checkLive reads it through recycled task pointers.
		t.predicted = pcPoisonTime
		t.readyAt = pcPoisonTime
		t.started = pcPoisonTime
		t.tailCP = pcPoisonTime
		t.heapIndex = pcPoisonIdx
	}
	ran.PoolcheckPoison(run.dag, run.seq)
	pc.freed[run.id] = true
	pc.freedSeq[run.id] = run.seq
}

// checkLive panics when run has already been recycled. Call sites are the
// entry points stale references arrive through: queue insertion, dispatch,
// and the typed offload-completion events.
func (pc *poolPC) checkLive(run *dagRun) {
	if run == nil || int32(len(pc.freed)) <= run.id || !pc.freed[run.id] {
		return
	}
	panic(fmt.Sprintf(
		"pool: poolcheck: use-after-recycle of dagRun %d (owning release seq %d)",
		run.id, pc.freedSeq[run.id]))
}
