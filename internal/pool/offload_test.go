package pool

import (
	"testing"

	"concordia/internal/accel"
	"concordia/internal/faults"
	"concordia/internal/scheduler"
	"concordia/internal/sim"
	"concordia/internal/workloads"
)

// fleetConfig builds the chaos testbed over a multi-device accelerator: two
// two-engine cards, two VFs each, bounded queue depth.
func fleetConfig(seed uint64, fc *faults.Config) Config {
	cfg := testConfig(scheduler.NewConcordia(), workloads.None, seed)
	cfg.Accel = accel.NewFleet(2, 2, 2, 16, sim.FromUs(18), sim.FromUs(2))
	cfg.Faults = fc
	return cfg
}

func TestDeviceResetGracefulDegradation(t *testing.T) {
	// Frequent whole-device resets: the reconciliation loop must route
	// traffic to survivors, and submissions caught by a fleet-wide outage
	// must fall back to the CPU path — DAGs keep completing throughout.
	fc := &faults.Config{DeviceResetPerSec: 60, DeviceResetDuration: sim.FromMs(3)}
	r := run(t, fleetConfig(21, fc), 2*sim.Second)
	if r.DAGsCompleted == 0 {
		t.Fatal("pool wedged under device resets")
	}
	if r.Faults.DeviceResets == 0 {
		t.Fatal("no device resets injected at 60/s over 2s")
	}
	if r.Reliability() < 0.5 {
		t.Fatalf("reliability collapsed under device resets: %f", r.Reliability())
	}
}

func TestDeviceResetDeterministic(t *testing.T) {
	fc := &faults.Config{DeviceResetPerSec: 40, DeviceResetDuration: sim.FromMs(3)}
	a := run(t, fleetConfig(22, fc), 2*sim.Second)
	b := run(t, fleetConfig(22, fc), 2*sim.Second)
	if a.String() != b.String() {
		t.Fatalf("device-reset chaos not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestDeviceResetFullOutageFallsBackToCPU(t *testing.T) {
	// Reset windows so frequent and long the whole fleet is regularly down:
	// ErrDeviceDown submissions must be recovered on the CPU and attributed
	// to the device-reset class.
	fc := &faults.Config{DeviceResetPerSec: 500, DeviceResetDuration: sim.FromMs(5)}
	r := run(t, fleetConfig(23, fc), 2*sim.Second)
	if r.DAGsCompleted == 0 {
		t.Fatal("pool wedged with the fleet mostly down")
	}
	if r.Faults.CPUFallbacks == 0 {
		t.Fatal("no CPU fallbacks despite fleet-wide outages")
	}
}

func TestQueueDepthBackpressure(t *testing.T) {
	// One single-engine, single-VF card with depth 1: concurrent decode
	// demand must overflow the VF queue and fall back to software without
	// fault injection enabled.
	cfg := testConfig(scheduler.NewConcordia(), workloads.None, 24)
	cfg.Accel = accel.NewFleet(1, 1, 1, 1, sim.FromUs(18), sim.FromUs(2))
	cfg.Load = 0.8
	r := run(t, cfg, 2*sim.Second)
	if r.DAGsCompleted == 0 {
		t.Fatal("no DAGs completed")
	}
	if r.OffloadQueueFull == 0 {
		t.Fatal("no queue-full rejections on a depth-1 VF under load")
	}
}

func TestOffloadBatchingCoalesces(t *testing.T) {
	cfg := fleetConfig(25, nil)
	cfg.OffloadBatch = 4
	r := run(t, cfg, 2*sim.Second)
	if r.OffloadBatches == 0 || r.BatchedTasks == 0 {
		t.Fatalf("no batches coalesced: %d batches, %d followers",
			r.OffloadBatches, r.BatchedTasks)
	}
	if want := sim.Time(r.BatchedTasks) * cfg.Accel.SubmitCost; r.SubmitSaved != want {
		t.Fatalf("SubmitSaved %v, want %v (%d followers x %v)",
			r.SubmitSaved, want, r.BatchedTasks, cfg.Accel.SubmitCost)
	}
	// Per-task submission of the same scenario must not report batching.
	solo := fleetConfig(25, nil)
	rSolo := run(t, solo, 2*sim.Second)
	if rSolo.OffloadBatches != 0 || rSolo.SubmitSaved != 0 {
		t.Fatalf("unbatched run reported batching: %+v", rSolo)
	}
	if r.Reliability() < rSolo.Reliability()-0.01 {
		t.Fatalf("batching degraded reliability: %f vs %f",
			r.Reliability(), rSolo.Reliability())
	}
}

func TestOffloadBatchingDeterministic(t *testing.T) {
	cfg := fleetConfig(26, nil)
	cfg.OffloadBatch = 8
	a := run(t, cfg, 2*sim.Second)
	cfg2 := fleetConfig(26, nil)
	cfg2.OffloadBatch = 8
	b := run(t, cfg2, 2*sim.Second)
	if a.String() != b.String() {
		t.Fatalf("batched run not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// offloadProbe records the maximum OffloadableReady the policy observed and
// checks the subset invariant on every decision.
type offloadProbe struct {
	scheduler.Scheduler
	t   *testing.T
	max *int
}

func (o offloadProbe) Cores(s scheduler.PoolState) int {
	if s.OffloadableReady > s.ReadyTasks {
		o.t.Errorf("OffloadableReady %d > ReadyTasks %d", s.OffloadableReady, s.ReadyTasks)
	}
	if s.OffloadableReady > *o.max {
		*o.max = s.OffloadableReady
	}
	return o.Scheduler.Cores(s)
}

func TestSchedulerSeesOffloadableReady(t *testing.T) {
	max := 0
	cfg := testConfig(offloadProbe{scheduler.NewConcordia(), t, &max}, workloads.None, 27)
	cfg.Accel = accel.DefaultFPGA()
	// Starve the pool slightly so ready queues are non-empty at decision
	// points.
	cfg.PoolCores = 3
	cfg.Load = 0.8
	run(t, cfg, sim.Second)
	if max == 0 {
		t.Fatal("policy never observed an offloadable ready task")
	}

	maxNoAccel := 0
	cfg = testConfig(offloadProbe{scheduler.NewConcordia(), t, &maxNoAccel}, workloads.None, 27)
	cfg.PoolCores = 3
	cfg.Load = 0.8
	run(t, cfg, sim.Second)
	if maxNoAccel != 0 {
		t.Fatalf("OffloadableReady %d without an accelerator", maxNoAccel)
	}
}
