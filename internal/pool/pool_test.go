package pool

import (
	"math"
	"testing"

	"concordia/internal/accel"
	"concordia/internal/costmodel"
	"concordia/internal/platform"
	"concordia/internal/ran"
	"concordia/internal/scheduler"
	"concordia/internal/sim"
	"concordia/internal/telemetry"
	"concordia/internal/traffic"
	"concordia/internal/workloads"
)

// testConfig builds a small 20 MHz scenario that runs fast.
func testConfig(sched scheduler.Scheduler, wl workloads.Kind, seed uint64) Config {
	model := costmodel.New(seed)
	var schedWl *workloads.Schedule
	if wl != workloads.None {
		schedWl = workloads.NewSchedule(wl, 10*sim.Second, seed)
	}
	return Config{
		Cells:        ran.Cells20MHz(2),
		PoolCores:    6,
		Scheduler:    sched,
		Predict:      OraclePredictors{Model: model, Env: costmodel.Env{PoolCores: 4}, Margin: 1.6},
		CostModel:    model,
		Platform:     platform.New(seed + 1),
		Workload:     schedWl,
		Deadline:     sim.FromMs(2),
		Load:         0.3,
		PeakULBytes:  20000,
		PeakDLBytes:  47000,
		Seed:         seed,
		RotatePeriod: sim.FromMs(2),
	}
}

func run(t *testing.T, cfg Config, d sim.Time) *Report {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p.Run(d)
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(scheduler.NewConcordia(), workloads.None, 1)
	cases := []func(*Config){
		func(c *Config) { c.Cells = nil },
		func(c *Config) { c.PoolCores = 0 },
		func(c *Config) { c.Scheduler = nil },
		func(c *Config) { c.CostModel = nil },
		func(c *Config) { c.Platform = nil },
		func(c *Config) { c.Deadline = 0 },
		func(c *Config) { c.Load = 0 },
		func(c *Config) { c.PeakULBytes = 0 },
		func(c *Config) {
			c.Cells = append(ran.Cells20MHz(1), ran.Cells100MHz(1)...)
		},
	}
	for i, mutate := range cases {
		bad := good
		mutate(&bad)
		if _, err := New(bad); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunBasicAccounting(t *testing.T) {
	r := run(t, testConfig(scheduler.NewConcordia(), workloads.None, 2), 2*sim.Second)
	if r.Slots == 0 || r.DAGsReleased == 0 || r.TasksExecuted == 0 {
		t.Fatalf("no work simulated: %+v", r)
	}
	if r.DAGsCompleted == 0 {
		t.Fatal("no DAGs completed")
	}
	// Core-time conservation: RAN + best-effort == total.
	total := r.Duration.Seconds() * 6
	sum := r.RANCoreSeconds + r.BestEffortCoreSeconds
	if math.Abs(sum-total)/total > 0.01 {
		t.Fatalf("core-time not conserved: %v + %v != %v",
			r.RANCoreSeconds, r.BestEffortCoreSeconds, total)
	}
	if r.BusyCoreSeconds > r.RANCoreSeconds+1e-9 {
		t.Fatalf("busy %v exceeds owned %v", r.BusyCoreSeconds, r.RANCoreSeconds)
	}
}

func TestConcordiaMeetsDeadlinesIsolated(t *testing.T) {
	r := run(t, testConfig(scheduler.NewConcordia(), workloads.None, 3), 5*sim.Second)
	if rel := r.Reliability(); rel < 0.9999 {
		t.Fatalf("isolated reliability %.5f below 99.99%%", rel)
	}
	if p := r.TailLatencyUs(0.9999); p > 2000 {
		t.Fatalf("isolated p99.99 latency %v µs above deadline", p)
	}
}

func TestConcordiaMeetsDeadlinesUnderRedis(t *testing.T) {
	r := run(t, testConfig(scheduler.NewConcordia(), workloads.Redis, 4), 5*sim.Second)
	if rel := r.Reliability(); rel < 0.999 {
		t.Fatalf("reliability under redis %.5f too low", rel)
	}
	if r.BestEffortCoreSeconds <= 0 {
		t.Fatal("no core-time reclaimed for redis")
	}
	if ops := r.WorkloadThroughput(workloads.Redis); ops <= 0 {
		t.Fatal("redis accumulated no throughput")
	}
}

func TestConcordiaReclaimsAtLowLoad(t *testing.T) {
	cfg := testConfig(scheduler.NewConcordia(), workloads.Redis, 5)
	cfg.Load = 0.05
	r := run(t, cfg, 3*sim.Second)
	if f := r.ReclaimedFraction(); f < 0.5 {
		t.Fatalf("low-load reclaim %.2f want > 0.5", f)
	}
	if r.ReclaimedFraction() > r.IdealReclaimable()+1e-9 {
		t.Fatal("reclaim exceeds the ideal bound")
	}
}

func TestFlexRANChurnsMoreThanConcordia(t *testing.T) {
	rc := run(t, testConfig(scheduler.NewConcordia(), workloads.Redis, 6), 3*sim.Second)
	rf := run(t, testConfig(scheduler.FlexRAN{}, workloads.Redis, 6), 3*sim.Second)
	if rf.SchedulingEvents <= rc.SchedulingEvents {
		t.Fatalf("FlexRAN events %d not above Concordia %d (Fig 10 property)",
			rf.SchedulingEvents, rc.SchedulingEvents)
	}
}

func TestFlexRANWorseTailUnderInterference(t *testing.T) {
	// Vanilla FlexRAN runs with its static queue-to-worker core partitioning
	// at the minimum core count (1 core per cell), as in the paper's Fig 4b
	// setup; Concordia gets the same 2-core pool but manages it globally.
	cfgC := testConfig(scheduler.NewConcordia(), workloads.Redis, 7)
	cfgC.PoolCores = 2
	rc := run(t, cfgC, 12*sim.Second)
	cfgF := testConfig(scheduler.FlexRAN{}, workloads.Redis, 7)
	cfgF.PoolCores = 2
	cfgF.StaticPartition = true
	rf := run(t, cfgF, 12*sim.Second)
	// The Fig 11 property: under interference the vanilla scheduler's tail
	// latency blows up (kernel wakeup spikes bind on its thin partitions)
	// while Concordia's 20 µs compensation keeps the tail bounded.
	if rf.TailLatencyUs(0.9999) <= rc.TailLatencyUs(0.9999) {
		t.Fatalf("FlexRAN p99.99 %.0f µs not above Concordia %.0f µs",
			rf.TailLatencyUs(0.9999), rc.TailLatencyUs(0.9999))
	}
	if rc.Reliability() < rf.Reliability() {
		t.Fatalf("Concordia reliability %.6f below FlexRAN %.6f",
			rc.Reliability(), rf.Reliability())
	}
}

func TestOverloadEntersCriticalAndStillBounded(t *testing.T) {
	// Failure injection: drive traffic at full load with few cores; the
	// pool must keep running, misses are recorded, nothing deadlocks.
	cfg := testConfig(scheduler.NewConcordia(), workloads.Redis, 8)
	cfg.PoolCores = 1
	cfg.Load = 1.0
	cfg.Deadline = sim.FromUs(700)
	r := run(t, cfg, 2*sim.Second)
	if r.DAGsCompleted == 0 {
		t.Fatal("overloaded pool completed nothing")
	}
	if r.Misses == 0 {
		t.Fatal("expected deadline misses under overload")
	}
	if r.Reliability() > 0.9999 {
		t.Fatal("overload cannot achieve five nines on one core")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := run(t, testConfig(scheduler.NewConcordia(), workloads.Mix, 9), sim.Second)
	b := run(t, testConfig(scheduler.NewConcordia(), workloads.Mix, 9), sim.Second)
	if a.TasksExecuted != b.TasksExecuted || a.Misses != b.Misses ||
		a.SchedulingEvents != b.SchedulingEvents {
		t.Fatalf("same seed diverged: %d/%d/%d vs %d/%d/%d",
			a.TasksExecuted, a.Misses, a.SchedulingEvents,
			b.TasksExecuted, b.Misses, b.SchedulingEvents)
	}
}

func TestRotationOccurs(t *testing.T) {
	r := run(t, testConfig(scheduler.NewConcordia(), workloads.Redis, 10), 2*sim.Second)
	if r.Rotations == 0 {
		t.Fatal("core rotation never happened")
	}
}

func TestNoRotationWhenDisabled(t *testing.T) {
	cfg := testConfig(scheduler.NewConcordia(), workloads.Redis, 11)
	cfg.RotatePeriod = 0
	r := run(t, cfg, sim.Second)
	if r.Rotations != 0 {
		t.Fatal("rotation occurred despite being disabled")
	}
}

func TestWakeupHistogramPopulated(t *testing.T) {
	r := run(t, testConfig(scheduler.NewConcordia(), workloads.Redis, 12), sim.Second)
	if r.WakeupHistUs.Total() == 0 {
		t.Fatal("no wakeup latencies recorded")
	}
}

func TestTaskRuntimesRecorded(t *testing.T) {
	r := run(t, testConfig(scheduler.NewConcordia(), workloads.None, 13), sim.Second)
	if res, ok := r.TaskRuntimes[ran.TaskLDPCDecode]; !ok || res.Seen() == 0 {
		t.Fatal("decode runtimes not recorded")
	}
}

func TestReportString(t *testing.T) {
	r := run(t, testConfig(scheduler.NewConcordia(), workloads.None, 14), 500*sim.Millisecond)
	if s := r.String(); len(s) < 50 {
		t.Fatalf("report summary too short: %q", s)
	}
}

func TestUtilizationSchedulerRuns(t *testing.T) {
	r := run(t, testConfig(scheduler.NewUtilization(0.6), workloads.Redis, 15), 2*sim.Second)
	if r.DAGsCompleted == 0 {
		t.Fatal("utilization scheduler completed nothing")
	}
}

func TestShenangoSchedulerRuns(t *testing.T) {
	r := run(t, testConfig(scheduler.NewShenango(25*sim.Microsecond), workloads.Redis, 16), 2*sim.Second)
	if r.DAGsCompleted == 0 {
		t.Fatal("shenango scheduler completed nothing")
	}
}

func TestMixWorkloadThroughputAttribution(t *testing.T) {
	r := run(t, testConfig(scheduler.NewConcordia(), workloads.Mix, 17), 3*sim.Second)
	var total float64
	for _, k := range workloads.MixMembers {
		total += r.WorkloadCoreSeconds(k)
	}
	if total <= 0 {
		t.Fatal("mix attributed no core time")
	}
	if total > r.BestEffortCoreSeconds+1e-6 {
		t.Fatalf("attributed %v exceeds granted %v", total, r.BestEffortCoreSeconds)
	}
}

func BenchmarkPoolSecond(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := testConfig(scheduler.NewConcordia(), workloads.Redis, uint64(i))
		p, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = p.Run(sim.Second)
	}
}

func TestAcceleratorOffload(t *testing.T) {
	// §7: with FPGA LDPC offload the CPU share of each uplink slot shrinks
	// and workers' blocking time shows up as makespan > CPU time.
	cfg := testConfig(scheduler.NewConcordia(), workloads.None, 20)
	r := run(t, cfg, 2*sim.Second)

	cfgA := testConfig(scheduler.NewConcordia(), workloads.None, 20)
	cfgA.Accel = accel.DefaultFPGA()
	ra := run(t, cfgA, 2*sim.Second)

	if ra.AvgCPUPerDAG(ran.Uplink) >= r.AvgCPUPerDAG(ran.Uplink) {
		t.Fatalf("offload did not reduce UL CPU time: %v vs %v",
			ra.AvgCPUPerDAG(ran.Uplink), r.AvgCPUPerDAG(ran.Uplink))
	}
	if ra.OffloadTimeUL == 0 {
		t.Fatal("no offload time recorded")
	}
	// Total slot time must exceed the non-offloaded CPU time (blocking).
	if ra.AvgMakespanPerDAG(ran.Uplink) <= ra.AvgCPUPerDAG(ran.Uplink) {
		t.Fatal("makespan should exceed CPU time when work is offloaded")
	}
	if ra.Reliability() < 0.999 {
		t.Fatalf("accelerated pool reliability %.5f", ra.Reliability())
	}
}

func TestReplaySourceDrivesPool(t *testing.T) {
	tr := &traffic.Trace{Cells: 2}
	// Alternating busy/idle slots with known volumes.
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			tr.Volumes = append(tr.Volumes, []int{4000, 2000})
		} else {
			tr.Volumes = append(tr.Volumes, []int{0, 0})
		}
	}
	ul, err := traffic.NewReplayer(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	dl, _ := traffic.NewReplayer(tr, 1)
	cfg := testConfig(scheduler.NewConcordia(), workloads.None, 30)
	cfg.ULSource = ul
	cfg.DLSource = dl
	r := run(t, cfg, sim.Second)
	// 1000 slots, half idle: DAGs only on busy slots (2 cells × 2 dirs).
	if r.DAGsReleased == 0 || r.DAGsReleased > 2*2*501 {
		t.Fatalf("released %d DAGs for a half-idle trace", r.DAGsReleased)
	}
	if r.DAGsReleased < 1800 {
		t.Fatalf("released only %d DAGs, want ~2000", r.DAGsReleased)
	}
}

func TestReplaySourceCellMismatch(t *testing.T) {
	tr := &traffic.Trace{Cells: 1, Volumes: [][]int{{100}}}
	ul, _ := traffic.NewReplayer(tr, 1)
	cfg := testConfig(scheduler.NewConcordia(), workloads.None, 31)
	cfg.ULSource = ul // 1 cell for a 2-cell config
	if _, err := New(cfg); err == nil {
		t.Fatal("undersized trace source accepted")
	}
}

func TestMACDAGsHaveTightDeadlines(t *testing.T) {
	cfg := testConfig(scheduler.NewConcordia(), workloads.None, 32)
	cfg.IncludeMAC = true
	r := run(t, cfg, sim.Second)
	if res, ok := r.TaskRuntimes[ran.TaskMACBuild]; !ok || res.Seen() == 0 {
		t.Fatal("MAC build tasks not executed")
	}
	// MAC DAGs release every slot for every cell.
	if r.DAGsReleased < r.Slots*2 {
		t.Fatalf("DAGs %d below MAC floor for %d slots", r.DAGsReleased, r.Slots)
	}
}

func TestUnderpredictionCompensated(t *testing.T) {
	// Failure injection: a predictor that underestimates WCETs by 3x. The
	// paper's point (§6.4): per-task mispredictions are absorbed by the
	// 20 µs re-evaluation, so full-DAG reliability barely degrades.
	cfg := testConfig(scheduler.NewConcordia(), workloads.None, 40)
	model := cfg.CostModel
	cfg.Predict = OraclePredictors{Model: model, Env: costmodel.Env{PoolCores: 4}, Margin: 0.33}
	r := run(t, cfg, 5*sim.Second)
	if rel := r.Reliability(); rel < 0.999 {
		t.Fatalf("reliability %.5f with 3x underprediction — compensation failed", rel)
	}
}

func TestOverpredictionCostsReclaim(t *testing.T) {
	// The dual: gross overprediction stays reliable but reserves more cores
	// (the pessimism the parameterized predictor exists to avoid, Fig 13).
	mk := func(margin float64, seed uint64) *Report {
		cfg := testConfig(scheduler.NewConcordia(), workloads.Redis, seed)
		cfg.Predict = OraclePredictors{Model: cfg.CostModel, Env: costmodel.Env{PoolCores: 4}, Margin: margin}
		return run(t, cfg, 3*sim.Second)
	}
	tight := mk(1.3, 41)
	fat := mk(8.0, 41)
	if fat.ReclaimedFraction() >= tight.ReclaimedFraction() {
		t.Fatalf("8x overprediction reclaimed %.3f, not below tight %.3f",
			fat.ReclaimedFraction(), tight.ReclaimedFraction())
	}
	if fat.Reliability() < 0.999 {
		t.Fatalf("overprediction should stay reliable: %.5f", fat.Reliability())
	}
}

func TestDropLateDAGs(t *testing.T) {
	// Overload a 1-core pool; with drop semantics the backlog is shed at
	// each deadline instead of growing without bound.
	mk := func(drop bool) *Report {
		cfg := testConfig(scheduler.NewConcordia(), workloads.None, 45)
		cfg.PoolCores = 1
		cfg.Load = 1.0
		cfg.Deadline = sim.FromUs(700)
		cfg.DropLateDAGs = drop
		return run(t, cfg, 2*sim.Second)
	}
	dropped := mk(true)
	late := mk(false)
	if dropped.DAGsDropped == 0 {
		t.Fatal("overloaded pool dropped nothing")
	}
	if dropped.Misses == 0 {
		t.Fatal("drops must count as misses")
	}
	// With drops, recorded latency is bounded near the deadline; without,
	// the backlog pushes the max far beyond it.
	if late.Latency.Max() <= dropped.Latency.Max() {
		t.Fatalf("run-to-completion max %.0f not above drop-mode max %.0f",
			late.Latency.Max(), dropped.Latency.Max())
	}
	// Accounting stays conserved.
	total := dropped.Duration.Seconds() * 1
	if got := dropped.RANCoreSeconds + dropped.BestEffortCoreSeconds; got < total*0.99 || got > total*1.01 {
		t.Fatalf("core time not conserved under drops: %v vs %v", got, total)
	}
}

func TestDropModeKeepsServingFreshSlots(t *testing.T) {
	cfg := testConfig(scheduler.NewConcordia(), workloads.None, 46)
	cfg.PoolCores = 1
	cfg.Load = 1.0
	cfg.Deadline = sim.FromUs(700)
	cfg.DropLateDAGs = true
	r := run(t, cfg, 2*sim.Second)
	// Some slots must still complete in time: dropping sheds the backlog so
	// fresh slots get served.
	if r.Reliability() < 0.2 {
		t.Fatalf("drop mode served almost nothing: reliability %.3f", r.Reliability())
	}
	if r.Reliability() > 0.9999 {
		t.Fatal("1-core overload cannot be this reliable")
	}
}

// BenchmarkPoolRun measures one simulated second of the canonical test pool
// with telemetry disabled (the production default) and enabled, so the
// overhead of the nil-check fast path and of full recording can be compared
// directly (EXPERIMENTS.md records the numbers).
func BenchmarkPoolRun(b *testing.B) {
	for _, mode := range []string{"telemetry=off", "telemetry=on"} {
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := testConfig(scheduler.NewConcordia(), workloads.Redis, 42)
				if mode == "telemetry=on" {
					cfg.Telemetry = telemetry.New(telemetry.Options{})
				}
				p, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				_ = p.Run(sim.Second)
			}
		})
	}
}

// TestTelemetryMatchesReport cross-checks the telemetry counters against the
// report the pool has always produced: both observe the same simulation, so
// they must agree exactly.
func TestTelemetryMatchesReport(t *testing.T) {
	rec := telemetry.New(telemetry.Options{})
	cfg := testConfig(scheduler.NewConcordia(), workloads.Redis, 23)
	cfg.Telemetry = rec
	rep := run(t, cfg, 2*sim.Second)

	m := rec.Metrics
	if got, want := m.Counter("dags_released").Value(), rep.DAGsReleased; got != want {
		t.Errorf("dags_released counter %d, report %d", got, want)
	}
	if got, want := m.Counter("dags_completed").Value(), rep.DAGsCompleted; got != want {
		t.Errorf("dags_completed counter %d, report %d", got, want)
	}
	if got, want := m.Counter("deadline_misses").Value(), rep.Misses; got != want {
		t.Errorf("deadline_misses counter %d, report %d", got, want)
	}
	if got, want := m.Counter("rotations").Value(), rep.Rotations; got != want {
		t.Errorf("rotations counter %d, report %d", got, want)
	}
	var cellDAGs, cellObs uint64
	for _, c := range rep.PerCell {
		cellDAGs += c.DAGs
		cellObs += c.QueueDelayObs
	}
	if cellDAGs != rep.DAGsCompleted {
		t.Errorf("per-cell DAG sum %d, report completed %d", cellDAGs, rep.DAGsCompleted)
	}
	if cellObs == 0 {
		t.Error("no queueing delays observed")
	}
	if rec.Trace.Len() == 0 {
		t.Fatal("trace recorded no events")
	}
	if m.Samples() == 0 {
		t.Fatal("no metrics samples recorded")
	}
}
