//go:build poolcheck

package pool

import (
	"strings"
	"testing"

	"concordia/internal/ran"
)

// These tests exercise the poolcheck sanitizer directly (DESIGN.md §5g):
// each one commits a memory-discipline violation the static analyzers would
// flag in source form and asserts the runtime side catches it too. They only
// compile under -tags poolcheck; `make poolcheck` and the CI poolcheck job
// run them.

// dagWithTasks builds a minimal n-task DAG without the builder front-ends.
func dagWithTasks(n int) *ran.DAG {
	nodes := make([]ran.Task, n)
	d := &ran.DAG{}
	for i := range nodes {
		nodes[i].ID = i
		d.Tasks = append(d.Tasks, &nodes[i])
	}
	return d
}

func wantPanic(t *testing.T, substrs ...string) {
	t.Helper()
	r := recover()
	if r == nil {
		t.Fatalf("expected a poolcheck panic containing %q; got none", substrs)
	}
	msg, ok := r.(string)
	if !ok {
		t.Fatalf("expected a string panic, got %T: %v", r, r)
	}
	for _, s := range substrs {
		if !strings.Contains(msg, s) {
			t.Errorf("panic %q does not contain %q", msg, s)
		}
	}
}

// TestPoolcheckCatchesUseAfterRecycle is the dynamic half of the issue's
// acceptance criterion: a task pointer retained across its run's recycle
// (exactly what the poolescape analyzer forbids statically) must panic with
// the owning release seq at the next queue insertion.
func TestPoolcheckCatchesUseAfterRecycle(t *testing.T) {
	p := &Pool{queues: make([]readyQueue, 1)}
	run := p.acquireRun(dagWithTasks(2))
	run.seq = 7
	// Admission (releaseDAG) wires each task's back-pointers; mimic it for
	// the one task the test retains.
	run.tasks[0] = task{dag: run, node: run.dag.Tasks[0], heapIndex: -1}
	stale := &run.tasks[0] // the retained alias
	run.retired = true
	p.maybeRecycle(run)

	defer wantPanic(t, "use-after-recycle of dagRun 0", "seq 7")
	p.pushReady(stale, 0)
}

func TestPoolcheckDoubleRecyclePanics(t *testing.T) {
	p := &Pool{}
	run := p.acquireRun(dagWithTasks(1))
	run.seq = 3
	run.retired = true
	p.maybeRecycle(run)

	// maybeRecycle's own retired guard normally makes a second call a no-op;
	// re-retiring the freed run models the state corruption the sanitizer
	// exists to catch.
	run.retired = true
	defer wantPanic(t, "double recycle of dagRun 0", "first release seq 3")
	p.maybeRecycle(run)
}

func TestPoolcheckSlabCanary(t *testing.T) {
	p := &Pool{}
	// First checkout sizes the slab to 4 tasks; recycling frees the run.
	run := p.acquireRun(dagWithTasks(4))
	run.retired = true
	p.maybeRecycle(run)

	// Second checkout reuses the capacity-4 slab for 2 live tasks, planting
	// the canary in the first spare entry. A write past the live length —
	// the slab-overflow bug class — clobbers it.
	run = p.acquireRun(dagWithTasks(2))
	run.tasks[:cap(run.tasks)][2].predicted = 0
	run.retired = true
	defer wantPanic(t, "slab canary clobbered", "2 live tasks")
	p.maybeRecycle(run)
}

// TestPoolcheckCleanLifecycle pins the no-false-positive side: a normal
// acquire/retire/recycle/reacquire cycle must not trip the sanitizer.
func TestPoolcheckCleanLifecycle(t *testing.T) {
	p := &Pool{}
	for i := 0; i < 3; i++ {
		run := p.acquireRun(dagWithTasks(3))
		run.seq = int64(i)
		p.pc.checkLive(run)
		run.retired = true
		p.maybeRecycle(run)
	}
	if len(p.runTable) != 1 {
		t.Errorf("freelist not reused: runTable has %d entries, want 1", len(p.runTable))
	}
}
