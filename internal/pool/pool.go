// Package pool implements the vRAN pool runtime of Fig 2 on the simulated
// platform: worker threads pinned to cores, EDF priority queues of
// signal-processing tasks, DAG-driven task spawning, yield/wake semantics
// with OS wakeup latency, the Concordia scheduler tick, 2 ms core rotation,
// and the accounting (slot latency tails, scheduling events, reclaimed
// core-time, workload throughput) every experiment in §6 reads out.
package pool

import (
	"errors"
	"fmt"

	"concordia/internal/accel"
	"concordia/internal/costmodel"
	"concordia/internal/faults"
	"concordia/internal/platform"
	"concordia/internal/predictor"
	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/scheduler"
	"concordia/internal/sim"
	"concordia/internal/slo"
	"concordia/internal/telemetry"
	"concordia/internal/traffic"
	"concordia/internal/workloads"
)

// Predictors provides per-task-kind WCET predictions to the pool.
type Predictors interface {
	Predict(kind ran.TaskKind, f ran.FeatureVector) sim.Time
	Observe(kind ran.TaskKind, f ran.FeatureVector, runtime sim.Time)
}

// PredictorSet is the production implementation: one trained predictor per
// task kind (the paper trains one quantile tree per signal-processing task).
type PredictorSet map[ran.TaskKind]predictor.Predictor

// Predict implements Predictors. Kinds without a model fall back to zero,
// which the pool treats as "unknown" and covers with the margin predictor.
func (s PredictorSet) Predict(kind ran.TaskKind, f ran.FeatureVector) sim.Time {
	if p, ok := s[kind]; ok {
		return p.Predict(f)
	}
	return 0
}

// Observe implements Predictors.
func (s PredictorSet) Observe(kind ran.TaskKind, f ran.FeatureVector, runtime sim.Time) {
	if p, ok := s[kind]; ok {
		p.Observe(f, runtime)
	}
}

// OraclePredictors predicts Margin × the cost model's true mean — an
// idealized predictor used for upper-bound and unit-test scenarios.
type OraclePredictors struct {
	Model  *costmodel.Model
	Env    costmodel.Env
	Margin float64
}

// Predict implements Predictors.
func (o OraclePredictors) Predict(kind ran.TaskKind, f ran.FeatureVector) sim.Time {
	return sim.Time(float64(o.Model.Mean(kind, f, o.Env)) * o.Margin)
}

// Observe implements Predictors (the oracle does not learn).
func (o OraclePredictors) Observe(ran.TaskKind, ran.FeatureVector, sim.Time) {}

// Config assembles one pool simulation.
type Config struct {
	Cells     []ran.CellConfig
	PoolCores int
	Scheduler scheduler.Scheduler
	Predict   Predictors
	CostModel *costmodel.Model
	Platform  *platform.Platform
	Workload  *workloads.Schedule
	// Deadline is the DAG processing deadline after slot release (Table 1:
	// 1.5 ms for 100 MHz, 2 ms for 20 MHz).
	Deadline sim.Time
	// UL/DL traffic generation; PeakULBytes/PeakDLBytes are per-slot
	// ceilings per cell, Load scales toward them.
	Load        float64
	PeakULBytes int
	PeakDLBytes int
	Seed        uint64
	// ULSource/DLSource, when non-nil, replace the synthetic generators
	// with trace replay (the paper's trace-driven methodology). They must
	// cover the configured cell count.
	ULSource traffic.Source
	DLSource traffic.Source
	// RotatePeriod is the core-rotation interval (2 ms in the paper);
	// 0 disables rotation.
	RotatePeriod sim.Time
	// ReleaseHysteresis keeps an idle RAN core reserved for this long before
	// yielding it. Concordia's proactive reservation uses a couple of slot
	// durations here — bridging inter-TTI gaps is what gives it an order of
	// magnitude fewer scheduling events than the queue-driven baseline
	// (Fig 10). Zero releases immediately (the baselines' behaviour).
	ReleaseHysteresis sim.Time
	// Accel, when non-nil, offloads LDPC encode/decode to the modeled FPGA
	// (§7): the CPU pays only a submit cost; the DAG resumes when the
	// device completes.
	Accel *accel.Accelerator
	// OffloadBatch, when > 1, coalesces up to that many ready offloadable
	// tasks of the same kind into one DMA transfer: the submitting core pays
	// SubmitCost once and the followers skip it entirely. Followers are
	// taken in EDF order and admitted only while the no-queueing device
	// estimate still meets their deadline. 0 or 1 submits per task (the
	// legacy behaviour).
	OffloadBatch int
	// IncludeMAC releases the §7 MAC-layer extension DAG every slot per
	// cell, with a one-slot deadline (the grant must be ready for the next
	// TTI), multiplexed on the same pool.
	IncludeMAC bool
	// DropLateDAGs discards a DAG's remaining work once its deadline
	// passes, as real deployments do ("the packets transmitted or received
	// in the corresponding time slot are dropped"). Dropped DAGs count as
	// misses. When false (the default for latency measurement), late DAGs
	// run to completion and their full latency is recorded.
	DropLateDAGs bool
	// StaticPartition statically assigns cores to cells (core i serves cell
	// i mod cells), reproducing vanilla FlexRAN's queue-to-worker affinity.
	// A stuck or overloaded partition then cannot borrow neighbours' cores —
	// the effect behind Fig 4b's deadline violations. Concordia runs with a
	// global pool (false).
	StaticPartition bool
	// Telemetry, when non-nil, records the structured event trace and the
	// metrics time series (internal/telemetry). Nil — the default — takes
	// the no-op path: every instrumentation site reduces to one predictable
	// branch, keeping the hot loop within noise of the uninstrumented pool.
	Telemetry *telemetry.Recorder
	// SLO, when non-nil, streams per-DAG latency/slack and per-task runtime
	// observations into the windowed SLO tracker (internal/slo): quantile
	// sketches, miss/attempt counters and burn-rate alerts, all in virtual
	// time. Nil — the default — reduces every record site to one nil check,
	// mirroring the Telemetry fast path.
	SLO *slo.Tracker
	// Faults, when non-nil with positive rates, attaches the deterministic
	// chaos injector (internal/faults): accelerator lane failures and stuck
	// offloads (recovered by a virtual-time watchdog with bounded retries),
	// WCET overruns, interference bursts, core-yield storms, and late or
	// dropped fronthaul arrivals. The injector is seeded from Seed through
	// its own substream — it never touches the pool's RNG — so a nil or
	// all-zero config leaves every existing output byte-identical.
	Faults *faults.Config
}

func (c *Config) validate() error {
	if len(c.Cells) == 0 {
		return errors.New("pool: no cells")
	}
	mu := c.Cells[0].Numerology
	for _, cell := range c.Cells {
		if err := cell.Validate(); err != nil {
			return err
		}
		if cell.Numerology != mu {
			return errors.New("pool: cells must share a numerology")
		}
	}
	if c.PoolCores <= 0 {
		return errors.New("pool: need at least one core")
	}
	if c.Scheduler == nil || c.CostModel == nil || c.Platform == nil {
		return errors.New("pool: scheduler, cost model and platform are required")
	}
	if c.Deadline <= 0 {
		return errors.New("pool: non-positive deadline")
	}
	if c.Load <= 0 || c.Load > 1 {
		return errors.New("pool: load must be in (0,1]")
	}
	if c.PeakULBytes <= 0 || c.PeakDLBytes <= 0 {
		return errors.New("pool: peak slot bytes must be positive")
	}
	return nil
}

// task is the runtime wrapper around a DAG node.
type task struct {
	dag       *dagRun
	node      *ran.Task
	predicted sim.Time
	readyAt   sim.Time
	started   sim.Time
	running   bool
	done      bool
	tailCP    sim.Time // predicted longest path from this task to a sink
	missing   int      // unfinished dependencies
	heapIndex int
	// retries counts offload re-submissions after stuck-offload timeouts;
	// noOffload forces the CPU path once the retry budget is exhausted.
	retries   int
	noOffload bool
}

// dagRun tracks one released DAG instance.
//
// Memory discipline (DESIGN.md §5f): dagRun objects live permanently in the
// pool's runTable; a freelist of table indices recycles them. Each run's
// task objects live in one slab (run.tasks) whose capacity is reused across
// releases, so steady-state admission allocates nothing. A run is recycled —
// and its *ran.DAG returned to the DAG freelist — only when it is retired
// (finished, abandoned, or dropped) AND refs reaches zero, so no pending
// event or core can ever observe a reused slab. Explicit freelists, not
// sync.Pool: recycling order must be deterministic at any -workers.
type dagRun struct {
	id         int32 // index into Pool.runTable, stable for the pool's life
	dag        *ran.DAG
	tasks      []task // one backing slab; pointers into it stay valid per run
	unfinished int
	// refs counts live references from outside the run: tasks attached to a
	// core (or in an accelerator submit window) and pending offload
	// done/timeout/retry events. Guarded by retired for recycling.
	refs    int
	retired bool
	// seq is the release sequence number, the stable identity telemetry
	// events use to correlate a DAG's lifecycle across the trace.
	seq int64
	// remainingWork is the predicted work of not-yet-completed tasks,
	// excluding progress on running ones (subtracted lazily at read time).
	remainingWork sim.Time
	// dropped marks a DAG abandoned at its deadline (DropLateDAGs).
	dropped bool
	// cpuTime and offloadTime split the DAG's execution between processor
	// and accelerator (Table 4's non-offloaded vs total analysis).
	cpuTime     sim.Time
	offloadTime sim.Time
}

// readyQueue is the EDF priority queue: earliest DAG deadline first, ties
// broken by task order. It is a hand-rolled binary heap over *task — no
// container/heap, so push/pop never box through `any`. The sift routines
// transcribe container/heap's up/down exactly: the EDF key is not a total
// order (two cells' root tasks can tie on deadline, readyAt, and node ID),
// so preserving the original algorithm preserves the original pop order for
// tied elements — a byte-identity requirement, not a style choice.
type readyQueue []*task

func (q readyQueue) Len() int { return len(q) }
func (q readyQueue) less(i, j int) bool {
	if q[i].dag.dag.Deadline != q[j].dag.dag.Deadline {
		return q[i].dag.dag.Deadline < q[j].dag.dag.Deadline
	}
	if q[i].readyAt != q[j].readyAt {
		return q[i].readyAt < q[j].readyAt
	}
	return q[i].node.ID < q[j].node.ID
}
func (q readyQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIndex = i
	q[j].heapIndex = j
}

func (q readyQueue) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !q.less(j, i) {
			break
		}
		q.swap(i, j)
		j = i
	}
}

func (q readyQueue) down(i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q.less(j2, j1) {
			j = j2
		}
		if !q.less(j, i) {
			break
		}
		q.swap(i, j)
		i = j
	}
	return i > i0
}

func (q *readyQueue) push(t *task) {
	t.heapIndex = len(*q)
	*q = append(*q, t)
	q.up(len(*q) - 1)
}

func (q *readyQueue) pop() *task {
	n := len(*q) - 1
	q.swap(0, n)
	q.down(0, n)
	old := *q
	t := old[n]
	old[n] = nil
	*q = old[:n]
	// Restore the not-in-heap invariant so later membership checks
	// (dropExpired, abandonDAG) never act on a stale index.
	t.heapIndex = -1
	return t
}

// removeAt deletes the element at heap index i (container/heap.Remove).
func (q *readyQueue) removeAt(i int) {
	n := len(*q) - 1
	if n != i {
		q.swap(i, n)
		if !q.down(i, n) {
			q.up(i)
		}
	}
	old := *q
	t := old[n]
	old[n] = nil
	*q = old[:n]
	t.heapIndex = -1
}

// coreState tracks one physical core.
type coreState int

const (
	coreBestEffort coreState = iota // granted to collocated workloads
	coreWaking                      // acquired by RAN, worker not yet running
	coreIdleRAN                     // owned by RAN, no task
	coreBusyRAN                     // executing a RAN task
)

type core struct {
	state     coreState
	task      *task
	wakeEv    sim.EventHandle
	doneEv    sim.EventHandle
	busyEnd   sim.Time
	wakeStart sim.Time
	idleSince sim.Time
	// drain marks a busy core that must yield on task completion (core
	// rotation swaps it for a freshly acquired one).
	drain bool
}

// Pool is the running simulation.
type Pool struct {
	cfg    Config
	eng    *sim.Engine
	rand   *rng.Rand
	ulTraf traffic.Source
	dlTraf traffic.Source

	cores    []core
	ranCores int // cores in waking/idle/busy RAN states

	queues []readyQueue
	// dags holds in-flight DAGs in release order. A slice (not a map) keeps
	// scheduler-state iteration deterministic: float accumulation over a
	// randomly-ordered map could flip a ceil at the margin.
	dags []*dagRun

	slotIndex int

	report  *Report
	lastAcc sim.Time // last core-time accounting timestamp

	// utilization EWMA for the utilization-based scheduler.
	utilEWMA float64
	// churnEWMA tracks recent scheduling events per millisecond: the driver
	// of cache pollution (Fig 9) — frequent yield/acquire cycles land RAN
	// tasks on cold, workload-polluted caches.
	churnEWMA      float64
	eventsLastSlot uint64

	// tel carries the pre-resolved telemetry handles; nil when disabled.
	tel    *telemetryHooks
	dagSeq int64

	// flt is the deterministic fault injector; nil unless Config.Faults has
	// at least one positive rate, so fault-free runs pay one nil check.
	flt *faults.Injector

	// devDown mirrors the injected reset state per accelerator device; the
	// reconciliation ticker detects transitions against it.
	devDown []bool

	// Offload-batching scratch, reused across submissions. batchTasks is
	// cleared after every batch so it never retains freelist-owned tasks.
	batchTasks []*task
	batchCbs   []int
	batchDones []sim.Time

	// Typed event kinds (DESIGN.md §5f): the common pool callbacks carry a
	// core index or a (run ID, task ID) pair instead of a closure, so the
	// steady-state event path allocates nothing.
	kTaskDone         sim.EventKind
	kOffloadSubmitted sim.EventKind
	kOffloadDone      sim.EventKind
	kOffloadTimeout   sim.EventKind
	kCoreAwake        sim.EventKind

	// runTable/freeRuns implement the dagRun freelist; freeDAGs recycles the
	// slot-scoped *ran.DAG graphs (slabs, Deps/Succs capacity and all).
	runTable []*dagRun
	freeRuns []int32
	freeDAGs []*ran.DAG
	// slotAlloc reuses the per-slot UE allocation buffers.
	slotAlloc ran.SlotAllocator
	// stDAGs is the schedulerState scratch; policies must not retain it.
	stDAGs []scheduler.DAGState

	// pc is the poolcheck sanitizer state (DESIGN.md §5g): empty struct and
	// no-op hooks unless built with -tags poolcheck.
	pc poolPC
}

// New validates the configuration and builds the pool.
func New(cfg Config) (*Pool, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	var ul, dl traffic.Source
	var err error
	if cfg.ULSource != nil {
		ul = cfg.ULSource
		root.Uint64() // keep the seed stream aligned with generator mode
	} else {
		ul, err = traffic.NewGenerator(traffic.Config{
			Cells: len(cfg.Cells), Load: cfg.Load, PeakSlotBytes: cfg.PeakULBytes, Seed: root.Uint64()})
		if err != nil {
			return nil, err
		}
	}
	if cfg.DLSource != nil {
		dl = cfg.DLSource
		root.Uint64()
	} else {
		dl, err = traffic.NewGenerator(traffic.Config{
			Cells: len(cfg.Cells), Load: cfg.Load, PeakSlotBytes: cfg.PeakDLBytes, Seed: root.Uint64()})
		if err != nil {
			return nil, err
		}
	}
	if ul.Cells() < len(cfg.Cells) || dl.Cells() < len(cfg.Cells) {
		return nil, errors.New("pool: traffic source covers fewer cells than configured")
	}
	nq := 1
	if cfg.StaticPartition {
		nq = len(cfg.Cells)
	}
	p := &Pool{
		cfg:    cfg,
		eng:    sim.NewEngine(),
		rand:   root,
		ulTraf: ul,
		dlTraf: dl,
		cores:  make([]core, cfg.PoolCores),
		queues: make([]readyQueue, nq),
		report: newReport(cfg),
	}
	p.kTaskDone = p.eng.RegisterKind(func(a, _ int64) { p.onTaskDone(int(a)) })
	p.kOffloadSubmitted = p.eng.RegisterKind(func(a, _ int64) { p.onOffloadSubmitted(int(a)) })
	p.kOffloadDone = p.eng.RegisterKind(func(a, b int64) {
		run := p.runTable[a]
		p.pc.checkLive(run)
		p.onOffloadDone(&run.tasks[b])
	})
	p.kOffloadTimeout = p.eng.RegisterKind(func(a, b int64) {
		run := p.runTable[a]
		p.pc.checkLive(run)
		p.onOffloadTimeout(&run.tasks[b])
	})
	p.kCoreAwake = p.eng.RegisterKind(func(a, _ int64) { p.onCoreAwake(int(a)) })
	if cfg.Faults != nil {
		// The injector derives its seed as a pure substream of the pool seed:
		// nothing is consumed from root, so enabling faults never perturbs
		// traffic, allocation, or cost-model sampling streams.
		p.flt = faults.NewInjector(*cfg.Faults, rng.SubstreamSeed(cfg.Seed, 0xfa5e))
		p.report.FaultsEnabled = p.flt != nil
	}
	if cfg.Telemetry != nil {
		p.tel = newTelemetryHooks(cfg.Telemetry, p.flt != nil)
		p.tel.attach(p)
	}
	return p, nil
}

// Run executes the simulation for the given duration and returns the
// accumulated report.
func (p *Pool) Run(duration sim.Time) *Report {
	slotDur := p.cfg.Cells[0].Numerology.SlotDuration()
	sim.NewTicker(p.eng, 0, slotDur, p.onSlot)
	sim.NewTicker(p.eng, 0, p.cfg.Scheduler.Interval(), p.onSchedulerTick)
	if p.cfg.RotatePeriod > 0 {
		// Phase-shift rotation off the slot grid so it observes the pool
		// mid-slot rather than at the idle instant between TTIs.
		sim.NewTicker(p.eng, p.cfg.RotatePeriod+p.cfg.RotatePeriod/7, p.cfg.RotatePeriod, p.onRotate)
	}
	if p.tel != nil {
		// Metrics sampling: registered after the slot ticker so a sample at
		// instant t observes the slot released at t.
		period := p.tel.rec.SamplePeriod
		if period <= 0 {
			period = slotDur
		}
		sim.NewTicker(p.eng, 0, period, p.onSample)
	}
	if p.flt != nil && p.cfg.Accel != nil && p.flt.Config().DeviceResetPerSec > 0 {
		// Reconciliation loop: poll the per-device reset windows and
		// re-partition VF queue depths on membership transitions. 100 µs is
		// fine-grained against the millisecond-scale reset windows.
		p.devDown = make([]bool, p.cfg.Accel.DeviceCount())
		sim.NewTicker(p.eng, 0, 100*sim.Microsecond, p.onReconcile)
	}
	p.eng.Run(duration)
	p.accountCoreTime(p.eng.Now())
	p.cfg.SLO.Flush(p.eng.Now())
	if p.flt != nil {
		s := p.flt.Stats()
		f := &p.report.Faults
		f.LaneFailures = s.LaneFailures
		f.StuckOffloads = s.StuckOffloads
		f.Overruns = s.Overruns
		f.Bursts = s.Bursts
		f.Storms = s.Storms
		f.FronthaulLate = s.FronthaulLate
		f.FronthaulDropped = s.FronthaulDropped
		f.DeviceResets = s.DeviceResets
	}
	p.report.finish(duration, p.cfg)
	return p.report
}

// interference returns the effective cache pressure on RAN tasks right now.
// The baseline pressure comes from the active workloads; how much of it the
// RAN actually feels is governed by core churn — a pool that yields and
// reacquires cores constantly (vanilla FlexRAN) keeps landing on caches the
// workloads just polluted, while a pool that retains a small core set
// (Concordia) mostly suffers shared-LLC pressure only (Fig 9).
func (p *Pool) interference() float64 {
	base := p.interferenceBase()
	if base == 0 {
		return 0
	}
	churn := p.churnEWMA / 7.0
	if churn > 1 {
		churn = 1
	}
	return base * (0.25 + 0.75*churn)
}

func (p *Pool) env() costmodel.Env {
	cores := p.ranCores
	if cores < 1 {
		cores = 1
	}
	return costmodel.Env{PoolCores: cores, Interference: p.interference()}
}

// onSlot releases the new TTI's DAGs for every cell.
func (p *Pool) onSlot(now sim.Time) {
	ulBytes := p.ulTraf.NextSlot()
	dlBytes := p.dlTraf.NextSlot()
	slotDur := p.cfg.Cells[0].Numerology.SlotDuration()
	for i, cell := range p.cfg.Cells {
		deadline := now + p.cfg.Deadline
		if p.cfg.IncludeMAC {
			// The MAC schedules the next TTI: it runs every slot and must
			// finish within the slot.
			ues := 1 + (ulBytes[i]+dlBytes[i])/4096
			if ues > cell.MaxUEs {
				ues = cell.MaxUEs
			}
			p.releaseDAG(ran.BuildMACDAGInto(p.getDAG(), cell, p.slotIndex, now, now+slotDur, ues))
		}
		// Fronthaul faults act on the cell's PHY data for this TTI (the MAC
		// above schedules from its own state and is unaffected). The DAGs are
		// still built on a drop so the allocation RNG stream stays aligned
		// with the fault-free schedule; the data simply never arrives.
		release := p.releaseDAG
		if p.flt != nil {
			if delay, drop := p.flt.Fronthaul(int64(i), int64(p.slotIndex)); drop {
				p.faultTrace(now, faults.FronthaulDrop, int32(i), int32(p.slotIndex), -1, -1, 0)
				// The graph was built (to keep the RNG stream aligned) but never
				// admitted; hand it straight back to the freelist.
				release = func(d *ran.DAG) { p.putDAG(d) }
			} else if delay > 0 {
				// Late arrival: the DAG keeps its on-time release stamp and
				// deadline (the radio doesn't wait), but admission — and so
				// every prediction and enqueue — happens delay later.
				p.faultTrace(now, faults.FronthaulLate, int32(i), int32(p.slotIndex), -1, -1, delay)
				release = func(d *ran.DAG) {
					if d == nil {
						return
					}
					p.eng.After(delay, func() { p.releaseDAG(d) })
				}
			}
		}
		switch {
		case cell.Duplex == ran.FDD:
			release(p.buildDir(cell, p.slotIndex, now, deadline, ran.Uplink, ulBytes[i], p.rand))
			release(p.buildDir(cell, p.slotIndex, now, deadline, ran.Downlink, dlBytes[i], p.rand))
		default:
			switch cell.SlotDir(p.slotIndex) {
			case ran.Uplink:
				release(p.buildDir(cell, p.slotIndex, now, deadline, ran.Uplink, ulBytes[i], p.rand))
			case ran.Downlink:
				release(p.buildDir(cell, p.slotIndex, now, deadline, ran.Downlink, dlBytes[i], p.rand))
			case ran.Special:
				// Special slots carry guard symbols plus reduced downlink.
				release(p.buildDir(cell, p.slotIndex, now, deadline, ran.Downlink, dlBytes[i]/2, p.rand))
			}
		}
	}
	p.slotIndex++
	p.report.Slots++
	// Refresh the churn EWMA: scheduling events during the last slot.
	slotMs := p.cfg.Cells[0].Numerology.SlotDuration().Ms()
	rate := float64(p.report.SchedulingEvents-p.eventsLastSlot) / slotMs
	p.eventsLastSlot = p.report.SchedulingEvents
	p.churnEWMA = 0.95*p.churnEWMA + 0.05*rate
	// Refresh the utilization EWMA at slot granularity.
	busy := 0
	for i := range p.cores {
		if p.cores[i].state == coreBusyRAN {
			busy++
		}
	}
	owned := p.ranCores
	u := 0.0
	if owned > 0 {
		u = float64(busy) / float64(owned)
	}
	p.utilEWMA = 0.8*p.utilEWMA + 0.2*u
}

// getDAG pops a recycled DAG (slab and scratch capacity intact) or
// allocates a fresh one.
func (p *Pool) getDAG() *ran.DAG {
	if n := len(p.freeDAGs); n > 0 {
		d := p.freeDAGs[n-1]
		p.freeDAGs = p.freeDAGs[:n-1]
		return d
	}
	return new(ran.DAG)
}

// putDAG returns a DAG to the freelist. LIFO order: deterministic and
// cache-warm.
func (p *Pool) putDAG(d *ran.DAG) {
	if d != nil {
		p.freeDAGs = append(p.freeDAGs, d)
	}
}

// acquireRun pops a recycled dagRun (or grows the table) and resets it for
// d. Every task field is overwritten at admission, so a recycled slab leaks
// nothing between runs.
func (p *Pool) acquireRun(d *ran.DAG) *dagRun {
	var run *dagRun
	if n := len(p.freeRuns); n > 0 {
		run = p.runTable[p.freeRuns[n-1]]
		p.freeRuns = p.freeRuns[:n-1]
	} else {
		run = &dagRun{id: int32(len(p.runTable))}
		p.runTable = append(p.runTable, run)
	}
	n := len(d.Tasks)
	if cap(run.tasks) < n {
		run.tasks = make([]task, n)
	}
	run.tasks = run.tasks[:n]
	run.dag = d
	run.unfinished = n
	run.refs = 0
	run.retired = false
	run.seq = 0
	run.remainingWork = 0
	run.dropped = false
	run.cpuTime = 0
	run.offloadTime = 0
	p.pc.acquire(run)
	return run
}

// maybeRecycle returns a retired, unreferenced run (and its DAG) to the
// freelists. Callers invoke it wherever a reference drops; the guard makes
// over-calling harmless.
func (p *Pool) maybeRecycle(run *dagRun) {
	if !run.retired || run.refs != 0 {
		return
	}
	p.pc.recycle(run)
	run.retired = false // also guards against a double recycle
	p.putDAG(run.dag)
	run.dag = nil
	p.freeRuns = append(p.freeRuns, run.id)
}

// buildDir constructs the DAG for one direction, or nil for an idle slot.
// The graph comes from the DAG freelist; ownership passes to the released
// run (or back to the freelist on a fronthaul drop).
func (p *Pool) buildDir(cell ran.CellConfig, slot int, release, deadline sim.Time, dir ran.SlotDir, bytes int, r *rng.Rand) *ran.DAG {
	if bytes <= 0 {
		return nil
	}
	allocs := p.slotAlloc.Allocate(cell, bytes, r)
	if len(allocs) == 0 {
		return nil
	}
	if dir == ran.Uplink {
		return ran.BuildUplinkDAGInto(p.getDAG(), cell, slot, release, deadline, allocs)
	}
	return ran.BuildDownlinkDAGInto(p.getDAG(), cell, slot, release, deadline, allocs)
}

// releaseDAG admits a DAG: predicts every task's WCET, computes tail
// critical paths, and enqueues the roots.
//
// lint:pool-owner — this is the pool's admission path. It checks the run out
// of the freelist and retains it (p.dags, task back-pointers) precisely
// because the pool owns run lifetimes from here until maybeRecycle.
func (p *Pool) releaseDAG(d *ran.DAG) {
	if d == nil {
		return
	}
	run := p.acquireRun(d)
	run.seq = p.dagSeq
	p.dagSeq++
	for _, n := range d.Tasks {
		pred := p.predictTask(n)
		run.tasks[n.ID] = task{dag: run, node: n, predicted: pred, missing: len(n.Deps), heapIndex: -1}
		run.remainingWork += pred
	}
	// Tail critical path: longest predicted path from each task to a sink,
	// computed in reverse topological (reverse ID) order.
	for i := len(run.tasks) - 1; i >= 0; i-- {
		t := &run.tasks[i]
		var best sim.Time
		for _, s := range t.node.Succs {
			if run.tasks[s].tailCP > best {
				best = run.tasks[s].tailCP
			}
		}
		t.tailCP = best + t.predicted
	}
	p.dags = append(p.dags, run)
	p.report.DAGsReleased++
	now := p.eng.Now()
	if p.tel != nil {
		p.tel.cDAGsReleased.Inc()
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvDAGRelease,
			Core: -1, Cell: int32(d.CellID), Slot: int32(d.Slot), Task: -1,
			A: run.seq, B: int64(d.Dir),
		})
	}
	for _, id := range d.Roots() {
		p.enqueue(&run.tasks[id], now)
	}
}

// predictTask returns the WCET prediction for one task, falling back to a
// margin over the cost model when the predictor set has no model (or no
// data) for the kind.
func (p *Pool) predictTask(n *ran.Task) sim.Time {
	if p.cfg.Accel != nil && p.cfg.Accel.Offloads(n.Kind) {
		cbs := int(n.Features.Get(ran.FCodeblocks))
		// A device that cannot produce an estimate (invalid rate) must not
		// predict "free" — fall through to the predictor/cost-model paths.
		if exp, err := p.cfg.Accel.Expected(n.Kind, cbs); err == nil {
			return p.cfg.Accel.SubmitCost + exp
		}
	}
	if p.cfg.Predict != nil {
		if v := p.cfg.Predict.Predict(n.Kind, n.Features); v > 0 {
			return v
		}
	}
	// Fallback: 1.5× the isolated mean — a deliberately loose margin so an
	// absent model errs toward over-reservation.
	return sim.Time(1.5 * float64(p.cfg.CostModel.Mean(n.Kind, n.Features, costmodel.Env{PoolCores: 1})))
}

// queueIndex maps a cell to its ready queue (0 in global-pool mode).
func (p *Pool) queueIndex(cell int) int {
	if len(p.queues) == 1 {
		return 0
	}
	return cell % len(p.queues)
}

// coreQueue maps a core to the queue it serves (static partitioning binds
// core i to cell i mod cells; the global pool serves one shared queue).
func (p *Pool) coreQueue(ci int) int {
	if len(p.queues) == 1 {
		return 0
	}
	return ci % len(p.queues)
}

func (p *Pool) readyTotal() int {
	n := 0
	for qi := range p.queues {
		n += p.queues[qi].Len()
	}
	return n
}

// pushReady marks t ready at now and inserts it into its EDF queue. Every
// heap insertion goes through here so the queueing-delay accounting and the
// task_enqueue trace event cover all paths (roots, successors, rotation
// handoffs).
func (p *Pool) pushReady(t *task, now sim.Time) {
	p.pc.checkLive(t.dag)
	t.readyAt = now
	p.queues[p.queueIndex(t.node.CellID)].push(t)
	if p.tel != nil {
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvTaskEnqueue,
			Core: -1, Cell: int32(t.node.CellID), Slot: int32(t.dag.dag.Slot),
			Task: int32(t.node.Kind), A: t.dag.seq, B: int64(t.node.ID),
		})
	}
}

// enqueue inserts a ready task and immediately dispatches if a RAN core is
// idle.
func (p *Pool) enqueue(t *task, now sim.Time) {
	p.pushReady(t, now)
	p.dispatch(now)
}

// dispatch assigns ready tasks to idle RAN cores (EDF order within each
// queue; in static-partition mode a core only serves its own cell's queue).
func (p *Pool) dispatch(now sim.Time) {
	for qi := range p.queues {
		for p.queues[qi].Len() > 0 {
			ci := p.idleRANCoreFor(qi)
			if ci < 0 {
				break
			}
			t := p.queues[qi].pop()
			p.startTask(ci, t, now)
		}
	}
}

func (p *Pool) idleRANCoreFor(qi int) int {
	for i := range p.cores {
		if p.cores[i].state == coreIdleRAN && p.coreQueue(i) == qi {
			return i
		}
	}
	return -1
}

func (p *Pool) idleRANCore() int {
	for i := range p.cores {
		if p.cores[i].state == coreIdleRAN {
			return i
		}
	}
	return -1
}

// startTask runs t on core ci. Offloadable tasks occupy the core only for
// the accelerator submit cost; the device completes them asynchronously.
func (p *Pool) startTask(ci int, t *task, now sim.Time) {
	p.pc.checkLive(t.dag)
	p.accountCoreTime(now)
	c := &p.cores[ci]
	c.state = coreBusyRAN
	c.task = t
	t.dag.refs++ // the core now references the run's slab
	t.running = true
	t.started = now
	if p.tel != nil {
		delay := now - t.readyAt
		p.report.observeQueueDelay(t.node.CellID, delay)
		p.tel.hQueueUs.Observe(delay.Us())
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvTaskDispatch,
			Core: int32(ci), Cell: int32(t.node.CellID), Slot: int32(t.dag.dag.Slot),
			Task: int32(t.node.Kind), Dur: delay, A: t.dag.seq, B: int64(t.node.ID),
		})
	}
	if p.cfg.Accel != nil && !t.noOffload && p.cfg.Accel.Offloads(t.node.Kind) {
		dur := p.cfg.Accel.SubmitCost
		c.busyEnd = now + dur
		c.doneEv = p.eng.AfterKind(dur, p.kOffloadSubmitted, int64(ci), 0)
		p.report.TasksExecuted++
		return
	}
	dur := p.taskDuration(t, now)
	c.busyEnd = now + dur
	c.doneEv = p.eng.AfterKind(dur, p.kTaskDone, int64(ci), 0)
	p.report.TasksExecuted++
}

// taskDuration samples t's software execution time, applying any injected
// WCET overrun. The overrun decision is keyed on the task's identity, not
// the attempt, so a task that overruns keeps overrunning on retry — it
// models a mispredicted input, not transient noise.
func (p *Pool) taskDuration(t *task, now sim.Time) sim.Time {
	dur := p.cfg.CostModel.Sample(t.node.Kind, t.node.Features, p.env())
	if p.flt != nil {
		if factor, ok := p.flt.Overrun(t.dag.seq, int64(t.node.ID)); ok {
			extra := sim.Time(float64(dur) * (factor - 1))
			dur += extra
			p.taskFault(now, faults.TaskOverrun, t, extra)
		}
	}
	return dur
}

// execOnCore runs t's software path on core ci — the CPU-fallback branch
// for offloads that were rejected, failed, or timed out.
func (p *Pool) execOnCore(ci int, t *task, now sim.Time) {
	c := &p.cores[ci]
	dur := p.taskDuration(t, now)
	c.task = t
	c.busyEnd = now + dur
	c.doneEv = p.eng.AfterKind(dur, p.kTaskDone, int64(ci), 0)
}

// onOffloadSubmitted hands the core's current task to the accelerator and
// frees the core for other work.
func (p *Pool) onOffloadSubmitted(ci int) {
	now := p.eng.Now()
	p.accountCoreTime(now)
	c := &p.cores[ci]
	t := c.task
	c.task = nil
	c.doneEv = sim.EventHandle{}
	run := t.dag
	run.cpuTime += p.cfg.Accel.SubmitCost
	if p.flt != nil && p.flt.LaneFails(run.seq, int64(t.node.ID), t.retries) {
		// Injected lane failure: the device rejects the transfer outright.
		// Recover immediately by executing in software on this core.
		// (The core keeps its ref: execOnCore re-attaches the task.)
		p.report.Faults.CPUFallbacks++
		p.taskFault(now, faults.LaneFailure, t, 0)
		p.taskRecover(now, faults.LaneFailure, recoverCPUFallback, t)
		p.execOnCore(ci, t, now)
		return
	}
	if p.flt != nil && p.flt.OffloadStuck(run.seq, int64(t.node.ID), t.retries) {
		// Injected stuck offload: the request vanishes inside the device and
		// no completion will ever fire. A virtual-time watchdog detects the
		// loss; the core moves on in the meantime. The core's run ref moves to
		// the watchdog event (net zero).
		timeout := p.flt.StuckTimeout()
		p.taskFault(now, faults.StuckOffload, t, timeout)
		p.eng.AfterKind(timeout, p.kOffloadTimeout, int64(run.id), int64(t.node.ID))
		p.coreAfterTask(ci, nil, now)
		return
	}
	if p.cfg.OffloadBatch > 1 {
		p.submitOffloadBatch(ci, t, now)
		return
	}
	cbs := int(t.node.Features.Get(ran.FCodeblocks))
	done, err := p.cfg.Accel.Submit(now, t.node.Kind, cbs)
	if err != nil {
		p.offloadRejected(ci, t, now, err)
		return
	}
	run.offloadTime += done - now
	// The core's run ref moves to the completion event (net zero).
	p.eng.AtKind(done, p.kOffloadDone, int64(run.id), int64(t.node.ID))
	p.coreAfterTask(ci, nil, now)
}

// offloadRejected recovers a task whose device submission was rejected —
// wrong kind, no lanes, invalid rate, VF queue backpressure, or the whole
// fleet in reset — by executing in software on the submitting core (the core
// keeps its run ref; execOnCore re-attaches the task).
func (p *Pool) offloadRejected(ci int, t *task, now sim.Time, err error) {
	switch err {
	case accel.ErrDeviceDown:
		// Whole-fleet outage: inject a device-reset fault event keyed on
		// this DAG so the autopsy can attribute the miss to the reset.
		if p.flt != nil {
			p.report.Faults.CPUFallbacks++
			p.taskFault(now, faults.DeviceReset, t, 0)
			p.taskRecover(now, faults.DeviceReset, recoverCPUFallback, t)
		}
	case accel.ErrQueueFull:
		p.report.OffloadQueueFull++
		if p.flt != nil {
			p.report.Faults.CPUFallbacks++
			p.taskRecover(now, faults.LaneFailure, recoverCPUFallback, t)
		}
	default:
		if p.flt != nil {
			p.report.Faults.CPUFallbacks++
			p.taskRecover(now, faults.LaneFailure, recoverCPUFallback, t)
		}
	}
	p.execOnCore(ci, t, now)
}

// batchLess orders batch followers by the ready queue's EDF key (deadline,
// readyAt, node ID) extended with the DAG release sequence, making the order
// total — two cells' tasks can tie on the heap key, and scratch selection
// must not depend on heap layout.
func batchLess(a, b *task) bool {
	if a.dag.dag.Deadline != b.dag.dag.Deadline {
		return a.dag.dag.Deadline < b.dag.dag.Deadline
	}
	if a.readyAt != b.readyAt {
		return a.readyAt < b.readyAt
	}
	if a.dag.seq != b.dag.seq {
		return a.dag.seq < b.dag.seq
	}
	return a.node.ID < b.node.ID
}

// batchInsert keeps batchTasks[1:] the EDF-least candidates seen so far,
// sorted, capped so the whole batch (lead included) stays within limit.
func (p *Pool) batchInsert(cand *task, limit int) {
	bt := p.batchTasks
	if len(bt) < limit {
		p.batchTasks = append(bt, cand)
	} else if batchLess(cand, bt[len(bt)-1]) {
		bt[len(bt)-1] = cand
	} else {
		return
	}
	bt = p.batchTasks
	for i := len(bt) - 1; i > 1 && batchLess(bt[i], bt[i-1]); i-- {
		bt[i], bt[i-1] = bt[i-1], bt[i]
	}
}

// clearBatch drops the scratch's task references so recycled runs are never
// reachable from the pool between batches.
func (p *Pool) clearBatch() {
	for i := range p.batchTasks {
		p.batchTasks[i] = nil
	}
	p.batchTasks = p.batchTasks[:0]
}

// submitOffloadBatch coalesces the lead task's DMA window with ready
// offloadable tasks of the same kind from the lead's queue, amortizing
// SubmitCost across the batch. Scheduler-aware admission: followers join in
// EDF order and only while the no-queueing device estimate still meets their
// deadline — a task the batch would make late keeps its own core-paced
// submission. Followers the device rejects (queue full, device down) simply
// stay queued and retry through the normal dispatch path.
func (p *Pool) submitOffloadBatch(ci int, lead *task, now sim.Time) {
	kind := lead.node.Kind
	qi := p.queueIndex(lead.node.CellID)
	p.batchTasks = append(p.batchTasks[:0], lead)
	for _, cand := range p.queues[qi] {
		if cand.node.Kind != kind || cand.noOffload {
			continue
		}
		est, err := p.cfg.Accel.Expected(kind, int(cand.node.Features.Get(ran.FCodeblocks)))
		if err != nil || now+est > cand.dag.dag.Deadline {
			continue
		}
		p.batchInsert(cand, p.cfg.OffloadBatch)
	}
	p.batchCbs = p.batchCbs[:0]
	for _, bt := range p.batchTasks {
		p.batchCbs = append(p.batchCbs, int(bt.node.Features.Get(ran.FCodeblocks)))
	}
	if cap(p.batchDones) < len(p.batchTasks) {
		p.batchDones = make([]sim.Time, len(p.batchTasks))
	}
	dones := p.batchDones[:len(p.batchTasks)]
	accepted, err := p.cfg.Accel.SubmitBatch(now, kind, p.batchCbs, dones)
	if accepted == 0 {
		p.clearBatch()
		p.offloadRejected(ci, lead, now, err)
		return
	}
	run := lead.dag
	run.offloadTime += dones[0] - now
	// The core's run ref moves to the lead's completion event (net zero).
	p.eng.AtKind(dones[0], p.kOffloadDone, int64(run.id), int64(lead.node.ID))
	totalCbs := 0
	for i := 0; i < accepted; i++ {
		totalCbs += p.batchCbs[i]
	}
	for i := 1; i < accepted; i++ {
		f := p.batchTasks[i]
		frun := f.dag
		p.pc.checkLive(frun)
		p.queues[qi].removeAt(f.heapIndex)
		frun.refs++ // the completion event references the follower's run
		f.running = true
		f.started = now
		if p.tel != nil {
			delay := now - f.readyAt
			p.report.observeQueueDelay(f.node.CellID, delay)
			p.tel.hQueueUs.Observe(delay.Us())
			p.tel.trc.Emit(telemetry.Event{
				At: now, Kind: telemetry.EvTaskDispatch,
				Core: -1, Cell: int32(f.node.CellID), Slot: int32(frun.dag.Slot),
				Task: int32(f.node.Kind), Dur: delay, A: frun.seq, B: int64(f.node.ID),
			})
		}
		frun.offloadTime += dones[i] - now
		p.eng.AtKind(dones[i], p.kOffloadDone, int64(frun.id), int64(f.node.ID))
		p.report.TasksExecuted++
	}
	if accepted > 1 {
		p.report.OffloadBatches++
		p.report.BatchedTasks += uint64(accepted - 1)
		saved := sim.Time(accepted-1) * p.cfg.Accel.SubmitCost
		p.report.SubmitSaved += saved
		if p.tel != nil {
			p.tel.trc.Emit(telemetry.Event{
				At: now, Kind: telemetry.EvBatchSubmit,
				Core: int32(ci), Cell: int32(lead.node.CellID), Slot: int32(run.dag.Slot),
				Task: int32(kind), Dur: saved, A: int64(accepted), B: int64(totalCbs),
			})
		}
	}
	p.clearBatch()
	p.coreAfterTask(ci, nil, now)
}

// onReconcile is the device-fleet reconciliation loop: poll each device's
// injected reset window, propagate membership transitions to the
// accelerator, and re-partition VF queue depths when membership changed.
// Degradation is graceful by construction — a submission hitting a downed
// fleet flows through offloadRejected's CPU-fallback path.
func (p *Pool) onReconcile(now sim.Time) {
	acc := p.cfg.Accel
	changed := false
	for d := range p.devDown {
		down := p.flt.DeviceDown(d, now)
		if down == p.devDown[d] {
			continue
		}
		p.devDown[d] = down
		acc.SetDeviceDown(d, down)
		changed = true
		if p.tel != nil {
			state := int64(0)
			if down {
				state = 1
			}
			p.tel.trc.Emit(telemetry.Event{
				At: now, Kind: telemetry.EvDeviceReset,
				Core: -1, Cell: -1, Slot: -1, Task: -1,
				A: int64(d), B: state,
			})
		}
	}
	if changed {
		alive := acc.Reconcile()
		if p.tel != nil {
			p.tel.trc.Emit(telemetry.Event{
				At: now, Kind: telemetry.EvReconcile,
				Core: -1, Cell: -1, Slot: -1, Task: -1,
				A: int64(alive), B: int64(len(p.devDown)),
			})
		}
	}
}

// onOffloadTimeout fires the stuck-offload watchdog: the submitted request
// is declared lost. The task retries (with deterministic virtual-time
// backoff) while its bounded retry budget lasts; after that it is pinned to
// the CPU path, and if its DAG is already past deadline by then the DAG is
// abandoned and counted rather than left to wedge the pool.
func (p *Pool) onOffloadTimeout(t *task) {
	run := t.dag
	run.refs-- // the watchdog event just fired
	if t.done || run.dropped {
		p.maybeRecycle(run)
		return
	}
	now := p.eng.Now()
	p.report.Faults.OffloadTimeouts++
	t.running = false
	t.retries++
	if t.retries > p.flt.MaxRetries() {
		t.noOffload = true
		if now > run.dag.Deadline {
			p.taskRecover(now, faults.StuckOffload, recoverAbandon, t)
			p.abandonDAG(run, now)
			return
		}
		p.report.Faults.CPUFallbacks++
		p.taskRecover(now, faults.StuckOffload, recoverCPUFallback, t)
	} else {
		p.report.Faults.OffloadRetries++
		p.taskRecover(now, faults.StuckOffload, recoverOffloadRetry, t)
	}
	// The backoff event holds a ref: fault paths are rare, so a closure here
	// is fine — but it must keep the run alive until it fires.
	run.refs++
	p.eng.After(p.flt.Backoff(t.retries), func() {
		run.refs--
		if t.done || run.dropped {
			p.maybeRecycle(run)
			return
		}
		p.pushReady(t, p.eng.Now())
		p.dispatch(p.eng.Now())
	})
}

// abandonDAG gives up on a DAG whose recovery path ran out of road:
// remaining queued tasks are removed, the slot is recorded as a dropped
// miss, and the DAG leaves the in-flight set so one dead offload cannot
// wedge the pool. Mirrors dropExpired for a single DAG.
func (p *Pool) abandonDAG(run *dagRun, now sim.Time) {
	run.dropped = true
	for i := range run.tasks {
		t := &run.tasks[i]
		if t.done || t.running {
			continue
		}
		if t.heapIndex >= 0 {
			p.queues[p.queueIndex(t.node.CellID)].removeAt(t.heapIndex)
		}
		t.done = true
	}
	for i, d := range p.dags {
		if d == run {
			p.dags = append(p.dags[:i], p.dags[i+1:]...)
			break
		}
	}
	p.report.Faults.AbandonedDAGs++
	p.report.DAGsDropped++
	p.cfg.SLO.RecordDAG(now, int32(run.dag.CellID), now-run.dag.Release, true)
	p.report.observeDAG(run.dag.Dir, now-run.dag.Release, true)
	p.report.observeCellDAG(run.dag.CellID, true, true)
	if p.tel != nil {
		p.tel.cDrops.Inc()
		p.tel.cMisses.Inc()
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvDAGDrop,
			Core: -1, Cell: int32(run.dag.CellID), Slot: int32(run.dag.Slot), Task: -1,
			Dur: now - run.dag.Release, A: run.seq, B: int64(run.dag.Dir),
		})
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvDeadlineMiss,
			Core: -1, Cell: int32(run.dag.CellID), Slot: int32(run.dag.Slot), Task: -1,
			Dur: now - run.dag.Release, A: run.seq, B: int64(run.dag.Dir),
		})
	}
	run.retired = true
	p.maybeRecycle(run)
}

// onOffloadDone completes an accelerator task: DAG bookkeeping and
// successor release (no core is involved).
func (p *Pool) onOffloadDone(t *task) {
	now := p.eng.Now()
	t.running = false
	t.done = true
	run := t.dag
	run.refs-- // the completion event just fired
	run.unfinished--
	run.remainingWork -= t.predicted
	if run.remainingWork < 0 {
		run.remainingWork = 0
	}
	p.cfg.SLO.RecordTask(now, int32(t.node.CellID), now-t.started)
	p.report.observeTask(t.node.Kind, now-t.started)
	if p.tel != nil {
		p.tel.cTasks.Inc()
		p.tel.hTaskUs.Observe((now - t.started).Us())
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvTaskComplete,
			Core: -1, Cell: int32(t.node.CellID), Slot: int32(t.dag.dag.Slot),
			Task: int32(t.node.Kind), Dur: now - t.started, A: run.seq, B: int64(t.node.ID),
		})
		p.tel.predictSample(now, t, now-t.started)
	}
	if run.dropped {
		p.maybeRecycle(run)
		return
	}
	for _, sID := range t.node.Succs {
		st := &run.tasks[sID]
		st.missing--
		if st.missing == 0 {
			p.pushReady(st, now)
		}
	}
	if run.unfinished == 0 {
		p.finishDAG(run, now)
	}
	p.dispatch(now)
}

// onTaskDone completes the task on core ci, spawns successors, and either
// continues with a successor (the cache-locality "keep one task" rule),
// picks the EDF head, or yields the core if the scheduler shrank the pool.
func (p *Pool) onTaskDone(ci int) {
	now := p.eng.Now()
	p.accountCoreTime(now)
	c := &p.cores[ci]
	t := c.task
	c.task = nil
	c.doneEv = sim.EventHandle{}
	t.running = false
	t.done = true
	run := t.dag
	run.refs-- // the core detaches
	run.unfinished--
	run.remainingWork -= t.predicted
	if run.remainingWork < 0 {
		run.remainingWork = 0
	}
	// Online training: feed the measured runtime back.
	measured := now - t.started
	t.dag.cpuTime += measured
	if p.cfg.Predict != nil {
		p.cfg.Predict.Observe(t.node.Kind, t.node.Features, measured)
	}
	p.cfg.SLO.RecordTask(now, int32(t.node.CellID), measured)
	p.report.observeTask(t.node.Kind, measured)
	if p.tel != nil {
		p.tel.cTasks.Inc()
		p.tel.hTaskUs.Observe(measured.Us())
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvTaskComplete,
			Core: int32(ci), Cell: int32(t.node.CellID), Slot: int32(t.dag.dag.Slot),
			Task: int32(t.node.Kind), Dur: measured, A: run.seq, B: int64(t.node.ID),
		})
		p.tel.predictSample(now, t, measured)
	}

	// Spawn successors (none for a dropped DAG: its data is gone).
	var keep *task
	if run.dropped {
		p.maybeRecycle(run)
		p.coreAfterTask(ci, nil, now)
		return
	}
	for _, s := range t.node.Succs {
		st := &run.tasks[s]
		st.missing--
		if st.missing == 0 {
			if keep == nil {
				keep = st
			} else {
				p.pushReady(st, now)
			}
		}
	}
	if run.unfinished == 0 {
		p.finishDAG(run, now)
	}
	p.coreAfterTask(ci, keep, now)
}

// coreAfterTask decides what core ci does after finishing (or handing off)
// a task: drain for rotation, continue with a kept successor, pick the EDF
// head of its queue, yield if the scheduler shrank the pool, or idle.
func (p *Pool) coreAfterTask(ci int, keep *task, now sim.Time) {
	c := &p.cores[ci]
	if c.drain {
		// Rotation drain: hand this core back regardless of target.
		c.drain = false
		if keep != nil {
			p.pushReady(keep, now)
		}
		p.yieldCore(ci, now)
		p.dispatch(now)
		return
	}
	target := p.currentTarget()
	qi := p.coreQueue(ci)
	switch {
	case keep != nil:
		// Cache locality: continue with one spawned successor directly. The
		// task is ready the instant it starts, so its queueing delay is zero.
		keep.readyAt = now
		p.startTask(ci, keep, now)
		p.dispatch(now)
	case p.queues[qi].Len() > 0:
		// An owned core always drains pending work before yielding — idling
		// a held core while its queue is non-empty only adds latency.
		next := p.queues[qi].pop()
		p.startTask(ci, next, now)
	case p.ranCores > target:
		if p.cfg.ReleaseHysteresis > 0 {
			// Keep the core reserved; the periodic release sweep yields it
			// once it has lingered idle past the hysteresis.
			c.state = coreIdleRAN
			c.idleSince = now
		} else {
			p.yieldCore(ci, now)
		}
	default:
		c.state = coreIdleRAN
		c.idleSince = now
	}
}

// currentTarget re-evaluates the scheduler's desired core count using the
// current state (used at completion boundaries; the periodic tick applies
// it too).
func (p *Pool) currentTarget() int {
	now := p.eng.Now()
	target := p.cfg.Scheduler.Cores(p.schedulerState(now))
	if avail := p.stormAvail(now); target > avail {
		target = avail
	}
	return target
}

// stormAvail returns how many pool cores the RAN may own right now: all of
// them normally, fewer during an injected core-yield storm (the host yanks
// cores back for its own work; at least one always remains).
func (p *Pool) stormAvail(now sim.Time) int {
	avail := p.cfg.PoolCores
	if p.flt != nil {
		if stolen := p.flt.StolenCores(now, p.cfg.PoolCores); stolen > 0 {
			avail -= stolen
			if avail < 1 {
				avail = 1
			}
		}
	}
	return avail
}

// finishDAG records slot-processing latency and reliability accounting.
func (p *Pool) finishDAG(run *dagRun, now sim.Time) {
	for i, d := range p.dags {
		if d == run {
			p.dags = append(p.dags[:i], p.dags[i+1:]...)
			break
		}
	}
	latency := now - run.dag.Release
	missed := latency > p.cfg.Deadline
	p.cfg.SLO.RecordDAG(now, int32(run.dag.CellID), latency, missed)
	p.report.observeDAG(run.dag.Dir, latency, missed)
	p.report.observeDAGTimes(run.dag.Dir, run.cpuTime, run.offloadTime, latency)
	p.report.observeCellDAG(run.dag.CellID, missed, false)
	if p.tel != nil {
		p.tel.cDAGsDone.Inc()
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvDAGComplete,
			Core: -1, Cell: int32(run.dag.CellID), Slot: int32(run.dag.Slot), Task: -1,
			Dur: latency, A: run.seq, B: int64(run.dag.Dir),
		})
		if missed {
			p.tel.cMisses.Inc()
			p.tel.trc.Emit(telemetry.Event{
				At: now, Kind: telemetry.EvDeadlineMiss,
				Core: -1, Cell: int32(run.dag.CellID), Slot: int32(run.dag.Slot), Task: -1,
				Dur: latency, A: run.seq, B: int64(run.dag.Dir),
			})
		}
	}
	run.retired = true
	p.maybeRecycle(run)
}

// schedulerState snapshots the pool for the scheduling policy.
func (p *Pool) schedulerState(now sim.Time) scheduler.PoolState {
	st := scheduler.PoolState{
		Now:         now,
		TotalCores:  p.cfg.PoolCores,
		Utilization: p.utilEWMA,
	}
	for i := range p.cores {
		if p.cores[i].state == coreBusyRAN {
			st.RunningTasks++
		}
	}
	st.ReadyTasks = p.readyTotal()
	if st.ReadyTasks > 0 {
		var oldest sim.Time = -1
		for qi := range p.queues {
			for _, t := range p.queues[qi] {
				if oldest < 0 || t.readyAt < oldest {
					oldest = t.readyAt
				}
				if p.cfg.Accel != nil && !t.noOffload && p.cfg.Accel.Offloads(t.node.Kind) {
					st.OffloadableReady++
				}
			}
		}
		st.OldestReadyAge = now - oldest
	}
	// st.DAGs reuses the pool's scratch slice; policies must not retain it
	// past the Cores call (none do — see scheduler package contract).
	st.DAGs = p.stDAGs[:0]
	for _, run := range p.dags {
		work := run.remainingWork
		var cp sim.Time
		for i := range run.tasks {
			t := &run.tasks[i]
			if t.done {
				continue
			}
			tail := t.tailCP
			if t.running {
				elapsed := now - t.started
				if elapsed < t.predicted {
					tail -= elapsed
					work -= elapsed
				} else {
					tail -= t.predicted
					work -= t.predicted
				}
			}
			if tail > cp {
				cp = tail
			}
		}
		if work < 0 {
			work = 0
		}
		st.DAGs = append(st.DAGs, scheduler.DAGState{
			Deadline:              run.dag.Deadline,
			RemainingWork:         work,
			RemainingCriticalPath: cp,
		})
	}
	p.stDAGs = st.DAGs
	return st
}

// onSchedulerTick applies the policy's core target.
func (p *Pool) onSchedulerTick(now sim.Time) {
	if p.cfg.DropLateDAGs {
		p.dropExpired(now)
	}
	target := p.cfg.Scheduler.Cores(p.schedulerState(now))
	if p.tel != nil && target != p.tel.lastTarget {
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvSchedDecision,
			Core: int32(p.ranCores), Cell: -1, Slot: -1, Task: -1,
			A: int64(p.tel.lastTarget), B: int64(target),
		})
		p.tel.lastTarget = target
	}
	p.applyTarget(target, now)
}

// dropExpired abandons DAGs whose deadline has passed: queued tasks are
// removed, running tasks finish but spawn nothing, and the slot is recorded
// as a miss (dropped data).
func (p *Pool) dropExpired(now sim.Time) {
	kept := p.dags[:0]
	for _, run := range p.dags {
		if now <= run.dag.Deadline || run.unfinished == 0 {
			kept = append(kept, run)
			continue
		}
		run.dropped = true
		for i := range run.tasks {
			t := &run.tasks[i]
			if t.done || t.running {
				continue
			}
			if t.heapIndex >= 0 {
				p.queues[p.queueIndex(t.node.CellID)].removeAt(t.heapIndex)
			}
			t.done = true
		}
		p.report.DAGsDropped++
		p.cfg.SLO.RecordDAG(now, int32(run.dag.CellID), now-run.dag.Release, true)
		p.report.observeDAG(run.dag.Dir, now-run.dag.Release, true)
		p.report.observeCellDAG(run.dag.CellID, true, true)
		if p.tel != nil {
			p.tel.cDrops.Inc()
			p.tel.cMisses.Inc()
			p.tel.trc.Emit(telemetry.Event{
				At: now, Kind: telemetry.EvDAGDrop,
				Core: -1, Cell: int32(run.dag.CellID), Slot: int32(run.dag.Slot), Task: -1,
				Dur: now - run.dag.Release, A: run.seq, B: int64(run.dag.Dir),
			})
			p.tel.trc.Emit(telemetry.Event{
				At: now, Kind: telemetry.EvDeadlineMiss,
				Core: -1, Cell: int32(run.dag.CellID), Slot: int32(run.dag.Slot), Task: -1,
				Dur: now - run.dag.Release, A: run.seq, B: int64(run.dag.Dir),
			})
		}
		// Running tasks (and pending offload events) hold refs; the run is
		// recycled when the last of them resolves.
		run.retired = true
		p.maybeRecycle(run)
	}
	p.dags = kept
}

// applyTarget acquires or releases cores toward the target count. Policies
// that compensate for slow wakeups (Concordia) discount cores stuck in the
// waking state beyond two scheduling intervals and acquire replacements —
// the §6.2 mechanism that keeps one non-preemptible kernel episode from
// stalling a DAG.
func (p *Pool) applyTarget(target int, now sim.Time) {
	if target > p.cfg.PoolCores {
		target = p.cfg.PoolCores
	}
	stormAvail := p.stormAvail(now)
	if target > stormAvail {
		target = stormAvail
	}
	stuck := 0
	if p.cfg.Scheduler.CompensatesWakeups() {
		threshold := 2 * p.cfg.Scheduler.Interval()
		for i := range p.cores {
			if p.cores[i].state == coreWaking && now-p.cores[i].wakeStart > threshold {
				stuck++
			}
		}
	}
	for p.ranCores-stuck < target && p.ranCores < p.cfg.PoolCores {
		ci := p.acquirableCore()
		if ci < 0 {
			break
		}
		p.acquireCore(ci, now)
	}
	// Release surplus idle cores (busy cores release on completion).
	for p.ranCores-stuck > target {
		ci := p.releasableNonStuckCore(now, stuck > 0)
		if ci < 0 {
			break
		}
		p.yieldCore(ci, now)
	}
	// Yield storm: the host is yanking cores back right now, so surplus
	// non-busy cores go immediately, hysteresis notwithstanding (busy cores
	// drain at task completion through the storm-clamped currentTarget).
	for p.ranCores > stormAvail {
		ci := p.stormYieldCandidate()
		if ci < 0 {
			break
		}
		p.yieldCore(ci, now)
		p.report.Faults.StormYields++
		p.recoverTrace(now, faults.YieldStorm, recoverStormYield, -1, -1, -1)
	}
}

// stormYieldCandidate prefers idle cores, then waking ones; busy cores are
// never interrupted mid-task.
func (p *Pool) stormYieldCandidate() int {
	for i := range p.cores {
		if p.cores[i].state == coreIdleRAN {
			return i
		}
	}
	for i := range p.cores {
		if p.cores[i].state == coreWaking {
			return i
		}
	}
	return -1
}

// releasableNonStuckCore prefers idle cores that have lingered past the
// release hysteresis; when stuck compensation is active, waking cores are
// kept (they will be released once awake and surplus).
func (p *Pool) releasableNonStuckCore(now sim.Time, keepWaking bool) int {
	for i := range p.cores {
		if p.cores[i].state == coreIdleRAN && now-p.cores[i].idleSince >= p.cfg.ReleaseHysteresis {
			return i
		}
	}
	if keepWaking {
		return -1
	}
	for i := range p.cores {
		if p.cores[i].state == coreWaking {
			return i
		}
	}
	return -1
}

// acquirableCore picks the next core to acquire, preferring partitions with
// pending work when statically partitioned.
func (p *Pool) acquirableCore() int {
	if len(p.queues) > 1 {
		for i := range p.cores {
			if p.cores[i].state == coreBestEffort && p.queues[p.coreQueue(i)].Len() > 0 {
				return i
			}
		}
	}
	return p.bestEffortCore()
}

func (p *Pool) bestEffortCore() int {
	for i := range p.cores {
		if p.cores[i].state == coreBestEffort {
			return i
		}
	}
	return -1
}

// acquireCore preempts best-effort work on core ci; the RAN worker becomes
// runnable after the OS wakeup latency.
func (p *Pool) acquireCore(ci int, now sim.Time) {
	p.accountCoreTime(now)
	c := &p.cores[ci]
	c.state = coreWaking
	c.wakeStart = now
	p.ranCores++
	p.report.SchedulingEvents++
	p.report.Preemptions++
	retention := float64(p.ranCores) / float64(p.cfg.PoolCores)
	lat := p.cfg.Platform.WakeupLatency(platform.WakeupEnv{
		Interference: p.interferenceBase(),
		Retention:    retention,
	})
	p.report.observeWakeup(lat)
	if p.tel != nil {
		p.tel.cAcquires.Inc()
		active := 0
		if p.cfg.Workload != nil {
			active = len(p.cfg.Workload.ActiveAt(now))
		}
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvCoreAcquire,
			Core: int32(ci), Cell: -1, Slot: -1, Task: -1,
			A: int64(p.ranCores), B: int64(active),
		})
	}
	c.wakeEv = p.eng.AfterKind(lat, p.kCoreAwake, int64(ci), 0)
}

// interferenceBase is the workload pressure unscaled by core share (kernel
// noise follows the machine-wide workload, not the RAN's share).
func (p *Pool) interferenceBase() float64 {
	base := 0.0
	if p.cfg.Workload != nil {
		base = p.cfg.Workload.InterferenceAt(p.eng.Now())
	}
	if p.flt != nil {
		base = workloads.CombineInterference(base, p.flt.BurstInterference(p.eng.Now()))
	}
	return base
}

func (p *Pool) onCoreAwake(ci int) {
	c := &p.cores[ci]
	if c.state != coreWaking {
		return
	}
	c.wakeEv = sim.EventHandle{}
	c.state = coreIdleRAN
	c.idleSince = p.eng.Now()
	if p.tel != nil {
		wake := p.eng.Now() - c.wakeStart
		p.tel.hWakeUs.Observe(wake.Us())
		p.tel.trc.Emit(telemetry.Event{
			At: p.eng.Now(), Kind: telemetry.EvCoreAwake,
			Core: int32(ci), Cell: -1, Slot: -1, Task: -1, Dur: wake,
		})
	}
	p.dispatch(p.eng.Now())
}

// yieldCore returns core ci to best-effort workloads.
func (p *Pool) yieldCore(ci int, now sim.Time) {
	p.accountCoreTime(now)
	c := &p.cores[ci]
	if c.state == coreWaking && c.wakeEv.Valid() {
		p.eng.Cancel(c.wakeEv)
		c.wakeEv = sim.EventHandle{}
	}
	c.state = coreBestEffort
	p.ranCores--
	p.report.SchedulingEvents++
	if p.tel != nil {
		p.tel.cYields.Inc()
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvCoreYield,
			Core: int32(ci), Cell: -1, Slot: -1, Task: -1,
			A: int64(p.ranCores),
		})
	}
}

// onRotate swaps one owned core for an unowned one (the 2 ms rotation that
// lets unmigratable kernel work run on every core eventually). An idle RAN
// core swaps immediately; a busy one is marked to drain — it yields when its
// current task completes while a replacement is acquired now.
func (p *Pool) onRotate(now sim.Time) {
	if p.ranCores == 0 || p.ranCores == p.cfg.PoolCores {
		return
	}
	bi := p.bestEffortCore()
	if bi < 0 {
		return
	}
	if ci := p.idleRANCore(); ci >= 0 {
		if bj := p.partnerCore(ci); bj >= 0 {
			p.yieldCore(ci, now)
			p.acquireCore(bj, now)
			p.noteRotation(ci, bj, now)
		}
		return
	}
	for i := range p.cores {
		if p.cores[i].state == coreBusyRAN && !p.cores[i].drain {
			bj := p.partnerCore(i)
			if bj < 0 {
				continue
			}
			p.cores[i].drain = true
			p.acquireCore(bj, now)
			p.noteRotation(i, bj, now)
			return
		}
	}
	// No idle or busy candidate: move a still-waking worker to a different
	// physical core (the signal simply lands elsewhere).
	for i := range p.cores {
		if p.cores[i].state == coreWaking {
			bj := p.partnerCore(i)
			if bj < 0 {
				continue
			}
			p.yieldCore(i, now)
			p.acquireCore(bj, now)
			p.noteRotation(i, bj, now)
			return
		}
	}
	_ = bi
}

// noteRotation records one rotation swap (core from yielded, core to
// acquired) in the report and the telemetry stream.
func (p *Pool) noteRotation(from, to int, now sim.Time) {
	p.report.Rotations++
	if p.tel != nil {
		p.tel.cRotations.Inc()
		p.tel.trc.Emit(telemetry.Event{
			At: now, Kind: telemetry.EvCoreRotate,
			Core: int32(from), Cell: -1, Slot: -1, Task: -1,
			A: int64(to),
		})
	}
}

// partnerCore returns a best-effort core that can replace core ci in a
// rotation: any core in global-pool mode, a same-partition core otherwise.
func (p *Pool) partnerCore(ci int) int {
	for j := range p.cores {
		if p.cores[j].state != coreBestEffort {
			continue
		}
		if len(p.queues) == 1 || p.coreQueue(j) == p.coreQueue(ci) {
			return j
		}
	}
	return -1
}

// accountCoreTime integrates RAN-owned and best-effort core time up to now.
func (p *Pool) accountCoreTime(now sim.Time) {
	dt := now - p.lastAcc
	if dt <= 0 {
		return
	}
	p.lastAcc = now
	busy := 0
	for i := range p.cores {
		if p.cores[i].state == coreBusyRAN {
			busy++
		}
	}
	seconds := dt.Seconds()
	p.report.RANCoreSeconds += seconds * float64(p.ranCores)
	p.report.BusyCoreSeconds += seconds * float64(busy)
	be := float64(p.cfg.PoolCores - p.ranCores)
	p.report.BestEffortCoreSeconds += seconds * be
	if p.cfg.Workload != nil {
		active := p.cfg.Workload.ActiveAt(now)
		if len(active) > 0 {
			share := seconds * be / float64(len(active))
			for _, k := range active {
				p.report.workloadCoreSeconds[k] += share
			}
		}
	}
}

func (c coreState) String() string {
	switch c {
	case coreBestEffort:
		return "best-effort"
	case coreWaking:
		return "waking"
	case coreIdleRAN:
		return "idle"
	case coreBusyRAN:
		return "busy"
	default:
		return fmt.Sprintf("coreState(%d)", int(c))
	}
}
