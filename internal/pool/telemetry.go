package pool

import (
	"concordia/internal/accel"
	"concordia/internal/faults"
	"concordia/internal/sim"
	"concordia/internal/telemetry"
)

// telemetryHooks pre-resolves every metric handle the pool's hot paths touch
// so an instrumentation site is one nil check plus direct field increments —
// no map lookups inside the simulation loop. A nil *telemetryHooks (the
// default) disables telemetry entirely.
type telemetryHooks struct {
	rec *telemetry.Recorder
	trc *telemetry.Tracer

	cSimEvents    *telemetry.Counter
	cTasks        *telemetry.Counter
	cDAGsReleased *telemetry.Counter
	cDAGsDone     *telemetry.Counter
	cMisses       *telemetry.Counter
	cDrops        *telemetry.Counter
	cAcquires     *telemetry.Counter
	cYields       *telemetry.Counter
	cRotations    *telemetry.Counter
	cOffloads     *telemetry.Counter

	// Fault counters exist only when the injector is enabled, so fault-free
	// runs export byte-identical metrics CSVs (columns are registry-driven).
	cFaults   *telemetry.Counter
	cRecovers *telemetry.Counter

	hQueueUs *telemetry.Histogram
	hTaskUs  *telemetry.Histogram
	hWakeUs  *telemetry.Histogram

	gRANCores    *telemetry.Gauge
	gBusyCores   *telemetry.Gauge
	gReady       *telemetry.Gauge
	gInflight    *telemetry.Gauge
	gInterf      *telemetry.Gauge
	gPendingPeak *telemetry.Gauge

	// lastTarget dedups scheduler-decision events: the 20 µs tick emits only
	// when the core target changes, not 50 000 times per second.
	lastTarget int
	// pendingPeak is the engine event-queue high-water mark since the last
	// metrics sample (fed by the sim.Engine probe).
	pendingPeak int
}

func newTelemetryHooks(rec *telemetry.Recorder, faultsEnabled bool) *telemetryHooks {
	m := rec.Metrics
	t := &telemetryHooks{
		rec: rec,
		trc: rec.Trace,

		cSimEvents:    m.Counter("sim_events"),
		cTasks:        m.Counter("tasks_completed"),
		cDAGsReleased: m.Counter("dags_released"),
		cDAGsDone:     m.Counter("dags_completed"),
		cMisses:       m.Counter("deadline_misses"),
		cDrops:        m.Counter("dags_dropped"),
		cAcquires:     m.Counter("core_acquires"),
		cYields:       m.Counter("core_yields"),
		cRotations:    m.Counter("rotations"),
		cOffloads:     m.Counter("offloads"),

		hQueueUs: m.Histogram("queue_delay_us", telemetry.DefaultLatencyBucketsUs),
		hTaskUs:  m.Histogram("task_runtime_us", telemetry.DefaultLatencyBucketsUs),
		hWakeUs:  m.Histogram("wakeup_us", telemetry.DefaultLatencyBucketsUs),

		gRANCores:    m.Gauge("ran_cores"),
		gBusyCores:   m.Gauge("busy_cores"),
		gReady:       m.Gauge("ready_tasks"),
		gInflight:    m.Gauge("inflight_dags"),
		gInterf:      m.Gauge("interference"),
		gPendingPeak: m.Gauge("sim_pending_peak"),

		lastTarget: -1,
	}
	if faultsEnabled {
		t.cFaults = m.Counter("faults_injected")
		t.cRecovers = m.Counter("fault_recoveries")
	}
	return t
}

// Recovery actions carried in the B field of EvFaultRecover events.
const (
	recoverCPUFallback = iota
	recoverOffloadRetry
	recoverAbandon
	recoverStormYield
)

// faultTrace emits one fault-injection event; a no-op when telemetry is off.
// Only called from fault paths, so the counters are always registered.
func (p *Pool) faultTrace(now sim.Time, class faults.Class, cell, slot, taskKind int32, seq int64, detail sim.Time) {
	// The SLO tracker's online miss attribution wants fault sightings even
	// when the event tracer is off (both methods are nil-safe).
	p.cfg.SLO.NoteFault(now, cell, class)
	if p.tel == nil {
		return
	}
	p.tel.cFaults.Inc()
	p.tel.trc.Emit(telemetry.Event{
		At: now, Kind: telemetry.EvFaultInject,
		Core: -1, Cell: cell, Slot: slot, Task: taskKind,
		Dur: detail, A: int64(class), B: seq,
	})
}

// recoverTrace emits one fault-recovery event; a no-op when telemetry is off.
func (p *Pool) recoverTrace(now sim.Time, class faults.Class, action int64, cell, slot, taskKind int32) {
	if p.tel == nil {
		return
	}
	p.tel.cRecovers.Inc()
	p.tel.trc.Emit(telemetry.Event{
		At: now, Kind: telemetry.EvFaultRecover,
		Core: -1, Cell: cell, Slot: slot, Task: taskKind,
		A: int64(class), B: action,
	})
}

// predictSample emits one predicted-vs-observed runtime pair at task
// completion. Per the EvPredictSample contract the Core field carries the
// DAG-local task ID (the node, not a core) so analysis can join the sample
// to its timeline; A is the prediction fixed at release time.
func (t *telemetryHooks) predictSample(now sim.Time, tk *task, observed sim.Time) {
	t.trc.Emit(telemetry.Event{
		At: now, Kind: telemetry.EvPredictSample,
		Core: int32(tk.node.ID), Cell: int32(tk.node.CellID), Slot: int32(tk.dag.dag.Slot),
		Task: int32(tk.node.Kind), Dur: observed, A: int64(tk.predicted), B: tk.dag.seq,
	})
}

func (p *Pool) taskFault(now sim.Time, class faults.Class, t *task, detail sim.Time) {
	p.faultTrace(now, class, int32(t.node.CellID), int32(t.dag.dag.Slot), int32(t.node.Kind), t.dag.seq, detail)
}

func (p *Pool) taskRecover(now sim.Time, class faults.Class, action int64, t *task) {
	p.recoverTrace(now, class, action, int32(t.node.CellID), int32(t.dag.dag.Slot), int32(t.node.Kind))
}

// attach installs the engine and accelerator probes. Called once from New
// when telemetry is enabled.
func (t *telemetryHooks) attach(p *Pool) {
	p.eng.SetProbe(func(at sim.Time, pending int) {
		t.cSimEvents.Inc()
		if pending > t.pendingPeak {
			t.pendingPeak = pending
		}
	})
	if p.cfg.Accel != nil {
		p.cfg.Accel.Probe = func(r accel.OffloadRecord) {
			t.cOffloads.Inc()
			t.trc.Emit(telemetry.Event{
				At: r.Start, Kind: telemetry.EvOffloadSpan,
				Core: -1, Cell: -1, Slot: -1, Task: int32(r.Kind),
				Dur: r.Done - r.Start, A: int64(r.Lane), B: int64(r.Codeblocks),
			})
		}
	}
}

// onSample records one metrics time-series row and the interference counter
// event. Driven by a per-slot (or Options.SamplePeriod) sim ticker.
func (p *Pool) onSample(now sim.Time) {
	t := p.tel
	busy := 0
	for i := range p.cores {
		if p.cores[i].state == coreBusyRAN {
			busy++
		}
	}
	t.gRANCores.Set(float64(p.ranCores))
	t.gBusyCores.Set(float64(busy))
	t.gReady.Set(float64(p.readyTotal()))
	t.gInflight.Set(float64(len(p.dags)))
	interf := p.interferenceBase()
	t.gInterf.Set(interf)
	t.gPendingPeak.Set(float64(t.pendingPeak))
	t.pendingPeak = 0
	t.rec.Metrics.Sample(now)
	t.trc.Emit(telemetry.Event{
		At: now, Kind: telemetry.EvInterference,
		Core: -1, Cell: -1, Slot: -1, Task: -1,
		A: int64(interf*1000 + 0.5),
	})
}
