package pool

import (
	"testing"

	"concordia/internal/faults"
	"concordia/internal/ran"
	"concordia/internal/scheduler"
	"concordia/internal/sim"
	"concordia/internal/telemetry"
	"concordia/internal/workloads"
)

// The telemetry-off contract: a nil Recorder makes every instrumentation
// site a single nil check — no allocations, no map lookups. These tests pin
// that down so tracing off truly costs nothing.

// TestNilTelemetryZeroAlloc asserts the disabled-path emission helpers
// allocate nothing.
func TestNilTelemetryZeroAlloc(t *testing.T) {
	p := &Pool{} // tel == nil: the disabled path
	if n := testing.AllocsPerRun(100, func() {
		p.faultTrace(0, faults.LaneFailure, 0, 0, 0, 1, 0)
		p.recoverTrace(0, faults.LaneFailure, recoverCPUFallback, 0, 0, 0)
	}); n != 0 {
		t.Errorf("nil-telemetry fault hooks allocated %.1f per run, want 0", n)
	}

	var tr *telemetry.Tracer
	var ev telemetry.Event
	if n := testing.AllocsPerRun(100, func() {
		tr.Emit(ev)
	}); n != 0 {
		t.Errorf("nil Tracer.Emit allocated %.1f per run, want 0", n)
	}
}

// TestTelemetryOffMatchesBaseline asserts the nil-Recorder run is not just
// cheap but invisible: the report bytes are identical with telemetry off,
// so the guard branches cannot perturb the simulation.
func TestTelemetryOffMatchesBaseline(t *testing.T) {
	base := run(t, testConfig(scheduler.NewConcordia(), workloads.Redis, 3), sim.Second).String()
	cfg := testConfig(scheduler.NewConcordia(), workloads.Redis, 3)
	cfg.Telemetry = telemetry.New(telemetry.Options{})
	instrumented := run(t, cfg, sim.Second).String()
	if base != instrumented {
		t.Error("telemetry changed the report output")
	}
}

// TestEnqueueDispatchZeroAlloc pins the readyQueue contract (DESIGN.md §5f):
// once the heap's backing array has grown, a full enqueue → dispatch scan →
// drain cycle allocates nothing. The pool has no idle cores, so dispatch
// runs its scan and leaves the tasks queued — exactly the saturated-slot
// steady state where allocation churn would hurt most.
func TestEnqueueDispatchZeroAlloc(t *testing.T) {
	d := &ran.DAG{Deadline: 100 * sim.Microsecond}
	run := &dagRun{dag: d}
	const n = 32
	nodes := make([]ran.Task, n)
	tasks := make([]task, n)
	for i := range tasks {
		nodes[i] = ran.Task{ID: i}
		tasks[i] = task{dag: run, node: &nodes[i], heapIndex: -1}
	}
	p := &Pool{queues: make([]readyQueue, 1)}
	cycle := func() {
		for i := range tasks {
			p.enqueue(&tasks[i], sim.Time(i*7%13))
		}
		for p.queues[0].Len() > 0 {
			p.queues[0].pop()
		}
	}
	cycle() // grow the heap's backing array once
	if a := testing.AllocsPerRun(100, cycle); a != 0 {
		t.Errorf("warmed enqueue/dispatch cycle allocated %.1f per run, want 0", a)
	}
}

// TestRunFreelistZeroAlloc pins the dagRun/DAG freelist contract: after the
// first acquire grows the run table and task slab, the admit → retire →
// recycle cycle allocates nothing and hands back the same recycled objects.
func TestRunFreelistZeroAlloc(t *testing.T) {
	p := &Pool{}
	d := p.getDAG()
	d.Tasks = make([]*ran.Task, 8) // acquireRun sizes the task slab from this
	var first *dagRun
	leaked := false
	cycle := func() {
		dag := p.getDAG()
		run := p.acquireRun(dag)
		if first == nil {
			first = run
		} else if run != first || dag != d {
			leaked = true
		}
		run.retired = true
		p.maybeRecycle(run)
	}
	p.putDAG(d)
	cycle() // grow runTable, freeRuns, freeDAGs and the task slab once
	if a := testing.AllocsPerRun(100, cycle); a != 0 {
		t.Errorf("warmed run freelist cycle allocated %.1f per run, want 0", a)
	}
	if leaked {
		t.Error("freelist cycle did not recycle the same dagRun/DAG objects")
	}
}

// BenchmarkNilTelemetryEmit measures the disabled fast path; allocs/op must
// read 0 in BENCH_pool.json.
func BenchmarkNilTelemetryEmit(b *testing.B) {
	p := &Pool{}
	var tr *telemetry.Tracer
	var ev telemetry.Event
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.faultTrace(0, faults.LaneFailure, 0, 0, 0, 1, 0)
		tr.Emit(ev)
	}
}

// BenchmarkPoolSecondTelemetry is BenchmarkPoolSecond with the tracer on —
// the two rows side by side in BENCH_pool.json are the observability tax.
func BenchmarkPoolSecondTelemetry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := testConfig(scheduler.NewConcordia(), workloads.Redis, uint64(i))
		cfg.Telemetry = telemetry.New(telemetry.Options{})
		p, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		p.Run(sim.Second)
	}
}
