package pool

import (
	"fmt"
	"strings"

	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/sim"
	"concordia/internal/stats"
	"concordia/internal/workloads"
)

// Report accumulates everything the §6 experiments read out of a run.
type Report struct {
	Duration sim.Time

	Slots         uint64
	DAGsReleased  uint64
	DAGsCompleted uint64
	TasksExecuted uint64
	Misses        uint64
	DAGsDropped   uint64

	// Slot-processing latency distributions (µs), uplink and downlink.
	LatencyUL *stats.TailRecorder
	LatencyDL *stats.TailRecorder
	// Latency across both directions.
	Latency *stats.TailRecorder

	// Scheduling events (yield/acquire transitions) and wakeup latencies.
	SchedulingEvents uint64
	Preemptions      uint64
	Rotations        uint64
	WakeupHistUs     *stats.Log2Histogram

	// Core-time integrals (core-seconds).
	RANCoreSeconds        float64
	BusyCoreSeconds       float64
	BestEffortCoreSeconds float64

	// Per-task-kind runtime reservoirs (ns), for predictor analysis.
	TaskRuntimes map[ran.TaskKind]*stats.Reservoir

	// Per-direction execution-time splits for the Table 4 analysis.
	CPUTimeUL, CPUTimeDL         sim.Time
	OffloadTimeUL, OffloadTimeDL sim.Time
	MakespanUL, MakespanDL       sim.Time
	CountUL, CountDL             uint64

	// PerCell breaks deadline misses and queueing delay down by cell — the
	// view that shows whether one overloaded cell is starving its neighbours
	// (Fig 4b's failure mode) or the pool is spreading the pain evenly.
	PerCell []CellStats

	// Offload batching and VF-queue accounting (all zero — and absent from
	// String — unless batching or a bounded queue depth is configured).
	// OffloadBatches counts coalesced DMA transfers (≥2 requests);
	// BatchedTasks counts the follower tasks that skipped their own submit
	// window; SubmitSaved integrates the CPU submit time amortized away;
	// OffloadQueueFull counts submissions rejected by VF backpressure.
	OffloadBatches   uint64
	BatchedTasks     uint64
	SubmitSaved      sim.Time
	OffloadQueueFull uint64

	// Faults aggregates chaos-run accounting: injected faults per class plus
	// the recovery actions the pool took. All-zero when no injector is
	// attached; FaultsEnabled gates the report section so fault-free output
	// stays byte-identical to a build without fault injection.
	Faults        FaultStats
	FaultsEnabled bool

	workloadCoreSeconds map[workloads.Kind]float64

	poolCores int
	workload  *workloads.Schedule
}

// FaultStats counts injected faults and the pool's recovery actions during a
// chaos run (internal/faults). Injection counts come from the injector at
// the end of the run; recovery counts accumulate at the recovery sites.
type FaultStats struct {
	// Injected faults, per class.
	LaneFailures     uint64
	StuckOffloads    uint64
	Overruns         uint64
	Bursts           uint64
	Storms           uint64
	FronthaulLate    uint64
	FronthaulDropped uint64
	DeviceResets     uint64
	// Recovery actions.
	OffloadTimeouts uint64 // stuck-offload watchdog firings
	OffloadRetries  uint64 // offload re-submissions after a timeout
	CPUFallbacks    uint64 // offloadable tasks recovered on a CPU core
	StormYields     uint64 // cores yanked by yield storms
	AbandonedDAGs   uint64 // DAGs abandoned after exhausted retries past deadline
}

// Injected sums all injected faults.
func (f FaultStats) Injected() uint64 {
	return f.LaneFailures + f.StuckOffloads + f.Overruns + f.Bursts +
		f.Storms + f.FronthaulLate + f.FronthaulDropped + f.DeviceResets
}

// Recoveries sums all recovery actions.
func (f FaultStats) Recoveries() uint64 {
	return f.OffloadTimeouts + f.OffloadRetries + f.CPUFallbacks +
		f.StormYields + f.AbandonedDAGs
}

// CellStats is the per-cell reliability and queueing-delay breakdown.
type CellStats struct {
	Cell int
	// DAGs counts completed (or dropped) DAG instances for the cell; Misses
	// and Dropped are the subsets past deadline and abandoned respectively.
	DAGs    uint64
	Misses  uint64
	Dropped uint64
	// Queueing delay of the cell's tasks (ready-to-dispatch), microseconds.
	// Populated only when telemetry is enabled — the per-dispatch observation
	// rides the instrumented path so the disabled hot loop stays untouched.
	// The sum is deterministic: the simulation loop observes tasks in virtual
	// event order regardless of -workers.
	QueueDelayObs   uint64
	QueueDelaySumUs float64
	QueueDelayMaxUs float64
}

// MissRate returns the cell's deadline-miss fraction.
func (c CellStats) MissRate() float64 {
	if c.DAGs == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.DAGs)
}

// AvgQueueDelayUs returns the cell's mean task queueing delay in µs.
func (c CellStats) AvgQueueDelayUs() float64 {
	if c.QueueDelayObs == 0 {
		return 0
	}
	return c.QueueDelaySumUs / float64(c.QueueDelayObs)
}

func newReport(cfg Config) *Report {
	r := rng.New(cfg.Seed ^ 0x5ee0)
	perCell := make([]CellStats, len(cfg.Cells))
	for i := range perCell {
		perCell[i].Cell = i
	}
	return &Report{
		PerCell:             perCell,
		LatencyUL:           stats.NewTailRecorder(4096, 8192, r.Intn),
		LatencyDL:           stats.NewTailRecorder(4096, 8192, r.Intn),
		Latency:             stats.NewTailRecorder(4096, 8192, r.Intn),
		WakeupHistUs:        stats.NewLog2Histogram(),
		TaskRuntimes:        map[ran.TaskKind]*stats.Reservoir{},
		workloadCoreSeconds: map[workloads.Kind]float64{},
		poolCores:           cfg.PoolCores,
		workload:            cfg.Workload,
	}
}

func (r *Report) observeDAG(dir ran.SlotDir, latency sim.Time, missed bool) {
	r.DAGsCompleted++
	if missed {
		r.Misses++
	}
	us := latency.Us()
	r.Latency.Observe(us)
	if dir == ran.Uplink {
		r.LatencyUL.Observe(us)
	} else {
		r.LatencyDL.Observe(us)
	}
}

// observeCellDAG records one finished or dropped DAG against its cell.
func (r *Report) observeCellDAG(cell int, missed, dropped bool) {
	if cell < 0 || cell >= len(r.PerCell) {
		return
	}
	c := &r.PerCell[cell]
	c.DAGs++
	if missed {
		c.Misses++
	}
	if dropped {
		c.Dropped++
	}
}

// observeQueueDelay records one task's ready-to-dispatch delay against its
// cell.
func (r *Report) observeQueueDelay(cell int, delay sim.Time) {
	if cell < 0 || cell >= len(r.PerCell) {
		return
	}
	c := &r.PerCell[cell]
	us := delay.Us()
	c.QueueDelayObs++
	c.QueueDelaySumUs += us
	if us > c.QueueDelayMaxUs {
		c.QueueDelayMaxUs = us
	}
}

// observeDAGTimes records the per-direction CPU/offload/makespan split.
func (r *Report) observeDAGTimes(dir ran.SlotDir, cpu, offload, makespan sim.Time) {
	if dir == ran.Uplink {
		r.CPUTimeUL += cpu
		r.OffloadTimeUL += offload
		r.MakespanUL += makespan
		r.CountUL++
	} else {
		r.CPUTimeDL += cpu
		r.OffloadTimeDL += offload
		r.MakespanDL += makespan
		r.CountDL++
	}
}

// AvgCPUPerDAG returns the mean CPU (non-offloaded) processing time per DAG
// in the given direction — Table 4's "non-offloaded tasks" column.
func (r *Report) AvgCPUPerDAG(dir ran.SlotDir) sim.Time {
	if dir == ran.Uplink {
		if r.CountUL == 0 {
			return 0
		}
		return r.CPUTimeUL / sim.Time(r.CountUL)
	}
	if r.CountDL == 0 {
		return 0
	}
	return r.CPUTimeDL / sim.Time(r.CountDL)
}

// AvgMakespanPerDAG returns the mean wall-clock slot processing time per DAG
// in the given direction — Table 4's "total processing" column.
func (r *Report) AvgMakespanPerDAG(dir ran.SlotDir) sim.Time {
	if dir == ran.Uplink {
		if r.CountUL == 0 {
			return 0
		}
		return r.MakespanUL / sim.Time(r.CountUL)
	}
	if r.CountDL == 0 {
		return 0
	}
	return r.MakespanDL / sim.Time(r.CountDL)
}

func (r *Report) observeWakeup(lat sim.Time) {
	r.WakeupHistUs.Observe(uint64(lat.Us()))
}

func (r *Report) observeTask(kind ran.TaskKind, runtime sim.Time) {
	res, ok := r.TaskRuntimes[kind]
	if !ok {
		rr := rng.New(uint64(kind) + 77)
		res = stats.NewReservoir(4096, rr.Intn)
		r.TaskRuntimes[kind] = res
	}
	res.Observe(float64(runtime))
}

func (r *Report) finish(duration sim.Time, cfg Config) {
	r.Duration = duration
}

// Reliability returns the fraction of completed DAGs that met the deadline.
func (r *Report) Reliability() float64 {
	if r.DAGsCompleted == 0 {
		return 1
	}
	return 1 - float64(r.Misses)/float64(r.DAGsCompleted)
}

// ReclaimedFraction is the share of pool core-time handed to best-effort
// workloads — the y-axis of Fig 8a.
func (r *Report) ReclaimedFraction() float64 {
	total := r.Duration.Seconds() * float64(r.poolCores)
	if total == 0 {
		return 0
	}
	return r.BestEffortCoreSeconds / total
}

// RANUtilization is busy core-time over total pool core-time (the Fig 4a
// metric uses busy over owned; both are exposed).
func (r *Report) RANUtilization() float64 {
	total := r.Duration.Seconds() * float64(r.poolCores)
	if total == 0 {
		return 0
	}
	return r.BusyCoreSeconds / total
}

// OwnedUtilization is busy core-time over RAN-owned core-time.
func (r *Report) OwnedUtilization() float64 {
	if r.RANCoreSeconds == 0 {
		return 0
	}
	return r.BusyCoreSeconds / r.RANCoreSeconds
}

// IdealReclaimable is the upper bound of Fig 8a: every core-second not spent
// actually executing RAN tasks.
func (r *Report) IdealReclaimable() float64 {
	total := r.Duration.Seconds() * float64(r.poolCores)
	if total == 0 {
		return 0
	}
	return (total - r.BusyCoreSeconds) / total
}

// CoreChurnPerMs is the scheduling-event rate, the driver of the cache
// counters in Fig 9.
func (r *Report) CoreChurnPerMs() float64 {
	ms := r.Duration.Ms()
	if ms == 0 {
		return 0
	}
	return float64(r.SchedulingEvents) / ms
}

// TailLatencyUs returns the q-quantile of slot-processing latency in µs
// across both directions.
func (r *Report) TailLatencyUs(q float64) float64 { return r.Latency.Quantile(q) }

// WorkloadThroughput returns achieved ops for the given workload over the
// run, using the granted core-time and the preemption-driven disruption
// index.
func (r *Report) WorkloadThroughput(k workloads.Kind) float64 {
	p, ok := workloads.ProfileOf(k)
	if !ok {
		return 0
	}
	cs := r.workloadCoreSeconds[k]
	if cs <= 0 {
		return 0
	}
	// Guard the preemption-rate division: a run that granted no best-effort
	// core-time (or an empty report) would otherwise produce NaN here and
	// propagate it into CSV/metrics exports.
	preemptRate := 0.0
	if r.BestEffortCoreSeconds > 0 {
		preemptRate = float64(r.Preemptions) / r.BestEffortCoreSeconds
	}
	return p.Throughput(cs, workloads.Disruption(preemptRate))
}

// WorkloadCoreSeconds returns the core-time granted to workload k.
func (r *Report) WorkloadCoreSeconds(k workloads.Kind) float64 {
	return r.workloadCoreSeconds[k]
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "duration        %v\n", r.Duration)
	fmt.Fprintf(&sb, "slots           %d\n", r.Slots)
	fmt.Fprintf(&sb, "dags            %d completed, %d missed (reliability %.5f%%)\n",
		r.DAGsCompleted, r.Misses, 100*r.Reliability())
	fmt.Fprintf(&sb, "tasks           %d\n", r.TasksExecuted)
	fmt.Fprintf(&sb, "latency p99.99  %.0f us, p99.999 %.0f us, max %.0f us\n",
		r.TailLatencyUs(0.9999), r.TailLatencyUs(0.99999), r.Latency.Max())
	fmt.Fprintf(&sb, "reclaimed       %.1f%% (ideal bound %.1f%%)\n",
		100*r.ReclaimedFraction(), 100*r.IdealReclaimable())
	fmt.Fprintf(&sb, "ran util        %.1f%% of pool, %.1f%% of owned\n",
		100*r.RANUtilization(), 100*r.OwnedUtilization())
	fmt.Fprintf(&sb, "sched events    %d (%.2f per ms), %d preemptions, %d rotations\n",
		r.SchedulingEvents, r.CoreChurnPerMs(), r.Preemptions, r.Rotations)
	if r.OffloadBatches > 0 || r.OffloadQueueFull > 0 {
		fmt.Fprintf(&sb, "offload batch   %d batches, %d coalesced, %v submit saved, %d queue-full rejections\n",
			r.OffloadBatches, r.BatchedTasks, r.SubmitSaved, r.OffloadQueueFull)
	}
	if r.FaultsEnabled {
		f := r.Faults
		fmt.Fprintf(&sb, "faults          %d injected (%d lane, %d stuck, %d overrun, %d burst, %d storm, %d late, %d dropped-fh, %d reset)\n",
			f.Injected(), f.LaneFailures, f.StuckOffloads, f.Overruns,
			f.Bursts, f.Storms, f.FronthaulLate, f.FronthaulDropped, f.DeviceResets)
		fmt.Fprintf(&sb, "recovery        %d timeouts, %d retries, %d cpu fallbacks, %d storm yields, %d dags abandoned\n",
			f.OffloadTimeouts, f.OffloadRetries, f.CPUFallbacks, f.StormYields, f.AbandonedDAGs)
	}
	return sb.String()
}

// PerCellString renders the per-cell deadline and queueing-delay table.
func (r *Report) PerCellString() string {
	var sb strings.Builder
	sb.WriteString("cell   dags     misses  dropped  miss%     qdelay avg/max us\n")
	for _, c := range r.PerCell {
		fmt.Fprintf(&sb, "%-6d %-8d %-7d %-8d %-9.5f %.1f / %.1f\n",
			c.Cell, c.DAGs, c.Misses, c.Dropped, 100*c.MissRate(),
			c.AvgQueueDelayUs(), c.QueueDelayMaxUs)
	}
	return sb.String()
}
