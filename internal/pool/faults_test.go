package pool

import (
	"math"
	"testing"

	"concordia/internal/accel"
	"concordia/internal/faults"
	"concordia/internal/scheduler"
	"concordia/internal/sim"
	"concordia/internal/workloads"
)

// faultConfig builds the accelerated chaos testbed: the fast 20 MHz test
// scenario with the modeled FPGA attached so offload fault classes have a
// path to act on.
func faultConfig(seed uint64, fc *faults.Config) Config {
	cfg := testConfig(scheduler.NewConcordia(), workloads.None, seed)
	cfg.Accel = accel.DefaultFPGA()
	cfg.Faults = fc
	return cfg
}

func TestFaultsDisabledByteIdentical(t *testing.T) {
	// A nil Faults config, a non-nil all-zero config, and the pre-injector
	// configuration shape must all produce byte-identical reports: the
	// injector may not perturb any RNG stream when disabled.
	base := run(t, faultConfig(11, nil), 2*sim.Second).String()
	zero := run(t, faultConfig(11, &faults.Config{}), 2*sim.Second).String()
	if base != zero {
		t.Fatalf("all-zero faults config changed the run:\n%s\nvs\n%s", base, zero)
	}
}

func TestFaultsDeterministicAcrossRuns(t *testing.T) {
	fc := &faults.Config{LaneFailure: 0.1, StuckOffload: 0.05, Overrun: 0.05,
		BurstPerSec: 5, StormPerSec: 2, FronthaulLate: 0.05, FronthaulDrop: 0.02}
	a := run(t, faultConfig(12, fc), 2*sim.Second)
	b := run(t, faultConfig(12, fc), 2*sim.Second)
	if a.String() != b.String() {
		t.Fatalf("chaos run not deterministic:\n%s\nvs\n%s", a, b)
	}
	if a.Faults.Injected() == 0 {
		t.Fatal("no faults injected at these rates")
	}
}

func TestStuckOffloadRecoveryNoWedge(t *testing.T) {
	// Every offload sticks. The watchdog must time each one out, retry with
	// backoff, and pin tasks to the CPU path once the budget is exhausted —
	// the run must still complete DAGs rather than wedging.
	fc := &faults.Config{StuckOffload: 1.0}
	r := run(t, faultConfig(13, fc), 1*sim.Second)
	if r.DAGsCompleted == 0 {
		t.Fatal("pool wedged: no DAGs completed with all offloads stuck")
	}
	if r.Faults.OffloadTimeouts == 0 {
		t.Fatal("no watchdog timeouts recorded")
	}
	if r.Faults.OffloadRetries == 0 {
		t.Fatal("no offload retries recorded")
	}
	if r.Faults.CPUFallbacks == 0 {
		t.Fatal("no CPU fallbacks after exhausted retries")
	}
	if r.Faults.StuckOffloads == 0 {
		t.Fatal("injector counted no stuck offloads")
	}
}

func TestLaneFailureFallsBackToCPU(t *testing.T) {
	fc := &faults.Config{LaneFailure: 1.0}
	r := run(t, faultConfig(14, fc), 1*sim.Second)
	if r.DAGsCompleted == 0 {
		t.Fatal("no DAGs completed with all lanes failing")
	}
	if r.Faults.LaneFailures == 0 || r.Faults.CPUFallbacks == 0 {
		t.Fatalf("lane failures not recovered: %+v", r.Faults)
	}
	if r.Faults.LaneFailures != r.Faults.CPUFallbacks {
		t.Fatalf("every lane failure must fall back exactly once: %d failures, %d fallbacks",
			r.Faults.LaneFailures, r.Faults.CPUFallbacks)
	}
}

func TestZeroLaneAcceleratorFallsBackToCPU(t *testing.T) {
	// Regression: an accelerator built as a struct literal with zero lanes
	// used to panic (index out of range) on the first Submit; now Submit
	// reports ErrNoLanes and the pool executes the task in software.
	cfg := faultConfig(15, nil)
	cfg.Accel = &accel.Accelerator{
		Lanes:        0,
		PerCodeblock: accel.DefaultFPGA().PerCodeblock,
		SubmitCost:   accel.DefaultFPGA().SubmitCost,
	}
	r := run(t, cfg, 1*sim.Second)
	if r.DAGsCompleted == 0 {
		t.Fatal("no DAGs completed with a zero-lane accelerator")
	}
	if rel := r.Reliability(); rel < 0.5 {
		t.Fatalf("reliability %.3f collapsed on CPU fallback", rel)
	}
}

func TestOverrunInflatesTail(t *testing.T) {
	base := run(t, faultConfig(16, nil), 2*sim.Second)
	fc := &faults.Config{Overrun: 0.3, OverrunFactor: 8}
	r := run(t, faultConfig(16, fc), 2*sim.Second)
	if r.Faults.Overruns == 0 {
		t.Fatal("no overruns injected")
	}
	if r.TailLatencyUs(0.9999) <= base.TailLatencyUs(0.9999) {
		t.Fatalf("overruns did not inflate the tail: %v vs baseline %v",
			r.TailLatencyUs(0.9999), base.TailLatencyUs(0.9999))
	}
}

func TestYieldStormShrinksPool(t *testing.T) {
	fc := &faults.Config{StormPerSec: 50, StormDuration: sim.FromMs(5), StormCores: 5}
	r := run(t, faultConfig(17, fc), 2*sim.Second)
	if r.Faults.Storms == 0 {
		t.Fatal("no storms injected")
	}
	if r.DAGsCompleted == 0 {
		t.Fatal("no DAGs completed under core-yield storms")
	}
}

func TestFronthaulDropsAndLateArrivals(t *testing.T) {
	fc := &faults.Config{FronthaulDrop: 0.3, FronthaulLate: 0.3, LateDelay: sim.FromUs(400)}
	base := run(t, faultConfig(18, nil), 2*sim.Second)
	r := run(t, faultConfig(18, fc), 2*sim.Second)
	if r.Faults.FronthaulDropped == 0 || r.Faults.FronthaulLate == 0 {
		t.Fatalf("fronthaul faults not injected: %+v", r.Faults)
	}
	// Dropped cell-slots never release their PHY DAGs.
	if r.DAGsReleased >= base.DAGsReleased {
		t.Fatalf("drops did not reduce released DAGs: %d vs baseline %d",
			r.DAGsReleased, base.DAGsReleased)
	}
	if r.DAGsCompleted == 0 {
		t.Fatal("no DAGs completed under fronthaul faults")
	}
}

func TestAbandonAfterExhaustedRetries(t *testing.T) {
	// Stuck offloads with a long watchdog and no retries: by the time the
	// timeout fires the DAG is past its deadline, so the pool must abandon
	// it (and count it) instead of wedging on unfinished work.
	fc := &faults.Config{
		StuckOffload: 1.0,
		StuckTimeout: sim.FromMs(4), // each watchdog round overshoots the 2 ms deadline
		MaxRetries:   1,
	}
	r := run(t, faultConfig(19, fc), 1*sim.Second)
	if r.Faults.AbandonedDAGs == 0 {
		t.Fatalf("no DAGs abandoned with deadline-overshooting stuck offloads: %+v", r.Faults)
	}
	if r.DAGsDropped == 0 {
		t.Fatal("abandoned DAGs not counted as dropped")
	}
}

func TestWorkloadThroughputNoBestEffortTimeNotNaN(t *testing.T) {
	// Regression: a report whose best-effort core-time is zero used to
	// compute preemptions/0 = NaN and propagate it through the disruption
	// index into the throughput figure.
	cfg := testConfig(scheduler.NewConcordia(), workloads.Redis, 20)
	r := newReport(cfg)
	r.workloadCoreSeconds[workloads.Redis] = 10
	r.BestEffortCoreSeconds = 0
	r.Preemptions = 0
	got := r.WorkloadThroughput(workloads.Redis)
	if math.IsNaN(got) {
		t.Fatal("WorkloadThroughput returned NaN for zero best-effort core-time")
	}
	if got <= 0 {
		t.Fatalf("granted core-time must still yield throughput, got %v", got)
	}
}
