package traffic

import (
	"strings"
	"testing"
)

func TestScaleSpecDefaultsAndUEs(t *testing.T) {
	s := ScaleSpec{Cells: 200, Seed: 7}
	if got, want := s.TotalUEs(), int64(200*DefaultSubscribers); got != want {
		t.Fatalf("TotalUEs = %d, want %d", got, want)
	}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cells != 200 {
		t.Fatalf("cells = %d", cfg.Cells)
	}
	if cfg.PeakSlotBytes != 10*lteReferencePeakBytes {
		t.Fatalf("peak = %d, want 10x the LTE reference", cfg.PeakSlotBytes)
	}
}

func TestScaleSpecValidation(t *testing.T) {
	cases := map[string]ScaleSpec{
		"no cells":     {Cells: 0},
		"shrinking":    {Cells: 10, VolumeScale: 0.5},
		"bad load":     {Cells: 10, Load: 1.5},
		"negative ues": {Cells: 10, SubscribersPerCell: -1},
	}
	for name, s := range cases {
		if _, err := s.Config(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// The scaled trace must keep the LTE reference's statistical character:
// individual cells mostly idle, the fleet aggregate almost never, and the
// volume ceiling scaled by the extrapolation factor.
func TestGenerateScaledTraceKeepsPoolingStructure(t *testing.T) {
	tr, err := GenerateScaledTrace(ScaleSpec{Cells: 120, Seed: 42, VolumeScale: 12}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cells != 120 || len(tr.Volumes) != 2000 {
		t.Fatalf("trace shape %d cells x %d slots", tr.Cells, len(tr.Volumes))
	}
	single := tr.IdleFraction(0)
	agg := tr.IdleFraction(-1)
	if single <= agg {
		t.Errorf("single-cell idle %.3f should exceed aggregate idle %.3f", single, agg)
	}
	if agg > 0.01 {
		t.Errorf("120-cell aggregate idle %.3f; the pooled fleet should almost never be idle", agg)
	}
	peak := 12 * lteReferencePeakBytes
	for t0, row := range tr.Volumes {
		for c, v := range row {
			if v > peak {
				t.Fatalf("slot %d cell %d volume %d exceeds scaled peak %d", t0, c, v, peak)
			}
		}
	}
}

func TestScaleErrorMentionsPackage(t *testing.T) {
	_, err := GenerateScaledTrace(ScaleSpec{Cells: 5, VolumeScale: 0.2}, 10)
	if err == nil || !strings.Contains(err.Error(), "traffic:") {
		t.Fatalf("err = %v", err)
	}
}
