package traffic

import (
	"bytes"
	"strings"
	"testing"
)

func TestReplayerLoops(t *testing.T) {
	tr := &Trace{Cells: 2, Volumes: [][]int{{1, 2}, {3, 4}}}
	r, err := NewReplayer(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells() != 2 {
		t.Fatalf("cells %d", r.Cells())
	}
	want := [][]int{{1, 2}, {3, 4}, {1, 2}, {3, 4}}
	for i, w := range want {
		got := r.NextSlot()
		if got[0] != w[0] || got[1] != w[1] {
			t.Fatalf("slot %d = %v want %v", i, got, w)
		}
	}
}

func TestReplayerScales(t *testing.T) {
	tr := &Trace{Cells: 1, Volumes: [][]int{{100}}}
	r, _ := NewReplayer(tr, 10)
	if got := r.NextSlot()[0]; got != 1000 {
		t.Fatalf("scaled volume %d want 1000", got)
	}
}

func TestReplayerEmpty(t *testing.T) {
	if _, err := NewReplayer(&Trace{}, 1); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := NewReplayer(nil, 1); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := GenerateTrace(LTEReference(3, 5), 500)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cells != orig.Cells || len(got.Volumes) != len(orig.Volumes) {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			got.Cells, len(got.Volumes), orig.Cells, len(orig.Volumes))
	}
	for tti := range orig.Volumes {
		for c := range orig.Volumes[tti] {
			if got.Volumes[tti][c] != orig.Volumes[tti][c] {
				t.Fatalf("volume changed at tti %d cell %d", tti, c)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"nope,cell0\n1,2\n",
		"tti,cell0\nx,2\n",
		"tti,cell0\n0,-5\n",
		"tti,cell0,cell1\n0,1\n",
		"tti,cell0\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed CSV accepted", i)
		}
	}
}
