package traffic

import (
	"testing"

	"concordia/internal/stats"
)

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Config{Cells: 0, Load: 0.5, PeakSlotBytes: 100}); err == nil {
		t.Fatal("zero cells accepted")
	}
	if _, err := NewGenerator(Config{Cells: 1, Load: 0, PeakSlotBytes: 100}); err == nil {
		t.Fatal("zero load accepted")
	}
	if _, err := NewGenerator(Config{Cells: 1, Load: 1.5, PeakSlotBytes: 100}); err == nil {
		t.Fatal("load > 1 accepted")
	}
	if _, err := NewGenerator(Config{Cells: 1, Load: 0.5, PeakSlotBytes: 0}); err == nil {
		t.Fatal("zero peak accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := LTEReference(3, 7)
	a, _ := GenerateTrace(cfg, 5000)
	b, _ := GenerateTrace(cfg, 5000)
	for tti := range a.Volumes {
		for c := range a.Volumes[tti] {
			if a.Volumes[tti][c] != b.Volumes[tti][c] {
				t.Fatalf("traces diverge at tti %d cell %d", tti, c)
			}
		}
	}
}

func TestVolumesBounded(t *testing.T) {
	cfg := Config{Cells: 3, Load: 1.0, PeakSlotBytes: 4096, Seed: 1}
	tr, err := GenerateTrace(cfg, 20000)
	if err != nil {
		t.Fatal(err)
	}
	for tti := range tr.Volumes {
		for c, v := range tr.Volumes[tti] {
			if v < 0 || v > cfg.PeakSlotBytes {
				t.Fatalf("volume out of range at tti %d cell %d: %d", tti, c, v)
			}
		}
	}
}

// The headline §2.2 statistics: a single LTE cell is idle ~75% of TTIs, the
// 3-cell aggregate far less; the median non-idle aggregate volume sits an
// order of magnitude below the tail.
func TestLTEReferenceStatistics(t *testing.T) {
	tr, err := GenerateTrace(LTEReference(3, 42), 3600_000/60) // 60 s at 1 ms
	if err != nil {
		t.Fatal(err)
	}
	var singleIdle float64
	for c := 0; c < 3; c++ {
		singleIdle += tr.IdleFraction(c)
	}
	singleIdle /= 3
	aggIdle := tr.IdleFraction(-1)
	if singleIdle < 0.55 || singleIdle > 0.90 {
		t.Errorf("single-cell idle fraction %.2f want ~0.75", singleIdle)
	}
	if aggIdle >= singleIdle {
		t.Errorf("aggregate idle %.2f not below single-cell %.2f", aggIdle, singleIdle)
	}
	if aggIdle > 0.55 {
		t.Errorf("aggregate idle fraction %.2f want well below single cell", aggIdle)
	}
	vols := tr.NonIdleVolumes()
	med := stats.Quantile(vols, 0.5)
	p99 := stats.Quantile(vols, 0.99)
	if med <= 0 {
		t.Fatal("median volume not positive")
	}
	if ratio := p99 / med; ratio < 4 {
		t.Errorf("p99/median ratio %.1f want heavy tail (>4x)", ratio)
	}
}

func TestLoadScalesMeanVolume(t *testing.T) {
	mean := func(load float64) float64 {
		tr, _ := GenerateTrace(Config{Cells: 2, Load: load, PeakSlotBytes: 90000, Seed: 5}, 60000)
		var s float64
		for tti := range tr.Volumes {
			s += float64(tr.AggregateSlot(tti))
		}
		return s / float64(len(tr.Volumes))
	}
	low, mid, high := mean(0.1), mean(0.5), mean(1.0)
	if !(low < mid && mid < high) {
		t.Fatalf("mean volume not increasing with load: %.0f %.0f %.0f", low, mid, high)
	}
	// At full load the per-cell average should be near Peak/2 (the max
	// allowed average), within calibration tolerance.
	perCell := high / 2
	want := 45000.0
	if perCell < want*0.6 || perCell > want*1.4 {
		t.Errorf("full-load per-cell mean %.0f want ~%.0f", perCell, want)
	}
}

func TestBurstinessAutocorrelation(t *testing.T) {
	// Adjacent-slot volumes must be positively correlated (ms-scale bursts).
	tr, _ := GenerateTrace(Config{Cells: 1, Load: 0.6, PeakSlotBytes: 8192, Seed: 9}, 50000)
	var x, y []float64
	for t0 := 0; t0+1 < len(tr.Volumes); t0++ {
		a, b := tr.Volumes[t0][0], tr.Volumes[t0+1][0]
		x = append(x, float64(a))
		y = append(y, float64(b))
	}
	if c := stats.Correlation(x, y); c < 0.15 {
		t.Errorf("lag-1 autocorrelation %.3f want positive burstiness", c)
	}
}

func TestPoolingReducesRelativeVariance(t *testing.T) {
	// §2.2's Gaussian argument: aggregating n cells reduces the coefficient
	// of variation roughly as 1/√n.
	cv := func(cells int) float64 {
		tr, _ := GenerateTrace(Config{Cells: cells, Load: 0.5, PeakSlotBytes: 8192, Seed: 11}, 40000)
		var vols []float64
		for tti := range tr.Volumes {
			vols = append(vols, float64(tr.AggregateSlot(tti)))
		}
		m := stats.Mean(vols)
		if m == 0 {
			return 0
		}
		return stats.StdDev(vols) / m
	}
	cv1, cv9 := cv(1), cv(9)
	if cv9 >= cv1 {
		t.Errorf("pooling did not reduce CV: 1 cell %.2f vs 9 cells %.2f", cv1, cv9)
	}
}

func TestGenerateTraceErrors(t *testing.T) {
	if _, err := GenerateTrace(Config{}, 10); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestIdleFractionEmptyTrace(t *testing.T) {
	tr := &Trace{Cells: 1}
	if tr.IdleFraction(0) != 0 {
		t.Fatal("empty trace idle fraction should be 0")
	}
}

func BenchmarkNextSlot(b *testing.B) {
	g, _ := NewGenerator(LTEReference(7, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.NextSlot()
	}
}

func TestDiurnalModulation(t *testing.T) {
	cfg := Config{Cells: 2, Load: 0.8, PeakSlotBytes: 8192, Seed: 31, DiurnalPeriod: 20000}
	tr, err := GenerateTrace(cfg, 40000)
	if err != nil {
		t.Fatal(err)
	}
	// Mean volume in the peak half-period must exceed the trough's.
	meanOver := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(tr.AggregateSlot(i))
		}
		return s / float64(hi-lo)
	}
	peak := meanOver(2000, 8000)     // around sin max (quarter period)
	trough := meanOver(12000, 18000) // around sin min
	if peak <= trough*1.3 {
		t.Fatalf("diurnal peak %.0f not above trough %.0f", peak, trough)
	}
}
