// Package traffic generates per-TTI cell traffic with the statistical
// character of the paper's measured LTE traces (§2.2): most single-cell
// slots idle, small median transfers with a heavy tail an order of
// magnitude above the median, and millisecond-scale burstiness. The 5G
// evaluation traces are the same fluctuation patterns volume-scaled, as the
// paper itself did.
package traffic

import (
	"errors"
	"math"

	"concordia/internal/rng"
)

// Config parameterizes a generator.
type Config struct {
	Cells int
	// Load is the cell traffic load as a fraction of the maximum allowed
	// average load (the x-axis of Fig 8a): 0.05–1.0.
	Load float64
	// PeakSlotBytes is the per-cell per-slot payload ceiling (the
	// provisioned peak). The maximum *average* equals half the peak,
	// mirroring Table 1 vs Table 2 (avg 750 Mbps vs peak 1.5 Gbps).
	PeakSlotBytes int
	Seed          uint64
	// DiurnalPeriod, when positive, modulates the effective load
	// sinusoidally between 20% and 100% of Load over the given number of
	// TTIs — the long-term fluctuation RAN pooling classically exploits
	// (§2.2's diurnal observation). Zero disables modulation.
	DiurnalPeriod int
}

// LTEReference returns the configuration that mirrors the measured 3-cell
// LTE uplink traces of Fig 3: ~5 KB peak slots, lightly loaded (rush-hour
// uplink averages are far below provisioned peak).
func LTEReference(cells int, seed uint64) Config {
	return Config{Cells: cells, Load: 0.1, PeakSlotBytes: 5 * 1024, Seed: seed}
}

// Generator produces correlated bursty per-cell slot volumes.
//
// The busy/quiet structure is a rotating-hotspot model: in every epoch
// (epochTTIs slots) a load-dependent subset of cells is "busy" (users are
// concentrated there), and the busy set rotates across cells. This is what
// makes single cells mostly idle while the pooled aggregate rarely is —
// users roam between cells, the §2.2 observation pooling exploits.
type Generator struct {
	cfg   Config
	slot  int
	cells []cellState
	// out is the NextSlot buffer, reused every TTI (see Source contract).
	out []int
}

type cellState struct {
	rand *rng.Rand
	// log-volume AR(1) state for millisecond-scale correlation.
	logVol float64
	hasAR  bool
}

// epochTTIs is the hotspot rotation period.
const epochTTIs = 250

// Activity probabilities inside and outside a hotspot epoch.
func activity(load float64) (pBusy, pQuiet float64) {
	return 0.5 + 0.45*load, 0.02 + 0.05*load
}

// busyCellCount returns how many cells are hotspots simultaneously.
func busyCellCount(cells int, load float64) int {
	n := int(float64(cells)*load + 0.5)
	if n < 1 {
		n = 1
	}
	if n > cells {
		n = cells
	}
	return n
}

// NewGenerator validates the configuration and seeds per-cell streams.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Cells <= 0 {
		return nil, errors.New("traffic: need at least one cell")
	}
	if cfg.Load <= 0 || cfg.Load > 1 {
		return nil, errors.New("traffic: load must be in (0, 1]")
	}
	if cfg.PeakSlotBytes <= 0 {
		return nil, errors.New("traffic: peak slot bytes must be positive")
	}
	g := &Generator{cfg: cfg, out: make([]int, cfg.Cells)}
	root := rng.New(cfg.Seed)
	g.cells = make([]cellState, cfg.Cells)
	for i := range g.cells {
		g.cells[i].rand = root.Split()
	}
	return g, nil
}

// Cells returns the number of cells.
func (g *Generator) Cells() int { return g.cfg.Cells }

// NextSlot returns the per-cell payload bytes for the next TTI. The slice
// is reused on the following call; callers that retain it must copy.
func (g *Generator) NextSlot() []int {
	cfg := g.cfg
	if cfg.DiurnalPeriod > 0 {
		// Sinusoidal long-term modulation between 0.2x and 1.0x of Load.
		phase := 2 * math.Pi * float64(g.slot%cfg.DiurnalPeriod) / float64(cfg.DiurnalPeriod)
		cfg.Load *= 0.6 + 0.4*math.Sin(phase)
		if cfg.Load <= 0.01 {
			cfg.Load = 0.01
		}
	}
	epoch := g.slot / epochTTIs
	busy := busyCellCount(cfg.Cells, cfg.Load)
	out := g.out
	for i := range g.cells {
		// Cell i is a hotspot when it falls inside the rotating busy window.
		isBusy := (i+epoch)%cfg.Cells < busy
		out[i] = g.cells[i].next(cfg, isBusy)
	}
	g.slot++
	return out
}

func (c *cellState) next(cfg Config, busy bool) int {
	pBusy, pQuiet := activity(cfg.Load)
	p := pQuiet
	if busy {
		p = pBusy
	}
	if !c.rand.Bool(p) {
		c.hasAR = false
		return 0
	}
	// Active-slot volume: lognormal body with AR(1) temporal correlation
	// and a ceiling at the provisioned peak.
	median := medianActiveVolume(cfg)
	innov := c.rand.Normal(0, 0.9)
	if !c.hasAR {
		c.logVol = innov
		c.hasAR = true
	} else {
		c.logVol = 0.6*c.logVol + 0.8*innov
	}
	v := median * exp(c.logVol)
	if v < 32 {
		v = 32
	}
	if v > float64(cfg.PeakSlotBytes) {
		v = float64(cfg.PeakSlotBytes)
	}
	return int(v)
}

// medianActiveVolume calibrates the active-slot volume so the long-run mean
// over all slots approaches Load × Peak/2 (the maximum allowed average is
// half the provisioned peak, mirroring Table 1 vs Table 2). The median is
// capped at Peak/3 so the lognormal tail survives the peak clip.
func medianActiveVolume(cfg Config) float64 {
	pBusy, pQuiet := activity(cfg.Load)
	duty := float64(busyCellCount(cfg.Cells, cfg.Load)) / float64(cfg.Cells)
	pa := duty*pBusy + (1-duty)*pQuiet
	want := cfg.Load * float64(cfg.PeakSlotBytes) / 2
	// Lognormal mean factor for sigma≈0.9 is exp(0.9²/2)≈1.5.
	m := want / (pa * 1.5)
	if cap := float64(cfg.PeakSlotBytes) / 3; m > cap {
		m = cap
	}
	return m
}

func exp(x float64) float64 {
	// Clamp to avoid overflow in pathological AR states.
	if x > 6 {
		x = 6
	}
	if x < -6 {
		x = -6
	}
	return math.Exp(x)
}

// Trace is a fully materialized multi-cell trace.
type Trace struct {
	Cells int
	// Volumes[t][c] is the payload bytes of cell c in TTI t.
	Volumes [][]int
}

// GenerateTrace materializes slots TTIs.
func GenerateTrace(cfg Config, slots int) (*Trace, error) {
	g, err := NewGenerator(cfg)
	if err != nil {
		return nil, err
	}
	tr := &Trace{Cells: cfg.Cells, Volumes: make([][]int, slots)}
	for t := 0; t < slots; t++ {
		// NextSlot reuses its buffer; a materialized trace needs its own row.
		tr.Volumes[t] = append([]int(nil), g.NextSlot()...)
	}
	return tr, nil
}

// AggregateSlot returns the summed volume across cells for TTI t.
func (tr *Trace) AggregateSlot(t int) int {
	var s int
	for _, v := range tr.Volumes[t] {
		s += v
	}
	return s
}

// IdleFraction returns the fraction of TTIs in which cell c was idle;
// c == -1 evaluates the aggregate across all cells.
func (tr *Trace) IdleFraction(c int) float64 {
	if len(tr.Volumes) == 0 {
		return 0
	}
	idle := 0
	for t := range tr.Volumes {
		v := 0
		if c >= 0 {
			v = tr.Volumes[t][c]
		} else {
			v = tr.AggregateSlot(t)
		}
		if v == 0 {
			idle++
		}
	}
	return float64(idle) / float64(len(tr.Volumes))
}

// NonIdleVolumes returns the aggregate volumes of non-idle TTIs, in bytes.
func (tr *Trace) NonIdleVolumes() []float64 {
	var out []float64
	for t := range tr.Volumes {
		if v := tr.AggregateSlot(t); v > 0 {
			out = append(out, float64(v))
		}
	}
	return out
}
