package traffic

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Source produces per-cell slot volumes; the pool consumes one of these per
// link direction. Generator is the synthetic implementation; Replayer
// re-plays captured traces (the paper's methodology: emulated 5G benchmarks
// built from recorded LTE fluctuation patterns).
//
// Contract: the slice NextSlot returns is only valid until the next
// NextSlot call on the same source — implementations reuse the buffer so
// the per-TTI hot path allocates nothing. Callers that retain a row must
// copy it.
type Source interface {
	Cells() int
	NextSlot() []int
}

// Replayer cycles through a materialized trace.
type Replayer struct {
	trace *Trace
	pos   int
	out   []int // NextSlot buffer, reused every TTI (see Source contract)
	// ScaleVolume multiplies every replayed volume (the paper scales its
	// LTE traces >10× for the 5G benchmarks); 0 means 1.
	ScaleVolume float64
}

// NewReplayer wraps a trace as a Source. Replaying loops when the trace is
// exhausted.
func NewReplayer(tr *Trace, scale float64) (*Replayer, error) {
	if tr == nil || len(tr.Volumes) == 0 {
		return nil, errors.New("traffic: empty trace")
	}
	if scale <= 0 {
		scale = 1
	}
	return &Replayer{trace: tr, out: make([]int, tr.Cells), ScaleVolume: scale}, nil
}

// Cells implements Source.
func (r *Replayer) Cells() int { return r.trace.Cells }

// NextSlot implements Source.
func (r *Replayer) NextSlot() []int {
	row := r.trace.Volumes[r.pos]
	r.pos = (r.pos + 1) % len(r.trace.Volumes)
	out := r.out[:len(row)]
	for i, v := range row {
		out[i] = int(float64(v) * r.ScaleVolume)
	}
	return out
}

// WriteCSV emits the trace in the tracegen format: a "tti,cell0,..." header
// followed by one row per TTI.
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "tti")
	for c := 0; c < tr.Cells; c++ {
		fmt.Fprintf(bw, ",cell%d", c)
	}
	fmt.Fprintln(bw)
	for t, row := range tr.Volumes {
		fmt.Fprint(bw, t)
		for _, v := range row {
			fmt.Fprintf(bw, ",%d", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV (or cmd/tracegen).
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, errors.New("traffic: empty CSV")
	}
	head := strings.Split(strings.TrimSpace(sc.Text()), ",")
	if len(head) < 2 || head[0] != "tti" {
		return nil, errors.New("traffic: malformed CSV header")
	}
	cells := len(head) - 1
	tr := &Trace{Cells: cells}
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != cells+1 {
			return nil, fmt.Errorf("traffic: line %d has %d fields, want %d", line, len(fields), cells+1)
		}
		if _, err := strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("traffic: line %d: bad tti %q", line, fields[0])
		}
		row := make([]int, cells)
		for i := 0; i < cells; i++ {
			v, err := strconv.Atoi(fields[i+1])
			if err != nil || v < 0 {
				return nil, fmt.Errorf("traffic: line %d cell %d: bad volume %q", line, i, fields[i+1])
			}
			row[i] = v
		}
		tr.Volumes = append(tr.Volumes, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(tr.Volumes) == 0 {
		return nil, errors.New("traffic: CSV contains no rows")
	}
	return tr, nil
}
