package traffic

import (
	"errors"
	"fmt"
)

// ScaleSpec scales the measured 3-cell LTE reference statistics (§2.2) to
// fleet-sized deployments: hundreds of cells serving a modeled subscriber
// population in the millions. The paper itself built its 5G evaluation
// traces by volume-scaling the captured LTE fluctuation patterns >10×; this
// layer applies the same extrapolation while keeping the busy/quiet hotspot
// structure pooling exploits, so a 200-cell fleet trace has the same
// statistical character per cell as the Fig 3 captures — just more of them,
// carrying more bytes.
type ScaleSpec struct {
	// Cells is the fleet-wide cell count (the LTE reference measured 3).
	Cells int
	// SubscribersPerCell is the modeled UE population attached per cell —
	// accounting for the "millions of users" scale target, and the knob the
	// volume extrapolation is derived from. 0 selects DefaultSubscribers.
	SubscribersPerCell int
	// VolumeScale multiplies the LTE reference per-slot payload ceiling
	// (5 KB): the 5G extrapolation factor. 0 selects DefaultVolumeScale
	// (10×, the paper's own scaling floor).
	VolumeScale float64
	// Load is the per-cell traffic load fraction (0.05–1.0); 0 selects the
	// LTE reference's lightly loaded 0.1.
	Load float64
	// DiurnalPeriod, when positive, adds the long-term sinusoidal load
	// fluctuation (in TTIs) that fleet-scale pooling classically exploits.
	DiurnalPeriod int
	Seed          uint64
}

// Scaling defaults.
const (
	// DefaultSubscribers models a metro macro cell's attached-UE population.
	DefaultSubscribers = 10000
	// DefaultVolumeScale is the paper's ">10×" LTE→5G volume extrapolation.
	DefaultVolumeScale = 10.0
	// lteReferencePeakBytes is the Fig 3 per-slot payload ceiling (~5 KB).
	lteReferencePeakBytes = 5 * 1024
)

func (s ScaleSpec) withDefaults() ScaleSpec {
	if s.SubscribersPerCell == 0 {
		s.SubscribersPerCell = DefaultSubscribers
	}
	if s.VolumeScale == 0 {
		s.VolumeScale = DefaultVolumeScale
	}
	if s.Load == 0 {
		s.Load = 0.1
	}
	return s
}

// Validate reports specification errors.
func (s ScaleSpec) Validate() error {
	s = s.withDefaults()
	if s.Cells <= 0 {
		return errors.New("traffic: scale spec needs at least one cell")
	}
	if s.SubscribersPerCell < 0 {
		return errors.New("traffic: negative subscribers per cell")
	}
	if s.VolumeScale < 1 {
		return fmt.Errorf("traffic: volume scale %.2f shrinks the reference; want >= 1", s.VolumeScale)
	}
	if s.Load <= 0 || s.Load > 1 {
		return errors.New("traffic: load must be in (0, 1]")
	}
	return nil
}

// TotalUEs returns the modeled fleet-wide subscriber population.
func (s ScaleSpec) TotalUEs() int64 {
	s = s.withDefaults()
	return int64(s.Cells) * int64(s.SubscribersPerCell)
}

// Config derives the generator configuration: the LTE reference statistics
// volume-scaled per the spec, one cell stream per fleet cell.
func (s ScaleSpec) Config() (Config, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Config{}, err
	}
	return Config{
		Cells:         s.Cells,
		Load:          s.Load,
		PeakSlotBytes: int(float64(lteReferencePeakBytes) * s.VolumeScale),
		Seed:          s.Seed,
		DiurnalPeriod: s.DiurnalPeriod,
	}, nil
}

// GenerateScaledTrace materializes a fleet-scale trace of `slots` TTIs.
func GenerateScaledTrace(s ScaleSpec, slots int) (*Trace, error) {
	cfg, err := s.Config()
	if err != nil {
		return nil, err
	}
	return GenerateTrace(cfg, slots)
}
