package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the trace parser against hostile input: it must never
// panic, and anything it accepts must round-trip through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("tti,cell0\n0,100\n1,0\n")
	f.Add("tti,cell0,cell1\n0,1,2\n")
	f.Add("")
	f.Add("tti,cell0\n0,-1\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Cells != tr.Cells || len(back.Volumes) != len(tr.Volumes) {
			t.Fatal("round trip changed shape")
		}
	})
}
