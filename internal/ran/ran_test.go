package ran

import (
	"testing"
	"testing/quick"

	"concordia/internal/rng"
	"concordia/internal/sim"
)

func TestNumerologySlotDurations(t *testing.T) {
	cases := map[Numerology]sim.Time{
		Mu0: sim.Millisecond,
		Mu1: 500 * sim.Microsecond,
		Mu2: 250 * sim.Microsecond,
		Mu3: sim.FromUs(125),
	}
	for mu, want := range cases {
		if got := mu.SlotDuration(); got != want {
			t.Errorf("mu=%d slot %v want %v", mu, got, want)
		}
	}
	if Mu1.SlotsPerSecond() != 2000 {
		t.Errorf("mu=1 slots/s %d", Mu1.SlotsPerSecond())
	}
}

func TestCellConfigValidate(t *testing.T) {
	good := Cells100MHz(1)[0]
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.BandwidthMHz = 0
	if bad.Validate() == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad = good
	bad.MaxLayers = bad.Antennas + 1
	if bad.Validate() == nil {
		t.Fatal("layers > antennas accepted")
	}
	bad = good
	bad.MaxUEs = 0
	if bad.Validate() == nil {
		t.Fatal("zero MaxUEs accepted")
	}
}

func TestPRBsScaleWithBandwidth(t *testing.T) {
	c20 := Cells20MHz(1)[0]
	c100 := Cells100MHz(1)[0]
	// 20 MHz µ0 has ~106 PRBs, 100 MHz µ1 has ~273 in the 38.101 tables.
	if p := c20.PRBs(); p < 95 || p > 115 {
		t.Errorf("20MHz PRBs %d want ~106", p)
	}
	if p := c100.PRBs(); p < 250 || p > 290 {
		t.Errorf("100MHz PRBs %d want ~273", p)
	}
}

func TestTDDPattern(t *testing.T) {
	c := Cells100MHz(1)[0]
	want := []SlotDir{Downlink, Downlink, Downlink, Special, Uplink}
	for i, w := range want {
		if got := c.SlotDir(i); got != w {
			t.Errorf("slot %d dir %v want %v", i, got, w)
		}
	}
	// Pattern repeats.
	if c.SlotDir(5) != Downlink || c.SlotDir(9) != Uplink {
		t.Error("TDD pattern does not repeat")
	}
	// FDD reports downlink for pattern indexing.
	f := Cells20MHz(1)[0]
	if f.SlotDir(4) != Downlink {
		t.Error("FDD slot dir")
	}
}

func TestMCSFromSNRMonotone(t *testing.T) {
	prev := -1
	for snr := -5.0; snr <= 40; snr += 1 {
		m := MCSFromSNR(snr)
		if m.Index < prev {
			t.Fatalf("MCS index decreased at %v dB", snr)
		}
		prev = m.Index
	}
	if MCSFromSNR(-5).Index != 0 {
		t.Error("very low SNR should pick MCS 0")
	}
	if MCSFromSNR(40).Index != len(MCSTable)-1 {
		t.Error("very high SNR should pick the top MCS")
	}
}

func TestTransportBlockSize(t *testing.T) {
	m := MCSTable[8] // 64QAM 0.55
	tbs := TransportBlockSize(100, m, 2)
	if tbs <= 0 || tbs%8 != 0 {
		t.Fatalf("TBS %d not positive byte-aligned", tbs)
	}
	// Doubling layers roughly doubles TBS.
	tbs1 := TransportBlockSize(100, m, 1)
	if tbs < tbs1*19/10 || tbs > tbs1*21/10 {
		t.Errorf("layer scaling: 1-layer %d vs 2-layer %d", tbs1, tbs)
	}
	if TransportBlockSize(0, m, 1) != 0 {
		t.Error("zero PRBs should give zero TBS")
	}
	if TransportBlockSize(1, MCSTable[0], 1) < 24 {
		t.Error("minimum TBS floor violated")
	}
}

func TestPRBsForBytesInverse(t *testing.T) {
	r := rng.New(1)
	err := quick.Check(func(b uint16, mi uint8) bool {
		bytes := int(b%4096) + 1
		mcs := MCSTable[int(mi)%len(MCSTable)]
		layers := 1 + r.Intn(4)
		prbs := PRBsForBytes(bytes, mcs, layers, 273)
		if prbs == 0 {
			return false
		}
		tbs := TransportBlockSize(prbs, mcs, layers)
		if prbs < 273 && tbs < bytes*8 {
			return false // allocation must carry the payload unless capped
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCodeblockCount(t *testing.T) {
	if CodeblockCount(0) != 0 {
		t.Error("zero TBS should have zero codeblocks")
	}
	if c := CodeblockCount(4000); c != 1 {
		t.Errorf("small TBS codeblocks %d want 1", c)
	}
	if c := CodeblockCount(100000); c < 12 {
		t.Errorf("100kb TBS codeblocks %d want >= 12", c)
	}
}

func makeAllocs(r *rng.Rand, cfg CellConfig, bytes int) []UEAlloc {
	return AllocateSlot(cfg, bytes, r)
}

func TestAllocateSlotEmpty(t *testing.T) {
	r := rng.New(2)
	if a := AllocateSlot(Cells20MHz(1)[0], 0, r); a != nil {
		t.Fatal("zero bytes should yield no allocations")
	}
}

func TestAllocateSlotInvariants(t *testing.T) {
	r := rng.New(3)
	cfg := Cells100MHz(1)[0]
	for trial := 0; trial < 200; trial++ {
		bytes := 1 + r.Intn(90000)
		allocs := AllocateSlot(cfg, bytes, r)
		if len(allocs) == 0 {
			t.Fatalf("no allocations for %d bytes", bytes)
		}
		var prbs int
		for _, a := range allocs {
			if a.TBSBits <= 0 || a.Codeblocks <= 0 || a.PRBs <= 0 {
				t.Fatalf("degenerate allocation %+v", a)
			}
			if a.Layers < 1 || a.Layers > cfg.MaxLayers {
				t.Fatalf("layers out of range: %+v", a)
			}
			prbs += a.PRBs
		}
		if prbs > cfg.PRBs() {
			t.Fatalf("PRB budget exceeded: %d > %d", prbs, cfg.PRBs())
		}
		if len(allocs) > cfg.MaxUEs {
			t.Fatalf("too many UEs: %d", len(allocs))
		}
	}
}

func TestUplinkDAGStructure(t *testing.T) {
	r := rng.New(4)
	cfg := Cells100MHz(1)[0]
	allocs := makeAllocs(r, cfg, 20000)
	d := BuildUplinkDAG(cfg, 0, 0, sim.FromMs(1.5), allocs)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Roots: antenna FFTs + control polar decode.
	if got := len(d.Roots()); got != cfg.Antennas+1 {
		t.Fatalf("roots %d want %d", got, cfg.Antennas+1)
	}
	// Per UE: chanest, equalize, demod, dematch, >=1 decode, crc.
	counts := map[TaskKind]int{}
	for _, task := range d.Tasks {
		counts[task.Kind]++
	}
	n := len(allocs)
	if counts[TaskChannelEstimation] != n || counts[TaskCRCCheck] != n {
		t.Fatalf("per-UE task counts wrong: %v for %d UEs", counts, n)
	}
	if counts[TaskLDPCDecode] < n {
		t.Fatalf("decode tasks %d < UEs %d", counts[TaskLDPCDecode], n)
	}
	if counts[TaskFFT] != cfg.Antennas {
		t.Fatalf("FFT tasks %d", counts[TaskFFT])
	}
}

func TestUplinkDAGDecodeSplitting(t *testing.T) {
	cfg := Cells100MHz(1)[0]
	// One UE with many codeblocks must fan out into several decode tasks.
	a := UEAlloc{UE: 0, SNRdB: 20, MCS: MCSTable[12], Layers: 4, PRBs: 270,
		TBSBits: 260000, Codeblocks: CodeblockCount(260000)}
	d := BuildUplinkDAG(cfg, 0, 0, sim.FromMs(1.5), []UEAlloc{a})
	decodes := 0
	for _, task := range d.Tasks {
		if task.Kind == TaskLDPCDecode {
			decodes++
			if cb := task.Features.Get(FCodeblocks); cb > decodeGroupSize {
				t.Fatalf("decode group too large: %v", cb)
			}
		}
	}
	want := (a.Codeblocks + decodeGroupSize - 1) / decodeGroupSize
	if decodes != want {
		t.Fatalf("decode tasks %d want %d", decodes, want)
	}
}

func TestDownlinkDAGStructure(t *testing.T) {
	r := rng.New(5)
	cfg := Cells100MHz(1)[0]
	allocs := makeAllocs(r, cfg, 40000)
	d := BuildDownlinkDAG(cfg, 0, 0, sim.FromMs(1.5), allocs)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := map[TaskKind]int{}
	for _, task := range d.Tasks {
		counts[task.Kind]++
	}
	if counts[TaskPrecoding] != 1 {
		t.Fatalf("precoding tasks %d want 1", counts[TaskPrecoding])
	}
	if counts[TaskIFFT] != cfg.Antennas {
		t.Fatalf("IFFT tasks %d want %d", counts[TaskIFFT], cfg.Antennas)
	}
	if counts[TaskModulation] != len(allocs) {
		t.Fatalf("modulation tasks %d want %d", counts[TaskModulation], len(allocs))
	}
	// IFFTs must depend on precoding; precoding on every modulation.
	var pc *Task
	for _, task := range d.Tasks {
		if task.Kind == TaskPrecoding {
			pc = task
		}
	}
	if len(pc.Deps) != len(allocs)+1 { // + control encode
		t.Fatalf("precoding deps %d want %d", len(pc.Deps), len(allocs)+1)
	}
}

func TestDAGSuccessorsConsistent(t *testing.T) {
	r := rng.New(6)
	cfg := Cells20MHz(1)[0]
	d := BuildUplinkDAG(cfg, 3, 0, sim.FromMs(2), makeAllocs(r, cfg, 8000))
	for _, task := range d.Tasks {
		for _, s := range task.Succs {
			found := false
			for _, dep := range d.Tasks[s].Deps {
				if dep == task.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("successor link %d->%d without matching dep", task.ID, s)
			}
		}
	}
}

func TestFeatureVector(t *testing.T) {
	var f FeatureVector
	f.Set(FTBSBits, 8448)
	if f.Get(FTBSBits) != 8448 {
		t.Fatal("get/set mismatch")
	}
	sel := f.Select([]Feature{FTBSBits, FNumUEs})
	if sel[0] != 8448 || sel[1] != 0 {
		t.Fatalf("select %v", sel)
	}
	if FTBSBits.String() != "tbs_bits" {
		t.Fatalf("feature name %q", FTBSBits.String())
	}
	if Feature(-1).String() != "unknown" {
		t.Fatal("invalid feature name")
	}
}

func TestTaskKindString(t *testing.T) {
	if TaskLDPCDecode.String() != "ldpc_decode" {
		t.Fatalf("kind name %q", TaskLDPCDecode.String())
	}
	if !TaskLDPCDecode.IsUplink() || TaskLDPCEncode.IsUplink() {
		t.Fatal("IsUplink misclassification")
	}
}

func TestDAGDeterminism(t *testing.T) {
	cfg := Cells100MHz(1)[0]
	mk := func(seed uint64) *DAG {
		r := rng.New(seed)
		return BuildUplinkDAG(cfg, 0, 0, sim.FromMs(1.5), makeAllocs(r, cfg, 30000))
	}
	a, b := mk(42), mk(42)
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("same seed produced different DAGs")
	}
	for i := range a.Tasks {
		if a.Tasks[i].Kind != b.Tasks[i].Kind || a.Tasks[i].Features != b.Tasks[i].Features {
			t.Fatal("same seed produced different tasks")
		}
	}
}

func TestMACDAGStructure(t *testing.T) {
	cfg := Cells20MHz(1)[0]
	d := BuildMACDAG(cfg, 5, 0, sim.Millisecond, 8)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Tasks) != 3 {
		t.Fatalf("MAC DAG has %d tasks want 3", len(d.Tasks))
	}
	if got := len(d.Roots()); got != 2 {
		t.Fatalf("MAC DAG roots %d want 2 (UL and DL schedulers)", got)
	}
	build := d.Tasks[2]
	if build.Kind != TaskMACBuild || len(build.Deps) != 2 {
		t.Fatalf("MAC build task malformed: %+v", build)
	}
	if build.Features.Get(FNumUEs) != 8 {
		t.Fatal("UE count not propagated")
	}
	if TaskMACUplinkSched.IsUplink() {
		t.Fatal("MAC kinds should not be classified as the PHY uplink chain")
	}
}

func TestLTECellsUseTurboPath(t *testing.T) {
	r := rng.New(7)
	cfg := CellsLTE(1)[0]
	if cfg.Generation != LTE {
		t.Fatal("CellsLTE did not set generation")
	}
	allocs := makeAllocs(r, cfg, 12000)
	ul := BuildUplinkDAG(cfg, 0, 0, sim.FromMs(2), allocs)
	dl := BuildDownlinkDAG(cfg, 0, 0, sim.FromMs(2), allocs)
	counts := map[TaskKind]int{}
	for _, task := range append(ul.Tasks, dl.Tasks...) {
		counts[task.Kind]++
	}
	if counts[TaskTurboDecode] == 0 || counts[TaskTurboEncode] == 0 {
		t.Fatalf("LTE DAGs missing turbo tasks: %v", counts)
	}
	if counts[TaskLDPCDecode] != 0 || counts[TaskLDPCEncode] != 0 {
		t.Fatalf("LTE DAGs still contain LDPC tasks: %v", counts)
	}
}

func TestNRCellsUseLDPCPath(t *testing.T) {
	r := rng.New(8)
	cfg := Cells20MHz(1)[0]
	allocs := makeAllocs(r, cfg, 12000)
	ul := BuildUplinkDAG(cfg, 0, 0, sim.FromMs(2), allocs)
	for _, task := range ul.Tasks {
		if task.Kind == TaskTurboDecode {
			t.Fatal("NR cell produced turbo tasks")
		}
	}
}

func BenchmarkBuildUplinkDAG(b *testing.B) {
	r := rng.New(1)
	cfg := Cells100MHz(1)[0]
	allocs := AllocateSlot(cfg, 40000, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildUplinkDAG(cfg, i, 0, sim.FromMs(1.5), allocs)
	}
}

func BenchmarkAllocateSlot(b *testing.B) {
	r := rng.New(2)
	cfg := Cells20MHz(1)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AllocateSlot(cfg, 20000, r)
	}
}
