//go:build poolcheck

package ran

// PoolcheckEnabled reports whether the poolcheck sanitizer (DESIGN.md §5g)
// is compiled in.
const PoolcheckEnabled = true

// Poison values (DESIGN.md §5g): recognizable in a debugger (0xDD = "dead")
// and chosen to crash loudly rather than corrupt silently. pcPoisonKind in
// particular sits past NumTaskKinds, so a stale cost-model or predictor
// lookup indexed by a poisoned Kind panics with an out-of-range index
// instead of reading another run's coefficients.
const (
	pcPoisonKind TaskKind = NumTaskKinds + 0xDD
	pcPoisonID            = -0xDD
)

// PoolcheckPoison marks a DAG dead on its way back to the freelist: header
// fields and every slab entry are overwritten with poison, and the Tasks and
// roots views are truncated so any len()-based iteration sees an empty
// graph. The next builder call re-prepares the DAG from scratch, so the
// poison costs nothing to undo. seq identifies the owning release in panic
// triage; it is not stored (the pool keeps it), only documented here as the
// recycle token the pool panics with.
func PoolcheckPoison(d *DAG, seq int64) {
	if d == nil {
		return
	}
	_ = seq
	d.CellID = pcPoisonID
	d.Slot = pcPoisonID
	d.Release = -1
	d.Deadline = -1
	for i := range d.slab {
		t := &d.slab[i]
		t.Kind = pcPoisonKind
		t.ID = pcPoisonID
		t.CellID = pcPoisonID
		t.UE = pcPoisonID
	}
	d.Tasks = d.Tasks[:0]
	d.roots = d.roots[:0]
}
