package ran

import (
	"fmt"

	"concordia/internal/sim"
)

// TaskKind identifies a signal-processing task type. Each kind has its own
// WCET prediction model (one quantile decision tree per kind, §4.2).
type TaskKind int

// Uplink and downlink task kinds, following Fig 1 and Fig 16.
const (
	// Uplink chain.
	TaskFFT               TaskKind = iota // per-antenna OFDM demodulation
	TaskChannelEstimation                 // DM-RS based LS estimation
	TaskEqualization                      // per-UE MMSE equalization
	TaskDemodulation                      // soft demapping to LLRs
	TaskRateDematch                       // circular-buffer LLR combining
	TaskLDPCDecode                        // min-sum decoding (dominant cost)
	TaskCRCCheck                          // TB/CB CRC verification
	TaskPolarDecode                       // uplink control (PUCCH)
	// Downlink chain.
	TaskLDPCEncode // systematic encoding
	TaskRateMatch  // circular-buffer selection
	TaskModulation // QAM mapping + scrambling
	TaskPrecoding  // multi-user ZF precoding
	TaskIFFT       // per-antenna OFDM modulation
	TaskPolarEncode
	// MAC-layer extension (§7): radio-resource scheduling viewed as
	// deadline tasks processed by the same pool.
	TaskMACUplinkSched
	TaskMACDownlinkSched
	TaskMACBuild
	// 4G/LTE coding path (§A.1): turbo codes replace LDPC for user data.
	TaskTurboDecode
	TaskTurboEncode
	NumTaskKinds
)

var taskKindNames = [NumTaskKinds]string{
	"fft", "channel_estimation", "equalization", "demodulation",
	"rate_dematch", "ldpc_decode", "crc_check", "polar_decode",
	"ldpc_encode", "rate_match", "modulation", "precoding", "ifft",
	"polar_encode", "mac_ul_sched", "mac_dl_sched", "mac_build",
	"turbo_decode", "turbo_encode",
}

// String implements fmt.Stringer.
func (k TaskKind) String() string {
	if k < 0 || k >= NumTaskKinds {
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
	return taskKindNames[k]
}

// IsUplink reports whether the kind belongs to the uplink chain.
func (k TaskKind) IsUplink() bool { return k <= TaskPolarDecode }

// Task is one node of a slot's signal-processing DAG.
type Task struct {
	ID       int // index within the owning DAG
	Kind     TaskKind
	CellID   int
	UE       int // -1 for per-cell tasks
	Features FeatureVector
	Deps     []int // prerequisite task IDs
	Succs    []int // dependent task IDs (filled by finalize)
}

// DAG is the dependency graph of all signal-processing work for one cell
// and one slot direction, with its release time and absolute deadline.
//
// Memory discipline (DESIGN.md §5f): a DAG's Task nodes live in one backing
// slab owned by the DAG, sized exactly before construction so the slab never
// reallocates mid-build (Tasks pointers and Deps backing arrays would alias
// a dead array otherwise). The *Into builder variants reuse a previous
// slot's slab, Deps/Succs capacity, and scratch, so steady-state DAG
// construction allocates nothing. Task pointers are only valid until the
// owning DAG is rebuilt; the pool's freelists enforce that lifetime.
type DAG struct {
	CellID   int
	Slot     int
	Dir      SlotDir
	Release  sim.Time
	Deadline sim.Time
	Tasks    []*Task

	slab  []Task // backing store for Tasks
	roots []int  // cached by finalize
	// Builder scratch, reused across rebuilds of this DAG value.
	scratchA []int // uplink: FFT IDs; downlink: modulation IDs
	scratchB []int // uplink: per-UE decode IDs; downlink: encode / precode deps
}

// prepare resets the DAG for a rebuild of exactly n tasks. Sizing the slab
// up front is what makes interior pointers safe: addTask never appends past
// the prepared length, so the backing array cannot move mid-build.
func (d *DAG) prepare(cellID, slot int, dir SlotDir, release, deadline sim.Time, n int) {
	d.CellID = cellID
	d.Slot = slot
	d.Dir = dir
	d.Release = release
	d.Deadline = deadline
	if cap(d.slab) < n {
		d.slab = make([]Task, n)
	}
	d.slab = d.slab[:n]
	if cap(d.Tasks) < n {
		d.Tasks = make([]*Task, 0, n)
	}
	d.Tasks = d.Tasks[:0]
	d.roots = d.roots[:0]
}

// addTask claims the next slab entry and returns its ID. Deps/Succs reuse
// the entry's previous capacity.
func (d *DAG) addTask(kind TaskKind, ue int, f FeatureVector, deps ...int) int {
	id := len(d.Tasks)
	if id >= len(d.slab) {
		panic(fmt.Sprintf("ran: DAG slab overflow at task %d (prepared %d)", id, len(d.slab)))
	}
	t := &d.slab[id]
	t.ID = id
	t.Kind = kind
	t.CellID = d.CellID
	t.UE = ue
	t.Features = f
	t.Deps = append(t.Deps[:0], deps...)
	t.Succs = t.Succs[:0]
	d.Tasks = append(d.Tasks, t)
	return id
}

// finalize fills successor lists, caches roots, and validates acyclicity
// (dependencies may only point backwards, which the builders guarantee by
// construction).
func (d *DAG) finalize() {
	for _, t := range d.Tasks {
		if len(t.Deps) == 0 {
			d.roots = append(d.roots, t.ID)
		}
		for _, dep := range t.Deps {
			if dep >= t.ID {
				panic(fmt.Sprintf("ran: forward dependency %d -> %d", t.ID, dep))
			}
			d.Tasks[dep].Succs = append(d.Tasks[dep].Succs, t.ID)
		}
	}
}

// Roots returns the IDs of tasks with no prerequisites. The slice is owned
// by the DAG and valid until the next rebuild; callers must not mutate it.
func (d *DAG) Roots() []int {
	if d.roots == nil && len(d.Tasks) > 0 {
		// DAG assembled outside the builders (tests): compute on demand.
		for _, t := range d.Tasks {
			if len(t.Deps) == 0 {
				d.roots = append(d.roots, t.ID)
			}
		}
	}
	return d.roots
}

// Validate checks structural invariants: dependencies in range, acyclic by
// topological index, and at least one root when non-empty.
func (d *DAG) Validate() error {
	for _, t := range d.Tasks {
		for _, dep := range t.Deps {
			if dep < 0 || dep >= len(d.Tasks) {
				return fmt.Errorf("ran: task %d has out-of-range dep %d", t.ID, dep)
			}
			if dep >= t.ID {
				return fmt.Errorf("ran: task %d depends forward on %d", t.ID, dep)
			}
		}
	}
	if len(d.Tasks) > 0 && len(d.Roots()) == 0 {
		return fmt.Errorf("ran: DAG has no roots")
	}
	return nil
}

// UEAlloc is one UE's allocation within a slot.
type UEAlloc struct {
	UE         int
	SNRdB      float64
	MCS        MCS
	Layers     int
	PRBs       int
	TBSBits    int
	Codeblocks int
}

// decodeGroupSize bounds the codeblocks covered by a single LDPC
// decode/encode task, enabling the intra-UE parallelism the paper describes
// ("multiple LDPC decoding operations on different cores").
const decodeGroupSize = 5

// baseFeatures fills the slot-wide portion of a feature vector.
func baseFeatures(cfg CellConfig, allocs []UEAlloc) FeatureVector {
	var f FeatureVector
	f.Set(FNumUEs, float64(len(allocs)))
	f.Set(FAntennas, float64(cfg.Antennas))
	var bytes int
	for _, a := range allocs {
		bytes += a.TBSBits / 8
	}
	f.Set(FSlotBytes, float64(bytes))
	return f
}

// ueFeatures extends base features with one UE's parameters.
func ueFeatures(base FeatureVector, a UEAlloc, cbs int) FeatureVector {
	f := base
	f.Set(FTBSBits, float64(a.TBSBits))
	f.Set(FCodeblocks, float64(cbs))
	f.Set(FMCSIndex, float64(a.MCS.Index))
	f.Set(FModOrder, float64(a.MCS.Modulation.BitsPerSymbol()))
	f.Set(FCodeRate, a.MCS.CodeRate)
	f.Set(FLayers, float64(a.Layers))
	f.Set(FSNRdB, a.SNRdB)
	f.Set(FPRBs, float64(a.PRBs))
	return f
}

// decodeGroups returns the number of parallel decode/encode tasks covering
// cb codeblocks.
func decodeGroups(cb int) int { return (cb + decodeGroupSize - 1) / decodeGroupSize }

// uplinkTaskCount sizes the uplink slab: per-antenna FFTs, the polar control
// branch, and per UE the CE→EQ→DM→RD chain, decode groups, and the CRC join.
func uplinkTaskCount(cfg CellConfig, allocs []UEAlloc) int {
	n := cfg.Antennas + 1
	for _, a := range allocs {
		n += 5 + decodeGroups(a.Codeblocks)
	}
	return n
}

// downlinkTaskCount sizes the downlink slab: polar control, per-UE encode
// groups plus rate-match and modulation, precoding, and per-antenna IFFTs.
func downlinkTaskCount(cfg CellConfig, allocs []UEAlloc) int {
	n := 2 + cfg.Antennas
	for _, a := range allocs {
		n += 2 + decodeGroups(a.Codeblocks)
	}
	return n
}

// BuildUplinkDAG constructs the Fig 1 uplink graph for one slot: per-antenna
// FFTs feed per-UE channel estimation → equalization → demodulation → rate
// dematching → parallel LDPC decode groups → a CRC join; uplink control
// (polar) decodes in parallel.
func BuildUplinkDAG(cfg CellConfig, slot int, release, deadline sim.Time, allocs []UEAlloc) *DAG {
	return BuildUplinkDAGInto(new(DAG), cfg, slot, release, deadline, allocs)
}

// BuildUplinkDAGInto rebuilds d in place as the uplink graph, reusing its
// slab and scratch. It returns d.
func BuildUplinkDAGInto(d *DAG, cfg CellConfig, slot int, release, deadline sim.Time, allocs []UEAlloc) *DAG {
	d.prepare(cfg.ID, slot, Uplink, release, deadline, uplinkTaskCount(cfg, allocs))
	base := baseFeatures(cfg, allocs)

	ffts := d.scratchA[:0]
	for a := 0; a < cfg.Antennas; a++ {
		f := base
		f.Set(FPRBs, float64(cfg.PRBs()))
		ffts = append(ffts, d.addTask(TaskFFT, -1, f))
	}
	d.scratchA = ffts
	// Uplink control decoding does not depend on data-path FFT output in
	// this simplified DAG; it is the parallel branch of Fig 1.
	ctl := base
	d.addTask(TaskPolarDecode, -1, ctl)

	for _, a := range allocs {
		f := ueFeatures(base, a, a.Codeblocks)
		// Channel estimation processes reference signals across the whole
		// configured band, not just the UE's allocation.
		cef := f
		cef.Set(FPRBs, float64(cfg.PRBs()))
		ce := d.addTask(TaskChannelEstimation, a.UE, cef, ffts...)
		eq := d.addTask(TaskEqualization, a.UE, f, ce)
		dm := d.addTask(TaskDemodulation, a.UE, f, eq)
		rd := d.addTask(TaskRateDematch, a.UE, f, dm)
		decodeKind := TaskLDPCDecode
		if cfg.Generation == LTE {
			decodeKind = TaskTurboDecode
		}
		decodes := d.scratchB[:0]
		for cb := 0; cb < a.Codeblocks; cb += decodeGroupSize {
			n := decodeGroupSize
			if cb+n > a.Codeblocks {
				n = a.Codeblocks - cb
			}
			g := ueFeatures(base, a, n)
			decodes = append(decodes, d.addTask(decodeKind, a.UE, g, rd))
		}
		if len(decodes) == 0 {
			decodes = append(decodes, rd)
		}
		d.scratchB = decodes
		d.addTask(TaskCRCCheck, a.UE, f, decodes...)
	}
	d.finalize()
	return d
}

// BuildDownlinkDAG constructs the Fig 16 downlink graph: per-UE LDPC encode
// groups → rate matching → modulation, joined by a cell-wide precoding task
// that feeds per-antenna IFFTs; downlink control (polar) encodes in
// parallel and also precedes precoding.
func BuildDownlinkDAG(cfg CellConfig, slot int, release, deadline sim.Time, allocs []UEAlloc) *DAG {
	return BuildDownlinkDAGInto(new(DAG), cfg, slot, release, deadline, allocs)
}

// BuildDownlinkDAGInto rebuilds d in place as the downlink graph, reusing
// its slab and scratch. It returns d.
func BuildDownlinkDAGInto(d *DAG, cfg CellConfig, slot int, release, deadline sim.Time, allocs []UEAlloc) *DAG {
	d.prepare(cfg.ID, slot, Downlink, release, deadline, downlinkTaskCount(cfg, allocs))
	base := baseFeatures(cfg, allocs)

	ctl := d.addTask(TaskPolarEncode, -1, base)
	encodeKind := TaskLDPCEncode
	if cfg.Generation == LTE {
		encodeKind = TaskTurboEncode
	}
	modTasks := d.scratchA[:0]
	for _, a := range allocs {
		f := ueFeatures(base, a, a.Codeblocks)
		encodes := d.scratchB[:0]
		for cb := 0; cb < a.Codeblocks; cb += decodeGroupSize {
			n := decodeGroupSize
			if cb+n > a.Codeblocks {
				n = a.Codeblocks - cb
			}
			g := ueFeatures(base, a, n)
			encodes = append(encodes, d.addTask(encodeKind, a.UE, g))
		}
		d.scratchB = encodes
		rm := d.addTask(TaskRateMatch, a.UE, f, encodes...)
		modTasks = append(modTasks, d.addTask(TaskModulation, a.UE, f, rm))
	}
	precodeDeps := append(modTasks, ctl)
	d.scratchA = precodeDeps
	pcF := base
	pcF.Set(FPRBs, float64(cfg.PRBs()))
	pc := d.addTask(TaskPrecoding, -1, pcF, precodeDeps...)
	for a := 0; a < cfg.Antennas; a++ {
		d.addTask(TaskIFFT, -1, pcF, pc)
	}
	d.finalize()
	return d
}

// BuildMACDAG constructs the §7 MAC-layer extension DAG for one slot: the
// uplink and downlink radio-resource schedulers run in parallel and a build
// step assembles their grants. MAC deadlines are one slot (the grant must be
// ready for the next TTI), far tighter than the PHY DAG deadline.
func BuildMACDAG(cfg CellConfig, slot int, release, deadline sim.Time, ues int) *DAG {
	return BuildMACDAGInto(new(DAG), cfg, slot, release, deadline, ues)
}

// BuildMACDAGInto rebuilds d in place as the MAC-extension graph. It
// returns d.
func BuildMACDAGInto(d *DAG, cfg CellConfig, slot int, release, deadline sim.Time, ues int) *DAG {
	d.prepare(cfg.ID, slot, Downlink, release, deadline, 3)
	var f FeatureVector
	f.Set(FNumUEs, float64(ues))
	f.Set(FAntennas, float64(cfg.Antennas))
	f.Set(FLayers, float64(cfg.MaxLayers))
	ul := d.addTask(TaskMACUplinkSched, -1, f)
	dl := d.addTask(TaskMACDownlinkSched, -1, f)
	d.addTask(TaskMACBuild, -1, f, ul, dl)
	d.finalize()
	return d
}
