package ran

import (
	"math"

	"concordia/internal/phy"
)

// MCS is one row of the modulation-and-coding-scheme table: a constellation
// plus a target code rate.
type MCS struct {
	Index      int
	Modulation phy.Modulation
	CodeRate   float64 // information bits per coded bit
}

// MCSTable is a condensed 38.214-style table spanning QPSK 1/5 through
// 256QAM 0.93. Link adaptation picks a row from SNR.
var MCSTable = []MCS{
	{0, phy.QPSK, 0.19}, {1, phy.QPSK, 0.30}, {2, phy.QPSK, 0.44},
	{3, phy.QPSK, 0.59}, {4, phy.QAM16, 0.37}, {5, phy.QAM16, 0.48},
	{6, phy.QAM16, 0.60}, {7, phy.QAM16, 0.74}, {8, phy.QAM64, 0.55},
	{9, phy.QAM64, 0.65}, {10, phy.QAM64, 0.75}, {11, phy.QAM64, 0.85},
	{12, phy.QAM256, 0.70}, {13, phy.QAM256, 0.78}, {14, phy.QAM256, 0.86},
	{15, phy.QAM256, 0.93},
}

// MCSFromSNR performs idealized link adaptation: the highest MCS whose
// Shannon-gap-adjusted spectral efficiency fits the SNR.
func MCSFromSNR(snrDB float64) MCS {
	// Effective capacity with a 3 dB implementation gap.
	cap := math.Log2(1 + math.Pow(10, (snrDB-3)/10))
	best := MCSTable[0]
	for _, m := range MCSTable {
		eff := float64(m.Modulation.BitsPerSymbol()) * m.CodeRate
		if eff <= cap {
			best = m
		}
	}
	return best
}

// resourceElementsPerPRB is the data-bearing REs in one PRB over one slot:
// 12 subcarriers × 14 symbols minus ~18% control/DM-RS overhead.
const resourceElementsPerPRB = 12 * 14 * 82 / 100

// TransportBlockSize returns the TBS in bits for an allocation of prbs
// physical resource blocks at the given MCS and layer count, following the
// 38.214 intermediate-number-of-bits procedure (simplified: byte-aligned,
// minimum 24 bits).
func TransportBlockSize(prbs int, mcs MCS, layers int) int {
	if prbs <= 0 || layers <= 0 {
		return 0
	}
	re := prbs * resourceElementsPerPRB
	n := float64(re) * float64(mcs.Modulation.BitsPerSymbol()) * mcs.CodeRate * float64(layers)
	tbs := int(n/8) * 8
	if tbs < 24 {
		tbs = 24
	}
	return tbs
}

// PRBsForBytes returns the minimum PRB allocation that carries payloadBytes
// at the given MCS and layers, capped at maxPRB.
func PRBsForBytes(payloadBytes int, mcs MCS, layers, maxPRB int) int {
	if payloadBytes <= 0 {
		return 0
	}
	need := payloadBytes * 8
	perPRB := TransportBlockSize(1, mcs, layers)
	if perPRB <= 0 {
		return maxPRB
	}
	prbs := (need + perPRB - 1) / perPRB
	if prbs > maxPRB {
		prbs = maxPRB
	}
	return prbs
}

// CodeblockCount returns the number of LDPC codeblocks a TBS segments into.
func CodeblockCount(tbsBits int) int {
	if tbsBits <= 0 {
		return 0
	}
	seg, err := phy.Segment(tbsBits)
	if err != nil {
		return 0
	}
	return seg.NumBlocks
}
