//go:build poolcheck

package ran

import "testing"

// Poolcheck poison tests for DAG slabs (DESIGN.md §5g). Only compiled under
// -tags poolcheck.

func TestPoolcheckPoisonMarksSlabDead(t *testing.T) {
	d := &DAG{}
	d.prepare(1, 2, Uplink, 0, 1000, 2)
	root := d.addTask(TaskFFT, -1, FeatureVector{})
	d.addTask(TaskChannelEstimation, -1, FeatureVector{}, root)
	d.finalize()

	stale := d.Tasks[0] // a pointer retained across the recycle
	PoolcheckPoison(d, 9)

	if len(d.Tasks) != 0 || len(d.roots) != 0 {
		t.Errorf("poisoned DAG still exposes %d tasks / %d roots", len(d.Tasks), len(d.roots))
	}
	if stale.Kind < NumTaskKinds {
		t.Errorf("stale task kind %v not poisoned; a cost-model lookup would silently succeed", stale.Kind)
	}
	if stale.ID != pcPoisonID || stale.UE != pcPoisonID {
		t.Errorf("stale task IDs not poisoned: ID=%d UE=%d", stale.ID, stale.UE)
	}
	if d.CellID != pcPoisonID || d.Slot != pcPoisonID {
		t.Errorf("DAG header not poisoned: cell=%d slot=%d", d.CellID, d.Slot)
	}
}

// TestPoolcheckPoisonedKindPanicsOnLookup pins the poison's design: a stale
// Kind indexes past every per-kind table, so the first lookup crashes
// instead of reading another run's entry.
func TestPoolcheckPoisonedKindPanicsOnLookup(t *testing.T) {
	d := &DAG{}
	d.prepare(0, 0, Uplink, 0, 1000, 1)
	d.addTask(TaskFFT, -1, FeatureVector{})
	d.finalize()
	stale := d.Tasks[0]
	PoolcheckPoison(d, 1)

	var table [NumTaskKinds]float64
	defer func() {
		if recover() == nil {
			t.Fatal("indexing a per-kind table with a poisoned Kind did not panic")
		}
	}()
	_ = table[stale.Kind]
}

func TestPoolcheckPrepareUnpoisons(t *testing.T) {
	d := &DAG{}
	d.prepare(1, 2, Uplink, 0, 1000, 1)
	d.addTask(TaskFFT, -1, FeatureVector{})
	d.finalize()
	PoolcheckPoison(d, 1)

	d.prepare(3, 4, Downlink, 0, 500, 1)
	id := d.addTask(TaskFFT, -1, FeatureVector{})
	d.finalize()
	if d.CellID != 3 || d.Tasks[id].Kind != TaskFFT {
		t.Errorf("rebuild after poison left stale state: cell=%d kind=%v", d.CellID, d.Tasks[id].Kind)
	}
}
