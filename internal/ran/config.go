// Package ran models the 5G NR radio access network structures the
// scheduler operates on: numerologies and slot timing, cell configurations
// (the paper's Table 1/2 deployments), MCS and transport-block sizing, and —
// centrally — the per-slot signal-processing task DAGs of Fig 1 (uplink) and
// Fig 16 (downlink) whose deadlines Concordia must meet.
package ran

import (
	"fmt"

	"concordia/internal/sim"
)

// Numerology is the NR subcarrier-spacing index µ (38.211): SCS = 15·2^µ kHz
// and slot duration 1 ms / 2^µ.
type Numerology int

// Supported numerologies.
const (
	Mu0 Numerology = 0 // 15 kHz, 1 ms slots (the paper's 20 MHz cells)
	Mu1 Numerology = 1 // 30 kHz, 0.5 ms slots (the paper's 100 MHz cells)
	Mu2 Numerology = 2 // 60 kHz, 0.25 ms slots
	Mu3 Numerology = 3 // 120 kHz, 62.5 µs slots
)

// SlotDuration returns the TTI length for the numerology.
func (n Numerology) SlotDuration() sim.Time {
	return sim.Millisecond >> uint(n)
}

// SlotsPerSecond returns the number of TTIs per second.
func (n Numerology) SlotsPerSecond() int { return 1000 << uint(n) }

// Generation selects the RAT generation: it picks the coding path of the
// data channels (4G turbo vs 5G LDPC, §A.1).
type Generation int

// RAT generations.
const (
	NR  Generation = iota // 5G: LDPC data coding (the default)
	LTE                   // 4G: turbo data coding
)

// Duplex selects the duplexing scheme of a cell.
type Duplex int

// Duplexing schemes.
const (
	FDD Duplex = iota // every slot carries both uplink and downlink
	TDD               // slots alternate per the cell's TDD pattern
)

// SlotDir is the direction a TDD slot is assigned to.
type SlotDir int

// Slot directions. Special slots carry both (guard-dominated, reduced data).
const (
	Downlink SlotDir = iota
	Uplink
	Special
)

// String implements fmt.Stringer.
func (d SlotDir) String() string {
	switch d {
	case Downlink:
		return "D"
	case Uplink:
		return "U"
	case Special:
		return "S"
	default:
		return "?"
	}
}

// DefaultTDDPattern is the common 5-slot DDDSU frame the paper's TDD cells
// use: three downlink slots, one special, one uplink.
var DefaultTDDPattern = []SlotDir{Downlink, Downlink, Downlink, Special, Uplink}

// CellConfig describes one cell of a vRAN pool.
type CellConfig struct {
	ID           int
	BandwidthMHz int
	Numerology   Numerology
	Generation   Generation
	Duplex       Duplex
	TDDPattern   []SlotDir // used when Duplex == TDD; nil selects the default
	Antennas     int       // gNB antenna ports
	MaxLayers    int       // spatial layers per UE
	MaxUEs       int       // maximum simultaneously scheduled UEs per slot
}

// Validate reports configuration errors.
func (c CellConfig) Validate() error {
	if c.BandwidthMHz <= 0 {
		return fmt.Errorf("ran: cell %d has non-positive bandwidth", c.ID)
	}
	if c.Numerology < Mu0 || c.Numerology > Mu3 {
		return fmt.Errorf("ran: cell %d has unsupported numerology %d", c.ID, c.Numerology)
	}
	if c.Antennas <= 0 || c.MaxLayers <= 0 || c.MaxLayers > c.Antennas {
		return fmt.Errorf("ran: cell %d has invalid antenna/layer config", c.ID)
	}
	if c.MaxUEs <= 0 {
		return fmt.Errorf("ran: cell %d has non-positive MaxUEs", c.ID)
	}
	return nil
}

// PRBs approximates the NR transmission-bandwidth table (38.101-1): usable
// physical resource blocks for the bandwidth and numerology.
func (c CellConfig) PRBs() int {
	scsKHz := 15 << uint(c.Numerology)
	// Guard band consumes roughly 2% + fixed edge; the 38.101 tables are
	// within a few PRBs of bandwidth*1000*0.95/(12*scs).
	prb := int(float64(c.BandwidthMHz) * 1000 * 0.95 / float64(12*scsKHz))
	if prb < 1 {
		prb = 1
	}
	return prb
}

// SlotDir returns the direction of the given absolute slot index.
func (c CellConfig) SlotDir(slot int) SlotDir {
	if c.Duplex == FDD {
		// FDD carries both; callers treat FDD specially. Report Downlink for
		// pattern-indexed uses.
		return Downlink
	}
	pat := c.TDDPattern
	if len(pat) == 0 {
		pat = DefaultTDDPattern
	}
	return pat[slot%len(pat)]
}

// PeakSlotBytes returns the maximum MAC payload bytes one slot can carry in
// the given direction, derived from the top MCS and full PRB allocation.
func (c CellConfig) PeakSlotBytes(dir SlotDir) int {
	mcs := MCSTable[len(MCSTable)-1]
	tbs := TransportBlockSize(c.PRBs(), mcs, c.MaxLayers)
	return tbs / 8 * c.MaxUEs / c.MaxUEs // per-slot ceiling shared across UEs
}

// Preset cell configurations matching the paper's Table 1/Table 2.
//
// Cells100MHz returns n 100 MHz TDD cells (µ=1, 0.5 ms slots, 4 antennas).
func Cells100MHz(n int) []CellConfig {
	out := make([]CellConfig, n)
	for i := range out {
		out[i] = CellConfig{
			ID:           i,
			BandwidthMHz: 100,
			Numerology:   Mu1,
			Duplex:       TDD,
			Antennas:     4,
			MaxLayers:    4,
			MaxUEs:       16,
		}
	}
	return out
}

// CellsLTE returns n 20 MHz LTE FDD cells (1 ms TTIs, turbo coding) — the
// cell class behind the §2.2 trace measurements.
func CellsLTE(n int) []CellConfig {
	out := Cells20MHz(n)
	for i := range out {
		out[i].Generation = LTE
	}
	return out
}

// Cells20MHz returns n 20 MHz FDD cells (µ=0, 1 ms slots, 2 antennas).
func Cells20MHz(n int) []CellConfig {
	out := make([]CellConfig, n)
	for i := range out {
		out[i] = CellConfig{
			ID:           i,
			BandwidthMHz: 20,
			Numerology:   Mu0,
			Duplex:       FDD,
			Antennas:     2,
			MaxLayers:    2,
			MaxUEs:       8,
		}
	}
	return out
}
