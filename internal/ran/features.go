package ran

// Feature indexes one element of a task's input-parameter vector. The WCET
// predictor (Algorithm 1) selects a per-task subset of these; the cost model
// uses them to produce input-dependent runtimes.
type Feature int

// The vRAN state features the paper's predictor draws from ("number of
// scheduled UEs and their transport block sizes, number of layers, etc").
const (
	FNumUEs     Feature = iota // UEs scheduled in the slot (cell-wide)
	FTBSBits                   // transport block size of this task's UE
	FCodeblocks                // LDPC codeblocks this task covers
	FMCSIndex                  // link-adaptation row
	FModOrder                  // bits per symbol
	FCodeRate                  // LDPC code rate
	FLayers                    // spatial layers
	FSNRdB                     // wideband SNR of the UE
	FPRBs                      // allocated physical resource blocks
	FAntennas                  // gNB antenna ports
	FSlotBytes                 // total MAC bytes in the slot (cell-wide)
	FPoolCores                 // worker cores currently assigned to the pool
	NumFeatures
)

// FeatureNames maps features to the labels used in reports.
var FeatureNames = [NumFeatures]string{
	"num_ues", "tbs_bits", "codeblocks", "mcs_index", "mod_order",
	"code_rate", "layers", "snr_db", "prbs", "antennas", "slot_bytes",
	"pool_cores",
}

// String implements fmt.Stringer.
func (f Feature) String() string {
	if f < 0 || f >= NumFeatures {
		return "unknown"
	}
	return FeatureNames[f]
}

// FeatureVector is a task's full input-parameter vector.
type FeatureVector [NumFeatures]float64

// Get returns the value of feature f.
func (v FeatureVector) Get(f Feature) float64 { return v[f] }

// Set assigns feature f.
func (v *FeatureVector) Set(f Feature, x float64) { v[f] = x }

// Select extracts the named subset as a plain slice, in order.
func (v FeatureVector) Select(fs []Feature) []float64 {
	out := make([]float64, len(fs))
	for i, f := range fs {
		out[i] = v[f]
	}
	return out
}
