package ran

import (
	"concordia/internal/rng"
)

// SlotAllocator owns the scratch buffers AllocateSlot would otherwise
// allocate per call. One allocator per traffic direction per pool; the
// returned slice is valid until the next Allocate on the same allocator.
type SlotAllocator struct {
	weights []float64
	out     []UEAlloc
}

// Allocate is AllocateSlot with reusable buffers. Draw order on r is
// identical to AllocateSlot, so substituting one for the other cannot
// perturb a seeded run.
func (s *SlotAllocator) Allocate(cfg CellConfig, payloadBytes int, r *rng.Rand) []UEAlloc {
	if payloadBytes <= 0 {
		return nil
	}
	return allocateSlot(s, cfg, payloadBytes, r)
}

// AllocateSlot converts a slot's MAC payload demand (bytes) into per-UE
// allocations: it draws active UEs, assigns them wideband SNRs (which fix
// their MCS through link adaptation), splits the payload, and sizes PRBs and
// transport blocks. The returned allocations are what the DAG builders and
// the WCET predictor see as the vRAN state of the TTI.
func AllocateSlot(cfg CellConfig, payloadBytes int, r *rng.Rand) []UEAlloc {
	if payloadBytes <= 0 {
		return nil
	}
	return allocateSlot(new(SlotAllocator), cfg, payloadBytes, r)
}

func allocateSlot(s *SlotAllocator, cfg CellConfig, payloadBytes int, r *rng.Rand) []UEAlloc {
	// Active UE count grows sub-linearly with the payload: small slots are
	// usually one UE, peak slots spread across several.
	maxUEs := cfg.MaxUEs
	n := 1 + r.Poisson(float64(payloadBytes)/4096)
	if n > maxUEs {
		n = maxUEs
	}
	// Random payload split across UEs.
	if cap(s.weights) < n {
		s.weights = make([]float64, n)
	}
	weights := s.weights[:n]
	var wsum float64
	for i := range weights {
		weights[i] = 0.2 + r.Float64()
		wsum += weights[i]
	}
	prbBudget := cfg.PRBs()
	if cap(s.out) < n {
		s.out = make([]UEAlloc, 0, n)
	}
	out := s.out[:0]
	for i := 0; i < n && prbBudget > 0; i++ {
		ueBytes := int(float64(payloadBytes) * weights[i] / wsum)
		if ueBytes <= 0 {
			continue
		}
		// SNR drawn from a truncated normal around a healthy operating
		// point; poor SNR UEs exist and stress the decoder.
		snr := r.Normal(18, 7)
		if snr < 0 {
			snr = 0
		}
		if snr > 32 {
			snr = 32
		}
		mcs := MCSFromSNR(snr)
		layers := 1 + r.Intn(cfg.MaxLayers)
		prbs := PRBsForBytes(ueBytes, mcs, layers, prbBudget)
		if prbs == 0 {
			continue
		}
		prbBudget -= prbs
		tbs := TransportBlockSize(prbs, mcs, layers)
		out = append(out, UEAlloc{
			UE:         i,
			SNRdB:      snr,
			MCS:        mcs,
			Layers:     layers,
			PRBs:       prbs,
			TBSBits:    tbs,
			Codeblocks: CodeblockCount(tbs),
		})
	}
	s.out = out
	return out
}
