package ran

import (
	"concordia/internal/rng"
)

// AllocateSlot converts a slot's MAC payload demand (bytes) into per-UE
// allocations: it draws active UEs, assigns them wideband SNRs (which fix
// their MCS through link adaptation), splits the payload, and sizes PRBs and
// transport blocks. The returned allocations are what the DAG builders and
// the WCET predictor see as the vRAN state of the TTI.
func AllocateSlot(cfg CellConfig, payloadBytes int, r *rng.Rand) []UEAlloc {
	if payloadBytes <= 0 {
		return nil
	}
	// Active UE count grows sub-linearly with the payload: small slots are
	// usually one UE, peak slots spread across several.
	maxUEs := cfg.MaxUEs
	n := 1 + r.Poisson(float64(payloadBytes)/4096)
	if n > maxUEs {
		n = maxUEs
	}
	// Random payload split across UEs.
	weights := make([]float64, n)
	var wsum float64
	for i := range weights {
		weights[i] = 0.2 + r.Float64()
		wsum += weights[i]
	}
	prbBudget := cfg.PRBs()
	out := make([]UEAlloc, 0, n)
	for i := 0; i < n && prbBudget > 0; i++ {
		ueBytes := int(float64(payloadBytes) * weights[i] / wsum)
		if ueBytes <= 0 {
			continue
		}
		// SNR drawn from a truncated normal around a healthy operating
		// point; poor SNR UEs exist and stress the decoder.
		snr := r.Normal(18, 7)
		if snr < 0 {
			snr = 0
		}
		if snr > 32 {
			snr = 32
		}
		mcs := MCSFromSNR(snr)
		layers := 1 + r.Intn(cfg.MaxLayers)
		prbs := PRBsForBytes(ueBytes, mcs, layers, prbBudget)
		if prbs == 0 {
			continue
		}
		prbBudget -= prbs
		tbs := TransportBlockSize(prbs, mcs, layers)
		out = append(out, UEAlloc{
			UE:         i,
			SNRdB:      snr,
			MCS:        mcs,
			Layers:     layers,
			PRBs:       prbs,
			TBSBits:    tbs,
			Codeblocks: CodeblockCount(tbs),
		})
	}
	return out
}
