//go:build !poolcheck

package ran

// PoolcheckEnabled reports whether the poolcheck sanitizer (DESIGN.md §5g)
// is compiled in. Normal builds carry only this constant and an empty
// PoolcheckPoison, so the zero-alloc hot path pays nothing.
const PoolcheckEnabled = false

// PoolcheckPoison is a no-op without the poolcheck build tag.
func PoolcheckPoison(d *DAG, seq int64) {}
