package accel

import (
	"testing"

	"concordia/internal/ran"
	"concordia/internal/sim"
)

func TestGroupFor(t *testing.T) {
	if g, ok := GroupFor(ran.TaskLDPCDecode); !ok || g != QG5GUL {
		t.Fatalf("decode → %v,%v want 5g_ul", g, ok)
	}
	if g, ok := GroupFor(ran.TaskLDPCEncode); !ok || g != QG5GDL {
		t.Fatalf("encode → %v,%v want 5g_dl", g, ok)
	}
	if _, ok := GroupFor(ran.TaskModulation); ok {
		t.Fatal("modulation must not map to a queue group")
	}
	if QG5GUL.String() != "5g_ul" || QG4GDL.String() != "4g_dl" {
		t.Fatal("queue group names wrong")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	a := NewFleet(1, 1, 1, 2, sim.FromUs(10), sim.FromUs(1))
	for i := 0; i < 2; i++ {
		if _, err := a.Submit(0, ran.TaskLDPCDecode, 1); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if _, err := a.Submit(0, ran.TaskLDPCDecode, 1); err != ErrQueueFull {
		t.Fatalf("third request at depth 2: err = %v, want ErrQueueFull", err)
	}
	// Queue groups are independent: the 5G DL queue still has room.
	if _, err := a.Submit(0, ran.TaskLDPCEncode, 1); err != nil {
		t.Fatalf("encode into its own queue group: %v", err)
	}
	// Once the first decode drains (done=10µs), admission reopens.
	if _, err := a.Submit(sim.FromUs(10), ran.TaskLDPCDecode, 1); err != nil {
		t.Fatalf("after drain: %v", err)
	}
}

func TestDeviceDownRoutesToSurvivors(t *testing.T) {
	a := NewFleet(2, 1, 2, 0, sim.FromUs(10), sim.FromUs(1))
	var last OffloadRecord
	a.Probe = func(r OffloadRecord) { last = r }

	if !a.SetDeviceDown(0, true) {
		t.Fatal("SetDeviceDown should report a state change")
	}
	if a.SetDeviceDown(0, true) {
		t.Fatal("repeated SetDeviceDown must be a no-op")
	}
	if _, err := a.Submit(0, ran.TaskLDPCDecode, 1); err != nil {
		t.Fatal(err)
	}
	if last.Device != 1 || last.Lane < 2 || last.Lane > 3 {
		t.Fatalf("request routed to device %d lane %d, want surviving device 1 (lanes 2-3)", last.Device, last.Lane)
	}

	a.SetDeviceDown(1, true)
	if _, err := a.Submit(0, ran.TaskLDPCDecode, 1); err != ErrDeviceDown {
		t.Fatalf("whole fleet down: err = %v, want ErrDeviceDown", err)
	}

	a.SetDeviceDown(0, false)
	if _, err := a.Submit(0, ran.TaskLDPCDecode, 1); err != nil {
		t.Fatalf("after device 0 rejoined: %v", err)
	}
	if last.Device != 0 {
		t.Fatalf("request routed to device %d, want rejoined device 0", last.Device)
	}
}

// Reconcile must spread the fleet's aggregate admission depth across the
// surviving devices: with half the fleet in reset, surviving VF queues
// double their depth, so total admission capacity is preserved.
func TestReconcileRepartitionsDepth(t *testing.T) {
	fill := func(a *Accelerator) int {
		n := 0
		for {
			if _, err := a.Submit(0, ran.TaskLDPCDecode, 1); err != nil {
				if err != ErrQueueFull {
					t.Fatalf("fill stopped on %v, want ErrQueueFull", err)
				}
				return n
			}
			n++
		}
	}

	// Before reconciliation: device 0 down, depths unchanged → device 1's
	// 2 VFs × depth 4 admit 8 decodes.
	a := NewFleet(2, 2, 1, 4, sim.FromUs(10), sim.FromUs(1))
	a.SetDeviceDown(0, true)
	if got := fill(a); got != 8 {
		t.Fatalf("pre-reconcile capacity %d, want 8", got)
	}

	// After reconciliation: aggregate depth 4×2×2=16 re-partitioned over
	// the 2 surviving VFs → depth 8 each, capacity preserved.
	b := NewFleet(2, 2, 1, 4, sim.FromUs(10), sim.FromUs(1))
	b.SetDeviceDown(0, true)
	if alive := b.Reconcile(); alive != 1 {
		t.Fatalf("Reconcile reported %d alive devices, want 1", alive)
	}
	if got := fill(b); got != 16 {
		t.Fatalf("post-reconcile capacity %d, want 16", got)
	}

	// Rejoin restores the nominal partition.
	b.SetDeviceDown(0, false)
	if alive := b.Reconcile(); alive != 2 {
		t.Fatalf("after rejoin Reconcile reported %d alive, want 2", alive)
	}
}

// Probe invariants under contention, across fleet shapes: every accepted
// request's record must satisfy Start ≥ Submitted, Done = Start + processing,
// and in-range lane/device/VF ids; Busy-based utilization stays ≤ 1.
func TestProbeInvariantsUnderContention(t *testing.T) {
	shapes := []struct {
		name                     string
		devices, vfs, eng, depth int
	}{
		{"legacy-1x2", 1, 1, 2, 0},
		{"fleet-2x2x2-d8", 2, 2, 2, 8},
		{"fleet-3x2x1-d4", 3, 2, 1, 4},
		{"fleet-4x1x3-d16", 4, 1, 3, 16},
	}
	for _, s := range shapes {
		t.Run(s.name, func(t *testing.T) {
			a := NewFleet(s.devices, s.vfs, s.eng, s.depth, sim.FromUs(18), sim.FromUs(2))
			var maxDone sim.Time
			var accepted int
			a.Probe = func(r OffloadRecord) {
				if r.Start < r.Submitted {
					t.Fatalf("Start %v < Submitted %v", r.Start, r.Submitted)
				}
				proc, err := a.Expected(r.Kind, r.Codeblocks)
				if err != nil {
					t.Fatalf("Expected on accepted kind: %v", err)
				}
				if r.Done != r.Start+proc {
					t.Fatalf("Done %v != Start %v + proc %v", r.Done, r.Start, proc)
				}
				if r.Lane < 0 || r.Lane >= a.Lanes {
					t.Fatalf("lane %d out of range [0,%d)", r.Lane, a.Lanes)
				}
				if r.Device < 0 || r.Device >= s.devices {
					t.Fatalf("device %d out of range [0,%d)", r.Device, s.devices)
				}
				if r.VF < 0 || r.VF >= s.vfs {
					t.Fatalf("VF %d out of range [0,%d)", r.VF, s.vfs)
				}
				if r.Done > maxDone {
					maxDone = r.Done
				}
				accepted++
			}
			kinds := [2]ran.TaskKind{ran.TaskLDPCDecode, ran.TaskLDPCEncode}
			for i := 0; i < 300; i++ {
				now := sim.Time(i) * sim.FromUs(3)
				_, err := a.Submit(now, kinds[i%2], 1+i%7)
				if err != nil && err != ErrQueueFull {
					t.Fatalf("request %d: %v", i, err)
				}
			}
			if accepted == 0 {
				t.Fatal("contention run accepted no requests")
			}
			if u := a.Utilization(maxDone); u <= 0 || u > 1.0 {
				t.Fatalf("utilization %v out of (0, 1]", u)
			}
		})
	}
}

// A batch must produce exactly the schedule the same requests get when
// submitted one by one: batching only amortizes the CPU-side SubmitCost, it
// does not change device-side admission.
func TestSubmitBatchMatchesSequential(t *testing.T) {
	mk := func() *Accelerator { return NewFleet(2, 2, 2, 8, sim.FromUs(18), sim.FromUs(2)) }
	batched, serial := mk(), mk()
	cbs := []int{3, 1, 7, 2, 5}
	dones := make([]sim.Time, len(cbs))
	now := sim.FromUs(50)

	n, err := batched.SubmitBatch(now, ran.TaskLDPCDecode, cbs, dones)
	if err != nil || n != len(cbs) {
		t.Fatalf("SubmitBatch = %d, %v; want %d, nil", n, err, len(cbs))
	}
	for i, c := range cbs {
		want, err := serial.Submit(now, ran.TaskLDPCDecode, c)
		if err != nil {
			t.Fatal(err)
		}
		if dones[i] != want {
			t.Fatalf("request %d: batched done %v != sequential %v", i, dones[i], want)
		}
	}
	if batched.Busy != serial.Busy {
		t.Fatalf("busy time diverged: batched %v sequential %v", batched.Busy, serial.Busy)
	}
}

func TestSubmitBatchStopsAtRejection(t *testing.T) {
	a := NewFleet(1, 1, 1, 3, sim.FromUs(10), sim.FromUs(1))
	cbs := []int{1, 1, 1, 1, 1}
	dones := make([]sim.Time, len(cbs))
	n, err := a.SubmitBatch(0, ran.TaskLDPCDecode, cbs, dones)
	if n != 3 || err != ErrQueueFull {
		t.Fatalf("SubmitBatch = %d, %v; want 3, ErrQueueFull", n, err)
	}
	for i := 0; i < n; i++ {
		if dones[i] != sim.FromUs(10)*sim.Time(i+1) {
			t.Fatalf("done[%d] = %v, want %v", i, dones[i], sim.FromUs(10)*sim.Time(i+1))
		}
	}
	if _, err := a.SubmitBatch(0, ran.TaskLDPCDecode, cbs, dones[:2]); err == nil {
		t.Fatal("short dones buffer must be rejected")
	}
}

func BenchmarkBatchedSubmit(b *testing.B) {
	a := NewFleet(2, 2, 2, 0, sim.FromUs(18), sim.FromUs(2))
	cbs := []int{5, 5, 5, 5, 5, 5, 5, 5}
	dones := make([]sim.Time, len(cbs))
	// Warm the admission queues so steady-state appends reuse capacity.
	for i := 0; i < 8; i++ {
		_, _ = a.SubmitBatch(sim.Time(i)*sim.FromUs(120), ran.TaskLDPCDecode, cbs, dones)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i+8) * sim.FromUs(120)
		if _, err := a.SubmitBatch(now, ran.TaskLDPCDecode, cbs, dones); err != nil {
			b.Fatal(err)
		}
	}
}
