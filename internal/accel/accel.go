// Package accel models the hardware-accelerator extension of §7: an FPGA
// (the paper uses a Terasic DE5-Net) that offloads LDPC encoding and
// decoding. Offloaded work leaves the CPU after a small submit cost and
// completes after queueing plus per-codeblock processing on one of the
// device's lanes; the DAG cannot progress past the offloaded task until the
// device finishes — the blocking time Table 4 quantifies.
package accel

import (
	"errors"

	"concordia/internal/ran"
	"concordia/internal/sim"
)

// Accelerator models the offload device.
type Accelerator struct {
	// Lanes is the number of independent processing engines.
	Lanes int
	// PerCodeblock is the device processing time per LDPC codeblock
	// (decode); encode runs at half that.
	PerCodeblock sim.Time
	// SubmitCost is the CPU-side cost of DMA setup per offload request.
	SubmitCost sim.Time

	// Probe, when non-nil, observes every accepted offload request at
	// submission time (telemetry attaches here). The record carries the
	// device-side schedule the FIFO lane model already decided — start,
	// completion, lane — so the observer needs no further bookkeeping.
	Probe func(OffloadRecord)

	laneFree []sim.Time
	// Busy integrates device busy lane-time for utilization accounting.
	Busy sim.Time
}

// OffloadRecord describes one accepted accelerator request.
type OffloadRecord struct {
	// Submitted is when the request entered the device queue; Start and Done
	// bound the device processing interval on the chosen lane.
	Submitted, Start, Done sim.Time
	Kind                   ran.TaskKind
	Lane                   int
	Codeblocks             int
}

// DefaultFPGA returns an accelerator calibrated so offloaded LDPC work is
// roughly an order of magnitude cheaper in CPU terms than software decoding,
// matching the Table 4 regime (total UL slot ≈ 2.7× the non-offloaded CPU
// time).
func DefaultFPGA() *Accelerator {
	return New(2, sim.FromUs(18), sim.FromUs(2))
}

// New constructs an accelerator.
func New(lanes int, perCodeblock, submitCost sim.Time) *Accelerator {
	if lanes <= 0 {
		lanes = 1
	}
	return &Accelerator{
		Lanes:        lanes,
		PerCodeblock: perCodeblock,
		SubmitCost:   submitCost,
		laneFree:     make([]sim.Time, lanes),
	}
}

// Offloads reports whether the device handles the given task kind.
func (a *Accelerator) Offloads(kind ran.TaskKind) bool {
	return kind == ran.TaskLDPCDecode || kind == ran.TaskLDPCEncode
}

// ErrNotOffloadable is returned for task kinds the device does not handle.
var ErrNotOffloadable = errors.New("accel: task kind not offloadable")

// ErrNoLanes is returned by Submit when the device has no processing lanes
// (a zero-value or misconfigured Accelerator). Callers recover by executing
// on the CPU instead; previously this indexed an empty lane table and
// panicked.
var ErrNoLanes = errors.New("accel: accelerator has no processing lanes")

// ErrInvalidRate is returned by Submit when PerCodeblock is non-positive: a
// zero or negative processing rate would complete requests instantly or in
// the past, wedging or panicking the discrete-event engine downstream.
var ErrInvalidRate = errors.New("accel: non-positive per-codeblock processing time")

// processing returns the device time for one request.
func (a *Accelerator) processing(kind ran.TaskKind, codeblocks int) (sim.Time, error) {
	if a.PerCodeblock <= 0 {
		return 0, ErrInvalidRate
	}
	if codeblocks < 1 {
		codeblocks = 1
	}
	switch kind {
	case ran.TaskLDPCDecode:
		return a.PerCodeblock * sim.Time(codeblocks), nil
	case ran.TaskLDPCEncode:
		return a.PerCodeblock / 2 * sim.Time(codeblocks), nil
	default:
		return 0, ErrNotOffloadable
	}
}

// Submit enqueues a request at time now and returns its completion time.
// The request takes the earliest-free lane (FIFO per lane). A device with no
// usable lanes or a non-positive processing rate returns a typed error
// (ErrNoLanes, ErrInvalidRate) so the pool can fall back to CPU execution.
func (a *Accelerator) Submit(now sim.Time, kind ran.TaskKind, codeblocks int) (sim.Time, error) {
	proc, err := a.processing(kind, codeblocks)
	if err != nil {
		return 0, err
	}
	if a.Lanes <= 0 {
		return 0, ErrNoLanes
	}
	if len(a.laneFree) == 0 {
		// Struct-literal construction bypassed New; size the lane table now.
		a.laneFree = make([]sim.Time, a.Lanes)
	}
	best := 0
	for i := 1; i < len(a.laneFree); i++ {
		if a.laneFree[i] < a.laneFree[best] {
			best = i
		}
	}
	start := a.laneFree[best]
	if start < now {
		start = now
	}
	done := start + proc
	a.laneFree[best] = done
	a.Busy += proc
	if a.Probe != nil {
		a.Probe(OffloadRecord{
			Submitted: now, Start: start, Done: done,
			Kind: kind, Lane: best, Codeblocks: codeblocks,
		})
	}
	return done, nil
}

// Expected returns the no-queueing latency of a request, used for WCET
// prediction of offloaded tasks.
func (a *Accelerator) Expected(kind ran.TaskKind, codeblocks int) sim.Time {
	proc, err := a.processing(kind, codeblocks)
	if err != nil {
		return 0
	}
	return proc
}

// Utilization returns device busy time over lanes × elapsed.
func (a *Accelerator) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return a.Busy.Seconds() / (float64(a.Lanes) * elapsed.Seconds())
}
