// Package accel models the hardware-accelerator extension of §7 as a small
// fleet of FEC devices (ACC100-like; the paper's testbed uses a Terasic
// DE5-Net) that offload LDPC encoding and decoding. Each device partitions
// its processing engines behind SR-IOV virtual functions (VFs), and each VF
// exposes one admission queue per 4G/5G UL/DL queue group, mirroring how
// production FEC operators configure the hardware. Offloaded work leaves the
// CPU after a small submit cost and completes after queueing plus
// per-codeblock processing on one of the device's engines; the DAG cannot
// progress past the offloaded task until the device finishes — the blocking
// time Table 4 quantifies.
//
// The zero-shape configuration (Devices/VFsPerDevice ≤ 1, QueueDepth = 0)
// collapses to the original flat-lane FIFO model, so legacy callers see
// identical schedules.
package accel

import (
	"errors"

	"concordia/internal/ran"
	"concordia/internal/sim"
)

// QueueGroup identifies a device admission queue class. Real FEC devices
// partition VF queues by radio generation and direction; the simulator's
// workloads only exercise the 5G groups today, but the 4G groups are modeled
// so depth re-partitioning matches the hardware's group-granular config.
type QueueGroup uint8

const (
	// QG5GUL carries 5G uplink FEC: LDPC decode.
	QG5GUL QueueGroup = iota
	// QG5GDL carries 5G downlink FEC: LDPC encode.
	QG5GDL
	// QG4GUL carries 4G uplink FEC (turbo decode); reserved.
	QG4GUL
	// QG4GDL carries 4G downlink FEC (turbo encode); reserved.
	QG4GDL

	numQueueGroups
)

var queueGroupNames = [numQueueGroups]string{"5g_ul", "5g_dl", "4g_ul", "4g_dl"}

func (g QueueGroup) String() string {
	if int(g) < len(queueGroupNames) {
		return queueGroupNames[g]
	}
	return "unknown"
}

// GroupFor maps an offloadable task kind to its device queue group. The
// second return value is false for kinds the device does not handle.
func GroupFor(kind ran.TaskKind) (QueueGroup, bool) {
	switch kind {
	case ran.TaskLDPCDecode:
		return QG5GUL, true
	case ran.TaskLDPCEncode:
		return QG5GDL, true
	default:
		return 0, false
	}
}

// Accelerator models the offload device fleet.
type Accelerator struct {
	// Lanes is the total number of independent processing engines across
	// the fleet, distributed round-robin over Devices (low-indexed devices
	// take the remainder).
	Lanes int
	// PerCodeblock is the device processing time per LDPC codeblock
	// (decode); encode runs at half that.
	PerCodeblock sim.Time
	// SubmitCost is the CPU-side cost of DMA setup per offload request.
	// A batched submission pays it once for the whole batch.
	SubmitCost sim.Time

	// Devices is the number of FEC devices the engines are spread across.
	// Values ≤ 1 mean a single device (the legacy model).
	Devices int
	// VFsPerDevice is the number of SR-IOV virtual functions per device.
	// Values ≤ 1 mean one VF per device.
	VFsPerDevice int
	// QueueDepth is the nominal per-VF, per-queue-group admission bound.
	// 0 means unbounded (the legacy model). Reconcile re-partitions the
	// aggregate depth across the devices currently up, so surviving VFs
	// deepen when a device resets.
	QueueDepth int

	// Probe, when non-nil, observes every accepted offload request at
	// submission time (telemetry attaches here). The record carries the
	// device-side schedule the model already decided — start, completion,
	// device/VF/engine — so the observer needs no further bookkeeping.
	Probe func(OffloadRecord)

	// Busy integrates device busy engine-time for utilization accounting.
	Busy sim.Time

	devs []device
	// shape caches the exported fields devs was built for, so submissions
	// reconcile lazily after field mutation (struct-literal construction,
	// Lanes raised after New).
	shape fleetShape
}

type fleetShape struct {
	lanes, devices, vfs, depth int
}

// device is one ACC100-like FEC card: a slice of processing engines plus the
// VFs admission routes through.
type device struct {
	// down marks a device in reset: it accepts no new submissions while
	// in-flight work drains.
	down bool
	// base is the global lane index of engine 0, so OffloadRecord.Lane
	// stays a fleet-wide identifier.
	base int
	// engineFree[i] is when engine i next becomes idle (FIFO per engine).
	engineFree []sim.Time
	vfs        []vf
}

// vf is one SR-IOV virtual function: per-queue-group admission queues.
type vf struct {
	// pending holds completion times of in-flight requests per queue
	// group; entries at or before now are drained at admission.
	pending [numQueueGroups][]sim.Time
	// depth is the re-partitioned admission bound per group (0 =
	// unbounded).
	depth [numQueueGroups]int
}

// OffloadRecord describes one accepted accelerator request.
type OffloadRecord struct {
	// Submitted is when the request entered the device queue; Start and Done
	// bound the device processing interval on the chosen engine.
	Submitted, Start, Done sim.Time
	Kind                   ran.TaskKind
	// Lane is the fleet-wide engine index (device base + engine).
	Lane int
	// Device and VF identify the admission route.
	Device, VF int
	Codeblocks int
}

// DefaultFPGA returns an accelerator calibrated so offloaded LDPC work is
// roughly an order of magnitude cheaper in CPU terms than software decoding,
// matching the Table 4 regime (total UL slot ≈ 2.7× the non-offloaded CPU
// time).
func DefaultFPGA() *Accelerator {
	return New(2, sim.FromUs(18), sim.FromUs(2))
}

// New constructs a single-device accelerator (the legacy model).
func New(lanes int, perCodeblock, submitCost sim.Time) *Accelerator {
	if lanes <= 0 {
		lanes = 1
	}
	a := &Accelerator{
		Lanes:        lanes,
		PerCodeblock: perCodeblock,
		SubmitCost:   submitCost,
	}
	a.reconcileShape()
	return a
}

// NewFleet constructs a multi-device accelerator: devices cards, each with
// enginesPerDevice engines and vfsPerDevice VFs, each VF bounded to
// queueDepth in-flight requests per queue group (0 = unbounded).
func NewFleet(devices, vfsPerDevice, enginesPerDevice, queueDepth int, perCodeblock, submitCost sim.Time) *Accelerator {
	if devices < 1 {
		devices = 1
	}
	if enginesPerDevice < 1 {
		enginesPerDevice = 1
	}
	a := &Accelerator{
		Lanes:        devices * enginesPerDevice,
		PerCodeblock: perCodeblock,
		SubmitCost:   submitCost,
		Devices:      devices,
		VFsPerDevice: vfsPerDevice,
		QueueDepth:   queueDepth,
	}
	a.reconcileShape()
	return a
}

// Offloads reports whether the device handles the given task kind.
func (a *Accelerator) Offloads(kind ran.TaskKind) bool {
	_, ok := GroupFor(kind)
	return ok
}

// ErrNotOffloadable is returned for task kinds the device does not handle.
var ErrNotOffloadable = errors.New("accel: task kind not offloadable")

// ErrNoLanes is returned by Submit when the device has no processing lanes
// (a zero-value or misconfigured Accelerator). Callers recover by executing
// on the CPU instead; previously this indexed an empty lane table and
// panicked.
var ErrNoLanes = errors.New("accel: accelerator has no processing lanes")

// ErrInvalidRate is returned by Submit when PerCodeblock is non-positive: a
// zero or negative processing rate would complete requests instantly or in
// the past, wedging or panicking the discrete-event engine downstream.
var ErrInvalidRate = errors.New("accel: non-positive per-codeblock processing time")

// ErrQueueFull is returned by Submit when every candidate VF queue for the
// request's queue group is at its admission bound. The pool treats it as
// backpressure and falls back to CPU execution.
var ErrQueueFull = errors.New("accel: VF queue group at admission bound")

// ErrDeviceDown is returned by Submit when every device in the fleet is in
// reset. The pool treats it like a lane failure: fall back to CPU execution
// and let the reconciliation loop restore service.
var ErrDeviceDown = errors.New("accel: all devices in reset")

// processing returns the device time for one request.
func (a *Accelerator) processing(kind ran.TaskKind, codeblocks int) (sim.Time, error) {
	if a.PerCodeblock <= 0 {
		return 0, ErrInvalidRate
	}
	if codeblocks < 1 {
		codeblocks = 1
	}
	switch kind {
	case ran.TaskLDPCDecode:
		return a.PerCodeblock * sim.Time(codeblocks), nil
	case ran.TaskLDPCEncode:
		// Multiply before halving: dividing PerCodeblock first truncated
		// away up to codeblocks/2 time units on odd rates.
		return a.PerCodeblock * sim.Time(codeblocks) / 2, nil
	default:
		return 0, ErrNotOffloadable
	}
}

// normalShape returns the exported shape fields clamped to their effective
// values (≥1 device and VF, depth ≥ 0).
func (a *Accelerator) normalShape() fleetShape {
	s := fleetShape{lanes: a.Lanes, devices: a.Devices, vfs: a.VFsPerDevice, depth: a.QueueDepth}
	if s.devices < 1 {
		s.devices = 1
	}
	if s.vfs < 1 {
		s.vfs = 1
	}
	if s.depth < 0 {
		s.depth = 0
	}
	return s
}

// reconcileShape rebuilds the device/VF topology whenever the exported shape
// fields changed since the last build (or were never built: struct-literal
// construction). Engine schedules are preserved by global lane index and
// down flags by device index, so raising Lanes mid-run keeps the in-flight
// FIFO state — the legacy model instead kept scanning a stale shorter table
// while Utilization divided by the new Lanes.
func (a *Accelerator) reconcileShape() {
	want := a.normalShape()
	if a.devs != nil && a.shape == want {
		return
	}
	var oldFree []sim.Time
	var oldDown []bool
	for i := range a.devs {
		oldFree = append(oldFree, a.devs[i].engineFree...)
		oldDown = append(oldDown, a.devs[i].down)
	}
	lanes := want.lanes
	if lanes < 0 {
		lanes = 0
	}
	a.devs = make([]device, want.devices)
	per, extra := lanes/want.devices, lanes%want.devices
	base := 0
	for di := range a.devs {
		n := per
		if di < extra {
			n++
		}
		d := &a.devs[di]
		d.base = base
		d.engineFree = make([]sim.Time, n)
		for ei := range d.engineFree {
			if g := base + ei; g < len(oldFree) {
				d.engineFree[ei] = oldFree[g]
			}
		}
		if di < len(oldDown) {
			d.down = oldDown[di]
		}
		d.vfs = make([]vf, want.vfs)
		base += n
	}
	a.shape = want
	a.partitionDepths()
}

// partitionDepths spreads the fleet's aggregate admission depth evenly
// (ceiling division) across the VFs of the devices currently up. With every
// device down, or with QueueDepth = 0, each VF keeps its nominal depth.
func (a *Accelerator) partitionDepths() {
	nominal := a.shape.depth
	aliveVFs := 0
	if nominal > 0 {
		for i := range a.devs {
			if !a.devs[i].down {
				aliveVFs += len(a.devs[i].vfs)
			}
		}
	}
	per := nominal
	if aliveVFs > 0 {
		total := nominal * a.shape.vfs * a.shape.devices
		per = (total + aliveVFs - 1) / aliveVFs
	}
	for di := range a.devs {
		for vi := range a.devs[di].vfs {
			for g := range a.devs[di].vfs[vi].depth {
				a.devs[di].vfs[vi].depth[g] = per
			}
		}
	}
}

// Reconcile re-partitions the per-VF queue-group depths across the devices
// currently up — the operator reconciliation loop reacting to a device
// leaving or rejoining the fleet. It returns the number of devices serving
// traffic.
func (a *Accelerator) Reconcile() int {
	a.reconcileShape()
	a.partitionDepths()
	alive := 0
	for i := range a.devs {
		if !a.devs[i].down {
			alive++
		}
	}
	return alive
}

// SetDeviceDown marks device dev as in reset (down=true) or back in service.
// It reports whether the state changed. A device in reset accepts no new
// submissions; in-flight work on its engines drains at the already-decided
// completion times.
func (a *Accelerator) SetDeviceDown(dev int, down bool) bool {
	a.reconcileShape()
	if dev < 0 || dev >= len(a.devs) || a.devs[dev].down == down {
		return false
	}
	a.devs[dev].down = down
	return true
}

// DeviceCount returns the number of devices in the fleet.
func (a *Accelerator) DeviceCount() int {
	a.reconcileShape()
	return len(a.devs)
}

// DeviceDown reports whether device dev is currently in reset.
func (a *Accelerator) DeviceDown(dev int) bool {
	a.reconcileShape()
	return dev >= 0 && dev < len(a.devs) && a.devs[dev].down
}

// drainPending removes completed entries (done ≤ now) in place.
func drainPending(q []sim.Time, now sim.Time) []sim.Time {
	w := 0
	for _, t := range q {
		if t > now {
			q[w] = t
			w++
		}
	}
	return q[:w]
}

// submitOne admits one request: pick the up device with the earliest-free
// engine, route through its least-loaded VF queue for the request's queue
// group, and schedule FIFO on the engine.
func (a *Accelerator) submitOne(now sim.Time, kind ran.TaskKind, codeblocks int) (sim.Time, error) {
	proc, err := a.processing(kind, codeblocks)
	if err != nil {
		return 0, err
	}
	if a.Lanes <= 0 {
		return 0, ErrNoLanes
	}
	a.reconcileShape()
	group, _ := GroupFor(kind)

	bestDev, bestEng := -1, -1
	var bestFree sim.Time
	for di := range a.devs {
		d := &a.devs[di]
		if d.down || len(d.engineFree) == 0 {
			continue
		}
		for ei, free := range d.engineFree {
			if bestDev < 0 || free < bestFree {
				bestDev, bestEng, bestFree = di, ei, free
			}
		}
	}
	if bestDev < 0 {
		return 0, ErrDeviceDown
	}
	d := &a.devs[bestDev]

	bestVF, bestLen := 0, -1
	for vi := range d.vfs {
		d.vfs[vi].pending[group] = drainPending(d.vfs[vi].pending[group], now)
		if n := len(d.vfs[vi].pending[group]); bestLen < 0 || n < bestLen {
			bestVF, bestLen = vi, n
		}
	}
	v := &d.vfs[bestVF]
	if dep := v.depth[group]; dep > 0 && bestLen >= dep {
		return 0, ErrQueueFull
	}

	start := bestFree
	if start < now {
		start = now
	}
	done := start + proc
	d.engineFree[bestEng] = done
	v.pending[group] = append(v.pending[group], done)
	a.Busy += proc
	if a.Probe != nil {
		a.Probe(OffloadRecord{
			Submitted: now, Start: start, Done: done,
			Kind: kind, Lane: d.base + bestEng,
			Device: bestDev, VF: bestVF, Codeblocks: codeblocks,
		})
	}
	return done, nil
}

// Submit enqueues a request at time now and returns its completion time.
// Admission routes through the up device with the earliest-free engine and
// that device's least-loaded VF queue for the request's queue group (FIFO per
// engine). A misconfigured or saturated fleet returns a typed error
// (ErrNoLanes, ErrInvalidRate, ErrQueueFull, ErrDeviceDown) so the pool can
// fall back to CPU execution.
func (a *Accelerator) Submit(now sim.Time, kind ran.TaskKind, codeblocks int) (sim.Time, error) {
	return a.submitOne(now, kind, codeblocks)
}

// SubmitBatch admits up to len(codeblocks) same-kind requests as one
// coalesced DMA transfer (the caller pays SubmitCost once, not per request)
// and fills dones[i] with the i-th completion time. Requests are admitted in
// order with the same routing as Submit; the batch stops at the first
// rejection. It returns the number admitted and the error that stopped the
// batch (nil when every request was admitted).
func (a *Accelerator) SubmitBatch(now sim.Time, kind ran.TaskKind, codeblocks []int, dones []sim.Time) (int, error) {
	if len(dones) < len(codeblocks) {
		return 0, errors.New("accel: dones buffer shorter than codeblocks")
	}
	for i, cbs := range codeblocks {
		done, err := a.submitOne(now, kind, cbs)
		if err != nil {
			return i, err
		}
		dones[i] = done
	}
	return len(codeblocks), nil
}

// Expected returns the no-queueing latency of a request, used for WCET
// prediction of offloaded tasks. The error is non-nil when the device cannot
// produce an estimate (wrong kind, invalid rate) — callers must not read a
// zero-with-error result as "free".
func (a *Accelerator) Expected(kind ran.TaskKind, codeblocks int) (sim.Time, error) {
	return a.processing(kind, codeblocks)
}

// Utilization returns device busy time over lanes × elapsed.
func (a *Accelerator) Utilization(elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return a.Busy.Seconds() / (float64(a.Lanes) * elapsed.Seconds())
}
