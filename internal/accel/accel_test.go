package accel

import (
	"testing"

	"concordia/internal/ran"
	"concordia/internal/sim"
)

func TestOffloadsOnlyLDPC(t *testing.T) {
	a := DefaultFPGA()
	if !a.Offloads(ran.TaskLDPCDecode) || !a.Offloads(ran.TaskLDPCEncode) {
		t.Fatal("FPGA must offload LDPC encode and decode")
	}
	if a.Offloads(ran.TaskChannelEstimation) || a.Offloads(ran.TaskPrecoding) {
		t.Fatal("FPGA must not offload other kinds")
	}
}

func TestSubmitErrNotOffloadable(t *testing.T) {
	a := DefaultFPGA()
	if _, err := a.Submit(0, ran.TaskModulation, 3); err != ErrNotOffloadable {
		t.Fatalf("got %v want ErrNotOffloadable", err)
	}
}

func TestSubmitSingleLane(t *testing.T) {
	a := New(1, sim.FromUs(10), sim.FromUs(1))
	// Two back-to-back 2-codeblock decodes serialize on one lane.
	d1, err := a.Submit(0, ran.TaskLDPCDecode, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != sim.FromUs(20) {
		t.Fatalf("first completion %v want 20us", d1)
	}
	d2, _ := a.Submit(0, ran.TaskLDPCDecode, 2)
	if d2 != sim.FromUs(40) {
		t.Fatalf("queued completion %v want 40us", d2)
	}
}

func TestSubmitParallelLanes(t *testing.T) {
	a := New(2, sim.FromUs(10), sim.FromUs(1))
	d1, _ := a.Submit(0, ran.TaskLDPCDecode, 2)
	d2, _ := a.Submit(0, ran.TaskLDPCDecode, 2)
	if d1 != d2 || d1 != sim.FromUs(20) {
		t.Fatalf("two lanes should complete in parallel: %v %v", d1, d2)
	}
	d3, _ := a.Submit(0, ran.TaskLDPCDecode, 2)
	if d3 != sim.FromUs(40) {
		t.Fatalf("third request should queue: %v", d3)
	}
}

func TestEncodeCheaperThanDecode(t *testing.T) {
	a := DefaultFPGA()
	dec, err := a.Expected(ran.TaskLDPCDecode, 10)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := a.Expected(ran.TaskLDPCEncode, 10)
	if err != nil {
		t.Fatal(err)
	}
	if enc >= dec {
		t.Fatalf("encode %v should be cheaper than decode %v", enc, dec)
	}
}

// Regression: the encode path computed PerCodeblock/2 * codeblocks, so an
// odd per-codeblock rate truncated before multiplying and lost up to
// codeblocks/2 time units vs the documented half rate.
func TestEncodeOddRateNoTruncation(t *testing.T) {
	a := New(1, sim.Time(7), sim.Time(1))
	got, err := a.Expected(ran.TaskLDPCEncode, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(7 * 5 / 2); got != want { // 17, not 3*5=15
		t.Fatalf("odd-rate encode = %v, want %v (multiply before divide)", got, want)
	}
	done, err := a.Submit(0, ran.TaskLDPCEncode, 5)
	if err != nil {
		t.Fatal(err)
	}
	if done != sim.Time(17) {
		t.Fatalf("Submit completion %v, want 17", done)
	}
}

func TestSubmitAfterIdle(t *testing.T) {
	a := New(1, sim.FromUs(10), sim.FromUs(1))
	// Request at t=100µs on an idle device starts immediately.
	d, _ := a.Submit(sim.FromUs(100), ran.TaskLDPCDecode, 1)
	if d != sim.FromUs(110) {
		t.Fatalf("completion %v want 110us", d)
	}
}

func TestUtilization(t *testing.T) {
	a := New(2, sim.FromUs(10), sim.FromUs(1))
	a.Submit(0, ran.TaskLDPCDecode, 5) // 50µs busy
	if u := a.Utilization(sim.FromUs(100)); u < 0.24 || u > 0.26 {
		t.Fatalf("utilization %v want 0.25 (50µs of 200 lane-µs)", u)
	}
	if a.Utilization(0) != 0 {
		t.Fatal("zero elapsed must give zero utilization")
	}
}

func TestZeroCodeblocksClamped(t *testing.T) {
	a := DefaultFPGA()
	v, err := a.Expected(ran.TaskLDPCDecode, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatal("zero codeblocks should clamp to one")
	}
}

func BenchmarkSubmit(b *testing.B) {
	a := DefaultFPGA()
	for i := 0; i < b.N; i++ {
		_, _ = a.Submit(sim.Time(i)*sim.Microsecond, ran.TaskLDPCDecode, 5)
	}
}

// Regression: a struct-literal accelerator with zero lanes used to index an
// empty lane table in Submit and panic; it must return ErrNoLanes instead.
func TestSubmitZeroLanesTypedError(t *testing.T) {
	a := &Accelerator{Lanes: 0, PerCodeblock: sim.FromUs(10), SubmitCost: sim.FromUs(1)}
	if _, err := a.Submit(0, ran.TaskLDPCDecode, 2); err != ErrNoLanes {
		t.Fatalf("got %v want ErrNoLanes", err)
	}
}

// Regression: a non-positive PerCodeblock produced zero-or-negative device
// times (instant completions, or completion times in the past that panic the
// event engine); Submit must reject it with ErrInvalidRate.
func TestSubmitInvalidRateTypedError(t *testing.T) {
	for _, per := range []sim.Time{0, -sim.FromUs(5)} {
		a := &Accelerator{Lanes: 2, PerCodeblock: per, SubmitCost: sim.FromUs(1)}
		if _, err := a.Submit(0, ran.TaskLDPCDecode, 2); err != ErrInvalidRate {
			t.Fatalf("PerCodeblock=%v: got %v want ErrInvalidRate", per, err)
		}
	}
}

// A struct-literal accelerator with valid lanes but no New() call must work:
// Submit sizes the lane table lazily.
func TestSubmitStructLiteralLazyLanes(t *testing.T) {
	a := &Accelerator{Lanes: 2, PerCodeblock: sim.FromUs(10), SubmitCost: sim.FromUs(1)}
	d1, err := a.Submit(0, ran.TaskLDPCDecode, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.Submit(0, ran.TaskLDPCDecode, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != sim.FromUs(10) || d2 != sim.FromUs(10) {
		t.Fatalf("two requests must run on parallel lanes: %v %v", d1, d2)
	}
}

// Expected mirrors Submit's validity checks and must surface them: the old
// signature swallowed ErrInvalidRate/ErrNotOffloadable and returned a bare
// 0, which a WCET predictor reads as "offload is free".
func TestExpectedInvalidRate(t *testing.T) {
	a := &Accelerator{Lanes: 2, PerCodeblock: 0}
	if _, err := a.Expected(ran.TaskLDPCDecode, 4); err != ErrInvalidRate {
		t.Fatalf("Expected on invalid device: err = %v, want ErrInvalidRate", err)
	}
	b := DefaultFPGA()
	if _, err := b.Expected(ran.TaskModulation, 4); err != ErrNotOffloadable {
		t.Fatalf("Expected on wrong kind: err = %v, want ErrNotOffloadable", err)
	}
}

// Regression: Submit only sized the lane table when it was empty, so raising
// Lanes after construction kept scanning the stale shorter table while
// Utilization divided by the new Lanes — silently under-using engines.
func TestLanesRaisedAfterConstruction(t *testing.T) {
	a := New(1, sim.FromUs(10), sim.FromUs(1))
	d1, _ := a.Submit(0, ran.TaskLDPCDecode, 1)
	if d1 != sim.FromUs(10) {
		t.Fatalf("first completion %v want 10us", d1)
	}
	a.Lanes = 2
	// The new engine is idle, so the second request must run in parallel,
	// and the in-flight schedule of engine 0 must be preserved.
	d2, _ := a.Submit(0, ran.TaskLDPCDecode, 1)
	if d2 != sim.FromUs(10) {
		t.Fatalf("after raising Lanes, second completion %v want 10us (fresh engine)", d2)
	}
	d3, _ := a.Submit(0, ran.TaskLDPCDecode, 1)
	if d3 != sim.FromUs(20) {
		t.Fatalf("third completion %v want 20us (both engines busy until 10us)", d3)
	}
}
