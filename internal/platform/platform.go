// Package platform models the operating-system behaviour the paper measures
// around the vRAN pool: the scheduling (wakeup) latency a worker thread
// experiences after yielding its core (Fig 10), and the cache-efficiency
// perf counters of the pool's worker threads under collocation (Fig 9).
//
// The paper attributes wakeup-latency tails to non-preemptible kernel
// sections — interrupts, RCU callbacks, syscalls issued by workloads sharing
// the core — which worsen both with collocated load and with how long the
// RAN retained cores (queued kernel work bursts out on yield). The model is
// a calibrated mixture: a lognormal body of a few microseconds plus rare
// bounded spikes whose probability grows with interference and retention.
package platform

import (
	"math"

	"concordia/internal/rng"
	"concordia/internal/sim"
)

// Platform provides OS-level latency draws and counters for one simulation.
type Platform struct {
	rand *rng.Rand
}

// New returns a platform model with its own deterministic stream.
func New(seed uint64) *Platform {
	return &Platform{rand: rng.New(seed)}
}

// WakeupEnv describes the conditions of a worker wakeup.
type WakeupEnv struct {
	// Interference is the cache/kernel pressure index from collocated
	// workloads (0 = isolated).
	Interference float64
	// Retention is the fraction of recent time the waking core was held by
	// the RAN (0..1). Long retention queues unmigratable kernel work that
	// runs — non-preemptibly — right when the worker yields and re-wakes.
	Retention float64
}

// Wakeup latency calibration (µs), matching the Fig 10 histograms: the bulk
// of isolated wakeups land in 2–7 µs, with occasional 16–63 µs events and,
// under interference, a 64–255 µs tail.
const (
	wakeBodyMedianUs = 3.5
	wakeBodySigma    = 0.55
	spikeProbBase    = 0.004
	spikeProbInter   = 0.030
	spikeProbRetain  = 0.020
	spikeMinUs       = 24
	spikeMaxIsoUs    = 130
	spikeMaxInterUs  = 255
	// Millisecond-class events: the non-preemptible kernel sections §2.3
	// cites ("tens of microseconds to tens of milliseconds"). Rare, far
	// more likely under collocated syscall/softirq pressure. These are what
	// break the vanilla scheduler's 99.99% slot latency in Fig 4b/11.
	msSpikeProbBase  = 5e-6
	msSpikeProbInter = 3e-4
	msSpikeMinUs     = 500
	msSpikeMaxUs     = 10000
)

// WakeupLatency draws the delay between signaling a yielded worker thread
// and the thread actually running.
func (p *Platform) WakeupLatency(env WakeupEnv) sim.Time {
	us := wakeBodyMedianUs * math.Exp(p.rand.Normal(0, wakeBodySigma))
	prob := spikeProbBase + spikeProbInter*env.Interference + spikeProbRetain*env.Retention
	if p.rand.Bool(prob) {
		max := spikeMaxIsoUs + (spikeMaxInterUs-spikeMaxIsoUs)*env.Interference
		us += p.rand.BoundedPareto(spikeMinUs, 1.2, max)
	}
	if p.rand.Bool(msSpikeProbBase + msSpikeProbInter*env.Interference) {
		us += p.rand.BoundedPareto(msSpikeMinUs, 1.0, msSpikeMaxUs)
	}
	return sim.FromUs(us)
}

// PerfCounters are the pool-worker cache-efficiency metrics perf reports,
// expressed as fractional increases over the isolated-vRAN baseline
// (the Fig 9 presentation).
type PerfCounters struct {
	StallCyclesPerInstrIncrease float64
	L1MissPerInstrIncrease      float64
	LLCLoadsPerInstrIncrease    float64
}

// CounterEnv describes what drives cache degradation for the pool workers.
type CounterEnv struct {
	// Interference is the collocated-workload cache pressure (0..1).
	Interference float64
	// CoreChurnPerMs is the rate of yield/acquire scheduling events per
	// millisecond across the pool: every reacquisition lands on a cache
	// polluted by whatever ran in between.
	CoreChurnPerMs float64
	// SpreadCores is how many cores the pool spread its working set over
	// beyond the minimum required (cross-core data movement).
	SpreadCores float64
}

// Cache-counter calibration. FlexRAN's ~7 events/ms churn under Redis
// produces the paper's +25 % stall cycles; Concordia's proactive allocation
// (an order of magnitude fewer events) stays under a few percent.
const (
	churnSaturation = 7.0
	stallChurnGain  = 0.23
	stallBase       = 0.015
	l1ChurnGain     = 0.13
	l1Base          = 0.008
	llcChurnGain    = 0.17
	llcBase         = 0.030
	spreadGain      = 0.015
)

// Counters returns the simulated perf-counter increases for the given
// collocation conditions.
func Counters(env CounterEnv) PerfCounters {
	churn := env.CoreChurnPerMs / churnSaturation
	if churn > 1 {
		churn = 1
	}
	spread := spreadGain * env.SpreadCores
	i := env.Interference
	return PerfCounters{
		StallCyclesPerInstrIncrease: i * (stallBase + stallChurnGain*churn + spread),
		L1MissPerInstrIncrease:      i * (l1Base + l1ChurnGain*churn + spread/2),
		LLCLoadsPerInstrIncrease:    i * (llcBase + llcChurnGain*churn + spread),
	}
}
