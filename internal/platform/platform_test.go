package platform

import (
	"testing"

	"concordia/internal/sim"
	"concordia/internal/stats"
)

func collectWakeups(p *Platform, env WakeupEnv, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = p.WakeupLatency(env).Us()
	}
	return out
}

func TestWakeupBodyIsFewMicroseconds(t *testing.T) {
	p := New(1)
	s := collectWakeups(p, WakeupEnv{}, 50000)
	med := stats.Quantile(s, 0.5)
	if med < 1.5 || med > 8 {
		t.Fatalf("isolated wakeup median %.1f µs outside Fig 10 bulk", med)
	}
	for _, v := range s {
		if v <= 0 {
			t.Fatal("non-positive wakeup latency")
		}
	}
}

func TestWakeupTailGrowsWithInterference(t *testing.T) {
	p := New(2)
	countAbove := func(env WakeupEnv, thresholdUs float64) int {
		n := 0
		for _, v := range collectWakeups(p, env, 100000) {
			if v > thresholdUs {
				n++
			}
		}
		return n
	}
	iso := countAbove(WakeupEnv{}, 63)
	loaded := countAbove(WakeupEnv{Interference: 1}, 63)
	if loaded <= iso*2 {
		t.Fatalf(">63µs events: isolated %d vs interfered %d — tail must grow", iso, loaded)
	}
}

func TestWakeupTailGrowsWithRetention(t *testing.T) {
	// The Fig 10 side-effect: Concordia's longer core retention queues
	// unmigratable kernel work, adding high-tail wakeups.
	p := New(3)
	countAbove := func(env WakeupEnv) int {
		n := 0
		for _, v := range collectWakeups(p, env, 100000) {
			if v > 63 {
				n++
			}
		}
		return n
	}
	short := countAbove(WakeupEnv{Interference: 0.5, Retention: 0})
	long := countAbove(WakeupEnv{Interference: 0.5, Retention: 1})
	if long <= short {
		t.Fatalf(">63µs events: retention 0 → %d, retention 1 → %d — must grow", short, long)
	}
}

func TestWakeupBounded(t *testing.T) {
	p := New(4)
	msSpikes := 0
	for _, v := range collectWakeups(p, WakeupEnv{Interference: 1, Retention: 1}, 200000) {
		if v > 11000 {
			t.Fatalf("wakeup latency %.0f µs exceeds the modeled ceiling", v)
		}
		if v > 400 {
			msSpikes++
		}
	}
	// Millisecond-class events must exist under interference but stay rare.
	if msSpikes == 0 {
		t.Fatal("no ms-class kernel latency events under full interference")
	}
	if msSpikes > 400 {
		t.Fatalf("ms-class events too common: %d of 200000", msSpikes)
	}
}

func TestWakeupHistogramShape(t *testing.T) {
	// Reconstruct the Fig 10 presentation and check the mass ordering:
	// the 2-7 µs buckets dominate.
	p := New(5)
	h := stats.NewLog2Histogram()
	for _, v := range collectWakeups(p, WakeupEnv{}, 50000) {
		h.Observe(uint64(v))
	}
	var bulk, tail uint64
	for _, b := range h.Buckets() {
		if b.Lo >= 2 && b.Hi <= 7 {
			bulk += b.Count
		}
		if b.Lo >= 64 {
			tail += b.Count
		}
	}
	if bulk < h.Total()/3 {
		t.Fatalf("2-7µs bucket mass %d of %d too small", bulk, h.Total())
	}
	if tail > h.Total()/100 {
		t.Fatalf("isolated >64µs tail too heavy: %d of %d", tail, h.Total())
	}
}

func TestCountersIsolatedAreZero(t *testing.T) {
	c := Counters(CounterEnv{Interference: 0, CoreChurnPerMs: 5, SpreadCores: 3})
	if c.StallCyclesPerInstrIncrease != 0 || c.L1MissPerInstrIncrease != 0 || c.LLCLoadsPerInstrIncrease != 0 {
		t.Fatalf("isolated counters non-zero: %+v", c)
	}
}

// Fig 9 calibration: FlexRAN-like churn under a saturating workload shows
// ~25% stall increase; Concordia-like churn stays under 2%.
func TestCountersMatchFig9(t *testing.T) {
	flexran := Counters(CounterEnv{Interference: 1, CoreChurnPerMs: 7.0})
	concordia := Counters(CounterEnv{Interference: 1, CoreChurnPerMs: 0.4})
	if flexran.StallCyclesPerInstrIncrease < 0.20 || flexran.StallCyclesPerInstrIncrease > 0.30 {
		t.Errorf("FlexRAN stall increase %.2f want ~0.25", flexran.StallCyclesPerInstrIncrease)
	}
	if concordia.StallCyclesPerInstrIncrease > 0.04 {
		t.Errorf("Concordia stall increase %.2f want <0.04", concordia.StallCyclesPerInstrIncrease)
	}
	if flexran.L1MissPerInstrIncrease < 0.08 || flexran.L1MissPerInstrIncrease > 0.20 {
		t.Errorf("FlexRAN L1 increase %.2f want ~0.14", flexran.L1MissPerInstrIncrease)
	}
	if flexran.LLCLoadsPerInstrIncrease < 0.12 || flexran.LLCLoadsPerInstrIncrease > 0.28 {
		t.Errorf("FlexRAN LLC increase %.2f want ~0.20", flexran.LLCLoadsPerInstrIncrease)
	}
}

func TestCountersMonotoneInChurn(t *testing.T) {
	prev := -1.0
	for churn := 0.0; churn <= 5; churn += 0.25 {
		c := Counters(CounterEnv{Interference: 0.8, CoreChurnPerMs: churn})
		if c.StallCyclesPerInstrIncrease < prev {
			t.Fatalf("stall increase not monotone at churn %v", churn)
		}
		prev = c.StallCyclesPerInstrIncrease
	}
}

func TestCountersSpreadEffect(t *testing.T) {
	narrow := Counters(CounterEnv{Interference: 1, CoreChurnPerMs: 1, SpreadCores: 0})
	wide := Counters(CounterEnv{Interference: 1, CoreChurnPerMs: 1, SpreadCores: 4})
	if wide.LLCLoadsPerInstrIncrease <= narrow.LLCLoadsPerInstrIncrease {
		t.Fatal("spreading over more cores must raise LLC loads")
	}
}

func TestWakeupDeterminism(t *testing.T) {
	a := collectWakeups(New(9), WakeupEnv{Interference: 0.3}, 1000)
	b := collectWakeups(New(9), WakeupEnv{Interference: 0.3}, 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("wakeup latency stream not deterministic")
		}
	}
}

func BenchmarkWakeupLatency(b *testing.B) {
	p := New(1)
	env := WakeupEnv{Interference: 0.5, Retention: 0.5}
	var acc sim.Time
	for i := 0; i < b.N; i++ {
		acc += p.WakeupLatency(env)
	}
	_ = acc
}
