// Package fleet scales Concordia from one server to a pooled C-RAN
// cluster: N independent Concordia pool+sim instances ("servers"), hundreds
// of cells with per-cell fronthaul latencies to every server, and a
// placement engine that admits cells only onto servers within their
// fronthaul budget and migrates them between servers when sustained
// load/miss pressure crosses hysteresis thresholds (DESIGN.md §5h).
//
// Time is split into placement epochs. Within an epoch every server runs
// its current cell subset as a full Concordia simulation over a slice of
// one global fleet-scale traffic trace; between epochs the coordinator
// observes per-server pressure and re-places cells. Servers fan out across
// internal/parallel workers with per-(epoch, server) RNG substreams, and
// every cross-server reduction happens serially in server order, so fleet
// results and merged telemetry are byte-identical at any -workers count.
package fleet

import (
	"errors"
	"fmt"
	"strings"

	"concordia/internal/core"
	"concordia/internal/costmodel"
	"concordia/internal/parallel"
	"concordia/internal/pool"
	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/sim"
	"concordia/internal/slo"
	"concordia/internal/telemetry"
	"concordia/internal/traffic"
)

// Servers build their per-epoch cell lists by ascending global cell ID, so
// the local→global remapping of telemetry events is stable by construction.

// Config describes one fleet run.
type Config struct {
	// Cells is the fleet-wide cell count; Servers the Concordia server count.
	Cells, Servers int
	// CoresPerServer sizes each server's pool (0 selects 12).
	CoresPerServer int
	// Load is the per-cell traffic load fraction (0 selects 0.3).
	Load float64
	// VolumeScale is the LTE→5G volume extrapolation factor passed to the
	// traffic scaling layer (0 selects traffic.DefaultVolumeScale).
	VolumeScale float64
	// SubscribersPerCell models the attached-UE population (0 selects
	// traffic.DefaultSubscribers; at fleet scale the modeled population runs
	// into the millions).
	SubscribersPerCell int
	// Horizon is total simulated time (0 selects 2 s); it divides into
	// Epochs placement epochs (0 selects 8).
	Horizon sim.Time
	Epochs  int
	// FronthaulBudget caps the one-way cell→server fronthaul latency a
	// placement may use (0 selects DefaultFronthaulBudget).
	FronthaulBudget sim.Time
	// Placement tunes the migration hysteresis.
	Placement PlacementConfig
	// Static freezes the initial placement — the partitioned baseline the
	// pooling gain is measured against.
	Static bool
	// ForceMigrateEpoch, when >= 1, forces one migration at the start of
	// that epoch regardless of pressure (examples and tests exercise the
	// migration path deterministically with it). Ignored under Static.
	ForceMigrateEpoch int
	// Seed drives every stochastic input; TrainingSlots bounds offline
	// predictor training (0 selects the core default); Workers bounds the
	// per-epoch server fan-out (0 = NumCPU, 1 = serial — results identical).
	Seed          uint64
	TrainingSlots int
	Workers       int
	// Predictors, when non-nil, skips training and shares the set across
	// every server (all servers run identical 20 MHz cells, so one trained
	// set is valid fleet-wide; experiments train once per sweep).
	Predictors pool.PredictorSet
	// Telemetry, when non-nil, receives the merged fleet trace: placement
	// events (cell_admit/cell_migrate/cell_reject) plus every server's
	// deadline misses remapped to global cell IDs, epoch-offset timestamps,
	// and fleet-unique DAG sequences. Task-level events stay per-server, so
	// the merged trace is DAG-level — cmd/autopsy's migration rule is built
	// for exactly that.
	Telemetry *telemetry.Recorder
	// SLO, when non-nil, attaches a streaming SLO tracker to every server
	// (slice assignment evaluated on fleet-global cell IDs) and merges the
	// per-server sketches into Result.SLO at each epoch barrier — a serial
	// reduction in (epoch, server) order, byte-identical at any Workers.
	// Per-server EvSLOWindow/EvSLOAlert events are remapped into the merged
	// fleet trace when Telemetry is also set.
	SLO *slo.Options
}

func (c Config) withDefaults() Config {
	if c.CoresPerServer == 0 {
		c.CoresPerServer = 12
	}
	if c.Load == 0 {
		c.Load = 0.3
	}
	if c.Horizon == 0 {
		c.Horizon = 2 * sim.Second
	}
	if c.Epochs == 0 {
		c.Epochs = 8
	}
	if c.FronthaulBudget == 0 {
		c.FronthaulBudget = DefaultFronthaulBudget
	}
	if c.TrainingSlots == 0 {
		c.TrainingSlots = core.DefaultTrainingSlots
	}
	c.Placement = c.Placement.withDefaults()
	return c
}

func (c Config) validate() error {
	if c.Cells <= 0 || c.Servers <= 0 {
		return errors.New("fleet: need at least one cell and one server")
	}
	if c.Load <= 0 || c.Load > 1 {
		return errors.New("fleet: load must be in (0, 1]")
	}
	if c.Epochs < 1 {
		return errors.New("fleet: need at least one epoch")
	}
	if c.ForceMigrateEpoch >= c.Epochs {
		return fmt.Errorf("fleet: force-migrate epoch %d outside run of %d epochs", c.ForceMigrateEpoch, c.Epochs)
	}
	return nil
}

// EpochStats summarizes one placement epoch.
type EpochStats struct {
	Migrations int
	DAGs       uint64
	Misses     uint64
	// RequiredCores is the epoch's fleet-wide core requirement at the run's
	// calibrated efficiency.
	RequiredCores int
	// MaxPressure is the epoch's hottest raw server pressure (busy
	// utilization + miss rate).
	MaxPressure float64
}

// Result is the outcome of one fleet run.
type Result struct {
	Cells, Servers, CoresPerServer int

	Admitted, Rejected, Migrations int

	DAGs, Misses, Dropped uint64

	// BusyCoreSeconds and TotalBytes calibrate Kappa, the measured busy
	// core-seconds per offered byte.
	BusyCoreSeconds float64
	TotalBytes      float64
	Kappa           float64

	// RequiredDemand and IdealDemand are the kappa-free peak demand rates
	// (bytes/s) underlying the core requirements: cross-run comparisons (the
	// pooling gain vs the static partition) evaluate both runs' demand at one
	// common kappa through these.
	RequiredDemand float64
	IdealDemand    float64

	// RequiredCores is the time-averaged fleet core requirement at this run's
	// own calibration (Kappa × RequiredDemand); IdealCores the
	// single-global-pool bound; TotalCores the provisioned fleet size.
	RequiredCores float64
	IdealCores    float64
	TotalCores    int

	Epochs []EpochStats
	// Assign is the final cell→server placement (-1 = rejected).
	Assign []int

	// SLO is the fleet-merged SLO tracker (nil unless Config.SLO was set):
	// per-cell run-total sketches keyed by global cell ID, the union of all
	// servers' window rows and alert timelines, and the fleet health report.
	SLO *slo.Tracker
}

// MissRate returns the fleet-wide deadline-miss fraction.
func (r *Result) MissRate() float64 {
	if r.DAGs == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.DAGs)
}

// serverEpoch is one server's contribution to one epoch, produced inside
// the parallel fan-out and reduced serially in server order.
type serverEpoch struct {
	report *pool.Report
	misses []telemetry.Event // remapped to fleet-global identifiers
	slo    *slo.Tracker      // flushed per-server tracker (keys are local cells)
}

// Run executes one fleet simulation.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cellTemplate := ran.Cells20MHz(1)[0]
	slotDur := cellTemplate.Numerology.SlotDuration()
	totalSlots := int(cfg.Horizon / slotDur)
	epochSlots := totalSlots / cfg.Epochs
	if epochSlots < 1 {
		return nil, fmt.Errorf("fleet: horizon %v too short for %d epochs", cfg.Horizon, cfg.Epochs)
	}
	totalSlots = epochSlots * cfg.Epochs

	// One global UL and one global DL trace drive the whole run; servers
	// replay per-epoch column slices, so a migrated cell's traffic continues
	// seamlessly on its new server.
	spec := traffic.ScaleSpec{
		Cells:              cfg.Cells,
		SubscribersPerCell: cfg.SubscribersPerCell,
		VolumeScale:        cfg.VolumeScale,
		Load:               cfg.Load,
	}
	ulSpec, dlSpec := spec, spec
	ulSpec.Seed = rng.SubstreamSeed(cfg.Seed, 0xf1ee)
	dlSpec.Seed = rng.SubstreamSeed(cfg.Seed, 0xf1ef)
	ul, err := traffic.GenerateScaledTrace(ulSpec, totalSlots)
	if err != nil {
		return nil, err
	}
	dl, err := traffic.GenerateScaledTrace(dlSpec, totalSlots)
	if err != nil {
		return nil, err
	}

	preds := cfg.Predictors
	if preds == nil {
		// All servers host identical 20 MHz cells, so one predictor set
		// trained offline serves the whole fleet; per-server systems inject
		// it and skip their own profiling.
		model := costmodel.New(cfg.Seed ^ 0xc0de)
		data := core.Profile(ran.Cells20MHz(1), cfg.TrainingSlots, model, cfg.CoresPerServer, cfg.Seed^0x0ff1)
		preds, err = core.TrainPredictorsWorkers(data, 1.0, cfg.Workers)
		if err != nil {
			return nil, err
		}
	}

	topo := NewTopology(cfg.Cells, cfg.Servers, cfg.FronthaulBudget, cfg.Seed)
	place := NewPlacement(topo, cfg.Placement)

	// Initial admission uses whole-trace mean demand — the projected load a
	// real operator would plan partitions from.
	demand := make([]float64, cfg.Cells)
	tracker := NewDemandTracker(cfg.Servers)
	scratch := NewDemandTracker(cfg.Servers)
	AccumulateEpoch(scratch, ul, dl, 0, totalSlots, initialAssign(cfg.Cells), demand)
	admitted, rejected := place.AdmitAll(demand)
	if admitted == 0 {
		return nil, errors.New("fleet: no cell is within fronthaul budget of any server")
	}
	for c := 0; c < cfg.Cells; c++ {
		if place.Assign[c] >= 0 {
			emitPlacement(cfg.Telemetry, telemetry.EvCellAdmit, c, 0, 0,
				int64(place.Assign[c]), int64(topo.FeasibleCount(c)), topo.Latency[c][place.Assign[c]])
		} else {
			emitPlacement(cfg.Telemetry, telemetry.EvCellReject, c, 0, 0, -1, 0, 0)
		}
	}

	res := &Result{
		Cells: cfg.Cells, Servers: cfg.Servers, CoresPerServer: cfg.CoresPerServer,
		Admitted: admitted, Rejected: rejected,
		TotalCores: cfg.Servers * cfg.CoresPerServer,
		Epochs:     make([]EpochStats, cfg.Epochs),
	}
	if cfg.SLO != nil {
		opts := *cfg.SLO
		if opts.Deadline <= 0 {
			// Match the per-server Scenario20MHz deadline so fleet-level
			// summaries report slack against the same budget the servers ran.
			opts.Deadline = sim.FromMs(2)
		}
		// The fleet tracker is an aggregation sink: per-server trackers do
		// the windowing and event emission; this one accumulates their
		// merged totals, rows and alerts.
		res.SLO = slo.New(opts, nil)
	}
	pressure := make([]float64, cfg.Servers)
	epochDemand := make([]float64, cfg.Cells)
	epochDur := sim.Time(epochSlots) * slotDur

	for e := 0; e < cfg.Epochs; e++ {
		epochStart := sim.Time(e*epochSlots) * slotDur
		if !cfg.Static && cfg.ForceMigrateEpoch >= 1 && e == cfg.ForceMigrateEpoch {
			if mig, ok := place.ForceMigrate(); ok {
				res.Migrations++
				res.Epochs[e].Migrations++
				emitPlacement(cfg.Telemetry, telemetry.EvCellMigrate, mig.Cell, e, epochStart,
					int64(mig.From), int64(mig.To), topo.Latency[mig.Cell][mig.To])
			}
		}
		// Snapshot the epoch's assignment and per-server cell lists.
		assign := append([]int(nil), place.Assign...)
		cellsOf := make([][]int, cfg.Servers)
		for c, s := range assign {
			if s >= 0 {
				cellsOf[s] = append(cellsOf[s], c)
			}
		}
		lo, hi := e*epochSlots, (e+1)*epochSlots

		// Fan the servers across workers. Each server's simulation depends
		// only on its own substream seed and trace slice; results reduce in
		// index order, so -workers changes wall-clock time and nothing else.
		epoch := e
		runs, err := parallel.Map(cfg.Workers, cfg.Servers, func(s int) (serverEpoch, error) {
			if len(cellsOf[s]) == 0 {
				return serverEpoch{}, nil
			}
			return runServerEpoch(cfg, preds, s, epoch, epochStart, cellsOf[s], ul, dl, lo, hi, epochDur)
		})
		if err != nil {
			return nil, err
		}

		// Serial reduction in server order.
		tracker.BeginEpoch()
		AccumulateEpoch(tracker, ul, dl, lo, hi, assign, epochDemand)
		tracker.EndEpoch()
		es := &res.Epochs[e]
		for s, run := range runs {
			pressure[s] = 0
			if run.report == nil {
				continue
			}
			rep := run.report
			dags := rep.DAGsCompleted
			es.DAGs += dags
			es.Misses += rep.Misses
			res.DAGs += dags
			res.Misses += rep.Misses
			res.Dropped += rep.DAGsDropped
			res.BusyCoreSeconds += rep.BusyCoreSeconds
			busyUtil := rep.BusyCoreSeconds / (epochDur.Seconds() * float64(cfg.CoresPerServer))
			missRate := 0.0
			if dags > 0 {
				missRate = float64(rep.Misses) / float64(dags)
			}
			pressure[s] = busyUtil + missRate
			if pressure[s] > es.MaxPressure {
				es.MaxPressure = pressure[s]
			}
			for _, ev := range run.misses {
				if cfg.Telemetry != nil {
					cfg.Telemetry.Trace.Emit(ev)
				}
			}
			if res.SLO != nil && run.slo != nil {
				globals := make([]int32, len(cellsOf[s]))
				for i, c := range cellsOf[s] {
					globals[i] = int32(c)
				}
				if err := res.SLO.MergeRemapped(run.slo, globals, int32(s), epochStart); err != nil {
					return nil, fmt.Errorf("fleet: epoch %d server %d: %w", e, s, err)
				}
			}
		}

		// The partitioned baseline never consults the placement engine after
		// admission: its assignment is frozen for the whole run. And a
		// decision after the final epoch would never take effect, so the
		// observer only runs while a next epoch exists.
		if !cfg.Static && e+1 < cfg.Epochs {
			migs := place.ObserveEpoch(pressure, epochDemand)
			res.Migrations += len(migs)
			res.Epochs[e+1].Migrations += len(migs)
			epochEnd := sim.Time(hi) * slotDur
			for _, mig := range migs {
				emitPlacement(cfg.Telemetry, telemetry.EvCellMigrate, mig.Cell, e+1, epochEnd,
					int64(mig.From), int64(mig.To), topo.Latency[mig.Cell][mig.To])
			}
		}
	}

	res.TotalBytes = tracker.Total()
	if res.TotalBytes > 0 {
		res.Kappa = res.BusyCoreSeconds / res.TotalBytes
	}
	slotSec := slotDur.Seconds()
	res.RequiredDemand = tracker.RequiredDemand(slotSec)
	res.IdealDemand = tracker.IdealDemand(slotSec)
	res.RequiredCores = res.Kappa * res.RequiredDemand
	res.IdealCores = res.Kappa * res.IdealDemand
	for e := range res.Epochs {
		res.Epochs[e].RequiredCores = tracker.EpochCores(e, res.Kappa, slotSec)
	}
	res.Assign = append([]int(nil), place.Assign...)
	return res, nil
}

// runServerEpoch simulates one server for one epoch: a fresh Concordia
// system over the server's current cell subset, replaying the global
// traces' column slice, seeded from the (epoch, server) substream.
func runServerEpoch(cfg Config, preds pool.PredictorSet, s, epoch int, epochStart sim.Time,
	cells []int, ul, dl *traffic.Trace, lo, hi int, epochDur sim.Time) (serverEpoch, error) {
	subUL := sliceTrace(ul, cells, lo, hi)
	subDL := sliceTrace(dl, cells, lo, hi)
	cc := core.Scenario20MHz(len(cells), cfg.CoresPerServer)
	cc.Load = cfg.Load
	cc.Seed = rng.SubstreamSeed(cfg.Seed, uint64(epoch*cfg.Servers+s))
	cc.Predictor = preds
	// One predictor set is shared by every server in the fleet, and servers
	// simulate concurrently: freeze it. Online adaptation would mutate the
	// shared trees, racing across workers and contaminating later runs in
	// whatever order the scheduler interleaved them.
	cc.Ablation.NoOnlineAdaptation = true
	cc.ULTrace, cc.DLTrace = subUL, subDL
	// Abandon a DAG once its deadline passes so one overloaded slot cannot
	// cascade across the epoch boundary; drops still count as misses.
	cc.DropLateDAGs = true
	var rec *telemetry.Recorder
	if cfg.Telemetry != nil {
		rec = telemetry.New(telemetry.Options{TraceCapacity: serverTraceCapacity(len(cells), hi-lo)})
		cc.Telemetry = rec
	}
	if cfg.SLO != nil {
		opts := *cfg.SLO
		opts.Server = int32(s)
		// Slice membership is a property of the fleet-global cell, not of
		// wherever it happens to be placed this epoch: evaluate the caller's
		// slice map (or the even/odd default) on the global ID.
		base := cfg.SLO.SliceOf
		opts.SliceOf = func(local int32) int32 {
			g := int32(cells[local])
			if base != nil {
				return base(g)
			}
			return g % 2
		}
		cc.SLO = &opts
	}
	sys, err := core.NewSystem(cc)
	if err != nil {
		return serverEpoch{}, fmt.Errorf("fleet: server %d epoch %d: %w", s, epoch, err)
	}
	rep := sys.Run(epochDur)
	out := serverEpoch{report: rep, slo: sys.SLO()}
	if rec != nil {
		// Fleet-unique DAG sequences: the merged trace must never collide
		// two servers' (or two epochs') local sequence counters.
		seqBase := int64(epoch*cfg.Servers+s+1) << 32
		for _, ev := range rec.Trace.Events() {
			switch ev.Kind {
			case telemetry.EvDeadlineMiss:
				ev.Cell = int32(cells[ev.Cell])
				ev.Slot += int32(lo)
				ev.At += epochStart
				ev.A += seqBase
			case telemetry.EvSLOWindow, telemetry.EvSLOAlert:
				// Slice-level events carry no cell or DAG sequence; the Core
				// field already holds the server index. Only time shifts.
				ev.At += epochStart
			default:
				continue
			}
			out.misses = append(out.misses, ev)
		}
	}
	return out, nil
}

// serverTraceCapacity sizes a server's per-epoch ring: generous enough that
// deadline-miss events survive the task-level stream at example scales,
// capped so fleet-wide telemetry runs stay in bounded memory (the ring
// keeps the most recent window when it wraps, same as single-pool runs).
func serverTraceCapacity(cells, slots int) int {
	capacity := 64 * 2 * cells * slots
	if capacity < 4096 {
		capacity = 4096
	}
	if capacity > telemetry.DefaultTraceCapacity {
		capacity = telemetry.DefaultTraceCapacity
	}
	return capacity
}

// sliceTrace extracts rows [lo, hi) of the given cell columns.
func sliceTrace(tr *traffic.Trace, cells []int, lo, hi int) *traffic.Trace {
	out := &traffic.Trace{Cells: len(cells), Volumes: make([][]int, hi-lo)}
	for t := lo; t < hi; t++ {
		row := make([]int, len(cells))
		for i, c := range cells {
			row[i] = tr.Volumes[t][c]
		}
		out.Volumes[t-lo] = row
	}
	return out
}

// initialAssign maps every cell to server 0 — the identity assignment the
// whole-trace demand scan runs under (only per-cell sums matter there).
func initialAssign(cells int) []int {
	assign := make([]int, cells)
	return assign
}

// emitPlacement records one placement event into the fleet trace.
func emitPlacement(rec *telemetry.Recorder, kind telemetry.EventKind, cell, epoch int, at sim.Time, a, b int64, dur sim.Time) {
	if rec == nil {
		return
	}
	rec.Trace.Emit(telemetry.Event{
		At: at, Dur: dur, A: a, B: b,
		Core: -1, Cell: int32(cell), Slot: int32(epoch), Task: -1,
		Kind: kind,
	})
}

// String renders a short human-readable fleet summary.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet           %d cells over %d servers (%d cores each)\n",
		r.Cells, r.Servers, r.CoresPerServer)
	fmt.Fprintf(&sb, "placement       %d admitted, %d rejected, %d migrations\n",
		r.Admitted, r.Rejected, r.Migrations)
	fmt.Fprintf(&sb, "dags            %d completed, %d missed (%.5f%% miss), %d dropped\n",
		r.DAGs, r.Misses, 100*r.MissRate(), r.Dropped)
	fmt.Fprintf(&sb, "pooling         %.1f cores required (ideal %.1f, provisioned %d), kappa %.3g cs/byte\n",
		r.RequiredCores, r.IdealCores, r.TotalCores, r.Kappa)
	return sb.String()
}
