package fleet

import "sort"

// PlacementConfig tunes the admission and migration policy.
type PlacementConfig struct {
	// HighWater is the eviction threshold as a multiple of the fleet-mean
	// smoothed pressure (pressure = busy utilization + miss rate): a server
	// sustained above HighWater × mean starts shedding cells. Relative
	// thresholds trigger on imbalance — the thing migration can fix — rather
	// than on absolute saturation.
	HighWater float64
	// LowWater is the destination filter, also a multiple of the mean:
	// cells only migrate onto servers below LowWater × mean, so a migration
	// cannot trade one hot server for another (the hysteresis band is
	// [LowWater, HighWater] × mean).
	LowWater float64
	// SustainEpochs is how many consecutive epochs a server must exceed
	// HighWater before its cells become migration candidates — one noisy
	// epoch never triggers a move.
	SustainEpochs int
	// CooldownEpochs pins a migrated cell to its new server for this many
	// epochs, preventing ping-pong.
	CooldownEpochs int
	// MaxMigrationsPerEpoch bounds churn per placement round.
	MaxMigrationsPerEpoch int
}

func (c PlacementConfig) withDefaults() PlacementConfig {
	if c.HighWater == 0 {
		c.HighWater = 1.2
	}
	if c.LowWater == 0 {
		c.LowWater = 1.05
	}
	if c.SustainEpochs == 0 {
		c.SustainEpochs = 2
	}
	if c.CooldownEpochs == 0 {
		c.CooldownEpochs = 2
	}
	if c.MaxMigrationsPerEpoch == 0 {
		c.MaxMigrationsPerEpoch = 8
	}
	return c
}

// Migration is one placement decision: move Cell from server From to To.
type Migration struct {
	Cell, From, To int
}

// Placement tracks the cell→server assignment and runs the admission and
// hysteresis-migration policy. All decisions are pure functions of the
// topology, the demand estimates, and the observed pressures, with
// deterministic tie-breaks (lowest index wins), so the fleet's placement
// history is byte-identical across runs and worker counts.
type Placement struct {
	topo *Topology
	cfg  PlacementConfig

	// Assign maps cell → server; -1 marks a rejected cell (no server within
	// its fronthaul budget).
	Assign []int

	ema      []float64 // per-server smoothed pressure
	meanEma  float64   // fleet-mean smoothed pressure over occupied servers
	hot      []int     // consecutive epochs above HighWater
	cooldown []int     // per-cell epochs until it may migrate again
	load     []float64 // per-server sum of assigned cell demand
	demand   []float64 // latest per-cell demand estimate (bytes/slot)
}

// pressureFloor is the absolute smoothed-pressure minimum below which a
// server is never considered hot: relative thresholds alone would otherwise
// chase meaningless imbalance in a near-idle fleet.
const pressureFloor = 0.05

// NewPlacement returns an empty placement over the topology.
func NewPlacement(topo *Topology, cfg PlacementConfig) *Placement {
	return &Placement{
		topo:     topo,
		cfg:      cfg.withDefaults(),
		Assign:   make([]int, topo.Cells),
		ema:      make([]float64, topo.Servers),
		hot:      make([]int, topo.Servers),
		cooldown: make([]int, topo.Cells),
		load:     make([]float64, topo.Servers),
		demand:   make([]float64, topo.Cells),
	}
}

// AdmitAll performs initial placement: cells in ID order, each onto its
// nearest server within the fronthaul budget — how an operator statically
// partitions cells across DUs by region. The imbalance this leaves (cell
// density and hotspot activity do not follow the server grid) is exactly
// what the migration engine later corrects, and what the static baseline is
// stuck with. Returns the admitted and rejected counts.
func (p *Placement) AdmitAll(demand []float64) (admitted, rejected int) {
	copy(p.demand, demand)
	for c := range p.Assign {
		s := p.nearestFeasible(c)
		p.Assign[c] = s
		if s < 0 {
			rejected++
			continue
		}
		p.load[s] += p.demand[c]
		admitted++
	}
	return admitted, rejected
}

// nearestFeasible returns the lowest-latency server within cell c's budget
// (ties break to the lowest index), or -1 when none qualifies.
func (p *Placement) nearestFeasible(c int) int {
	best := -1
	for s := 0; s < p.topo.Servers; s++ {
		if !p.topo.Feasible(c, s) {
			continue
		}
		if best < 0 || p.topo.Latency[c][s] < p.topo.Latency[c][best] {
			best = s
		}
	}
	return best
}

// bestServer returns the least-loaded feasible server for cell c, excluding
// `exclude`; with lowOnly set, only servers whose smoothed pressure is below
// LowWater qualify. Ties break to the lowest server index. Returns -1 when
// no server qualifies.
func (p *Placement) bestServer(c, exclude int, lowOnly bool) int {
	best := -1
	for s := 0; s < p.topo.Servers; s++ {
		if s == exclude || !p.topo.Feasible(c, s) {
			continue
		}
		if lowOnly && p.ema[s] >= p.cfg.LowWater*p.meanEma {
			continue
		}
		if best < 0 || p.load[s] < p.load[best] {
			best = s
		}
	}
	return best
}

// ObserveEpoch folds one epoch's per-server pressure observations and
// per-cell demand into the hysteresis state and returns the migrations to
// apply before the next epoch. Pressure is busy utilization plus miss rate;
// the EMA halves the weight of history so two sustained hot epochs are
// enough to act on, while a single spike is not. A server is hot when its
// smoothed pressure exceeds HighWater × the fleet mean (over occupied
// servers) and the absolute pressureFloor.
func (p *Placement) ObserveEpoch(pressure, epochDemand []float64) []Migration {
	copy(p.demand, epochDemand)
	p.reloads()
	for c := range p.cooldown {
		if p.cooldown[c] > 0 {
			p.cooldown[c]--
		}
	}
	occupied := 0
	p.meanEma = 0
	for s := range p.ema {
		p.ema[s] = 0.5*p.ema[s] + 0.5*pressure[s]
		if p.serverCells(s) > 0 {
			p.meanEma += p.ema[s]
			occupied++
		}
	}
	if occupied > 0 {
		p.meanEma /= float64(occupied)
	}
	for s := range p.ema {
		if p.ema[s] > p.cfg.HighWater*p.meanEma && p.ema[s] > pressureFloor {
			p.hot[s]++
		} else {
			p.hot[s] = 0
		}
	}
	// Hottest servers shed first; stable sort keeps index order on ties.
	order := make([]int, p.topo.Servers)
	for s := range order {
		order[s] = s
	}
	sort.SliceStable(order, func(i, j int) bool { return p.ema[order[i]] > p.ema[order[j]] })
	meanLoad := 0.0
	if occupied > 0 {
		for _, l := range p.load {
			meanLoad += l
		}
		meanLoad /= float64(occupied)
	}
	var out []Migration
	for _, s := range order {
		if p.hot[s] < p.cfg.SustainEpochs {
			continue
		}
		// A hot server sheds cells until its demand load reaches the fleet
		// mean (or it runs out of movable cells, destinations, or budget) —
		// one move per epoch rebalances far too slowly to matter within a
		// run's worth of epochs.
		for len(out) < p.cfg.MaxMigrationsPerEpoch && p.load[s] > meanLoad {
			cell := p.evictionCandidate(s)
			if cell < 0 {
				break
			}
			to := p.bestServer(cell, s, true)
			if to < 0 {
				break
			}
			out = append(out, p.move(cell, s, to))
		}
		if len(out) >= p.cfg.MaxMigrationsPerEpoch {
			break
		}
	}
	return out
}

// serverCells counts the cells currently assigned to server s.
func (p *Placement) serverCells(s int) int {
	n := 0
	for _, assigned := range p.Assign {
		if assigned == s {
			n++
		}
	}
	return n
}

// evictionCandidate picks the hot server's highest-demand movable cell:
// not cooling down, with at least one alternative feasible server. Ties
// break to the lowest cell ID.
func (p *Placement) evictionCandidate(s int) int {
	best := -1
	for c, assigned := range p.Assign {
		if assigned != s || p.cooldown[c] > 0 || p.topo.FeasibleCount(c) < 2 {
			continue
		}
		if best < 0 || p.demand[c] > p.demand[best] {
			best = c
		}
	}
	return best
}

// ForceMigrate moves the most-loaded server's highest-demand movable cell to
// its least-loaded feasible alternative, regardless of pressure — the demo
// and test hook for exercising the migration machinery deterministically.
func (p *Placement) ForceMigrate() (Migration, bool) {
	src := 0
	for s := 1; s < p.topo.Servers; s++ {
		if p.load[s] > p.load[src] {
			src = s
		}
	}
	cell := p.evictionCandidate(src)
	if cell < 0 {
		return Migration{}, false
	}
	to := p.bestServer(cell, src, false)
	if to < 0 {
		return Migration{}, false
	}
	return p.move(cell, src, to), true
}

// move applies one migration to the assignment and bookkeeping.
func (p *Placement) move(cell, from, to int) Migration {
	p.Assign[cell] = to
	p.load[from] -= p.demand[cell]
	p.load[to] += p.demand[cell]
	p.cooldown[cell] = p.cfg.CooldownEpochs
	p.hot[from] = 0
	return Migration{Cell: cell, From: from, To: to}
}

// reloads recomputes per-server load from the current demand estimates and
// assignment (demand drifts between epochs; incremental updates would mix
// epochs' estimates).
func (p *Placement) reloads() {
	for s := range p.load {
		p.load[s] = 0
	}
	for c, s := range p.Assign {
		if s >= 0 {
			p.load[s] += p.demand[c]
		}
	}
}
