package fleet

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"

	"concordia/internal/core"
	"concordia/internal/costmodel"
	"concordia/internal/pool"
	"concordia/internal/ran"
	"concordia/internal/sim"
	"concordia/internal/telemetry"
	"concordia/internal/traffic"
)

// testPredictors trains one small predictor set shared across the package's
// fleet runs (training dominates test runtime otherwise).
var testPredictors = sync.OnceValue(func() pool.PredictorSet {
	model := costmodel.New(42 ^ 0xc0de)
	data := core.Profile(ran.Cells20MHz(1), 150, model, 4, 42^0x0ff1)
	preds, err := core.TrainPredictorsWorkers(data, 1.0, 0)
	if err != nil {
		panic(err)
	}
	return preds
})

func testConfig() Config {
	return Config{
		Cells: 12, Servers: 3, CoresPerServer: 4,
		Load: 0.4, Horizon: 48 * sim.Millisecond, Epochs: 4,
		Seed: 7, Predictors: testPredictors(),
	}
}

// The fleet's core guarantee: the Workers knob changes wall-clock time and
// nothing else — results and merged telemetry are byte-identical whether
// one goroutine or eight simulate the servers.
func TestFleetWorkerDeterminism(t *testing.T) {
	var baseline *Result
	var baselineCSV []byte
	for _, workers := range []int{1, 2, 8} {
		cfg := testConfig()
		cfg.Workers = workers
		cfg.ForceMigrateEpoch = 1
		cfg.Telemetry = telemetry.New(telemetry.Options{})
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var csv bytes.Buffer
		if err := cfg.Telemetry.Trace.WriteEventsCSV(&csv); err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline, baselineCSV = res, csv.Bytes()
			continue
		}
		if !reflect.DeepEqual(baseline, res) {
			t.Errorf("workers=%d result differs:\n%v\nvs baseline\n%v", workers, res, baseline)
		}
		if !bytes.Equal(baselineCSV, csv.Bytes()) {
			t.Errorf("workers=%d merged telemetry differs from workers=1", workers)
		}
	}
	if baseline.DAGs == 0 {
		t.Fatal("fleet simulated no DAGs")
	}
}

// The placement engine must never assign a cell to a server outside its
// fronthaul budget — at admission, after every migration round, and under
// forced migrations.
func TestPlacementNeverInfeasible(t *testing.T) {
	topo := NewTopology(80, 6, 120*sim.Microsecond, 99)
	p := NewPlacement(topo, PlacementConfig{SustainEpochs: 1, MaxMigrationsPerEpoch: 8})
	demand := make([]float64, 80)
	for c := range demand {
		demand[c] = float64(1 + c%7)
	}
	p.AdmitAll(demand)
	check := func(when string) {
		t.Helper()
		for c, s := range p.Assign {
			if s < 0 {
				if topo.FeasibleCount(c) != 0 {
					t.Fatalf("%s: cell %d rejected despite %d feasible servers", when, c, topo.FeasibleCount(c))
				}
				continue
			}
			if !topo.Feasible(c, s) {
				t.Fatalf("%s: cell %d on server %d at %v exceeds budget %v",
					when, c, s, topo.Latency[c][s], topo.Budget)
			}
		}
	}
	check("admission")
	pressure := make([]float64, 6)
	for round := 0; round < 10; round++ {
		for s := range pressure {
			// Rotate extreme pressure across servers to force migrations.
			pressure[s] = 0
			if s == round%6 {
				pressure[s] = 5
			}
		}
		p.ObserveEpoch(pressure, demand)
		check("migration round")
		if _, ok := p.ForceMigrate(); ok {
			check("forced migration")
		}
	}
}

// A forced migration must surface everywhere the fleet reports: the
// migration counter, the per-epoch stats, and an EvCellMigrate telemetry
// event carrying the fronthaul latency of the destination.
func TestForcedMigration(t *testing.T) {
	cfg := testConfig()
	cfg.ForceMigrateEpoch = 2
	cfg.Telemetry = telemetry.New(telemetry.Options{})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations < 1 {
		t.Fatalf("forced migration did not happen: %d migrations", res.Migrations)
	}
	if res.Epochs[2].Migrations < 1 {
		t.Fatalf("epoch 2 records no migration: %+v", res.Epochs)
	}
	found := false
	for _, ev := range cfg.Telemetry.Trace.Events() {
		if ev.Kind != telemetry.EvCellMigrate {
			continue
		}
		if ev.A == ev.B || ev.Dur <= 0 {
			t.Fatalf("malformed migrate event: %+v", ev)
		}
		// Natural (pressure-driven) migrations may fire too; the forced one
		// is the epoch-2 event.
		if ev.Slot == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("no EvCellMigrate event for the forced epoch-2 migration")
	}
}

// The static baseline must keep its initial partition for the whole run.
func TestStaticNeverMigrates(t *testing.T) {
	cfg := testConfig()
	cfg.Static = true
	// Pressure the placement hard so a non-static run would migrate.
	cfg.Load = 0.8
	cfg.Placement = PlacementConfig{HighWater: 0.01, LowWater: 2, SustainEpochs: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations != 0 {
		t.Fatalf("static baseline migrated %d cells", res.Migrations)
	}
}

// Every cell out of fronthaul range of every server is an admission error,
// not a silent empty run.
func TestAllCellsOutOfBudget(t *testing.T) {
	cfg := testConfig()
	cfg.FronthaulBudget = 1 * sim.Microsecond // below the base latency floor
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected admission failure with an impossible budget")
	}
}

// The per-slot fleet-coordination path — folding every cell's slot volume
// through the assignment into the demand tracker — must not allocate: it
// runs once per TTI for hundreds of cells.
func TestAccumulateEpochAllocFree(t *testing.T) {
	ul, err := traffic.GenerateScaledTrace(traffic.ScaleSpec{Cells: 200, Seed: 3}, 64)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := traffic.GenerateScaledTrace(traffic.ScaleSpec{Cells: 200, Seed: 4}, 64)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int, 200)
	for c := range assign {
		assign[c] = c % 8
		if c%37 == 0 {
			assign[c] = -1 // rejected cells must be skipped, not counted
		}
	}
	demand := make([]float64, 200)
	d := NewDemandTracker(8)
	d.BeginEpoch()
	allocs := testing.AllocsPerRun(10, func() {
		AccumulateEpoch(d, ul, dl, 0, 64, assign, demand)
	})
	if allocs != 0 {
		t.Fatalf("per-slot coordination path allocates %.1f times per epoch; want 0", allocs)
	}
}

// Pooling-gain accounting sanity: required cores are bounded below by the
// ideal single-pool requirement and above by per-epoch sums, and a fleet
// with traffic needs at least one core.
func TestDemandTrackerCores(t *testing.T) {
	d := NewDemandTracker(2)
	d.BeginEpoch()
	d.BeginSlot()
	d.Add(0, 1000)
	d.Add(1, 3000)
	d.EndSlot()
	d.BeginSlot()
	d.Add(0, 5000)
	d.EndSlot()
	d.EndEpoch()
	// Cores = kappa × sustained-peak-bytes / slot-seconds. With two slots the
	// sustained peak is the mean of both; pick kappa so the results land
	// between integers and the ceil matters.
	kappa, slotSec := 0.4e-6, 1e-3
	// Server 0 sustains (1000+5000)/2=3000 → ceil(1.2)=2;
	// server 1 sustains (3000+0)/2=1500 → ceil(0.6)=1.
	if got := d.EpochCores(0, kappa, slotSec); got != 3 {
		t.Fatalf("EpochCores = %d, want 3", got)
	}
	// Aggregate sustains (4000+5000)/2=4500 → 1.8 cores < per-server sum.
	if got := d.IdealCores(kappa, slotSec); math.Abs(got-1.8) > 1e-9 {
		t.Fatalf("IdealCores = %.2f, want 1.8", got)
	}
	if d.Total() != 9000 {
		t.Fatalf("Total = %.0f, want 9000", d.Total())
	}
}
