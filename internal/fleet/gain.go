package fleet

import (
	"math"

	"concordia/internal/traffic"
)

// DemandTracker folds per-slot per-server offered traffic into per-epoch
// sustained demand peaks — the raw material of the pooling-gain accounting.
// The per-slot path (BeginSlot/Add/EndSlot, and AccumulateEpoch which
// drives them) is allocation-free: it runs once per TTI per fleet run and
// the alloc gate in fleet_test.go holds it to zero allocations.
//
// A "peak" here is the mean of an epoch's topPeakSlots worst slots, not the
// single worst slot: cell activity is bursty, so one-slot maxima are noisy
// enough to drown the systematic balance improvements migration buys, while
// the sustained peak is what a provisioner sizes against.
//
// The conversion from bytes to cores happens once at the end of the run:
// the fleet calibrates kappa (busy core-seconds per offered byte) from its
// own simulation, so a server's required cores for an epoch is
// kappa × sustained-peak-bytes / slot-seconds — the core count that absorbs
// the epoch's worst sustained burst at the measured efficiency.
type DemandTracker struct {
	servers int

	cur    []float64 // current slot, per server
	curAgg float64
	topk   []float64 // current epoch per-server top slot volumes (servers × topPeakSlots)
	tkAgg  [topPeakSlots]float64
	slots  int // slots folded into the current epoch

	epochs  [][]float64 // closed epochs' per-server sustained peaks
	aggPeak []float64   // closed epochs' fleet-aggregate sustained peaks
	total   float64     // total offered bytes across the run
}

// topPeakSlots is the number of worst slots averaged into a sustained peak.
const topPeakSlots = 4

// NewDemandTracker sizes a tracker for the fleet.
func NewDemandTracker(servers int) *DemandTracker {
	return &DemandTracker{
		servers: servers,
		cur:     make([]float64, servers),
		topk:    make([]float64, servers*topPeakSlots),
	}
}

// BeginEpoch resets the per-epoch peaks.
func (d *DemandTracker) BeginEpoch() {
	for i := range d.topk {
		d.topk[i] = 0
	}
	for i := range d.tkAgg {
		d.tkAgg[i] = 0
	}
	d.slots = 0
}

// BeginSlot resets the per-slot accumulators.
func (d *DemandTracker) BeginSlot() {
	for i := range d.cur {
		d.cur[i] = 0
	}
	d.curAgg = 0
}

// Add credits one cell's slot volume to its server.
func (d *DemandTracker) Add(server, bytes int) {
	d.cur[server] += float64(bytes)
	d.curAgg += float64(bytes)
	d.total += float64(bytes)
}

// EndSlot folds the slot into the epoch's top-slot sets.
func (d *DemandTracker) EndSlot() {
	for i, v := range d.cur {
		replaceMin(d.topk[i*topPeakSlots:(i+1)*topPeakSlots], v)
	}
	replaceMin(d.tkAgg[:], d.curAgg)
	d.slots++
}

// replaceMin keeps top as the set of the largest values seen: if v beats the
// current minimum, it takes its place.
func replaceMin(top []float64, v float64) {
	min := 0
	for i := 1; i < len(top); i++ {
		if top[i] < top[min] {
			min = i
		}
	}
	if v > top[min] {
		top[min] = v
	}
}

// EndEpoch closes the epoch, archiving its sustained peaks.
func (d *DemandTracker) EndEpoch() {
	n := d.slots
	if n > topPeakSlots {
		n = topPeakSlots
	}
	peaks := make([]float64, d.servers)
	for s := range peaks {
		peaks[s] = sustained(d.topk[s*topPeakSlots:(s+1)*topPeakSlots], n)
	}
	d.epochs = append(d.epochs, peaks)
	d.aggPeak = append(d.aggPeak, sustained(d.tkAgg[:], n))
}

// sustained averages the populated top slots (n = min(slots, topPeakSlots)).
func sustained(top []float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	sum := 0.0
	for _, v := range top {
		sum += v
	}
	return sum / float64(n)
}

// Total returns the offered bytes accumulated across the run.
func (d *DemandTracker) Total() float64 { return d.total }

// EpochCores returns epoch e's fleet-wide core requirement: the sum over
// servers of the smallest integer core count absorbing that server's
// sustained peak at efficiency kappa (busy core-seconds per byte).
func (d *DemandTracker) EpochCores(e int, kappa, slotSec float64) int {
	n := 0
	for _, peak := range d.epochs[e] {
		n += coresFor(peak, kappa, slotSec)
	}
	return n
}

// RequiredDemand returns the run's time-averaged peak demand rate in
// bytes/second: the mean over epochs of the sum of per-server sustained
// peaks. It is the kappa-free core of the pooling-gain accounting —
// multiply by any kappa to get a core requirement, so two runs over the
// same traffic compare at a common calibration. With migrations rebalancing
// hot servers, later epochs' per-server peaks shrink, which the mean
// credits — the share of the fleet NOT required is what collocated
// workloads reclaim.
func (d *DemandTracker) RequiredDemand(slotSec float64) float64 {
	if len(d.epochs) == 0 || slotSec <= 0 {
		return 0
	}
	sum := 0.0
	for _, peaks := range d.epochs {
		for _, peak := range peaks {
			sum += peak
		}
	}
	return sum / slotSec / float64(len(d.epochs))
}

// IdealDemand returns the single-global-pool bound on the demand rate: the
// mean over epochs of the fleet-aggregate sustained peak. The gap between
// RequiredDemand and IdealDemand is the residual partitioning loss.
func (d *DemandTracker) IdealDemand(slotSec float64) float64 {
	if len(d.aggPeak) == 0 || slotSec <= 0 {
		return 0
	}
	sum := 0.0
	for _, peak := range d.aggPeak {
		sum += peak
	}
	return sum / slotSec / float64(len(d.aggPeak))
}

// RequiredCores converts RequiredDemand to cores at efficiency kappa (busy
// core-seconds per byte). Fractional by design: whole-core rounding rewards
// concentrating demand (fewer ceils) and would mask the balance improvements
// migration buys; EpochCores keeps the integer provisioning view.
func (d *DemandTracker) RequiredCores(kappa, slotSec float64) float64 {
	return kappa * d.RequiredDemand(slotSec)
}

// IdealCores converts IdealDemand to cores at efficiency kappa.
func (d *DemandTracker) IdealCores(kappa, slotSec float64) float64 {
	return kappa * d.IdealDemand(slotSec)
}

// coresFor converts a peak slot volume to a whole-core requirement. A
// server with any assigned traffic needs at least one core.
func coresFor(peakBytes, kappa, slotSec float64) int {
	if peakBytes <= 0 || kappa <= 0 || slotSec <= 0 {
		return 0
	}
	n := int(math.Ceil(kappa * peakBytes / slotSec))
	if n < 1 {
		n = 1
	}
	return n
}

// AccumulateEpoch drives the tracker through one epoch of the global traces
// under the current assignment, and writes each cell's mean per-slot volume
// into demand (for the placement engine's next decision round). Slots
// [lo, hi) of ul/dl; rejected cells (assign < 0) carry no served traffic.
// This is the per-slot fleet-coordination path: no allocations.
func AccumulateEpoch(d *DemandTracker, ul, dl *traffic.Trace, lo, hi int, assign []int, demand []float64) {
	for c := range demand {
		demand[c] = 0
	}
	for t := lo; t < hi; t++ {
		d.BeginSlot()
		ulRow, dlRow := ul.Volumes[t], dl.Volumes[t]
		for c, s := range assign {
			if s < 0 {
				continue
			}
			v := ulRow[c] + dlRow[c]
			d.Add(s, v)
			demand[c] += float64(v)
		}
		d.EndSlot()
	}
	if n := hi - lo; n > 0 {
		inv := 1 / float64(n)
		for c := range demand {
			demand[c] *= inv
		}
	}
}
