package fleet

import (
	"math"

	"concordia/internal/rng"
	"concordia/internal/sim"
)

// Topology is the deterministic geography of one C-RAN deployment: cell
// sites and pool servers placed in a metro-scale square, with the one-way
// fronthaul latency from every cell to every server derived from fiber
// distance. Placement feasibility is a pure function of this matrix and the
// budget: a cell may only ever be served by a server whose fronthaul latency
// fits inside the slot-processing deadline's fronthaul allowance.
type Topology struct {
	Cells   int
	Servers int
	// Budget is the maximum tolerable one-way fronthaul latency; servers
	// above it are infeasible for the cell no matter how idle they are.
	Budget sim.Time
	// Latency[c][s] is the one-way fronthaul latency from cell c to server s.
	Latency [][]sim.Time

	feasible []int // per-cell count of servers within Budget
}

// Fronthaul latency model: switching/encapsulation floor plus fiber
// propagation (~5 µs/km), over a metro area sized so a multi-server fleet
// keeps every cell in range of its nearest servers while distant servers
// fall outside typical eCPRI budgets.
const (
	areaKm           = 30.0
	fronthaulBaseUs  = 25.0
	fronthaulPerKmUs = 5.0
	serverGridJitter = 0.2 // fraction of grid spacing
	// DefaultFronthaulBudget is the eCPRI-class one-way latency budget.
	DefaultFronthaulBudget = 150 * sim.Microsecond
)

// NewTopology places cells uniformly and servers on a jittered grid, both
// drawn from substreams of seed, and precomputes the fronthaul matrix.
func NewTopology(cells, servers int, budget sim.Time, seed uint64) *Topology {
	if budget <= 0 {
		budget = DefaultFronthaulBudget
	}
	t := &Topology{
		Cells:    cells,
		Servers:  servers,
		Budget:   budget,
		Latency:  make([][]sim.Time, cells),
		feasible: make([]int, cells),
	}
	// Servers sit on a jittered sqrt-grid so coverage is even; cells scatter
	// uniformly. Separate substreams keep the layouts independent of each
	// other and of every other consumer of the fleet seed.
	sr := rng.Substream(seed, 0x70b0)
	side := int(math.Ceil(math.Sqrt(float64(servers))))
	spacing := areaKm / float64(side)
	sx := make([]float64, servers)
	sy := make([]float64, servers)
	for s := 0; s < servers; s++ {
		gx := float64(s%side) + 0.5
		gy := float64(s/side) + 0.5
		sx[s] = spacing * (gx + sr.Uniform(-serverGridJitter, serverGridJitter))
		sy[s] = spacing * (gy + sr.Uniform(-serverGridJitter, serverGridJitter))
	}
	cr := rng.Substream(seed, 0x70b1)
	for c := 0; c < cells; c++ {
		cx := cr.Uniform(0, areaKm)
		cy := cr.Uniform(0, areaKm)
		t.Latency[c] = make([]sim.Time, servers)
		for s := 0; s < servers; s++ {
			km := math.Hypot(cx-sx[s], cy-sy[s])
			us := fronthaulBaseUs + fronthaulPerKmUs*km
			t.Latency[c][s] = sim.Time(us * float64(sim.Microsecond))
			if t.Latency[c][s] <= budget {
				t.feasible[c]++
			}
		}
	}
	return t
}

// Feasible reports whether server s is within cell c's fronthaul budget.
func (t *Topology) Feasible(c, s int) bool { return t.Latency[c][s] <= t.Budget }

// FeasibleCount returns how many servers are within cell c's budget.
func (t *Topology) FeasibleCount(c int) int { return t.feasible[c] }
