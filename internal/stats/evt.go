package stats

import (
	"errors"
	"math"
	"sort"
)

// GPD is a generalized Pareto distribution fitted to distribution
// exceedances over a threshold u: P(X - u > x | X > u) follows
// (1 + xi·x/sigma)^(-1/xi). It underpins the EVT/pWCET baseline predictor
// the paper compares against (Cucu-Grosjean-style measurement-based
// probabilistic timing analysis, [23]).
type GPD struct {
	Threshold float64 // u
	Xi        float64 // shape
	Sigma     float64 // scale
	TailProb  float64 // empirical P(X > u)
	NExceed   int
}

// FitGPDTail fits a GPD to the exceedances of xs above the empirical
// tailFrac quantile (e.g. 0.9 keeps the top 10% of samples) using the
// probability-weighted-moments estimator, which is robust for the modest
// exceedance counts measurement-based WCET analysis works with.
func FitGPDTail(xs []float64, tailFrac float64) (*GPD, error) {
	if len(xs) < 20 {
		return nil, errors.New("stats: too few samples for GPD tail fit")
	}
	if tailFrac <= 0 || tailFrac >= 1 {
		return nil, errors.New("stats: tailFrac must be in (0,1)")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	u := QuantileSorted(s, tailFrac)
	var exceed []float64
	for _, x := range s {
		if x > u {
			exceed = append(exceed, x-u)
		}
	}
	if len(exceed) < 10 {
		return nil, errors.New("stats: too few exceedances for GPD tail fit")
	}
	xi, sigma := fitGPDPWM(exceed)
	return &GPD{
		Threshold: u,
		Xi:        xi,
		Sigma:     sigma,
		TailProb:  float64(len(exceed)) / float64(len(s)),
		NExceed:   len(exceed),
	}, nil
}

// fitGPDPWM estimates GPD parameters via probability-weighted moments
// (Hosking & Wallis 1987). exceed must be the positive exceedances.
func fitGPDPWM(exceed []float64) (xi, sigma float64) {
	s := append([]float64(nil), exceed...)
	sort.Float64s(s)
	n := float64(len(s))
	// a0 = E[X], a1 = E[X·(1-F(X))], estimated with plotting positions.
	var a0, a1 float64
	for i, x := range s {
		a0 += x
		a1 += x * (n - 1 - float64(i)) / (n - 1)
	}
	a0 /= n
	a1 /= n
	if a0 == 0 {
		return 0, 1e-9
	}
	den := a0 - 2*a1
	if den <= 0 {
		// Extremely heavy tail; clamp to a conservative heavy shape.
		return 0.5, a0 / 2
	}
	// Hosking & Wallis PWM estimators.
	xi = 2 - a0/den
	sigma = 2 * a0 * a1 / den
	if sigma <= 0 {
		sigma = a0
	}
	// Clamp shape to a sane range for runtime distributions.
	if xi > 0.9 {
		xi = 0.9
	}
	if xi < -0.9 {
		xi = -0.9
	}
	return xi, sigma
}

// Quantile returns the value exceeded with probability (1 - q) under the
// fitted tail model; for q below the threshold's coverage it is not defined
// by the tail, and the threshold itself is returned.
func (g *GPD) Quantile(q float64) float64 {
	p := 1 - q // exceedance probability target
	if p >= g.TailProb {
		return g.Threshold
	}
	ratio := p / g.TailProb
	if math.Abs(g.Xi) < 1e-9 {
		return g.Threshold + g.Sigma*(-math.Log(ratio))
	}
	return g.Threshold + g.Sigma/g.Xi*(math.Pow(ratio, -g.Xi)-1)
}

// SurvivalAbove returns the modeled P(X > x) for x above the threshold.
func (g *GPD) SurvivalAbove(x float64) float64 {
	if x <= g.Threshold {
		return g.TailProb
	}
	z := (x - g.Threshold) / g.Sigma
	if math.Abs(g.Xi) < 1e-9 {
		return g.TailProb * math.Exp(-z)
	}
	base := 1 + g.Xi*z
	if base <= 0 {
		return 0
	}
	return g.TailProb * math.Pow(base, -1/g.Xi)
}
