package stats

import "math"

// DistanceCorrelation returns the Székely-Rizzo distance correlation between
// x and y, a dependence measure in [0, 1] that is zero iff the variables are
// independent (for finite first moments). Unlike Pearson correlation it
// detects non-linear and non-monotonic relationships, which is why the paper
// uses it for feature selection (Algorithm 1).
//
// The O(n^2) pairwise-distance formulation is used; callers subsample large
// datasets before invoking it, as the paper's offline pipeline does.
func DistanceCorrelation(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0
	}
	a := centeredDistances(x)
	b := centeredDistances(y)
	var dcov, dvarX, dvarY float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dcov += a[i][j] * b[i][j]
			dvarX += a[i][j] * a[i][j]
			dvarY += b[i][j] * b[i][j]
		}
	}
	nn := float64(n * n)
	dcov /= nn
	dvarX /= nn
	dvarY /= nn
	denom := math.Sqrt(dvarX * dvarY)
	if denom == 0 {
		return 0
	}
	v := math.Sqrt(dcov) / math.Sqrt(denom)
	if math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// centeredDistances returns the double-centered pairwise distance matrix.
func centeredDistances(x []float64) [][]float64 {
	n := len(x)
	d := make([][]float64, n)
	rowMean := make([]float64, n)
	var grand float64
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := math.Abs(x[i] - x[j])
			d[i][j] = v
			rowMean[i] += v
		}
		rowMean[i] /= float64(n)
		grand += rowMean[i]
	}
	grand /= float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d[i][j] = d[i][j] - rowMean[i] - rowMean[j] + grand
		}
	}
	return d
}
