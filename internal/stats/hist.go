package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Log2Histogram buckets non-negative integer samples into power-of-two
// ranges: [0,1], [2,3], [4,7], [8,15], ... This is the presentation the BCC
// runqlat tool uses and Fig 10 of the paper reports.
type Log2Histogram struct {
	counts []uint64
	total  uint64
}

// NewLog2Histogram returns an empty histogram.
func NewLog2Histogram() *Log2Histogram { return &Log2Histogram{} }

// bucketOf maps a value to its bucket index: 0 → [0,1], 1 → [2,3], ...
func bucketOf(v uint64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(v) - 1
}

// Observe records one sample.
func (h *Log2Histogram) Observe(v uint64) {
	b := bucketOf(v)
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
	h.total++
}

// Total returns the number of observed samples.
func (h *Log2Histogram) Total() uint64 { return h.total }

// Bucket describes one populated histogram range.
type Bucket struct {
	Lo, Hi uint64
	Count  uint64
}

// Buckets returns the bucket ranges in increasing order, including empty
// interior buckets (so plots have a continuous x-axis).
func (h *Log2Histogram) Buckets() []Bucket {
	out := make([]Bucket, len(h.counts))
	for i := range h.counts {
		lo := uint64(0)
		if i > 0 {
			lo = 1 << uint(i)
		}
		hi := uint64(1)<<uint(i+1) - 1
		out[i] = Bucket{Lo: lo, Hi: hi, Count: h.counts[i]}
	}
	return out
}

// CountAbove returns the number of samples in buckets whose lower bound is
// >= threshold. Fig 10's ">63us tail events" uses this.
func (h *Log2Histogram) CountAbove(threshold uint64) uint64 {
	var n uint64
	for _, b := range h.Buckets() {
		if b.Lo >= threshold {
			n += b.Count
		}
	}
	return n
}

// String renders an ASCII histogram resembling runqlat output.
func (h *Log2Histogram) String() string {
	var sb strings.Builder
	var maxCount uint64
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for _, b := range h.Buckets() {
		bar := 0
		if maxCount > 0 {
			bar = int(40 * b.Count / maxCount)
		}
		fmt.Fprintf(&sb, "%8d -> %-8d : %-8d |%s\n", b.Lo, b.Hi, b.Count, strings.Repeat("*", bar))
	}
	return sb.String()
}

// Reservoir keeps a bounded uniform random sample of a stream using
// Algorithm R. It is used where full runtime logs would be too large (e.g.
// hours-long reliability runs).
type Reservoir struct {
	cap   int
	seen  uint64
	items []float64
	rand  func(n int) int // injected for determinism; returns [0,n)
}

// NewReservoir returns a reservoir holding at most capacity samples.
// randInt must return a uniform integer in [0, n).
func NewReservoir(capacity int, randInt func(n int) int) *Reservoir {
	if capacity <= 0 {
		panic("stats: reservoir capacity must be positive")
	}
	return &Reservoir{cap: capacity, rand: randInt}
}

// Observe offers one stream element to the reservoir.
func (r *Reservoir) Observe(v float64) {
	r.seen++
	if len(r.items) < r.cap {
		r.items = append(r.items, v)
		return
	}
	// Replace a random element with probability cap/seen.
	j := r.rand(int(r.seen))
	if j < r.cap {
		r.items[j] = v
	}
}

// Samples returns the retained sample (not a copy).
func (r *Reservoir) Samples() []float64 { return r.items }

// Seen returns how many elements were offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// TailRecorder records every sample above an adaptive threshold plus a
// reservoir of the body, so extreme quantiles (99.999%) remain exact while
// memory stays bounded. The paper's reliability requirement concerns exactly
// these tails.
type TailRecorder struct {
	count     uint64
	keepTop   int
	top       []float64 // min-heap-free: kept sorted ascending, bounded
	reservoir *Reservoir
}

// NewTailRecorder keeps the keepTop largest samples exactly and a
// body reservoir of bodyCap samples.
func NewTailRecorder(keepTop, bodyCap int, randInt func(n int) int) *TailRecorder {
	return &TailRecorder{keepTop: keepTop, reservoir: NewReservoir(bodyCap, randInt)}
}

// Observe records a sample.
func (t *TailRecorder) Observe(v float64) {
	t.count++
	t.reservoir.Observe(v)
	if len(t.top) < t.keepTop {
		t.insertTop(v)
		return
	}
	if v > t.top[0] {
		t.top[0] = v
		// restore sortedness: single insertion
		for i := 1; i < len(t.top) && t.top[i] < t.top[i-1]; i++ {
			t.top[i], t.top[i-1] = t.top[i-1], t.top[i]
		}
	}
}

func (t *TailRecorder) insertTop(v float64) {
	i := 0
	for i < len(t.top) && t.top[i] < v {
		i++
	}
	t.top = append(t.top, 0)
	copy(t.top[i+1:], t.top[i:])
	t.top[i] = v
}

// Count returns the number of observed samples.
func (t *TailRecorder) Count() uint64 { return t.count }

// Quantile returns the q-quantile. For q in the exactly-tracked tail region
// it is exact; otherwise it falls back to the body reservoir. q is clamped
// to [0,1] (q > 1 used to produce a negative rank and an out-of-range index
// into the tail buffer); the quantile of an empty recorder is 0.
func (t *TailRecorder) Quantile(q float64) float64 {
	n := t.count
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return t.Max()
	}
	if !(q > 0) { // clamps q < 0 and NaN
		q = 0
	}
	// rank counts how many samples are >= the answer.
	rank := float64(n) * (1 - q)
	if int(rank) < len(t.top) {
		idx := len(t.top) - 1 - int(rank)
		if idx < 0 {
			idx = 0
		}
		return t.top[idx]
	}
	return Quantile(t.reservoir.Samples(), q)
}

// Max returns the largest observed sample, or 0 when empty.
func (t *TailRecorder) Max() float64 {
	if len(t.top) == 0 {
		return 0
	}
	return t.top[len(t.top)-1]
}
