package stats

import (
	"errors"
	"math"
)

// OLS holds a fitted ordinary-least-squares linear model
// y ≈ intercept + Σ coef[i]·x[i]. It backs both the linear-regression WCET
// baseline (Fig 14) and backwards-elimination feature scoring.
type OLS struct {
	Intercept float64
	Coef      []float64
}

// ErrSingular is returned when the normal equations cannot be solved, e.g.
// for perfectly collinear features.
var ErrSingular = errors.New("stats: singular design matrix")

// FitOLS fits a linear model on rows X (n×p) against y (n) by solving the
// normal equations with Gaussian elimination and partial pivoting. A small
// ridge term stabilizes near-singular designs.
func FitOLS(X [][]float64, y []float64) (*OLS, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, errors.New("stats: empty or mismatched OLS inputs")
	}
	p := len(X[0])
	// Augment with intercept column; build (p+1)x(p+1) normal matrix.
	d := p + 1
	a := make([][]float64, d)
	b := make([]float64, d)
	for i := range a {
		a[i] = make([]float64, d)
	}
	row := make([]float64, d)
	for r := 0; r < n; r++ {
		row[0] = 1
		copy(row[1:], X[r])
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
			b[i] += row[i] * y[r]
		}
	}
	const ridge = 1e-9
	for i := 1; i < d; i++ {
		a[i][i] += ridge * a[i][i]
	}
	coef, err := SolveLinear(a, b)
	if err != nil {
		return nil, err
	}
	return &OLS{Intercept: coef[0], Coef: coef[1:]}, nil
}

// Predict evaluates the model on a feature vector.
func (m *OLS) Predict(x []float64) float64 {
	v := m.Intercept
	for i, c := range m.Coef {
		if i < len(x) {
			v += c * x[i]
		}
	}
	return v
}

// SolveLinear solves a·x = b in place using Gaussian elimination with
// partial pivoting. a and b are modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[best][col]) {
				best = r
			}
		}
		if math.Abs(a[best][col]) < 1e-14 {
			return nil, ErrSingular
		}
		a[col], a[best] = a[best], a[col]
		b[col], b[best] = b[best], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

// RSquared returns the coefficient of determination of the model over the
// given data.
func (m *OLS) RSquared(X [][]float64, y []float64) float64 {
	if len(X) == 0 {
		return 0
	}
	my := Mean(y)
	var ssRes, ssTot float64
	for i := range X {
		p := m.Predict(X[i])
		ssRes += (y[i] - p) * (y[i] - p)
		ssTot += (y[i] - my) * (y[i] - my)
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
