package stats

import "sort"

// Bootstrap provides nonparametric confidence intervals for experiment
// summaries: EXPERIMENTS.md reports paper-vs-measured comparisons with
// percentile-bootstrap CIs so shape claims are not over-read from single
// runs.
type Bootstrap struct {
	// Resamples is the number of bootstrap replicates (default 1000).
	Resamples int
	// RandInt must return a uniform integer in [0, n).
	RandInt func(n int) int
}

// NewBootstrap returns a bootstrap engine with the given deterministic
// integer source.
func NewBootstrap(randInt func(n int) int) *Bootstrap {
	return &Bootstrap{Resamples: 1000, RandInt: randInt}
}

// CI returns the (lo, hi) percentile-bootstrap confidence interval at the
// given level (e.g. 0.95) for statistic applied to xs. The statistic is
// evaluated on resampled-with-replacement copies of xs.
func (b *Bootstrap) CI(xs []float64, level float64, statistic func([]float64) float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	n := b.Resamples
	if n <= 0 {
		n = 1000
	}
	stats := make([]float64, n)
	resample := make([]float64, len(xs))
	for i := 0; i < n; i++ {
		for j := range resample {
			resample[j] = xs[b.RandInt(len(xs))]
		}
		stats[i] = statistic(resample)
	}
	sort.Float64s(stats)
	alpha := (1 - level) / 2
	return QuantileSorted(stats, alpha), QuantileSorted(stats, 1-alpha)
}

// MeanCI is CI for the mean.
func (b *Bootstrap) MeanCI(xs []float64, level float64) (lo, hi float64) {
	return b.CI(xs, level, Mean)
}

// QuantileCI is CI for the q-quantile.
func (b *Bootstrap) QuantileCI(xs []float64, q, level float64) (lo, hi float64) {
	return b.CI(xs, level, func(s []float64) float64 { return Quantile(s, q) })
}
