package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"concordia/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("mean %v want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("variance %v want 4", v)
	}
	if s := StdDev(xs); s != 2 {
		t.Errorf("stddev %v want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max wrong: %v %v", Min(xs), Max(xs))
	}
}

func TestQuantileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v)=%v want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("interpolated median %v want 5", got)
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.LogNormal(0, 1)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := Quantile(xs, q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestQuantileEmpty(t *testing.T) {
	// Empty samples are defined to have quantile 0 (not NaN, which would
	// propagate into report strings and CSV exports).
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("quantile of empty = %v, want 0", got)
	}
	if got := QuantileSorted(nil, 0.99); got != 0 {
		t.Fatalf("sorted quantile of empty = %v, want 0", got)
	}
}

func TestQuantileClampsQ(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Quantile(xs, -0.5); got != 1 {
		t.Fatalf("q<0 must clamp to min: got %v", got)
	}
	if got := Quantile(xs, 1.5); got != 3 {
		t.Fatalf("q>1 must clamp to max: got %v", got)
	}
	if got := Quantile(xs, math.NaN()); got != 1 {
		t.Fatalf("NaN q must clamp low: got %v", got)
	}
}

// Regression: TailRecorder.Quantile with q > 1 computed a negative rank and
// indexed past the end of the exactly-tracked tail buffer, panicking.
func TestTailRecorderQuantileClampsQ(t *testing.T) {
	r := rng.New(5)
	tr := NewTailRecorder(8, 64, r.Intn)
	for i := 1; i <= 100; i++ {
		tr.Observe(float64(i))
	}
	if got := tr.Quantile(1.5); got != tr.Max() {
		t.Fatalf("q>1 must clamp to max: got %v want %v", got, tr.Max())
	}
	if got := tr.Quantile(1); got != tr.Max() {
		t.Fatalf("q=1 must be max: got %v", got)
	}
	if got := tr.Quantile(-3); got > tr.Quantile(0.5) {
		t.Fatalf("q<0 must clamp low: got %v", got)
	}
	if got := tr.Quantile(math.NaN()); got > tr.Quantile(0.5) {
		t.Fatalf("NaN q must clamp low: got %v", got)
	}
}

func TestTailRecorderEmptyQuantile(t *testing.T) {
	r := rng.New(5)
	tr := NewTailRecorder(8, 64, r.Intn)
	for _, q := range []float64{0, 0.5, 0.9999, 1, 2, -1} {
		if got := tr.Quantile(q); got != 0 {
			t.Fatalf("empty recorder Quantile(%v) = %v, want 0", q, got)
		}
	}
	if tr.Max() != 0 {
		t.Fatal("empty recorder Max must be 0")
	}
}

func TestECDF(t *testing.T) {
	s := []float64{1, 2, 2, 3}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {5, 1},
	}
	for _, c := range cases {
		if got := ECDF(s, c.x); got != c.want {
			t.Errorf("ECDF(%v)=%v want %v", c.x, got, c.want)
		}
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Fatalf("KS of identical samples = %v want 0", d)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KSStatistic(a, b); d != 1 {
		t.Fatalf("KS of disjoint samples = %v want 1", d)
	}
}

func TestKSDetectsShift(t *testing.T) {
	r := rng.New(2)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	c := make([]float64, 2000)
	for i := range a {
		a[i] = r.Normal(0, 1)
		b[i] = r.Normal(0, 1)
		c[i] = r.Normal(1.0, 1) // shifted
	}
	pSame := KSPValue(KSStatistic(a, b), len(a), len(b))
	pDiff := KSPValue(KSStatistic(a, c), len(a), len(c))
	if pSame < 0.01 {
		t.Errorf("same-distribution p-value too small: %v", pSame)
	}
	if pDiff > 0.001 {
		t.Errorf("shifted-distribution p-value too large: %v", pDiff)
	}
}

func TestWasserstein(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{1, 1, 1, 1}
	if d := Wasserstein1(a, b); math.Abs(d-1) > 1e-9 {
		t.Fatalf("W1 of unit shift = %v want 1", d)
	}
	if d := Wasserstein1(a, a); d != 0 {
		t.Fatalf("W1 of identical = %v want 0", d)
	}
}

func TestWassersteinSymmetric(t *testing.T) {
	r := rng.New(3)
	a := make([]float64, 100)
	b := make([]float64, 150)
	for i := range a {
		a[i] = r.Normal(0, 1)
	}
	for i := range b {
		b[i] = r.Normal(2, 3)
	}
	d1, d2 := Wasserstein1(a, b), Wasserstein1(b, a)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("W1 not symmetric: %v vs %v", d1, d2)
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if c := Correlation(x, y); math.Abs(c-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", c)
	}
	yneg := []float64{10, 8, 6, 4, 2}
	if c := Correlation(x, yneg); math.Abs(c+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", c)
	}
}

func TestDistanceCorrelationLinear(t *testing.T) {
	r := rng.New(4)
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = r.Normal(0, 1)
		y[i] = 3*x[i] + 0.01*r.Normal(0, 1)
		z[i] = r.Normal(0, 1)
	}
	if d := DistanceCorrelation(x, y); d < 0.95 {
		t.Errorf("dcor of near-linear relation = %v want ~1", d)
	}
	if d := DistanceCorrelation(x, z); d > 0.3 {
		t.Errorf("dcor of independent variables = %v want ~0", d)
	}
}

func TestDistanceCorrelationNonlinear(t *testing.T) {
	// Pearson correlation misses y = x^2 on symmetric x; dcor must not.
	r := rng.New(5)
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Normal(0, 1)
		y[i] = x[i] * x[i]
	}
	pearson := math.Abs(Correlation(x, y))
	dcor := DistanceCorrelation(x, y)
	if pearson > 0.3 {
		t.Skipf("sample accidentally correlated: %v", pearson)
	}
	if dcor < 0.4 {
		t.Errorf("dcor failed to detect quadratic dependence: %v", dcor)
	}
}

func TestDistanceCorrelationRange(t *testing.T) {
	err := quick.Check(func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 50
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Normal(0, 1)
			y[i] = r.LogNormal(0, 1)
		}
		d := DistanceCorrelation(x, y)
		return d >= 0 && d <= 1
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOLSExactFit(t *testing.T) {
	// y = 1 + 2a + 3b
	X := [][]float64{{1, 1}, {2, 0}, {0, 2}, {3, 1}, {1, 3}}
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 1 + 2*x[0] + 3*x[1]
	}
	m, err := FitOLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-1) > 1e-6 || math.Abs(m.Coef[0]-2) > 1e-6 || math.Abs(m.Coef[1]-3) > 1e-6 {
		t.Fatalf("coefficients %v %v", m.Intercept, m.Coef)
	}
	if r2 := m.RSquared(X, y); r2 < 0.9999 {
		t.Fatalf("R2 %v", r2)
	}
}

func TestOLSNoisyFit(t *testing.T) {
	r := rng.New(6)
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := r.Normal(0, 2), r.Normal(0, 2)
		X[i] = []float64{a, b}
		y[i] = 5 - 1.5*a + 0.5*b + r.Normal(0, 0.1)
	}
	m, err := FitOLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]+1.5) > 0.05 || math.Abs(m.Coef[1]-0.5) > 0.05 {
		t.Fatalf("coefficients %v", m.Coef)
	}
}

func TestOLSMismatchedInput(t *testing.T) {
	if _, err := FitOLS(nil, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	if _, err := FitOLS([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("solution %v want [1 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := SolveLinear(a, b); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestGPDExponentialTail(t *testing.T) {
	// Exponential has GPD shape xi = 0.
	r := rng.New(7)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Exponential(1)
	}
	g, err := FitGPDTail(xs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Xi) > 0.12 {
		t.Errorf("exponential tail shape %v want ~0", g.Xi)
	}
	// True 0.9999 quantile of Exp(1) is -ln(1e-4) ≈ 9.21.
	q := g.Quantile(0.9999)
	if math.Abs(q-9.21) > 1.0 {
		t.Errorf("extrapolated q99.99 = %v want ~9.21", q)
	}
}

func TestGPDParetoTail(t *testing.T) {
	// Pareto(alpha) tail has xi = 1/alpha.
	r := rng.New(8)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Pareto(1, 3)
	}
	g, err := FitGPDTail(xs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Xi-1.0/3) > 0.12 {
		t.Errorf("pareto tail shape %v want ~0.33", g.Xi)
	}
}

func TestGPDQuantileMonotone(t *testing.T) {
	r := rng.New(9)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.LogNormal(3, 0.5)
	}
	g, err := FitGPDTail(xs, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, q := range []float64{0.9, 0.99, 0.999, 0.9999, 0.99999} {
		v := g.Quantile(q)
		if v < prev {
			t.Fatalf("GPD quantile not monotone at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestGPDErrors(t *testing.T) {
	if _, err := FitGPDTail([]float64{1, 2}, 0.9); err == nil {
		t.Fatal("expected error for tiny sample")
	}
	xs := make([]float64, 100)
	if _, err := FitGPDTail(xs, 1.5); err == nil {
		t.Fatal("expected error for bad tailFrac")
	}
}

func TestLog2HistogramBuckets(t *testing.T) {
	h := NewLog2Histogram()
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 15, 16, 100} {
		h.Observe(v)
	}
	bs := h.Buckets()
	// bucket 0: [0,1] -> 2 samples; bucket 1: [2,3] -> 2; bucket 2: [4,7] -> 2;
	// bucket 3: [8,15] -> 2; bucket 4: [16,31] -> 1; bucket 6: [64,127] -> 1
	wantCounts := map[int]uint64{0: 2, 1: 2, 2: 2, 3: 2, 4: 1, 6: 1}
	for i, b := range bs {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d [%d,%d] count %d want %d", i, b.Lo, b.Hi, b.Count, wantCounts[i])
		}
	}
	if h.Total() != 10 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestLog2HistogramCountAbove(t *testing.T) {
	h := NewLog2Histogram()
	for _, v := range []uint64{10, 70, 70, 200} {
		h.Observe(v)
	}
	if got := h.CountAbove(64); got != 3 {
		t.Fatalf("CountAbove(64) = %d want 3", got)
	}
}

func TestReservoirUnderCapacity(t *testing.T) {
	r := rng.New(10)
	res := NewReservoir(100, r.Intn)
	for i := 0; i < 50; i++ {
		res.Observe(float64(i))
	}
	if len(res.Samples()) != 50 {
		t.Fatalf("reservoir size %d want 50", len(res.Samples()))
	}
}

func TestReservoirBounded(t *testing.T) {
	r := rng.New(11)
	res := NewReservoir(64, r.Intn)
	for i := 0; i < 10000; i++ {
		res.Observe(float64(i))
	}
	if len(res.Samples()) != 64 {
		t.Fatalf("reservoir size %d want 64", len(res.Samples()))
	}
	if res.Seen() != 10000 {
		t.Fatalf("seen %d", res.Seen())
	}
}

func TestReservoirUnbiasedMean(t *testing.T) {
	r := rng.New(12)
	res := NewReservoir(2000, r.Intn)
	for i := 0; i < 100000; i++ {
		res.Observe(float64(i % 100))
	}
	m := Mean(res.Samples())
	if math.Abs(m-49.5) > 3 {
		t.Fatalf("reservoir mean %v want ~49.5", m)
	}
}

func TestTailRecorderExactTail(t *testing.T) {
	r := rng.New(13)
	tr := NewTailRecorder(1000, 1000, r.Intn)
	n := 100000
	for i := 0; i < n; i++ {
		tr.Observe(float64(i))
	}
	// 99.9% quantile of 0..99999 is ~99900; within tracked top-1000.
	if q := tr.Quantile(0.999); math.Abs(q-99900) > 10 {
		t.Fatalf("q99.9 = %v want ~99900", q)
	}
	if q := tr.Quantile(0.99999); math.Abs(q-99999) > 5 {
		t.Fatalf("q99.999 = %v want ~99999", q)
	}
	if tr.Max() != 99999 {
		t.Fatalf("max %v", tr.Max())
	}
}

func TestTailRecorderRunningMaxProperty(t *testing.T) {
	err := quick.Check(func(seed uint32) bool {
		r := rng.New(uint64(seed))
		tr := NewTailRecorder(50, 50, r.Intn)
		max := math.Inf(-1)
		for i := 0; i < 500; i++ {
			v := r.LogNormal(0, 2)
			tr.Observe(v)
			if v > max {
				max = v
			}
		}
		return tr.Max() == max
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesMultiple(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	got := Quantiles(xs, 0, 0.5, 1)
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Quantiles = %v want %v", got, want)
		}
	}
}

func TestECDFSortedConsistency(t *testing.T) {
	err := quick.Check(func(seed uint32) bool {
		r := rng.New(uint64(seed))
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = r.Normal(0, 5)
		}
		sort.Float64s(xs)
		// ECDF must be non-decreasing and hit 0 and 1 at extremes.
		prev := 0.0
		for x := -20.0; x <= 20; x += 0.5 {
			v := ECDF(xs, x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return ECDF(xs, -1e9) == 0 && ECDF(xs, 1e9) == 1
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQuantile(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Quantile(xs, 0.999)
	}
}

func BenchmarkDistanceCorrelation(b *testing.B) {
	r := rng.New(2)
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.Float64()
		y[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DistanceCorrelation(x, y)
	}
}

func TestBootstrapMeanCICoversTruth(t *testing.T) {
	r := rng.New(20)
	b := NewBootstrap(r.Intn)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
	}
	lo, hi := b.MeanCI(xs, 0.95)
	if lo > 10 || hi < 10 {
		t.Fatalf("95%% CI [%v, %v] misses the true mean 10", lo, hi)
	}
	if hi-lo > 1.0 {
		t.Fatalf("CI width %v implausibly wide for n=400 sd=2", hi-lo)
	}
	if hi <= lo {
		t.Fatal("degenerate interval")
	}
}

func TestBootstrapQuantileCI(t *testing.T) {
	r := rng.New(21)
	b := NewBootstrap(r.Intn)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Exponential(1)
	}
	// True median of Exp(1) is ln 2 ≈ 0.693.
	lo, hi := b.QuantileCI(xs, 0.5, 0.95)
	if lo > 0.693 || hi < 0.693 {
		t.Fatalf("median CI [%v, %v] misses ln 2", lo, hi)
	}
}

func TestBootstrapEmpty(t *testing.T) {
	r := rng.New(22)
	b := NewBootstrap(r.Intn)
	lo, hi := b.MeanCI(nil, 0.95)
	if lo != 0 || hi != 0 {
		t.Fatal("empty input should yield a zero interval")
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 5, 3, 8, 2, 9, 4}
	r1, r2 := rng.New(23), rng.New(23)
	lo1, hi1 := NewBootstrap(r1.Intn).MeanCI(xs, 0.9)
	lo2, hi2 := NewBootstrap(r2.Intn).MeanCI(xs, 0.9)
	if lo1 != lo2 || hi1 != hi2 {
		t.Fatal("bootstrap not deterministic for a fixed stream")
	}
}

func TestAutocorrelation(t *testing.T) {
	// A strongly persistent AR(1) signal has high lag-1 ACF; white noise ~0.
	r := rng.New(30)
	ar := make([]float64, 5000)
	wn := make([]float64, 5000)
	prev := 0.0
	for i := range ar {
		prev = 0.9*prev + r.Normal(0, 1)
		ar[i] = prev
		wn[i] = r.Normal(0, 1)
	}
	if a := Autocorrelation(ar, 1); a < 0.8 {
		t.Errorf("AR(1) lag-1 ACF %.2f want ~0.9", a)
	}
	if a := Autocorrelation(wn, 1); math.Abs(a) > 0.1 {
		t.Errorf("white-noise lag-1 ACF %.2f want ~0", a)
	}
	if Autocorrelation(ar, 0) != 0 || Autocorrelation(ar, len(ar)) != 0 {
		t.Error("invalid lags must return 0")
	}
}
