// Package stats provides the statistical toolkit the reproduction depends
// on: exact and tail quantiles, log-bucketed latency histograms (the shape
// runqlat reports), two-sample Kolmogorov-Smirnov testing, Wasserstein-1
// distance, Székely-Rizzo distance correlation, ordinary least squares, and
// generalized-Pareto tail fitting for the EVT pWCET baseline.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs; it panics on empty input.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs; it panics on empty input.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile of xs using linear interpolation between
// order statistics, copying and sorting internally. q is clamped to [0,1];
// the quantile of an empty sample is defined as 0 (NaN would propagate into
// CSV/metrics exports downstream).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return QuantileSorted(s, q)
}

// QuantileSorted is Quantile for pre-sorted input, without allocation.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	// Clamp q into [0,1]; NaN (for which both comparisons fail) would turn
	// into an out-of-range index below, so it clamps low too.
	if q >= 1 {
		return sorted[n-1]
	}
	if !(q > 0) {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles evaluates several quantiles with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = QuantileSorted(s, q)
	}
	return out
}

// ECDF returns the empirical CDF of xs evaluated at x: the fraction of
// samples <= x. sorted must be pre-sorted.
func ECDF(sorted []float64, x float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(sorted, x)
	// Move past duplicates equal to x so the CDF counts them.
	for i < len(sorted) && sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(sorted))
}

// KSStatistic returns the two-sample Kolmogorov-Smirnov statistic D: the
// maximum absolute difference between the empirical CDFs of a and b.
func KSStatistic(a, b []float64) float64 {
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		// Advance both walkers past all samples equal to the smaller head so
		// ties contribute a single CDF step on each side.
		v := sa[i]
		if sb[j] < v {
			v = sb[j]
		}
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue approximates the two-sample KS p-value for statistic d with
// sample sizes n and m, using the asymptotic Kolmogorov distribution.
func KSPValue(d float64, n, m int) float64 {
	if n == 0 || m == 0 {
		return 1
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	// Q(lambda) = 2 sum_{k=1..inf} (-1)^{k-1} exp(-2 k^2 lambda^2)
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Wasserstein1 returns the 1-Wasserstein (earth mover's) distance between
// the empirical distributions of a and b, computed as the L1 distance
// between inverse CDFs.
func Wasserstein1(a, b []float64) float64 {
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	if len(sa) == 0 || len(sb) == 0 {
		return math.NaN()
	}
	// Merge the quantile grids of both samples.
	all := make([]float64, 0, len(sa)+len(sb))
	all = append(all, sa...)
	all = append(all, sb...)
	sort.Float64s(all)
	var d float64
	for i := 0; i+1 < len(all); i++ {
		dx := all[i+1] - all[i]
		if dx == 0 {
			continue
		}
		mid := (all[i+1] + all[i]) / 2
		d += math.Abs(ECDF(sa, mid)-ECDF(sb, mid)) * dx
	}
	return d
}

// Correlation returns the Pearson correlation coefficient between x and y.
func Correlation(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Autocorrelation returns the lag-k sample autocorrelation of xs, the
// burstiness measure used to validate the traffic generator's ms-scale
// correlation (§2.2).
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
		if i+lag < n {
			num += d * (xs[i+lag] - m)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
