package core

import (
	"testing"

	"concordia/internal/costmodel"
	"concordia/internal/ran"
	"concordia/internal/sim"
	"concordia/internal/traffic"
	"concordia/internal/workloads"
)

func TestProfileCoversKinds(t *testing.T) {
	model := costmodel.New(1)
	data := Profile(ran.Cells20MHz(2), 300, model, 4, 2)
	for _, kind := range []ran.TaskKind{
		ran.TaskLDPCDecode, ran.TaskLDPCEncode, ran.TaskChannelEstimation,
		ran.TaskEqualization, ran.TaskModulation, ran.TaskPrecoding,
	} {
		if len(data[kind]) < 100 {
			t.Errorf("kind %v has only %d samples", kind, len(data[kind]))
		}
	}
}

func TestTrainPredictorsProducesTrees(t *testing.T) {
	model := costmodel.New(2)
	data := Profile(ran.Cells100MHz(1), 600, model, 4, 3)
	set, err := TrainPredictors(data, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) < 6 {
		t.Fatalf("trained only %d predictors", len(set))
	}
	// Predictions must be positive and parameterized for the decode tree.
	var small, large ran.FeatureVector
	small.Set(ran.FCodeblocks, 1)
	small.Set(ran.FSNRdB, 28)
	large.Set(ran.FCodeblocks, 14)
	large.Set(ran.FSNRdB, 2)
	ps := set.Predict(ran.TaskLDPCDecode, small)
	pl := set.Predict(ran.TaskLDPCDecode, large)
	if ps <= 0 || pl <= 0 || ps >= pl {
		t.Fatalf("decode predictions not parameterized: %v vs %v", ps, pl)
	}
}

func TestTrainPredictorsEmpty(t *testing.T) {
	if _, err := TrainPredictors(nil, 1.0); err == nil {
		t.Fatal("empty training data accepted")
	}
}

func TestUnknownScheduler(t *testing.T) {
	cfg := Scenario20MHz(1, 2)
	cfg.Scheduler = "bogus"
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
}

func TestEndToEndConcordia(t *testing.T) {
	cfg := Scenario20MHz(2, 6)
	cfg.Workload = workloads.Redis
	cfg.Load = 0.25
	cfg.Seed = 3
	cfg.TrainingSlots = 800
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(4 * sim.Second)
	if rep.DAGsCompleted == 0 {
		t.Fatal("nothing completed")
	}
	if rel := rep.Reliability(); rel < 0.999 {
		t.Fatalf("trained-predictor reliability %.5f too low", rel)
	}
	if rep.ReclaimedFraction() < 0.3 {
		t.Fatalf("reclaimed only %.2f", rep.ReclaimedFraction())
	}
	if len(sys.Predictors) == 0 {
		t.Fatal("no predictors exposed")
	}
}

func TestEndToEndFlexRANUsesPartition(t *testing.T) {
	cfg := Scenario20MHz(2, 4)
	cfg.Scheduler = SchedFlexRAN
	cfg.Workload = workloads.Redis
	cfg.Load = 0.25
	cfg.Seed = 4
	cfg.TrainingSlots = 400
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(2 * sim.Second)
	if rep.DAGsCompleted == 0 {
		t.Fatal("nothing completed")
	}
}

func TestEndToEndAccel(t *testing.T) {
	cfg := Scenario100MHz(1, 3)
	cfg.UseAccel = true
	cfg.Seed = 5
	cfg.TrainingSlots = 400
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(2 * sim.Second)
	if rep.OffloadTimeUL == 0 && rep.OffloadTimeDL == 0 {
		t.Fatal("accelerated system recorded no offload time")
	}
}

func TestShenangoAndUtilizationSystems(t *testing.T) {
	for _, k := range []SchedulerKind{SchedShenango, SchedUtilization} {
		cfg := Scenario20MHz(1, 3)
		cfg.Scheduler = k
		cfg.Seed = 6
		cfg.TrainingSlots = 300
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if rep := sys.Run(sim.Second); rep.DAGsCompleted == 0 {
			t.Fatalf("%v completed nothing", k)
		}
	}
}

func TestMinimumCores(t *testing.T) {
	cfg := Scenario20MHz(2, 0)
	cfg.Load = 0.3
	cfg.Seed = 7
	cfg.TrainingSlots = 300
	n, err := MinimumCores(cfg, 8, 0.999, sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 8 {
		t.Fatalf("minimum cores %d out of range", n)
	}
}

func TestDeterministicSystem(t *testing.T) {
	mk := func() uint64 {
		cfg := Scenario20MHz(1, 3)
		cfg.Seed = 8
		cfg.TrainingSlots = 300
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(sim.Second).TasksExecuted
	}
	if mk() != mk() {
		t.Fatal("same seed produced different systems")
	}
}

func TestTraceReplaySystem(t *testing.T) {
	tr, err := traffic.GenerateTrace(traffic.LTEReference(2, 9), 4000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Scenario20MHz(2, 4)
	cfg.ULTrace = tr
	cfg.DLTrace = tr
	cfg.TraceScale = 5
	cfg.Seed = 10
	cfg.TrainingSlots = 400
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(2 * sim.Second)
	if rep.DAGsCompleted == 0 {
		t.Fatal("trace-driven run processed nothing")
	}
	// Same trace + seed is fully deterministic.
	sys2, _ := NewSystem(cfg)
	if rep2 := sys2.Run(2 * sim.Second); rep2.TasksExecuted != rep.TasksExecuted {
		t.Fatal("trace replay not deterministic")
	}
}

func TestMACExtensionSystem(t *testing.T) {
	cfg := Scenario20MHz(2, 4)
	cfg.IncludeMAC = true
	cfg.Load = 0.25
	cfg.Seed = 11
	cfg.TrainingSlots = 500
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(3 * sim.Second)
	// One MAC DAG per cell per slot on top of the traffic-driven PHY DAGs.
	if rep.DAGsCompleted < rep.Slots*2 {
		t.Fatalf("MAC DAGs missing: %d completed for %d slots", rep.DAGsCompleted, rep.Slots)
	}
	if res, ok := rep.TaskRuntimes[ran.TaskMACUplinkSched]; !ok || res.Seen() == 0 {
		t.Fatal("no MAC scheduling tasks executed")
	}
	if rel := rep.Reliability(); rel < 0.999 {
		t.Fatalf("reliability with MAC multiplexed %.5f", rel)
	}
}

func TestAblationToggles(t *testing.T) {
	base := Scenario20MHz(1, 3)
	base.Seed = 12
	base.TrainingSlots = 300
	base.Workload = workloads.Redis
	run := func(ab Ablation) uint64 {
		cfg := base
		cfg.Ablation = ab
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(2 * sim.Second).SchedulingEvents
	}
	full := run(Ablation{})
	noHyst := run(Ablation{NoHysteresis: true})
	if noHyst <= full {
		t.Fatalf("removing hysteresis did not raise events: %d vs %d", noHyst, full)
	}
}

func TestLTESystemEndToEnd(t *testing.T) {
	cfg := Config{
		Cells:       ran.CellsLTE(3),
		PoolCores:   5,
		Scheduler:   SchedConcordia,
		Workload:    workloads.Redis,
		Load:        0.25,
		Deadline:    sim.FromMs(2),
		PeakULBytes: 12000,
		PeakDLBytes: 18000,
		Seed:        13,
	}
	cfg.TrainingSlots = 600
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sys.Run(3 * sim.Second)
	if rep.DAGsCompleted == 0 {
		t.Fatal("LTE system processed nothing")
	}
	if res, ok := rep.TaskRuntimes[ran.TaskTurboDecode]; !ok || res.Seen() == 0 {
		t.Fatal("no turbo decode tasks executed")
	}
	if rel := rep.Reliability(); rel < 0.999 {
		t.Fatalf("LTE reliability %.5f", rel)
	}
}
