// Package core assembles the complete Concordia system: the offline
// profiling and training pipeline (Algorithm 1 per signal-processing task),
// the per-task quantile-tree predictor set, and the vRAN pool with the
// chosen scheduler, traffic, platform and collocated workloads. It is the
// integration layer the public concordia package and the experiment harness
// build on.
package core

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"concordia/internal/accel"
	"concordia/internal/costmodel"
	"concordia/internal/faults"
	"concordia/internal/parallel"
	"concordia/internal/platform"
	"concordia/internal/pool"
	"concordia/internal/predictor"
	"concordia/internal/ran"
	"concordia/internal/rng"
	"concordia/internal/scheduler"
	"concordia/internal/sim"
	"concordia/internal/slo"
	"concordia/internal/telemetry"
	"concordia/internal/traffic"
	"concordia/internal/workloads"
)

// SchedulerKind selects the core-allocation policy.
type SchedulerKind string

// Supported policies.
const (
	SchedConcordia   SchedulerKind = "concordia"
	SchedFlexRAN     SchedulerKind = "flexran"
	SchedShenango    SchedulerKind = "shenango"
	SchedUtilization SchedulerKind = "utilization"
)

// Config describes one Concordia deployment scenario.
type Config struct {
	Cells     []ran.CellConfig
	PoolCores int
	Scheduler SchedulerKind
	// ShenangoThreshold is the queueing-delay threshold for the Shenango
	// baseline (default 25 µs).
	ShenangoThreshold sim.Time
	// UtilizationThreshold for the utilization baseline (default 0.6).
	UtilizationThreshold float64
	Workload             workloads.Kind
	Load                 float64
	Deadline             sim.Time
	PeakULBytes          int
	PeakDLBytes          int
	Seed                 uint64
	// UseAccel offloads LDPC processing to the modeled FPGA (§7).
	UseAccel bool
	// AccelDevices > 1 replaces the single default FPGA with a fleet of
	// ACC100-like cards, each with two engines; AccelVFs partitions each card
	// into SR-IOV virtual functions and AccelQueueDepth bounds each VF's
	// per-queue-group admission (0 = unbounded). Ignored unless UseAccel.
	AccelDevices    int
	AccelVFs        int
	AccelQueueDepth int
	// OffloadBatch > 1 lets a submitting core coalesce up to that many
	// same-kind ready offloadable tasks into one DMA transfer, amortizing
	// the submit cost (the accelsweep experiment sweeps this knob).
	OffloadBatch int
	// IncludeMAC multiplexes the §7 MAC-layer scheduling extension on the
	// same pool (one MAC DAG per cell per slot, one-slot deadline).
	IncludeMAC bool
	// ULTrace/DLTrace replay captured traces instead of synthetic traffic
	// (looped; volumes scaled by TraceScale). Both must cover the cell
	// count.
	ULTrace, DLTrace *traffic.Trace
	// TraceScale multiplies replayed volumes (the paper scales its LTE
	// captures >10x for 5G benchmarks); 0 means 1.
	TraceScale float64
	// TrainingSlots is the number of offline profiling TTIs used to build
	// the quantile trees (0 selects the default).
	TrainingSlots int
	// Workers bounds the worker goroutines used for parallelizable setup
	// work (per-task-kind predictor training): 0 = runtime.NumCPU(), 1 =
	// fully serial. The trained system is bit-for-bit identical for every
	// setting — each task kind trains from its own sample set.
	Workers int
	// PredictorMargin scales tree predictions (1.0 = Algorithm 2 exactly).
	PredictorMargin float64
	// Predictor overrides the trained quantile trees when non-nil
	// (experiments inject linear/boosting/EVT baselines through this).
	Predictor pool.Predictors
	// Ablation disables individual Concordia mechanisms for the ablation
	// study; the zero value is the full system.
	Ablation Ablation
	// Telemetry, when non-nil, records the structured event trace and metrics
	// time series for the run (internal/telemetry); export with the System's
	// WriteChromeTrace / WriteMetricsCSV. Nil (the default) disables telemetry
	// at near-zero cost.
	Telemetry *telemetry.Recorder
	// SLO, when non-nil, attaches the streaming SLO plane (internal/slo):
	// windowed quantile sketches, per-slice burn-rate alerts and the health
	// report, exported with WriteSLOCSV / WriteSLOReport. A zero Deadline in
	// the options inherits the system deadline; events flow into Telemetry's
	// tracer when that is also enabled.
	SLO *slo.Options
	// Faults, when non-nil with positive rates, enables the deterministic
	// chaos injector (internal/faults): lane failures, stuck offloads, WCET
	// overruns, interference bursts, core-yield storms, and late/dropped
	// fronthaul. Nil or all-zero leaves every output byte-identical.
	Faults *faults.Config
	// DropLateDAGs abandons a DAG's remaining work once its deadline passes
	// (counted as a dropped miss). Chaos runs enable it so one faulted slot
	// cannot cascade into its successors.
	DropLateDAGs bool
}

// Ablation switches off individual Concordia mechanisms so their
// contribution can be measured (the design choices DESIGN.md calls out).
type Ablation struct {
	// NoWakeupCompensation disables stuck-core replacement at the 20 µs tick.
	NoWakeupCompensation bool
	// NoOnlineAdaptation freezes the predictors after offline training
	// (Algorithm 2's training step skipped).
	NoOnlineAdaptation bool
	// NoHysteresis releases idle cores immediately instead of bridging
	// inter-TTI gaps.
	NoHysteresis bool
}

// frozenPredictors wraps a predictor set and drops online observations.
type frozenPredictors struct{ inner pool.Predictors }

func (f frozenPredictors) Predict(kind ran.TaskKind, fv ran.FeatureVector) sim.Time {
	return f.inner.Predict(kind, fv)
}

func (f frozenPredictors) Observe(ran.TaskKind, ran.FeatureVector, sim.Time) {}

// DefaultTrainingSlots is the offline profiling length when unspecified:
// enough TTIs that every task kind collects thousands of samples (the paper
// gathers 500 K samples offline).
const DefaultTrainingSlots = 4000

// Scenario presets matching the paper's Table 1/2.
//
// Scenario100MHz returns the 2-cell 100 MHz TDD deployment (1.5 ms
// deadline, 12-core-class pool).
func Scenario100MHz(cells, cores int) Config {
	return Config{
		Cells:       ran.Cells100MHz(cells),
		PoolCores:   cores,
		Scheduler:   SchedConcordia,
		Workload:    workloads.None,
		Load:        0.5,
		Deadline:    sim.FromMs(1.5),
		PeakULBytes: 10000, // 160 Mb/s over 0.5 ms slots
		PeakDLBytes: 94000, // 1.5 Gb/s over 0.5 ms slots
	}
}

// Scenario20MHz returns the 7-cell 20 MHz FDD deployment (2 ms deadline,
// 8-core-class pool).
func Scenario20MHz(cells, cores int) Config {
	return Config{
		Cells:       ran.Cells20MHz(cells),
		PoolCores:   cores,
		Scheduler:   SchedConcordia,
		Workload:    workloads.None,
		Load:        0.5,
		Deadline:    sim.FromMs(2),
		PeakULBytes: 20000, // 160 Mb/s over 1 ms slots
		PeakDLBytes: 47500, // 380 Mb/s over 1 ms slots
	}
}

func (c *Config) fillDefaults() {
	if c.Scheduler == "" {
		c.Scheduler = SchedConcordia
	}
	if c.ShenangoThreshold == 0 {
		c.ShenangoThreshold = 25 * sim.Microsecond
	}
	if c.UtilizationThreshold == 0 {
		c.UtilizationThreshold = 0.6
	}
	if c.TrainingSlots == 0 {
		c.TrainingSlots = DefaultTrainingSlots
	}
	if c.PredictorMargin == 0 {
		c.PredictorMargin = 1.0
	}
}

func (c *Config) buildScheduler() (scheduler.Scheduler, error) {
	switch c.Scheduler {
	case SchedConcordia:
		s := scheduler.NewConcordia()
		s.DisableWakeupCompensation = c.Ablation.NoWakeupCompensation
		return s, nil
	case SchedFlexRAN:
		return scheduler.FlexRAN{}, nil
	case SchedShenango:
		return scheduler.NewShenango(c.ShenangoThreshold), nil
	case SchedUtilization:
		return scheduler.NewUtilization(c.UtilizationThreshold), nil
	default:
		return nil, fmt.Errorf("core: unknown scheduler %q", c.Scheduler)
	}
}

// System is a fully assembled deployment ready to run.
type System struct {
	cfg        Config
	pool       *pool.Pool
	slo        *slo.Tracker
	Predictors pool.PredictorSet

	workload *workloads.Schedule
	// ranFor is the duration of the last Run, bounding the workload-span
	// timeline in trace exports.
	ranFor sim.Time
}

// Profile generates the offline training dataset (§4.2): TTIs with
// transmission parameters swept across the input space, executed in
// isolation, with per-task (features, runtime) samples. Both link
// directions are profiled.
func Profile(cells []ran.CellConfig, slots int, model *costmodel.Model, poolCores int, seed uint64) map[ran.TaskKind][]predictor.Sample {
	r := rng.New(seed)
	env := costmodel.Env{PoolCores: poolCores}
	out := map[ran.TaskKind][]predictor.Sample{}
	record := func(d *ran.DAG) {
		if d == nil {
			return
		}
		for _, t := range d.Tasks {
			out[t.Kind] = append(out[t.Kind], predictor.Sample{
				Features: t.Features,
				Runtime:  model.Sample(t.Kind, t.Features, env),
			})
		}
	}
	for s := 0; s < slots; s++ {
		cell := cells[s%len(cells)]
		// Sweep the input space: uniform random volumes up to a generous
		// per-slot ceiling, including empty slots.
		ulPeak := 1 + r.Intn(64*1024)
		dlPeak := 1 + r.Intn(128*1024)
		record(ran.BuildUplinkDAG(cell, s, 0, sim.FromMs(2), ran.AllocateSlot(cell, ulPeak, r)))
		record(ran.BuildDownlinkDAG(cell, s, 0, sim.FromMs(2), ran.AllocateSlot(cell, dlPeak, r)))
		record(ran.BuildMACDAG(cell, s, 0, cell.Numerology.SlotDuration(), 1+r.Intn(cell.MaxUEs)))
	}
	return out
}

// TrainPredictors runs Algorithm 1 for every profiled task kind: feature
// selection (distance correlation + backwards elimination + hand-picked)
// followed by quantile-tree training, with kinds trained on the default
// worker count. Equivalent to TrainPredictorsWorkers(data, margin, 0).
func TrainPredictors(data map[ran.TaskKind][]predictor.Sample, margin float64) (pool.PredictorSet, error) {
	return TrainPredictorsWorkers(data, margin, 0)
}

// TrainPredictorsWorkers trains the per-kind quantile trees on at most
// workers goroutines. Each kind's tree depends only on that kind's samples,
// so the resulting predictor set is identical for every worker count; kinds
// are processed in sorted order so error reporting is deterministic too.
func TrainPredictorsWorkers(data map[ran.TaskKind][]predictor.Sample, margin float64, workers int) (pool.PredictorSet, error) {
	if len(data) == 0 {
		return nil, errors.New("core: empty training data")
	}
	kinds := make([]ran.TaskKind, 0, len(data))
	for kind, samples := range data {
		if len(samples) < 200 {
			continue // too little data; the pool's fallback margin covers it
		}
		kinds = append(kinds, kind)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	trees, err := parallel.Map(workers, len(kinds), func(i int) (*predictor.QuantileTree, error) {
		kind := kinds[i]
		samples := data[kind]
		feats := predictor.SelectFeatures(kind, samples, 6, 3)
		tree, err := predictor.TrainQuantileTree(kind, feats, samples, predictor.TreeConfig{Margin: margin})
		if err != nil {
			return nil, fmt.Errorf("core: training %v: %w", kind, err)
		}
		return tree, nil
	})
	if err != nil {
		return nil, err
	}
	set := pool.PredictorSet{}
	for i, kind := range kinds {
		set[kind] = trees[i]
	}
	return set, nil
}

// NewSystem profiles, trains, and assembles a deployment.
func NewSystem(cfg Config) (*System, error) {
	cfg.fillDefaults()
	sched, err := cfg.buildScheduler()
	if err != nil {
		return nil, err
	}
	model := costmodel.New(cfg.Seed ^ 0xc0de)
	var preds pool.Predictors
	var set pool.PredictorSet
	if cfg.Predictor != nil {
		preds = cfg.Predictor
	} else {
		data := Profile(cfg.Cells, cfg.TrainingSlots, model, cfg.PoolCores, cfg.Seed^0x0ff1)
		set, err = TrainPredictorsWorkers(data, cfg.PredictorMargin, cfg.Workers)
		if err != nil {
			return nil, err
		}
		preds = set
	}
	var dev *accel.Accelerator
	if cfg.UseAccel {
		if cfg.AccelDevices > 1 || cfg.AccelVFs > 1 || cfg.AccelQueueDepth > 0 {
			// Same per-engine calibration as DefaultFPGA, spread over a fleet
			// of two-engine cards.
			devices := cfg.AccelDevices
			if devices < 1 {
				devices = 1
			}
			dev = accel.NewFleet(devices, cfg.AccelVFs, 2, cfg.AccelQueueDepth,
				sim.FromUs(18), sim.FromUs(2))
		} else {
			dev = accel.DefaultFPGA()
		}
	}
	var wl *workloads.Schedule
	if cfg.Workload != workloads.None {
		wl = workloads.NewSchedule(cfg.Workload, 12*sim.Second*3600, cfg.Seed^0x3141)
	}
	// Concordia's proactive reservation bridges inter-TTI gaps; baselines
	// release the instant their condition clears.
	var hysteresis sim.Time
	if cfg.Scheduler == SchedConcordia && !cfg.Ablation.NoHysteresis {
		hysteresis = 2 * cfg.Cells[0].Numerology.SlotDuration()
	}
	if cfg.Ablation.NoOnlineAdaptation {
		preds = frozenPredictors{inner: preds}
	}
	if cfg.Telemetry != nil {
		// Observe every policy decision (periodic ticks and completion-
		// boundary re-evaluations alike) through the transparent decorator.
		m := cfg.Telemetry.Metrics
		decisions := m.Counter("sched_decisions")
		escalations := m.Counter("sched_critical_escalations")
		coresHist := m.Histogram("sched_cores_decided", coreDecisionBuckets(cfg.PoolCores))
		sched = scheduler.Instrumented{Inner: sched, Observe: func(d scheduler.Decision) {
			decisions.Inc()
			coresHist.Observe(float64(d.Cores))
			if d.Critical {
				escalations.Inc()
			}
		}}
	}
	var ulSrc, dlSrc traffic.Source
	if cfg.ULTrace != nil {
		ulSrc, err = traffic.NewReplayer(cfg.ULTrace, cfg.TraceScale)
		if err != nil {
			return nil, err
		}
	}
	if cfg.DLTrace != nil {
		dlSrc, err = traffic.NewReplayer(cfg.DLTrace, cfg.TraceScale)
		if err != nil {
			return nil, err
		}
	}
	var sloTracker *slo.Tracker
	if cfg.SLO != nil {
		opts := *cfg.SLO
		if opts.Deadline <= 0 {
			opts.Deadline = cfg.Deadline
		}
		var trc *telemetry.Tracer
		if cfg.Telemetry != nil {
			trc = cfg.Telemetry.Trace
		}
		sloTracker = slo.New(opts, trc)
	}
	p, err := pool.New(pool.Config{
		Cells:             cfg.Cells,
		PoolCores:         cfg.PoolCores,
		Scheduler:         sched,
		Predict:           preds,
		CostModel:         model,
		Platform:          platform.New(cfg.Seed ^ 0x9e37),
		Workload:          wl,
		Deadline:          cfg.Deadline,
		Load:              cfg.Load,
		PeakULBytes:       cfg.PeakULBytes,
		PeakDLBytes:       cfg.PeakDLBytes,
		Seed:              cfg.Seed,
		ULSource:          ulSrc,
		DLSource:          dlSrc,
		RotatePeriod:      sim.FromMs(2),
		ReleaseHysteresis: hysteresis,
		Accel:             dev,
		OffloadBatch:      cfg.OffloadBatch,
		IncludeMAC:        cfg.IncludeMAC,
		StaticPartition:   cfg.Scheduler == SchedFlexRAN,
		Telemetry:         cfg.Telemetry,
		SLO:               sloTracker,
		Faults:            cfg.Faults,
		DropLateDAGs:      cfg.DropLateDAGs,
	})
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, pool: p, slo: sloTracker, Predictors: set, workload: wl}, nil
}

// coreDecisionBuckets builds histogram bounds 0..poolCores, one bucket per
// possible core target.
func coreDecisionBuckets(poolCores int) []float64 {
	b := make([]float64, poolCores+1)
	for i := range b {
		b[i] = float64(i)
	}
	return b
}

// Run executes the deployment for the given duration.
func (s *System) Run(duration sim.Time) *pool.Report {
	s.ranFor = duration
	return s.pool.Run(duration)
}

// Telemetry returns the recorder the system was configured with (nil when
// telemetry is disabled).
func (s *System) Telemetry() *telemetry.Recorder { return s.cfg.Telemetry }

// WriteChromeTrace exports the last run's event trace as Chrome trace-event
// JSON (Perfetto-loadable): one process for the pool with a thread per core,
// one for the accelerator, one for the collocated-workload timeline.
func (s *System) WriteChromeTrace(w io.Writer) error {
	rec := s.cfg.Telemetry
	if rec == nil {
		return errors.New("core: telemetry not enabled")
	}
	meta := telemetry.ChromeTraceMeta{
		Process: "vran-pool/" + string(s.cfg.Scheduler),
		Cores:   s.cfg.PoolCores,
	}
	for _, span := range s.workload.Spans(s.ranFor) {
		meta.Workloads = append(meta.Workloads, telemetry.WorkloadSpan{
			Name: span.Kind.String(), From: span.From, To: span.To,
		})
	}
	return telemetry.WriteChromeTrace(w, rec.Trace, meta)
}

// WriteMetricsCSV exports the last run's metrics time series as CSV.
func (s *System) WriteMetricsCSV(w io.Writer) error {
	rec := s.cfg.Telemetry
	if rec == nil {
		return errors.New("core: telemetry not enabled")
	}
	return rec.Metrics.WriteMetricsCSV(w)
}

// SLO returns the streaming SLO tracker (nil when disabled).
func (s *System) SLO() *slo.Tracker { return s.slo }

// WriteSLOCSV exports the last run's SLO window rows as CSV.
func (s *System) WriteSLOCSV(w io.Writer) error {
	if s.slo == nil {
		return errors.New("core: SLO tracking not enabled")
	}
	return s.slo.WriteCSV(w)
}

// WriteSLOReport writes the markdown SLO health report for the last run.
func (s *System) WriteSLOReport(w io.Writer) error {
	if s.slo == nil {
		return errors.New("core: SLO tracking not enabled")
	}
	return s.slo.WriteHealthReport(w)
}

// MinimumCores searches for the smallest pool size that meets the deadline
// with the required reliability at the configured load, following the
// paper's methodology ("we use the minimum number of cores required to meet
// the vRAN processing deadline"). Each candidate runs for probe duration;
// feasibility is monotone in cores, so a binary search suffices.
func MinimumCores(cfg Config, maxCores int, reliability float64, probe sim.Time) (int, error) {
	cfg.fillDefaults()
	feasible := func(cores int) (bool, error) {
		c := cfg
		c.PoolCores = cores
		sys, err := NewSystem(c)
		if err != nil {
			return false, err
		}
		return sys.Run(probe).Reliability() >= reliability, nil
	}
	ok, err := feasible(maxCores)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("core: no core count up to %d meets %.5f reliability", maxCores, reliability)
	}
	lo, hi := 1, maxCores // invariant: hi is feasible
	for lo < hi {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, nil
}
