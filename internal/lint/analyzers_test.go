package lint_test

import (
	"strings"
	"testing"

	"concordia/internal/lint"
	"concordia/internal/lint/analysistest"
)

// Each analyzer runs over its fixture package (positive and negative cases,
// plus one //lint:allow-suppressed violation) and, where the rule carries a
// package allowlist, over a fixture claiming the allowlisted import path.

func TestWalltime(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.Walltime,
		"walltime", "concordia/internal/sim")
	requireSuppressed(t, res.Suppressed, "walltime")
}

func TestRNGDiscipline(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.RNGDiscipline,
		"rngdiscipline", "concordia/internal/rng")
	requireSuppressed(t, res.Suppressed, "rngdiscipline")
}

func TestGoroutineScope(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.GoroutineScope,
		"goroutinescope", "concordia/internal/sim")
	requireSuppressed(t, res.Suppressed, "goroutinescope")
}

func TestMapOrder(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.MapOrder, "maporder")
	requireSuppressed(t, res.Suppressed, "maporder")
}

func TestFloatSum(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.FloatSum, "floatsum")
	requireSuppressed(t, res.Suppressed, "floatsum")
}

func TestPoolEscape(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.PoolEscape, "poolescape")
	requireSuppressed(t, res.Suppressed, "poolescape")
}

func TestScratchAlias(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.ScratchAlias, "scratchalias")
	requireSuppressed(t, res.Suppressed, "scratchalias")
}

func TestHandleLiveness(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.HandleLiveness,
		"handleliveness", "concordia/internal/sim")
	requireSuppressed(t, res.Suppressed, "handleliveness")
}

// TestAnalyzerRoster pins the suite's composition and order: tooling (the
// -help-rules listing, allow-rule validation, CI log diffs) keys on the
// names, so an accidental drop or reorder should fail loudly.
func TestAnalyzerRoster(t *testing.T) {
	want := []string{
		"walltime", "rngdiscipline", "goroutinescope", "maporder", "floatsum",
		"poolescape", "scratchalias", "handleliveness",
	}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}

// requireSuppressed asserts the fixture's //lint:allow comment was honored,
// counted, and annotated with its reason.
func requireSuppressed(t *testing.T, suppressed []lint.Diag, rule string) {
	t.Helper()
	if len(suppressed) != 1 {
		t.Fatalf("want exactly 1 suppressed %s finding, got %d: %v", rule, len(suppressed), suppressed)
	}
	d := suppressed[0]
	if d.Rule != rule {
		t.Errorf("suppressed finding has rule %q, want %q", d.Rule, rule)
	}
	if !strings.Contains(d.Message, "suppression path") {
		t.Errorf("suppressed finding should carry the //lint:allow reason, got: %s", d.Message)
	}
}
