package lint_test

import (
	"strings"
	"testing"

	"concordia/internal/lint"
	"concordia/internal/lint/analysistest"
)

// Each analyzer runs over its fixture package (positive and negative cases,
// plus one //lint:allow-suppressed violation) and, where the rule carries a
// package allowlist, over a fixture claiming the allowlisted import path.

func TestWalltime(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.Walltime,
		"walltime", "concordia/internal/sim")
	requireSuppressed(t, res.Suppressed, "walltime")
}

func TestRNGDiscipline(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.RNGDiscipline,
		"rngdiscipline", "concordia/internal/rng")
	requireSuppressed(t, res.Suppressed, "rngdiscipline")
}

func TestGoroutineScope(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.GoroutineScope,
		"goroutinescope", "concordia/internal/sim")
	requireSuppressed(t, res.Suppressed, "goroutinescope")
}

func TestMapOrder(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.MapOrder, "maporder")
	requireSuppressed(t, res.Suppressed, "maporder")
}

func TestFloatSum(t *testing.T) {
	res := analysistest.Run(t, analysistest.TestData(), lint.FloatSum, "floatsum")
	requireSuppressed(t, res.Suppressed, "floatsum")
}

// requireSuppressed asserts the fixture's //lint:allow comment was honored,
// counted, and annotated with its reason.
func requireSuppressed(t *testing.T, suppressed []lint.Diag, rule string) {
	t.Helper()
	if len(suppressed) != 1 {
		t.Fatalf("want exactly 1 suppressed %s finding, got %d: %v", rule, len(suppressed), suppressed)
	}
	d := suppressed[0]
	if d.Rule != rule {
		t.Errorf("suppressed finding has rule %q, want %q", d.Rule, rule)
	}
	if !strings.Contains(d.Message, "suppression path") {
		t.Errorf("suppressed finding should carry the //lint:allow reason, got: %s", d.Message)
	}
}
