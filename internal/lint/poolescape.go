package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"concordia/internal/lint/analysis"
)

// PoolEscape enforces the freelist checkout contract from DESIGN.md §5f: a
// value obtained from a pool getter (getDAG, acquireRun) is on loan. Within
// the borrowing function it may be read, passed onward, or returned (both
// transfer ownership to the callee/caller) — but it must not be stored
// anywhere that outlives the call (struct fields, package variables,
// captured by a closure), and it must not be touched after the matching
// put*/recycle call hands it back. The pool's own admission path, which by
// design retains what it checks out, declares that with //lint:pool-owner
// in its doc comment.
var PoolEscape = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "forbid retaining or reusing freelist-checked-out values (getDAG/acquireRun) " +
		"beyond the borrowing function or past the matching put/recycle call; " +
		"owner methods opt out with //lint:pool-owner",
	Run: runPoolEscape,
}

func runPoolEscape(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || hasOwnerMarker(fn) {
				continue
			}
			checkPoolEscapeFunc(pass, fn)
		}
	}
	return nil, nil
}

// getterCall returns the getter's name when call is a pool-getter invocation.
func getterCall(call *ast.CallExpr) (string, bool) {
	name := calleeName(call)
	return name, poolGetters[name]
}

// checkPoolEscapeFunc runs the three per-function passes: collect origins
// (locals holding getter results), locate the put calls that end each loan,
// then flag escapes and uses-after-put.
func checkPoolEscapeFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	// Pass 1: origins — locals assigned directly from a getter call, paired
	// positionally (d := p.getDAG()). Multi-value getter returns do not occur
	// in this codebase; a getter rhs only pairs when Lhs and Rhs align 1:1.
	origins := map[types.Object]bool{}
	originName := map[types.Object]string{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			name, isGetter := getterCall(call)
			if !isGetter {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := objOf(pass, id); obj != nil && declaredWithin(obj, fn) {
				origins[obj] = true
				originName[obj] = name
			}
		}
		return true
	})
	// Even with no origin locals, pass 3 still checks direct stores of a
	// getter call's result (global = p.getDAG()).

	// Pass 2: for each origin, the position where its loan ends — the first
	// putter call whose argument is (or aliases) the origin — and the kill
	// point where the variable is rebound afterwards (a fresh loan).
	putEnd := map[types.Object]token.Pos{}
	putName := map[types.Object]string{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !poolPutters[calleeName(call)] {
			return true
		}
		obj := aliasedOrigin(pass, call.Args[0], origins)
		if obj == nil {
			return true
		}
		if end, seen := putEnd[obj]; !seen || call.End() < end {
			putEnd[obj] = call.End()
			putName[obj] = calleeName(call)
		}
		return true
	})
	kill := map[types.Object]token.Pos{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := objOf(pass, id)
			end, hasPut := putEnd[obj]
			if !hasPut || as.Pos() <= end {
				continue
			}
			if k, seen := kill[obj]; !seen || as.Pos() < k {
				kill[obj] = as.Pos()
			}
		}
		return true
	})

	// Pass 3: report escapes (stores into long-lived memory, closure
	// captures) and uses after the loan ended.
	reportedCapture := map[*ast.FuncLit]map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, rhs := range x.Rhs {
				var obj types.Object
				var name string
				if call, ok := rhs.(*ast.CallExpr); ok {
					if gname, isGetter := getterCall(call); isGetter {
						obj, name = nil, gname
						if escapes, route := storeEscapes(pass, fn, x.Lhs[i], nil); escapes {
							pass.Reportf(x.Lhs[i].Pos(),
								"%s result stored in %s escapes the freelist loan; "+
									"keep checked-out values local or mark the owning method //lint:pool-owner",
								name, route)
						}
						continue
					}
				}
				obj = aliasedOrigin(pass, rhs, origins)
				if obj == nil {
					continue
				}
				if t := pass.TypesInfo.Types[rhs].Type; t == nil || !retainsMemory(t) {
					continue
				}
				name = originName[obj]
				if escapes, route := storeEscapes(pass, fn, x.Lhs[i], nil); escapes {
					pass.Reportf(x.Lhs[i].Pos(),
						"value checked out via %s stored in %s escapes the freelist loan; "+
							"keep checked-out values local or mark the owning method //lint:pool-owner",
						name, route)
				}
			}
		case *ast.FuncLit:
			seen := reportedCapture[x]
			if seen == nil {
				seen = map[types.Object]bool{}
				reportedCapture[x] = seen
			}
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if inner, ok := m.(*ast.FuncLit); ok && inner != x {
					return false // the nested literal reports its own captures
				}
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil || !origins[obj] || declaredWithin(obj, x) || seen[obj] {
					return true
				}
				seen[obj] = true
				pass.Reportf(id.Pos(),
					"closure captures %s, checked out via %s; the closure may outlive the "+
						"loan and alias a recycled object — pass it as a parameter or copy "+
						"the scalar fields you need",
					obj.Name(), originName[obj])
				return true
			})
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil || !origins[obj] {
				return true
			}
			end, hasPut := putEnd[obj]
			if !hasPut || x.Pos() <= end {
				return true
			}
			if k, killed := kill[obj]; killed && x.Pos() >= k {
				return true // rebound: a fresh loan, not the recycled one
			}
			pass.Reportf(x.Pos(),
				"%s used after %s returned it to the freelist; the object may already "+
					"be recycled into another slot — finish all uses before the put call",
				obj.Name(), putName[obj])
		}
		return true
	})
}
