// Package lint is the determinism and memory-discipline lint suite: eight
// custom analyzers, written against the go/analysis-compatible shim in
// internal/lint/analysis, that mechanically enforce the reproducibility
// invariants the experiments depend on (DESIGN.md §5b) and the zero-alloc
// ownership rules the hot path depends on (DESIGN.md §5g). The suite is
// compiled into the cmd/concordialint vettool and gated in `make lint`.
//
// The invariants, one analyzer each:
//
//   - walltime: no wall-clock time outside the virtual clock (internal/sim)
//     and explicitly annotated host-time experiments.
//   - rngdiscipline: no math/rand; all randomness flows through seeded
//     internal/rng substreams.
//   - goroutinescope: no raw goroutines or sync.WaitGroup outside the
//     deterministic worker pool (internal/parallel) and the simulator.
//   - maporder: no iteration-order-dependent work inside `range` over a map.
//   - floatsum: no shared floating-point accumulation inside parallel
//     callbacks; shard results reduce in index order (parallel.SumOrdered).
//   - poolescape: freelist checkouts (getDAG/acquireRun) stay local to the
//     borrowing function and are not touched after the matching put/recycle;
//     owner methods opt out with //lint:pool-owner.
//   - scratchalias: *Into/*Append builder results are not retained past the
//     next call on the same scratch buffer (receiver store-backs exempt).
//   - handleliveness: sim.EventHandle fields scheduled into are also cleared,
//     and handles of recycled pool objects are not Canceled afterwards.
//
// A finding is silenced — never disabled — with a justified suppression
// comment on or directly above the offending line:
//
//	//lint:allow <rule> <reason>
//
// The driver counts suppressions and reports them, and hard-fails on
// suppressions with no reason, suppressions naming an unknown rule, and
// stale suppressions that no longer match a finding.
package lint

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"concordia/internal/lint/analysis"
)

// Analyzers returns the full suite in stable order: the determinism
// analyzers (DESIGN.md §5b) followed by the memory-ownership analyzers
// (DESIGN.md §5g).
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Walltime,
		RNGDiscipline,
		GoroutineScope,
		MapOrder,
		FloatSum,
		PoolEscape,
		ScratchAlias,
		HandleLiveness,
	}
}

// Diag is one unsuppressed finding, resolved to a printable position.
type Diag struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Message)
}

// Result aggregates a run over one or more units.
type Result struct {
	Diags       []Diag   // findings not covered by a //lint:allow
	Suppressed  []Diag   // findings covered by a //lint:allow (message carries the reason)
	Problems    []Diag   // malformed or stale suppression comments
	UnitsRun    int      // packages analyzed
	AnalyzerIDs []string // names of the analyzers that ran
}

// Clean reports whether the run found nothing actionable.
func (r *Result) Clean() bool { return len(r.Diags) == 0 && len(r.Problems) == 0 }

// runUnit applies analyzers to one type-checked unit, resolving suppression
// comments. checkUnused controls whether stale //lint:allow comments are
// reported; the analysistest harness disables it because fixture packages are
// analyzed one rule at a time, so allows for the other rules would look
// stale.
func runUnit(u *Unit, analyzers []*analysis.Analyzer, checkUnused bool) *Result {
	res := &Result{UnitsRun: 1}
	allows, parseProblems := parseAllows(u.Fset, u.Files)
	for _, p := range parseProblems {
		res.Problems = append(res.Problems, Diag{Pos: u.Fset.Position(p.Pos), Rule: "lint", Message: p.Message})
	}
	for _, a := range analyzers {
		res.AnalyzerIDs = append(res.AnalyzerIDs, a.Name)
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := u.Fset.Position(d.Pos)
			if al := match(allows, a.Name, pos.Filename, pos.Line); al != nil {
				res.Suppressed = append(res.Suppressed, Diag{
					Pos:     pos,
					Rule:    a.Name,
					Message: fmt.Sprintf("%s (suppressed: %s)", d.Message, al.Reason),
				})
				return
			}
			res.Diags = append(res.Diags, Diag{Pos: pos, Rule: a.Name, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			res.Problems = append(res.Problems, Diag{
				Pos:     token.Position{Filename: u.Path},
				Rule:    a.Name,
				Message: fmt.Sprintf("analyzer failed: %v", err),
			})
		}
	}
	if checkUnused {
		known := map[string]bool{}
		for _, a := range analyzers {
			known[a.Name] = true
		}
		for _, al := range allows {
			if !known[al.Rule] {
				res.Problems = append(res.Problems, Diag{
					Pos:  u.Fset.Position(al.Pos),
					Rule: "lint",
					Message: fmt.Sprintf("unknown rule %q in //lint:allow: known rules are %s",
						al.Rule, strings.Join(analyzerNames(analyzers), ", ")),
				})
				continue
			}
			if !al.Used {
				res.Problems = append(res.Problems, Diag{
					Pos:  u.Fset.Position(al.Pos),
					Rule: "lint",
					Message: fmt.Sprintf("stale //lint:allow %s: no %s finding on this or the next line; delete it",
						al.Rule, al.Rule),
				})
			}
		}
	}
	return res
}

// RunUnitForTest applies a single analyzer to one unit with suppression
// filtering but without stale-suppression checking — the entry point used by
// the analysistest harness, where fixtures are analyzed one rule at a time.
func RunUnitForTest(u *Unit, a *analysis.Analyzer) *Result {
	return runUnit(u, []*analysis.Analyzer{a}, false)
}

func (r *Result) merge(o *Result) {
	r.Diags = append(r.Diags, o.Diags...)
	r.Suppressed = append(r.Suppressed, o.Suppressed...)
	r.Problems = append(r.Problems, o.Problems...)
	r.UnitsRun += o.UnitsRun
}

// RunModule runs the full suite over every package of the module rooted at
// root. dirs restricts the run to those import-path-relative directories
// (e.g. "internal/scheduler"); nil means every package.
func RunModule(root string, dirs []string) (*Result, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	if dirs == nil {
		dirs, err = ModuleDirs(root)
		if err != nil {
			return nil, err
		}
	}
	loader := NewLoader(Root{Module: modPath, Dir: root})
	analyzers := Analyzers()
	total := &Result{AnalyzerIDs: analyzerNames(analyzers)}
	for _, rel := range dirs {
		path := modPath
		if rel != "." {
			path = modPath + "/" + rel
		}
		units, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			r := runUnit(u, analyzers, true)
			total.merge(r)
		}
	}
	sortDiags(total.Diags)
	sortDiags(total.Suppressed)
	sortDiags(total.Problems)
	return total, nil
}

func analyzerNames(as []*analysis.Analyzer) []string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

func sortDiags(ds []Diag) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// Report writes the result in vet style: findings and suppression-comment
// problems to w, then a suppression summary. Paths are shown relative to
// root when possible.
func (r *Result) Report(w io.Writer, root string) {
	rel := func(p token.Position) string {
		if root != "" {
			if rp, err := filepath.Rel(root, p.Filename); err == nil && !strings.HasPrefix(rp, "..") {
				p.Filename = rp
			}
		}
		return p.String()
	}
	for _, d := range r.Diags {
		fmt.Fprintf(w, "%s: %s: %s\n", rel(d.Pos), d.Rule, d.Message)
	}
	for _, d := range r.Problems {
		fmt.Fprintf(w, "%s: %s: %s\n", rel(d.Pos), d.Rule, d.Message)
	}
	if n := len(r.Suppressed); n > 0 {
		fmt.Fprintf(w, "concordialint: %d finding(s) suppressed by //lint:allow:\n", n)
		for _, d := range r.Suppressed {
			fmt.Fprintf(w, "  %s: %s: %s\n", rel(d.Pos), d.Rule, d.Message)
		}
	}
}
