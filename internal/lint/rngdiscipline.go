package lint

import (
	"go/ast"
	"strconv"

	"concordia/internal/lint/analysis"
)

// rngAllowedPkgs may reference math/rand: only the repository's own RNG
// package, should it ever need to wrap or benchmark against the standard
// generator. (Today it does not even import it.)
var rngAllowedPkgs = []string{"concordia/internal/rng"}

var bannedRandPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// RNGDiscipline forbids math/rand everywhere, tests included. The global
// generator is seeded from runtime entropy and shared across goroutines, and
// even a locally constructed rand.New(rand.NewSource(seed)) draws in
// goroutine-scheduling order when shared. All randomness must flow through
// concordia/internal/rng: seeded xoshiro256** streams with per-shard
// substreams (rng.Substream) whose draws are a pure function of (seed,
// stream index).
var RNGDiscipline = &analysis.Analyzer{
	Name: "rngdiscipline",
	Doc: "forbid math/rand (global functions, rand.New, even the import) outside " +
		"internal/rng; all randomness flows through seeded rng.Substream generators",
	Run: runRNGDiscipline,
}

func runRNGDiscipline(pass *analysis.Pass) (any, error) {
	if pkgAllowed(pass, rngAllowedPkgs...) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !bannedRandPkgs[path] {
				continue
			}
			pass.Reportf(imp.Pos(),
				"import of %s: its generators are unseeded or shared and make runs "+
					"irreproducible; use concordia/internal/rng (rng.New / rng.Substream) instead",
				path)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, member, ok := importedPkg(pass, sel)
			if !ok || !bannedRandPkgs[pkg] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s: randomness outside internal/rng is unseeded or "+
					"iteration-order-dependent; draw from a seeded rng.Substream instead",
				pkg, member)
			return true
		})
	}
	return nil, nil
}
