package lint

import (
	"go/ast"

	"concordia/internal/lint/analysis"
)

// wallClockFuncs are the package time members whose value depends on (or
// blocks on) the host clock. Pure conversions and constants (time.Duration,
// time.Microsecond, time.ParseDuration) are not listed: they are
// deterministic.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// walltimeAllowedPkgs may touch the host clock freely: the discrete-event
// simulator owns virtual time and is the sanctioned replacement everyone
// else is pointed at.
var walltimeAllowedPkgs = []string{"concordia/internal/sim"}

// Walltime forbids reading the host clock. Concordia's scheduling decisions
// must be a pure function of task state and predicted WCETs; a single
// time.Now() in a decision path silently couples results to machine load.
// Virtual time (sim.Engine.Now, sim.Time) is the replacement. _test.go files
// are exempt (benchmarks legitimately measure host time), as are the
// explicitly annotated host-overhead experiments (//lint:allow walltime).
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time (time.Now/Since/Sleep/timers) outside internal/sim " +
		"and annotated host-time experiments; use the virtual clock instead",
	Run: runWalltime,
}

func runWalltime(pass *analysis.Pass) (any, error) {
	if pkgAllowed(pass, walltimeAllowedPkgs...) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, member, ok := importedPkg(pass, sel)
			if !ok || pkg != "time" || !wallClockFuncs[member] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock and breaks bit-for-bit reproducibility; "+
					"use virtual time (sim.Engine.Now / sim.Time) or, for a sanctioned "+
					"host-time measurement, annotate with //lint:allow walltime <reason>",
				member)
			return true
		})
	}
	return nil, nil
}
