package walltime

import (
	"testing"
	"time"
)

// _test.go files are exempt from walltime: benchmarks legitimately measure
// host time. No want comments here — a diagnostic in this file fails the
// fixture.
func BenchmarkHostClock(b *testing.B) {
	start := time.Now()
	for i := 0; i < b.N; i++ {
		_ = time.Since(start)
	}
}
