// Package walltime is a fixture for the walltime analyzer.
package walltime

import "time"

// Violations: every wall-clock read or block is flagged.
func violations() time.Duration {
	start := time.Now()             // want "wall clock"
	time.Sleep(time.Millisecond)    // want "wall clock"
	_ = time.Since(start)           // want "wall clock"
	_ = time.Until(start)           // want "wall clock"
	t := time.NewTimer(time.Second) // want "wall clock"
	<-time.After(time.Millisecond)  // want "wall clock"
	_ = t
	return time.Since(start) // want "wall clock"
}

// Negatives: pure conversions and constants are deterministic, and methods
// named Now on our own types are not the time package.
type clock struct{ now int64 }

func (c *clock) Now() int64 { return c.now }

func negatives(c *clock) time.Duration {
	d := 3 * time.Millisecond
	_ = time.Duration(42)
	_ = c.Now()
	return d
}

// Suppressed: an annotated host-time measurement passes, and the reason is
// carried into the suppression report.
func suppressed() time.Time {
	return time.Now() //lint:allow walltime fixture exercises the suppression path
}
