// Package poolescape is a fixture for the poolescape analyzer: buf plays the
// pooled object, pool carries the conventional getter/putter method names
// the analyzer keys on (getDAG, putDAG, acquireRun).
package poolescape

type buf struct {
	data []byte
	id   int
}

type pool struct {
	free   []*buf
	cached *buf
	held   []*buf
	count  int
}

func (p *pool) getDAG() *buf {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	return &buf{}
}

func (p *pool) acquireRun(b *buf) *buf { return b }

func (p *pool) putDAG(b *buf) { p.free = append(p.free, b) }

var global *buf

func sink(b *buf) {}

// Violations: a checked-out value escaping the borrowing function.

func storeInPackageVar(p *pool) {
	global = p.getDAG() // want "stored in package-level variable global"
}

func storeInField(p *pool) {
	d := p.getDAG()
	p.cached = d // want "stored in memory reachable through p"
	p.putDAG(d)
}

func appendToField(p *pool) {
	d := p.getDAG()
	p.held = append(p.held, d) // want "stored in memory reachable through p"
}

func capture(p *pool) func() {
	d := p.getDAG()
	return func() {
		sink(d) // want "closure captures d"
	}
}

func useAfterPut(p *pool) int {
	d := p.getDAG()
	p.putDAG(d)
	return d.id // want "used after putDAG returned it to the freelist"
}

// Negatives: local use within the loan, ownership transfer, scalar copies,
// and rebinding to a fresh loan.

func localUse(p *pool) int {
	d := p.getDAG()
	n := len(d.data)
	p.putDAG(d)
	return n
}

func transferByReturn(p *pool) *buf {
	return p.getDAG()
}

func transferByArg(p *pool) {
	sink(p.getDAG())
}

func scalarCopy(p *pool) {
	d := p.getDAG()
	p.count = d.id
	p.putDAG(d)
}

func localSliceSlot(p *pool) int {
	locals := make([]*buf, 1)
	d := p.getDAG()
	locals[0] = d
	n := locals[0].id
	p.putDAG(d)
	return n
}

func rebind(p *pool) int {
	d := p.getDAG()
	p.putDAG(d)
	d = p.getDAG() // a fresh loan, not the recycled one
	n := d.id
	p.putDAG(d)
	return n
}

// admit retains what it checks out: the declared-owner escape hatch.
//
// lint:pool-owner — fixture owner method retaining its own checkouts.
func (p *pool) admit() {
	d := p.getDAG()
	p.held = append(p.held, d)
}

// Suppressed: an annotated escape passes, and the reason is carried into the
// suppression report.
func suppressedEscape(p *pool) {
	d := p.getDAG()
	global = d //lint:allow poolescape fixture exercises the suppression path
}
