package goroutinescope

import (
	"sync"
	"testing"
)

// _test.go files are exempt from goroutinescope: tests may exercise
// concurrency directly (the race gate covers them). No want comments here.
func TestRawGoroutineAllowed(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	go wg.Done()
	wg.Wait()
}
