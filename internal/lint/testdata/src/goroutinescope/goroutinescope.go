// Package goroutinescope is a fixture for the goroutinescope analyzer.
package goroutinescope

import (
	"sync"

	"concordia/internal/parallel"
)

// Violations: raw goroutines and hand-rolled fan-out.
func violations(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup // want "WaitGroup"
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want "raw go statement"
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
	return out
}

// Negatives: the worker pool is the sanctioned fan-out, and the keyword-free
// spelling of concurrency (a plain call) is obviously fine.
func negatives(n int) ([]int, error) {
	return parallel.Map(0, n, func(i int) (int, error) {
		return i * i, nil
	})
}

// Suppressed: a justified raw goroutine (e.g. a fire-and-forget logger).
func suppressed(ch chan struct{}) {
	go close(ch) //lint:allow goroutinescope fixture exercises the suppression path
}
