// Package maporder is a fixture for the maporder analyzer.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// Violations: order-sensitive work inside range-over-map.
func violations(m map[string][]float64, w *strings.Builder) ([]string, float64) {
	var names []string
	var sum float64
	var worst float64
	for name, xs := range m {
		names = append(names, name+"!") // want "append"
		for _, x := range xs {
			sum += x // want "accumulation"
		}
		if len(xs) > 0 && xs[0] > worst {
			worst = xs[0] // want "last-writer-wins"
		}
		fmt.Println(name)   // want "randomized order"
		w.WriteString(name) // want "randomized order"
	}
	return names, sum + worst
}

// Negatives: the sanctioned sorted-key pattern, keyed writes, and integer
// counting are all order-independent.
func negatives(m map[string][]float64) (float64, int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // the key-collection prelude is exempt
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		for _, x := range m[k] {
			sum += x // range over a sorted slice, not a map
		}
	}
	count := 0
	sizes := map[string]int{}
	for k, xs := range m {
		sizes[k] = len(xs) // keyed write: one slot per iteration
		count += len(xs)   // integer addition is associative
	}
	return sum, count
}

// Suppressed: a justified order-dependent loop (e.g. feeding a
// commutative-and-associative hash).
func suppressed(m map[int]int) float64 {
	var sum float64
	for _, v := range m {
		sum += float64(v) //lint:allow maporder fixture exercises the suppression path
	}
	return sum
}
