// Package handleliveness is a fixture for the handleliveness analyzer. It
// imports the fixture stand-in for concordia/internal/sim (the GOPATH-style
// testdata root claims that path), whose EventHandle/Engine surface matches
// the real engine's.
package handleliveness

import "concordia/internal/sim"

// worker exercises rule 1: every EventHandle field scheduled into must also
// be cleared somewhere in the package (the retire path), so recycled objects
// cannot carry live handles.
type worker struct {
	eng    *sim.Engine
	doneEv sim.EventHandle
	leakEv sim.EventHandle
}

func (w *worker) schedule(d sim.Time) {
	w.doneEv = w.eng.After(d, func() {})
	w.leakEv = w.eng.After(d, func() {}) // want "leakEv is scheduled into but never cleared"
}

// complete clears doneEv — in a different function than the schedule, which
// is the normal shape of a retire path.
func (w *worker) complete() {
	w.doneEv = sim.EventHandle{}
}

// run/pool2 exercise rule 2: no Cancel/Canceled/Scheduled on a handle of an
// object already released to a freelist.
type run struct {
	ev sim.EventHandle
}

type pool2 struct {
	free []*run
}

func (p *pool2) putDAG(r *run) { p.free = append(p.free, r) }

func cancelAfterPut(p *pool2, e *sim.Engine, r *run) {
	p.putDAG(r)
	e.Cancel(r.ev) // want "Cancel on a handle of r after putDAG recycled it"
}

func queryAfterPut(p *pool2, e *sim.Engine, r *run) bool {
	p.putDAG(r)
	return e.Canceled(r.ev) // want "Canceled on a handle of r after putDAG recycled it"
}

// Negatives: cancel before releasing, and rebinding to a fresh object.

func cancelBeforePut(p *pool2, e *sim.Engine, r *run) {
	e.Cancel(r.ev)
	p.putDAG(r)
}

func rebound(p *pool2, e *sim.Engine, r, fresh *run) {
	p.putDAG(r)
	r = fresh
	e.Cancel(r.ev)
}

// Suppressed: an annotated post-release cancel passes, and the reason is
// carried into the suppression report.
func suppressedCancel(p *pool2, e *sim.Engine, r *run) {
	p.putDAG(r)
	e.Cancel(r.ev) //lint:allow handleliveness fixture exercises the suppression path
}
