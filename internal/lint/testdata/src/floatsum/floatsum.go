// Package floatsum is a fixture for the floatsum analyzer. It imports the
// real worker pool so the callee identification runs against the genuine
// concordia/internal/parallel package.
package floatsum

import "concordia/internal/parallel"

// Violations: accumulation into captured variables inside pool callbacks
// folds shard results in completion order.
func violations(n int) (float64, error) {
	var sum float64
	var peak float64
	var hits int
	err := parallel.ForEach(0, n, func(i int) error {
		x := float64(i) * 0.5
		sum += x // want "completion order"
		if x > peak {
			peak = x // want "last-writer-wins"
		}
		hits++ // want "completion order"
		return nil
	})
	return sum + peak + float64(hits), err
}

// Negatives: the sanctioned shape — per-index slots, then an index-ordered
// reduction. Locals inside the callback accumulate freely.
func negatives(n int) (float64, error) {
	shards, err := parallel.Map(0, n, func(i int) (float64, error) {
		var local float64
		for j := 0; j < 8; j++ {
			local += float64(i*8 + j)
		}
		return local, nil
	})
	if err != nil {
		return 0, err
	}
	out := make([]float64, n)
	err = parallel.ForEach(0, n, func(i int) error {
		out[i] = float64(i) // slot write: one index, one owner
		return nil
	})
	if err != nil {
		return 0, err
	}
	return parallel.SumOrdered(shards) + parallel.SumOrdered(out), nil
}

// Suppressed: a justified captured write (e.g. a monotonic flag guarded
// elsewhere).
func suppressed(n int) (float64, error) {
	var last float64
	err := parallel.ForEach(1, n, func(i int) error {
		last = float64(i) //lint:allow floatsum fixture exercises the suppression path
		return nil
	})
	return last, err
}
