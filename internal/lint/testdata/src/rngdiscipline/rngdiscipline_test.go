package rngdiscipline

import (
	"math/rand/v2" // want "unseeded or shared"
	"testing"
)

// rngdiscipline applies to _test.go files too: a test drawing from an
// unseeded generator flakes, which is exactly what the suite exists to
// prevent.
func TestViolation(t *testing.T) {
	if rand.IntN(2) == 3 { // want "IntN"
		t.Fatal("unreachable")
	}
}
