// Package rngdiscipline is a fixture for the rngdiscipline analyzer.
package rngdiscipline

import (
	"math/rand" // want "unseeded or shared"
)

// Violations: global functions, constructors, and types of math/rand.
func violations() float64 {
	rand.Seed(1)                        // want "Seed"
	r := rand.New(rand.NewSource(42))   // want "New" "NewSource"
	_ = rand.Intn(10)                   // want "Intn"
	return r.Float64() + rand.Float64() // want "Float64"
}

// Negatives: a hand-rolled deterministic generator has no math/rand
// fingerprint.
type lcg struct{ s uint64 }

func (g *lcg) next() uint64 {
	g.s = g.s*6364136223846793005 + 1442695040888963407
	return g.s
}

func negatives() uint64 {
	g := &lcg{s: 1}
	return g.next()
}

// Suppressed: a justified escape hatch.
func suppressed() int {
	return rand.Int() //lint:allow rngdiscipline fixture exercises the suppression path
}
