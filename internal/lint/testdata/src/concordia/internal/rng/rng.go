// Package rng is a fixture claiming the allowlisted import path
// concordia/internal/rng: the RNG package itself is the one place allowed to
// reference math/rand (e.g. to wrap or benchmark against it), so the
// rngdiscipline analyzer must stay silent here despite the import and uses.
package rng

import "math/rand"

func StdlibBaseline(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
