// handles.go gives the fixture sim package the handle surface the
// handleliveness fixtures import: a generation-tagged EventHandle, an Engine
// with schedule/cancel methods, and a Ticker whose ev field is scheduled
// into but never cleared — the simulator-internal bookkeeping pattern that
// the handleliveness allowlist must exempt (the engine owns slot recycling,
// so its own handles cannot go stale).
package sim

// Time mirrors the virtual clock's tick type.
type Time int64

// EventHandle is a generation-tagged reference to a scheduled event.
type EventHandle struct {
	idx int32
	gen uint32
}

// Engine is the fixture stand-in for the event engine.
type Engine struct {
	now Time
}

// After schedules fn and returns a cancelable handle.
func (e *Engine) After(d Time, fn func()) EventHandle {
	return EventHandle{idx: 1, gen: 1}
}

// Cancel revokes h if its generation is still current.
func (e *Engine) Cancel(h EventHandle) bool { return h.gen != 0 }

// Canceled reports whether h was revoked.
func (e *Engine) Canceled(h EventHandle) bool { return h.gen == 0 }

// Ticker re-arms itself each period; ev is overwritten on every fire and
// never cleared, which only this package may do.
type Ticker struct {
	ev EventHandle
}

// Start arms t. The never-cleared ev store below is exactly what
// handleliveness forbids outside this allowlisted package.
func (e *Engine) Start(t *Ticker, period Time) {
	t.ev = e.After(period, func() {})
}
