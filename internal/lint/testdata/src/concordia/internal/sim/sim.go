// Package sim is a fixture claiming the allowlisted import path
// concordia/internal/sim: the virtual-clock package is sanctioned to touch
// the host clock and to own its own concurrency machinery, so neither the
// walltime nor the goroutinescope analyzer may report anything here.
package sim

import (
	"sync"
	"time"
)

func Drain(ch chan int) time.Time {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ch
	}()
	wg.Wait()
	time.Sleep(time.Microsecond)
	return time.Now()
}
