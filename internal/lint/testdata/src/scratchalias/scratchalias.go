// Package scratchalias is a fixture for the scratchalias analyzer: codec
// carries *Into/*Append builder methods that hand back a view of the scratch
// buffer passed in, like the phy-layer DemodulateLLRInto/DematchInto chain.
package scratchalias

type codec struct {
	scratch []byte
	out     []byte
}

// DecodeInto decodes n bytes into dst's backing array and returns the
// written prefix.
func (c *codec) DecodeInto(dst []byte, n int) []byte {
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	return dst[:n]
}

// TransformInto is the multi-value builder shape (result, error).
func (c *codec) TransformInto(dst, src []byte) ([]byte, error) {
	return append(dst[:0], src...), nil
}

type holder struct {
	kept []byte
}

var retained []byte

// Violations: builder results outliving the scratch buffer they alias.

func storeInPackageVar(c *codec, buf []byte) {
	retained = c.DecodeInto(buf, 8) // want "stored in package-level variable retained"
}

func storeInParamField(c *codec, h *holder, buf []byte) {
	b := c.DecodeInto(buf, 8)
	h.kept = b // want "stored in memory reachable through h"
}

func staleRead(c *codec, buf []byte) byte {
	a := c.DecodeInto(buf, 8)
	b := c.DecodeInto(buf, 16)
	_ = b
	return a[0] // want "read after DecodeInto .* reused scratch buffer buf"
}

// Negatives: the receiver store-back idiom, rebinding before reuse, and
// distinct buffers.

func (c *codec) refresh(n int) int {
	out := c.DecodeInto(c.scratch, n)
	c.scratch = out // possibly-grown buffer goes back to its own home
	c.out = out
	return len(out)
}

func (c *codec) receive(src []byte) (int, error) {
	out, err := c.TransformInto(c.scratch, src)
	if err != nil {
		return 0, err
	}
	c.scratch = out
	return len(out), nil
}

func rebindBeforeReuse(c *codec, buf []byte) byte {
	a := c.DecodeInto(buf, 8)
	x := a[0]
	a = c.DecodeInto(buf, 16) // a now views the new contents on purpose
	return x + a[0]
}

func distinctBuffers(c *codec, buf1, buf2 []byte) byte {
	a := c.DecodeInto(buf1, 8)
	b := c.DecodeInto(buf2, 8)
	return a[0] + b[0]
}

// Suppressed: an annotated retention passes, and the reason is carried into
// the suppression report.
func suppressedRetention(c *codec, buf []byte) {
	retained = c.DecodeInto(buf, 8) //lint:allow scratchalias fixture exercises the suppression path
}
