package lint

// Shared vocabulary for the memory-ownership analyzers (poolescape,
// scratchalias, handleliveness). PR 6 replaced hot-path allocation with
// hand-rolled freelists and scratch-reuse builders (DESIGN.md §5f); the
// soundness of that machinery rests on ownership rules these analyzers
// mechanize (DESIGN.md §5g). The tables below name the freelist entry
// points by their conventional identifiers — the same convention the real
// code uses (internal/pool) and that fixtures and future pools must follow
// for the analyzers to see them.
//
// All three analyzers reason positionally within one function body: a use
// "after" a put call means a larger source offset. That approximation is
// deliberate — it is exact for the straight-line release paths the pool
// actually has, and a branch-sensitive analysis would need an SSA layer the
// stdlib-only shim cannot carry. Where a function legitimately retains a
// checked-out value (the pool's own admission path), it declares ownership
// with a //lint:pool-owner marker in its doc comment rather than a
// per-line suppression: ownership is a property of the function's contract,
// not of one statement.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"concordia/internal/lint/analysis"
)

// poolGetters are the freelist checkout functions: their return value is a
// recycled object whose lifetime ends at the matching putter call.
var poolGetters = map[string]bool{
	"getDAG":     true,
	"acquireRun": true,
}

// poolPutters are the freelist release functions: their first argument (or
// the run reachable from it) re-enters a freelist and must not be touched
// afterwards.
var poolPutters = map[string]bool{
	"putDAG":       true,
	"putRun":       true,
	"maybeRecycle": true,
}

// ownerMarker declares a function the owner of the values it checks out: it
// may store them into long-lived structures because it is the component that
// manages their lifetime (the pool's admission path). The marker lives in
// the function's doc comment.
const ownerMarker = "lint:pool-owner"

// calleeName returns the bare name of a call's callee (p.getDAG → "getDAG",
// getDAG → "getDAG"), or "" for indirect calls.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// hasOwnerMarker reports whether fn's doc comment declares pool ownership.
func hasOwnerMarker(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, ownerMarker) {
			return true
		}
	}
	return false
}

// retainsMemory reports whether a value of type t can keep another object's
// backing memory alive: pointers, slices, maps, channels, funcs, interfaces,
// and aggregates containing any of those. Scalar copies (run.id, run.seq)
// cannot alias a recycled slab and are never flagged.
func retainsMemory(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if retainsMemory(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return retainsMemory(u.Elem())
	}
	return false
}

// aliasedOrigin reports which tracked origin object (if any) the expression
// e aliases: the object itself, its address, a field/element/slice of it, an
// append including it, or a composite literal embedding it.
func aliasedOrigin(pass *analysis.Pass, e ast.Expr, origins map[types.Object]bool) types.Object {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := objOf(pass, x); obj != nil && origins[obj] {
			return obj
		}
	case *ast.ParenExpr:
		return aliasedOrigin(pass, x.X, origins)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return aliasedOrigin(pass, x.X, origins)
		}
	case *ast.StarExpr:
		return aliasedOrigin(pass, x.X, origins)
	case *ast.SelectorExpr:
		return aliasedOrigin(pass, x.X, origins)
	case *ast.IndexExpr:
		return aliasedOrigin(pass, x.X, origins)
	case *ast.SliceExpr:
		return aliasedOrigin(pass, x.X, origins)
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
				for _, a := range x.Args {
					if o := aliasedOrigin(pass, a, origins); o != nil {
						return o
					}
				}
			}
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if o := aliasedOrigin(pass, el, origins); o != nil {
				return o
			}
		}
	}
	return nil
}

// storeEscapes classifies an assignment's lvalue: does writing to it let the
// value outlive fn's activation? A plain local variable does not. A
// package-level variable does. A field or element reached from a non-local
// root, or through a local pointer/map (memory someone else can also reach),
// does. exempt names an object whose stores are sanctioned — scratchalias
// passes the method receiver so the store-back idiom (t.rxLLR = llr) stays
// legal. The returned description names the escape route for the
// diagnostic.
func storeEscapes(pass *analysis.Pass, fn *ast.FuncDecl, lhs ast.Expr, exempt types.Object) (bool, string) {
	root := lvalueRoot(lhs)
	if root == nil {
		return false, ""
	}
	obj := objOf(pass, root)
	if obj == nil || obj == exempt {
		return false, ""
	}
	if _, plain := lhs.(*ast.Ident); plain {
		if !declaredWithin(obj, fn) {
			return true, fmt.Sprintf("package-level variable %s", obj.Name())
		}
		return false, ""
	}
	if !declaredWithin(obj, fn) {
		return true, fmt.Sprintf("%s, which outlives this call", obj.Name())
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan:
		return true, fmt.Sprintf("memory reachable through %s", obj.Name())
	}
	return false, ""
}

// exprKey renders a canonical spelling for a scratch-buffer argument so two
// builder calls on the same buffer can be recognized (t.rxLLR, llr[:n] →
// "llr", &t.rxDec[i] → "t.rxDec[i]"). Unrenderable expressions and nil key
// as "", meaning "not trackable".
func exprKey(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return ""
		}
		return x.Name
	case *ast.SelectorExpr:
		base := exprKey(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base, idx := exprKey(x.X), exprKey(x.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	case *ast.SliceExpr:
		return exprKey(x.X)
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return exprKey(x.X)
		}
	case *ast.BasicLit:
		return x.Value
	}
	return ""
}
