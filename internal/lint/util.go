package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"concordia/internal/lint/analysis"
)

// pkgAllowed reports whether the pass's package is one of the allowlisted
// import paths. External test units carry a "_test" path suffix, which is
// stripped first: a package sanctioned to hold wall-clock or goroutine code
// is equally sanctioned in its own tests.
func pkgAllowed(pass *analysis.Pass, allowed ...string) bool {
	path := strings.TrimSuffix(pass.Pkg.Path(), "_test")
	for _, a := range allowed {
		if path == a {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file sits in a _test.go source file.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

// importedPkg resolves a selector like time.Now to the imported package path
// and member name, when the receiver is a plain package qualifier.
func importedPkg(pass *analysis.Pass, sel *ast.SelectorExpr) (pkgPath, member string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// lvalueRoot strips selectors, indexing, parens and derefs down to the
// left-most identifier of an assignable expression: res.Rows[i] -> res.
func lvalueRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objOf resolves an identifier to its object, whether it is a use or a
// definition site.
func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// declaredWithin reports whether obj's declaration lies inside node's source
// span — i.e. the object is local to that syntax (loop body, func literal).
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj != nil && obj.Pos() != 0 && node.Pos() <= obj.Pos() && obj.Pos() < node.End()
}

// isFloat reports whether t's underlying type is a floating-point or complex
// scalar — the types whose addition is not associative, so accumulation
// order changes the result.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isNumeric reports whether t's underlying type is any numeric scalar.
func isNumeric(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsNumeric != 0
}

// indexedByLocal reports whether e contains an index expression whose index
// depends on an object declared within scope — the "write to your own slot"
// pattern (out[i] = v) that is safe under any execution order.
func indexedByLocal(pass *analysis.Pass, e ast.Expr, scope ast.Node) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok || found {
			return !found
		}
		ast.Inspect(ix.Index, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if declaredWithin(objOf(pass, id), scope) {
					found = true
				}
			}
			return !found
		})
		return !found
	})
	return found
}
