// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library only (see internal/lint/analysis for why the shim exists).
//
// Fixture layout is GOPATH-style: testdata/src/<importpath>/*.go. A fixture
// may claim any import path — including allowlisted production paths like
// concordia/internal/sim — and may import real packages of this module,
// which are resolved from the module root. Expected findings are written as
//
//	bad() // want "regexp" "another regexp"
//
// trailing the offending line. Each pattern must match one diagnostic
// reported on that line (unanchored regexp over the message); diagnostics
// with no matching pattern, and patterns with no matching diagnostic, fail
// the test. //lint:allow suppression comments in fixtures are honored
// exactly as the real driver honors them, so a suppressed violation needs no
// want comment — asserting on Result.Suppressed exercises that path.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"concordia/internal/lint"
	"concordia/internal/lint/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package, applies the analyzer, and reports
// mismatches against the fixtures' want comments through t. It returns the
// merged result so callers can additionally assert on suppressed findings.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) *lint.Result {
	t.Helper()
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	modPath, err := lint.ModulePath(root)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader := lint.NewLoader(
		lint.Root{Module: "", Dir: filepath.Join(testdata, "src")},
		lint.Root{Module: modPath, Dir: root},
	)
	total := &lint.Result{}
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(pkg))
		units, err := loader.LoadDir(dir, pkg)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", pkg, err)
		}
		if len(units) == 0 {
			t.Fatalf("analysistest: no Go files in %s", dir)
		}
		for _, u := range units {
			res := lint.RunUnitForTest(u, a)
			checkWants(t, u, res)
			total.Diags = append(total.Diags, res.Diags...)
			total.Suppressed = append(total.Suppressed, res.Suppressed...)
			total.Problems = append(total.Problems, res.Problems...)
			total.UnitsRun += res.UnitsRun
		}
	}
	return total
}

type want struct {
	file    string
	line    int
	pattern string
	re      *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, u *lint.Unit, res *lint.Result) {
	t.Helper()
	wants := collectWants(t, u)
	for _, d := range res.Diags {
		if !consume(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}

func consume(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, u *lint.Unit) []*want {
	t.Helper()
	var wants []*want
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				pats, err := parsePatterns(rest)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: p, re: re})
				}
			}
		}
	}
	return wants
}

// parsePatterns splits `"p1" "p2"` (double- or back-quoted Go strings) into
// unquoted patterns.
func parsePatterns(s string) ([]string, error) {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("pattern must be a quoted Go string, got %q", s)
		}
		end := 1
		for end < len(s) {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(s) {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		unq, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", s[:end+1], err)
		}
		pats = append(pats, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return pats, nil
}
