package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Allow is one parsed //lint:allow comment. The comment syntax is
//
//	//lint:allow <rule> <reason>
//
// placed either at the end of the offending line or on its own line directly
// above it. The reason is mandatory: a suppression without a recorded
// justification is itself reported as a problem, and so is a suppression that
// no diagnostic ever matched (it is stale and should be deleted).
type Allow struct {
	Pos    token.Pos
	File   string
	Line   int
	Rule   string
	Reason string
	Used   bool
}

// Problem is a defect in the suppression comments themselves (malformed or
// unused), reported by the driver rather than by any analyzer.
type Problem struct {
	Pos     token.Pos
	Message string
}

const allowPrefix = "lint:allow"

// parseAllows extracts every //lint:allow comment from the files of a unit.
// Malformed comments (missing rule or reason) are returned as problems.
func parseAllows(fset *token.FileSet, files []*ast.File) ([]*Allow, []Problem) {
	var allows []*Allow
	var problems []Problem
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments are not suppression carriers
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					problems = append(problems, Problem{
						Pos: c.Pos(),
						Message: "malformed suppression: want //lint:allow <rule> <reason> " +
							"(the reason is mandatory and is reported in the suppression summary)",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				allows = append(allows, &Allow{
					Pos:    c.Pos(),
					File:   pos.Filename,
					Line:   pos.Line,
					Rule:   fields[0],
					Reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return allows, problems
}

// match returns the allow that suppresses a diagnostic of rule at file:line,
// if any: an allow for that rule trailing the same line, or on the line
// directly above. The allow is marked used.
func match(allows []*Allow, rule, file string, line int) *Allow {
	for _, a := range allows {
		if a.Rule != rule || a.File != file {
			continue
		}
		if a.Line == line || a.Line == line-1 {
			a.Used = true
			return a
		}
	}
	return nil
}
